// Double-Chipkill from Single-Chipkill hardware (§IX): the same 18-chip
// gang and RS(18,16) code, but with catch-words locating the faulty chips
// the two check symbols become two *erasure* corrections. This example
// kills two chips under both controllers and shows conventional Chipkill
// failing where XED-on-Chipkill recovers — then demonstrates ALERT_n, the
// paper's §XI-C alternative signalling path.
//
//	go run ./examples/doublechipkill
package main

import (
	"fmt"

	"xedsim/internal/core"
	"xedsim/internal/dram"
	"xedsim/internal/ecc"
)

func main() {
	geom := dram.Geometry{Banks: 2, RowsPerBank: 16, ColsPerRow: 128}
	code := func() ecc.Code64 { return ecc.NewCRC8ATM() }
	addr := dram.WordAddr{Bank: 1, Row: 7, Col: 42}

	var data core.Block
	for i := range data {
		data[i] = uint64(i+1) * 0x0101010101010101
	}

	// --- Conventional Single-Chipkill: one chip OK, two chips fatal ---
	plain := core.NewChipkillController(dram.MustNewRank(18, geom, code))
	plain.WriteBlock(addr, data)
	plain.Rank().InjectChipFailure(4, dram.NewChipFault(false, 1))
	got, outcome := plain.ReadBlock(addr)
	fmt.Printf("Chipkill, 1 failed chip:  outcome=%v dataOK=%v\n", outcome, got == data)
	plain.Rank().InjectChipFailure(13, dram.NewChipFault(false, 2))
	got, outcome = plain.ReadBlock(addr)
	fmt.Printf("Chipkill, 2 failed chips: outcome=%v dataOK=%v  <- detect-only (§II-D2)\n", outcome, got == data)

	// --- XED on the same hardware: two chips corrected ---
	xed := core.NewXEDChipkillController(dram.MustNewRank(18, geom, code), 99)
	xed.WriteBlock(addr, data)
	xed.Rank().InjectChipFailure(4, dram.NewChipFault(false, 1))
	xed.Rank().InjectChipFailure(13, dram.NewChipFault(false, 2))
	got, outcome = xed.ReadBlock(addr)
	fmt.Printf("XED+Chipkill, 2 failed:   outcome=%v dataOK=%v  <- erasure decode (§IX-A)\n", outcome, got == data)
	fmt.Printf("  stats: %d catch-words seen, %d erasure corrections\n\n",
		xed.Stats().CatchWordsSeen, xed.Stats().ErasureCorrections)

	// --- The ALERT_n alternative on a 9-chip DIMM (§XI-C) ---
	line := core.Line{1, 2, 3, 4, 5, 6, 7, 8}
	laddr := dram.WordAddr{Bank: 0, Row: 3, Col: 9}

	basic := core.NewAlertNController(dram.MustNewRank(9, geom, code), false)
	basic.WriteLine(laddr, line)
	basic.Rank().InjectChipFailure(2, dram.NewChipFault(false, 3))
	bres := basic.ReadLine(laddr)
	fmt.Printf("ALERT_n (basic pin):      outcome=%v dataOK=%v alert=%v\n",
		bres.Outcome, bres.Data == line, bres.AlertAsserted)
	fmt.Printf("  cost: %d inter-line diagnosis runs (the pin cannot name the chip)\n",
		basic.Stats().InterLineRuns)

	ext := core.NewAlertNController(dram.MustNewRank(9, geom, code), true)
	ext.WriteLine(laddr, line)
	ext.Rank().InjectChipFailure(2, dram.NewChipFault(false, 3))
	eres := ext.ReadLine(laddr)
	fmt.Printf("ALERT_n (extended):       outcome=%v dataOK=%v alert=%v\n",
		eres.Outcome, eres.Data == line, eres.AlertAsserted)
	fmt.Printf("  cost: %d diagnosis runs (location on the pin = XED without catch-words)\n",
		ext.Stats().InterLineRuns)
}
