// Reliability study: a compact Monte-Carlo campaign comparing the paper's
// six protection organisations over a 7-year fleet lifetime, reproducing
// the shape of Figures 1, 7 and 9 in under a minute.
//
//	go run ./examples/reliability
package main

import (
	"fmt"

	"xedsim"
)

func main() {
	cfg := xedsim.DefaultReliabilityConfig()
	const systems = 500_000
	fmt.Printf("simulating %d systems x %d chips over 7 years (Table I field FIT rates)\n\n",
		systems, cfg.TotalChips())

	rep, err := xedsim.RunReliability(cfg, systems, 123)
	if err != nil {
		panic(err)
	}

	fmt.Printf("%-22s %-14s %s\n", "scheme", "P(fail, 7y)", "relative to ECC-DIMM")
	secded := rep.ResultFor("ECC-DIMM (SECDED)").Probability()
	for _, r := range rep.Results {
		p := r.Probability()
		rel := "baseline"
		if r.SchemeName != "ECC-DIMM (SECDED)" && p > 0 {
			rel = fmt.Sprintf("%.0fx better", secded/p)
		}
		fmt.Printf("%-22s %-14.3g %s\n", r.SchemeName, p, rel)
	}

	fmt.Println("\nheadline ratios (paper's claims):")
	fmt.Printf("  XED vs ECC-DIMM:        %6.1fx   (paper: 172x)\n", rep.Improvement("XED", "ECC-DIMM (SECDED)"))
	fmt.Printf("  Chipkill vs ECC-DIMM:   %6.1fx   (paper: 43x)\n", rep.Improvement("Chipkill", "ECC-DIMM (SECDED)"))
	fmt.Printf("  XED vs Chipkill:        %6.1fx   (paper: 4x)\n", rep.Improvement("XED", "Chipkill"))
	fmt.Printf("  XED+CK vs Double-CK:    %6.1fx   (paper: 8.5x)\n", rep.Improvement("XED+Chipkill", "Double-Chipkill"))

	// The same campaign with scaling faults present (Figures 8 and 10):
	// On-Die ECC absorbs them, so the ordering is unchanged.
	cfg.ScalingRate = 1e-4
	rep2, err := xedsim.RunReliability(cfg, systems, 123)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nwith scaling faults at 1e-4 (Figures 8/10):")
	fmt.Printf("  XED vs ECC-DIMM:        %6.1fx\n", rep2.Improvement("XED", "ECC-DIMM (SECDED)"))
	fmt.Printf("  XED+CK vs Double-CK:    %6.1fx\n", rep2.Improvement("XED+Chipkill", "Double-Chipkill"))
}
