// Quickstart: build an XED-protected memory system, write data, kill a
// whole DRAM chip at runtime, and watch every read come back correct.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"xedsim"
	"xedsim/internal/core"
	"xedsim/internal/dram"
)

func main() {
	// A 9-chip ECC-DIMM with CRC8-ATM On-Die ECC, XED enabled. The
	// small geometry keeps the functional model snappy.
	sys, err := xedsim.NewSystem(xedsim.Config{
		Geometry: dram.Geometry{Banks: 4, RowsPerBank: 64, ColsPerRow: 128},
		Seed:     2024,
	})
	if err != nil {
		panic(err)
	}

	// Write a few cache lines.
	lines := map[dram.WordAddr]core.Line{}
	for i := 0; i < 8; i++ {
		addr := dram.WordAddr{Bank: i % 4, Row: i, Col: i * 3}
		var line core.Line
		for b := range line {
			line[b] = uint64(i)<<32 | uint64(b)
		}
		lines[addr] = line
		sys.Write(addr, line)
	}
	fmt.Printf("wrote %d cache lines\n", len(lines))

	// Clean reads.
	for addr, want := range lines {
		res := sys.Read(addr)
		if res.Data != want || res.Outcome != core.OutcomeClean {
			panic(fmt.Sprintf("clean read failed at %v: %+v", addr, res))
		}
	}
	fmt.Println("all clean reads verified")

	// Kill chip 3 outright — a runtime chip failure, the fault class
	// that defeats a conventional ECC-DIMM (Figure 1 of the paper).
	sys.InjectFault(3, dram.NewChipFault(false, 99))
	fmt.Println("injected permanent whole-chip failure into chip 3")

	for addr, want := range lines {
		res := sys.Read(addr)
		if res.Data != want {
			panic(fmt.Sprintf("XED failed to correct at %v: %+v", addr, res))
		}
		fmt.Printf("  %v -> outcome=%v faultyChips=%v data ok\n", addr, res.Outcome, res.FaultyChips)
	}

	st := sys.Stats()
	fmt.Printf("\ncontroller stats: %d reads, %d erasure corrections, %d catch-words seen, %d DUEs\n",
		st.Reads, st.ErasureCorrections, st.CatchWordsSeen, st.DUEs)
	fmt.Println("Chipkill-level protection from a commodity 9-chip DIMM — the XED result.")
}
