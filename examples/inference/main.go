// Inference: reverse-engineer a black-box chip's on-die ECC. The chip is
// built around a secret, randomly drawn SECDED code; the BEER-style probe
// sweep recovers its parity-check matrix from bus-visible behaviour alone,
// and the HARP-style profiler then predicts which words the recovered code
// cannot save.
//
//	go run ./examples/inference
package main

import (
	"fmt"

	"xedsim/internal/dram"
	"xedsim/internal/ecc"
	"xedsim/internal/infer"
	"xedsim/internal/simrand"
)

func main() {
	// The manufacturer's secret: a random systematic SECDED code. The
	// example only peeks at it at the end, to grade the recovery.
	secret := ecc.RandomSECDED(simrand.New(99))
	chip := dram.NewChip(dram.Geometry{Banks: 2, RowsPerBank: 16, ColsPerRow: 8}, secret)
	fmt.Println("built a chip around a secret on-die code")

	// Step 1 (BEER): sweep check-bit faults over every data pattern
	// family and read the corrector's reaction through the bus.
	got, ev, err := infer.RecoverHMatrix(chip, infer.BEEROptions{Seed: 7})
	if err != nil {
		panic(err)
	}
	fmt.Printf("probed the corrector %d times over %d data-pattern families\n",
		ev.ProbeCount, ev.Families)
	fmt.Printf("recovered H: %v\n", got)
	if got != secret.Matrix() {
		panic("recovered matrix differs from the secret code")
	}
	fmt.Println("recovered H equals the secret code's H bit for bit")

	// Step 2: the recovered matrix is a working codec.
	recovered, err := ecc.NewLinearCode64("(72,64) recovered", got)
	if err != nil {
		panic(err)
	}
	cw := recovered.Encode(0xdeadbeefcafef00d)
	if _, res := recovered.Decode(cw.FlipBit(5)); res != ecc.StatusCorrected {
		panic("recovered codec failed to correct a single-bit error")
	}
	fmt.Println("recovered codec corrects single-bit errors like the original")

	// Step 3 (HARP): plant permanent damage and ask the profiler which
	// words exceed the on-die code's correction power.
	weak := dram.WordAddr{Bank: 0, Row: 3, Col: 1}   // single-bit: correctable
	broken := dram.WordAddr{Bank: 1, Row: 9, Col: 4} // double-bit: uncorrectable
	chip.InjectFault(dram.NewBitFault(weak, 17, false))
	chip.InjectFault(dram.NewWordFault(broken, 1<<5|1<<44, 0, false))

	p := infer.ProfileChip(chip, []dram.WordAddr{weak, broken, {Bank: 0, Row: 0, Col: 0}},
		infer.HARPOptions{Rounds: 8, Seed: 11})
	uncorr := p.PredictUncorrectable()
	risk := p.PredictAtRisk()
	fmt.Printf("profiler flagged %v as at-risk, %v as uncorrectable\n", risk, uncorr)
	if len(uncorr) != 1 || uncorr[0] != broken {
		panic("profiler missed the uncorrectable word")
	}
	if len(risk) != 2 {
		panic("profiler mis-sized the at-risk set")
	}
	fmt.Println("the black box gave up its code and its weak words — the BEER/HARP result.")
}
