// Diagnosis walkthrough: the §VI machinery for the ~0.8% of multi-bit
// errors the On-Die ECC misses. This example manufactures *silent* on-die
// corruption (error patterns that are valid CRC8-ATM codewords) and shows
// Inter-Line diagnosis convicting a row failure, Intra-Line diagnosis
// convicting an isolated permanent word fault, the FCT caching verdicts,
// and the honest DUE on a silent transient fault.
//
//	go run ./examples/diagnosis
package main

import (
	"fmt"

	"xedsim/internal/core"
	"xedsim/internal/dram"
	"xedsim/internal/ecc"
)

func silentPattern(v uint64) (uint64, uint8) {
	cw := ecc.NewCRC8ATM().Encode(v)
	return cw.Data, cw.Check
}

func main() {
	geom := dram.Geometry{Banks: 2, RowsPerBank: 32, ColsPerRow: 128}
	rank := dram.MustNewRank(9, geom, func() ecc.Code64 { return ecc.NewCRC8ATM() })
	ctrl := core.NewController(rank, 7, core.WithFCTEntries(4))

	fill := func(bank, row int) map[int]core.Line {
		lines := map[int]core.Line{}
		for col := 0; col < geom.ColsPerRow; col++ {
			var l core.Line
			for b := range l {
				l[b] = uint64(bank)<<48 | uint64(row)<<32 | uint64(col)<<8 | uint64(b)
			}
			lines[col] = l
			ctrl.WriteLine(dram.WordAddr{Bank: bank, Row: row, Col: col}, l)
		}
		return lines
	}

	// --- Scenario 1: row failure with one silently corrupted line ---
	fmt.Println("scenario 1: row failure, accessed line silent on-die (Inter-Line diagnosis)")
	lines := fill(0, 5)
	d, c := silentPattern(0xdecafbad)
	victim := dram.WordAddr{Bank: 0, Row: 5, Col: 42}
	rank.Chip(2).InjectFault(dram.NewWordFault(victim, d, c, false))
	for col := 0; col < 30; col++ { // the rest of the broken row is detectable
		rank.Chip(2).InjectFault(dram.NewWordFault(
			dram.WordAddr{Bank: 0, Row: 5, Col: col}, 0b101, 0, false))
	}
	res := ctrl.ReadLine(victim)
	fmt.Printf("  outcome=%v blamed=%v dataOK=%v\n", res.Outcome, res.FaultyChips, res.Data == lines[42])
	fmt.Printf("  FCT now maps (bank 0, row 5) -> chip %d\n", ctrl.FCT().Lookup(0, 5))
	st := ctrl.Stats()
	fmt.Printf("  stats: interLineRuns=%d intraLineRuns=%d\n\n", st.InterLineRuns, st.IntraLineRuns)

	// --- Scenario 2: isolated permanent silent word fault (Intra-Line) ---
	fmt.Println("scenario 2: isolated permanent word fault, silent on-die (Intra-Line diagnosis)")
	lines2 := fill(1, 9)
	d2, c2 := silentPattern(0xfeedface)
	victim2 := dram.WordAddr{Bank: 1, Row: 9, Col: 7}
	rank.Chip(6).InjectFault(dram.NewWordFault(victim2, d2, c2, false))
	res2 := ctrl.ReadLine(victim2)
	fmt.Printf("  outcome=%v blamed=%v dataOK=%v\n", res2.Outcome, res2.FaultyChips, res2.Data == lines2[7])
	st = ctrl.Stats()
	fmt.Printf("  stats: interLineRuns=%d intraLineRuns=%d\n\n", st.InterLineRuns, st.IntraLineRuns)

	// --- Scenario 3: silent TRANSIENT word fault -> honest DUE ---
	fmt.Println("scenario 3: silent transient word fault (the §VIII DUE case)")
	fill(1, 20)
	d3, c3 := silentPattern(0xa5a5a5a5)
	victim3 := dram.WordAddr{Bank: 1, Row: 20, Col: 3}
	rank.Chip(4).InjectFault(dram.NewWordFault(victim3, d3, c3, true))
	res3 := ctrl.ReadLine(victim3)
	fmt.Printf("  outcome=%v (XED refuses to return silently corrupt data)\n", res3.Outcome)
	fmt.Printf("  paper's rate for this event: 6.1e-6 over 7 years\n\n")

	// --- Scenario 4: column failure saturates the FCT ---
	fmt.Println("scenario 4: column failure -> FCT saturates, chip permanently marked")
	for row := 0; row < 8; row++ {
		fill(0, row)
	}
	for row := 0; row < 8; row++ {
		dp, cp := silentPattern(uint64(row)*31 + 1)
		rank.Chip(5).InjectFault(dram.NewWordFault(
			dram.WordAddr{Bank: 0, Row: row, Col: 11}, dp, cp, false))
	}
	for row := 0; row < 8; row++ {
		ctrl.ReadLine(dram.WordAddr{Bank: 0, Row: row, Col: 11})
	}
	fmt.Printf("  FCT marked chip: %d (verdicts cached; later rows skip the 128-read scan)\n",
		ctrl.FCT().MarkedChip())
	st = ctrl.Stats()
	fmt.Printf("  final stats: %+v\n", st)
}
