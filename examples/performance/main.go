// Performance study: run the cycle-level memory simulator on three
// contrasting workloads and compare the paper's protection schemes —
// the Figure 11/12 mechanism in miniature.
//
//	go run ./examples/performance
package main

import (
	"fmt"

	"xedsim/internal/memsim"
)

func main() {
	schemes := []memsim.SchemeConfig{
		memsim.SECDEDScheme(),
		memsim.XEDScheme(),
		memsim.ChipkillScheme(),
		memsim.DoubleChipkillScheme(),
	}
	names := []string{"libquantum", "mcf", "gcc"} // streaming, pointer-chasing, light

	fmt.Println("8-core rate mode, DDR3-1600, 4 channels x 2 ranks (Table V system)")
	fmt.Printf("%-12s %-26s %10s %10s %10s %9s\n",
		"workload", "scheme", "cycles", "normTime", "readLat", "power(W)")
	for _, name := range names {
		w, ok := memsim.WorkloadByName(name)
		if !ok {
			panic("unknown workload " + name)
		}
		var base float64
		for _, sc := range schemes {
			cfg := memsim.DefaultConfig(w, sc)
			cfg.InstrPerCore = 120_000
			res := memsim.New(cfg).Run()
			if base == 0 {
				base = float64(res.Cycles)
			}
			fmt.Printf("%-12s %-26s %10d %10.3f %10.1f %9.2f\n",
				name, sc.Name, res.Cycles, float64(res.Cycles)/base,
				res.AvgReadLatency(), res.Power.Total())
		}
		fmt.Println()
	}
	fmt.Println("XED matches the SECDED baseline exactly; ganged-rank schemes pay in")
	fmt.Println("bandwidth and rank parallelism — the Figure 11 mechanism.")
}
