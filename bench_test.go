// Benchmark harness: one testing.B per table and figure of the paper's
// evaluation, each regenerating the corresponding result at a reduced but
// statistically meaningful scale and reporting the headline metrics via
// b.ReportMetric. EXPERIMENTS.md records full-scale runs of the same code
// paths through the cmd/ tools.
//
//	go test -bench=. -benchmem ./...
package xedsim_test

import (
	"context"
	"testing"

	"xedsim/internal/analysis"
	"xedsim/internal/ecc"
	"xedsim/internal/faultsim"
	"xedsim/internal/memsim"
)

// --- Figure 1: NonECC vs ECC-DIMM vs Chipkill with On-Die ECC ---

func BenchmarkFig1Reliability(b *testing.B) {
	cfg := faultsim.DefaultConfig()
	schemes := []faultsim.Scheme{faultsim.NewNonECC(), faultsim.NewSECDED(), faultsim.NewChipkill()}
	var rep *faultsim.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = faultsim.Run(cfg, schemes, 200_000, uint64(i)+1, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.ResultFor("NonECC").Probability(), "P(fail)-NonECC")
	b.ReportMetric(rep.ResultFor("ECC-DIMM (SECDED)").Probability(), "P(fail)-SECDED")
	b.ReportMetric(rep.Improvement("Chipkill", "ECC-DIMM (SECDED)"), "chipkill-vs-secded-x")
}

// --- Table I is an input; bench the fault generator that consumes it ---

func BenchmarkTableIFaultGeneration(b *testing.B) {
	cfg := faultsim.DefaultConfig()
	rep, err := faultsim.Run(cfg, []faultsim.Scheme{faultsim.NewXED()}, 1, 1, 1)
	if err != nil || rep == nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := faultsim.Run(cfg, []faultsim.Scheme{faultsim.NewXED()}, 10_000, uint64(i), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table II: detection rates of the two on-die code candidates ---

func BenchmarkTable2DetectionRates(b *testing.B) {
	var crc ecc.DetectionRates
	for i := 0; i < b.N; i++ {
		_ = ecc.MeasureDetection(ecc.NewHamming(), 50_000, uint64(i)+1)
		crc = ecc.MeasureDetection(ecc.NewCRC8ATM(), 50_000, uint64(i)+1)
	}
	b.ReportMetric(crc.Random[3]*100, "crc8-random4-pct")
	b.ReportMetric(crc.Burst[7]*100, "crc8-burst8-pct")
}

// --- Figure 6: catch-word collision probability over time ---

func BenchmarkFig6CollisionCurve(b *testing.B) {
	model := analysis.X8Default()
	years := []float64{1, 2, 3, 4, 5, 6, 7}
	var curve []float64
	for i := 0; i < b.N; i++ {
		curve = model.Curve(years)
		// Empirical validation leg at a tractable width.
		analysis.SimulateCollisions(20, 100_000, uint64(i))
	}
	b.ReportMetric(curve[6], "P(collision,7y)")
	b.ReportMetric(model.MeanTimeBetweenCollisionsYears(), "mttc-years")
}

// --- Table III: multiple catch-words per access ---

func BenchmarkTable3MultiCatchWord(b *testing.B) {
	var p float64
	for i := 0; i < b.N; i++ {
		for _, rate := range []float64{1e-4, 1e-5, 1e-6} {
			p = analysis.TableIIIRow(rate, 8).Probability()
		}
	}
	b.ReportMetric(analysis.TableIIIRow(1e-4, 8).Probability(), "P(multiCW)-1e-4")
	_ = p
}

// --- Table IV: SDC/DUE closed forms ---

func BenchmarkTable4Vulnerability(b *testing.B) {
	v := analysis.DefaultXEDVulnerability()
	var due, sdc float64
	for i := 0; i < b.N; i++ {
		due = v.DUEProbability()
		sdc = v.SDCProbability()
	}
	b.ReportMetric(due, "DUE-7y")
	b.ReportMetric(sdc, "SDC-7y")
}

// --- Figure 7: XED vs ECC-DIMM vs Chipkill ---

func BenchmarkFig7Reliability(b *testing.B) {
	cfg := faultsim.DefaultConfig()
	schemes := []faultsim.Scheme{faultsim.NewSECDED(), faultsim.NewXED(), faultsim.NewChipkill()}
	var rep *faultsim.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = faultsim.Run(cfg, schemes, 400_000, uint64(i)+7, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Improvement("XED", "ECC-DIMM (SECDED)"), "xed-vs-secded-x")
	b.ReportMetric(rep.Improvement("XED", "Chipkill"), "xed-vs-chipkill-x")
}

// --- Figure 8: Figure 7 with scaling faults at 1e-4 ---

func BenchmarkFig8ScalingReliability(b *testing.B) {
	cfg := faultsim.DefaultConfig()
	cfg.ScalingRate = 1e-4
	schemes := []faultsim.Scheme{faultsim.NewSECDED(), faultsim.NewXED(), faultsim.NewChipkill()}
	var rep *faultsim.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = faultsim.Run(cfg, schemes, 400_000, uint64(i)+8, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Improvement("XED", "ECC-DIMM (SECDED)"), "xed-vs-secded-x")
}

// --- Figure 9: Chipkill family ---

func BenchmarkFig9DoubleChipkill(b *testing.B) {
	cfg := faultsim.DefaultConfig()
	schemes := []faultsim.Scheme{faultsim.NewChipkill(), faultsim.NewDoubleChipkill(), faultsim.NewXEDChipkill()}
	var rep *faultsim.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = faultsim.Run(cfg, schemes, 2_000_000, uint64(i)+9, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Improvement("Double-Chipkill", "Chipkill"), "dck-vs-ck-x")
	b.ReportMetric(rep.Improvement("XED+Chipkill", "Double-Chipkill"), "xedck-vs-dck-x")
}

// --- Figure 10: Figure 9 with scaling faults ---

func BenchmarkFig10DoubleChipkillScaling(b *testing.B) {
	cfg := faultsim.DefaultConfig()
	cfg.ScalingRate = 1e-4
	schemes := []faultsim.Scheme{faultsim.NewChipkill(), faultsim.NewDoubleChipkill(), faultsim.NewXEDChipkill()}
	var rep *faultsim.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = faultsim.Run(cfg, schemes, 2_000_000, uint64(i)+10, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Improvement("XED+Chipkill", "Double-Chipkill"), "xedck-vs-dck-x")
}

// fig11Workloads is a representative spread (bandwidth-bound, latency
// sensitive, light) so the per-iteration cost stays benchable; the CLI
// runs the full 31-workload matrix.
func fig11Workloads(b *testing.B) []memsim.Workload {
	b.Helper()
	var ws []memsim.Workload
	for _, name := range []string{"libquantum", "mcf", "milc", "gcc", "stream", "comm2"} {
		w, ok := memsim.WorkloadByName(name)
		if !ok {
			b.Fatalf("missing workload %s", name)
		}
		ws = append(ws, w)
	}
	return ws
}

// --- Figure 11: normalised execution time ---

func BenchmarkFig11ExecutionTime(b *testing.B) {
	schemes := []memsim.SchemeConfig{
		memsim.SECDEDScheme(), memsim.XEDScheme(),
		memsim.ChipkillScheme(), memsim.DoubleChipkillScheme(),
	}
	ws := fig11Workloads(b)
	var cmp *memsim.Comparison
	for i := 0; i < b.N; i++ {
		cmp, _ = memsim.RunComparison(context.Background(), ws, schemes, 60_000, uint64(i)+11, 0)
	}
	b.ReportMetric(cmp.GmeanTime(1), "xed-norm-time")
	b.ReportMetric(cmp.GmeanTime(2), "chipkill-norm-time")
	b.ReportMetric(cmp.GmeanTime(3), "dblchipkill-norm-time")
}

// --- Figure 12: normalised memory power ---

func BenchmarkFig12MemoryPower(b *testing.B) {
	schemes := []memsim.SchemeConfig{
		memsim.SECDEDScheme(), memsim.XEDScheme(),
		memsim.ChipkillScheme(), memsim.DoubleChipkillScheme(),
	}
	ws := fig11Workloads(b)
	var cmp *memsim.Comparison
	for i := 0; i < b.N; i++ {
		cmp, _ = memsim.RunComparison(context.Background(), ws, schemes, 60_000, uint64(i)+12, 0)
	}
	b.ReportMetric(cmp.GmeanPower(1), "xed-norm-power")
	b.ReportMetric(cmp.GmeanPower(2), "chipkill-norm-power")
	b.ReportMetric(cmp.GmeanPower(3), "dblchipkill-norm-power")
}

// --- Figure 13: extra burst / extra transaction alternatives ---

func BenchmarkFig13Alternatives(b *testing.B) {
	schemes := []memsim.SchemeConfig{
		memsim.SECDEDScheme(), memsim.XEDScheme(),
		memsim.ExtraBurstChipkill(), memsim.ExtraTransactionChipkill(),
	}
	ws := fig11Workloads(b)
	var cmp *memsim.Comparison
	for i := 0; i < b.N; i++ {
		cmp, _ = memsim.RunComparison(context.Background(), ws, schemes, 60_000, uint64(i)+13, 0)
	}
	b.ReportMetric(cmp.GmeanTime(2), "extraburst-norm-time")
	b.ReportMetric(cmp.GmeanTime(3), "extratxn-norm-time")
}

// --- Figure 14: LOT-ECC vs XED ---

func BenchmarkFig14LOTECC(b *testing.B) {
	schemes := []memsim.SchemeConfig{
		memsim.SECDEDScheme(), memsim.XEDScheme(), memsim.LOTECCScheme(),
	}
	ws := fig11Workloads(b)
	var cmp *memsim.Comparison
	for i := 0; i < b.N; i++ {
		cmp, _ = memsim.RunComparison(context.Background(), ws, schemes, 60_000, uint64(i)+14, 0)
	}
	b.ReportMetric(cmp.GmeanTime(2)/cmp.GmeanTime(1), "lotecc-vs-xed")
}

// --- Table V is an input; bench the baseline system it configures ---

func BenchmarkTableVBaselineSystem(b *testing.B) {
	w, _ := memsim.WorkloadByName("comm1")
	for i := 0; i < b.N; i++ {
		cfg := memsim.DefaultConfig(w, memsim.SECDEDScheme())
		cfg.InstrPerCore = 40_000
		memsim.New(cfg).Run()
	}
}

// --- Ablations for the design choices DESIGN.md calls out ---

// BenchmarkAblationOnDieCode compares the XED reliability outcome when the
// on-die code's multi-bit miss rate is Hamming's (~1.1%) versus CRC8-ATM's
// (~0.8%) — the quantitative reason behind the paper's §V-E recommendation.
func BenchmarkAblationOnDieCode(b *testing.B) {
	var pCRC, pHam float64
	for i := 0; i < b.N; i++ {
		cfg := faultsim.DefaultConfig()
		cfg.SilentWordFraction = 0.008 // CRC8-ATM (Table II)
		repC, err := faultsim.Run(cfg, []faultsim.Scheme{faultsim.NewXED()}, 300_000, uint64(i)+20, 0)
		if err != nil {
			b.Fatal(err)
		}
		cfg.SilentWordFraction = 0.011 // Hamming measured miss rate
		repH, err := faultsim.Run(cfg, []faultsim.Scheme{faultsim.NewXED()}, 300_000, uint64(i)+20, 0)
		if err != nil {
			b.Fatal(err)
		}
		pCRC, pHam = repC.Results[0].Probability(), repH.Results[0].Probability()
	}
	b.ReportMetric(pCRC, "P(fail)-crc8")
	b.ReportMetric(pHam, "P(fail)-hamming")
}

// BenchmarkAblationScrubInterval sweeps the patrol-scrub interval, the
// transient-fault overlap window of the reliability model.
func BenchmarkAblationScrubInterval(b *testing.B) {
	var daily, monthly float64
	for i := 0; i < b.N; i++ {
		cfg := faultsim.DefaultConfig()
		cfg.ScrubIntervalHours = 24
		repD, err := faultsim.Run(cfg, []faultsim.Scheme{faultsim.NewXED()}, 300_000, uint64(i)+21, 0)
		if err != nil {
			b.Fatal(err)
		}
		cfg.ScrubIntervalHours = 24 * 30
		repM, err := faultsim.Run(cfg, []faultsim.Scheme{faultsim.NewXED()}, 300_000, uint64(i)+21, 0)
		if err != nil {
			b.Fatal(err)
		}
		daily, monthly = repD.Results[0].Probability(), repM.Results[0].Probability()
	}
	b.ReportMetric(daily, "P(fail)-daily-scrub")
	b.ReportMetric(monthly, "P(fail)-monthly-scrub")
}

// BenchmarkAblationAddressOverlap compares the conservative domain-level
// compound-failure criterion (the paper's headline numbers) against the
// precise FaultSim address-intersection criterion.
func BenchmarkAblationAddressOverlap(b *testing.B) {
	var conservative, precise float64
	for i := 0; i < b.N; i++ {
		cfg := faultsim.DefaultConfig()
		repC, err := faultsim.Run(cfg, []faultsim.Scheme{faultsim.NewXED()}, 400_000, uint64(i)+22, 0)
		if err != nil {
			b.Fatal(err)
		}
		cfg.RequireAddressOverlap = true
		repP, err := faultsim.Run(cfg, []faultsim.Scheme{faultsim.NewXED()}, 400_000, uint64(i)+22, 0)
		if err != nil {
			b.Fatal(err)
		}
		conservative, precise = repC.Results[0].Probability(), repP.Results[0].Probability()
	}
	b.ReportMetric(conservative, "P(fail)-conservative")
	b.ReportMetric(precise, "P(fail)-addr-overlap")
}

// BenchmarkAblationCatchWordWidth contrasts the 64-bit (x8) and 32-bit
// (x4) catch-word collision intervals (§V-D2 vs §IX-A).
func BenchmarkAblationCatchWordWidth(b *testing.B) {
	var x8, x4 float64
	for i := 0; i < b.N; i++ {
		x8 = analysis.X8Default().MeanTimeBetweenCollisionsYears()
		x4 = analysis.X4Default().MeanTimeBetweenCollisionsYears()
	}
	b.ReportMetric(x8, "x8-mttc-years")
	b.ReportMetric(x4*analysis.SecondsPerYear, "x4-mttc-seconds")
}

// BenchmarkAblationSerialMode quantifies §XI-A's claim that serial-mode
// episodes cost "< 0.01%": at the paper's once-per-200K rate the slowdown
// is unmeasurable; exaggerated 2000x it becomes visible.
func BenchmarkAblationSerialMode(b *testing.B) {
	w, _ := memsim.WorkloadByName("libquantum")
	var paperRate, exaggerated float64
	for i := 0; i < b.N; i++ {
		base := memsim.New(withInstr(memsim.DefaultConfig(w, memsim.XEDScheme()), 60_000)).Run()
		rare := memsim.New(withInstr(memsim.DefaultConfig(w, memsim.XEDSchemeWithSerialMode(200_000)), 60_000)).Run()
		freq := memsim.New(withInstr(memsim.DefaultConfig(w, memsim.XEDSchemeWithSerialMode(100)), 60_000)).Run()
		paperRate = float64(rare.Cycles) / float64(base.Cycles)
		exaggerated = float64(freq.Cycles) / float64(base.Cycles)
	}
	b.ReportMetric(paperRate, "slowdown-1in200k")
	b.ReportMetric(exaggerated, "slowdown-1in100")
}

// BenchmarkAblationPagePolicy contrasts the open-page baseline with a
// closed-page controller on a high-locality workload.
func BenchmarkAblationPagePolicy(b *testing.B) {
	w, _ := memsim.WorkloadByName("libquantum")
	var ratio float64
	for i := 0; i < b.N; i++ {
		open := memsim.New(withInstr(memsim.DefaultConfig(w, memsim.XEDScheme()), 60_000)).Run()
		cfg := withInstr(memsim.DefaultConfig(w, memsim.XEDScheme()), 60_000)
		cfg.ClosePage = true
		closed := memsim.New(cfg).Run()
		ratio = float64(closed.Cycles) / float64(open.Cycles)
	}
	b.ReportMetric(ratio, "closedpage-vs-openpage")
}

// BenchmarkTable4MonteCarlo cross-checks the Table IV DUE closed form
// against the Monte-Carlo simulator's kind classification.
func BenchmarkTable4MonteCarlo(b *testing.B) {
	cfg := faultsim.DefaultConfig()
	var due, sdc float64
	for i := 0; i < b.N; i++ {
		rep, err := faultsim.Run(cfg, []faultsim.Scheme{faultsim.NewXED()}, 2_000_000, uint64(i)+30, 0)
		if err != nil {
			b.Fatal(err)
		}
		due = rep.Results[0].DUEProbability()
		sdc = rep.Results[0].SDCProbability()
	}
	b.ReportMetric(due, "xed-DUE-7y")
	b.ReportMetric(sdc, "xed-SDC-7y")
}

func withInstr(cfg memsim.Config, n int64) memsim.Config {
	cfg.InstrPerCore = n
	return cfg
}
