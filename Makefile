# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test vet verify bench bench-save bench-json benchstat race fuzz ci experiments clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Statistical conformance gate: runs the paper-claim table (SPRT-bounded
# campaigns, exhaustive code checks, evaluator differential sweep) and
# exits nonzero unless every claim is CONFIRMED. See internal/conformance.
verify:
	go run ./cmd/xedverify

race:
	go test -race -short ./...

bench:
	go test -bench=. -benchmem ./...

# Benchmark-regression workflow: `make bench-save` snapshots the current
# tree's numbers (bench.old on the first run, bench.new afterwards), then
# `make benchstat` compares them. benchstat is optional — when the tool is
# not on PATH the comparison prints both files for eyeballing instead.
BENCH_PKGS ?= ./...
BENCH_PATTERN ?= .
BENCH_COUNT ?= 6

bench-save:
	@if [ -f bench.old ]; then out=bench.new; else out=bench.old; fi; \
	echo "saving $$out"; \
	go test -run='^$$' -bench='$(BENCH_PATTERN)' -benchmem -count=$(BENCH_COUNT) $(BENCH_PKGS) | tee $$out

# Machine-readable perf trajectory: reruns the Table I campaign benchmark
# across every engine and snapshots per-engine medians (ns/op, allocs/op,
# trials/s) into $(BENCH_JSON) via cmd/xedbench. The committed
# BENCH_pr*.json files let later PRs diff engine throughput without
# replaying old trees.
BENCH_JSON ?= BENCH_pr8.json

bench-json:
	go test -run='^$$' -bench=BenchmarkTableICampaign -benchmem \
		-benchtime=2s -count=$(BENCH_COUNT) ./internal/faultsim/ \
		| go run ./cmd/xedbench -out $(BENCH_JSON)
	@echo "wrote $(BENCH_JSON)"

benchstat:
	@if [ ! -f bench.old ] || [ ! -f bench.new ]; then \
		echo "need bench.old and bench.new (run 'make bench-save' on each tree)"; exit 1; \
	fi; \
	if command -v benchstat >/dev/null 2>&1; then \
		benchstat bench.old bench.new; \
	else \
		echo "benchstat not installed (go install golang.org/x/perf/cmd/benchstat@latest)"; \
		echo "--- bench.old ---"; grep '^Benchmark' bench.old; \
		echo "--- bench.new ---"; grep '^Benchmark' bench.new; \
	fi

# One -fuzz target per invocation is a go tool constraint; FUZZTIME
# scales all of them.
FUZZTIME ?= 30s
fuzz:
	go test -fuzz=FuzzCode64CRC8 -fuzztime=$(FUZZTIME) -run='^$$' ./internal/ecc/
	go test -fuzz=FuzzCRC8Miscorrection -fuzztime=$(FUZZTIME) -run='^$$' ./internal/ecc/
	go test -fuzz=FuzzRSErasureRoundTrip -fuzztime=$(FUZZTIME) -run='^$$' ./internal/ecc/
	go test -fuzz=FuzzLinearCodeVsHandRolled -fuzztime=$(FUZZTIME) -run='^$$' ./internal/ecc/
	go test -fuzz=FuzzEvaluatorVsReference -fuzztime=$(FUZZTIME) -run='^$$' ./internal/faultsim/
	go test -fuzz=FuzzLaneVsIndexedEvaluator -fuzztime=$(FUZZTIME) -run='^$$' ./internal/faultsim/
	go test -fuzz=FuzzBatchGenVsScalar -fuzztime=$(FUZZTIME) -run='^$$' ./internal/faultsim/
	go test -fuzz=FuzzEDACDumpRoundTrip -fuzztime=$(FUZZTIME) -run='^$$' ./internal/fleet/

# Everything CI runs (see .github/workflows/ci.yml), runnable locally.
ci:
	go vet ./...
	go build ./...
	go test ./...
	go run ./cmd/xedverify
	go test -race -short ./...
	go test -run='^$$' -bench=TableI -benchtime=1x ./...

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
experiments:
	go run ./cmd/xedcodes    -experiment all
	go run ./cmd/xedfaultsim -experiment all -systems 4000000
	go run ./cmd/xedmemsim   -experiment all -instr 200000

clean:
	go clean ./...
	rm -f bench.old bench.new
