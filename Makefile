# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test vet bench race fuzz experiments clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./internal/faultsim/ ./internal/memsim/

bench:
	go test -bench=. -benchmem ./...

fuzz:
	go test -fuzz=FuzzCode64CRC8 -fuzztime=30s ./internal/ecc/

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
experiments:
	go run ./cmd/xedcodes    -experiment all
	go run ./cmd/xedfaultsim -experiment all -systems 4000000
	go run ./cmd/xedmemsim   -experiment all -instr 200000

clean:
	go clean ./...
