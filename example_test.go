package xedsim_test

import (
	"fmt"

	"xedsim"
	"xedsim/internal/core"
	"xedsim/internal/dram"
)

// ExampleNewSystem shows the paper's headline capability: a whole-chip
// failure corrected transparently by catch-words plus RAID-3 parity.
func ExampleNewSystem() {
	sys, err := xedsim.NewSystem(xedsim.Config{
		Geometry: dram.Geometry{Banks: 2, RowsPerBank: 8, ColsPerRow: 128},
		Seed:     1,
	})
	if err != nil {
		panic(err)
	}
	addr := dram.WordAddr{Bank: 1, Row: 3, Col: 40}
	line := core.Line{10, 20, 30, 40, 50, 60, 70, 80}
	sys.Write(addr, line)

	sys.InjectFault(5, dram.NewChipFault(false, 7)) // chip 5 dies

	res := sys.Read(addr)
	fmt.Println(res.Outcome, res.Data == line, res.FaultyChips)
	// Output: corrected-erasure true [5]
}

// ExampleNewFleet drives the address-mapped multi-channel system.
func ExampleNewFleet() {
	fleet, err := xedsim.NewFleet(xedsim.FleetConfig{
		Geometry: dram.Geometry{Banks: 2, RowsPerBank: 8, ColsPerRow: 128},
		Seed:     2,
	})
	if err != nil {
		panic(err)
	}
	line := core.Line{1, 1, 2, 3, 5, 8, 13, 21}
	fleet.Write(0x10000, line)
	res := fleet.Read(0x10000)
	fmt.Println(res.Outcome, res.Data == line)
	// Output: clean true
}
