package ecc

import "encoding/binary"

// Table-driven syndrome evaluation. The Horner loop in syndrome() costs
// one gfMul (two table lookups plus an add) per codeword symbol per
// syndrome. For a fixed code the per-symbol contribution to syndrome j is
// a pure function of (chip position, symbol value):
//
//	contrib(j, pos, sym) = sym · alpha^{j·degree(pos)}
//
// so the whole inner product collapses into R·N precomputed 256-entry
// rows: evaluating a syndrome set is then one table load and one XOR per
// nonzero symbol per syndrome. The rows are laid out position-major —
// all R rows for one chip position are contiguous — so walking a codeword
// touches N·R·256 bytes sequentially (≤ 36 KiB for Double-Chipkill's
// RS(36,32)), and a batch of codewords reuses the same hot lines.
//
// The Horner path (synHorner) is kept verbatim as the oracle; the tables
// must stay bit-identical to it (TestSyndromeTablesMatchHorner,
// FuzzRSRoundTrip).

// synTabLimit caps the eager table size (in entries) built by NewRS. The
// paper's codes sit far below it; degenerate large codes (K+R near 255
// with many check symbols) skip the tables and keep the Horner path, so
// constructing them stays cheap.
const synTabLimit = 1 << 20

// buildSynTab precomputes the contribution rows. Entry layout:
//
//	tab[(pos*R+j)<<8 | sym] = sym · alpha^{j·degree(pos)}
func (rs *RS) buildSynTab() {
	n := rs.K + rs.R
	if n*rs.R*256 > synTabLimit {
		return
	}
	tab := make([]uint8, n*rs.R*256)
	for pos := 0; pos < n; pos++ {
		for j := 0; j < rs.R; j++ {
			coef := gfPow(j * rs.position(pos))
			row := tab[(pos*rs.R+j)<<8:]
			for sym := 1; sym < 256; sym++ {
				row[sym] = gfMul(uint8(sym), coef)
			}
		}
	}
	rs.synTab = tab
}

// synTabbed accumulates all R syndromes of cw into syn (len R, zeroed by
// the caller) through the contribution tables, position-major.
func (rs *RS) synTabbed(cw, syn []uint8) {
	r := rs.R
	for pos, c := range cw {
		if c == 0 {
			continue
		}
		row := rs.synTab[(pos*r)<<8+int(c):]
		for j := 0; j < r; j++ {
			syn[j] ^= row[j<<8]
		}
	}
}

// synHorner is the reference evaluation: R independent Horner passes.
func (rs *RS) synHorner(cw, syn []uint8) {
	for j := 0; j < rs.R; j++ {
		syn[j] = rs.syndrome(cw, gfPow(j))
	}
}

// BatchSyndromes computes the R syndromes of every codeword in cws,
// returning them concatenated codeword-major (len(cws)·R entries, written
// into syn's backing array when it has the capacity). Batching amortises
// the contribution tables' cache footprint across the whole stream — the
// bulk-judging analogue of the fault simulator's lane engine, and the
// entry point the scrubber-style sweeps use to validate many words per
// call. Every codeword must have length K+R.
func BatchSyndromes(rs *RS, cws [][]uint8, syn []uint8) []uint8 {
	total := len(cws) * rs.R
	if cap(syn) < total {
		syn = make([]uint8, total)
	} else {
		syn = syn[:total]
		for i := range syn {
			syn[i] = 0
		}
	}
	for i, cw := range cws {
		if len(cw) != rs.K+rs.R {
			panic("ecc: RS Syndromes codeword length mismatch")
		}
		out := syn[i*rs.R : (i+1)*rs.R]
		if rs.synTab != nil {
			rs.synTabbed(cw, out)
		} else {
			rs.synHorner(cw, out)
		}
	}
	return syn
}

// ParityLines XORs equal-length byte lines (one cache-line beat per data
// chip) into out, eight bytes per machine word — the bulk form of Parity
// for the RAID-3 layer (§V-C). out is reused when it has capacity. It
// panics if the lines disagree on length.
func ParityLines(lines [][]uint8, out []uint8) []uint8 {
	if len(lines) == 0 {
		return out[:0]
	}
	n := len(lines[0])
	if cap(out) < n {
		out = make([]uint8, n)
	} else {
		out = out[:n]
		for i := range out {
			out[i] = 0
		}
	}
	for _, line := range lines {
		if len(line) != n {
			panic("ecc: ParityLines length mismatch")
		}
		i := 0
		for ; i+8 <= n; i += 8 {
			binary.LittleEndian.PutUint64(out[i:],
				binary.LittleEndian.Uint64(out[i:])^binary.LittleEndian.Uint64(line[i:]))
		}
		for ; i < n; i++ {
			out[i] ^= line[i]
		}
	}
	return out
}

// CheckParityLines reports whether parity is the XOR of the data lines —
// Equation (1) word-at-a-time, with no scratch allocation.
func CheckParityLines(lines [][]uint8, parity []uint8) bool {
	n := len(parity)
	for _, line := range lines {
		if len(line) != n {
			panic("ecc: ParityLines length mismatch")
		}
	}
	i := 0
	for ; i+8 <= n; i += 8 {
		w := binary.LittleEndian.Uint64(parity[i:])
		for _, line := range lines {
			w ^= binary.LittleEndian.Uint64(line[i:])
		}
		if w != 0 {
			return false
		}
	}
	for ; i < n; i++ {
		b := parity[i]
		for _, line := range lines {
			b ^= line[i]
		}
		if b != 0 {
			return false
		}
	}
	return true
}
