package ecc

import "xedsim/internal/simrand"

// newTestRng gives detection tests a deterministic source without
// re-plumbing seeds through every helper.
func newTestRng() *simrand.Source { return simrand.New(0xec0de) }
