package ecc

// Hsiao implements a (72,64) odd-weight-column SECDED code (Hsiao, 1970) —
// the code most commercial ECC DIMMs actually use. Every column of the
// parity-check matrix has odd weight, which buys two properties the
// classic Hamming arrangement lacks:
//
//   - single- and double-error discrimination by syndrome *parity* alone
//     (odd-weight syndrome = correctable single error, even-weight nonzero
//     = detected double), with no separate overall-parity bit; and
//   - minimal, balanced row weights, i.e. the shallowest XOR trees.
//
// The paper's Table II contrasts Hamming and CRC8-ATM; Hsiao slots between
// them (better random-error detection than classic Hamming, still without
// CRC8-ATM's burst guarantee), so it is included both for completeness and
// as the natural third column for the detection-rate analysis.
type Hsiao struct {
	// colSyndrome[i] is the 8-bit syndrome of flipping codeword bit i
	// (0..63 data, 64..71 check).
	colSyndrome    [72]uint8
	posForSyndrome [256]uint8
	encodeTables   [8][256]uint8
}

// NewHsiao constructs the code. Data columns use the 64
// lexicographically-smallest odd-weight-3 and weight-5 bytes (C(8,3)=56
// weight-3 columns plus the first 8 weight-5 columns), check columns are
// the identity (weight 1) — the canonical (72,64) Hsiao construction.
func NewHsiao() *Hsiao {
	h := &Hsiao{}
	var cols []uint8
	for w := 3; w <= 7 && len(cols) < 64; w += 2 {
		for v := 1; v < 256 && len(cols) < 64; v++ {
			if popcount8(uint8(v)) == w {
				cols = append(cols, uint8(v))
			}
		}
	}
	for i := 0; i < 64; i++ {
		h.colSyndrome[i] = cols[i]
	}
	for i := 0; i < 8; i++ {
		h.colSyndrome[64+i] = 1 << uint(i)
	}
	for i := 0; i < 72; i++ {
		s := h.colSyndrome[i]
		if h.posForSyndrome[s] != 0 {
			panic("hsiao: duplicate column")
		}
		h.posForSyndrome[s] = uint8(i + 1)
	}
	for b := 0; b < 8; b++ {
		for v := 0; v < 256; v++ {
			var acc uint8
			for k := 0; k < 8; k++ {
				if v>>uint(k)&1 == 1 {
					acc ^= h.colSyndrome[b*8+k]
				}
			}
			h.encodeTables[b][v] = acc
		}
	}
	return h
}

// Name implements Code64.
func (h *Hsiao) Name() string { return "(72,64) Hsiao" }

func (h *Hsiao) dataSyndrome(data uint64) uint8 {
	var s uint8
	for b := 0; data != 0; b++ {
		s ^= h.encodeTables[b][uint8(data)]
		data >>= 8
	}
	return s
}

// Encode implements Code64. Check columns are the identity, so the check
// byte is simply the data syndrome.
func (h *Hsiao) Encode(data uint64) Codeword72 {
	return Codeword72{Data: data, Check: h.dataSyndrome(data)}
}

func (h *Hsiao) rawSyndrome(cw Codeword72) uint8 {
	return h.dataSyndrome(cw.Data) ^ cw.Check
}

// IsValid implements Code64.
func (h *Hsiao) IsValid(cw Codeword72) bool { return h.rawSyndrome(cw) == 0 }

// Decode implements Code64. Odd-weight syndrome: correct the named single
// bit (or flag if the syndrome names no column — a detected odd-weight
// multi-bit error). Even-weight nonzero syndrome: detected double error.
func (h *Hsiao) Decode(cw Codeword72) (uint64, DecodeStatus) {
	s := h.rawSyndrome(cw)
	if s == 0 {
		return cw.Data, StatusOK
	}
	if popcount8(s)%2 == 0 {
		return cw.Data, StatusDetected
	}
	pos := h.posForSyndrome[s]
	if pos == 0 {
		return cw.Data, StatusDetected
	}
	corrected := cw.FlipBit(int(pos - 1))
	return corrected.Data, StatusCorrected
}

// SerialOrder implements SerialOrderer: data bits then check bits, the
// natural lane order of a DIMM beat.
func (h *Hsiao) SerialOrder() [72]int {
	var order [72]int
	for i := range order {
		order[i] = i
	}
	return order
}
