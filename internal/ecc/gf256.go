package ecc

// Arithmetic over GF(2⁸), the symbol field for the Chipkill and
// Double-Chipkill Reed-Solomon codes (§II-D2, §IX). Each DRAM chip
// contributes one 8-bit symbol per beat (x8 devices) or one 4-bit nibble
// zero-extended to a symbol (x4 devices), so symbol-level correction equals
// chip-level correction.

// gfPoly is the primitive polynomial x⁸+x⁴+x³+x²+1 (0x11D), the common
// choice for byte-oriented Reed-Solomon codes.
const gfPoly = 0x11d

// gf holds the precomputed log/antilog tables. gfExp is doubled so that
// gfMul can skip the mod-255 reduction on the exponent sum.
var (
	gfExp [512]uint8
	gfLog [256]uint16
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = uint8(x)
		gfLog[x] = uint16(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies two field elements.
func gfMul(a, b uint8) uint8 {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[gfLog[a]+gfLog[b]]
}

// gfDiv divides a by b. It panics on division by zero.
func gfDiv(a, b uint8) uint8 {
	if b == 0 {
		panic("ecc: GF(256) division by zero")
	}
	if a == 0 {
		return 0
	}
	return gfExp[gfLog[a]+255-gfLog[b]]
}

// gfInv returns the multiplicative inverse of a. It panics if a is zero.
func gfInv(a uint8) uint8 {
	if a == 0 {
		panic("ecc: GF(256) inverse of zero")
	}
	return gfExp[255-gfLog[a]]
}

// gfPow returns alpha^n for the generator alpha = 0x02.
func gfPow(n int) uint8 {
	n %= 255
	if n < 0 {
		n += 255
	}
	return gfExp[n]
}

// --- polynomial helpers (coefficients low-degree first) ---

// polyEval evaluates p at x by Horner's rule.
func polyEval(p []uint8, x uint8) uint8 {
	var y uint8
	for i := len(p) - 1; i >= 0; i-- {
		y = gfMul(y, x) ^ p[i]
	}
	return y
}

// polyMul multiplies two polynomials.
func polyMul(a, b []uint8) []uint8 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]uint8, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			out[i+j] ^= gfMul(ai, bj)
		}
	}
	return out
}

// polyScale multiplies every coefficient of p by c.
func polyScale(p []uint8, c uint8) []uint8 {
	out := make([]uint8, len(p))
	for i, pi := range p {
		out[i] = gfMul(pi, c)
	}
	return out
}

// polyAdd adds (XORs) two polynomials.
func polyAdd(a, b []uint8) []uint8 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]uint8, n)
	copy(out, a)
	for i, bi := range b {
		out[i] ^= bi
	}
	return out
}

// polyDeriv returns the formal derivative of p. In characteristic 2 the
// even-power terms vanish and odd powers keep their coefficient.
func polyDeriv(p []uint8) []uint8 {
	if len(p) <= 1 {
		return []uint8{0}
	}
	return polyDerivInto(p, make([]uint8, len(p)-1))
}

// polyMulInto multiplies a and b into out's backing array, which must not
// alias either operand and must have capacity len(a)+len(b)-1.
func polyMulInto(a, b, out []uint8) []uint8 {
	out = out[:len(a)+len(b)-1]
	for i := range out {
		out[i] = 0
	}
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			out[i+j] ^= gfMul(ai, bj)
		}
	}
	return out
}

// polyDerivInto is polyDeriv writing into out's backing array (capacity
// len(p)-1, len(p) >= 2, must not alias p).
func polyDerivInto(p, out []uint8) []uint8 {
	out = out[:len(p)-1]
	for i := range out {
		out[i] = 0
	}
	for i := 1; i < len(p); i += 2 {
		out[i-1] = p[i]
	}
	return out
}
