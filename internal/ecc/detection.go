package ecc

import (
	"xedsim/internal/simrand"
)

// SerialOrderer is implemented by codes that define a physical transmission
// order for their 72 codeword bits. Burst errors are contiguous in this
// order: for Hamming, the classical position order 1..72; for CRC8-ATM, the
// polynomial (wire) order d63..d0,c7..c0. Table II's burst-error rows are
// measured along this order.
type SerialOrderer interface {
	// SerialOrder returns the Codeword72 bit index at each of the 72
	// serial positions.
	SerialOrder() [72]int
}

// SerialOrder implements SerialOrderer for the Hamming code: serial position
// k carries classical codeword position k+1.
func (h *Hamming) SerialOrder() [72]int {
	dataPos, checkPos := hammingLayout()
	var order [72]int
	for i, p := range dataPos {
		order[p-1] = i
	}
	for i, p := range checkPos {
		order[p-1] = 64 + i
	}
	return order
}

// SerialOrder implements SerialOrderer for CRC8-ATM: the message is shifted
// MSB-first (d63 first), followed by the check byte c7..c0.
func (c *CRC8ATM) SerialOrder() [72]int {
	var order [72]int
	for k := 0; k < 64; k++ {
		order[k] = 63 - k
	}
	for k := 0; k < 8; k++ {
		order[64+k] = 64 + (7 - k)
	}
	return order
}

// DetectionRates holds Table II measurements for one code: the fraction of
// k-bit error patterns (k = 1..8) whose syndrome is nonzero, i.e. that the
// code recognises as an invalid codeword. XED converts exactly this
// detection event into a catch-word, so these rates bound the quality of
// the erasure information the memory controller receives.
type DetectionRates struct {
	CodeName string
	// Random[k-1] is the detection rate of k independently placed bit
	// errors; Burst[k-1] of k contiguous (serial-order) bit errors.
	Random [8]float64
	Burst  [8]float64
}

// randomExhaustiveLimit bounds the number of patterns enumerated exactly;
// above it we Monte-Carlo sample. C(72,4) ≈ 1.03e6 is comfortably below.
const randomExhaustiveLimit = 2_000_000

// MeasureDetection measures Table II for the given code. Patterns are
// applied to the all-zero codeword; by linearity the syndrome depends only
// on the error pattern, so this loses no generality. samples controls the
// Monte-Carlo sample count used for weights whose pattern space is too big
// to enumerate (k >= 5); seed makes runs reproducible.
func MeasureDetection(code Code64, samples int, seed uint64) DetectionRates {
	res := DetectionRates{CodeName: code.Name()}
	rng := simrand.New(seed)
	for k := 1; k <= 8; k++ {
		if binomial(72, k) <= randomExhaustiveLimit {
			res.Random[k-1] = detectRandomExhaustive(code, k)
		} else {
			res.Random[k-1] = detectRandomSampled(code, k, samples, rng)
		}
		res.Burst[k-1] = detectBurst(code, k)
	}
	return res
}

func binomial(n, k int) int {
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}

// detectRandomExhaustive enumerates every k-subset of the 72 bit positions.
func detectRandomExhaustive(code Code64, k int) float64 {
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	total, detected := 0, 0
	for {
		cw := Codeword72{}
		for _, p := range idx {
			cw = cw.FlipBit(p)
		}
		total++
		if !code.IsValid(cw) {
			detected++
		}
		// Advance the combination odometer.
		i := k - 1
		for i >= 0 && idx[i] == 72-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	return float64(detected) / float64(total)
}

// detectRandomSampled draws `samples` uniformly random k-subsets.
func detectRandomSampled(code Code64, k, samples int, rng *simrand.Source) float64 {
	detected := 0
	var positions [8]int
	for s := 0; s < samples; s++ {
		// Sample k distinct positions by rejection; k <= 8 of 72 so
		// collisions are rare.
		n := 0
		for n < k {
			p := rng.Intn(72)
			dup := false
			for i := 0; i < n; i++ {
				if positions[i] == p {
					dup = true
					break
				}
			}
			if !dup {
				positions[n] = p
				n++
			}
		}
		cw := Codeword72{}
		for i := 0; i < k; i++ {
			cw = cw.FlipBit(positions[i])
		}
		if !code.IsValid(cw) {
			detected++
		}
	}
	return float64(detected) / float64(samples)
}

// detectBurst enumerates every length-k contiguous window in the code's
// serial order (all 73-k of them) with all k bits flipped.
func detectBurst(code Code64, k int) float64 {
	order := serialOrderOf(code)
	total, detected := 0, 0
	for start := 0; start+k <= 72; start++ {
		cw := Codeword72{}
		for i := 0; i < k; i++ {
			cw = cw.FlipBit(order[start+i])
		}
		total++
		if !code.IsValid(cw) {
			detected++
		}
	}
	return float64(detected) / float64(total)
}

func serialOrderOf(code Code64) [72]int {
	if so, ok := code.(SerialOrderer); ok {
		return so.SerialOrder()
	}
	var order [72]int
	for i := range order {
		order[i] = i
	}
	return order
}

// UndetectedMultiBitFraction returns the probability that a multi-bit error
// (uniform random 2..8 bit pattern mix matching the paper's word-failure
// model) goes undetected by the code. The paper uses 0.8% for this figure
// (§VI, §VIII); it is the complement of the average random detection rate
// over even weights dominated by weight 4.
func UndetectedMultiBitFraction(r DetectionRates) float64 {
	// Word failures corrupt a random subset of the 64 data bits; weight
	// w of a uniform random pattern is Binomial(72, 1/2) conditioned on
	// w >= 2, but detection only discriminates at small weights. We
	// report the worst measured even-weight miss rate, which matches
	// the paper's quoted 0.8% (CRC8-ATM weight-4 misses).
	worst := 0.0
	for k := 2; k <= 8; k += 2 {
		miss := 1 - r.Random[k-1]
		if miss > worst {
			worst = miss
		}
	}
	return worst
}
