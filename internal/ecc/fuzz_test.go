package ecc

import "testing"

// Fuzz targets: the decoders must never panic, must round-trip clean
// codewords, and must never "correct" a clean codeword into different
// data, for arbitrary inputs. Run with `go test -fuzz=FuzzCode64 ./internal/ecc`
// for continuous fuzzing; the seed corpus runs in normal test mode.

func fuzzCode(f *testing.F, code Code64) {
	f.Add(uint64(0), uint64(0), uint8(0))
	f.Add(uint64(0xdeadbeefcafebabe), uint64(1)<<13, uint8(0x80))
	f.Add(^uint64(0), ^uint64(0), uint8(0xff))
	f.Fuzz(func(t *testing.T, data, flipData uint64, flipCheck uint8) {
		cw := code.Encode(data)
		if !code.IsValid(cw) {
			t.Fatalf("%s: Encode(%#x) invalid", code.Name(), data)
		}
		got, st := code.Decode(cw)
		if st != StatusOK || got != data {
			t.Fatalf("%s: clean decode (%#x, %v)", code.Name(), got, st)
		}
		// Arbitrary corruption: decode must terminate with a coherent
		// status and, for single-bit flips, must correct exactly.
		bad := cw.FlipMask(flipData, flipCheck)
		got, st = code.Decode(bad)
		switch st {
		case StatusOK:
			if flipData != 0 || flipCheck != 0 {
				// Zero-syndrome corruption: pattern is a codeword;
				// data must have changed or pattern was empty.
				if got != bad.Data {
					t.Fatalf("%s: StatusOK but data rewritten", code.Name())
				}
			}
		case StatusCorrected, StatusDetected:
			// fine
		default:
			t.Fatalf("%s: unknown status %v", code.Name(), st)
		}
		if oneBit(flipData, flipCheck) {
			if st != StatusCorrected || got != data {
				t.Fatalf("%s: single-bit flip not corrected (%v)", code.Name(), st)
			}
		}
	})
}

func oneBit(d uint64, c uint8) bool {
	n := 0
	for x := d; x != 0; x &= x - 1 {
		n++
	}
	for x := c; x != 0; x &= x - 1 {
		n++
	}
	return n == 1
}

func FuzzCode64Hamming(f *testing.F) { fuzzCode(f, NewHamming()) }
func FuzzCode64CRC8(f *testing.F)    { fuzzCode(f, NewCRC8ATM()) }
func FuzzCode64Hsiao(f *testing.F)   { fuzzCode(f, NewHsiao()) }

// FuzzRSDecode: the Reed-Solomon decoder must never panic or accept an
// uncorrectable word as clean, whatever garbage arrives.
func FuzzRSDecode(f *testing.F) {
	rs := NewChipkill()
	f.Add([]byte{1, 2, 3}, uint8(0), uint8(0))
	f.Add(make([]byte, 18), uint8(3), uint8(200))
	f.Fuzz(func(t *testing.T, seedData []byte, errPos, errVal uint8) {
		data := make([]uint8, rs.K)
		copy(data, seedData)
		cw := rs.Encode(data)
		if !rs.IsValid(cw) {
			t.Fatal("encode invalid")
		}
		bad := make([]uint8, len(cw))
		copy(bad, cw)
		bad[int(errPos)%len(bad)] ^= errVal
		fixed, st := rs.Decode(bad)
		if errVal == 0 {
			if st != StatusOK {
				t.Fatalf("clean word status %v", st)
			}
			return
		}
		if st != StatusCorrected {
			t.Fatalf("single symbol error status %v", st)
		}
		for i := range cw {
			if fixed[i] != cw[i] {
				t.Fatalf("mis-corrected symbol %d", i)
			}
		}
	})
}
