package ecc

import "testing"

// Fuzz targets: the decoders must never panic, must round-trip clean
// codewords, and must never "correct" a clean codeword into different
// data, for arbitrary inputs. Run with `go test -fuzz=FuzzCode64 ./internal/ecc`
// for continuous fuzzing; the seed corpus runs in normal test mode.

func fuzzCode(f *testing.F, code Code64) {
	f.Add(uint64(0), uint64(0), uint8(0))
	f.Add(uint64(0xdeadbeefcafebabe), uint64(1)<<13, uint8(0x80))
	f.Add(^uint64(0), ^uint64(0), uint8(0xff))
	f.Fuzz(func(t *testing.T, data, flipData uint64, flipCheck uint8) {
		cw := code.Encode(data)
		if !code.IsValid(cw) {
			t.Fatalf("%s: Encode(%#x) invalid", code.Name(), data)
		}
		got, st := code.Decode(cw)
		if st != StatusOK || got != data {
			t.Fatalf("%s: clean decode (%#x, %v)", code.Name(), got, st)
		}
		// Arbitrary corruption: decode must terminate with a coherent
		// status and, for single-bit flips, must correct exactly.
		bad := cw.FlipMask(flipData, flipCheck)
		got, st = code.Decode(bad)
		switch st {
		case StatusOK:
			if flipData != 0 || flipCheck != 0 {
				// Zero-syndrome corruption: pattern is a codeword;
				// data must have changed or pattern was empty.
				if got != bad.Data {
					t.Fatalf("%s: StatusOK but data rewritten", code.Name())
				}
			}
		case StatusCorrected, StatusDetected:
			// fine
		default:
			t.Fatalf("%s: unknown status %v", code.Name(), st)
		}
		if oneBit(flipData, flipCheck) {
			if st != StatusCorrected || got != data {
				t.Fatalf("%s: single-bit flip not corrected (%v)", code.Name(), st)
			}
		}
	})
}

func oneBit(d uint64, c uint8) bool {
	n := 0
	for x := d; x != 0; x &= x - 1 {
		n++
	}
	for x := c; x != 0; x &= x - 1 {
		n++
	}
	return n == 1
}

func FuzzCode64Hamming(f *testing.F) { fuzzCode(f, NewHamming()) }
func FuzzCode64CRC8(f *testing.F)    { fuzzCode(f, NewCRC8ATM()) }
func FuzzCode64Hsiao(f *testing.F)   { fuzzCode(f, NewHsiao()) }

// FuzzCRC8Miscorrection pins the shape of CRC8-ATM mis-correction, the
// hazard Table II quantifies. For an arbitrary corruption pattern:
// weight-1 corrects exactly, weight-2 always detects (HD >= 4), and
// whenever Decode claims StatusCorrected the result must actually be a
// codeword one bit-flip away from the received word — a mis-correction is
// allowed to pick the *wrong* codeword, never a non-codeword.
func FuzzCRC8Miscorrection(f *testing.F) {
	code := NewCRC8ATM()
	f.Add(uint64(0), uint64(0), uint8(0))
	f.Add(uint64(0x0123456789abcdef), uint64(0b11), uint8(0))
	f.Add(^uint64(0), uint64(1)<<63, uint8(1))
	f.Add(uint64(42), uint64(0xf0), uint8(0x0f))
	f.Fuzz(func(t *testing.T, data, flipData uint64, flipCheck uint8) {
		clean := code.Encode(data)
		bad := clean.FlipMask(flipData, flipCheck)
		got, st := code.Decode(bad)
		weight := patternWeight(flipData, flipCheck)
		switch weight {
		case 0:
			if st != StatusOK || got != data {
				t.Fatalf("clean word: (%#x, %v)", got, st)
			}
		case 1:
			if st != StatusCorrected || got != data {
				t.Fatalf("weight-1: (%#x, %v), want exact correction", got, st)
			}
		case 2:
			if st != StatusDetected {
				t.Fatalf("weight-2 flip (%#x, %#x): status %v, want detected", flipData, flipCheck, st)
			}
		default:
			if st == StatusCorrected {
				// A claimed correction must land on a real codeword
				// reachable by one flip from the received word.
				recoded := code.Encode(got)
				d := patternWeight(recoded.Data^bad.Data, recoded.Check^bad.Check)
				if d > 1 {
					t.Fatalf("weight-%d mis-correction to %#x is %d flips from received word", weight, got, d)
				}
			}
		}
		if weight > 0 && st == StatusOK && bad != clean {
			// Only full codeword-difference patterns may alias to clean.
			if !code.IsValid(bad) {
				t.Fatalf("StatusOK on invalid codeword (weight %d)", weight)
			}
		}
	})
}

// FuzzLinearCodeVsHandRolled is the differential oracle for the generic
// matrix-driven engine: LinearCode64 instantiated with the Hamming, Hsiao
// and CRC8-ATM parity-check matrices must agree with the hand-rolled
// codecs bit for bit — same check byte from Encode, same validity verdict,
// same Decode status AND same (possibly mis-corrected) data — for every
// data word and every corruption pattern. Any divergence means either the
// table construction or the decode-policy classifier is wrong.
func FuzzLinearCodeVsHandRolled(f *testing.F) {
	pairs := handRolledPairs()
	f.Add(uint64(0), uint64(0), uint8(0))
	f.Add(uint64(0xdeadbeefcafebabe), uint64(1)<<13, uint8(0x80))
	f.Add(uint64(0x0123456789abcdef), uint64(0b11), uint8(0))
	f.Add(^uint64(0), uint64(0xf0f0), uint8(0x0f))
	f.Add(uint64(42), uint64(0), uint8(0xff))
	f.Fuzz(func(t *testing.T, data, flipData uint64, flipCheck uint8) {
		for _, p := range pairs {
			refCW := p.ref.Encode(data)
			if linCW := p.lin.Encode(data); linCW != refCW {
				t.Fatalf("%s: Encode(%#x) = %+v, hand-rolled %+v", p.name, data, linCW, refCW)
			}
			bad := refCW.FlipMask(flipData, flipCheck)
			if rv, lv := p.ref.IsValid(bad), p.lin.IsValid(bad); rv != lv {
				t.Fatalf("%s: IsValid(%+v) = %v, hand-rolled %v", p.name, bad, lv, rv)
			}
			rd, rs := p.ref.Decode(bad)
			ld, ls := p.lin.Decode(bad)
			if rd != ld || rs != ls {
				t.Fatalf("%s: Decode(%+v) = (%#x, %v), hand-rolled (%#x, %v)", p.name, bad, ld, ls, rd, rs)
			}
		}
	})
}

func patternWeight(d uint64, c uint8) int {
	n := 0
	for x := d; x != 0; x &= x - 1 {
		n++
	}
	for x := c; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// FuzzRSErasureRoundTrip: the errors-and-erasures decoder must recover
// any corruption confined to <= R erased positions, exactly, at every
// position pair — the §IX-A XED+Chipkill contract.
func FuzzRSErasureRoundTrip(f *testing.F) {
	rs := NewChipkill() // RS(16,2)
	f.Add([]byte{1, 2, 3, 4}, uint8(0), uint8(17), uint8(0xff), uint8(0x80))
	f.Add(make([]byte, 16), uint8(5), uint8(5), uint8(1), uint8(0))
	f.Add([]byte{0xaa}, uint8(16), uint8(17), uint8(0x55), uint8(0x55))
	f.Fuzz(func(t *testing.T, seedData []byte, posA, posB, valA, valB uint8) {
		n := rs.K + rs.R
		data := make([]uint8, rs.K)
		copy(data, seedData)
		clean := rs.Encode(data)
		bad := make([]uint8, n)
		copy(bad, clean)
		i, j := int(posA)%n, int(posB)%n
		bad[i] ^= valA
		erasures := []int{i}
		if j != i {
			bad[j] ^= valB
			erasures = append(erasures, j)
		}
		fixed, err := rs.CorrectErasuresOnly(bad, erasures)
		if err != nil {
			t.Fatalf("erasures %v: %v", erasures, err)
		}
		for k := range clean {
			if fixed[k] != clean[k] {
				t.Fatalf("erasures %v: symbol %d = %#x, want %#x", erasures, k, fixed[k], clean[k])
			}
		}
		// The pure-erasure path must agree with the general decoder when
		// the corruption is within its correction radius.
		if len(erasures) == 1 || valB == 0 {
			decoded, st := rs.Decode(bad)
			if valA == 0 && (j == i || valB == 0) {
				if st != StatusOK {
					t.Fatalf("clean word decoded as %v", st)
				}
			} else if st == StatusCorrected {
				for k := range clean {
					if decoded[k] != clean[k] {
						t.Fatalf("Decode and erasure decode disagree at symbol %d", k)
					}
				}
			}
		}
	})
}

// FuzzRSDecode: the Reed-Solomon decoder must never panic or accept an
// uncorrectable word as clean, whatever garbage arrives.
func FuzzRSDecode(f *testing.F) {
	rs := NewChipkill()
	f.Add([]byte{1, 2, 3}, uint8(0), uint8(0))
	f.Add(make([]byte, 18), uint8(3), uint8(200))
	f.Fuzz(func(t *testing.T, seedData []byte, errPos, errVal uint8) {
		data := make([]uint8, rs.K)
		copy(data, seedData)
		cw := rs.Encode(data)
		if !rs.IsValid(cw) {
			t.Fatal("encode invalid")
		}
		bad := make([]uint8, len(cw))
		copy(bad, cw)
		bad[int(errPos)%len(bad)] ^= errVal
		fixed, st := rs.Decode(bad)
		if errVal == 0 {
			if st != StatusOK {
				t.Fatalf("clean word status %v", st)
			}
			return
		}
		if st != StatusCorrected {
			t.Fatalf("single symbol error status %v", st)
		}
		for i := range cw {
			if fixed[i] != cw[i] {
				t.Fatalf("mis-corrected symbol %d", i)
			}
		}
	})
}
