package ecc

import (
	"strings"
	"testing"

	"xedsim/internal/simrand"
)

// handRolledPairs returns each hand-rolled codec next to a LinearCode64
// built from its own parity-check matrix; the pairs must be bit-for-bit
// interchangeable (the tentpole's correctness anchor).
func handRolledPairs() []struct {
	name string
	ref  Code64
	lin  *LinearCode64
} {
	hamming := NewHamming()
	hsiao := NewHsiao()
	crc8 := NewCRC8ATM()
	return []struct {
		name string
		ref  Code64
		lin  *LinearCode64
	}{
		{"hamming", hamming, MustLinearCode64("linear-hamming", hamming.Matrix())},
		{"hsiao", hsiao, MustLinearCode64("linear-hsiao", hsiao.Matrix())},
		{"crc8", crc8, MustLinearCode64("linear-crc8", crc8.Matrix())},
	}
}

func TestLinearMatchesHandRolledExhaustiveErrors(t *testing.T) {
	for _, p := range handRolledPairs() {
		t.Run(p.name, func(t *testing.T) {
			rng := simrand.New(11)
			for trial := 0; trial < 8; trial++ {
				v := rng.Uint64()
				refCW := p.ref.Encode(v)
				linCW := p.lin.Encode(v)
				if refCW != linCW {
					t.Fatalf("Encode(%#x): linear %+v, hand-rolled %+v", v, linCW, refCW)
				}
				// All weight-1 and weight-2 error patterns.
				for i := 0; i < 72; i++ {
					compareDecode(t, p.ref, p.lin, refCW.FlipBit(i))
					for j := i + 1; j < 72; j++ {
						compareDecode(t, p.ref, p.lin, refCW.FlipBit(i).FlipBit(j))
					}
				}
			}
		})
	}
}

func TestLinearMatchesHandRolledRandomErrors(t *testing.T) {
	for _, p := range handRolledPairs() {
		t.Run(p.name, func(t *testing.T) {
			rng := simrand.New(23)
			for trial := 0; trial < 20000; trial++ {
				cw := p.ref.Encode(rng.Uint64()).FlipMask(rng.Uint64(), uint8(rng.Uint64()))
				compareDecode(t, p.ref, p.lin, cw)
			}
		})
	}
}

func compareDecode(t *testing.T, ref Code64, lin *LinearCode64, cw Codeword72) {
	t.Helper()
	if rv, lv := ref.IsValid(cw), lin.IsValid(cw); rv != lv {
		t.Fatalf("IsValid(%+v): linear %v, hand-rolled %v", cw, lv, rv)
	}
	rd, rs := ref.Decode(cw)
	ld, ls := lin.Decode(cw)
	if rd != ld || rs != ls {
		t.Fatalf("Decode(%+v): linear (%#x, %v), hand-rolled (%#x, %v)", cw, ld, ls, rd, rs)
	}
}

func TestLinearRejectsZeroColumn(t *testing.T) {
	h := NewHsiao().Matrix()
	h[17] = 0
	if _, err := NewLinearCode64("bad", h); err == nil || !strings.Contains(err.Error(), "column 17") {
		t.Fatalf("zero column: err = %v, want mention of column 17", err)
	}
}

func TestLinearRejectsDuplicateColumns(t *testing.T) {
	// The satellite bug: a silent posForSyndrome overwrite would alias two
	// positions onto one syndrome. The constructor must name both columns
	// and the shared syndrome.
	h := NewHsiao().Matrix()
	h[40] = h[3]
	_, err := NewLinearCode64("bad", h)
	if err == nil {
		t.Fatal("duplicate columns accepted")
	}
	for _, want := range []string{"columns 3 and 40", "mis-correct"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestLinearRejectsSingularCheckSubmatrix(t *testing.T) {
	h := NewHsiao().Matrix()
	// Replace the first three check columns with 0x03, 0x05 and their sum
	// 0x06: rank drops to 7 while all 72 columns stay distinct and nonzero
	// (Hsiao data columns all have odd weight; these are even).
	h[64], h[65], h[66] = 0x03, 0x05, 0x06
	_, err := NewLinearCode64("bad", h)
	if err == nil || !strings.Contains(err.Error(), "singular") {
		t.Fatalf("singular check submatrix: err = %v, want 'singular'", err)
	}
}

func TestLinearParityFunctionals(t *testing.T) {
	// The classifier must recover each hand-rolled code's discrimination
	// rule exactly: Hamming gates on the overall-parity syndrome bit
	// (u = 0x80), Hsiao on syndrome popcount (u = 0xff). CRC8-ATM's
	// generator is divisible by (x+1), so all codewords have even weight
	// and a functional exists for it too.
	cases := []struct {
		code Code64
		m    HMatrix72
		want uint8
		ok   bool
	}{
		{NewHamming(), NewHamming().Matrix(), 0x80, true},
		{NewHsiao(), NewHsiao().Matrix(), 0xff, true},
	}
	for _, c := range cases {
		lin := MustLinearCode64("t", c.m)
		if u, ok := lin.ParityFunctional(); ok != c.ok || u != c.want {
			t.Errorf("%s: parity functional (%#02x, %v), want (%#02x, %v)", c.code.Name(), u, ok, c.want, c.ok)
		}
	}
	crc := MustLinearCode64("t", NewCRC8ATM().Matrix())
	u, ok := crc.ParityFunctional()
	if !ok {
		t.Fatal("CRC8-ATM: no parity functional found")
	}
	for i, col := range crc.Matrix() {
		if popcount8(u&col)%2 != 1 {
			t.Fatalf("CRC8-ATM: functional %#02x misses column %d (%#02x)", u, i, col)
		}
	}
}

func TestRandomSECDEDDeterministicAndSECDED(t *testing.T) {
	a := RandomSECDED(simrand.New(99))
	b := RandomSECDED(simrand.New(99))
	if a.Name() != b.Name() || a.Matrix() != b.Matrix() {
		t.Fatal("same seed drew different codes")
	}
	if c := RandomSECDED(simrand.New(100)); c.Matrix() == a.Matrix() {
		t.Fatal("different seeds drew the same code")
	}
	if !a.IsSECDED() {
		t.Fatal("random draw is not SECDED-classifiable")
	}
	if u, _ := a.ParityFunctional(); u != 0xff {
		t.Fatalf("canonical-form draw has functional %#02x, want 0xff", u)
	}
}

func TestRandomSECDEDCorrectsAndDetects(t *testing.T) {
	// The SECDED contract over several draws: every single-bit error is
	// corrected exactly, every double-bit error is detected (never valid,
	// never mis-corrected).
	for seed := uint64(0); seed < 4; seed++ {
		code := RandomSECDED(simrand.New(seed))
		v := uint64(0x0123456789abcdef)
		cw := code.Encode(v)
		for i := 0; i < 72; i++ {
			got, st := code.Decode(cw.FlipBit(i))
			if st != StatusCorrected || got != v {
				t.Fatalf("%s: single error at %d -> (%#x, %v)", code.Name(), i, got, st)
			}
			for j := i + 1; j < 72; j++ {
				bad := cw.FlipBit(i).FlipBit(j)
				if code.IsValid(bad) {
					t.Fatalf("%s: double error (%d,%d) valid", code.Name(), i, j)
				}
				if _, st := code.Decode(bad); st != StatusDetected {
					t.Fatalf("%s: double error (%d,%d) status %v", code.Name(), i, j, st)
				}
			}
		}
	}
}

func TestCanonicalForm(t *testing.T) {
	// Hsiao and CRC8 already have identity check columns: canonical form
	// is the identity transform.
	for _, m := range []HMatrix72{NewHsiao().Matrix(), NewCRC8ATM().Matrix()} {
		c, err := m.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if c != m {
			t.Fatal("canonical form of an already-canonical matrix changed it")
		}
	}
	// Hamming's check columns are not the identity (each carries the
	// overall-parity row). Canonicalisation must produce identity check
	// columns while preserving the codeword set.
	ham := NewHamming()
	canon, err := ham.Matrix().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 8; a++ {
		if canon[64+a] != 1<<uint(a) {
			t.Fatalf("canonical check column %d = %#02x, want %#02x", a, canon[64+a], 1<<uint(a))
		}
	}
	lin := MustLinearCode64("canon-hamming", canon)
	rng := simrand.New(5)
	for trial := 0; trial < 5000; trial++ {
		v := rng.Uint64()
		if ham.Encode(v) != lin.Encode(v) {
			t.Fatalf("canonical code encodes %#x differently", v)
		}
		cw := ham.Encode(v).FlipMask(rng.Uint64(), uint8(rng.Uint64()))
		if ham.IsValid(cw) != lin.IsValid(cw) {
			t.Fatalf("canonical code disagrees on validity of %+v", cw)
		}
	}
}

func TestHMatrixString(t *testing.T) {
	s := NewHsiao().Matrix().String()
	if !strings.Contains(s, "|") || !strings.Contains(s, "07") {
		t.Fatalf("unexpected rendering: %q", s)
	}
}

func BenchmarkLinearEncode(b *testing.B) {
	code := MustLinearCode64("bench", NewHsiao().Matrix())
	var sink Codeword72
	for i := 0; i < b.N; i++ {
		sink = code.Encode(uint64(i) * 0x9e3779b97f4a7c15)
	}
	_ = sink
}

func BenchmarkLinearDecode(b *testing.B) {
	code := MustLinearCode64("bench", NewHsiao().Matrix())
	cw := code.Encode(0xdeadbeefcafebabe)
	var sink uint64
	for i := 0; i < b.N; i++ {
		v, _ := code.Decode(cw)
		sink += v
	}
	_ = sink
}
