package ecc

import (
	"testing"
	"testing/quick"

	"xedsim/internal/simrand"
)

func TestCRC8RoundTrip(t *testing.T) {
	c := NewCRC8ATM()
	f := func(v uint64) bool {
		cw := c.Encode(v)
		if !c.IsValid(cw) {
			return false
		}
		got, st := c.Decode(cw)
		return st == StatusOK && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCRC8KnownVector(t *testing.T) {
	// CRC-8/ATM ("CRC-8" in the RevEng catalogue): poly 0x07, init 0,
	// no reflection, xorout 0. The check value of "123456789" is 0xF4.
	c := NewCRC8ATM()
	var r uint8
	for _, b := range []byte("123456789") {
		r = c.table[r^b]
	}
	if r != 0xf4 {
		t.Fatalf("CRC8-ATM check value = %#x, want 0xf4", r)
	}
}

func TestCRC8CorrectsEverySingleBit(t *testing.T) {
	c := NewCRC8ATM()
	rng := simrand.New(2)
	for trial := 0; trial < 32; trial++ {
		v := rng.Uint64()
		cw := c.Encode(v)
		for bit := 0; bit < 72; bit++ {
			got, st := c.Decode(cw.FlipBit(bit))
			if st != StatusCorrected || got != v {
				t.Fatalf("bit %d: got %#x status %v, want corrected %#x", bit, got, st, v)
			}
		}
	}
}

func TestCRC8DetectsEveryDoubleBit(t *testing.T) {
	// HD=4 at this length: every 2-bit error must be detected and must
	// NOT alias to a single-bit syndrome (which would mis-correct).
	c := NewCRC8ATM()
	cw := c.Encode(0x0123456789abcdef)
	for i := 0; i < 72; i++ {
		for j := i + 1; j < 72; j++ {
			bad := cw.FlipBit(i).FlipBit(j)
			if c.IsValid(bad) {
				t.Fatalf("double error (%d,%d) is a valid codeword", i, j)
			}
			_, st := c.Decode(bad)
			if st != StatusDetected {
				t.Fatalf("double error (%d,%d) mis-corrected (status %v)", i, j, st)
			}
		}
	}
}

func TestCRC8DetectsAllBurstsUpTo8(t *testing.T) {
	// A degree-8 CRC detects every burst of length <= 8 in wire order —
	// the paper's headline argument for CRC8-ATM (Table II, 100% burst
	// column). Exhaustive over all windows and all interior patterns.
	c := NewCRC8ATM()
	order := c.SerialOrder()
	for length := 1; length <= 8; length++ {
		for start := 0; start+length <= 72; start++ {
			// All patterns with first and last bit of the window
			// set (defining a burst of exactly this length).
			interior := length - 2
			patterns := 1
			if interior > 0 {
				patterns = 1 << uint(interior)
			}
			for pat := 0; pat < patterns; pat++ {
				cw := Codeword72{}.FlipBit(order[start])
				if length > 1 {
					cw = cw.FlipBit(order[start+length-1])
				}
				for b := 0; b < interior; b++ {
					if pat>>uint(b)&1 == 1 {
						cw = cw.FlipBit(order[start+1+b])
					}
				}
				if c.IsValid(cw) {
					t.Fatalf("burst len=%d start=%d pattern=%#x undetected", length, start, pat)
				}
			}
		}
	}
}

func TestCRC8TableMatchesBitwise(t *testing.T) {
	c := NewCRC8ATM()
	bitwise := func(data uint64) uint8 {
		var r uint8
		for i := 63; i >= 0; i-- {
			in := uint8(data>>uint(i)) & 1
			fb := (r>>7)&1 ^ in
			r <<= 1
			if fb == 1 {
				r ^= crc8Poly
			}
		}
		return r
	}
	rng := simrand.New(11)
	for i := 0; i < 5000; i++ {
		v := rng.Uint64()
		if got, want := c.crcData(v), bitwise(v); got != want {
			t.Fatalf("crcData(%#x) = %#x, want %#x", v, got, want)
		}
	}
}

func TestCRC8LinearityProperty(t *testing.T) {
	// CRC over GF(2) is linear: crc(a^b) == crc(a)^crc(b).
	c := NewCRC8ATM()
	f := func(a, b uint64) bool {
		return c.crcData(a^b) == c.crcData(a)^c.crcData(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSerialOrdersArePermutations(t *testing.T) {
	for _, code := range []Code64{NewHamming(), NewCRC8ATM()} {
		so := code.(SerialOrderer).SerialOrder()
		seen := [72]bool{}
		for _, idx := range so {
			if idx < 0 || idx >= 72 || seen[idx] {
				t.Fatalf("%s: serial order is not a permutation", code.Name())
			}
			seen[idx] = true
		}
	}
}

func BenchmarkCRC8Encode(b *testing.B) {
	c := NewCRC8ATM()
	var sink Codeword72
	for i := 0; i < b.N; i++ {
		sink = c.Encode(uint64(i) * 0x9e3779b97f4a7c15)
	}
	_ = sink
}

func BenchmarkCRC8Decode(b *testing.B) {
	c := NewCRC8ATM()
	cw := c.Encode(0xdeadbeefcafebabe)
	var sink uint64
	for i := 0; i < b.N; i++ {
		v, _ := c.Decode(cw)
		sink += v
	}
	_ = sink
}
