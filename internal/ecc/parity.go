package ecc

// RAID-3 style XOR parity across the data chips of a DIMM (§V-C). During a
// write, the parity of the eight 64-bit data beats is stored in the ninth
// chip; on a read the controller can (a) verify that the XOR of all nine
// words is zero, and (b) reconstruct any single erased word from the other
// eight — the erasure position being supplied by a catch-word.

// ParityWords is the number of data words covered by one parity word on a
// 9-chip x8 ECC-DIMM: one 64-bit beat from each of the eight data chips.
const ParityWords = 8

// Parity returns the XOR of the given data words. On a 9-chip DIMM words
// holds the 8 data-chip beats; the result is stored in the parity chip.
func Parity(words []uint64) uint64 {
	var p uint64
	for _, w := range words {
		p ^= w
	}
	return p
}

// CheckParity reports whether parity is consistent with words, i.e.
// Equation (1) of the paper: parity ⊕ D0 ⊕ … ⊕ D7 = 0.
func CheckParity(words []uint64, parity uint64) bool {
	return Parity(words) == parity
}

// Reconstruct recovers the word at index erased using the parity word and
// the remaining data words, per Equation (3): D3 = D0⊕D1⊕D2⊕Parity⊕D4⊕…⊕D7.
// The value currently stored at words[erased] is ignored. It panics if
// erased is out of range.
func Reconstruct(words []uint64, parity uint64, erased int) uint64 {
	if erased < 0 || erased >= len(words) {
		panic("ecc: Reconstruct erase index out of range")
	}
	v := parity
	for i, w := range words {
		if i != erased {
			v ^= w
		}
	}
	return v
}

// Ambiguity returns the XOR of all words and parity. For a single erasure
// this equals the erased word XOR its stored (corrupt) value; for sound
// data it is zero. The XED controller uses a nonzero value with *no*
// catch-word present as the trigger for fault diagnosis (§VI).
func Ambiguity(words []uint64, parity uint64) uint64 {
	return Parity(words) ^ parity
}
