package ecc

import (
	"errors"
	"fmt"
)

// Reed-Solomon symbol codes over GF(2⁸).
//
// Chipkill assigns one code symbol per DRAM chip, so correcting a symbol
// corrects a whole-chip failure (§II-D2). The paper's three symbol-code
// configurations are all shortened RS codes:
//
//   - Chipkill ("SSC-DSD"): 16 data + 2 check symbols (18 chips). Corrects
//     any single symbol error; flags inconsistent syndromes (two-symbol
//     errors) as detected-uncorrectable.
//   - Double-Chipkill: 32 data + 4 check symbols (36 chips). Corrects any
//     two symbol errors (Berlekamp-Massey + Chien + Forney).
//   - XED on Chipkill (§IX): 16 data + 2 check symbols used as an *erasure*
//     code: with the faulty chips named by catch-words, two check symbols
//     recover two erased symbols — Double-Chipkill-level correction from
//     Single-Chipkill hardware.
//
// Symbols are indexed by chip: data symbols first, then check symbols.
// Codeword symbol i is associated with evaluation point alpha^i.

// RS is a shortened systematic Reed-Solomon code with K data symbols and R
// check symbols (N = K+R total). The generator polynomial has roots
// alpha^0 .. alpha^{R-1}.
type RS struct {
	K, R int
	gen  []uint8 // generator polynomial, low-degree first, monic
	// synTab holds the per-position per-symbol syndrome contribution
	// rows (batch.go); nil for codes above synTabLimit, which keep the
	// Horner path.
	synTab []uint8
}

// ErrTooManyErasures is returned when more erasures are supplied than the
// code's check symbols can recover.
var ErrTooManyErasures = errors.New("ecc: erasure count exceeds check symbols")

// NewRS constructs an RS(K+R, K) code. It panics for non-positive sizes or
// codes longer than the field allows (K+R > 255).
func NewRS(k, r int) *RS {
	if k <= 0 || r <= 0 || k+r > 255 {
		panic(fmt.Sprintf("ecc: invalid RS parameters k=%d r=%d", k, r))
	}
	gen := []uint8{1}
	for i := 0; i < r; i++ {
		gen = polyMul(gen, []uint8{gfPow(i), 1})
	}
	rs := &RS{K: k, R: r, gen: gen}
	rs.buildSynTab()
	return rs
}

// Name identifies the code configuration.
func (rs *RS) Name() string { return fmt.Sprintf("RS(%d,%d) over GF(256)", rs.K+rs.R, rs.K) }

// Encode appends R check symbols to the K data symbols in data, returning a
// full codeword of length K+R. It panics if len(data) != K.
func (rs *RS) Encode(data []uint8) []uint8 {
	return rs.EncodeInto(data, nil)
}

// EncodeInto is Encode writing into cw's backing array when it has capacity
// K+R (allocating otherwise). The check symbols are computed directly in
// cw[K:], which doubles as the LFSR remainder register, so a warm buffer
// makes encoding allocation-free. data may alias cw[:K].
func (rs *RS) EncodeInto(data, cw []uint8) []uint8 {
	if len(data) != rs.K {
		panic("ecc: RS Encode data length mismatch")
	}
	// Systematic encoding: codeword = data · x^R mod gen appended.
	// Represent message with data symbol i at coefficient R + (K-1-i) so
	// symbol order matches chip order after the remainder is prefixed.
	n := rs.K + rs.R
	if cap(cw) < n {
		cw = make([]uint8, n)
	} else {
		cw = cw[:n]
	}
	copy(cw[:rs.K], data)
	// Compute remainder of data(x)·x^R divided by gen via LFSR.
	rem := cw[rs.K:]
	for i := range rem {
		rem[i] = 0
	}
	for i := rs.K - 1; i >= 0; i-- {
		feedback := cw[i] ^ rem[rs.R-1]
		copy(rem[1:], rem[:rs.R-1])
		rem[0] = 0
		if feedback != 0 {
			for j := 0; j < rs.R; j++ {
				rem[j] ^= gfMul(rs.gen[j], feedback)
			}
		}
	}
	return cw
}

// position maps a chip/symbol index (0..K+R-1, data first) to its codeword
// polynomial degree.
func (rs *RS) position(sym int) int {
	if sym < rs.K {
		return rs.R + sym
	}
	return sym - rs.K
}

// symbolAt maps a polynomial degree back to the chip/symbol index.
func (rs *RS) symbolAt(deg int) int {
	if deg < rs.R {
		return rs.K + deg
	}
	return deg - rs.R
}

// Syndromes computes the R syndromes S_j = c(alpha^j) of the received word.
// All-zero syndromes mean a valid codeword.
func (rs *RS) Syndromes(cw []uint8) []uint8 {
	return rs.SyndromesInto(cw, nil)
}

// SyndromesInto is Syndromes writing into syn's backing array when it has
// capacity R (allocating otherwise). The common path is one pass over the
// codeword through the precomputed contribution rows (batch.go); codes
// too large for the tables fall back to R Horner evaluations walking the
// codeword in degree order — data symbols occupy degrees R..N-1 (data
// symbol i at degree R+i), check symbol j degree j — so no
// codeword-polynomial copy is materialised either way.
func (rs *RS) SyndromesInto(cw, syn []uint8) []uint8 {
	if len(cw) != rs.K+rs.R {
		panic("ecc: RS Syndromes codeword length mismatch")
	}
	if cap(syn) < rs.R {
		syn = make([]uint8, rs.R)
	} else {
		syn = syn[:rs.R]
		for j := range syn {
			syn[j] = 0
		}
	}
	if rs.synTab != nil {
		rs.synTabbed(cw, syn)
	} else {
		rs.synHorner(cw, syn)
	}
	return syn
}

// syndrome evaluates the codeword polynomial at x by Horner's rule, highest
// degree first: data symbols K-1..0, then check symbols R-1..0.
func (rs *RS) syndrome(cw []uint8, x uint8) uint8 {
	var y uint8
	for i := rs.K - 1; i >= 0; i-- {
		y = gfMul(y, x) ^ cw[i]
	}
	for i := rs.R - 1; i >= 0; i-- {
		y = gfMul(y, x) ^ cw[rs.K+i]
	}
	return y
}

// IsValid reports whether cw is a valid codeword. It does not allocate.
// With the contribution tables present it checks one syndrome at a time
// (early exit on the first nonzero); large codes fall back to Horner.
func (rs *RS) IsValid(cw []uint8) bool {
	if len(cw) != rs.K+rs.R {
		panic("ecc: RS Syndromes codeword length mismatch")
	}
	for j := 0; j < rs.R; j++ {
		var y uint8
		if rs.synTab != nil {
			base := j << 8
			for pos, c := range cw {
				if c != 0 {
					y = y ^ rs.synTab[(pos*rs.R)<<8+base+int(c)]
				}
			}
		} else {
			y = rs.syndrome(cw, gfPow(j))
		}
		if y != 0 {
			return false
		}
	}
	return true
}

// Decode corrects up to floor(R/2) symbol errors in place on a copy of cw
// and returns the corrected codeword. Status is StatusOK for a clean word,
// StatusCorrected when errors were repaired, and StatusDetected when the
// syndromes are inconsistent with any correctable pattern (the word is
// returned unmodified). Like all bounded-distance decoders it mis-corrects
// some patterns beyond floor(R/2) errors.
func (rs *RS) Decode(cw []uint8) ([]uint8, DecodeStatus) {
	return rs.DecodeErasures(cw, nil)
}

// DecodeErasures corrects the received word given the symbol indices listed
// in erasures (known-bad chips named by XED catch-words) plus up to
// floor((R-len(erasures))/2) additional unknown symbol errors. This is the
// errors-and-erasures decoder: erasure locator times error locator found by
// Berlekamp-Massey on the Forney-modified syndromes, Chien search, and
// Forney's formula for magnitudes.
// The decoder itself lives on RSDecoder (rsdecoder.go), which keeps every
// intermediate polynomial in reusable scratch; this wrapper copies cw and
// spins up a one-shot decoder for callers that prefer the allocating API.
func (rs *RS) DecodeErasures(cw []uint8, erasures []int) ([]uint8, DecodeStatus) {
	n := rs.K + rs.R
	if len(cw) != n {
		panic("ecc: RS Decode codeword length mismatch")
	}
	out := make([]uint8, n)
	copy(out, cw)
	st := rs.NewDecoder().DecodeErasures(out, erasures)
	return out, st
}

// CorrectErasuresOnly recovers up to R erased symbols assuming no other
// symbol is in error (pure erasure decoding, the XED-on-Chipkill fast path,
// §IX-A). It returns ErrTooManyErasures if len(erasures) > R.
func (rs *RS) CorrectErasuresOnly(cw []uint8, erasures []int) ([]uint8, error) {
	if len(erasures) > rs.R {
		return nil, ErrTooManyErasures
	}
	out, st := rs.DecodeErasures(cw, erasures)
	if st == StatusDetected {
		return nil, errors.New("ecc: erasure decode failed verification (errors outside erased symbols)")
	}
	return out, nil
}
