package ecc

import (
	"errors"
	"fmt"
)

// Reed-Solomon symbol codes over GF(2⁸).
//
// Chipkill assigns one code symbol per DRAM chip, so correcting a symbol
// corrects a whole-chip failure (§II-D2). The paper's three symbol-code
// configurations are all shortened RS codes:
//
//   - Chipkill ("SSC-DSD"): 16 data + 2 check symbols (18 chips). Corrects
//     any single symbol error; flags inconsistent syndromes (two-symbol
//     errors) as detected-uncorrectable.
//   - Double-Chipkill: 32 data + 4 check symbols (36 chips). Corrects any
//     two symbol errors (Berlekamp-Massey + Chien + Forney).
//   - XED on Chipkill (§IX): 16 data + 2 check symbols used as an *erasure*
//     code: with the faulty chips named by catch-words, two check symbols
//     recover two erased symbols — Double-Chipkill-level correction from
//     Single-Chipkill hardware.
//
// Symbols are indexed by chip: data symbols first, then check symbols.
// Codeword symbol i is associated with evaluation point alpha^i.

// RS is a shortened systematic Reed-Solomon code with K data symbols and R
// check symbols (N = K+R total). The generator polynomial has roots
// alpha^0 .. alpha^{R-1}.
type RS struct {
	K, R int
	gen  []uint8 // generator polynomial, low-degree first, monic
}

// ErrTooManyErasures is returned when more erasures are supplied than the
// code's check symbols can recover.
var ErrTooManyErasures = errors.New("ecc: erasure count exceeds check symbols")

// NewRS constructs an RS(K+R, K) code. It panics for non-positive sizes or
// codes longer than the field allows (K+R > 255).
func NewRS(k, r int) *RS {
	if k <= 0 || r <= 0 || k+r > 255 {
		panic(fmt.Sprintf("ecc: invalid RS parameters k=%d r=%d", k, r))
	}
	gen := []uint8{1}
	for i := 0; i < r; i++ {
		gen = polyMul(gen, []uint8{gfPow(i), 1})
	}
	return &RS{K: k, R: r, gen: gen}
}

// Name identifies the code configuration.
func (rs *RS) Name() string { return fmt.Sprintf("RS(%d,%d) over GF(256)", rs.K+rs.R, rs.K) }

// Encode appends R check symbols to the K data symbols in data, returning a
// full codeword of length K+R. It panics if len(data) != K.
func (rs *RS) Encode(data []uint8) []uint8 {
	if len(data) != rs.K {
		panic("ecc: RS Encode data length mismatch")
	}
	// Systematic encoding: codeword = data · x^R mod gen appended.
	// Represent message with data symbol i at coefficient R + (K-1-i) so
	// symbol order matches chip order after the remainder is prefixed.
	n := rs.K + rs.R
	cw := make([]uint8, n)
	copy(cw, data)
	// Compute remainder of data(x)·x^R divided by gen via LFSR.
	rem := make([]uint8, rs.R)
	for i := rs.K - 1; i >= 0; i-- {
		feedback := data[i] ^ rem[rs.R-1]
		copy(rem[1:], rem[:rs.R-1])
		rem[0] = 0
		if feedback != 0 {
			for j := 0; j < rs.R; j++ {
				rem[j] ^= gfMul(rs.gen[j], feedback)
			}
		}
	}
	copy(cw[rs.K:], rem)
	return cw
}

// codewordPoly maps a codeword (data symbols then check symbols) to the
// polynomial c(x) whose roots-of-generator property the decoder relies on:
// c(x) = data(x)·x^R + rem(x), with data symbol i at degree R+i and check
// symbol j at degree j.
func (rs *RS) codewordPoly(cw []uint8) []uint8 {
	p := make([]uint8, rs.K+rs.R)
	copy(p[:rs.R], cw[rs.K:])
	copy(p[rs.R:], cw[:rs.K])
	return p
}

// polyToCodeword is the inverse mapping of codewordPoly.
func (rs *RS) polyToCodeword(p []uint8) []uint8 {
	cw := make([]uint8, rs.K+rs.R)
	copy(cw, p[rs.R:])
	copy(cw[rs.K:], p[:rs.R])
	return cw
}

// position maps a chip/symbol index (0..K+R-1, data first) to its codeword
// polynomial degree.
func (rs *RS) position(sym int) int {
	if sym < rs.K {
		return rs.R + sym
	}
	return sym - rs.K
}

// symbolAt maps a polynomial degree back to the chip/symbol index.
func (rs *RS) symbolAt(deg int) int {
	if deg < rs.R {
		return rs.K + deg
	}
	return deg - rs.R
}

// Syndromes computes the R syndromes S_j = c(alpha^j) of the received word.
// All-zero syndromes mean a valid codeword.
func (rs *RS) Syndromes(cw []uint8) []uint8 {
	p := rs.codewordPoly(cw)
	syn := make([]uint8, rs.R)
	for j := 0; j < rs.R; j++ {
		syn[j] = polyEval(p, gfPow(j))
	}
	return syn
}

// IsValid reports whether cw is a valid codeword.
func (rs *RS) IsValid(cw []uint8) bool {
	for _, s := range rs.Syndromes(cw) {
		if s != 0 {
			return false
		}
	}
	return true
}

// Decode corrects up to floor(R/2) symbol errors in place on a copy of cw
// and returns the corrected codeword. Status is StatusOK for a clean word,
// StatusCorrected when errors were repaired, and StatusDetected when the
// syndromes are inconsistent with any correctable pattern (the word is
// returned unmodified). Like all bounded-distance decoders it mis-corrects
// some patterns beyond floor(R/2) errors.
func (rs *RS) Decode(cw []uint8) ([]uint8, DecodeStatus) {
	return rs.DecodeErasures(cw, nil)
}

// DecodeErasures corrects the received word given the symbol indices listed
// in erasures (known-bad chips named by XED catch-words) plus up to
// floor((R-len(erasures))/2) additional unknown symbol errors. This is the
// errors-and-erasures decoder: erasure locator times error locator found by
// Berlekamp-Massey on the Forney-modified syndromes, Chien search, and
// Forney's formula for magnitudes.
func (rs *RS) DecodeErasures(cw []uint8, erasures []int) ([]uint8, DecodeStatus) {
	n := rs.K + rs.R
	if len(cw) != n {
		panic("ecc: RS Decode codeword length mismatch")
	}
	if len(erasures) > rs.R {
		out := make([]uint8, n)
		copy(out, cw)
		return out, StatusDetected
	}
	syn := rs.Syndromes(cw)
	allZero := true
	for _, s := range syn {
		if s != 0 {
			allZero = false
			break
		}
	}
	if allZero && len(erasures) == 0 {
		out := make([]uint8, n)
		copy(out, cw)
		return out, StatusOK
	}
	if allZero {
		// Erasures declared but the word is already consistent: the
		// "erased" symbols happen to hold correct data (e.g. a
		// catch-word collision, §V-D). Nothing to fix.
		out := make([]uint8, n)
		copy(out, cw)
		return out, StatusOK
	}

	// Erasure locator Γ(x) = Π (1 - alpha^{p_i} x) over erased positions.
	gamma := []uint8{1}
	for _, e := range erasures {
		if e < 0 || e >= n {
			panic("ecc: RS erasure index out of range")
		}
		gamma = polyMul(gamma, []uint8{1, gfPow(rs.position(e))})
	}
	// Modified syndromes: Ξ(x) = Γ(x)·S(x) mod x^R.
	sPoly := make([]uint8, rs.R)
	copy(sPoly, syn)
	xi := polyMul(gamma, sPoly)
	if len(xi) > rs.R {
		xi = xi[:rs.R]
	}

	// Berlekamp-Massey for the error locator sigma(x), allowing
	// t <= (R - e)/2 unknown errors. Only the modified syndromes with
	// index >= e are free of erasure contributions (Forney syndromes),
	// so BM runs on that tail.
	e := len(erasures)
	tMax := (rs.R - e) / 2
	sigma := rs.berlekampMassey(xi[e:], tMax)
	if sigma == nil {
		out := make([]uint8, n)
		copy(out, cw)
		return out, StatusDetected
	}

	// Combined locator Λ(x) = sigma(x)·Γ(x); roots give all bad positions.
	lambda := polyMul(sigma, gamma)
	positions := rs.chienSearch(lambda)
	if len(positions) != len(lambda)-1 {
		// Locator degree does not match its root count: uncorrectable.
		out := make([]uint8, n)
		copy(out, cw)
		return out, StatusDetected
	}

	// Forney: error magnitude at position p is
	//   e_p = Omega(X^-1) / Λ'(X^-1),  X = alpha^p,
	// with Omega(x) = S(x)·Λ(x) mod x^R.
	omega := polyMul(sPoly, lambda)
	if len(omega) > rs.R {
		omega = omega[:rs.R]
	}
	lambdaPrime := polyDeriv(lambda)

	p := rs.codewordPoly(cw)
	for _, pos := range positions {
		xInv := gfPow(-pos)
		den := polyEval(lambdaPrime, xInv)
		if den == 0 {
			out := make([]uint8, n)
			copy(out, cw)
			return out, StatusDetected
		}
		// With first generator root alpha^0 the magnitude carries an
		// extra X = alpha^pos factor: e = X·Omega(X^-1)/Λ'(X^-1).
		mag := gfMul(gfPow(pos), gfDiv(polyEval(omega, xInv), den))
		p[pos] ^= mag
	}
	// Verify: corrected word must have all-zero syndromes.
	for j := 0; j < rs.R; j++ {
		if polyEval(p, gfPow(j)) != 0 {
			out := make([]uint8, n)
			copy(out, cw)
			return out, StatusDetected
		}
	}
	return rs.polyToCodeword(p), StatusCorrected
}

// berlekampMassey finds the minimal error-locator polynomial consistent
// with the syndrome sequence, or nil if its degree would exceed tMax (more
// errors than the remaining correction budget).
func (rs *RS) berlekampMassey(syn []uint8, tMax int) []uint8 {
	c := []uint8{1}
	b := []uint8{1}
	l := 0
	m := 1
	var bCoef uint8 = 1
	for i := 0; i < len(syn); i++ {
		// Discrepancy.
		var d uint8 = syn[i]
		for j := 1; j <= l && j < len(c); j++ {
			d ^= gfMul(c[j], syn[i-j])
		}
		if d == 0 {
			m++
			continue
		}
		if 2*l <= i {
			t := make([]uint8, len(c))
			copy(t, c)
			// c = c - (d/bCoef)·x^m·b
			scale := gfDiv(d, bCoef)
			shifted := make([]uint8, m+len(b))
			for j, bj := range b {
				shifted[m+j] = gfMul(bj, scale)
			}
			c = polyAdd(c, shifted)
			l = i + 1 - l
			b = t
			bCoef = d
			m = 1
		} else {
			scale := gfDiv(d, bCoef)
			shifted := make([]uint8, m+len(b))
			for j, bj := range b {
				shifted[m+j] = gfMul(bj, scale)
			}
			c = polyAdd(c, shifted)
			m++
		}
	}
	// Trim trailing zeros.
	for len(c) > 1 && c[len(c)-1] == 0 {
		c = c[:len(c)-1]
	}
	if l > tMax || len(c)-1 != l {
		return nil
	}
	return c
}

// chienSearch returns the polynomial degrees (0..K+R-1) whose associated
// points are roots of lambda, i.e. the error positions.
func (rs *RS) chienSearch(lambda []uint8) []int {
	var positions []int
	n := rs.K + rs.R
	for pos := 0; pos < n; pos++ {
		if polyEval(lambda, gfPow(-pos)) == 0 {
			positions = append(positions, pos)
		}
	}
	return positions
}

// CorrectErasuresOnly recovers up to R erased symbols assuming no other
// symbol is in error (pure erasure decoding, the XED-on-Chipkill fast path,
// §IX-A). It returns ErrTooManyErasures if len(erasures) > R.
func (rs *RS) CorrectErasuresOnly(cw []uint8, erasures []int) ([]uint8, error) {
	if len(erasures) > rs.R {
		return nil, ErrTooManyErasures
	}
	out, st := rs.DecodeErasures(cw, erasures)
	if st == StatusDetected {
		return nil, errors.New("ecc: erasure decode failed verification (errors outside erased symbols)")
	}
	return out, nil
}
