package ecc

import (
	"testing"
	"testing/quick"

	"xedsim/internal/simrand"
)

func randomData(rng *simrand.Source, k int) []uint8 {
	d := make([]uint8, k)
	for i := range d {
		d[i] = uint8(rng.Uint64())
	}
	return d
}

func TestGF256FieldAxioms(t *testing.T) {
	// Multiplicative inverses, associativity and distributivity on a
	// random sample; exhaustive inverse check over all nonzero elements.
	for a := 1; a < 256; a++ {
		inv := gfInv(uint8(a))
		if gfMul(uint8(a), inv) != 1 {
			t.Fatalf("gfInv(%d) wrong", a)
		}
	}
	rng := simrand.New(5)
	for i := 0; i < 20000; i++ {
		a, b, c := uint8(rng.Uint64()), uint8(rng.Uint64()), uint8(rng.Uint64())
		if gfMul(a, gfMul(b, c)) != gfMul(gfMul(a, b), c) {
			t.Fatalf("associativity fails for %d,%d,%d", a, b, c)
		}
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("distributivity fails for %d,%d,%d", a, b, c)
		}
		if gfMul(a, b) != gfMul(b, a) {
			t.Fatalf("commutativity fails for %d,%d", a, b)
		}
	}
}

func TestGF256GeneratorOrder(t *testing.T) {
	// alpha = 2 must generate the full multiplicative group (order 255).
	seen := map[uint8]bool{}
	for i := 0; i < 255; i++ {
		e := gfPow(i)
		if seen[e] {
			t.Fatalf("alpha^%d repeats before order 255", i)
		}
		seen[e] = true
	}
	if gfPow(255) != 1 {
		t.Fatal("alpha^255 != 1")
	}
}

func TestPolyDeriv(t *testing.T) {
	// d/dx (1 + 3x + 5x^2 + 7x^3) = 3 + 7x^2 in characteristic 2.
	got := polyDeriv([]uint8{1, 3, 5, 7})
	want := []uint8{3, 0, 7}
	if len(got) != len(want) {
		t.Fatalf("deriv length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("deriv[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestRSEncodeProducesValidCodewords(t *testing.T) {
	rng := simrand.New(10)
	for _, rs := range []*RS{NewChipkill(), NewDoubleChipkill(), NewRS(8, 3)} {
		for trial := 0; trial < 200; trial++ {
			cw := rs.Encode(randomData(rng, rs.K))
			if !rs.IsValid(cw) {
				t.Fatalf("%s: encoded word invalid", rs.Name())
			}
			got, st := rs.Decode(cw)
			if st != StatusOK {
				t.Fatalf("%s: clean decode status %v", rs.Name(), st)
			}
			for i := 0; i < rs.K+rs.R; i++ {
				if got[i] != cw[i] {
					t.Fatalf("%s: clean decode altered symbol %d", rs.Name(), i)
				}
			}
		}
	}
}

func TestChipkillCorrectsAnySingleSymbol(t *testing.T) {
	rs := NewChipkill()
	rng := simrand.New(20)
	for trial := 0; trial < 100; trial++ {
		data := randomData(rng, rs.K)
		cw := rs.Encode(data)
		for sym := 0; sym < rs.K+rs.R; sym++ {
			bad := make([]uint8, len(cw))
			copy(bad, cw)
			errVal := uint8(rng.Uint64())
			if errVal == 0 {
				errVal = 1
			}
			bad[sym] ^= errVal
			got, st := rs.Decode(bad)
			if st != StatusCorrected {
				t.Fatalf("symbol %d: status %v", sym, st)
			}
			for i := range cw {
				if got[i] != cw[i] {
					t.Fatalf("symbol %d: decode mismatch at %d", sym, i)
				}
			}
		}
	}
}

func TestChipkillDetectsDoubleSymbol(t *testing.T) {
	// With two check symbols a two-chip failure must never be silently
	// accepted; it is either flagged (DUE) or — for some patterns —
	// mis-corrected, but mis-correction must change the word so the
	// paper's classification (failed system either way) holds. Count
	// both outcomes.
	rs := NewChipkill()
	rng := simrand.New(21)
	detected, miscorrected := 0, 0
	for trial := 0; trial < 5000; trial++ {
		data := randomData(rng, rs.K)
		cw := rs.Encode(data)
		i := rng.Intn(rs.K + rs.R)
		j := rng.Intn(rs.K + rs.R)
		for j == i {
			j = rng.Intn(rs.K + rs.R)
		}
		bad := make([]uint8, len(cw))
		copy(bad, cw)
		bad[i] ^= uint8(1 + rng.Intn(255))
		bad[j] ^= uint8(1 + rng.Intn(255))
		if rs.IsValid(bad) {
			t.Fatal("two-symbol error produced valid codeword (distance < 3?)")
		}
		got, st := rs.Decode(bad)
		switch st {
		case StatusDetected:
			detected++
		case StatusCorrected:
			same := true
			for k := range cw {
				if got[k] != cw[k] {
					same = false
					break
				}
			}
			if same {
				t.Fatal("double error 'mis-corrected' to the true word?!")
			}
			miscorrected++
		default:
			t.Fatalf("unexpected status %v", st)
		}
	}
	if detected == 0 {
		t.Fatal("no double-symbol errors detected")
	}
	// Bounded-distance decoding over R=2 mis-corrects the patterns that
	// alias into a single-symbol sphere; that must be a minority.
	if miscorrected > detected {
		t.Fatalf("mis-corrections (%d) exceed detections (%d)", miscorrected, detected)
	}
}

func TestDoubleChipkillCorrectsAnyTwoSymbols(t *testing.T) {
	rs := NewDoubleChipkill()
	rng := simrand.New(22)
	for trial := 0; trial < 400; trial++ {
		data := randomData(rng, rs.K)
		cw := rs.Encode(data)
		i := rng.Intn(rs.K + rs.R)
		j := rng.Intn(rs.K + rs.R)
		for j == i {
			j = rng.Intn(rs.K + rs.R)
		}
		bad := make([]uint8, len(cw))
		copy(bad, cw)
		bad[i] ^= uint8(1 + rng.Intn(255))
		bad[j] ^= uint8(1 + rng.Intn(255))
		got, st := rs.Decode(bad)
		if st != StatusCorrected {
			t.Fatalf("trial %d: status %v", trial, st)
		}
		for k := range cw {
			if got[k] != cw[k] {
				t.Fatalf("trial %d: mismatch at symbol %d", trial, k)
			}
		}
	}
}

func TestXEDChipkillErasureDecoding(t *testing.T) {
	// §IX-A: with catch-words naming the faulty chips, RS(18,16)
	// recovers TWO erased chips — the Double-Chipkill-level result.
	rs := NewXEDChipkill()
	rng := simrand.New(23)
	for trial := 0; trial < 400; trial++ {
		data := randomData(rng, rs.K)
		cw := rs.Encode(data)
		i := rng.Intn(rs.K + rs.R)
		j := rng.Intn(rs.K + rs.R)
		for j == i {
			j = rng.Intn(rs.K + rs.R)
		}
		bad := make([]uint8, len(cw))
		copy(bad, cw)
		bad[i] ^= uint8(1 + rng.Intn(255))
		bad[j] ^= uint8(1 + rng.Intn(255))
		got, err := rs.CorrectErasuresOnly(bad, []int{i, j})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for k := range cw {
			if got[k] != cw[k] {
				t.Fatalf("trial %d: mismatch at symbol %d", trial, k)
			}
		}
	}
}

func TestErasuresPlusErrors(t *testing.T) {
	// RS(36,32) with R=4: one known erasure plus one unknown error
	// satisfies 2t+e <= R and must decode.
	rs := NewDoubleChipkill()
	rng := simrand.New(24)
	for trial := 0; trial < 300; trial++ {
		data := randomData(rng, rs.K)
		cw := rs.Encode(data)
		e := rng.Intn(rs.K + rs.R)
		u := rng.Intn(rs.K + rs.R)
		for u == e {
			u = rng.Intn(rs.K + rs.R)
		}
		bad := make([]uint8, len(cw))
		copy(bad, cw)
		bad[e] ^= uint8(1 + rng.Intn(255))
		bad[u] ^= uint8(1 + rng.Intn(255))
		got, st := rs.DecodeErasures(bad, []int{e})
		if st != StatusCorrected {
			t.Fatalf("trial %d: status %v", trial, st)
		}
		for k := range cw {
			if got[k] != cw[k] {
				t.Fatalf("trial %d: mismatch at %d", trial, k)
			}
		}
	}
}

func TestErasureOfCleanSymbolIsHarmless(t *testing.T) {
	// A catch-word collision (§V-D) makes the controller erase a chip
	// whose data was actually fine. The decode must still return the
	// correct word.
	rs := NewXEDChipkill()
	rng := simrand.New(25)
	for trial := 0; trial < 200; trial++ {
		cw := rs.Encode(randomData(rng, rs.K))
		got, st := rs.DecodeErasures(cw, []int{rng.Intn(rs.K + rs.R)})
		if st != StatusOK {
			t.Fatalf("status %v", st)
		}
		for k := range cw {
			if got[k] != cw[k] {
				t.Fatalf("mismatch at %d", k)
			}
		}
	}
}

func TestTooManyErasures(t *testing.T) {
	rs := NewChipkill()
	cw := rs.Encode(make([]uint8, rs.K))
	if _, err := rs.CorrectErasuresOnly(cw, []int{0, 1, 2}); err != ErrTooManyErasures {
		t.Fatalf("err = %v, want ErrTooManyErasures", err)
	}
}

func TestRSEncodeLinearity(t *testing.T) {
	rs := NewChipkill()
	f := func(seed1, seed2 uint64) bool {
		r1, r2 := simrand.New(seed1), simrand.New(seed2)
		a, b := randomData(r1, rs.K), randomData(r2, rs.K)
		sum := make([]uint8, rs.K)
		for i := range sum {
			sum[i] = a[i] ^ b[i]
		}
		ca, cb, cs := rs.Encode(a), rs.Encode(b), rs.Encode(sum)
		for i := range cs {
			if cs[i] != ca[i]^cb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRSThreeErrorsNotSilent(t *testing.T) {
	// d = R+1 = 5 for Double-Chipkill: any 3-symbol error is invalid
	// (weight below minimum distance) and must not be accepted as-is.
	rs := NewDoubleChipkill()
	rng := simrand.New(26)
	for trial := 0; trial < 2000; trial++ {
		cw := rs.Encode(randomData(rng, rs.K))
		n := rs.K + rs.R
		i, j, k := rng.Intn(n), rng.Intn(n), rng.Intn(n)
		for j == i {
			j = rng.Intn(n)
		}
		for k == i || k == j {
			k = rng.Intn(n)
		}
		bad := make([]uint8, len(cw))
		copy(bad, cw)
		bad[i] ^= uint8(1 + rng.Intn(255))
		bad[j] ^= uint8(1 + rng.Intn(255))
		bad[k] ^= uint8(1 + rng.Intn(255))
		if rs.IsValid(bad) {
			t.Fatal("three-symbol error is a valid codeword (distance < 4?)")
		}
	}
}

func BenchmarkChipkillDecodeClean(b *testing.B) {
	rs := NewChipkill()
	cw := rs.Encode(make([]uint8, rs.K))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.Decode(cw)
	}
}

func BenchmarkChipkillDecodeOneError(b *testing.B) {
	rs := NewChipkill()
	cw := rs.Encode(make([]uint8, rs.K))
	cw[3] ^= 0x5a
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.Decode(cw)
	}
}

func BenchmarkXEDChipkillTwoErasures(b *testing.B) {
	rs := NewXEDChipkill()
	cw := rs.Encode(make([]uint8, rs.K))
	cw[3] ^= 0x5a
	cw[9] ^= 0xc3
	erasures := []int{3, 9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.DecodeErasures(cw, erasures)
	}
}
