package ecc

import (
	"fmt"
	"math/bits"

	"xedsim/internal/simrand"
)

// This file makes the on-die code *pluggable*: LinearCode64 implements
// Code64 for an arbitrary systematic (72,64) linear code given by its 8×72
// parity-check matrix, the representation the BEER/HARP related-work thread
// (Patel et al., arXiv:2009.07985 and arXiv:2109.12697) reasons about. The
// hand-rolled Hamming/Hsiao/CRC8 codecs remain the fast paths and the
// oracles; LinearCode64 instantiated with their matrices must agree with
// them bit for bit (FuzzLinearCodeVsHandRolled).

// HMatrix72 is an 8×72 parity-check matrix over GF(2), stored column-major:
// entry i is column i — the 8-bit syndrome produced by flipping codeword
// bit i alone, in Codeword72 numbering (0..63 data, 64..71 check). A word
// cw is a codeword iff the XOR of the columns of its set bits is zero.
type HMatrix72 [72]uint8

// DataColumns and CheckColumns bound the two column groups.
const (
	dataBits  = 64
	checkBits = 8
	codeBits  = dataBits + checkBits
)

// String renders the matrix as its 72 column bytes, data then check,
// grouped by eight — compact enough for verdict details and CLI dumps.
func (h HMatrix72) String() string {
	out := make([]byte, 0, 3*codeBits+16)
	for i, c := range h {
		switch {
		case i == dataBits:
			out = append(out, " |"...)
		case i > 0 && i%8 == 0:
			out = append(out, ' ')
		}
		out = append(out, ' ')
		const hexdigits = "0123456789abcdef"
		out = append(out, hexdigits[c>>4], hexdigits[c&0xf])
	}
	return string(out)
}

// checkBasis returns the columns of the inverse of the 8×8 check submatrix
// (columns 64..71): basis[b] is the check byte whose columns XOR to the
// unit syndrome 1<<b. It errors when the submatrix is singular, i.e. the
// code is not systematic in the Codeword72 layout.
func (h *HMatrix72) checkBasis() ([checkBits]uint8, error) {
	var syn, cmb [checkBits]uint8 // rows of [ Hc | I ], reduced in lockstep
	for a := 0; a < checkBits; a++ {
		syn[a], cmb[a] = h[dataBits+a], 1<<uint(a)
	}
	for bit := 0; bit < checkBits; bit++ {
		p := -1
		for r := bit; r < checkBits; r++ {
			if syn[r]>>uint(bit)&1 == 1 {
				p = r
				break
			}
		}
		if p < 0 {
			return cmb, fmt.Errorf("ecc: check columns are singular (no pivot for syndrome bit %d); the matrix is not systematic", bit)
		}
		syn[bit], syn[p] = syn[p], syn[bit]
		cmb[bit], cmb[p] = cmb[p], cmb[bit]
		for r := 0; r < checkBits; r++ {
			if r != bit && syn[r]>>uint(bit)&1 == 1 {
				syn[r] ^= syn[bit]
				cmb[r] ^= cmb[bit]
			}
		}
	}
	var basis [checkBits]uint8
	for b := range basis {
		basis[b] = cmb[b] // Gauss-Jordan left syn[b] == 1<<b
	}
	return basis, nil
}

// Canonical returns the row-equivalent matrix whose check columns are the
// identity: Hc⁻¹·H. Row transforms relabel syndromes without changing the
// codeword set, so two matrices describe the same code iff their canonical
// forms are equal — and the canonical form is exactly what black-box
// inference (internal/infer) can recover, because post-correction data
// reveals which column matched, never how the syndrome was spelled.
func (h HMatrix72) Canonical() (HMatrix72, error) {
	basis, err := h.checkBasis()
	if err != nil {
		return h, err
	}
	var out HMatrix72
	for i, c := range h {
		var v uint8
		for b := 0; c != 0; b, c = b+1, c>>1 {
			if c&1 == 1 {
				v ^= basis[b]
			}
		}
		out[i] = v
	}
	return out, nil
}

// LinearCode64 is a (72,64) systematic linear code constructed from an
// arbitrary parity-check matrix. Encode, IsValid and Decode are
// table-sliced exactly like the hand-rolled Hamming codec: one 256-entry
// lookup per data byte, one per check byte.
type LinearCode64 struct {
	name string
	h    HMatrix72
	// posForSyndrome inverts the columns: entries are position+1, 0 means
	// "no single-bit error maps here". Collisions are rejected at
	// construction — see NewLinearCode64.
	posForSyndrome [256]uint8
	// encodeTables[b][v] is the syndrome contribution of data byte b
	// holding value v; checkSyn[v] of the check byte holding v.
	encodeTables [8][256]uint8
	checkSyn     [256]uint8
	// checkFor[s] is the unique check byte whose columns XOR to s (the
	// inverse of the check submatrix, expanded to all 256 syndromes).
	checkFor [256]uint8
	// parity is the code's parity functional u: ⟨u, column⟩ = 1 for every
	// column, so ⟨u, syndrome⟩ is the error weight mod 2. It exists iff
	// the code is SECDED (every codeword has even weight); it is unique
	// because the columns span GF(2)⁸. secded records its existence.
	parity uint8
	secded bool
}

// NewLinearCode64 validates h and builds the code. Construction fails when
//
//   - any column is zero (a flip of that bit would be invisible: not SEC),
//   - two columns collide (their syndromes alias, so a detectable double
//     error would be silently mis-corrected — the posForSyndrome overwrite
//     bug this constructor exists to reject), or
//   - the check submatrix is singular (no systematic encoder exists).
//
// The decode policy is classified at construction time: if a parity
// functional exists the code is SECDED and Decode discriminates single
// (odd) from double (even) errors by syndrome parity, generalising both
// the classic Hamming overall-parity rule (u = 0x80) and the Hsiao
// odd-column rule (u = 0xff); otherwise the code is SEC-only and Decode
// corrects any syndrome that names a column.
func NewLinearCode64(name string, h HMatrix72) (*LinearCode64, error) {
	c := &LinearCode64{name: name, h: h}
	for i, col := range h {
		if col == 0 {
			return nil, fmt.Errorf("ecc: column %d of %q is zero; bit %d would be undetectable", i, name, i)
		}
		if prev := c.posForSyndrome[col]; prev != 0 {
			return nil, fmt.Errorf("ecc: columns %d and %d of %q share syndrome %#02x; double errors would mis-correct", int(prev)-1, i, name, col)
		}
		c.posForSyndrome[col] = uint8(i + 1)
	}
	basis, err := h.checkBasis()
	if err != nil {
		return nil, fmt.Errorf("%v (code %q)", err, name)
	}
	for v := 0; v < 256; v++ {
		var enc [8]uint8 // per-data-byte accumulators for this value
		var cs, cf uint8
		for k := 0; k < 8; k++ {
			if v>>uint(k)&1 == 0 {
				continue
			}
			for b := 0; b < 8; b++ {
				enc[b] ^= h[b*8+k]
			}
			cs ^= h[dataBits+k]
			cf ^= basis[k]
		}
		for b := 0; b < 8; b++ {
			c.encodeTables[b][v] = enc[b]
		}
		c.checkSyn[v] = cs
		c.checkFor[v] = cf
	}
	c.parity, c.secded = solveParityFunctional(&h)
	return c, nil
}

// MustLinearCode64 is NewLinearCode64 for matrices known valid at build
// time; it panics on error.
func MustLinearCode64(name string, h HMatrix72) *LinearCode64 {
	c, err := NewLinearCode64(name, h)
	if err != nil {
		panic(err)
	}
	return c
}

// solveParityFunctional finds the u with ⟨u, h[i]⟩ = 1 for all 72 columns,
// by Gaussian elimination over GF(2). When the columns span GF(2)⁸ (always
// true for a systematic matrix) the solution, if it exists, is unique.
func solveParityFunctional(h *HMatrix72) (uint8, bool) {
	// piv[b] holds an equation a·u = rhs whose leading (highest) set bit
	// is b; any other set bits of a are below b.
	var pivA [checkBits]uint8
	var pivB [checkBits]uint8
	for _, col := range h {
		a, rhs := col, uint8(1)
		for a != 0 {
			b := bits.Len8(a) - 1
			if pivA[b] == 0 {
				pivA[b], pivB[b] = a, rhs
				a, rhs = 0, 0
				break
			}
			a ^= pivA[b]
			rhs ^= pivB[b]
		}
		if rhs == 1 {
			return 0, false // reduced to 0·u = 1: no functional exists
		}
	}
	// Back-substitute low bit to high: pivA[b]'s other set bits are all
	// below b, so they are already resolved when bit b is chosen.
	var u uint8
	for b := 0; b < checkBits; b++ {
		if pivA[b] == 0 {
			continue // free variable (columns don't span); leave 0
		}
		if pivB[b]^uint8(bits.OnesCount8(pivA[b]&^(1<<uint(b))&u)&1) == 1 {
			u |= 1 << uint(b)
		}
	}
	return u, true
}

// Name implements Code64.
func (c *LinearCode64) Name() string { return c.name }

// Matrix returns a copy of the parity-check matrix.
func (c *LinearCode64) Matrix() HMatrix72 { return c.h }

// IsSECDED reports whether the code carries a parity functional, i.e.
// whether Decode can discriminate single from double errors. Codes built
// by RandomSECDED always are.
func (c *LinearCode64) IsSECDED() bool { return c.secded }

// ParityFunctional returns the functional u with ⟨u, column⟩ = 1 for every
// column, and whether it exists. For the Hamming matrix u = 0x80 (the
// overall-parity bit); for Hsiao-style all-odd-column matrices u = 0xff.
func (c *LinearCode64) ParityFunctional() (uint8, bool) { return c.parity, c.secded }

func (c *LinearCode64) dataSyndrome(data uint64) uint8 {
	var s uint8
	for b := 0; data != 0; b++ {
		s ^= c.encodeTables[b][uint8(data)]
		data >>= 8
	}
	return s
}

func (c *LinearCode64) rawSyndrome(cw Codeword72) uint8 {
	return c.dataSyndrome(cw.Data) ^ c.checkSyn[cw.Check]
}

// Encode implements Code64: the check byte is the unique solution of
// Hc·check = H_d·data, one table lookup away.
func (c *LinearCode64) Encode(data uint64) Codeword72 {
	return Codeword72{Data: data, Check: c.checkFor[c.dataSyndrome(data)]}
}

// IsValid implements Code64.
func (c *LinearCode64) IsValid(cw Codeword72) bool { return c.rawSyndrome(cw) == 0 }

// Decode implements Code64 under the policy classified at construction:
// SECDED codes gate correction on odd syndrome parity (even ⇒ detected
// double), SEC-only codes correct whatever names a column.
func (c *LinearCode64) Decode(cw Codeword72) (uint64, DecodeStatus) {
	s := c.rawSyndrome(cw)
	if s == 0 {
		return cw.Data, StatusOK
	}
	if c.secded && bits.OnesCount8(c.parity&s)&1 == 0 {
		return cw.Data, StatusDetected
	}
	pos := c.posForSyndrome[s]
	if pos == 0 {
		return cw.Data, StatusDetected
	}
	corrected := cw.FlipBit(int(pos - 1))
	return corrected.Data, StatusCorrected
}

// Matrix returns the Hamming code's parity-check matrix — LinearCode64
// instantiated with it must agree with the hand-rolled codec bit for bit.
func (h *Hamming) Matrix() HMatrix72 { return HMatrix72(h.colSyndrome) }

// Matrix returns the Hsiao code's parity-check matrix.
func (h *Hsiao) Matrix() HMatrix72 { return HMatrix72(h.colSyndrome) }

// Matrix returns the CRC8-ATM code's parity-check matrix (a CRC is linear,
// so it has one; its check columns are already the identity because the
// check byte is the remainder itself).
func (c *CRC8ATM) Matrix() HMatrix72 { return HMatrix72(c.colSyndrome) }

// RandomSECDED draws a uniformly random (72,64) SECDED code in canonical
// systematic form: identity check columns and 64 distinct data columns
// sampled from the 120 odd-weight-≥3 bytes. Canonical form loses no
// generality — every SECDED code is row-equivalent to exactly one such
// matrix (see HMatrix72.Canonical) — and it is the form BEER-style
// inference recovers, which is what makes the conformance claim's
// "bit-for-bit H equality" well defined. The draw consumes 64 bounded
// variates from rng, so a fixed seed names a fixed code.
func RandomSECDED(rng *simrand.Source) *LinearCode64 {
	// The candidate pool: every odd-weight byte of weight >= 3. Weight-1
	// bytes are the check columns; even weights would break the parity
	// functional u = 0xff that canonical form guarantees.
	var cand [120]uint8
	n := 0
	for v := 1; v < 256; v++ {
		if w := bits.OnesCount8(uint8(v)); w >= 3 && w%2 == 1 {
			cand[n] = uint8(v)
			n++
		}
	}
	var h HMatrix72
	for i := 0; i < dataBits; i++ {
		j := i + rng.Intn(n-i) // partial Fisher-Yates: 64 distinct picks
		cand[i], cand[j] = cand[j], cand[i]
		h[i] = cand[i]
	}
	for a := 0; a < checkBits; a++ {
		h[dataBits+a] = 1 << uint(a)
	}
	// A stable fingerprint of the draw, so logs and verdicts can name the
	// code without printing 72 columns.
	tag := uint64(0xcbf29ce484222325)
	for _, col := range h {
		tag = (tag ^ uint64(col)) * 0x100000001b3
	}
	return MustLinearCode64(fmt.Sprintf("(72,64) random SECDED %08x", uint32(tag)), h)
}
