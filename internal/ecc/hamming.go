package ecc

import "math/bits"

// Hamming implements the classic extended (72,64) Hamming SECDED code
// (Hamming 1950, extended with an overall parity bit). Check bits live at
// the power-of-two positions of the 72-bit codeword plus one overall parity
// bit; the syndrome of a single-bit error equals the (1-based) position of
// the flipped bit.
//
// The paper (§V-E, Table II) uses this code as the conventional On-Die ECC
// baseline and shows that its detection of *burst* errors — multiple flips
// confined to a few adjacent lanes, the signature of a chip-internal word
// failure — is as low as ~50%, which motivates CRC8-ATM instead.
type Hamming struct {
	// colSyndrome[i] is the 8-bit syndrome (7 Hamming bits plus overall
	// parity in bit 7) produced by flipping codeword bit i alone, where i
	// follows the Codeword72 numbering (0..63 data, 64..71 check).
	colSyndrome [72]uint8
	// posForSyndrome inverts colSyndrome for correctable syndromes.
	// Entries are position+1; 0 means "no single-bit error maps here".
	posForSyndrome [256]uint8
	// encodeTables[b][v] holds the check byte contribution of byte b of
	// the data word having value v, so Encode is four table lookups per
	// 32-bit half instead of 64 conditional XORs.
	encodeTables [8][256]uint8
}

// hammingLayout maps our systematic bit order to the classical codeword
// positions: positions 1..72 (1-based), where positions 1,2,4,8,16,32,64 are
// the seven Hamming check bits, position 72 is the overall parity bit, and
// the remaining 64 positions carry data bits in ascending order.
func hammingLayout() (dataPos [64]int, checkPos [8]int) {
	isPow2 := func(x int) bool { return x&(x-1) == 0 }
	d := 0
	c := 0
	for p := 1; p <= 71; p++ {
		if isPow2(p) {
			checkPos[c] = p
			c++
			continue
		}
		dataPos[d] = p
		d++
	}
	checkPos[7] = 72 // overall parity
	return dataPos, checkPos
}

// NewHamming constructs the code and precomputes its syndrome tables.
func NewHamming() *Hamming {
	h := &Hamming{}
	dataPos, checkPos := hammingLayout()

	// Syndrome of flipping a single codeword bit. For a bit at classical
	// position p, the 7 Hamming syndrome bits are the binary digits of p
	// and the overall parity bit always flips (every position is covered
	// by the overall parity).
	synOf := func(p int) uint8 {
		s := uint8(p & 0x7f)
		if p == 72 {
			s = 0 // the parity bit is not covered by the Hamming checks
		}
		return s | 0x80 // overall parity flips for any single-bit error
	}
	for i := 0; i < 64; i++ {
		h.colSyndrome[i] = synOf(dataPos[i])
	}
	for i := 0; i < 7; i++ {
		// Check bit i sits at position 2^i; its syndrome is that
		// position (it participates only in its own check) plus the
		// overall parity.
		h.colSyndrome[64+i] = synOf(checkPos[i])
	}
	h.colSyndrome[71] = synOf(72) // overall parity bit: syndrome 0x80

	for i := 0; i < 72; i++ {
		s := h.colSyndrome[i]
		if s == 0 {
			panic("hamming: zero column syndrome")
		}
		if h.posForSyndrome[s] != 0 {
			// A silent overwrite here would alias two positions onto one
			// syndrome and turn a detectable double error into a
			// miscorrection; fail loudly like NewHsiao and NewCRC8ATM do.
			panic("hamming: duplicate column syndrome")
		}
		h.posForSyndrome[s] = uint8(i + 1)
	}

	// Byte-sliced encode tables. The check byte of a data word is the
	// XOR of per-bit syndromes of its set bits, restricted to the check
	// positions; equivalently we encode by finding check bits that zero
	// the syndrome.
	for b := 0; b < 8; b++ {
		for v := 0; v < 256; v++ {
			var acc uint8
			for k := 0; k < 8; k++ {
				if v>>uint(k)&1 == 1 {
					acc ^= h.colSyndrome[b*8+k]
				}
			}
			h.encodeTables[b][v] = acc
		}
	}
	return h
}

// Name implements Code64.
func (h *Hamming) Name() string { return "(72,64) Hamming" }

// rawSyndrome XORs the per-bit syndromes of every set bit in the codeword.
// A valid codeword has raw syndrome zero by construction of Encode.
func (h *Hamming) rawSyndrome(cw Codeword72) uint8 {
	var s uint8
	d := cw.Data
	for b := 0; d != 0; b++ {
		s ^= h.encodeTables[b][uint8(d)]
		d >>= 8
	}
	c := cw.Check
	for k := 0; c != 0; k++ {
		if c&1 == 1 {
			s ^= h.colSyndrome[64+k]
		}
		c >>= 1
	}
	return s
}

// Encode implements Code64.
func (h *Hamming) Encode(data uint64) Codeword72 {
	// Data-only syndrome; choose check bits to cancel it. The seven
	// Hamming check bits each control exactly one syndrome bit, and the
	// overall parity bit controls syndrome bit 7 — but flipping any
	// check bit also flips overall parity, so set Hamming bits first and
	// then fix parity.
	var s uint8
	d := data
	for b := 0; d != 0; b++ {
		s ^= h.encodeTables[b][uint8(d)]
		d >>= 8
	}
	var check uint8
	for i := 0; i < 7; i++ {
		if s>>uint(i)&1 == 1 {
			check |= 1 << uint(i)
			s ^= h.colSyndrome[64+i]
		}
	}
	if s&0x80 != 0 {
		check |= 1 << 7
	}
	return Codeword72{Data: data, Check: check}
}

// IsValid implements Code64.
func (h *Hamming) IsValid(cw Codeword72) bool { return h.rawSyndrome(cw) == 0 }

// Decode implements Code64. Decoding policy follows the standard SECDED
// rules: zero syndrome = clean; nonzero syndrome with overall parity flipped
// = single-bit error (corrected when the syndrome names a real position);
// nonzero syndrome with overall parity clean = double error, detected.
func (h *Hamming) Decode(cw Codeword72) (uint64, DecodeStatus) {
	s := h.rawSyndrome(cw)
	if s == 0 {
		return cw.Data, StatusOK
	}
	if s&0x80 == 0 {
		// Even number of bit errors (>=2): detectable, uncorrectable.
		return cw.Data, StatusDetected
	}
	pos := h.posForSyndrome[s]
	if pos == 0 {
		// Odd-weight error whose syndrome names no codeword position:
		// detectable, uncorrectable.
		return cw.Data, StatusDetected
	}
	corrected := cw.FlipBit(int(pos - 1))
	return corrected.Data, StatusCorrected
}

// MinDistanceProbe exhaustively verifies that no weight-1 or weight-2 error
// pattern is a codeword and that all weight-1 patterns decode correctly.
// It exists for tests and returns the number of patterns checked.
func (h *Hamming) MinDistanceProbe() int {
	n := 0
	for i := 0; i < 72; i++ {
		if h.rawSyndrome(Codeword72{}.FlipBit(i)) == 0 {
			panic("hamming: weight-1 codeword")
		}
		n++
		for j := i + 1; j < 72; j++ {
			if h.rawSyndrome(Codeword72{}.FlipBit(i).FlipBit(j)) == 0 {
				panic("hamming: weight-2 codeword")
			}
			n++
		}
	}
	return n
}

// popcount8 is a helper shared by the detection-rate analysis.
func popcount8(x uint8) int { return bits.OnesCount8(x) }
