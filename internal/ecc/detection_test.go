package ecc

import "testing"

func TestMeasureDetectionTable2Shape(t *testing.T) {
	// Regenerates Table II at reduced sample counts and asserts the
	// paper's qualitative claims:
	//   * both codes: 100% for 1-3 errors (random and burst);
	//   * Hamming: ~50% detection of 4- and 8-bit bursts;
	//   * CRC8-ATM: 100% detection of every burst;
	//   * CRC8-ATM random-4 miss rate below ~1.2% (paper: 0.8%).
	hr := MeasureDetection(NewHamming(), 200_000, 1)
	cr := MeasureDetection(NewCRC8ATM(), 200_000, 1)

	for k := 1; k <= 3; k++ {
		if hr.Random[k-1] != 1 || hr.Burst[k-1] != 1 {
			t.Errorf("Hamming k=%d: random=%v burst=%v, want 100%%", k, hr.Random[k-1], hr.Burst[k-1])
		}
		if cr.Random[k-1] != 1 || cr.Burst[k-1] != 1 {
			t.Errorf("CRC8 k=%d: random=%v burst=%v, want 100%%", k, cr.Random[k-1], cr.Burst[k-1])
		}
	}
	// Odd weights are always caught by both codes.
	for _, k := range []int{5, 7} {
		if hr.Random[k-1] != 1 {
			t.Errorf("Hamming k=%d random = %v, want 100%%", k, hr.Random[k-1])
		}
		if cr.Random[k-1] != 1 {
			t.Errorf("CRC8 k=%d random = %v, want 100%%", k, cr.Random[k-1])
		}
	}
	if hr.Burst[3] > 0.6 || hr.Burst[3] < 0.4 {
		t.Errorf("Hamming burst-4 detection = %v, want ~0.507", hr.Burst[3])
	}
	if hr.Burst[7] > 0.6 || hr.Burst[7] < 0.4 {
		t.Errorf("Hamming burst-8 detection = %v, want ~0.508", hr.Burst[7])
	}
	for k := 1; k <= 8; k++ {
		if cr.Burst[k-1] != 1 {
			t.Errorf("CRC8 burst-%d detection = %v, want 100%%", k, cr.Burst[k-1])
		}
	}
	if miss := 1 - cr.Random[3]; miss > 0.012 || miss <= 0 {
		t.Errorf("CRC8 random-4 miss rate = %v, want ~0.008", miss)
	}
	if hr.Random[3] >= cr.Random[3] {
		t.Errorf("expected CRC8 (%v) to beat Hamming (%v) on random-4", cr.Random[3], hr.Random[3])
	}
}

func TestUndetectedMultiBitFraction(t *testing.T) {
	cr := MeasureDetection(NewCRC8ATM(), 100_000, 2)
	f := UndetectedMultiBitFraction(cr)
	// The paper uses 0.8% throughout (§VI, §VIII).
	if f < 0.004 || f > 0.013 {
		t.Errorf("undetected multi-bit fraction = %v, want ≈0.008", f)
	}
}

func TestDetectionExhaustiveMatchesSampled(t *testing.T) {
	// For k=4 both paths are available; they must agree within Monte
	// Carlo error.
	code := NewCRC8ATM()
	ex := detectRandomExhaustive(code, 4)
	sa := detectRandomSampled(code, 4, 300_000, newTestRng())
	if diff := ex - sa; diff > 0.002 || diff < -0.002 {
		t.Errorf("exhaustive %v vs sampled %v differ by %v", ex, sa, diff)
	}
}

func TestBinomialHelper(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{72, 1, 72}, {72, 2, 2556}, {72, 4, 1028790}, {5, 5, 1}, {5, 0, 1},
	}
	for _, c := range cases {
		if got := binomial(c.n, c.k); got != c.want {
			t.Errorf("binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func BenchmarkMeasureDetectionCRC8(b *testing.B) {
	code := NewCRC8ATM()
	for i := 0; i < b.N; i++ {
		MeasureDetection(code, 2_000, uint64(i))
	}
}
