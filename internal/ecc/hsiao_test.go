package ecc

import (
	"testing"
	"testing/quick"

	"xedsim/internal/simrand"
)

func TestHsiaoRoundTrip(t *testing.T) {
	h := NewHsiao()
	f := func(v uint64) bool {
		cw := h.Encode(v)
		if !h.IsValid(cw) {
			return false
		}
		got, st := h.Decode(cw)
		return st == StatusOK && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHsiaoColumnsOddWeightAndDistinct(t *testing.T) {
	h := NewHsiao()
	seen := map[uint8]bool{}
	for i, c := range h.colSyndrome {
		if popcount8(c)%2 == 0 {
			t.Fatalf("column %d has even weight %d", i, popcount8(c))
		}
		if seen[c] {
			t.Fatalf("duplicate column %#x", c)
		}
		seen[c] = true
	}
}

func TestHsiaoCorrectsEverySingleBit(t *testing.T) {
	h := NewHsiao()
	rng := simrand.New(80)
	for trial := 0; trial < 16; trial++ {
		v := rng.Uint64()
		cw := h.Encode(v)
		for bit := 0; bit < 72; bit++ {
			got, st := h.Decode(cw.FlipBit(bit))
			if st != StatusCorrected || got != v {
				t.Fatalf("bit %d: %v/%#x", bit, st, got)
			}
		}
	}
}

func TestHsiaoDetectsEveryDoubleBitWithoutMiscorrection(t *testing.T) {
	// The defining Hsiao property: two odd-weight columns XOR to an
	// even-weight syndrome, so double errors are never mistaken for
	// single errors.
	h := NewHsiao()
	cw := h.Encode(0x0123456789abcdef)
	for i := 0; i < 72; i++ {
		for j := i + 1; j < 72; j++ {
			bad := cw.FlipBit(i).FlipBit(j)
			if h.IsValid(bad) {
				t.Fatalf("(%d,%d): valid codeword", i, j)
			}
			if _, st := h.Decode(bad); st != StatusDetected {
				t.Fatalf("(%d,%d): status %v", i, j, st)
			}
		}
	}
}

func TestHsiaoOddErrorsNeverSilent(t *testing.T) {
	// All columns odd → any odd-weight error has odd syndrome weight →
	// nonzero. 100% detection of 1,3,5,7-bit errors, like Hamming.
	h := NewHsiao()
	rates := MeasureDetection(h, 100_000, 3)
	for _, k := range []int{1, 3, 5, 7} {
		if rates.Random[k-1] != 1 {
			t.Fatalf("odd weight %d detection %v", k, rates.Random[k-1])
		}
	}
}

func TestHsiaoBeatsHammingOnRandomEvenErrors(t *testing.T) {
	hs := MeasureDetection(NewHsiao(), 300_000, 4)
	hm := MeasureDetection(NewHamming(), 300_000, 4)
	if hs.Random[3] <= hm.Random[3] {
		t.Fatalf("Hsiao random-4 %v should beat Hamming %v", hs.Random[3], hm.Random[3])
	}
}

func TestHsiaoVersusCRC8OnBursts(t *testing.T) {
	// Hsiao still lacks CRC8-ATM's burst guarantee: some 4-in-window
	// bursts go silent because adjacent data columns can XOR to zero.
	hs := MeasureDetection(NewHsiao(), 50_000, 5)
	if hs.Burst[3] == 1 && hs.Burst[7] == 1 {
		t.Skip("this Hsiao column order happens to detect all 4/8-bursts; acceptable")
	}
	cr := MeasureDetection(NewCRC8ATM(), 50_000, 5)
	for k := 1; k <= 8; k++ {
		if cr.Burst[k-1] != 1 {
			t.Fatalf("CRC8 burst-%d not 100%%", k)
		}
	}
}

func BenchmarkHsiaoEncode(b *testing.B) {
	h := NewHsiao()
	var sink Codeword72
	for i := 0; i < b.N; i++ {
		sink = h.Encode(uint64(i) * 0x9e3779b97f4a7c15)
	}
	_ = sink
}
