package ecc

import (
	"bytes"
	"testing"

	"xedsim/internal/simrand"
)

// corrupt flips distinct random symbols, returning their indices.
func corrupt(rng *simrand.Source, cw []uint8, count int) []int {
	hit := make([]int, 0, count)
	for len(hit) < count {
		pos := rng.Intn(len(cw))
		dup := false
		for _, h := range hit {
			if h == pos {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		cw[pos] ^= uint8(rng.Intn(255) + 1)
		hit = append(hit, pos)
	}
	return hit
}

// TestRSDecoderReuseMatchesFresh drives one long-lived decoder through
// thousands of random error/erasure patterns and checks every outcome
// (status and corrected word) against a fresh decoder on a fresh copy —
// stale scratch from a previous decode must never leak into the next.
func TestRSDecoderReuseMatchesFresh(t *testing.T) {
	for _, code := range []struct{ k, r int }{{16, 2}, {32, 4}} {
		rs := NewRS(code.k, code.r)
		warm := rs.NewDecoder()
		rng := simrand.New(0xdec0de)
		for trial := 0; trial < 4000; trial++ {
			cw := rs.Encode(randomData(rng, rs.K))
			nErr := rng.Intn(4)
			nEra := rng.Intn(4)
			corrupt(rng, cw, nErr)
			var erasures []int
			if nEra > 0 {
				erasures = corrupt(rng, cw, nEra)
			}

			inPlace := append([]uint8(nil), cw...)
			gotSt := warm.DecodeErasures(inPlace, erasures)
			wantOut, wantSt := rs.DecodeErasures(cw, erasures)
			if gotSt != wantSt {
				t.Fatalf("RS(%d,%d) trial %d (%d errors, %d erasures): warm decoder status %v, fresh %v",
					rs.K+rs.R, rs.K, trial, nErr, nEra, gotSt, wantSt)
			}
			if !bytes.Equal(inPlace, wantOut) {
				t.Fatalf("RS(%d,%d) trial %d: warm decoder output diverged from fresh decode", rs.K+rs.R, rs.K, trial)
			}
		}
	}
}

// TestRSDecoderDetectedLeavesWordUntouched checks the in-place contract:
// on StatusDetected the received word must come back bit-identical.
func TestRSDecoderDetectedLeavesWordUntouched(t *testing.T) {
	rs := NewRS(16, 2)
	dec := rs.NewDecoder()
	rng := simrand.New(0xbad)
	detected := 0
	for trial := 0; trial < 2000; trial++ {
		cw := rs.Encode(randomData(rng, rs.K))
		corrupt(rng, cw, 2+rng.Intn(3)) // beyond the 1-error budget
		before := append([]uint8(nil), cw...)
		if st := dec.DecodeErasures(cw, nil); st == StatusDetected {
			detected++
			if !bytes.Equal(cw, before) {
				t.Fatalf("trial %d: StatusDetected but codeword was modified", trial)
			}
		}
	}
	if detected == 0 {
		t.Fatal("no multi-error pattern was detected; test is vacuous")
	}
}

// TestEncodeIntoMatchesEncode covers buffer reuse and the documented
// data-aliasing-cw case.
func TestEncodeIntoMatchesEncode(t *testing.T) {
	rs := NewRS(32, 4)
	rng := simrand.New(0xe7c)
	buf := make([]uint8, 0, rs.K+rs.R)
	for trial := 0; trial < 500; trial++ {
		data := randomData(rng, rs.K)
		want := rs.Encode(data)
		got := rs.EncodeInto(data, buf[:0])
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: EncodeInto diverged from Encode", trial)
		}
		// Aliased: data already sits in cw[:K].
		aliased := rs.EncodeInto(got[:rs.K], got)
		if !bytes.Equal(aliased, want) {
			t.Fatalf("trial %d: EncodeInto with data aliasing cw[:K] diverged", trial)
		}
		buf = got
	}
}

func TestSyndromesIntoMatchesSyndromes(t *testing.T) {
	rs := NewRS(16, 2)
	rng := simrand.New(0x51d)
	buf := make([]uint8, 0, rs.R)
	for trial := 0; trial < 500; trial++ {
		cw := rs.Encode(randomData(rng, rs.K))
		corrupt(rng, cw, rng.Intn(3))
		want := rs.Syndromes(cw)
		got := rs.SyndromesInto(cw, buf[:0])
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: SyndromesInto diverged from Syndromes", trial)
		}
		buf = got
	}
}

// TestRSDecoderAllocFree pins the ISSUE acceptance criterion: syndrome
// computation and erasure decoding through warm scratch perform zero heap
// allocations per operation.
func TestRSDecoderAllocFree(t *testing.T) {
	rs := NewRS(16, 2)
	dec := rs.NewDecoder()
	rng := simrand.New(0xa110c)
	clean := rs.Encode(randomData(rng, rs.K))
	oneErr := append([]uint8(nil), clean...)
	oneErr[5] ^= 0x3c
	twoEra := append([]uint8(nil), clean...)
	twoEra[2] ^= 0x77
	twoEra[9] ^= 0x11
	erasures := []int{2, 9}
	syn := make([]uint8, 0, rs.R)
	cw := make([]uint8, 0, rs.K+rs.R)
	scratch := append([]uint8(nil), twoEra...)

	cases := []struct {
		name string
		op   func()
	}{
		{"SyndromesInto", func() { syn = rs.SyndromesInto(clean, syn[:0]) }},
		{"IsValid", func() { _ = rs.IsValid(oneErr) }},
		{"EncodeInto", func() { cw = rs.EncodeInto(clean[:rs.K], cw[:0]) }},
		{"Decode/clean", func() {
			if st := dec.Decode(clean); st != StatusOK {
				t.Fatalf("clean decode: %v", st)
			}
		}},
		{"Decode/oneError", func() {
			copy(scratch, oneErr)
			if st := dec.Decode(scratch); st != StatusCorrected {
				t.Fatalf("one-error decode: %v", st)
			}
		}},
		{"DecodeErasures/two", func() {
			copy(scratch, twoEra)
			if st := dec.DecodeErasures(scratch, erasures); st != StatusCorrected {
				t.Fatalf("two-erasure decode: %v", st)
			}
		}},
	}
	for _, tc := range cases {
		tc.op() // warm-up
		if allocs := testing.AllocsPerRun(200, tc.op); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

// TestRSDecoderErrorsAndErasuresAllocFree exercises the widest decoder
// path — Berlekamp-Massey plus erasures on Double-Chipkill geometry.
func TestRSDecoderErrorsAndErasuresAllocFree(t *testing.T) {
	rs := NewRS(32, 4)
	dec := rs.NewDecoder()
	rng := simrand.New(0xff)
	clean := rs.Encode(randomData(rng, rs.K))
	bad := append([]uint8(nil), clean...)
	bad[3] ^= 0x5a            // unknown error
	bad[20] ^= 0x99           // erased position
	erasures := []int{20, 25} // one real erasure, one clean erasure
	scratch := make([]uint8, len(bad))
	op := func() {
		copy(scratch, bad)
		if st := dec.DecodeErasures(scratch, erasures); st != StatusCorrected {
			t.Fatalf("erasures+error decode: %v", st)
		}
	}
	op()
	if allocs := testing.AllocsPerRun(200, op); allocs != 0 {
		t.Errorf("errors+erasures decode: %v allocs/op, want 0", allocs)
	}
	if !bytes.Equal(scratch, clean) {
		t.Fatal("errors+erasures decode did not restore the codeword")
	}
}

func BenchmarkChipkillDecoderOneErrorInPlace(b *testing.B) {
	rs := NewRS(16, 2)
	dec := rs.NewDecoder()
	rng := simrand.New(7)
	clean := rs.Encode(randomData(rng, rs.K))
	bad := append([]uint8(nil), clean...)
	bad[4] ^= 0x21
	scratch := make([]uint8, len(bad))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(scratch, bad)
		if st := dec.Decode(scratch); st != StatusCorrected {
			b.Fatal(st)
		}
	}
}

func BenchmarkXEDChipkillTwoErasuresInPlace(b *testing.B) {
	rs := NewRS(16, 2)
	dec := rs.NewDecoder()
	rng := simrand.New(8)
	clean := rs.Encode(randomData(rng, rs.K))
	bad := append([]uint8(nil), clean...)
	bad[1] ^= 0x42
	bad[11] ^= 0x87
	erasures := []int{1, 11}
	scratch := make([]uint8, len(bad))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(scratch, bad)
		if st := dec.DecodeErasures(scratch, erasures); st != StatusCorrected {
			b.Fatal(st)
		}
	}
}
