// Package ecc implements the error-correcting and error-detecting codes the
// XED paper builds on: the (72,64) Hamming SECDED code, the (72,64) CRC8-ATM
// SECDED code recommended for On-Die ECC (§V-E), RAID-3 XOR parity across
// chips (§V-C), and Reed-Solomon symbol codes over GF(2⁸) for Chipkill and
// Double-Chipkill (§II-D2, §IX), including erasure decoding.
//
// All codes operate on the granularities the paper uses: 64 data bits plus 8
// check bits per on-die word, and one 8-bit symbol per chip per beat for the
// symbol codes.
package ecc

import "fmt"

// DecodeStatus classifies the outcome of decoding one codeword.
type DecodeStatus int

const (
	// StatusOK means the codeword was valid; data is returned unchanged.
	StatusOK DecodeStatus = iota
	// StatusCorrected means an error was detected and corrected; the
	// returned data is the corrected value.
	StatusCorrected
	// StatusDetected means an uncorrectable error was detected; the
	// returned data must not be trusted.
	StatusDetected
)

// String implements fmt.Stringer.
func (s DecodeStatus) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusCorrected:
		return "corrected"
	case StatusDetected:
		return "detected-uncorrectable"
	default:
		return fmt.Sprintf("DecodeStatus(%d)", int(s))
	}
}

// Codeword72 is one 72-bit on-die codeword: 64 data bits and 8 check bits.
// This is the unit each DRAM chip protects internally (§II-B: "each 64-bit
// data within the chip is protected by an 8-bit SECDED code").
type Codeword72 struct {
	Data  uint64
	Check uint8
}

// Bit returns bit i of the codeword, with bits 0..63 addressing Data (LSB
// first) and bits 64..71 addressing Check.
func (c Codeword72) Bit(i int) uint {
	if i < 64 {
		return uint(c.Data>>uint(i)) & 1
	}
	return uint(c.Check>>uint(i-64)) & 1
}

// FlipBit returns a copy of the codeword with bit i inverted. Bit numbering
// matches Bit.
func (c Codeword72) FlipBit(i int) Codeword72 {
	if i < 64 {
		c.Data ^= 1 << uint(i)
	} else {
		c.Check ^= 1 << uint(i-64)
	}
	return c
}

// FlipMask returns a copy of the codeword with the given 72-bit error
// pattern applied; dataMask covers bits 0..63 and checkMask bits 64..71.
func (c Codeword72) FlipMask(dataMask uint64, checkMask uint8) Codeword72 {
	c.Data ^= dataMask
	c.Check ^= checkMask
	return c
}

// Code64 is a (72,64) systematic code: 64 data bits in, 8 check bits out.
// Both on-die code candidates (Hamming, CRC8-ATM) implement it.
type Code64 interface {
	// Name identifies the code in tables and logs, e.g. "(72,64) Hamming".
	Name() string
	// Encode computes the check bits for data.
	Encode(data uint64) Codeword72
	// Decode validates cw, correcting a single-bit error if possible.
	// It returns the (possibly corrected) data word and the outcome.
	// A mis-correction — a multi-bit error that aliases to a correctable
	// syndrome — is reported as StatusCorrected with wrong data; this is
	// exactly the hazard the paper quantifies in Table II.
	Decode(cw Codeword72) (uint64, DecodeStatus)
	// IsValid reports whether cw is a valid codeword (zero syndrome).
	// XED uses this as the error-detection predicate: any invalid
	// codeword makes the chip emit a catch-word (§V-B).
	IsValid(cw Codeword72) bool
}
