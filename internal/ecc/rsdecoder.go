package ecc

// RSDecoder is reusable decode state for one RS code: every intermediate
// polynomial of the errors-and-erasures decoder (syndromes, erasure and
// error locators, evaluator, Berlekamp-Massey registers) lives in buffers
// preallocated at construction, so a warm decoder performs syndrome checks
// and full decodes without heap allocation. A decoder is NOT safe for
// concurrent use; give each memory controller (or goroutine) its own.
type RSDecoder struct {
	rs *RS

	syn         []uint8 // R syndromes
	gamma       []uint8 // erasure locator, degree <= R
	xi          []uint8 // modified syndromes Γ·S, up to 2R coefficients
	lambda      []uint8 // combined locator sigma·Γ, degree <= R
	omega       []uint8 // error evaluator S·Λ, up to 2R coefficients
	lambdaPrime []uint8 // formal derivative of lambda
	bmC, bmB    []uint8 // Berlekamp-Massey connection polynomials
	bmT         []uint8 // Berlekamp-Massey update scratch
	positions   []int   // Chien-search roots (polynomial degrees)
	mags        []uint8 // Forney magnitudes, parallel to positions
}

// NewDecoder allocates a decoder with all scratch sized for the code.
func (rs *RS) NewDecoder() *RSDecoder {
	n := rs.K + rs.R
	return &RSDecoder{
		rs:          rs,
		syn:         make([]uint8, rs.R),
		gamma:       make([]uint8, 0, rs.R+1),
		xi:          make([]uint8, 0, 2*rs.R),
		lambda:      make([]uint8, 0, 2*rs.R+1),
		omega:       make([]uint8, 0, 2*rs.R+1),
		lambdaPrime: make([]uint8, 0, 2*rs.R),
		bmC:         make([]uint8, 2*rs.R+2),
		bmB:         make([]uint8, 2*rs.R+2),
		bmT:         make([]uint8, 2*rs.R+2),
		positions:   make([]int, 0, n),
		mags:        make([]uint8, 0, n),
	}
}

// Decode corrects up to floor(R/2) symbol errors in cw in place. It returns
// StatusOK for a clean word, StatusCorrected after repairing errors, and
// StatusDetected when the syndromes fit no correctable pattern — in which
// case cw is left unmodified.
func (d *RSDecoder) Decode(cw []uint8) DecodeStatus {
	return d.DecodeErasures(cw, nil)
}

// DecodeErasures is the in-place errors-and-erasures decoder: the symbol
// indices in erasures (known-bad chips named by XED catch-words) plus up to
// floor((R-len(erasures))/2) unknown symbol errors are corrected directly
// in cw. cw is modified only when the result is StatusCorrected.
func (d *RSDecoder) DecodeErasures(cw []uint8, erasures []int) DecodeStatus {
	rs := d.rs
	n := rs.K + rs.R
	if len(cw) != n {
		panic("ecc: RS Decode codeword length mismatch")
	}
	if len(erasures) > rs.R {
		return StatusDetected
	}
	syn := rs.SyndromesInto(cw, d.syn[:0])
	allZero := true
	for _, s := range syn {
		if s != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		// Clean word — including the case where erasures were declared
		// but the "erased" symbols happen to hold correct data (e.g. a
		// catch-word collision, §V-D). Nothing to fix.
		return StatusOK
	}

	// Erasure locator Γ(x) = Π (1 - alpha^{p_i} x), built incrementally in
	// place: multiplying by (1 + a·x) is new[i] = old[i] ^ a·old[i-1],
	// which a high-to-low sweep computes without a second buffer.
	gamma := d.gamma[:1]
	gamma[0] = 1
	for _, e := range erasures {
		if e < 0 || e >= n {
			panic("ecc: RS erasure index out of range")
		}
		a := gfPow(rs.position(e))
		gamma = append(gamma, 0)
		for i := len(gamma) - 1; i >= 1; i-- {
			gamma[i] ^= gfMul(gamma[i-1], a)
		}
	}
	// Modified syndromes: Ξ(x) = Γ(x)·S(x) mod x^R.
	xi := polyMulInto(gamma, syn, d.xi)
	if len(xi) > rs.R {
		xi = xi[:rs.R]
	}

	// Berlekamp-Massey for the error locator sigma(x), allowing
	// t <= (R - e)/2 unknown errors. Only the modified syndromes with
	// index >= e are free of erasure contributions (Forney syndromes),
	// so BM runs on that tail.
	e := len(erasures)
	tMax := (rs.R - e) / 2
	sigma := d.berlekampMassey(xi[e:], tMax)
	if sigma == nil {
		return StatusDetected
	}

	// Combined locator Λ(x) = sigma(x)·Γ(x); roots give all bad positions.
	lambda := polyMulInto(sigma, gamma, d.lambda)
	positions := d.positions[:0]
	for pos := 0; pos < n; pos++ {
		if polyEval(lambda, gfPow(-pos)) == 0 {
			positions = append(positions, pos)
		}
	}
	if len(positions) != len(lambda)-1 {
		// Locator degree does not match its root count: uncorrectable.
		return StatusDetected
	}

	// Forney: error magnitude at position p is
	//   e_p = Omega(X^-1) / Λ'(X^-1),  X = alpha^p,
	// with Omega(x) = S(x)·Λ(x) mod x^R.
	omega := polyMulInto(syn, lambda, d.omega)
	if len(omega) > rs.R {
		omega = omega[:rs.R]
	}
	lambdaPrime := polyDerivInto(lambda, d.lambdaPrime)

	mags := d.mags[:0]
	for _, pos := range positions {
		xInv := gfPow(-pos)
		den := polyEval(lambdaPrime, xInv)
		if den == 0 {
			return StatusDetected
		}
		// With first generator root alpha^0 the magnitude carries an
		// extra X = alpha^pos factor: e = X·Omega(X^-1)/Λ'(X^-1).
		mags = append(mags, gfMul(gfPow(pos), gfDiv(polyEval(omega, xInv), den)))
	}
	// Verify before touching cw: syndromes are linear, so flipping mag at
	// degree pos moves syndrome j by mag·alpha^{j·pos}. The corrected word
	// is only committed when every adjusted syndrome is zero.
	for j := 0; j < rs.R; j++ {
		v := syn[j]
		for i, pos := range positions {
			v ^= gfMul(mags[i], gfPow(j*pos))
		}
		if v != 0 {
			return StatusDetected
		}
	}
	for i, pos := range positions {
		cw[rs.symbolAt(pos)] ^= mags[i]
	}
	return StatusCorrected
}

// berlekampMassey finds the minimal error-locator polynomial consistent
// with the syndrome sequence, or nil if its degree would exceed tMax (more
// errors than the remaining correction budget). The returned slice is
// backed by decoder scratch and is valid until the next decode.
func (d *RSDecoder) berlekampMassey(syn []uint8, tMax int) []uint8 {
	c := d.bmC[:1]
	c[0] = 1
	b := d.bmB[:1]
	b[0] = 1
	l := 0
	m := 1
	var bCoef uint8 = 1
	for i := 0; i < len(syn); i++ {
		// Discrepancy.
		disc := syn[i]
		for j := 1; j <= l && j < len(c); j++ {
			disc ^= gfMul(c[j], syn[i-j])
		}
		if disc == 0 {
			m++
			continue
		}
		scale := gfDiv(disc, bCoef)
		if 2*l <= i {
			// Save c, then c ^= scale·x^m·b and adopt the saved copy as
			// the new b — realised by swapping the two scratch arrays so
			// neither update clobbers the other.
			tLen := len(c)
			copy(d.bmT[:tLen], c)
			c = xorShiftedScaled(c, b, m, scale)
			l = i + 1 - l
			d.bmB, d.bmT = d.bmT, d.bmB
			b = d.bmB[:tLen]
			bCoef = disc
			m = 1
		} else {
			c = xorShiftedScaled(c, b, m, scale)
			m++
		}
	}
	// Trim trailing zeros.
	for len(c) > 1 && c[len(c)-1] == 0 {
		c = c[:len(c)-1]
	}
	if l > tMax || len(c)-1 != l {
		return nil
	}
	return c
}

// xorShiftedScaled computes c ^= scale·x^shift·b in place, growing c within
// its backing array as needed.
func xorShiftedScaled(c, b []uint8, shift int, scale uint8) []uint8 {
	newLen := len(c)
	if shift+len(b) > newLen {
		newLen = shift + len(b)
	}
	old := len(c)
	c = c[:newLen]
	for j := old; j < newLen; j++ {
		c[j] = 0
	}
	for j, bj := range b {
		c[shift+j] ^= gfMul(bj, scale)
	}
	return c
}
