package ecc

import (
	"testing"
	"testing/quick"

	"xedsim/internal/simrand"
)

func TestHammingRoundTrip(t *testing.T) {
	h := NewHamming()
	vectors := []uint64{0, 1, 0xffffffffffffffff, 0xdeadbeefcafebabe, 1 << 63, 0x5555555555555555, 0xaaaaaaaaaaaaaaaa}
	for _, v := range vectors {
		cw := h.Encode(v)
		if !h.IsValid(cw) {
			t.Errorf("Encode(%#x) produced invalid codeword", v)
		}
		got, st := h.Decode(cw)
		if st != StatusOK || got != v {
			t.Errorf("Decode(Encode(%#x)) = %#x, %v", v, got, st)
		}
	}
}

func TestHammingRoundTripProperty(t *testing.T) {
	h := NewHamming()
	f := func(v uint64) bool {
		got, st := h.Decode(h.Encode(v))
		return st == StatusOK && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHammingCorrectsEverySingleBit(t *testing.T) {
	h := NewHamming()
	rng := simrand.New(1)
	for trial := 0; trial < 32; trial++ {
		v := rng.Uint64()
		cw := h.Encode(v)
		for bit := 0; bit < 72; bit++ {
			got, st := h.Decode(cw.FlipBit(bit))
			if st != StatusCorrected {
				t.Fatalf("bit %d: status %v, want corrected", bit, st)
			}
			if got != v {
				t.Fatalf("bit %d: corrected to %#x, want %#x", bit, got, v)
			}
		}
	}
}

func TestHammingDetectsEveryDoubleBit(t *testing.T) {
	h := NewHamming()
	v := uint64(0x0123456789abcdef)
	cw := h.Encode(v)
	for i := 0; i < 72; i++ {
		for j := i + 1; j < 72; j++ {
			bad := cw.FlipBit(i).FlipBit(j)
			if h.IsValid(bad) {
				t.Fatalf("double error (%d,%d) is a valid codeword", i, j)
			}
			_, st := h.Decode(bad)
			if st != StatusDetected {
				t.Fatalf("double error (%d,%d): status %v, want detected", i, j, st)
			}
		}
	}
}

func TestHammingMinDistanceProbe(t *testing.T) {
	h := NewHamming()
	// 72 singles + C(72,2) pairs.
	want := 72 + 72*71/2
	if got := h.MinDistanceProbe(); got != want {
		t.Errorf("MinDistanceProbe checked %d patterns, want %d", got, want)
	}
}

func TestHammingOddErrorsNeverSilent(t *testing.T) {
	// Any odd-weight error flips the overall parity bit of the syndrome,
	// so it can never produce a valid codeword (it may mis-correct, but
	// XED's detection predicate still fires).
	h := NewHamming()
	rng := simrand.New(7)
	for trial := 0; trial < 20000; trial++ {
		v := rng.Uint64()
		cw := h.Encode(v)
		k := 1 + 2*rng.Intn(4) // 1,3,5,7
		seen := map[int]bool{}
		for len(seen) < k {
			seen[rng.Intn(72)] = true
		}
		for b := range seen {
			cw = cw.FlipBit(b)
		}
		if h.IsValid(cw) {
			t.Fatalf("odd-weight (%d) error produced valid codeword", k)
		}
	}
}

func TestHammingLayout(t *testing.T) {
	dataPos, checkPos := hammingLayout()
	seen := map[int]bool{}
	for _, p := range dataPos {
		if p < 1 || p > 71 || p&(p-1) == 0 {
			t.Fatalf("data position %d invalid", p)
		}
		if seen[p] {
			t.Fatalf("duplicate position %d", p)
		}
		seen[p] = true
	}
	wantCheck := []int{1, 2, 4, 8, 16, 32, 64, 72}
	for i, p := range checkPos {
		if p != wantCheck[i] {
			t.Fatalf("check position %d = %d, want %d", i, p, wantCheck[i])
		}
	}
}

func TestHammingBurst4AlignedUndetected(t *testing.T) {
	// The classic weakness Table II reports: a burst of 4 consecutive
	// classical positions starting at an even position has syndrome
	// p^(p+1)^(p+2)^(p+3) = 0 and is silently accepted. Verify both
	// directions of the dichotomy.
	h := NewHamming()
	order := h.SerialOrder()
	evenStart, oddStart := 0, 0
	evenSilent := 0
	for start := 0; start+4 <= 72; start++ {
		cw := Codeword72{}
		for i := 0; i < 4; i++ {
			cw = cw.FlipBit(order[start+i])
		}
		classical := start + 1 // serial index 0 = classical position 1
		if classical%2 == 0 {
			evenStart++
			if h.IsValid(cw) {
				evenSilent++
			}
		} else {
			oddStart++
			if h.IsValid(cw) {
				t.Fatalf("odd-start burst at %d silently accepted", classical)
			}
		}
	}
	if evenSilent == 0 {
		t.Fatal("expected some even-start 4-bursts to be silent for Hamming")
	}
}

func TestHammingEncodeDeterministic(t *testing.T) {
	a, b := NewHamming(), NewHamming()
	rng := simrand.New(3)
	for i := 0; i < 1000; i++ {
		v := rng.Uint64()
		if a.Encode(v) != b.Encode(v) {
			t.Fatalf("Encode(%#x) differs between instances", v)
		}
	}
}

func BenchmarkHammingEncode(b *testing.B) {
	h := NewHamming()
	var sink Codeword72
	for i := 0; i < b.N; i++ {
		sink = h.Encode(uint64(i) * 0x9e3779b97f4a7c15)
	}
	_ = sink
}

func BenchmarkHammingDecode(b *testing.B) {
	h := NewHamming()
	cw := h.Encode(0xdeadbeefcafebabe)
	var sink uint64
	for i := 0; i < b.N; i++ {
		v, _ := h.Decode(cw)
		sink += v
	}
	_ = sink
}
