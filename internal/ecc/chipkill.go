package ecc

// Chip-level code configurations used throughout the paper's evaluation.

// NewChipkill returns the Single-Chipkill symbol code: 16 data chips + 2
// check chips (18 total), correcting one chip-sized symbol error per beat
// and detecting two (§II-D2). Commercial implementations gang two x8 ranks
// (or one x4 rank pair) to assemble the 18 symbols.
func NewChipkill() *RS { return NewRS(16, 2) }

// NewDoubleChipkill returns the Double-Chipkill symbol code: 32 data chips
// + 4 check chips (36 total), correcting any two chip failures (§IX).
func NewDoubleChipkill() *RS { return NewRS(32, 4) }

// NewXEDChipkill returns the code for XED layered on Single-Chipkill
// hardware (§IX-A): the same 18-chip RS(18,16) code, but operated as an
// erasure code. With the faulty chips identified by catch-words, its two
// check symbols recover two erased chips — Double-Chipkill-level strength
// without the extra 18 chips.
func NewXEDChipkill() *RS { return NewRS(16, 2) }
