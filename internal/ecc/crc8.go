package ecc

// CRC8ATM implements the (72,64) CRC8-ATM SECDED code the paper recommends
// for On-Die ECC (§V-E). The generator is the ATM HEC polynomial
// x⁸ + x² + x + 1 (0x07), standardised in ITU-T I.432.1 for cell-header
// protection. Over a 64-bit message this code has Hamming distance 4, so it
// corrects any single-bit error and detects any double-bit error — the same
// SECDED guarantee as Hamming — while additionally detecting *all* burst
// errors of length ≤ 8 (a property of any degree-8 CRC), which is exactly
// the failure signature of a chip-internal multi-bit fault. Table II of the
// paper contrasts the two codes.
//
// Encoding and decoding are table-driven (256-entry byte table), mirroring
// the single-cycle XOR-tree implementations cited by the paper.
type CRC8ATM struct {
	table [256]uint8 // byte-at-a-time CRC table for poly 0x07
	// posForSyndrome maps a syndrome to 1 + the index of the single
	// codeword bit whose flip produces it (0 = not a single-bit
	// syndrome). Bit numbering follows Codeword72.
	posForSyndrome [256]uint8
	colSyndrome    [72]uint8
}

// crc8Poly is the ATM HEC generator polynomial x^8+x^2+x+1, low 8 bits.
const crc8Poly = 0x07

// NewCRC8ATM constructs the code and its lookup tables.
func NewCRC8ATM() *CRC8ATM {
	c := &CRC8ATM{}
	for v := 0; v < 256; v++ {
		r := uint8(v)
		for b := 0; b < 8; b++ {
			if r&0x80 != 0 {
				r = r<<1 ^ crc8Poly
			} else {
				r <<= 1
			}
		}
		c.table[v] = r
	}
	// Column syndromes: syndrome produced by each single-bit flip.
	for i := 0; i < 72; i++ {
		cw := Codeword72{}.FlipBit(i)
		c.colSyndrome[i] = c.rawSyndrome(cw)
	}
	for i := 0; i < 72; i++ {
		s := c.colSyndrome[i]
		if s == 0 {
			panic("crc8: zero column syndrome")
		}
		if c.posForSyndrome[s] != 0 {
			panic("crc8: duplicate column syndrome; code is not SEC over 72 bits")
		}
		c.posForSyndrome[s] = uint8(i + 1)
	}
	return c
}

// Name implements Code64.
func (c *CRC8ATM) Name() string { return "(72,64) CRC8-ATM" }

// crcData computes the CRC-8 remainder of the 64-bit data word processed
// most-significant byte first (network order, as in ATM cells).
func (c *CRC8ATM) crcData(data uint64) uint8 {
	var r uint8
	for shift := 56; shift >= 0; shift -= 8 {
		r = c.table[r^uint8(data>>uint(shift))]
	}
	return r
}

// rawSyndrome recomputes the remainder over data and XORs the stored check
// byte: zero for a valid codeword. Because the code is linear the syndrome
// depends only on the error pattern.
func (c *CRC8ATM) rawSyndrome(cw Codeword72) uint8 {
	return c.crcData(cw.Data) ^ cw.Check
}

// Encode implements Code64.
func (c *CRC8ATM) Encode(data uint64) Codeword72 {
	return Codeword72{Data: data, Check: c.crcData(data)}
}

// IsValid implements Code64.
func (c *CRC8ATM) IsValid(cw Codeword72) bool { return c.rawSyndrome(cw) == 0 }

// Decode implements Code64. A nonzero syndrome matching a column corrects
// that single bit; any other nonzero syndrome is detected-uncorrectable.
// Multi-bit errors that alias onto a column syndrome are mis-corrected —
// the residual risk Table II quantifies (≈0.8% of random 4-bit patterns).
func (c *CRC8ATM) Decode(cw Codeword72) (uint64, DecodeStatus) {
	s := c.rawSyndrome(cw)
	if s == 0 {
		return cw.Data, StatusOK
	}
	pos := c.posForSyndrome[s]
	if pos == 0 {
		return cw.Data, StatusDetected
	}
	corrected := cw.FlipBit(int(pos - 1))
	return corrected.Data, StatusCorrected
}
