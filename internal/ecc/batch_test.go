package ecc

import (
	"bytes"
	"math/rand"
	"testing"
)

// corruptRandomly flips up to four random symbols of cw.
func corruptRandomly(rng *rand.Rand, cw []uint8) {
	for i, n := 0, 1+rng.Intn(4); i < n; i++ {
		cw[rng.Intn(len(cw))] ^= uint8(1 + rng.Intn(255))
	}
}

// TestSyndromeTablesMatchHorner pins the contribution tables to the
// Horner oracle bit for bit, on clean and corrupted codewords, for every
// code shape the simulator instantiates plus an odd one.
func TestSyndromeTablesMatchHorner(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, shape := range [][2]int{{16, 2}, {32, 4}, {4, 3}, {1, 1}, {100, 8}} {
		rs := NewRS(shape[0], shape[1])
		if rs.synTab == nil {
			t.Fatalf("%s: contribution tables not built", rs.Name())
		}
		data := make([]uint8, rs.K)
		horner := make([]uint8, rs.R)
		for trial := 0; trial < 200; trial++ {
			for i := range data {
				data[i] = uint8(rng.Intn(256))
			}
			cw := rs.Encode(data)
			if trial%2 == 1 {
				corruptRandomly(rng, cw)
			}
			rs.synHorner(cw, horner)
			got := rs.SyndromesInto(cw, nil)
			if !bytes.Equal(got, horner) {
				t.Fatalf("%s: tabled syndromes %v != Horner %v", rs.Name(), got, horner)
			}
			wantValid := true
			for _, s := range horner {
				wantValid = wantValid && s == 0
			}
			if rs.IsValid(cw) != wantValid {
				t.Fatalf("%s: IsValid = %v, syndromes %v", rs.Name(), !wantValid, horner)
			}
		}
	}
}

// TestLargeCodeFallsBackToHorner: a code past synTabLimit skips the
// tables but keeps identical results.
func TestLargeCodeFallsBackToHorner(t *testing.T) {
	rs := NewRS(200, 55) // 255·55·256 > synTabLimit
	if rs.synTab != nil {
		t.Fatal("oversized code built contribution tables")
	}
	data := make([]uint8, rs.K)
	for i := range data {
		data[i] = uint8(i * 7)
	}
	cw := rs.Encode(data)
	if !rs.IsValid(cw) {
		t.Fatal("clean codeword judged invalid on the Horner fallback")
	}
	cw[3] ^= 0x5a
	if rs.IsValid(cw) {
		t.Fatal("corrupted codeword judged valid on the Horner fallback")
	}
}

// TestBatchSyndromes: the batch entry point equals per-word SyndromesInto
// and reuses its output buffer.
func TestBatchSyndromes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rs := NewRS(16, 2)
	cws := make([][]uint8, 67) // deliberately not a round number
	for i := range cws {
		data := make([]uint8, rs.K)
		for j := range data {
			data[j] = uint8(rng.Intn(256))
		}
		cws[i] = rs.Encode(data)
		if i%3 == 0 {
			corruptRandomly(rng, cws[i])
		}
	}
	syn := BatchSyndromes(rs, cws, nil)
	if len(syn) != len(cws)*rs.R {
		t.Fatalf("batch output length %d, want %d", len(syn), len(cws)*rs.R)
	}
	var one []uint8
	for i, cw := range cws {
		one = rs.SyndromesInto(cw, one)
		if !bytes.Equal(syn[i*rs.R:(i+1)*rs.R], one) {
			t.Fatalf("codeword %d: batch %v != single %v", i, syn[i*rs.R:(i+1)*rs.R], one)
		}
	}
	again := BatchSyndromes(rs, cws, syn)
	if &again[0] != &syn[0] {
		t.Fatal("BatchSyndromes reallocated a sufficient buffer")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		syn = BatchSyndromes(rs, cws, syn)
	}); allocs != 0 {
		t.Fatalf("warm BatchSyndromes allocates %v times, want 0", allocs)
	}
}

// TestParityLines: the word-at-a-time byte-line parity agrees with the
// scalar uint64 Parity on word-aligned data and handles ragged tails.
func TestParityLines(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, lineLen := range []int{0, 1, 7, 8, 64, 65} {
		lines := make([][]uint8, 8)
		for i := range lines {
			lines[i] = make([]uint8, lineLen)
			rng.Read(lines[i])
		}
		got := ParityLines(lines, nil)
		want := make([]uint8, lineLen)
		for _, line := range lines {
			for i, b := range line {
				want[i] ^= b
			}
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("len %d: ParityLines %v != naive %v", lineLen, got, want)
		}
		if !CheckParityLines(lines, got) {
			t.Fatalf("len %d: CheckParityLines rejects its own parity", lineLen)
		}
		if lineLen > 0 {
			bad := append([]uint8(nil), got...)
			bad[lineLen-1] ^= 1
			if CheckParityLines(lines, bad) {
				t.Fatalf("len %d: CheckParityLines accepts corrupt parity", lineLen)
			}
		}
	}
	if out := ParityLines(nil, nil); len(out) != 0 {
		t.Fatalf("empty ParityLines = %v", out)
	}
}

// benchCodewords builds a batch of n codewords with a few corrupted.
func benchCodewords(rs *RS, n int) [][]uint8 {
	rng := rand.New(rand.NewSource(4))
	cws := make([][]uint8, n)
	for i := range cws {
		data := make([]uint8, rs.K)
		rng.Read(data)
		cws[i] = rs.Encode(data)
		if i%16 == 0 {
			corruptRandomly(rng, cws[i])
		}
	}
	return cws
}

func BenchmarkSyndromes(b *testing.B) {
	for _, shape := range [][2]int{{16, 2}, {32, 4}} {
		rs := NewRS(shape[0], shape[1])
		cws := benchCodewords(rs, 1024)
		b.Run("horner/"+rs.Name(), func(b *testing.B) {
			syn := make([]uint8, rs.R)
			b.SetBytes(int64(len(cws) * (rs.K + rs.R)))
			for i := 0; i < b.N; i++ {
				for _, cw := range cws {
					rs.synHorner(cw, syn)
				}
			}
		})
		b.Run("tabled/"+rs.Name(), func(b *testing.B) {
			syn := make([]uint8, rs.R)
			b.SetBytes(int64(len(cws) * (rs.K + rs.R)))
			for i := 0; i < b.N; i++ {
				for _, cw := range cws {
					for j := range syn {
						syn[j] = 0
					}
					rs.synTabbed(cw, syn)
				}
			}
		})
		b.Run("batch/"+rs.Name(), func(b *testing.B) {
			var syn []uint8
			b.SetBytes(int64(len(cws) * (rs.K + rs.R)))
			for i := 0; i < b.N; i++ {
				syn = BatchSyndromes(rs, cws, syn)
			}
		})
	}
}
