package ecc

import (
	"testing"
	"testing/quick"

	"xedsim/internal/simrand"
)

func TestParityRoundTrip(t *testing.T) {
	f := func(seed uint64, erased uint8) bool {
		rng := simrand.New(seed)
		words := make([]uint64, ParityWords)
		for i := range words {
			words[i] = rng.Uint64()
		}
		p := Parity(words)
		if !CheckParity(words, p) {
			return false
		}
		e := int(erased) % ParityWords
		orig := words[e]
		words[e] = rng.Uint64() // corrupt
		return Reconstruct(words, p, e) == orig
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParityDetectsSingleCorruption(t *testing.T) {
	rng := simrand.New(42)
	words := make([]uint64, ParityWords)
	for i := range words {
		words[i] = rng.Uint64()
	}
	p := Parity(words)
	for e := 0; e < ParityWords; e++ {
		bad := make([]uint64, ParityWords)
		copy(bad, words)
		bad[e] ^= 1 << uint(e*7%64)
		if CheckParity(bad, p) {
			t.Fatalf("corruption of word %d not detected", e)
		}
		if Ambiguity(bad, p) == 0 {
			t.Fatalf("ambiguity zero for corrupt word %d", e)
		}
	}
	// Corrupting the parity itself is also detected.
	if CheckParity(words, p^1) {
		t.Fatal("parity corruption not detected")
	}
}

func TestParityCannotSeeCancellingCorruption(t *testing.T) {
	// The documented limit of XOR parity: identical corruption in two
	// words cancels. XED closes this hole with per-chip on-die
	// detection; this test pins the substrate behaviour.
	words := make([]uint64, ParityWords)
	p := Parity(words)
	words[0] ^= 0xff
	words[5] ^= 0xff
	if !CheckParity(words, p) {
		t.Fatal("expected cancelling corruption to be invisible to parity alone")
	}
}

func TestReconstructIgnoresErasedValue(t *testing.T) {
	rng := simrand.New(43)
	words := make([]uint64, ParityWords)
	for i := range words {
		words[i] = rng.Uint64()
	}
	p := Parity(words)
	orig := words[3]
	for _, garbage := range []uint64{0, ^uint64(0), 0x1234} {
		words[3] = garbage
		if got := Reconstruct(words, p, 3); got != orig {
			t.Fatalf("Reconstruct with garbage %#x = %#x, want %#x", garbage, got, orig)
		}
	}
}

func TestReconstructPanicsOnBadIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Reconstruct(make([]uint64, 8), 0, 8)
}

func TestParityEmptyAndSingle(t *testing.T) {
	if Parity(nil) != 0 {
		t.Fatal("parity of nothing should be 0")
	}
	if Parity([]uint64{0xabcd}) != 0xabcd {
		t.Fatal("parity of one word should be that word")
	}
}

func BenchmarkParityReconstruct(b *testing.B) {
	words := make([]uint64, ParityWords)
	for i := range words {
		words[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	p := Parity(words)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Reconstruct(words, p, i&7)
	}
	_ = sink
}
