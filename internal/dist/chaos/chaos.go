// Package chaos is a deterministic fault-injection layer for the dist
// protocol: an http.RoundTripper that drops, delays and duplicates
// requests on a fixed counter schedule. The dist test suite wires it under
// workers and clients to prove that no injected failure — lost responses
// forcing retries, duplicated deliveries, artificial stragglers — changes
// the final bytes of a campaign result.
//
// Faults are scheduled by request count, not randomness, so a failing run
// replays exactly. A dropped request is the nastiest variant deliberately:
// the request is SENT and the response discarded, so the server may have
// acted (a merge happened) while the client sees a failure and retries —
// the classic at-most-once hazard the coordinator's idempotent merge must
// absorb.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrDropped is the transport error surfaced for a chaos-dropped exchange.
var ErrDropped = errors.New("chaos: response dropped")

// Options schedules faults. Each Every-counter applies to its own count of
// matching requests: e.g. DropEvery=7 drops the 7th, 14th, ... matching
// request's response. Zero disables that fault.
type Options struct {
	// DropEvery sends the request but discards the response, returning
	// ErrDropped (a lost response, forcing a client retry of a
	// possibly-performed action).
	DropEvery int
	// DuplicateEvery performs the exchange twice back-to-back, returning
	// the second response (a duplicated delivery).
	DuplicateEvery int
	// DelayEvery stalls the request by Delay before sending (an
	// artificial straggler).
	DelayEvery int
	Delay      time.Duration
	// PathPrefix restricts faults to matching request paths (e.g.
	// "/v1/"); empty matches everything.
	PathPrefix string
}

// Stats counts injected faults.
type Stats struct {
	Requests   int64
	Drops      int64
	Duplicates int64
	Delays     int64
}

// Transport wraps a base RoundTripper with scheduled faults. Safe for
// concurrent use.
type Transport struct {
	base http.RoundTripper
	opts Options

	requests atomic.Int64
	drops    atomic.Int64
	dups     atomic.Int64
	delays   atomic.Int64

	mu      sync.Mutex
	matched int64 // count of fault-eligible requests, drives the schedule
}

// New wraps base (nil selects http.DefaultTransport) with opts.
func New(base http.RoundTripper, opts Options) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, opts: opts}
}

// Client returns an http.Client using the transport.
func (t *Transport) Client() *http.Client { return &http.Client{Transport: t} }

// Stats returns the fault counts so far.
func (t *Transport) Stats() Stats {
	return Stats{
		Requests:   t.requests.Load(),
		Drops:      t.drops.Load(),
		Duplicates: t.dups.Load(),
		Delays:     t.delays.Load(),
	}
}

// schedule claims the next matching-request ordinal and decides its fate.
func (t *Transport) schedule() (drop, dup, delay bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.matched++
	n := t.matched
	every := func(k int) bool { return k > 0 && n%int64(k) == 0 }
	return every(t.opts.DropEvery), every(t.opts.DuplicateEvery), every(t.opts.DelayEvery)
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.requests.Add(1)
	if t.opts.PathPrefix != "" && !strings.HasPrefix(req.URL.Path, t.opts.PathPrefix) {
		return t.base.RoundTrip(req)
	}
	drop, dup, delay := t.schedule()

	if delay && t.opts.Delay > 0 {
		t.delays.Add(1)
		timer := time.NewTimer(t.opts.Delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}

	if dup {
		// Replay needs a rewindable body; requests built by
		// http.NewRequest from a bytes.Reader always carry GetBody.
		if req.Body == nil || req.GetBody != nil {
			t.dups.Add(1)
			first, err := t.send(req)
			if err != nil {
				return nil, fmt.Errorf("chaos: duplicate first send: %w", err)
			}
			drainClose(first)
			if req.GetBody != nil {
				body, err := req.GetBody()
				if err != nil {
					return nil, err
				}
				req = req.Clone(req.Context())
				req.Body = body
			}
		}
	}

	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if drop {
		t.drops.Add(1)
		drainClose(resp)
		return nil, ErrDropped
	}
	return resp, nil
}

// send performs one base exchange on a cloned request.
func (t *Transport) send(req *http.Request) (*http.Response, error) {
	clone := req.Clone(req.Context())
	if req.GetBody != nil {
		body, err := req.GetBody()
		if err != nil {
			return nil, err
		}
		clone.Body = body
	}
	return t.base.RoundTrip(clone)
}

func drainClose(resp *http.Response) {
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()              //nolint:errcheck
}
