package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"xedsim/internal/faultsim"
)

// DefaultPollInterval paces Wait's status polls.
const DefaultPollInterval = 250 * time.Millisecond

// Client is the submitting side of the protocol: it submits campaign
// specs, polls for completion, and fetches results — resilient to
// backpressure (429 + Retry-After), coordinator outages (connection errors
// back off and retry), and coordinator restarts that lost the job (404 →
// resubmit; submission is idempotent by config hash, so the re-derived job
// is the same job).
type Client struct {
	base atomic.Value // string
	hc   *http.Client
	// PollInterval paces Wait; 0 selects DefaultPollInterval.
	PollInterval time.Duration
	// BackoffMin/BackoffMax bound the retry backoff (zero → 50ms / 5s).
	BackoffMin time.Duration
	BackoffMax time.Duration
}

// NewClient builds a client for a coordinator base URL.
func NewClient(base string, hc *http.Client) *Client {
	c := &Client{hc: hc}
	if c.hc == nil {
		c.hc = &http.Client{}
	}
	c.base.Store(base)
	return c
}

// SetBase repoints the client at a (re)started coordinator address.
func (c *Client) SetBase(url string) { c.base.Store(url) }

// Base returns the current coordinator base URL.
func (c *Client) Base() string { return c.base.Load().(string) }

func (c *Client) poll() time.Duration {
	if c.PollInterval > 0 {
		return c.PollInterval
	}
	return DefaultPollInterval
}

// Submit submits a spec, retrying through backpressure and outages until
// the coordinator admits (or permanently rejects) the job. A 400 is
// permanent — the spec itself is invalid.
func (c *Client) Submit(ctx context.Context, spec *JobSpec) (JobStatus, error) {
	bo := newBackoff(c.BackoffMin, c.BackoffMax)
	for {
		var st JobStatus
		code, retryAfter, err := postJSON(ctx, c.hc, c.Base(), "/v1/jobs", spec, &st)
		switch {
		case err == nil:
			return st, nil
		case ctx.Err() != nil:
			return JobStatus{}, ctx.Err()
		case code == http.StatusBadRequest:
			return JobStatus{}, err
		}
		// 429, 503, connection refused: wait and retry.
		if sleepCtx(ctx, maxDuration(retryAfter, bo.next())) != nil {
			return JobStatus{}, ctx.Err()
		}
	}
}

// Status fetches a job's status once (no retries; Wait owns resilience).
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	code, _, err := getJSON(ctx, c.hc, c.Base(), "/v1/jobs/"+id, &st)
	if code == http.StatusNotFound {
		return JobStatus{}, fmt.Errorf("%w: %.12s", ErrUnknownJob, id)
	}
	if err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Wait submits a spec and polls until the job is terminal. Outages are
// ridden out with backoff; a coordinator that comes back without the job
// (no ledger, or a pruned one) gets the spec resubmitted — idempotent by
// config hash, so this never forks the campaign.
func (c *Client) Wait(ctx context.Context, spec *JobSpec) (JobStatus, error) {
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return JobStatus{}, err
	}
	bo := newBackoff(c.BackoffMin, c.BackoffMax)
	for !st.State.Terminal() {
		if err := sleepCtx(ctx, c.poll()); err != nil {
			return JobStatus{}, err
		}
		next, err := c.Status(ctx, st.ID)
		switch {
		case err == nil:
			st = next
			bo.reset()
			continue
		case ctx.Err() != nil:
			return JobStatus{}, ctx.Err()
		case errors.Is(err, ErrUnknownJob):
			// Restarted coordinator without this job: resubmit.
			if st, err = c.Submit(ctx, spec); err != nil {
				return JobStatus{}, err
			}
			continue
		}
		if sleepCtx(ctx, bo.next()) != nil {
			return JobStatus{}, ctx.Err()
		}
	}
	return st, nil
}

// Result fetches a completed job's Report.
func (c *Client) Result(ctx context.Context, id string) (*faultsim.Report, error) {
	var rep faultsim.Report
	if _, _, err := getJSON(ctx, c.hc, c.Base(), "/v1/jobs/"+id+"/result", &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// CheckpointBytes fetches a completed job's canonical snapshot — byte-
// identical to the checkpoint file a local run of the same spec writes.
func (c *Client) CheckpointBytes(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base()+"/v1/jobs/"+id+"/checkpoint", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dist: checkpoint: %s", readError(resp.Body, resp.StatusCode))
	}
	return io.ReadAll(resp.Body)
}

// Runner adapts the client to the faultsim.RunCampaign signature: each
// call becomes a job submission that rides the coordinator. Campaign
// schemes are carried by name, so the schemes must come from the standard
// vocabulary (sabotaged test doubles cannot cross the wire). This is what
// xedverify -coordinator plugs into the conformance gate.
func (c *Client) Runner() func(ctx context.Context, cfg faultsim.Config, schemes []faultsim.Scheme, opts faultsim.CampaignOptions) (*faultsim.Report, error) {
	return func(ctx context.Context, cfg faultsim.Config, schemes []faultsim.Scheme, opts faultsim.CampaignOptions) (*faultsim.Report, error) {
		names := make([]string, len(schemes))
		for i, s := range schemes {
			names[i] = s.Name()
		}
		return c.RunCampaign(ctx, &JobSpec{
			Config:      cfg,
			Schemes:     names,
			Trials:      opts.Trials,
			Seed:        opts.Seed,
			ChunkSize:   opts.ChunkSize,
			Engine:      string(opts.Engine),
			Gen:         string(opts.Gen),
			ErrorBudget: opts.ErrorBudget,
		})
	}
}

// RunCampaign runs a campaign end to end through the coordinator and
// returns its Report — a drop-in counterpart to faultsim.RunCampaign for
// callers that point at a service instead of local cores. A failed job
// surfaces its recorded error.
func (c *Client) RunCampaign(ctx context.Context, spec *JobSpec) (*faultsim.Report, error) {
	st, err := c.Wait(ctx, spec)
	if err != nil {
		return nil, err
	}
	if st.State == JobFailed {
		return nil, fmt.Errorf("dist: job %.12s failed: %s", st.ID, st.Error)
	}
	return c.Result(ctx, st.ID)
}
