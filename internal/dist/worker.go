package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"xedsim/internal/faultsim"
	"xedsim/internal/obs"
)

// Worker defaults.
const (
	DefaultHeartbeatInterval = 2 * time.Second
	defaultBackoffMin        = 50 * time.Millisecond
	defaultBackoffMax        = 5 * time.Second
)

// backoff is jittered exponential backoff: each step doubles the base
// delay up to max, then randomises within [delay/2, delay] so a fleet of
// workers retrying against a recovering coordinator doesn't stampede in
// lockstep.
type backoff struct {
	cur, min, max time.Duration
}

func newBackoff(min, max time.Duration) *backoff {
	if min <= 0 {
		min = defaultBackoffMin
	}
	if max < min {
		max = defaultBackoffMax
	}
	return &backoff{min: min, max: max}
}

func (b *backoff) next() time.Duration {
	if b.cur == 0 {
		b.cur = b.min
	} else if b.cur < b.max {
		b.cur *= 2
		if b.cur > b.max {
			b.cur = b.max
		}
	}
	half := b.cur / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

func (b *backoff) reset() { b.cur = 0 }

// sleepCtx sleeps for d or until ctx is done, reporting which.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// WorkerOptions parameterises NewWorker.
type WorkerOptions struct {
	// ID names the worker in lease and heartbeat traffic (logs/metrics on
	// the coordinator side). Empty selects "worker".
	ID string
	// Coordinator is the base URL of the coordinator, e.g.
	// "http://127.0.0.1:7600". Changeable at runtime with SetBase (the
	// torn-restart tests move workers to a resurrected coordinator).
	Coordinator string
	// Parallel is the number of concurrent lease loops; 0 selects 1.
	Parallel int
	// HeartbeatInterval paces lease-extension heartbeats; it must be
	// comfortably below the coordinator's lease TTL. 0 selects
	// DefaultHeartbeatInterval.
	HeartbeatInterval time.Duration
	// MaxUnits, when positive, stops the worker after that many completed
	// units — the chaos harness's kill-after-N-chunks lever.
	MaxUnits int
	// Client overrides the HTTP client (chaos tests inject a faulty
	// transport here). Nil selects a plain client.
	Client *http.Client
	// Metrics, when non-nil, publishes worker counters under "dist.worker_*".
	Metrics *obs.Registry
	// BackoffMin/BackoffMax bound the retry backoff; zero values select
	// 50ms / 5s.
	BackoffMin time.Duration
	BackoffMax time.Duration
}

// Worker leases work units from a coordinator, evaluates them with
// faultsim.ChunkRunner, and reports results back, retrying with jittered
// exponential backoff across coordinator outages. It holds no durable
// state: everything it computes can be recomputed, so crash-stopping a
// worker at any instant is always safe.
type Worker struct {
	opts WorkerOptions
	base atomic.Value // string
	hc   *http.Client

	unitsDone  atomic.Int64
	leaseFail  *obs.Counter
	unitsC     *obs.Counter
	retriesC   *obs.Counter
	lostLeases *obs.Counter

	mu     sync.Mutex
	active map[LeaseRef]struct{}
}

// NewWorker builds a worker; Run starts it.
func NewWorker(opts WorkerOptions) *Worker {
	if opts.ID == "" {
		opts.ID = "worker"
	}
	if opts.Parallel <= 0 {
		opts.Parallel = 1
	}
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = DefaultHeartbeatInterval
	}
	w := &Worker{
		opts:       opts,
		hc:         opts.Client,
		active:     make(map[LeaseRef]struct{}),
		leaseFail:  opts.Metrics.Counter("dist.worker_lease_failures"),
		unitsC:     opts.Metrics.Counter("dist.worker_units_done"),
		retriesC:   opts.Metrics.Counter("dist.worker_retries"),
		lostLeases: opts.Metrics.Counter("dist.worker_leases_lost"),
	}
	if w.hc == nil {
		w.hc = &http.Client{}
	}
	w.base.Store(opts.Coordinator)
	return w
}

// SetBase repoints the worker at a (re)started coordinator address.
func (w *Worker) SetBase(url string) { w.base.Store(url) }

// Base returns the current coordinator base URL.
func (w *Worker) Base() string { return w.base.Load().(string) }

// UnitsDone reports how many units this worker has settled (merged or
// acknowledged duplicate).
func (w *Worker) UnitsDone() int { return int(w.unitsDone.Load()) }

// Run executes lease loops plus a heartbeat loop until ctx is cancelled
// or MaxUnits is reached. It returns nil on a clean stop.
func (w *Worker) Run(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.heartbeatLoop(ctx)
	}()
	for i := 0; i < w.opts.Parallel; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.leaseLoop(ctx, cancel)
		}()
	}
	wg.Wait()
	if err := ctx.Err(); errors.Is(err, context.Canceled) {
		return nil
	} else if err != nil {
		return err
	}
	return nil
}

// leaseLoop is one lease → compute → complete cycle runner. Each loop owns
// its runner cache: a faultsim.ChunkRunner carries per-chunk scratch state
// and is not safe for concurrent use, so parallel loops never share one.
func (w *Worker) leaseLoop(ctx context.Context, stop context.CancelFunc) {
	bo := newBackoff(w.opts.BackoffMin, w.opts.BackoffMax)
	runners := make(map[string]*faultsim.ChunkRunner)
	for ctx.Err() == nil {
		if w.opts.MaxUnits > 0 && int(w.unitsDone.Load()) >= w.opts.MaxUnits {
			stop()
			return
		}
		lease, retryAfter, err := w.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			w.leaseFail.Inc()
			w.retriesC.Inc()
			if sleepCtx(ctx, maxDuration(retryAfter, bo.next())) != nil {
				return
			}
			continue
		}
		if lease == nil {
			// No work available right now; idle-poll with backoff.
			if sleepCtx(ctx, bo.next()) != nil {
				return
			}
			continue
		}
		bo.reset()
		if err := w.runUnit(ctx, runners, lease); err != nil {
			if ctx.Err() != nil {
				return
			}
			continue
		}
		if n := w.unitsDone.Add(1); w.opts.MaxUnits > 0 && int(n) >= w.opts.MaxUnits {
			stop()
			return
		}
	}
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// runner returns the loop-local ChunkRunner for a job, building it from
// the lease's spec on first sight.
func runner(cache map[string]*faultsim.ChunkRunner, lease *Lease) (*faultsim.ChunkRunner, error) {
	if r, ok := cache[lease.JobID]; ok {
		return r, nil
	}
	schemes, err := lease.Spec.ResolveSchemes()
	if err != nil {
		return nil, err
	}
	r, err := faultsim.NewChunkRunner(lease.Spec.Config, schemes, lease.Spec.CampaignOptions())
	if err != nil {
		return nil, err
	}
	cache[lease.JobID] = r
	return r, nil
}

// runUnit computes a leased span and reports it, holding the lease in the
// heartbeat set for the duration.
func (w *Worker) runUnit(ctx context.Context, runners map[string]*faultsim.ChunkRunner, lease *Lease) error {
	ref := LeaseRef{JobID: lease.JobID, Unit: lease.Unit, Token: lease.Token}
	w.mu.Lock()
	w.active[ref] = struct{}{}
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.active, ref)
		w.mu.Unlock()
	}()

	r, err := runner(runners, lease)
	if err != nil {
		// A spec this binary cannot evaluate; drop the lease and let it
		// expire for someone else.
		return err
	}
	res, err := r.RunSpan(ctx, lease.Lo, lease.Hi)
	if err != nil {
		return err
	}
	w.unitsC.Inc()
	return w.complete(ctx, &CompleteRequest{
		WorkerID: w.opts.ID,
		JobID:    lease.JobID,
		Unit:     lease.Unit,
		Token:    lease.Token,
		Result:   *res,
	})
}

// lease asks the coordinator for a unit. A 204 returns (nil, 0, nil); a
// 429/503 returns the server's Retry-After as a floor for the caller's
// backoff.
func (w *Worker) lease(ctx context.Context) (*Lease, time.Duration, error) {
	var lease Lease
	code, retryAfter, err := w.postJSON(ctx, "/v1/lease", &LeaseRequest{WorkerID: w.opts.ID}, &lease)
	if err != nil {
		return nil, retryAfter, err
	}
	if code == http.StatusNoContent {
		return nil, 0, nil
	}
	return &lease, 0, nil
}

// complete reports a unit, retrying transient failures until the unit is
// settled. A 404 (the coordinator restarted and no longer knows the job)
// settles the unit too: the submitting client will resubmit the spec and
// re-derive the same job.
func (w *Worker) complete(ctx context.Context, req *CompleteRequest) error {
	bo := newBackoff(w.opts.BackoffMin, w.opts.BackoffMax)
	for {
		var resp CompleteResponse
		code, retryAfter, err := w.postJSON(ctx, "/v1/complete", req, &resp)
		switch {
		case err == nil:
			return nil
		case ctx.Err() != nil:
			return ctx.Err()
		case code == http.StatusNotFound || code == http.StatusBadRequest:
			return fmt.Errorf("dist: unit %d of job %.12s rejected: %w", req.Unit, req.JobID, err)
		}
		w.retriesC.Inc()
		if sleepCtx(ctx, maxDuration(retryAfter, bo.next())) != nil {
			return ctx.Err()
		}
	}
}

// heartbeatLoop extends the active leases until ctx is done.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	tick := time.NewTicker(w.opts.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		w.mu.Lock()
		refs := make([]LeaseRef, 0, len(w.active))
		for ref := range w.active {
			refs = append(refs, ref)
		}
		w.mu.Unlock()
		if len(refs) == 0 {
			continue
		}
		var resp HeartbeatResponse
		_, _, err := w.postJSON(ctx, "/v1/heartbeat", &HeartbeatRequest{WorkerID: w.opts.ID, Leases: refs}, &resp)
		if err == nil && resp.Lost > 0 {
			w.lostLeases.Add(uint64(resp.Lost))
		}
	}
}

// postJSON POSTs a JSON body and decodes a JSON response. Non-2xx statuses
// return an error carrying the server's error body; the returned code and
// Retry-After let callers classify it. Connection errors return code 0.
func (w *Worker) postJSON(ctx context.Context, path string, body, into any) (code int, retryAfter time.Duration, err error) {
	return postJSON(ctx, w.hc, w.Base(), path, body, into)
}

// postJSON is the shared wire helper for Worker and Client.
func postJSON(ctx context.Context, hc *http.Client, base, path string, body, into any) (int, time.Duration, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(buf))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close() //nolint:errcheck
	retryAfter := parseRetryAfter(resp.Header.Get("Retry-After"))
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return resp.StatusCode, retryAfter, fmt.Errorf("dist: %s: %s", path, readError(resp.Body, resp.StatusCode))
	}
	if resp.StatusCode == http.StatusNoContent || into == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return resp.StatusCode, retryAfter, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		return resp.StatusCode, retryAfter, fmt.Errorf("dist: decoding %s response: %w", path, err)
	}
	return resp.StatusCode, retryAfter, nil
}

// getJSON GETs a JSON document.
func getJSON(ctx context.Context, hc *http.Client, base, path string, into any) (int, time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
	if err != nil {
		return 0, 0, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close() //nolint:errcheck
	retryAfter := parseRetryAfter(resp.Header.Get("Retry-After"))
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, retryAfter, fmt.Errorf("dist: %s: %s", path, readError(resp.Body, resp.StatusCode))
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		return resp.StatusCode, retryAfter, fmt.Errorf("dist: decoding %s response: %w", path, err)
	}
	return resp.StatusCode, retryAfter, nil
}

// readError extracts the JSON error body, falling back to the status code.
func readError(r io.Reader, code int) string {
	var eb errorBody
	if err := json.NewDecoder(io.LimitReader(r, 4096)).Decode(&eb); err == nil && eb.Error != "" {
		return eb.Error
	}
	return "HTTP " + strconv.Itoa(code)
}

func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if s, err := strconv.Atoi(h); err == nil && s >= 0 {
		return time.Duration(s) * time.Second
	}
	return 0
}
