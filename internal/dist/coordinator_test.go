package dist

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"xedsim/internal/faultsim"
	"xedsim/internal/obs"
)

// testSpec is a small campaign spanning enough chunks to shard meaningfully
// (79 chunks → 20 four-chunk units).
func testSpec() *JobSpec {
	cfg := faultsim.DefaultConfig()
	cfg.LifetimeHours = 2 * faultsim.HoursPerYear
	return &JobSpec{
		Config:    cfg,
		Schemes:   []string{"ECC-DIMM (SECDED)", "XED"},
		Trials:    40_000,
		Seed:      99,
		ChunkSize: 512,
		Engine:    string(faultsim.EngineLanes),
	}
}

// localRun evaluates a spec with plain RunCampaign and returns the Report
// plus the checkpoint bytes a local run leaves behind.
func localRun(t *testing.T, spec *JobSpec) (*faultsim.Report, []byte) {
	t.Helper()
	schemes, err := spec.ResolveSchemes()
	if err != nil {
		t.Fatal(err)
	}
	opts := spec.CampaignOptions()
	opts.CheckpointPath = filepath.Join(t.TempDir(), "local.ckpt")
	rep, err := faultsim.RunCampaign(context.Background(), spec.Config, schemes, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(opts.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	return rep, b
}

func newTestCoordinator(t *testing.T, opts CoordinatorOptions) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// drainJob plays a one-worker coordinator loop in-process: lease, compute,
// complete, until no work remains.
func drainJob(t *testing.T, c *Coordinator) {
	t.Helper()
	runners := map[string]*faultsim.ChunkRunner{}
	for {
		lease, err := c.Lease("test-worker")
		if err != nil {
			t.Fatal(err)
		}
		if lease == nil {
			return
		}
		r, ok := runners[lease.JobID]
		if !ok {
			schemes, err := lease.Spec.ResolveSchemes()
			if err != nil {
				t.Fatal(err)
			}
			if r, err = faultsim.NewChunkRunner(lease.Spec.Config, schemes, lease.Spec.CampaignOptions()); err != nil {
				t.Fatal(err)
			}
			runners[lease.JobID] = r
		}
		res, err := r.RunSpan(context.Background(), lease.Lo, lease.Hi)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Complete(CompleteRequest{
			WorkerID: "test-worker", JobID: lease.JobID, Unit: lease.Unit, Token: lease.Token, Result: *res,
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCoordinatorMatchesLocal is the service's core promise: a job sharded
// into leased units and merged by the coordinator yields a Report and
// checkpoint bytes identical to a single-process RunCampaign, and an
// identical resubmission is served from the completed-result cache.
func TestCoordinatorMatchesLocal(t *testing.T) {
	spec := testSpec()
	localRep, localBytes := localRun(t, spec)

	c := newTestCoordinator(t, CoordinatorOptions{UnitChunks: 4})
	st, err := c.Submit(*spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobQueued || st.Cached {
		t.Fatalf("fresh submit: state=%s cached=%v", st.State, st.Cached)
	}
	drainJob(t, c)

	st, err = c.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone || st.DoneChunks != st.TotalChunks {
		t.Fatalf("after drain: %+v", st)
	}
	rep, err := c.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, localRep) {
		t.Fatal("coordinator Report differs from local RunCampaign")
	}
	b, err := c.CheckpointBytes(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(localBytes) {
		t.Fatal("coordinator checkpoint bytes differ from local checkpoint file")
	}

	// Identical resubmission: served from cache, no new work.
	st2, err := c.Submit(*spec)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.State != JobDone || st2.ID != st.ID {
		t.Fatalf("resubmit: %+v", st2)
	}
	if lease, _ := c.Lease("w"); lease != nil {
		t.Fatal("cached job produced work")
	}
}

// TestCoordinatorBatchGenMatchesLocal extends the core promise to the
// batch generation mode: a -gen=batch job sharded across leased units
// merges to exactly the local batch run's Report and checkpoint bytes, and
// — because the generator is part of the job identity — a batch submission
// is never served the scalar job's cached result.
func TestCoordinatorBatchGenMatchesLocal(t *testing.T) {
	scalar := testSpec()
	batch := testSpec()
	batch.Gen = string(faultsim.GenBatch)
	localRep, localBytes := localRun(t, batch)

	c := newTestCoordinator(t, CoordinatorOptions{UnitChunks: 4})
	st, err := c.Submit(*scalar)
	if err != nil {
		t.Fatal(err)
	}
	drainJob(t, c)

	st2, err := c.Submit(*batch)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Cached || st2.ID == st.ID {
		t.Fatalf("batch submission hit the scalar job's cache: %+v", st2)
	}
	drainJob(t, c)

	rep, err := c.Result(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, localRep) {
		t.Fatal("coordinator batch-gen Report differs from local RunCampaign")
	}
	b, err := c.CheckpointBytes(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(localBytes) {
		t.Fatal("coordinator batch-gen checkpoint bytes differ from local checkpoint file")
	}
	scalarRep, err := c.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(scalarRep.Results, rep.Results) {
		t.Fatal("scalar and batch jobs produced identical tallies; the generator plausibly never switched")
	}
}

// TestQueueBackpressure pins the bounded queue: beyond QueueDepth active
// jobs, submissions fail with ErrQueueFull — and over HTTP, 429 with a
// Retry-After header.
func TestQueueBackpressure(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorOptions{QueueDepth: 1})
	a := testSpec()
	if _, err := c.Submit(*a); err != nil {
		t.Fatal(err)
	}
	b := testSpec()
	b.Seed++
	if _, err := c.Submit(*b); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second submit err = %v, want ErrQueueFull", err)
	}
	// Resubmitting the admitted job is not a new admission.
	if _, err := c.Submit(*a); err != nil {
		t.Fatalf("idempotent resubmit err = %v", err)
	}

	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(mustSpecJSON(t, b)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func mustSpecJSON(t *testing.T, s *JobSpec) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSubmitRejectsInvalidSpecs pins validation-before-admission.
func TestSubmitRejectsInvalidSpecs(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorOptions{})
	cases := map[string]func(*JobSpec){
		"no trials":      func(s *JobSpec) { s.Trials = 0 },
		"no schemes":     func(s *JobSpec) { s.Schemes = nil },
		"unknown scheme": func(s *JobSpec) { s.Schemes = []string{"TMR"} },
		"unknown engine": func(s *JobSpec) { s.Engine = "quantum" },
	}
	for name, mut := range cases {
		s := testSpec()
		mut(s)
		if _, err := c.Submit(*s); err == nil {
			t.Errorf("%s: invalid spec admitted", name)
		}
	}
}

// TestLeaseExpiryAndHeartbeat pins the lease lifecycle against a fake
// clock: an expired lease is re-granted (with a fresh token) while a
// heartbeated one is not, and a straggler whose lease was re-granted is
// told it lost it.
func TestLeaseExpiryAndHeartbeat(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorOptions{LeaseTTL: 10 * time.Second, UnitChunks: 4})
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	if _, err := c.Submit(*testSpec()); err != nil {
		t.Fatal(err)
	}

	l1, err := c.Lease("w1")
	if err != nil || l1 == nil {
		t.Fatalf("lease: %v %v", l1, err)
	}
	// Within TTL the unit is reserved: the next lease is a different unit.
	l2, _ := c.Lease("w2")
	if l2 == nil || l2.Unit == l1.Unit {
		t.Fatalf("second lease = %+v, want different unit", l2)
	}

	// w1 heartbeats, w2 goes silent. Advance past the original deadline:
	// w1's unit stays reserved, w2's is re-granted with a new token.
	now = now.Add(8 * time.Second)
	hb := c.Heartbeat(HeartbeatRequest{WorkerID: "w1", Leases: []LeaseRef{
		{JobID: l1.JobID, Unit: l1.Unit, Token: l1.Token},
	}})
	if hb.Extended != 1 || hb.Lost != 0 {
		t.Fatalf("heartbeat = %+v", hb)
	}
	now = now.Add(4 * time.Second) // l2 expired; l1 extended to t+18s

	next, _ := c.Lease("w3")
	if next == nil || next.Unit != l2.Unit {
		t.Fatalf("re-grant = %+v, want unit %d", next, l2.Unit)
	}
	if next.Token == l2.Token {
		t.Fatal("re-granted lease reused the token")
	}
	// The straggler's heartbeat now reports the lease lost.
	hb = c.Heartbeat(HeartbeatRequest{WorkerID: "w2", Leases: []LeaseRef{
		{JobID: l2.JobID, Unit: l2.Unit, Token: l2.Token},
	}})
	if hb.Lost != 1 {
		t.Fatalf("straggler heartbeat = %+v, want lost", hb)
	}
}

// TestCompleteDuplicateAndLateResults pins at-most-once merging at the
// coordinator layer: a unit delivered twice (retried POST, or a straggler
// racing a re-dispatch) merges once and is acknowledged as duplicate the
// second time.
func TestCompleteDuplicateAndLateResults(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCoordinator(t, CoordinatorOptions{UnitChunks: 4, Metrics: reg})
	spec := testSpec()
	if _, err := c.Submit(*spec); err != nil {
		t.Fatal(err)
	}
	lease, err := c.Lease("w1")
	if err != nil || lease == nil {
		t.Fatal("no lease")
	}
	schemes, _ := spec.ResolveSchemes()
	r, err := faultsim.NewChunkRunner(spec.Config, schemes, spec.CampaignOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunSpan(context.Background(), lease.Lo, lease.Hi)
	if err != nil {
		t.Fatal(err)
	}
	req := CompleteRequest{WorkerID: "w1", JobID: lease.JobID, Unit: lease.Unit, Token: lease.Token, Result: *res}
	first, err := c.Complete(req)
	if err != nil || !first.Merged {
		t.Fatalf("first complete = %+v, %v", first, err)
	}
	second, err := c.Complete(req)
	if err != nil || second.Merged || !second.Duplicate {
		t.Fatalf("second complete = %+v, %v", second, err)
	}
	st, _ := c.Status(lease.JobID)
	if st.DoneChunks != lease.Hi-lease.Lo {
		t.Fatalf("DoneChunks = %d after duplicate, want %d", st.DoneChunks, lease.Hi-lease.Lo)
	}
	if n := reg.Snapshot().Counters["dist.merges_duplicate"]; n != 1 {
		t.Fatalf("dist.merges_duplicate = %d, want 1", n)
	}

	// A corrupted envelope for a not-yet-merged unit is rejected and
	// merges nothing.
	lease2, err := c.Lease("w2")
	if err != nil || lease2 == nil {
		t.Fatal("no second lease")
	}
	res2, err := r.RunSpan(context.Background(), lease2.Lo, lease2.Hi)
	if err != nil {
		t.Fatal(err)
	}
	bad := CompleteRequest{JobID: lease2.JobID, Unit: lease2.Unit, Token: lease2.Token, Result: *res2}
	bad.Result.Trials++
	if _, err := c.Complete(bad); err == nil {
		t.Fatal("corrupted envelope accepted")
	}
	if st, _ := c.Status(lease2.JobID); st.DoneChunks != lease.Hi-lease.Lo {
		t.Fatal("rejected envelope advanced the accumulator")
	}
}

// TestLedgerRecovery pins the torn-restart path: a coordinator killed with
// a half-merged job comes back (same state dir) resuming that job, serves
// the unmerged units again, and finishes with bytes identical to a local
// run — including progress merged after the last persist, which is simply
// recomputed.
func TestLedgerRecovery(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	localRep, localBytes := localRun(t, spec)

	c1 := newTestCoordinator(t, CoordinatorOptions{StateDir: dir, UnitChunks: 4})
	st, err := c1.Submit(*spec)
	if err != nil {
		t.Fatal(err)
	}
	schemes, _ := spec.ResolveSchemes()
	r, err := faultsim.NewChunkRunner(spec.Config, schemes, spec.CampaignOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Merge three units, persist after the second: the third merge is
	// "lost" by the crash and must be recomputed.
	for i := 0; i < 3; i++ {
		lease, err := c1.Lease("w")
		if err != nil || lease == nil {
			t.Fatal("no lease")
		}
		res, err := r.RunSpan(context.Background(), lease.Lo, lease.Hi)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c1.Complete(CompleteRequest{JobID: lease.JobID, Unit: lease.Unit, Token: lease.Token, Result: *res}); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			c1.SaveState()
		}
	}
	// c1 is abandoned here without SaveState: a hard kill.

	c2 := newTestCoordinator(t, CoordinatorOptions{StateDir: dir, UnitChunks: 4})
	st2, err := c2.Status(st.ID)
	if err != nil {
		t.Fatalf("restarted coordinator lost the job: %v", err)
	}
	if st2.State.Terminal() {
		t.Fatalf("restored state = %s", st2.State)
	}
	if st2.DoneChunks != 8 {
		t.Fatalf("restored DoneChunks = %d, want 8 (two persisted units)", st2.DoneChunks)
	}
	drainJob(t, c2)
	rep, err := c2.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, localRep) {
		t.Fatal("post-restart Report differs from local RunCampaign")
	}
	b, err := c2.CheckpointBytes(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(localBytes) {
		t.Fatal("post-restart checkpoint bytes differ from local checkpoint")
	}

	// A third incarnation sees the job terminal and cache-serves it.
	c3 := newTestCoordinator(t, CoordinatorOptions{StateDir: dir, UnitChunks: 4})
	st3, err := c3.Submit(*spec)
	if err != nil {
		t.Fatal(err)
	}
	if st3.State != JobDone || !st3.Cached {
		t.Fatalf("third incarnation: %+v", st3)
	}
	if b3, _ := c3.CheckpointBytes(st.ID); string(b3) != string(localBytes) {
		t.Fatal("cache-served checkpoint differs")
	}
}

// TestDrainRefusesWork pins graceful shutdown: a draining coordinator
// refuses submissions and leases (503 semantics) and reports not-ready.
func TestDrainRefusesWork(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorOptions{})
	if _, err := c.Submit(*testSpec()); err != nil {
		t.Fatal(err)
	}
	c.Drain()
	if _, err := c.Lease("w"); !errors.Is(err, ErrDraining) {
		t.Fatalf("lease while draining err = %v", err)
	}
	s := testSpec()
	s.Seed++
	if _, err := c.Submit(*s); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining err = %v", err)
	}
	if err := c.Ready(); !errors.Is(err, ErrDraining) {
		t.Fatalf("Ready while draining = %v", err)
	}

	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d", resp.StatusCode)
	}
}

// TestErrorBudgetFailsJob pins cross-worker budget aggregation at the
// service layer: fabricated voided trials from two units trip the job into
// the failed state, which the status and result paths surface.
func TestErrorBudgetFailsJob(t *testing.T) {
	spec := testSpec()
	spec.Schemes = []string{"XED"}
	spec.Trials = 4096
	spec.ErrorBudget = 3
	c := newTestCoordinator(t, CoordinatorOptions{UnitChunks: 1})
	st, err := c.Submit(*spec)
	if err != nil {
		t.Fatal(err)
	}
	mkRes := func(lo int) faultsim.ChunkResult {
		res := faultsim.ChunkResult{
			Lo: lo, Hi: lo + 1,
			Trials:  512 - 2,
			Tallies: []faultsim.SchemeTally{{ByYear: make([]uint64, 2)}},
		}
		for i := 0; i < 2; i++ {
			res.Errors = append(res.Errors, faultsim.TrialError{
				Trial: lo*512 + i, Chunk: lo, RNGState: [4]uint64{1, 2, 3, 4}, PanicValue: "boom",
			})
		}
		return res
	}
	l1, _ := c.Lease("w")
	if _, err := c.Complete(CompleteRequest{JobID: st.ID, Unit: l1.Unit, Token: l1.Token, Result: mkRes(l1.Lo)}); err != nil {
		t.Fatal(err)
	}
	l2, _ := c.Lease("w")
	resp, err := c.Complete(CompleteRequest{JobID: st.ID, Unit: l2.Unit, Token: l2.Token, Result: mkRes(l2.Lo)})
	if err != nil || !resp.JobDone {
		t.Fatalf("budget-tripping complete = %+v, %v", resp, err)
	}
	st, _ = c.Status(st.ID)
	if st.State != JobFailed || st.Error == "" || st.TrialErrors != 4 {
		t.Fatalf("failed job status = %+v", st)
	}
	if _, err := c.Result(st.ID); !errors.Is(err, ErrNotDone) {
		t.Fatalf("Result of failed job err = %v", err)
	}
	// No further work is handed out for a failed job.
	if lease, _ := c.Lease("w"); lease != nil {
		t.Fatal("failed job produced work")
	}
}
