package dist

import (
	"context"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"xedsim/internal/dist/chaos"
	"xedsim/internal/faultsim"
)

// fastWorker returns worker options tuned for test latency.
func fastWorker(id, base string) WorkerOptions {
	return WorkerOptions{
		ID:                id,
		Coordinator:       base,
		HeartbeatInterval: 100 * time.Millisecond,
		BackoffMin:        2 * time.Millisecond,
		BackoffMax:        50 * time.Millisecond,
	}
}

// TestWorkersEndToEnd runs the whole service in-process over real HTTP:
// two parallel workers drain a job submitted through the Client, and the
// result is bit-identical to a local RunCampaign.
func TestWorkersEndToEnd(t *testing.T) {
	spec := testSpec()
	localRep, localBytes := localRun(t, spec)

	c := newTestCoordinator(t, CoordinatorOptions{UnitChunks: 4})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for _, id := range []string{"w1", "w2"} {
		w := NewWorker(fastWorker(id, srv.URL))
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx) //nolint:errcheck
		}()
	}

	cl := NewClient(srv.URL, nil)
	cl.PollInterval = 10 * time.Millisecond
	rep, err := cl.RunCampaign(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, localRep) {
		t.Fatal("service Report differs from local RunCampaign")
	}
	st, err := cl.Status(ctx, mustHash(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	b, err := cl.CheckpointBytes(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(localBytes) {
		t.Fatal("service checkpoint bytes differ from local checkpoint file")
	}
	cancel()
	wg.Wait()
}

func mustHash(t *testing.T, spec *JobSpec) string {
	t.Helper()
	schemes, err := spec.ResolveSchemes()
	if err != nil {
		t.Fatal(err)
	}
	h, err := faultsim.CampaignHash(spec.Config, schemes, spec.CampaignOptions())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestChaosBitIdentical is the headline robustness proof. The schedule is
// deliberately deterministic:
//
//  1. Worker B (no faults) completes exactly 3 units, then crash-stops
//     (kill-worker-after-N-units).
//  2. The coordinator persists and is torn down mid-job; a second
//     incarnation recovers from the same state dir.
//  3. Worker A finishes the job through a chaos transport that drops
//     responses (forcing retries of possibly-merged completions),
//     duplicates deliveries, and injects delays — and the submitting
//     client runs through a duplicating transport of its own.
//
// After all that, the Report and the canonical checkpoint bytes must equal
// a single-process RunCampaign's, byte for byte.
func TestChaosBitIdentical(t *testing.T) {
	spec := testSpec()
	localRep, localBytes := localRun(t, spec)
	dir := t.TempDir()

	c1 := newTestCoordinator(t, CoordinatorOptions{StateDir: dir, UnitChunks: 2, LeaseTTL: time.Second})
	srv1 := httptest.NewServer(c1.Handler())
	st, err := c1.Submit(*spec)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Phase 1: worker B merges 3 units and dies.
	optsB := fastWorker("worker-b", srv1.URL)
	optsB.MaxUnits = 3
	wb := NewWorker(optsB)
	if err := wb.Run(ctx); err != nil {
		t.Fatalf("worker B: %v", err)
	}
	if wb.UnitsDone() != 3 {
		t.Fatalf("worker B settled %d units, want 3", wb.UnitsDone())
	}

	// Phase 2: torn coordinator restart. Persist, kill, recover.
	c1.SaveState()
	srv1.Close()
	c2 := newTestCoordinator(t, CoordinatorOptions{StateDir: dir, UnitChunks: 2, LeaseTTL: time.Second})
	srv2 := httptest.NewServer(c2.Handler())
	defer srv2.Close()
	st2, err := c2.Status(st.ID)
	if err != nil {
		t.Fatalf("restarted coordinator lost the job: %v", err)
	}
	if st2.DoneChunks != 6 || st2.State.Terminal() {
		t.Fatalf("restored status = %+v, want 6 done chunks, in flight", st2)
	}

	// Phase 3: worker A finishes the job through injected faults.
	faultyA := chaos.New(nil, chaos.Options{
		DropEvery:      5,
		DuplicateEvery: 3,
		DelayEvery:     4,
		Delay:          5 * time.Millisecond,
		PathPrefix:     "/v1/",
	})
	optsA := fastWorker("worker-a", srv2.URL)
	optsA.Parallel = 2
	optsA.Client = faultyA.Client()
	wa := NewWorker(optsA)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wa.Run(ctx) //nolint:errcheck
	}()

	faultyC := chaos.New(nil, chaos.Options{DuplicateEvery: 2, PathPrefix: "/v1/"})
	cl := NewClient(srv2.URL, faultyC.Client())
	cl.PollInterval = 10 * time.Millisecond
	rep, err := cl.RunCampaign(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	wg.Wait()

	if !reflect.DeepEqual(rep, localRep) {
		t.Fatal("chaos-run Report differs from local RunCampaign")
	}
	b, err := NewClient(srv2.URL, nil).CheckpointBytes(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(localBytes) {
		t.Fatal("chaos-run checkpoint bytes differ from local checkpoint file")
	}

	// The faults must actually have fired for this to prove anything.
	stats := faultyA.Stats()
	if stats.Drops == 0 || stats.Duplicates == 0 || stats.Delays == 0 {
		t.Fatalf("chaos schedule did not fire: %+v", stats)
	}
	if faultyC.Stats().Duplicates == 0 {
		t.Fatalf("client chaos schedule did not fire: %+v", faultyC.Stats())
	}
}

// TestClientSurvivesAmnesiacRestart pins the 404-resubmit path: when a
// coordinator is replaced by one with NO persisted state, a waiting client
// notices the unknown job and resubmits the spec — same hash, same job,
// same bytes — rather than failing or forking.
func TestClientSurvivesAmnesiacRestart(t *testing.T) {
	spec := testSpec()
	localRep, _ := localRun(t, spec)

	c1 := newTestCoordinator(t, CoordinatorOptions{UnitChunks: 4})
	srv1 := httptest.NewServer(c1.Handler())

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	cl := NewClient(srv1.URL, nil)
	cl.PollInterval = 10 * time.Millisecond
	cl.BackoffMin = 2 * time.Millisecond
	if _, err := cl.Submit(ctx, spec); err != nil {
		t.Fatal(err)
	}

	// Kill the coordinator before any work happens; bring up a fresh one
	// with no memory of the job.
	srv1.Close()
	c2 := newTestCoordinator(t, CoordinatorOptions{UnitChunks: 4})
	srv2 := httptest.NewServer(c2.Handler())
	defer srv2.Close()
	cl.SetBase(srv2.URL)

	w := NewWorker(fastWorker("w", srv2.URL))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.Run(ctx) //nolint:errcheck
	}()

	rep, err := cl.RunCampaign(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, localRep) {
		t.Fatal("post-amnesia Report differs from local RunCampaign")
	}
	cancel()
	wg.Wait()
}
