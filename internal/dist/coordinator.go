package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"xedsim/internal/checkpoint"
	"xedsim/internal/faultsim"
	"xedsim/internal/obs"
)

// Coordinator defaults.
const (
	DefaultQueueDepth      = 16
	DefaultLeaseTTL        = 15 * time.Second
	DefaultUnitChunks      = 64
	DefaultPersistInterval = 5 * time.Second
)

// Ledger framing on disk.
const (
	ledgerKind    = "dist-ledger"
	ledgerVersion = 1
	// ledgerHash is fixed: the ledger's compatibility is carried by
	// kind/version, and each job's own checkpoint is guarded by its
	// campaign config hash.
	ledgerHash = "dist-ledger"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull rejects a submission beyond the bounded queue depth
	// (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("dist: job queue full")
	// ErrDraining rejects work while the coordinator drains for shutdown
	// (HTTP 503 + Retry-After).
	ErrDraining = errors.New("dist: coordinator draining")
	// ErrUnknownJob reports a job ID the coordinator has no record of
	// (HTTP 404) — after a restart that lost an unpersisted job, clients
	// resubmit the spec (same ID, deterministic result).
	ErrUnknownJob = errors.New("dist: unknown job")
	// ErrNotDone reports a result request for an unfinished job (HTTP 409).
	ErrNotDone = errors.New("dist: job not done")
)

// CoordinatorOptions parameterises NewCoordinator.
type CoordinatorOptions struct {
	// StateDir, when non-empty, persists the job ledger and per-job
	// accumulators so a restarted coordinator resumes in-flight jobs. An
	// empty StateDir keeps everything in memory (tests, throwaway runs).
	StateDir string
	// QueueDepth bounds the jobs admitted but not yet terminal; 0 selects
	// DefaultQueueDepth. Beyond it, submissions get ErrQueueFull.
	QueueDepth int
	// LeaseTTL is how long a granted work unit stays reserved without a
	// heartbeat; 0 selects DefaultLeaseTTL. It is the re-dispatch latency
	// for a dead worker's units, and must exceed a unit's compute time
	// (heartbeats extend in-flight leases).
	LeaseTTL time.Duration
	// UnitChunks is the chunks-per-lease granularity; 0 selects
	// DefaultUnitChunks. Fixed per job at submission.
	UnitChunks int
	// PersistInterval paces the background persistence of dirty job
	// accumulators (Start); 0 selects DefaultPersistInterval.
	PersistInterval time.Duration
	// Metrics, when non-nil, publishes coordinator counters under
	// "dist.*" names.
	Metrics *obs.Registry
}

func (o CoordinatorOptions) normalize() CoordinatorOptions {
	if o.QueueDepth <= 0 {
		o.QueueDepth = DefaultQueueDepth
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = DefaultLeaseTTL
	}
	if o.UnitChunks <= 0 {
		o.UnitChunks = DefaultUnitChunks
	}
	if o.PersistInterval <= 0 {
		o.PersistInterval = DefaultPersistInterval
	}
	return o
}

// unit is one leasable work item: a contiguous chunk span of a job.
type unit struct {
	lo, hi   int
	merged   bool
	token    uint64    // current lease token; 0 = unleased
	deadline time.Time // lease expiry; zero when unleased
	retries  int       // times this unit was re-granted after expiry
}

// job is one campaign's coordinator-side state.
type job struct {
	id         string
	spec       JobSpec
	unitChunks int
	state      JobState
	errMsg     string
	merger     *faultsim.Merger
	units      []unit
	unmerged   int
	dirty      bool // merged progress not yet persisted
}

// ledgerEntry and ledgerSnapshot are the ledger checkpoint payload: enough
// to rebuild every job's identity and re-derive its unit layout; merged
// progress lives in each job's own campaign checkpoint.
type ledgerEntry struct {
	ID         string   `json:"id"`
	Spec       JobSpec  `json:"spec"`
	State      JobState `json:"state"`
	Error      string   `json:"error,omitempty"`
	UnitChunks int      `json:"unit_chunks"`
}

type ledgerSnapshot struct {
	Jobs []ledgerEntry `json:"jobs"`
}

// coordMetrics holds pre-resolved obs handles (nil-safe when unset).
type coordMetrics struct {
	jobsSubmitted   *obs.Counter
	jobsCompleted   *obs.Counter
	jobsFailed      *obs.Counter
	cacheHits       *obs.Counter
	jobsResumed     *obs.Counter
	queueDepth      *obs.Gauge
	leasesGranted   *obs.Counter
	leasesExpired   *obs.Counter
	leasesRetried   *obs.Counter
	merges          *obs.Counter
	mergesDuplicate *obs.Counter
	mergeMS         *obs.Histogram
	chunksMerged    *obs.Counter
	heartbeats      *obs.Counter
	heartbeatsLost  *obs.Counter
}

func newCoordMetrics(r *obs.Registry) coordMetrics {
	return coordMetrics{
		jobsSubmitted:   r.Counter("dist.jobs_submitted"),
		jobsCompleted:   r.Counter("dist.jobs_completed"),
		jobsFailed:      r.Counter("dist.jobs_failed"),
		cacheHits:       r.Counter("dist.jobs_cache_hits"),
		jobsResumed:     r.Counter("dist.jobs_resumed"),
		queueDepth:      r.Gauge("dist.queue_depth"),
		leasesGranted:   r.Counter("dist.leases_granted"),
		leasesExpired:   r.Counter("dist.leases_expired"),
		leasesRetried:   r.Counter("dist.leases_retried"),
		merges:          r.Counter("dist.merges"),
		mergesDuplicate: r.Counter("dist.merges_duplicate"),
		mergeMS:         r.Histogram("dist.merge_ms", []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 100}),
		chunksMerged:    r.Counter("dist.chunks_merged"),
		heartbeats:      r.Counter("dist.heartbeats"),
		heartbeatsLost:  r.Counter("dist.heartbeats_lost"),
	}
}

// Coordinator shards campaign jobs into leased work units, merges worker
// results idempotently, and persists enough state to survive restarts. All
// methods are safe for concurrent use.
type Coordinator struct {
	opts CoordinatorOptions
	now  func() time.Time // test hook; time.Now by default
	met  coordMetrics

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for fair dispatch scans
	token    uint64   // lease token allocator
	draining bool
}

// NewCoordinator builds a coordinator and, when opts.StateDir is set,
// recovers the job ledger from a previous incarnation: terminal jobs come
// back cache-servable, in-flight jobs resume from their last persisted
// accumulator with every unmerged unit grantable again. Progress merged
// after the last persist is recomputed by workers — determinism makes the
// recomputation bit-identical, so a torn restart never changes a result.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	c := &Coordinator{
		opts: opts.normalize(),
		now:  time.Now,
		jobs: make(map[string]*job),
		met:  newCoordMetrics(opts.Metrics),
	}
	if c.opts.StateDir != "" {
		if err := os.MkdirAll(c.opts.StateDir, 0o755); err != nil {
			return nil, fmt.Errorf("dist: state dir: %w", err)
		}
		if err := c.recover(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func (c *Coordinator) ledgerPath() string { return filepath.Join(c.opts.StateDir, "ledger.ckpt") }
func (c *Coordinator) jobPath(id string) string {
	return filepath.Join(c.opts.StateDir, "job-"+id+".ckpt")
}

// recover loads the ledger and rebuilds job state. Called from
// NewCoordinator before the coordinator is shared, so no locking.
func (c *Coordinator) recover() error {
	var led ledgerSnapshot
	err := checkpoint.Load(c.ledgerPath(), ledgerKind, ledgerVersion, ledgerHash, &led)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("dist: recovering ledger: %w", err)
	}
	for _, ent := range led.Jobs {
		j, err := c.buildJob(ent.Spec, ent.UnitChunks)
		if err != nil {
			// A ledger entry the current binary cannot rebuild (e.g. a
			// scheme vocabulary change) is dropped rather than wedging
			// every other job.
			continue
		}
		if j.id != ent.ID {
			continue // ledger/id mismatch; treat as corrupt entry
		}
		if err := j.merger.Load(c.jobPath(j.id)); err != nil {
			// Unreadable or mismatched accumulator: recompute from zero.
			j.dirty = false
		}
		// Re-derive unit merge state from the restored chunk bitmap.
		j.unmerged = 0
		for i := range j.units {
			j.units[i].merged = j.merger.SpanMerged(j.units[i].lo, j.units[i].hi)
			if !j.units[i].merged {
				j.unmerged++
			}
		}
		switch {
		case ent.State == JobFailed:
			j.state, j.errMsg = JobFailed, ent.Error
		case j.unmerged == 0:
			j.state = JobDone
		case ent.State == JobQueued:
			j.state = JobQueued
		default:
			j.state = JobRunning
		}
		c.jobs[j.id] = j
		c.order = append(c.order, j.id)
		if !j.state.Terminal() {
			c.met.jobsResumed.Inc()
		}
	}
	c.met.queueDepth.Set(int64(c.activeLocked()))
	return nil
}

// buildJob constructs a job (merger + unit layout) from a spec.
func (c *Coordinator) buildJob(spec JobSpec, unitChunks int) (*job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	schemes, err := spec.ResolveSchemes()
	if err != nil {
		return nil, err
	}
	m, err := faultsim.NewMerger(spec.Config, schemes, spec.CampaignOptions())
	if err != nil {
		return nil, err
	}
	if unitChunks <= 0 {
		unitChunks = c.opts.UnitChunks
	}
	j := &job{
		id:         m.Hash(),
		spec:       spec,
		unitChunks: unitChunks,
		state:      JobQueued,
		merger:     m,
	}
	for lo := 0; lo < m.NumChunks(); lo += unitChunks {
		hi := lo + unitChunks
		if hi > m.NumChunks() {
			hi = m.NumChunks()
		}
		j.units = append(j.units, unit{lo: lo, hi: hi})
	}
	j.unmerged = len(j.units)
	return j, nil
}

// activeLocked counts non-terminal jobs (the bounded-queue occupancy).
func (c *Coordinator) activeLocked() int {
	n := 0
	for _, j := range c.jobs {
		if !j.state.Terminal() {
			n++
		}
	}
	return n
}

// Submit admits a campaign job. Submissions are idempotent by config hash:
// resubmitting a known job returns its current status — and a completed
// job's status immediately, marked Cached, without scheduling any work
// (the completed-result cache). New jobs beyond the queue depth are
// rejected with ErrQueueFull; a draining coordinator rejects all
// submissions with ErrDraining.
func (c *Coordinator) Submit(spec JobSpec) (JobStatus, error) {
	j, err := c.buildJob(spec, 0)
	if err != nil {
		return JobStatus{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if existing, ok := c.jobs[j.id]; ok {
		st := c.statusLocked(existing)
		if existing.state == JobDone {
			st.Cached = true
			c.met.cacheHits.Inc()
		}
		return st, nil
	}
	if c.draining {
		return JobStatus{}, ErrDraining
	}
	if c.activeLocked() >= c.opts.QueueDepth {
		return JobStatus{}, ErrQueueFull
	}
	c.jobs[j.id] = j
	c.order = append(c.order, j.id)
	c.met.jobsSubmitted.Inc()
	c.met.queueDepth.Set(int64(c.activeLocked()))
	c.persistLedgerLocked()
	return c.statusLocked(j), nil
}

// Lease grants the next available work unit: scanning jobs in submission
// order, a unit is grantable when unmerged and either never leased or past
// its deadline (straggler/death re-dispatch). Returns nil when no work is
// available.
func (c *Coordinator) Lease(workerID string) (*Lease, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return nil, ErrDraining
	}
	now := c.now()
	for _, id := range c.order {
		j := c.jobs[id]
		if j.state.Terminal() {
			continue
		}
		for i := range j.units {
			u := &j.units[i]
			if u.merged {
				continue
			}
			if u.token != 0 {
				if now.Before(u.deadline) {
					continue
				}
				// Expired lease: reclaim and re-dispatch.
				c.met.leasesExpired.Inc()
				c.met.leasesRetried.Inc()
				u.retries++
			}
			c.token++
			u.token = c.token
			u.deadline = now.Add(c.opts.LeaseTTL)
			if j.state == JobQueued {
				j.state = JobRunning
				c.persistLedgerLocked()
			}
			c.met.leasesGranted.Inc()
			return &Lease{
				JobID:     j.id,
				Unit:      i,
				Lo:        u.lo,
				Hi:        u.hi,
				Token:     u.token,
				TTLMillis: c.opts.LeaseTTL.Milliseconds(),
				Spec:      j.spec,
			}, nil
		}
	}
	return nil, nil
}

// Complete merges one finished unit. The merge is at-most-once per unit:
// duplicate deliveries — a retried POST, a chaos-duplicated request, or
// two workers racing on a re-dispatched unit — are acknowledged as
// duplicates and dropped. The lease token is deliberately advisory here:
// any correct result for the unit is acceptable (chunk determinism
// guarantees every attempt computes identical tallies), so an expired
// lease's late result still merges if it arrives first.
func (c *Coordinator) Complete(req CompleteRequest) (CompleteResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[req.JobID]
	if !ok {
		return CompleteResponse{}, ErrUnknownJob
	}
	if req.Unit < 0 || req.Unit >= len(j.units) {
		return CompleteResponse{}, fmt.Errorf("dist: job %.12s has no unit %d", req.JobID, req.Unit)
	}
	u := &j.units[req.Unit]
	if j.state.Terminal() || u.merged {
		c.met.mergesDuplicate.Inc()
		return CompleteResponse{Duplicate: true, JobDone: j.state.Terminal()}, nil
	}
	if req.Result.Lo != u.lo || req.Result.Hi != u.hi {
		return CompleteResponse{}, fmt.Errorf("dist: unit %d result spans [%d, %d), expected [%d, %d)",
			req.Unit, req.Result.Lo, req.Result.Hi, u.lo, u.hi)
	}
	start := c.now()
	err := j.merger.Merge(&req.Result)
	switch {
	case err == nil:
	case errors.Is(err, faultsim.ErrDuplicateChunks):
		c.met.mergesDuplicate.Inc()
		u.merged, u.token = true, 0
		return CompleteResponse{Duplicate: true}, nil
	case errors.Is(err, faultsim.ErrErrorBudgetExceeded):
		// The merge folded before tripping the aggregated budget; the job
		// is failed, its partial state persisted for post-mortems.
		u.merged, u.token = true, 0
		j.unmerged--
		c.failLocked(j, err.Error())
		return CompleteResponse{Merged: true, JobDone: true}, nil
	default:
		return CompleteResponse{}, err
	}
	c.met.merges.Inc()
	c.met.chunksMerged.Add(uint64(u.hi - u.lo))
	c.met.mergeMS.Observe(float64(c.now().Sub(start).Microseconds()) / 1e3)
	u.merged, u.token = true, 0
	j.unmerged--
	j.dirty = true
	if j.unmerged == 0 {
		c.finishLocked(j)
	}
	return CompleteResponse{Merged: true, JobDone: j.state.Terminal()}, nil
}

// Heartbeat extends the quoted leases that are still held under their
// token. A lease that expired and was re-granted elsewhere is reported
// lost, telling the straggler its unit may be recomputed by someone else
// (its eventual result is still welcome — first merge wins).
func (c *Coordinator) Heartbeat(req HeartbeatRequest) HeartbeatResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.met.heartbeats.Inc()
	now := c.now()
	var resp HeartbeatResponse
	for _, ref := range req.Leases {
		j, ok := c.jobs[ref.JobID]
		if ok && !j.state.Terminal() && ref.Unit >= 0 && ref.Unit < len(j.units) {
			u := &j.units[ref.Unit]
			if !u.merged && u.token == ref.Token {
				u.deadline = now.Add(c.opts.LeaseTTL)
				resp.Extended++
				continue
			}
		}
		resp.Lost++
	}
	c.met.heartbeatsLost.Add(uint64(resp.Lost))
	return resp
}

// finishLocked transitions a fully merged job to done and persists it.
func (c *Coordinator) finishLocked(j *job) {
	j.state = JobDone
	j.dirty = false
	c.met.jobsCompleted.Inc()
	c.met.queueDepth.Set(int64(c.activeLocked()))
	c.persistJobLocked(j)
	c.persistLedgerLocked()
}

// failLocked transitions a job to failed and persists it.
func (c *Coordinator) failLocked(j *job, msg string) {
	j.state = JobFailed
	j.errMsg = msg
	j.dirty = false
	c.met.jobsFailed.Inc()
	c.met.queueDepth.Set(int64(c.activeLocked()))
	c.persistJobLocked(j)
	c.persistLedgerLocked()
}

// persistLedgerLocked writes the ledger checkpoint (no-op without a
// StateDir). Persistence failures are deliberately non-fatal to the
// serving path: the coordinator keeps working from memory and the next
// persistence point retries.
func (c *Coordinator) persistLedgerLocked() {
	if c.opts.StateDir == "" {
		return
	}
	led := ledgerSnapshot{}
	for _, id := range c.order {
		j := c.jobs[id]
		led.Jobs = append(led.Jobs, ledgerEntry{
			ID: j.id, Spec: j.spec, State: j.state, Error: j.errMsg, UnitChunks: j.unitChunks,
		})
	}
	checkpoint.Save(c.ledgerPath(), ledgerKind, ledgerVersion, ledgerHash, &led) //nolint:errcheck
}

// persistJobLocked writes one job's accumulator checkpoint.
func (c *Coordinator) persistJobLocked(j *job) {
	if c.opts.StateDir == "" {
		return
	}
	if err := j.merger.Save(c.jobPath(j.id)); err == nil {
		j.dirty = false
	}
}

// statusLocked builds the wire status for a job.
func (c *Coordinator) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID:          j.id,
		State:       j.state,
		DoneChunks:  j.merger.DoneChunks(),
		TotalChunks: j.merger.NumChunks(),
		DoneTrials:  j.merger.DoneTrials(),
		Trials:      j.spec.Trials,
		TrialErrors: j.merger.TrialErrorCount(),
		Error:       j.errMsg,
	}
	rep := j.merger.Report()
	for i := range rep.Results {
		r := &rep.Results[i]
		lo, hi := faultsim.WilsonInterval(r.Failures, st.DoneTrials)
		st.Schemes = append(st.Schemes, SchemeProgress{
			Name: r.SchemeName, Failures: r.Failures, WilsonLo: lo, WilsonHi: hi,
		})
	}
	return st
}

// Status returns a job's current status.
func (c *Coordinator) Status(id string) (JobStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	return c.statusLocked(j), nil
}

// Result returns a completed job's Report.
func (c *Coordinator) Result(id string) (*faultsim.Report, error) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return nil, ErrUnknownJob
	}
	if j.state != JobDone {
		return nil, fmt.Errorf("%w: job %.12s is %s", ErrNotDone, id, j.state)
	}
	return j.merger.Report(), nil
}

// CheckpointBytes returns a completed job's canonical snapshot — the bytes
// a local RunCampaign with the same spec would leave in its checkpoint
// file, byte for byte.
func (c *Coordinator) CheckpointBytes(id string) ([]byte, error) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return nil, ErrUnknownJob
	}
	if j.state != JobDone {
		return nil, fmt.Errorf("%w: job %.12s is %s", ErrNotDone, id, j.state)
	}
	return j.merger.SnapshotBytes()
}

// Drain flips the coordinator into shutdown mode: /readyz fails, new
// submissions and lease requests are refused (workers back off and retry
// against the restarted coordinator), and all state is persisted.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	c.SaveState()
}

// Ready implements the /readyz check: not ready while draining.
func (c *Coordinator) Ready() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return ErrDraining
	}
	return nil
}

// SaveState persists the ledger and every job with unpersisted progress.
func (c *Coordinator) SaveState() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.order {
		if j := c.jobs[id]; j.dirty {
			c.persistJobLocked(j)
		}
	}
	c.persistLedgerLocked()
}

// Start runs the background housekeeping loop until ctx is cancelled:
// expiring stale leases (so the expiry metric ticks even with no lease
// traffic) and persisting dirty accumulators every PersistInterval, which
// bounds how much a torn restart has to recompute.
func (c *Coordinator) Start(ctx context.Context) {
	go func() {
		tick := time.NewTicker(c.opts.PersistInterval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				c.sweep()
				c.SaveState()
			}
		}
	}()
}

// sweep reclaims expired leases outside the lease path.
func (c *Coordinator) sweep() {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	for _, j := range c.jobs {
		if j.state.Terminal() {
			continue
		}
		for i := range j.units {
			u := &j.units[i]
			if !u.merged && u.token != 0 && !now.Before(u.deadline) {
				u.token = 0
				u.deadline = time.Time{}
				c.met.leasesExpired.Inc()
			}
		}
	}
}

// Handler returns the coordinator's HTTP surface: the job and worker API
// under /v1/, plus /metrics, /healthz, /readyz and pprof from
// internal/obs.
func (c *Coordinator) Handler() http.Handler {
	mux := obs.NewMux(c.opts.Metrics, c.Ready)

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := decodeJSON(w, r, &spec); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		st, err := c.Submit(spec)
		switch {
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(c.opts.LeaseTTL)))
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, err)
		case err != nil:
			writeError(w, http.StatusBadRequest, err)
		default:
			writeJSON(w, http.StatusAccepted, st)
		}
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := c.Status(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		rep, err := c.Result(r.PathValue("id"))
		if err != nil {
			writeError(w, resultErrCode(err), err)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	})

	mux.HandleFunc("GET /v1/jobs/{id}/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		b, err := c.CheckpointBytes(r.PathValue("id"))
		if err != nil {
			writeError(w, resultErrCode(err), err)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(b) //nolint:errcheck // best-effort over HTTP
	})

	mux.HandleFunc("POST /v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if err := decodeJSON(w, r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		lease, err := c.Lease(req.WorkerID)
		switch {
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, err)
		case err != nil:
			writeError(w, http.StatusInternalServerError, err)
		case lease == nil:
			w.WriteHeader(http.StatusNoContent)
		default:
			writeJSON(w, http.StatusOK, lease)
		}
	})

	mux.HandleFunc("POST /v1/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if err := decodeJSON(w, r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		resp, err := c.Complete(req)
		switch {
		case errors.Is(err, ErrUnknownJob):
			writeError(w, http.StatusNotFound, err)
		case err != nil:
			writeError(w, http.StatusBadRequest, err)
		default:
			writeJSON(w, http.StatusOK, resp)
		}
	})

	mux.HandleFunc("POST /v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if err := decodeJSON(w, r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, c.Heartbeat(req))
	})

	return mux
}

// retryAfterSeconds suggests a backoff roughly one lease cycle long.
func retryAfterSeconds(ttl time.Duration) int {
	s := int(ttl / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

func resultErrCode(err error) int {
	switch {
	case errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, ErrNotDone):
		return http.StatusConflict
	}
	return http.StatusInternalServerError
}

// maxBodyBytes bounds request payloads: a CompleteRequest carrying a full
// trial-error list is the largest legitimate message.
const maxBodyBytes = 16 << 20

func decodeJSON(w http.ResponseWriter, r *http.Request, into any) error {
	defer r.Body.Close() //nolint:errcheck
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("dist: decoding request: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // best-effort over HTTP
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}
