// Package dist turns the chunked Monte-Carlo campaign engine into a
// fault-tolerant distributed service: a Coordinator that accepts campaign
// jobs over HTTP, shards their (seed, chunk) ranges into leased work
// units, and merges worker results into campaign state bit-identical to a
// local faultsim.RunCampaign — and a Worker that leases units, evaluates
// them with faultsim.ChunkRunner and reports back with retry/backoff.
//
// Robustness is the design center, not an add-on. Every mechanism is built
// so that no failure can change the final bytes of a job's result:
//
//   - Determinism does the heavy lifting. A chunk's trial stream is a pure
//     function of (config, seed, chunk index), so recomputing a chunk —
//     after a lease expiry, a worker death, or a torn coordinator restart —
//     reproduces exactly the tallies the lost attempt would have reported.
//   - Leases bound the blast radius of a dead or straggling worker: an
//     expired lease makes its unit grantable again on the next request.
//   - Merging is idempotent by chunk bitmap: duplicated deliveries (client
//     retries, chaos-injected duplicates, two workers racing on a
//     re-dispatched unit) are acknowledged and dropped, never
//     double-counted.
//   - The job ledger and per-job accumulators persist through
//     internal/checkpoint (atomic, fsynced, config-hash-guarded), so a
//     restarted coordinator resumes in-flight jobs; anything merged after
//     the last save is simply recomputed.
//   - The job queue is bounded: beyond the configured depth, submissions
//     get 429 + Retry-After instead of unbounded memory growth.
//
// The wire protocol is plain JSON over stdlib HTTP:
//
//	POST /v1/jobs           submit a JobSpec           → JobStatus (202) | 429
//	GET  /v1/jobs/{id}      poll                       → JobStatus
//	GET  /v1/jobs/{id}/result      completed Report    → faultsim.Report JSON
//	GET  /v1/jobs/{id}/checkpoint  canonical snapshot  → checkpoint envelope bytes
//	POST /v1/lease          worker asks for a unit     → Lease | 204
//	POST /v1/complete       worker returns a unit      → CompleteResponse
//	POST /v1/heartbeat      worker extends its leases  → HeartbeatResponse
//
// plus /metrics, /healthz and /readyz from internal/obs.
package dist

import (
	"fmt"
	"time"

	"xedsim/internal/faultsim"
)

// JobSpec is a campaign submission: everything that shapes the trial
// streams and the meaning of the result. Its identity — and the completed-
// result cache key — is faultsim.CampaignHash over the normalized spec,
// the same hash that guards checkpoint compatibility.
type JobSpec struct {
	// Config is the simulated system and fault environment.
	Config faultsim.Config `json:"config"`
	// Schemes names the ECC organisations to evaluate (faultsim.SchemeNames
	// vocabulary), in result order.
	Schemes []string `json:"schemes"`
	// Trials and Seed shape the Monte-Carlo campaign.
	Trials int    `json:"trials"`
	Seed   uint64 `json:"seed"`
	// ChunkSize is the trials-per-chunk granularity; 0 selects
	// faultsim.DefaultChunkSize. Part of the job identity (it shapes the
	// substreams).
	ChunkSize int `json:"chunk_size,omitempty"`
	// Engine selects the worker-side evaluation engine. NOT part of the
	// job identity: results are bit-identical across engines.
	Engine string `json:"engine,omitempty"`
	// Gen selects the trial-generation mode ("scalar" or "batch"). Part of
	// the job identity — the modes draw different (exactly distributed)
	// streams — via faultsim.CampaignHash.
	Gen string `json:"gen,omitempty"`
	// ErrorBudget bounds voided (panicking) trials aggregated across all
	// workers; 0 selects faultsim.DefaultErrorBudget.
	ErrorBudget int `json:"error_budget,omitempty"`
}

// CampaignOptions maps the spec onto the engine's option struct.
func (s *JobSpec) CampaignOptions() faultsim.CampaignOptions {
	return faultsim.CampaignOptions{
		Trials:      s.Trials,
		Seed:        s.Seed,
		ChunkSize:   s.ChunkSize,
		Engine:      faultsim.Engine(s.Engine),
		Gen:         faultsim.Generator(s.Gen),
		ErrorBudget: s.ErrorBudget,
	}
}

// ResolveSchemes instantiates the named schemes.
func (s *JobSpec) ResolveSchemes() ([]faultsim.Scheme, error) {
	return faultsim.SchemesByName(s.Schemes...)
}

// Validate rejects specs the engine would reject, with dist-flavoured
// errors, before any state is allocated for them.
func (s *JobSpec) Validate() error {
	if s.Trials <= 0 {
		return fmt.Errorf("dist: non-positive trial count %d", s.Trials)
	}
	if len(s.Schemes) == 0 {
		return fmt.Errorf("dist: no schemes named")
	}
	if _, err := faultsim.ParseEngine(s.Engine); err != nil {
		return err
	}
	if _, err := faultsim.ParseGenerator(s.Gen); err != nil {
		return err
	}
	if _, err := s.ResolveSchemes(); err != nil {
		return err
	}
	return s.Config.Validate()
}

// JobState is the job lifecycle: queued → running → done | failed.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool { return s == JobDone || s == JobFailed }

// SchemeProgress is one scheme's live tally in a JobStatus, with the 95%
// Wilson interval on its failure probability — honest error bars for a
// campaign still in flight.
type SchemeProgress struct {
	Name     string  `json:"name"`
	Failures uint64  `json:"failures"`
	WilsonLo float64 `json:"wilson_lo"`
	WilsonHi float64 `json:"wilson_hi"`
}

// JobStatus is the poll response for one job.
type JobStatus struct {
	ID          string           `json:"id"`
	State       JobState         `json:"state"`
	DoneChunks  int              `json:"done_chunks"`
	TotalChunks int              `json:"total_chunks"`
	DoneTrials  uint64           `json:"done_trials"`
	Trials      int              `json:"trials"`
	TrialErrors int              `json:"trial_errors"`
	// Cached reports that the submission hit the completed-result cache:
	// an identical campaign (same config hash) had already run to
	// completion, so no new work was scheduled.
	Cached bool `json:"cached,omitempty"`
	// Error carries the failure reason when State is JobFailed.
	Error   string           `json:"error,omitempty"`
	Schemes []SchemeProgress `json:"schemes,omitempty"`
}

// LeaseRequest asks the coordinator for a work unit.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
}

// Lease grants a work unit: a contiguous chunk span of one job, held until
// Deadline. Workers extend the deadline with heartbeats; a lease that
// expires un-completed makes the unit grantable again (straggler
// re-dispatch). The full JobSpec rides along so workers are stateless —
// they cache a ChunkRunner per job ID but can always rebuild it.
type Lease struct {
	JobID string `json:"job_id"`
	// Unit indexes the work unit within the job; Lo/Hi is its chunk span.
	Unit int `json:"unit"`
	Lo   int `json:"lo"`
	Hi   int `json:"hi"`
	// Token identifies this grant; completions and heartbeats quote it.
	Token uint64 `json:"token"`
	// TTLMillis is the lease duration from grant (a duration, not a
	// wall-clock deadline, so worker and coordinator clocks need not
	// agree).
	TTLMillis int64 `json:"ttl_ms"`
	Spec      JobSpec `json:"spec"`
}

// TTL returns the lease duration.
func (l *Lease) TTL() time.Duration { return time.Duration(l.TTLMillis) * time.Millisecond }

// CompleteRequest returns a finished unit's tallies.
type CompleteRequest struct {
	WorkerID string               `json:"worker_id"`
	JobID    string               `json:"job_id"`
	Unit     int                  `json:"unit"`
	Token    uint64               `json:"token"`
	Result   faultsim.ChunkResult `json:"result"`
}

// CompleteResponse acknowledges a unit completion. Duplicate deliveries
// are acknowledged with Merged=false, Duplicate=true — the worker's unit
// is settled either way.
type CompleteResponse struct {
	Merged    bool `json:"merged"`
	Duplicate bool `json:"duplicate,omitempty"`
	// JobDone hints that the job reached a terminal state.
	JobDone bool `json:"job_done,omitempty"`
}

// LeaseRef identifies one held lease in a heartbeat.
type LeaseRef struct {
	JobID string `json:"job_id"`
	Unit  int    `json:"unit"`
	Token uint64 `json:"token"`
}

// HeartbeatRequest extends the worker's live leases.
type HeartbeatRequest struct {
	WorkerID string     `json:"worker_id"`
	Leases   []LeaseRef `json:"leases"`
}

// HeartbeatResponse reports how many of the quoted leases were extended; a
// lease that expired and was re-granted elsewhere is not (its count is in
// Lost), telling the straggler its result may be redundant.
type HeartbeatResponse struct {
	Extended int `json:"extended"`
	Lost     int `json:"lost,omitempty"`
}

// errorBody is the JSON error payload non-2xx responses carry.
type errorBody struct {
	Error string `json:"error"`
}
