package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"xedsim/internal/checkpoint"
	"xedsim/internal/dram"
	"xedsim/internal/ecc"
	"xedsim/internal/faultsim"
	"xedsim/internal/infer"
	"xedsim/internal/obs"
	"xedsim/internal/simrand"
)

// Fleet engine defaults.
const (
	// DefaultChunkSize is the DIMMs-per-chunk scheduling granularity.
	// Smaller than the campaign engine's 4096: a DIMM with faults costs
	// more than a campaign trial (telemetry, retirement), and small fleets
	// (10k DIMMs) still want enough chunks to spread over workers.
	DefaultChunkSize = 1024
	// DefaultCheckpointInterval spaces periodic snapshots.
	DefaultCheckpointInterval = 30 * time.Second
	// ArrivalBins sizes the per-DIMM fault-arrival histogram: bins 0..7
	// count DIMMs with exactly that many fault events over the horizon,
	// the last bin collects 8+.
	ArrivalBins = 9
)

// fleetCheckpointKind frames fleet snapshots on disk.
const (
	fleetCheckpointKind    = "fleet-campaign"
	fleetCheckpointVersion = 1
)

// Options parameterises Run.
type Options struct {
	// Seed roots all fleet randomness; DIMM d's fault history is a pure
	// function of (Config, Seed, ChunkSize, d).
	Seed uint64
	// Workers is the goroutine count; <= 0 selects GOMAXPROCS.
	Workers int
	// ChunkSize is the DIMMs-per-chunk scheduling granularity; 0 selects
	// DefaultChunkSize. Results are bit-identical for a fixed (Config,
	// Seed, ChunkSize) regardless of Workers.
	ChunkSize int
	// CheckpointPath enables periodic atomic snapshots when non-empty.
	CheckpointPath string
	// CheckpointInterval spaces periodic snapshots; 0 selects
	// DefaultCheckpointInterval.
	CheckpointInterval time.Duration
	// Resume loads CheckpointPath before starting and ages only the
	// chunks it does not cover. A missing file starts fresh; a snapshot
	// from any different configuration is refused.
	Resume bool
	// OnChunk, when non-nil, observes progress after each chunk merge
	// (and once at startup when resuming). Called from worker
	// goroutines, serialised.
	OnChunk func(doneChunks, totalChunks int)
	// Metrics, when non-nil, publishes live fleet counters under
	// "fleet.*" names.
	Metrics *obs.Registry
	// View, when non-nil, is bound to the running engine so the /edac
	// HTTP view serves live mid-run counter snapshots.
	View *View
}

// MCCounters is one simulated memory controller's EDAC counter block, in
// the exact shape of /sys/devices/system/edac/mc/mc<N>: correctable errors
// with and without source information, and detected uncorrectable errors
// likewise. Counters compose by field-wise addition.
type MCCounters struct {
	CE       uint64 `json:"ce_count"`
	CENoInfo uint64 `json:"ce_noinfo_count"`
	UE       uint64 `json:"ue_count"`
	UENoInfo uint64 `json:"ue_noinfo_count"`
}

func (m *MCCounters) add(o *MCCounters) {
	m.CE += o.CE
	m.CENoInfo += o.CENoInfo
	m.UE += o.UE
	m.UENoInfo += o.UENoInfo
}

// Tally is the fleet's integer accumulator: the unit of chunk merging and
// of checkpoint payloads. Tallies compose by field-wise addition, which is
// what makes any partition of the fleet's chunks across workers merge back
// to bit-identical Summaries.
type Tally struct {
	// DIMMs is the number of DIMMs aged.
	DIMMs uint64 `json:"dimms"`
	// Faults counts fault-arrival events (a multi-rank event counts
	// once, not once per expanded rank record).
	Faults uint64 `json:"faults"`
	// Failed / DUEs / SDCs classify the DIMMs whose protection scheme
	// failed within the horizon.
	Failed uint64 `json:"failed"`
	DUEs   uint64 `json:"dues"`
	SDCs   uint64 `json:"sdcs"`
	// CEs / CENoInfo count scrub-pass correctable-error reports;
	// UEs / UENoInfo count detected uncorrectable errors. NoInfo books
	// whole-chip damage, which carries no useful source address. SDC
	// failures appear in no UE counter — silent corruption is, by
	// definition, invisible to the monitor.
	CEs      uint64 `json:"ces"`
	CENoInfo uint64 `json:"ce_noinfo"`
	UEs      uint64 `json:"ues"`
	UENoInfo uint64 `json:"ue_noinfo"`
	// RetiredRows counts retirement-policy actions (capacity burned).
	RetiredRows uint64 `json:"retired_rows"`
	// Arrivals histograms per-DIMM fault-event counts (see ArrivalBins).
	Arrivals [ArrivalBins]uint64 `json:"arrivals"`
	// FailedByYear buckets first failures by year of onset
	// (non-cumulative; Summary exposes the cumulative view).
	FailedByYear []uint64 `json:"failed_by_year"`
}

func (t *Tally) add(o *Tally) {
	t.DIMMs += o.DIMMs
	t.Faults += o.Faults
	t.Failed += o.Failed
	t.DUEs += o.DUEs
	t.SDCs += o.SDCs
	t.CEs += o.CEs
	t.CENoInfo += o.CENoInfo
	t.UEs += o.UEs
	t.UENoInfo += o.UENoInfo
	t.RetiredRows += o.RetiredRows
	for i := range t.Arrivals {
		t.Arrivals[i] += o.Arrivals[i]
	}
	for y := range t.FailedByYear {
		t.FailedByYear[y] += o.FailedByYear[y]
	}
}

// Summary is the outcome of one fleet run: pure integer telemetry plus the
// configuration that produced it. Two runs with the same (Config, Seed,
// ChunkSize) produce identical Summaries whatever the worker count and
// whether or not they were interrupted and resumed.
type Summary struct {
	Config    Config `json:"config"`
	Seed      uint64 `json:"seed"`
	ChunkSize int    `json:"chunk_size"`
	Years     int    `json:"years"`
	// Complete is false when the run was cancelled mid-fleet; Tally then
	// covers only the merged chunks.
	Complete bool         `json:"complete"`
	Tally    Tally        `json:"tally"`
	MCs      []MCCounters `json:"mcs"`
}

// FailedFraction is the per-DIMM failure probability over the horizon.
func (s *Summary) FailedFraction() float64 {
	if s.Tally.DIMMs == 0 {
		return 0
	}
	return float64(s.Tally.Failed) / float64(s.Tally.DIMMs)
}

// Nines is the fleet's DIMM-survival nines over the horizon:
// -log10(failed fraction), +Inf when nothing failed.
func (s *Summary) Nines() float64 {
	f := s.FailedFraction()
	if f <= 0 {
		return math.Inf(1)
	}
	return -math.Log10(f)
}

// SwapCostUSD prices the horizon's DIMM replacements.
func (s *Summary) SwapCostUSD() float64 {
	return float64(s.Tally.Failed) * s.Config.CostPerSwapUSD
}

// MachineYears is the total simulated DIMM-time.
func (s *Summary) MachineYears() float64 {
	return float64(s.Tally.DIMMs) * s.Config.HorizonHours / faultsim.HoursPerYear
}

// CumulativeFailedByYear returns failures-by-end-of-year (the Figure 1
// presentation of Tally.FailedByYear's per-year buckets).
func (s *Summary) CumulativeFailedByYear() []uint64 {
	out := make([]uint64, len(s.Tally.FailedByYear))
	var run uint64
	for y, n := range s.Tally.FailedByYear {
		run += n
		out[y] = run
	}
	return out
}

// fleetSnapshot is the checkpoint payload: completed-chunk bitmap plus the
// accumulated tallies and per-MC counters.
type fleetSnapshot struct {
	DIMMs      int          `json:"dimms"`
	Seed       uint64       `json:"seed"`
	ChunkSize  int          `json:"chunk_size"`
	Years      int          `json:"years"`
	DoneChunks []uint64     `json:"done_chunks"` // bitmap, chunk c at word c/64 bit c%64
	Complete   bool         `json:"complete"`
	Tally      Tally        `json:"tally"`
	MCs        []MCCounters `json:"mcs"`
}

// fleetHashInput is what the checkpoint config hash covers: everything
// that shapes the fault streams and the meaning of the accumulators.
type fleetHashInput struct {
	Config    Config `json:"config"`
	Seed      uint64 `json:"seed"`
	ChunkSize int    `json:"chunk_size"`
}

// fleetEngine is the shared state of one Run invocation.
type fleetEngine struct {
	cfg     Config
	opts    Options
	years   int
	nChunks int
	hash    string

	nextChunk atomic.Int64

	mu         sync.Mutex
	doneBits   []uint64
	doneChunks int
	tally      Tally
	mcs        []MCCounters
	failed     error // first fatal engine error (checkpoint I/O)
	lastSave   time.Time

	onChunkMu sync.Mutex
	cancel    context.CancelFunc

	met fleetMetrics
}

// fleetMetrics holds pre-resolved obs handles; every field is nil (and
// every update a no-op) when Options.Metrics is unset.
type fleetMetrics struct {
	dimmsTotal  *obs.Gauge
	dimmsDone   *obs.Counter
	chunksDone  *obs.Counter
	chunksTotal *obs.Gauge
	failed      *obs.Counter
	ces         *obs.Counter
	ceNoInfo    *obs.Counter
	ues         *obs.Counter
	ueNoInfo    *obs.Counter
	retired     *obs.Counter
	ckptSaves   *obs.Counter
	ckptSaveMS  *obs.Histogram
}

func newFleetMetrics(r *obs.Registry) fleetMetrics {
	return fleetMetrics{
		dimmsTotal:  r.Gauge("fleet.dimms_total"),
		dimmsDone:   r.Counter("fleet.dimms_done"),
		chunksDone:  r.Counter("fleet.chunks_done"),
		chunksTotal: r.Gauge("fleet.chunks_total"),
		failed:      r.Counter("fleet.dimms_failed"),
		ces:         r.Counter("fleet.ce_count"),
		ceNoInfo:    r.Counter("fleet.ce_noinfo_count"),
		ues:         r.Counter("fleet.ue_count"),
		ueNoInfo:    r.Counter("fleet.ue_noinfo_count"),
		retired:     r.Counter("fleet.retired_rows"),
		ckptSaves:   r.Counter("fleet.checkpoint.saves"),
		ckptSaveMS:  r.Histogram("fleet.checkpoint.save_ms", []float64{1, 2, 5, 10, 25, 50, 100, 250, 1000}),
	}
}

// Run ages the configured fleet. It honours ctx cancellation by draining
// workers at chunk boundaries and returning the partial Summary alongside
// ctx's error; with CheckpointPath set it also snapshots progress
// periodically and on cancellation, and Resume picks a fleet back up from
// such a snapshot. Completed runs return a Summary covering exactly
// cfg.DIMMs DIMMs and a nil error.
func Run(ctx context.Context, cfg Config, opts Options) (*Summary, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.ChunkSize <= 0 {
		opts.ChunkSize = DefaultChunkSize
	}
	if opts.CheckpointInterval <= 0 {
		opts.CheckpointInterval = DefaultCheckpointInterval
	}
	e := &fleetEngine{
		cfg:     cfg,
		opts:    opts,
		years:   cfg.Years(),
		nChunks: (cfg.DIMMs + opts.ChunkSize - 1) / opts.ChunkSize,
	}
	if opts.CheckpointPath != "" {
		var err error
		e.hash, err = checkpoint.Hash(fleetHashInput{Config: cfg, Seed: opts.Seed, ChunkSize: opts.ChunkSize})
		if err != nil {
			return nil, err
		}
	}
	e.doneBits = make([]uint64, (e.nChunks+63)/64)
	e.tally.FailedByYear = make([]uint64, e.years)
	e.mcs = make([]MCCounters, cfg.MCs())
	if opts.Resume && opts.CheckpointPath != "" {
		if err := e.loadSnapshot(); err != nil {
			return nil, err
		}
	}
	e.met = newFleetMetrics(opts.Metrics)
	e.met.dimmsTotal.Set(int64(cfg.DIMMs))
	e.met.chunksTotal.Set(int64(e.nChunks))
	if e.doneChunks > 0 {
		e.met.chunksDone.Add(uint64(e.doneChunks))
		e.met.dimmsDone.Add(e.tally.DIMMs)
		e.met.failed.Add(e.tally.Failed)
		e.met.ces.Add(e.tally.CEs)
		e.met.ceNoInfo.Add(e.tally.CENoInfo)
		e.met.ues.Add(e.tally.UEs)
		e.met.ueNoInfo.Add(e.tally.UENoInfo)
		e.met.retired.Add(e.tally.RetiredRows)
	}
	if opts.View != nil {
		opts.View.bind(e.edacSnapshot)
	}
	e.lastSave = time.Now()
	if opts.OnChunk != nil && e.doneChunks > 0 {
		opts.OnChunk(e.doneChunks, e.nChunks)
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > e.nChunks {
		workers = e.nChunks
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	e.cancel = cancel
	var wg sync.WaitGroup
	var workerErr atomic.Value
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, err := newFleetWorker(&e.cfg, e.opts.Seed, e.years)
			if err != nil {
				workerErr.Store(err)
				cancel()
				return
			}
			e.worker(wctx, w)
		}()
	}
	wg.Wait()

	e.mu.Lock()
	defer e.mu.Unlock()
	sum := e.summaryLocked()
	runErr := e.failed
	if runErr == nil {
		if err, ok := workerErr.Load().(error); ok {
			runErr = err
		}
	}
	if runErr == nil {
		runErr = ctx.Err()
	}
	if e.opts.CheckpointPath != "" {
		// Final snapshot: Complete on success, the partial frontier on
		// cancellation, so a later -resume continues (or short-circuits).
		if err := e.saveLocked(); err != nil && runErr == nil {
			runErr = err
		}
	}
	return sum, runErr
}

// worker pulls chunk indices until the queue drains or ctx cancels.
func (e *fleetEngine) worker(ctx context.Context, w *fleetWorker) {
	for {
		if ctx.Err() != nil {
			return
		}
		c := int(e.nextChunk.Add(1)) - 1
		if c >= e.nChunks {
			return
		}
		if e.chunkDone(c) {
			continue
		}
		lo, hi := e.chunkBounds(c)
		if !w.runChunk(ctx, c, lo, hi) {
			return // cancelled mid-chunk; the chunk is not merged
		}
		if !e.merge(c, w) {
			return
		}
	}
}

func (e *fleetEngine) chunkBounds(c int) (lo, hi int) {
	lo = c * e.opts.ChunkSize
	hi = lo + e.opts.ChunkSize
	if hi > e.cfg.DIMMs {
		hi = e.cfg.DIMMs
	}
	return lo, hi
}

func (e *fleetEngine) chunkDone(c int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.doneBits[c/64]&(1<<(c%64)) != 0
}

// merge folds one completed chunk into the fleet accumulator.
func (e *fleetEngine) merge(c int, w *fleetWorker) bool {
	e.mu.Lock()
	e.tally.add(&w.tally)
	for i := range w.mcs {
		e.mcs[w.mcLo+i].add(&w.mcs[i])
	}
	e.doneBits[c/64] |= 1 << (c % 64)
	e.doneChunks++
	done, total := e.doneChunks, e.nChunks
	if e.opts.CheckpointPath != "" && time.Since(e.lastSave) >= e.opts.CheckpointInterval {
		if err := e.saveLocked(); err != nil && e.failed == nil {
			e.failed = err
		}
	}
	failed := e.failed
	e.mu.Unlock()

	e.met.chunksDone.Inc()
	e.met.dimmsDone.Add(w.tally.DIMMs)
	e.met.failed.Add(w.tally.Failed)
	e.met.ces.Add(w.tally.CEs)
	e.met.ceNoInfo.Add(w.tally.CENoInfo)
	e.met.ues.Add(w.tally.UEs)
	e.met.ueNoInfo.Add(w.tally.UENoInfo)
	e.met.retired.Add(w.tally.RetiredRows)

	if e.opts.OnChunk != nil {
		e.onChunkSerialised(done, total)
	}
	if failed != nil {
		e.cancel()
		return false
	}
	return true
}

func (e *fleetEngine) onChunkSerialised(done, total int) {
	e.onChunkMu.Lock()
	defer e.onChunkMu.Unlock()
	e.opts.OnChunk(done, total)
}

// snapshotLocked assembles the checkpoint payload. Caller holds mu. The
// payload is canonical: two engines that merged the same chunks — in any
// order, on any number of workers — produce byte-identical snapshots.
func (e *fleetEngine) snapshotLocked() fleetSnapshot {
	return fleetSnapshot{
		DIMMs:      e.cfg.DIMMs,
		Seed:       e.opts.Seed,
		ChunkSize:  e.opts.ChunkSize,
		Years:      e.years,
		DoneChunks: append([]uint64(nil), e.doneBits...),
		Complete:   e.doneChunks == e.nChunks,
		Tally:      e.tally.clone(),
		MCs:        append([]MCCounters(nil), e.mcs...),
	}
}

func (t *Tally) clone() Tally {
	c := *t
	c.FailedByYear = append([]uint64(nil), t.FailedByYear...)
	return c
}

func (e *fleetEngine) saveLocked() error {
	snap := e.snapshotLocked()
	start := time.Now()
	if err := checkpoint.Save(e.opts.CheckpointPath, fleetCheckpointKind, fleetCheckpointVersion, e.hash, &snap); err != nil {
		return err
	}
	e.met.ckptSaves.Inc()
	e.met.ckptSaveMS.Observe(float64(time.Since(start).Microseconds()) / 1e3)
	e.lastSave = time.Now()
	return nil
}

func (e *fleetEngine) loadSnapshot() error {
	var snap fleetSnapshot
	err := checkpoint.Load(e.opts.CheckpointPath, fleetCheckpointKind, fleetCheckpointVersion, e.hash, &snap)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if len(snap.DoneChunks) != len(e.doneBits) || len(snap.MCs) != len(e.mcs) ||
		snap.Years != e.years || len(snap.Tally.FailedByYear) != e.years {
		// The config hash covers everything that shapes these; reaching
		// here means the snapshot lies about its own hash input.
		return fmt.Errorf("%w: %s payload shape does not match its config",
			checkpoint.ErrConfigMismatch, e.opts.CheckpointPath)
	}
	copy(e.doneBits, snap.DoneChunks)
	e.doneChunks = 0
	for _, word := range e.doneBits {
		for ; word != 0; word &= word - 1 {
			e.doneChunks++
		}
	}
	e.tally = snap.Tally.clone()
	copy(e.mcs, snap.MCs)
	return nil
}

// summaryLocked assembles the Summary from the accumulator. Caller holds mu.
func (e *fleetEngine) summaryLocked() *Summary {
	return &Summary{
		Config:    e.cfg,
		Seed:      e.opts.Seed,
		ChunkSize: e.opts.ChunkSize,
		Years:     e.years,
		Complete:  e.doneChunks == e.nChunks,
		Tally:     e.tally.clone(),
		MCs:       append([]MCCounters(nil), e.mcs...),
	}
}

// edacSnapshot renders the live per-MC counters in EDAC shape (the /edac
// view's data source). Safe to call concurrently with merging.
func (e *fleetEngine) edacSnapshot() *EDACSnapshot {
	e.mu.Lock()
	mcs := append([]MCCounters(nil), e.mcs...)
	e.mu.Unlock()
	return NewEDACSnapshot(&e.cfg, mcs)
}

// fleetWorker holds one goroutine's reusable per-DIMM state plus the
// current chunk's tallies. Nothing here allocates per healthy DIMM.
type fleetWorker struct {
	cfg     *Config
	dimmCfg faultsim.Config
	src     *faultsim.TrialSource
	ev      *faultsim.Evaluator
	fast    bool
	seed    uint64
	years   int
	rng     *simrand.Source
	buf     []faultsim.FaultRecord
	outs    []faultsim.TrialOutcome

	// HARP profiling scratch: one synthetic chip reused across profiled
	// faults (sparse storage; ClearFaults between records).
	harpChip  *dram.Chip
	harpAddrs []dram.WordAddr

	// Current chunk accumulators. mcs is a window over the memory
	// controllers the chunk's DIMM range touches, starting at mcLo.
	tally Tally
	mcLo  int
	mcs   []MCCounters
}

func newFleetWorker(cfg *Config, seed uint64, years int) (*fleetWorker, error) {
	w := &fleetWorker{cfg: cfg, seed: seed, years: years, rng: simrand.New(0)}
	w.dimmCfg = cfg.dimmConfig()
	src, err := faultsim.NewTrialSource(&w.dimmCfg)
	if err != nil {
		return nil, err
	}
	w.src = src
	schemes, err := cfg.schemes()
	if err != nil {
		return nil, err
	}
	w.ev = faultsim.NewEvaluator(&w.dimmCfg, schemes)
	w.fast = w.ev.EmptyTrialsSurvive()
	w.tally.FailedByYear = make([]uint64, years)
	if cfg.Policy.Kind == PolicyHARP {
		w.harpChip = dram.NewChip(cfg.Geom, ecc.NewCRC8ATM())
	}
	return w, nil
}

// runChunk ages DIMMs [lo, hi) of chunk c into the worker's tallies. It
// returns false if ctx cancelled mid-chunk (tallies must be discarded).
func (w *fleetWorker) runChunk(ctx context.Context, c, lo, hi int) bool {
	w.resetChunk(lo, hi)
	return w.scanChunk(ctx, c, lo, hi,
		func(_, n int) {
			w.tally.DIMMs += uint64(n)
			w.tally.Arrivals[0] += uint64(n)
		},
		func(d int, recs []faultsim.FaultRecord) bool {
			w.simDIMM(d, recs)
			w.tally.DIMMs++
			return true
		})
}

func (w *fleetWorker) resetChunk(lo, hi int) {
	w.tally.DIMMs, w.tally.Faults = 0, 0
	w.tally.Failed, w.tally.DUEs, w.tally.SDCs = 0, 0, 0
	w.tally.CEs, w.tally.CENoInfo, w.tally.UEs, w.tally.UENoInfo = 0, 0, 0, 0
	w.tally.RetiredRows = 0
	clear(w.tally.Arrivals[:])
	clear(w.tally.FailedByYear)
	w.mcLo = lo / w.cfg.DIMMsPerMC
	mcHi := (hi-1)/w.cfg.DIMMsPerMC + 1
	if need := mcHi - w.mcLo; need > cap(w.mcs) {
		w.mcs = make([]MCCounters, need)
	} else {
		w.mcs = w.mcs[:need]
		clear(w.mcs)
	}
}

// scanChunk walks chunk c's DIMM range, reporting runs of zero-fault DIMMs
// to onEmpty and each faulty DIMM's record stream to onDIMM (return false
// to stop early). The RNG draw sequence is a pure function of (Config,
// seed, c): the same skip-sampling fast path and boundary-overrun rule as
// the campaign engine, so History replays exactly what runChunk aged.
func (w *fleetWorker) scanChunk(ctx context.Context, c, lo, hi int, onEmpty func(at, n int), onDIMM func(d int, recs []faultsim.FaultRecord) bool) bool {
	w.rng.SeedStream(w.seed, uint64(c))
	w.src.ResetEvents()
	if !w.fast {
		// A scheme that fails empty trials makes skip-sampling unsound;
		// draw every DIMM individually.
		for d := lo; d < hi; d++ {
			if (d-lo)&1023 == 0 && ctx.Err() != nil {
				return false
			}
			w.buf = w.src.Trial(w.rng, w.buf[:0])
			if len(w.buf) == 0 {
				onEmpty(d, 1)
			} else if !onDIMM(d, w.buf) {
				return true
			}
		}
		return true
	}
	for d := lo; d < hi; {
		if (d-lo)&1023 == 0 && ctx.Err() != nil {
			return false
		}
		skipped, recs := w.src.NextNonEmpty(w.rng, w.buf)
		w.buf = recs
		if skipped >= hi-d {
			// The rest of the chunk drew zero faults; the non-empty trial
			// just generated belongs past the chunk boundary and is
			// discarded (the next chunk reseeds its own substream).
			onEmpty(d, hi-d)
			return true
		}
		if skipped > 0 {
			onEmpty(d, skipped)
			d += skipped
		}
		if len(recs) == 0 {
			onEmpty(d, 1) // aging thinning can still empty a trial
		} else if !onDIMM(d, recs) {
			return true
		}
		d++
	}
	return true
}

// simDIMM ages one faulty DIMM: applies the retirement policy to its
// record stream, judges survival under the configured scheme, and books
// scrub-pass CE telemetry and any UE to the DIMM's memory controller.
func (w *fleetWorker) simDIMM(dimm int, recs []faultsim.FaultRecord) {
	arrivals := 0
	for i := range recs {
		if !isExpansionCopy(&recs[i]) {
			arrivals++
		}
	}
	bin := arrivals
	if bin >= ArrivalBins {
		bin = ArrivalBins - 1
	}
	w.tally.Arrivals[bin]++
	w.tally.Faults += uint64(arrivals)

	// Retirement first: truncating a record's End is exactly what
	// retiring its row does — the damage stops producing CEs and stops
	// participating in uncorrectable combinations.
	scrub := w.cfg.ScrubIntervalHours
	for i := range recs {
		r := &recs[i]
		if end, retired := w.retireEnd(dimm, i, r, scrub); retired {
			w.tally.RetiredRows++
			if end < r.End {
				r.End = end
			}
		}
	}

	w.outs = w.ev.EvaluateInto(recs, w.outs)
	failTime, kind := w.outs[0].FailTime, w.outs[0].Kind

	// CE telemetry: every scrub pass over live, non-silent damage logs
	// one correctable-error report (XED exposes even on-die-corrected
	// bit faults through catch-words — that is the paper's point).
	// Telemetry stops at the DIMM's failure (the replacement is
	// error-free), and whole-chip damage books to the noinfo counters.
	mc := &w.mcs[dimm/w.cfg.DIMMsPerMC-w.mcLo]
	for i := range recs {
		r := &recs[i]
		if r.Silent && r.Gran == dram.GranWord {
			continue // the on-die code misses it: no catch-word, no CE
		}
		end := r.End
		if failTime < end {
			end = failTime
		}
		n := scrubTicksIn(r.Start, end, scrub)
		if r.Gran == dram.GranChip {
			mc.CENoInfo += n
			w.tally.CENoInfo += n
		} else {
			mc.CE += n
			w.tally.CEs += n
		}
	}

	if math.IsInf(failTime, 1) {
		return
	}
	w.tally.Failed++
	yr := int(failTime / faultsim.HoursPerYear)
	if yr >= w.years {
		yr = w.years - 1
	}
	w.tally.FailedByYear[yr]++
	switch kind {
	case faultsim.FailDUE:
		w.tally.DUEs++
		// A detected uncorrectable error reaches the EDAC counters;
		// whole-chip damage active at the failure instant means the
		// report carries no useful source address.
		if chipActiveAt(recs, failTime) {
			mc.UENoInfo++
			w.tally.UENoInfo++
		} else {
			mc.UE++
			w.tally.UEs++
		}
	case faultsim.FailSDC:
		w.tally.SDCs++ // silent: invisible to the monitor, no UE counter
	}
}

// isExpansionCopy reports whether the record is a multi-rank event's
// expanded copy (the generator emits the event once at Rank 0 and copies
// it to each further rank under the same EventID).
func isExpansionCopy(r *faultsim.FaultRecord) bool {
	return r.EventID != 0 && r.Rank != 0
}

// chipActiveAt reports whether whole-chip damage is active at time t.
func chipActiveAt(recs []faultsim.FaultRecord, t float64) bool {
	for i := range recs {
		r := &recs[i]
		if r.Gran == dram.GranChip && r.Start <= t && t < r.End {
			return true
		}
	}
	return false
}

// scrubTicksIn counts patrol-scrub instants k*scrub in (start, end].
func scrubTicksIn(start, end, scrub float64) uint64 {
	if end <= start {
		return 0
	}
	n := math.Floor(end/scrub) - math.Floor(start/scrub)
	if n <= 0 {
		return 0
	}
	return uint64(n)
}

// nextScrubTick returns the first patrol-scrub instant strictly after
// start, matching the transient-clearing rule of the fault generator.
func nextScrubTick(start, scrub float64) float64 {
	t := math.Ceil(start/scrub) * scrub
	if t <= start {
		t = start + scrub
	}
	return t
}

// retirableGran reports whether row/page retirement can contain the fault:
// bit, word and row damage sits inside one row's footprint; column, bank
// and chip damage does not.
func retirableGran(g dram.Granularity) bool {
	return g == dram.GranBit || g == dram.GranWord || g == dram.GranRow
}

// retireEnd decides whether the policy retires the record's row and, if
// so, the instant the row leaves service. Retirement never consumes the
// trial RNG — HARP profiling seeds derive from (seed, dimm, record index)
// — so fault streams are policy-invariant.
func (w *fleetWorker) retireEnd(dimm, idx int, r *faultsim.FaultRecord, scrub float64) (end float64, retired bool) {
	p := w.cfg.Policy
	if p.Kind == PolicyNone || !retirableGran(r.Gran) {
		return 0, false
	}
	switch p.Kind {
	case PolicyOnFirstCE, PolicyThreshold:
		// CE-triggered policies: the OS acts on logged reports, so a
		// silent fault never triggers them, and a transient one can (the
		// scrub that clears it also logs it — capacity burned for no
		// reliability gain, which is exactly what the economics compare).
		if r.Silent && r.Gran == dram.GranWord {
			return 0, false
		}
		n := 1
		if p.Kind == PolicyThreshold {
			n = p.Threshold
		}
		if scrubTicksIn(r.Start, r.End, scrub) < uint64(n) {
			return 0, false // the fault never produces enough reports
		}
		return nextScrubTick(r.Start, scrub) + float64(n-1)*scrub, true
	case PolicyHARP:
		// Profile-triggered: a HARP-style active pass at the first scrub
		// flags resident at-risk damage. Permanent faults repeat under
		// profiling (silent ones included — direct read-back errors need
		// no catch-word); transient damage is cleared by the profiling
		// writes themselves and is left alone.
		tick := nextScrubTick(r.Start, scrub)
		if tick >= r.End {
			return 0, false // gone (or out of horizon) before profiling
		}
		if !w.harpAtRisk(dimm, idx, r) {
			return 0, false
		}
		return tick, true
	}
	return 0, false
}

// harpAtRisk runs an infer.ProfileChip pass over the words the record
// damages, on a synthetic chip holding only that fault.
func (w *fleetWorker) harpAtRisk(dimm, idx int, r *faultsim.FaultRecord) bool {
	chip := w.harpChip
	chip.ClearFaults()
	chip.InjectFault(r.Range)
	geom := w.cfg.Geom
	addrs := w.harpAddrs[:0]
	switch r.Gran {
	case dram.GranBit, dram.GranWord:
		addrs = append(addrs, dram.WordAddr{Bank: r.Range.Bank, Row: r.Range.Row, Col: r.Range.Col})
	case dram.GranRow:
		// Sample a few words across the damaged row; row faults corrupt
		// a seed-derived pattern per word, so one clean probe word does
		// not acquit the row.
		cols := [4]int{0, 1, geom.ColsPerRow / 2, geom.ColsPerRow - 1}
		for _, col := range cols {
			a := dram.WordAddr{Bank: r.Range.Bank, Row: r.Range.Row, Col: col}
			if len(addrs) == 0 || addrs[len(addrs)-1] != a {
				addrs = append(addrs, a)
			}
		}
	}
	w.harpAddrs = addrs
	prof := infer.ProfileChip(chip, addrs, infer.HARPOptions{
		Rounds: 2,
		Seed:   harpSeed(w.seed, dimm, idx),
	})
	for i := range prof.Words {
		if prof.Words[i].AtRisk() {
			return true
		}
	}
	return false
}

// harpSeed derives a deterministic profiling seed independent of worker
// scheduling and of the trial RNG.
func harpSeed(seed uint64, dimm, idx int) uint64 {
	x := seed ^ uint64(dimm)*0x9e3779b97f4a7c15 ^ uint64(idx)*0xbf58476d1ce4e5b9
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// DIMMHistory is one DIMM's field history, regenerated on demand from the
// fleet's substreams rather than stored: exactly the records runChunk aged
// (post-retirement Ends), the survival verdict, and the telemetry the DIMM
// contributed.
type DIMMHistory struct {
	DIMM int `json:"dimm"`
	// Arrivals counts fault events; Records carries the per-chip record
	// stream with policy-truncated Ends (empty for a healthy DIMM).
	Arrivals int                    `json:"arrivals"`
	Records  []faultsim.FaultRecord `json:"records,omitempty"`
	// Retired flags the records whose rows the policy retired.
	Retired []bool `json:"retired,omitempty"`
	// FailTime is +Inf for survivors; Kind classifies the failure.
	FailTime float64           `json:"fail_time_hours"`
	Kind     faultsim.FailKind `json:"-"`
	KindName string            `json:"kind"`
	// CEs / CENoInfo are the scrub-pass reports the DIMM logged.
	CEs      uint64 `json:"ces"`
	CENoInfo uint64 `json:"ce_noinfo"`
}

// MarshalJSON renders the history with a null fail time for survivors
// (FailTime is +Inf in memory, which JSON cannot carry).
func (h *DIMMHistory) MarshalJSON() ([]byte, error) {
	type alias DIMMHistory
	wire := struct {
		*alias
		FailTime *float64 `json:"fail_time_hours"`
	}{alias: (*alias)(h)}
	if !math.IsInf(h.FailTime, 1) {
		wire.FailTime = &h.FailTime
	}
	return json.Marshal(wire)
}

// History regenerates one DIMM's fault history. The result is identical to
// what a Run with the same (cfg, opts.Seed, opts.ChunkSize) aged for that
// DIMM, at any worker count: the DIMM's chunk substream is replayed from
// the chunk head through the DIMM.
func History(cfg Config, opts Options, dimm int) (*DIMMHistory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if dimm < 0 || dimm >= cfg.DIMMs {
		return nil, fmt.Errorf("fleet: DIMM %d out of range [0, %d)", dimm, cfg.DIMMs)
	}
	chunkSize := opts.ChunkSize
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	w, err := newFleetWorker(&cfg, opts.Seed, cfg.Years())
	if err != nil {
		return nil, err
	}
	c := dimm / chunkSize
	lo := c * chunkSize
	hi := lo + chunkSize
	if hi > cfg.DIMMs {
		hi = cfg.DIMMs
	}
	h := &DIMMHistory{DIMM: dimm, FailTime: math.Inf(1), Kind: faultsim.FailNone}
	w.resetChunk(lo, hi)
	w.scanChunk(context.Background(), c, lo, hi,
		func(at, n int) {}, // a zero-fault DIMM keeps the healthy default
		func(d int, recs []faultsim.FaultRecord) bool {
			if d < dimm {
				return true
			}
			if d > dimm {
				return false
			}
			for i := range recs {
				if !isExpansionCopy(&recs[i]) {
					h.Arrivals++
				}
			}
			h.Records = append([]faultsim.FaultRecord(nil), recs...)
			h.Retired = make([]bool, len(h.Records))
			scrub := cfg.ScrubIntervalHours
			for i := range h.Records {
				r := &h.Records[i]
				if end, retired := w.retireEnd(d, i, r, scrub); retired {
					h.Retired[i] = true
					if end < r.End {
						r.End = end
					}
				}
			}
			outs := w.ev.EvaluateInto(h.Records, nil)
			h.FailTime, h.Kind = outs[0].FailTime, outs[0].Kind
			for i := range h.Records {
				r := &h.Records[i]
				if r.Silent && r.Gran == dram.GranWord {
					continue
				}
				end := r.End
				if h.FailTime < end {
					end = h.FailTime
				}
				n := scrubTicksIn(r.Start, end, scrub)
				if r.Gran == dram.GranChip {
					h.CENoInfo += n
				} else {
					h.CEs += n
				}
			}
			return false
		})
	h.KindName = h.Kind.String()
	return h, nil
}
