// Package fleet is a datacenter-scale field simulator: it ages N simulated
// DIMMs over a multi-year horizon under the Table I field FIT rates and
// reports the telemetry a baremetal fleet monitor would scrape — per-
// memory-controller correctable/uncorrectable error counters in the Linux
// EDAC sysfs shape — plus the policy questions only a fleet view can
// answer: which page/row retirement policy buys the most nines per dollar,
// and how many machine-years pass before XED's catch-word collision corner
// actually bites.
//
// Each DIMM's runtime faults are one trial of the single-DIMM
// faultsim.Config, drawn through faultsim.TrialSource and judged by the
// same faultsim.Evaluator the Monte-Carlo campaigns use, so per-DIMM
// failure statistics tie back to the paper's Figure 1/7 curves by
// construction (the fleet/ conformance claim checks exactly this). On top
// of the record stream the simulator layers what campaigns abstract away:
// scrub-pass CE telemetry, retirement policies that truncate a fault's
// active interval, and replacement economics.
//
// Determinism follows the campaign engine's design: DIMMs are partitioned
// into fixed-size chunks, chunk c draws from simrand substream (seed, c),
// and every accumulator is a sum of per-chunk integers — so results are
// bit-identical for a fixed (Config, Seed, ChunkSize) whatever the worker
// count, and checkpoint/resume (internal/checkpoint) restores mid-horizon
// runs exactly.
package fleet

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"xedsim/internal/dram"
	"xedsim/internal/faultsim"
)

// PolicyKind enumerates the page/row retirement policies.
type PolicyKind int

const (
	// PolicyNone never retires; faults stay live for their natural
	// interval. The baseline, and the mode whose failure statistics the
	// fleet/ conformance claim ties to the single-DIMM campaigns.
	PolicyNone PolicyKind = iota
	// PolicyOnFirstCE retires the damaged row at the first scrub pass
	// that logs a CE from a retirable fault — aggressive, burns capacity
	// on transient upsets that would have cleared anyway.
	PolicyOnFirstCE
	// PolicyThreshold retires after a fault's row has produced Threshold
	// CE reports (the classic "N strikes" operator rule).
	PolicyThreshold
	// PolicyHARP retires only rows whose HARP-style active profile
	// (internal/infer) flags resident at-risk damage: permanent faults
	// repeat under profiling and are retired at their first scrub;
	// transient upsets profile clean (the scrub rewrite already cleared
	// them) and are left alone.
	PolicyHARP
)

// Policy is a retirement policy selection.
type Policy struct {
	Kind      PolicyKind
	Threshold int // CE reports before retirement; PolicyThreshold only
}

// String renders the policy in the form ParsePolicy accepts.
func (p Policy) String() string {
	switch p.Kind {
	case PolicyNone:
		return "none"
	case PolicyOnFirstCE:
		return "on-first-ce"
	case PolicyThreshold:
		return fmt.Sprintf("threshold:%d", p.Threshold)
	case PolicyHARP:
		return "harp"
	}
	return fmt.Sprintf("Policy(%d)", int(p.Kind))
}

// ParsePolicy resolves a retirement-policy spec:
//
//	none            never retire (the conformance baseline)
//	on-first-ce     retire the row at its first logged CE
//	threshold:<n>   retire after n CE reports from the same fault
//	harp            retire only rows an infer.ProfileChip pass flags at risk
func ParsePolicy(spec string) (Policy, error) {
	switch spec {
	case "", "none":
		return Policy{Kind: PolicyNone}, nil
	case "on-first-ce":
		return Policy{Kind: PolicyOnFirstCE}, nil
	case "harp":
		return Policy{Kind: PolicyHARP}, nil
	}
	if rest, ok := strings.CutPrefix(spec, "threshold:"); ok {
		n, err := strconv.Atoi(rest)
		if err != nil || n <= 0 {
			return Policy{}, fmt.Errorf("fleet: retirement policy %q: threshold %q is not a positive integer", spec, rest)
		}
		return Policy{Kind: PolicyThreshold, Threshold: n}, nil
	}
	return Policy{}, fmt.Errorf("fleet: unknown retirement policy %q (want none, on-first-ce, threshold:<n> or harp)", spec)
}

// Config describes one fleet simulation. The zero value is unusable; start
// from DefaultConfig.
type Config struct {
	// DIMMs is the fleet size.
	DIMMs int
	// HorizonHours is the simulated aging period (7 years by default).
	HorizonHours float64
	// ScrubIntervalHours paces patrol scrubs: transient faults clear at
	// the next pass, and every pass over live damage logs one CE.
	ScrubIntervalHours float64
	// RanksPerDIMM and ChipsPerRank shape each DIMM (dual-rank, 9 x8
	// chips including ECC by default, matching §III).
	RanksPerDIMM int
	ChipsPerRank int
	// Geom shapes fault address ranges within a chip.
	Geom dram.Geometry
	// FITs is the per-chip fault-rate table (Table I by default).
	FITs faultsim.FITTable
	// OnDie and SilentWordFraction parameterise the on-die code exactly
	// as in faultsim.Config.
	OnDie              bool
	SilentWordFraction float64
	// Scheme is the rank-level protection scheme every DIMM runs, by
	// faultsim registry name ("XED" by default).
	Scheme string
	// Policy selects the page/row retirement policy.
	Policy Policy
	// DIMMsPerMC groups DIMMs under one "memory controller" for the EDAC
	// export (8 by default: one dual-channel controller, four DIMMs per
	// channel).
	DIMMsPerMC int
	// DIMMSizeMB feeds the EDAC size_mb attribute (4 GiB DIMMs per §III).
	DIMMSizeMB int
	// CostPerSwapUSD prices one DIMM replacement for the repair
	// economics summary.
	CostPerSwapUSD float64
}

// DefaultConfig returns a 10k-DIMM, 7-year fleet of the paper's DIMMs
// under XED with weekly scrubs and no retirement.
func DefaultConfig() Config {
	return Config{
		DIMMs:              10_000,
		HorizonHours:       7 * faultsim.HoursPerYear,
		ScrubIntervalHours: 24 * 7,
		RanksPerDIMM:       2,
		ChipsPerRank:       9,
		Geom:               dram.DefaultGeometry(),
		FITs:               faultsim.TableI(),
		OnDie:              true,
		SilentWordFraction: 0.008,
		Scheme:             "XED",
		Policy:             Policy{Kind: PolicyNone},
		DIMMsPerMC:         8,
		DIMMSizeMB:         4096,
		CostPerSwapUSD:     150,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.DIMMs <= 0 {
		return fmt.Errorf("fleet: non-positive DIMM count %d", c.DIMMs)
	}
	if c.HorizonHours <= 0 {
		return fmt.Errorf("fleet: non-positive horizon %v", c.HorizonHours)
	}
	if c.DIMMsPerMC <= 0 {
		return fmt.Errorf("fleet: non-positive DIMMs-per-controller %d", c.DIMMsPerMC)
	}
	if c.DIMMSizeMB <= 0 {
		return fmt.Errorf("fleet: non-positive DIMM size %d MB", c.DIMMSizeMB)
	}
	if c.CostPerSwapUSD < 0 || math.IsNaN(c.CostPerSwapUSD) {
		return fmt.Errorf("fleet: invalid swap cost %v", c.CostPerSwapUSD)
	}
	switch c.Policy.Kind {
	case PolicyNone, PolicyOnFirstCE, PolicyHARP:
	case PolicyThreshold:
		if c.Policy.Threshold <= 0 {
			return fmt.Errorf("fleet: threshold policy needs a positive threshold, got %d", c.Policy.Threshold)
		}
	default:
		return fmt.Errorf("fleet: unknown policy kind %d", int(c.Policy.Kind))
	}
	if _, err := c.schemes(); err != nil {
		return err
	}
	// The single-DIMM view validates the remaining fields (ranks, chips,
	// geometry, FIT table, scrub interval, silent fraction).
	dimm := c.dimmConfig()
	return dimm.Validate()
}

// dimmConfig is the single-DIMM faultsim view of this fleet: one channel
// holding one DIMM of RanksPerDIMM ranks. Fault generation and failure
// judging both run against it, which is what ties fleet statistics to the
// campaign curves.
func (c *Config) dimmConfig() faultsim.Config {
	return faultsim.Config{
		Channels:           1,
		RanksPerChannel:    c.RanksPerDIMM,
		ChipsPerRank:       c.ChipsPerRank,
		Geom:               c.Geom,
		LifetimeHours:      c.HorizonHours,
		ScrubIntervalHours: c.ScrubIntervalHours,
		FITs:               c.FITs,
		OnDie:              c.OnDie,
		SilentWordFraction: c.SilentWordFraction,
	}
}

// schemes resolves the configured scheme name.
func (c *Config) schemes() ([]faultsim.Scheme, error) {
	name := c.Scheme
	if name == "" {
		name = "XED"
	}
	return faultsim.SchemesByName(name)
}

// Years returns the number of (whole or partial) simulated years.
func (c *Config) Years() int {
	return int(math.Ceil(c.HorizonHours / faultsim.HoursPerYear))
}

// MCs returns the number of simulated memory controllers.
func (c *Config) MCs() int {
	return (c.DIMMs + c.DIMMsPerMC - 1) / c.DIMMsPerMC
}

// ExpectedFaultsPerDIMM returns the Poisson mean of fault arrivals per
// DIMM over the horizon — the rate the statistical battery's chi-squared
// test checks the simulator against.
func (c *Config) ExpectedFaultsPerDIMM() (float64, error) {
	dimm := c.dimmConfig()
	src, err := faultsim.NewTrialSource(&dimm)
	if err != nil {
		return 0, err
	}
	return src.Mean(), nil
}
