package fleet

import (
	"bytes"
	"io"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

func sampleSnapshot() *EDACSnapshot {
	return &EDACSnapshot{MCs: []MCRecord{
		{Name: "xedsim XED", SizeMB: 32768, SecondsSinceReset: 220903200,
			Counters: MCCounters{CE: 12, CENoInfo: 3, UE: 1, UENoInfo: 0}},
		{Name: "xedsim XED", SizeMB: 32768, SecondsSinceReset: 220903200,
			Counters: MCCounters{CE: 0, CENoInfo: 0, UE: 0, UENoInfo: 2}},
	}}
}

func TestEDACDumpRoundTrip(t *testing.T) {
	want := sampleSnapshot()
	got, err := ParseEDACDump(want.Dump())
	if err != nil {
		t.Fatalf("ParseEDACDump(Dump()): %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("round trip mismatch:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestEDACDumpShape(t *testing.T) {
	dump := string(sampleSnapshot().Dump())
	if !strings.HasPrefix(dump, "/sys/devices/system/edac/mc/mc0/mc_name ") {
		t.Errorf("dump does not start with mc0 mc_name:\n%s", dump)
	}
	lines := strings.Split(strings.TrimSuffix(dump, "\n"), "\n")
	if len(lines) != 2*len(edacAttrs) {
		t.Errorf("dump has %d lines, want %d", len(lines), 2*len(edacAttrs))
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, edacPrefix) {
			t.Errorf("line lacks sysfs prefix: %q", ln)
		}
	}
}

func TestParseEDACDumpAcceptsAnyLineOrder(t *testing.T) {
	want := sampleSnapshot()
	lines := strings.Split(strings.TrimSuffix(string(want.Dump()), "\n"), "\n")
	// Reverse: mc1 before mc0, counters before names.
	for i, j := 0, len(lines)-1; i < j; i, j = i+1, j-1 {
		lines[i], lines[j] = lines[j], lines[i]
	}
	got, err := ParseEDACDump([]byte(strings.Join(lines, "\n") + "\n"))
	if err != nil {
		t.Fatalf("ParseEDACDump(reversed): %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("reversed-order parse mismatch:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestParseEDACDumpEmpty(t *testing.T) {
	got, err := ParseEDACDump(nil)
	if err != nil || len(got.MCs) != 0 {
		t.Errorf("ParseEDACDump(nil) = %+v, %v; want empty snapshot", got, err)
	}
}

func TestParseEDACDumpRejects(t *testing.T) {
	valid := string(sampleSnapshot().Dump())
	cases := map[string]string{
		"bad prefix":         "/sys/devices/system/edac/mc/zz0/ce_count 1\n",
		"relative path":      "mc0/ce_count 1\n",
		"negative index":     edacPrefix + "-1/ce_count 1\n",
		"non-numeric index":  edacPrefix + "x/ce_count 1\n",
		"missing attr path":  edacPrefix + "0 1\n",
		"missing value":      edacPrefix + "0/ce_count\n",
		"unknown attribute":  edacPrefix + "0/ce_total 1\n",
		"non-uint64 counter": edacPrefix + "0/ce_count -3\n",
		"float counter":      edacPrefix + "0/ce_count 1.5\n",
		"duplicate attr":     valid + edacPrefix + "0/ce_count 9\n",
		"missing attr":       strings.Replace(valid, edacPrefix+"1/ue_count 0\n", "", 1),
		"non-dense indices":  strings.ReplaceAll(valid, "/mc1/", "/mc3/"),
	}
	for name, dump := range cases {
		if _, err := ParseEDACDump([]byte(dump)); err == nil {
			t.Errorf("%s: ParseEDACDump accepted:\n%s", name, dump)
		}
	}
}

func TestNewEDACSnapshotPartialLastMC(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DIMMs = 11 // 8 + 3: the second controller hosts only 3 DIMMs
	cfg.DIMMsPerMC = 8
	cfg.DIMMSizeMB = 4096
	snap := NewEDACSnapshot(&cfg, make([]MCCounters, cfg.MCs()))
	if len(snap.MCs) != 2 {
		t.Fatalf("len(MCs) = %d, want 2", len(snap.MCs))
	}
	if got, want := snap.MCs[0].SizeMB, uint64(8*4096); got != want {
		t.Errorf("mc0 size_mb = %d, want %d", got, want)
	}
	if got, want := snap.MCs[1].SizeMB, uint64(3*4096); got != want {
		t.Errorf("mc1 size_mb = %d, want %d", got, want)
	}
	if got, want := snap.MCs[0].SecondsSinceReset, uint64(cfg.HorizonHours*3600); got != want {
		t.Errorf("seconds_since_reset = %d, want %d", got, want)
	}
	if snap.MCs[0].Name != "xedsim XED" {
		t.Errorf("mc_name = %q, want \"xedsim XED\"", snap.MCs[0].Name)
	}
}

func TestViewHandler(t *testing.T) {
	v := NewView()
	req := httptest.NewRequest("GET", "/edac", nil)

	rec := httptest.NewRecorder()
	v.Handler().ServeHTTP(rec, req)
	if rec.Code != 503 {
		t.Errorf("unbound view answered %d, want 503", rec.Code)
	}
	if v.Snapshot() != nil {
		t.Errorf("unbound view returned a snapshot")
	}

	want := sampleSnapshot()
	v.bind(func() *EDACSnapshot { return want })
	rec = httptest.NewRecorder()
	v.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("bound view answered %d, want 200", rec.Code)
	}
	body, _ := io.ReadAll(rec.Result().Body)
	if !bytes.Equal(body, want.Dump()) {
		t.Errorf("view body is not the dump:\n%s", body)
	}
	got, err := ParseEDACDump(body)
	if err != nil || !reflect.DeepEqual(want, got) {
		t.Errorf("view body does not round-trip: %v", err)
	}
}

// TestRunBindsView: a live run serves real counters through the view.
func TestRunBindsView(t *testing.T) {
	v := NewView()
	cfg := testConfig(4_000)
	sum := mustRun(t, cfg, Options{Seed: 8, View: v})
	snap := v.Snapshot()
	if snap == nil {
		t.Fatal("view unbound after run")
	}
	want := NewEDACSnapshot(&cfg, sum.MCs)
	if !reflect.DeepEqual(want, snap) {
		t.Errorf("view snapshot does not match the run's final counters")
	}
}

// FuzzEDACDumpRoundTrip holds ParseEDACDump and Dump to an exact inverse
// pair: any dump the parser accepts must re-render byte-identically, and
// re-parse to the same snapshot. This is the contract that lets external
// EDAC consumers treat the /edac view like a real host's sysfs.
func FuzzEDACDumpRoundTrip(f *testing.F) {
	f.Add([]byte(sampleSnapshot().Dump()))
	cfg := DefaultConfig()
	cfg.DIMMs = 20
	f.Add([]byte(NewEDACSnapshot(&cfg, make([]MCCounters, cfg.MCs())).Dump()))
	f.Add([]byte(edacPrefix + "0/ce_count 1\n"))
	f.Add([]byte("garbage\n"))
	f.Add([]byte(edacPrefix + "0/mc_name a name with spaces\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := ParseEDACDump(data)
		if err != nil {
			return // rejected input: nothing to hold
		}
		dump := snap.Dump()
		again, err := ParseEDACDump(dump)
		if err != nil {
			t.Fatalf("re-parse of rendered dump failed: %v\ndump:\n%s", err, dump)
		}
		if !reflect.DeepEqual(snap, again) {
			t.Fatalf("round trip diverged:\nfirst  %+v\nsecond %+v", snap, again)
		}
		if !bytes.Equal(dump, again.Dump()) {
			t.Fatalf("second render differs from first:\n%s\nvs\n%s", dump, again.Dump())
		}
	})
}
