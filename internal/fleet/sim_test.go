package fleet

import (
	"context"
	"encoding/json"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"xedsim/internal/dram"
)

// testConfig returns a fleet small enough for sub-second tests but large
// enough to exercise chunking, MC grouping and a handful of failures.
func testConfig(dimms int) Config {
	cfg := DefaultConfig()
	cfg.DIMMs = dimms
	return cfg
}

func mustRun(t *testing.T, cfg Config, opts Options) *Summary {
	t.Helper()
	sum, err := Run(context.Background(), cfg, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !sum.Complete {
		t.Fatalf("Run returned incomplete summary without error")
	}
	return sum
}

// TestWorkerCountInvariance is the battery's first pillar: the fleet
// summary — every tally, every per-MC counter — is bit-identical at 1, 4
// and 16 workers, because chunk c always draws substream (seed, c) and all
// accumulators are sums of per-chunk integers.
func TestWorkerCountInvariance(t *testing.T) {
	cfg := testConfig(30_000)
	ref := mustRun(t, cfg, Options{Seed: 11, ChunkSize: 512, Workers: 1})
	if ref.Tally.Failed == 0 || ref.Tally.CEs == 0 {
		t.Fatalf("reference run saw no failures (%d) or no CEs (%d); test has no power",
			ref.Tally.Failed, ref.Tally.CEs)
	}
	for _, workers := range []int{4, 16} {
		got := mustRun(t, cfg, Options{Seed: 11, ChunkSize: 512, Workers: workers})
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("summary at %d workers differs from 1-worker reference:\n 1: %+v\n%2d: %+v",
				workers, ref.Tally, workers, got.Tally)
		}
	}
}

// TestSeedAndChunkSizeMatter guards against the inverse failure mode: if
// different seeds or chunk layouts collapsed to the same stream, the
// invariance test above would pass vacuously.
func TestSeedAndChunkSizeMatter(t *testing.T) {
	cfg := testConfig(20_000)
	a := mustRun(t, cfg, Options{Seed: 1, ChunkSize: 512})
	b := mustRun(t, cfg, Options{Seed: 2, ChunkSize: 512})
	if reflect.DeepEqual(a.Tally, b.Tally) {
		t.Errorf("seeds 1 and 2 produced identical tallies: %+v", a.Tally)
	}
	c := mustRun(t, cfg, Options{Seed: 1, ChunkSize: 1024})
	if reflect.DeepEqual(a.Tally, c.Tally) {
		t.Errorf("chunk sizes 512 and 1024 produced identical tallies (streams should differ): %+v", a.Tally)
	}
}

// TestCheckpointResumeBitIdentity is the battery's second pillar: a run
// interrupted mid-horizon and resumed — at a different worker count —
// produces the same bits as an uninterrupted run.
func TestCheckpointResumeBitIdentity(t *testing.T) {
	cfg := testConfig(30_000)
	ref := mustRun(t, cfg, Options{Seed: 5, ChunkSize: 512, Workers: 4})

	path := filepath.Join(t.TempDir(), "fleet.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	partial, err := Run(ctx, cfg, Options{
		Seed: 5, ChunkSize: 512, Workers: 2,
		CheckpointPath: path,
		OnChunk: func(done, total int) {
			if done >= total/3 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatalf("interrupted run returned nil error (summary complete=%v)", partial.Complete)
	}
	if partial.Complete || partial.Tally.DIMMs >= uint64(cfg.DIMMs) {
		t.Fatalf("interruption was not partial: %d/%d DIMMs", partial.Tally.DIMMs, cfg.DIMMs)
	}

	for _, workers := range []int{1, 8} {
		got, err := Run(context.Background(), cfg, Options{
			Seed: 5, ChunkSize: 512, Workers: workers,
			CheckpointPath: path, Resume: true,
		})
		if err != nil {
			t.Fatalf("resume at %d workers: %v", workers, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("resumed summary at %d workers differs from uninterrupted reference:\nref: %+v\ngot: %+v",
				workers, ref.Tally, got.Tally)
		}
	}
}

// TestResumeRefusesForeignConfig: a snapshot from a different fleet shape
// must be refused, not silently blended.
func TestResumeRefusesForeignConfig(t *testing.T) {
	cfg := testConfig(4_000)
	path := filepath.Join(t.TempDir(), "fleet.ckpt")
	mustRun(t, cfg, Options{Seed: 9, ChunkSize: 512, CheckpointPath: path})

	other := cfg
	other.ScrubIntervalHours = 24
	if _, err := Run(context.Background(), other, Options{Seed: 9, ChunkSize: 512, CheckpointPath: path, Resume: true}); err == nil {
		t.Fatalf("resume under a different scrub interval succeeded; want config-hash refusal")
	}
	if _, err := Run(context.Background(), cfg, Options{Seed: 10, ChunkSize: 512, CheckpointPath: path, Resume: true}); err == nil {
		t.Fatalf("resume under a different seed succeeded; want config-hash refusal")
	}
}

// chi-squared upper-tail critical values at alpha = 0.001.
var chiSq001 = map[int]float64{
	1: 10.828, 2: 13.816, 3: 16.266, 4: 18.467,
	5: 20.515, 6: 22.458, 7: 24.322, 8: 26.124,
}

// TestArrivalsMatchTableIPoisson is the battery's third pillar: the
// per-DIMM fault-arrival histogram matches the Poisson law the Table I FIT
// rates imply, by chi-squared at alpha = 0.001 (bins merged to expected
// count >= 5). A doubled FIT table, a broken skip-sampler or a chunk
// boundary that loses trials all shift the histogram and fail here.
func TestArrivalsMatchTableIPoisson(t *testing.T) {
	cfg := testConfig(300_000)
	mean, err := cfg.ExpectedFaultsPerDIMM()
	if err != nil {
		t.Fatal(err)
	}
	sum := mustRun(t, cfg, Options{Seed: 3})

	n := float64(sum.Tally.DIMMs)
	exp := make([]float64, ArrivalBins)
	p := math.Exp(-mean) // P(k=0), then recurrence
	cum := 0.0
	for k := 0; k < ArrivalBins-1; k++ {
		exp[k] = n * p
		cum += p
		p *= mean / float64(k+1)
	}
	exp[ArrivalBins-1] = n * (1 - cum)

	obs := make([]float64, ArrivalBins)
	for k, c := range sum.Tally.Arrivals {
		obs[k] = float64(c)
	}
	// Merge the sparse tail until every bin expects >= 5 events.
	for len(exp) > 2 && exp[len(exp)-1] < 5 {
		exp[len(exp)-2] += exp[len(exp)-1]
		obs[len(obs)-2] += obs[len(obs)-1]
		exp, obs = exp[:len(exp)-1], obs[:len(obs)-1]
	}
	var x2 float64
	for i := range exp {
		d := obs[i] - exp[i]
		x2 += d * d / exp[i]
	}
	df := len(exp) - 1
	crit, ok := chiSq001[df]
	if !ok {
		t.Fatalf("no critical value for df=%d", df)
	}
	t.Logf("mean=%.5f bins=%d X2=%.2f crit(df=%d, a=0.001)=%.2f obs=%v", mean, len(exp), x2, df, crit, obs)
	if x2 > crit {
		t.Errorf("arrival histogram rejects Poisson(%.5f): X2=%.2f > %.2f (df=%d)\nobs=%v\nexp=%v",
			mean, x2, crit, df, obs, exp)
	}
}

// TestPolicyInvariantFaultStreams: retirement policies must change what
// happens to faults, never which faults arrive — retirement decisions are
// seeded off the trial RNG.
func TestPolicyInvariantFaultStreams(t *testing.T) {
	base := testConfig(50_000)
	ref := mustRun(t, base, Options{Seed: 21})
	for _, spec := range []string{"on-first-ce", "threshold:2", "harp"} {
		cfg := base
		pol, err := ParsePolicy(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Policy = pol
		got := mustRun(t, cfg, Options{Seed: 21})
		if got.Tally.Faults != ref.Tally.Faults || got.Tally.Arrivals != ref.Tally.Arrivals {
			t.Errorf("policy %s changed the fault stream: faults %d vs %d, arrivals %v vs %v",
				spec, got.Tally.Faults, ref.Tally.Faults, got.Tally.Arrivals, ref.Tally.Arrivals)
		}
		if got.Tally.Failed > ref.Tally.Failed {
			t.Errorf("policy %s increased failures: %d > %d (retirement can only truncate fault lifetimes)",
				spec, got.Tally.Failed, ref.Tally.Failed)
		}
		if got.Tally.RetiredRows == 0 {
			t.Errorf("policy %s retired nothing over %d DIMMs", spec, cfg.DIMMs)
		}
	}
}

// TestPolicyEconomics: the qualitative ordering the repair-economics story
// rests on. CE-triggered retirement burns capacity on transient upsets the
// HARP profile correctly acquits, so on-first-ce must retire strictly more
// rows than harp at (here) equal reliability.
func TestPolicyEconomics(t *testing.T) {
	run := func(spec string) *Summary {
		cfg := testConfig(200_000)
		pol, err := ParsePolicy(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Policy = pol
		return mustRun(t, cfg, Options{Seed: 1})
	}
	none, firstCE, harp := run("none"), run("on-first-ce"), run("harp")
	if firstCE.Tally.Failed >= none.Tally.Failed {
		t.Errorf("on-first-ce did not improve on no retirement: %d vs %d failed",
			firstCE.Tally.Failed, none.Tally.Failed)
	}
	if firstCE.Tally.RetiredRows <= harp.Tally.RetiredRows {
		t.Errorf("on-first-ce should burn more rows than harp (transients): %d vs %d",
			firstCE.Tally.RetiredRows, harp.Tally.RetiredRows)
	}
	if none.SwapCostUSD() <= firstCE.SwapCostUSD() {
		t.Errorf("retirement should reduce swap cost: $%.0f vs $%.0f",
			none.SwapCostUSD(), firstCE.SwapCostUSD())
	}
	if got := none.MachineYears(); math.Abs(got-7*200_000) > 1e-6*got {
		t.Errorf("MachineYears = %v, want %v", got, 7*200_000)
	}
}

// TestHistoryAggregatesToFleetTallies: regenerating every DIMM's history
// one at a time must reproduce the fleet run's aggregate telemetry
// exactly — History replays the same substreams runChunk consumed.
func TestHistoryAggregatesToFleetTallies(t *testing.T) {
	cfg := testConfig(3_000)
	pol, _ := ParsePolicy("on-first-ce")
	cfg.Policy = pol
	opts := Options{Seed: 17, ChunkSize: 256}
	sum := mustRun(t, cfg, opts)

	var faults, failed, ces, ceNoInfo, retired uint64
	sawRecords := false
	for d := 0; d < cfg.DIMMs; d++ {
		h, err := History(cfg, opts, d)
		if err != nil {
			t.Fatalf("History(%d): %v", d, err)
		}
		faults += uint64(h.Arrivals)
		if !math.IsInf(h.FailTime, 1) {
			failed++
		}
		ces += h.CEs
		ceNoInfo += h.CENoInfo
		for _, r := range h.Retired {
			if r {
				retired++
			}
		}
		if len(h.Records) > 0 {
			sawRecords = true
		}
	}
	if !sawRecords {
		t.Fatalf("no DIMM carried records; test has no power")
	}
	if faults != sum.Tally.Faults || failed != sum.Tally.Failed ||
		ces != sum.Tally.CEs || ceNoInfo != sum.Tally.CENoInfo || retired != sum.Tally.RetiredRows {
		t.Errorf("per-DIMM histories do not sum to the fleet tally:\nhistories: faults=%d failed=%d ces=%d cenoinfo=%d retired=%d\nfleet:     faults=%d failed=%d ces=%d cenoinfo=%d retired=%d",
			faults, failed, ces, ceNoInfo, retired,
			sum.Tally.Faults, sum.Tally.Failed, sum.Tally.CEs, sum.Tally.CENoInfo, sum.Tally.RetiredRows)
	}
}

// TestHistoryJSONRoundTrip: histories must marshal even for survivors,
// whose in-memory FailTime is +Inf (rendered as null) — the -dimm CLI
// output depends on it.
func TestHistoryJSONRoundTrip(t *testing.T) {
	cfg := testConfig(100)
	h, err := History(cfg, Options{Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatalf("marshal survivor history: %v", err)
	}
	var wire struct {
		FailTime *float64 `json:"fail_time_hours"`
		Kind     string   `json:"kind"`
	}
	if err := json.Unmarshal(b, &wire); err != nil {
		t.Fatal(err)
	}
	if math.IsInf(h.FailTime, 1) && wire.FailTime != nil {
		t.Errorf("survivor fail_time_hours = %v, want null", *wire.FailTime)
	}
	if !math.IsInf(h.FailTime, 1) && (wire.FailTime == nil || *wire.FailTime != h.FailTime) {
		t.Errorf("failed DIMM fail_time_hours = %v, want %v", wire.FailTime, h.FailTime)
	}
	if wire.Kind != h.KindName {
		t.Errorf("kind = %q, want %q", wire.Kind, h.KindName)
	}
}

func TestHistoryRejectsOutOfRange(t *testing.T) {
	cfg := testConfig(100)
	if _, err := History(cfg, Options{}, -1); err == nil {
		t.Errorf("History(-1) succeeded")
	}
	if _, err := History(cfg, Options{}, 100); err == nil {
		t.Errorf("History(DIMMs) succeeded")
	}
}

// TestMCCountersConsistent: per-MC counters must sum to the fleet totals
// and land in the controller that hosts the DIMM.
func TestMCCountersConsistent(t *testing.T) {
	cfg := testConfig(10_000)
	cfg.DIMMsPerMC = 8
	sum := mustRun(t, cfg, Options{Seed: 2})
	if len(sum.MCs) != cfg.MCs() {
		t.Fatalf("len(MCs) = %d, want %d", len(sum.MCs), cfg.MCs())
	}
	var mc MCCounters
	for i := range sum.MCs {
		mc.add(&sum.MCs[i])
	}
	if mc.CE != sum.Tally.CEs || mc.CENoInfo != sum.Tally.CENoInfo ||
		mc.UE != sum.Tally.UEs || mc.UENoInfo != sum.Tally.UENoInfo {
		t.Errorf("per-MC sums %+v do not match tally (ce=%d cenoinfo=%d ue=%d uenoinfo=%d)",
			mc, sum.Tally.CEs, sum.Tally.CENoInfo, sum.Tally.UEs, sum.Tally.UENoInfo)
	}
	if sum.Tally.UEs != sum.Tally.DUEs-sum.Tally.UENoInfo {
		t.Errorf("UE accounting: ue=%d + ue_noinfo=%d != dues=%d",
			sum.Tally.UEs, sum.Tally.UENoInfo, sum.Tally.DUEs)
	}
}

// TestXEDFleetHasNoSDC mirrors the table4 conformance property at fleet
// scale: every XED failure is detected.
func TestXEDFleetHasNoSDC(t *testing.T) {
	sum := mustRun(t, testConfig(100_000), Options{Seed: 4})
	if sum.Tally.SDCs != 0 {
		t.Errorf("XED fleet logged %d SDCs; every XED failure should be detected", sum.Tally.SDCs)
	}
	if sum.Tally.Failed != sum.Tally.DUEs {
		t.Errorf("failed=%d != dues=%d under XED", sum.Tally.Failed, sum.Tally.DUEs)
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		spec string
		want Policy
		ok   bool
	}{
		{"", Policy{Kind: PolicyNone}, true},
		{"none", Policy{Kind: PolicyNone}, true},
		{"on-first-ce", Policy{Kind: PolicyOnFirstCE}, true},
		{"harp", Policy{Kind: PolicyHARP}, true},
		{"threshold:1", Policy{Kind: PolicyThreshold, Threshold: 1}, true},
		{"threshold:12", Policy{Kind: PolicyThreshold, Threshold: 12}, true},
		{"threshold:0", Policy{}, false},
		{"threshold:-3", Policy{}, false},
		{"threshold:", Policy{}, false},
		{"threshold:x", Policy{}, false},
		{"bogus", Policy{}, false},
		{"THRESHOLD:2", Policy{}, false},
	}
	for _, tc := range cases {
		got, err := ParsePolicy(tc.spec)
		if tc.ok != (err == nil) {
			t.Errorf("ParsePolicy(%q) error = %v, want ok=%v", tc.spec, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParsePolicy(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
		if tc.ok && got.String() != "" {
			if rt, err := ParsePolicy(got.String()); err != nil || rt != got {
				t.Errorf("ParsePolicy(%q).String() = %q does not round-trip", tc.spec, got.String())
			}
		}
	}
}

func TestConfigValidate(t *testing.T) {
	mut := func(f func(*Config)) Config {
		cfg := DefaultConfig()
		f(&cfg)
		return cfg
	}
	bad := map[string]Config{
		"zero dimms":      mut(func(c *Config) { c.DIMMs = 0 }),
		"negative dimms":  mut(func(c *Config) { c.DIMMs = -5 }),
		"zero horizon":    mut(func(c *Config) { c.HorizonHours = 0 }),
		"zero scrub":      mut(func(c *Config) { c.ScrubIntervalHours = 0 }),
		"zero mc group":   mut(func(c *Config) { c.DIMMsPerMC = 0 }),
		"zero dimm size":  mut(func(c *Config) { c.DIMMSizeMB = 0 }),
		"negative cost":   mut(func(c *Config) { c.CostPerSwapUSD = -1 }),
		"NaN cost":        mut(func(c *Config) { c.CostPerSwapUSD = math.NaN() }),
		"bad threshold":   mut(func(c *Config) { c.Policy = Policy{Kind: PolicyThreshold} }),
		"bad policy kind": mut(func(c *Config) { c.Policy = Policy{Kind: PolicyKind(99)} }),
		"bad scheme":      mut(func(c *Config) { c.Scheme = "NoSuchScheme" }),
		"zero ranks":      mut(func(c *Config) { c.RanksPerDIMM = 0 }),
		"zero chips":      mut(func(c *Config) { c.ChipsPerRank = 0 }),
		"empty fits":      mut(func(c *Config) { c.FITs = nil }),
	}
	for name, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, cfg)
		}
	}
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Errorf("DefaultConfig does not validate: %v", err)
	}
	if got := good.MCs(); got != 1250 {
		t.Errorf("MCs() = %d, want 1250", got)
	}
	if got := good.Years(); got != 7 {
		t.Errorf("Years() = %d, want 7", got)
	}
}

// TestTrialSourceMeanMatchesConfig pins the exported seam the fleet ages
// DIMMs through: the unfiltered single-DIMM Poisson mean, against a direct
// recomputation from the FIT table.
func TestTrialSourceMeanMatchesConfig(t *testing.T) {
	cfg := DefaultConfig()
	mean, err := cfg.ExpectedFaultsPerDIMM()
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	dimm := cfg.dimmConfig()
	chips := float64(dimm.TotalChips())
	for _, cls := range cfg.FITs {
		per := float64(cls.Rate) * 1e-9 * cfg.HorizonHours
		if cls.Gran == dram.GranChip { // one event per DIMM, not per chip
			want += per
			continue
		}
		want += per * chips
	}
	if math.Abs(mean-want) > 1e-12*want {
		t.Errorf("ExpectedFaultsPerDIMM = %v, want %v", mean, want)
	}
}
