package fleet

import (
	"bytes"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// This file renders the fleet's per-MC counters in the Linux EDAC sysfs
// shape — the exact attribute files a baremetal memory-error monitor
// scrapes from /sys/devices/system/edac/mc/mc<N>/ — and parses the dump
// back. The round trip is exact (FuzzEDACDumpRoundTrip holds it to that),
// so external EDAC consumers can point at the /edac view or a dump file
// and parse it with the code they already run against real hosts.

// edacPrefix roots every attribute path in a dump.
const edacPrefix = "/sys/devices/system/edac/mc/mc"

// edacAttrs is the fixed attribute order of one MC's dump block.
var edacAttrs = [...]string{
	"mc_name",
	"size_mb",
	"seconds_since_reset",
	"ce_count",
	"ce_noinfo_count",
	"ue_count",
	"ue_noinfo_count",
}

// MCRecord is one memory controller's EDAC attribute block.
type MCRecord struct {
	// Name is the mc_name attribute (the controller model string).
	Name string `json:"mc_name"`
	// SizeMB is the memory the controller hosts.
	SizeMB uint64 `json:"size_mb"`
	// SecondsSinceReset is the counter accumulation window.
	SecondsSinceReset uint64 `json:"seconds_since_reset"`
	// Counters carries ce_count / ce_noinfo_count / ue_count /
	// ue_noinfo_count.
	Counters MCCounters `json:"counters"`
}

// EDACSnapshot is a whole host's (or simulated fleet's) EDAC state: one
// record per memory controller, mc0 first.
type EDACSnapshot struct {
	MCs []MCRecord `json:"mcs"`
}

// NewEDACSnapshot shapes the fleet's per-MC counters as EDAC records: the
// controller name carries the simulated scheme, size_mb the DIMMs the
// controller hosts, and seconds_since_reset the simulated horizon.
func NewEDACSnapshot(cfg *Config, mcs []MCCounters) *EDACSnapshot {
	scheme := cfg.Scheme
	if scheme == "" {
		scheme = "XED"
	}
	name := "xedsim " + scheme
	seconds := uint64(cfg.HorizonHours * 3600)
	snap := &EDACSnapshot{MCs: make([]MCRecord, len(mcs))}
	for i := range mcs {
		dimms := cfg.DIMMsPerMC
		if rest := cfg.DIMMs - i*cfg.DIMMsPerMC; rest < dimms {
			dimms = rest
		}
		if dimms < 0 {
			dimms = 0
		}
		snap.MCs[i] = MCRecord{
			Name:              name,
			SizeMB:            uint64(dimms) * uint64(cfg.DIMMSizeMB),
			SecondsSinceReset: seconds,
			Counters:          mcs[i],
		}
	}
	return snap
}

// Dump renders the snapshot as "<sysfs-path> <value>" lines, mc0 first,
// attributes in edacAttrs order. ParseEDACDump inverts it exactly.
func (s *EDACSnapshot) Dump() []byte {
	var b bytes.Buffer
	for i := range s.MCs {
		mc := &s.MCs[i]
		p := edacPrefix + strconv.Itoa(i) + "/"
		fmt.Fprintf(&b, "%smc_name %s\n", p, mc.Name)
		fmt.Fprintf(&b, "%ssize_mb %d\n", p, mc.SizeMB)
		fmt.Fprintf(&b, "%sseconds_since_reset %d\n", p, mc.SecondsSinceReset)
		fmt.Fprintf(&b, "%sce_count %d\n", p, mc.Counters.CE)
		fmt.Fprintf(&b, "%sce_noinfo_count %d\n", p, mc.Counters.CENoInfo)
		fmt.Fprintf(&b, "%sue_count %d\n", p, mc.Counters.UE)
		fmt.Fprintf(&b, "%sue_noinfo_count %d\n", p, mc.Counters.UENoInfo)
	}
	return b.Bytes()
}

// ParseEDACDump inverts Dump: it accepts any ordering of complete MC
// attribute blocks and rejects dumps with unknown attributes, duplicate or
// missing attributes, non-dense controller indices, or malformed counter
// values. For every snapshot s, ParseEDACDump(s.Dump()) reproduces s
// exactly (names may contain spaces; values run to end of line).
func ParseEDACDump(data []byte) (*EDACSnapshot, error) {
	type partial struct {
		rec  MCRecord
		seen map[string]bool
	}
	mcs := make(map[int]*partial)
	for ln, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		rest, ok := strings.CutPrefix(line, edacPrefix)
		if !ok {
			return nil, fmt.Errorf("fleet: edac dump line %d: path does not start with %s", ln+1, edacPrefix)
		}
		slash := strings.IndexByte(rest, '/')
		if slash < 0 {
			return nil, fmt.Errorf("fleet: edac dump line %d: missing attribute path", ln+1)
		}
		idx, err := strconv.Atoi(rest[:slash])
		if err != nil || idx < 0 {
			return nil, fmt.Errorf("fleet: edac dump line %d: bad controller index %q", ln+1, rest[:slash])
		}
		attrVal := rest[slash+1:]
		space := strings.IndexByte(attrVal, ' ')
		if space < 0 {
			return nil, fmt.Errorf("fleet: edac dump line %d: missing value", ln+1)
		}
		attr, val := attrVal[:space], attrVal[space+1:]
		p := mcs[idx]
		if p == nil {
			p = &partial{seen: make(map[string]bool, len(edacAttrs))}
			mcs[idx] = p
		}
		if p.seen[attr] {
			return nil, fmt.Errorf("fleet: edac dump line %d: duplicate attribute mc%d/%s", ln+1, idx, attr)
		}
		p.seen[attr] = true
		switch attr {
		case "mc_name":
			p.rec.Name = val
		case "size_mb", "seconds_since_reset", "ce_count", "ce_noinfo_count", "ue_count", "ue_noinfo_count":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fleet: edac dump line %d: mc%d/%s value %q is not a uint64", ln+1, idx, attr, val)
			}
			switch attr {
			case "size_mb":
				p.rec.SizeMB = n
			case "seconds_since_reset":
				p.rec.SecondsSinceReset = n
			case "ce_count":
				p.rec.Counters.CE = n
			case "ce_noinfo_count":
				p.rec.Counters.CENoInfo = n
			case "ue_count":
				p.rec.Counters.UE = n
			case "ue_noinfo_count":
				p.rec.Counters.UENoInfo = n
			}
		default:
			return nil, fmt.Errorf("fleet: edac dump line %d: unknown attribute %q", ln+1, attr)
		}
	}
	snap := &EDACSnapshot{MCs: make([]MCRecord, len(mcs))}
	for i := range snap.MCs {
		p := mcs[i]
		if p == nil {
			return nil, fmt.Errorf("fleet: edac dump: controller indices not dense (missing mc%d of %d)", i, len(mcs))
		}
		if len(p.seen) != len(edacAttrs) {
			for _, a := range edacAttrs {
				if !p.seen[a] {
					return nil, fmt.Errorf("fleet: edac dump: mc%d missing attribute %s", i, a)
				}
			}
		}
		snap.MCs[i] = p.rec
	}
	return snap, nil
}

// View is the live EDAC data source the /edac HTTP view serves. A running
// engine binds itself to the Options.View it was given; the handler then
// renders a fresh counter snapshot per request — mid-run numbers during a
// simulation, final numbers after it.
type View struct {
	mu sync.Mutex
	fn func() *EDACSnapshot
}

// NewView returns an unbound view (its handler answers 503 until a run
// binds it).
func NewView() *View { return &View{} }

func (v *View) bind(fn func() *EDACSnapshot) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.fn = fn
}

// Snapshot returns the current EDAC state, or nil when no run has bound
// the view yet.
func (v *View) Snapshot() *EDACSnapshot {
	v.mu.Lock()
	fn := v.fn
	v.mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// Handler serves the EDAC dump as text/plain — the payload an external
// EDAC consumer polls instead of walking a real host's sysfs.
func (v *View) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		snap := v.Snapshot()
		if snap == nil {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("no fleet running\n")) //nolint:errcheck // best-effort over HTTP
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(snap.Dump()) //nolint:errcheck // best-effort over HTTP
	})
}
