package obs

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// TestMuxHealthAndReadiness pins the probe contract: /healthz is
// unconditional liveness, /readyz reflects the supplied checks and flips
// to 503 (with the failing check's text) the moment one errors.
func TestMuxHealthAndReadiness(t *testing.T) {
	var draining atomic.Bool
	r := NewRegistry()
	srv := httptest.NewServer(NewMux(r, func() error {
		if draining.Load() {
			return errors.New("draining")
		}
		return nil
	}))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz while ready = %d", code)
	}
	draining.Store(true)
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("/readyz while draining = %d %q", code, body)
	}
	// Liveness is unaffected by readiness.
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz while draining = %d", code)
	}
}

// TestMuxReadyzNoChecks pins the zero-check default: always ready.
func TestMuxReadyzNoChecks(t *testing.T) {
	srv := httptest.NewServer(NewMux(NewRegistry()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d", resp.StatusCode)
	}
}

func TestMuxServesMetricsAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("campaign.trials_done").Add(42)
	r.Histogram("lat", []float64{1, 10}).Observe(3)
	srv := httptest.NewServer(NewMux(r))
	defer srv.Close()

	for _, path := range []string{"/metrics", "/debug/vars"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		var snap Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if snap.Counters["campaign.trials_done"] != 42 {
			t.Fatalf("%s: counters = %v", path, snap.Counters)
		}
		if snap.Histograms["lat"].Count != 1 {
			t.Fatalf("%s: histograms = %v", path, snap.Histograms)
		}
	}

	// pprof is mounted on the same mux (the -debug-addr contract).
	resp, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline: status %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/no-such-page")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: status %d, want 404", resp.StatusCode)
	}
}

// TestMuxViews: caller-supplied views mount at their paths and are linked
// from the index page (the xedfleet /edac contract).
func TestMuxViews(t *testing.T) {
	view := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("view body\n")) //nolint:errcheck
	})
	srv := httptest.NewServer(NewMuxViews(NewRegistry(), map[string]http.Handler{"/edac": view}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/edac")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "view body\n" {
		t.Fatalf("/edac = %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	index, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(index), `href="/edac"`) {
		t.Fatalf("index page does not link the view:\n%s", index)
	}

	// Built-ins still work alongside views.
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz with views = %d", resp.StatusCode)
	}
}

// TestMuxViewsRejectsBadPaths: reserved or malformed view paths panic at
// construction — a view silently shadowing /readyz would blind the load
// balancer probes.
func TestMuxViewsRejectsBadPaths(t *testing.T) {
	ok := http.HandlerFunc(func(http.ResponseWriter, *http.Request) {})
	cases := map[string]map[string]http.Handler{
		"reserved root":    {"/": ok},
		"reserved healthz": {"/healthz": ok},
		"reserved readyz":  {"/readyz": ok},
		"reserved metrics": {"/metrics": ok},
		"reserved pprof":   {"/debug/pprof/": ok},
		"no leading slash": {"edac": ok},
		"empty path":       {"": ok},
		"nil handler":      {"/edac": nil},
	}
	for name, views := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewMuxViews did not panic", name)
				}
			}()
			NewMuxViews(NewRegistry(), views)
		}()
	}
}
