package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestMuxServesMetricsAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("campaign.trials_done").Add(42)
	r.Histogram("lat", []float64{1, 10}).Observe(3)
	srv := httptest.NewServer(NewMux(r))
	defer srv.Close()

	for _, path := range []string{"/metrics", "/debug/vars"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		var snap Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if snap.Counters["campaign.trials_done"] != 42 {
			t.Fatalf("%s: counters = %v", path, snap.Counters)
		}
		if snap.Histograms["lat"].Count != 1 {
			t.Fatalf("%s: histograms = %v", path, snap.Histograms)
		}
	}

	// pprof is mounted on the same mux (the -debug-addr contract).
	resp, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline: status %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/no-such-page")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: status %d, want 404", resp.StatusCode)
	}
}
