package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("Counter is not get-or-create")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	if r.Gauge("g") != g {
		t.Fatal("Gauge is not get-or-create")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 2, 50, 1000} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	hs := snap.Histograms["h"]
	want := []uint64{2, 1, 1, 1} // <=1: {0.5, 1}; <=10: {2}; <=100: {50}; overflow: {1000}
	if len(hs.Counts) != len(want) {
		t.Fatalf("counts = %v", hs.Counts)
	}
	for i := range want {
		if hs.Counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", hs.Counts, want)
		}
	}
	if hs.Count != 5 {
		t.Fatalf("count = %d, want 5", hs.Count)
	}
	if math.Abs(hs.Sum-1053.5) > 1e-9 {
		t.Fatalf("sum = %v, want 1053.5", hs.Sum)
	}
	if math.Abs(hs.Mean()-1053.5/5) > 1e-9 {
		t.Fatalf("mean = %v", hs.Mean())
	}
}

// TestNilRegistryAndMetricsAreNoOps pins the off-switch contract: a nil
// registry hands out nil metrics and every operation on them is safe.
func TestNilRegistryAndMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", []float64{1})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(2)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

// TestConcurrentWriters exercises every metric kind from many goroutines
// while snapshots are taken; run under -race (CI does) this doubles as the
// data-race proof, and the final totals pin that no update was lost.
func TestConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const perWriter = 10_000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent snapshot reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				snap := r.Snapshot()
				for name, hs := range snap.Histograms {
					var sum uint64
					for _, n := range hs.Counts {
						sum += n
					}
					if sum != hs.Count {
						t.Errorf("histogram %s: Count %d != bucket sum %d", name, hs.Count, sum)
						return
					}
				}
			}
		}
	}()
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			c := r.Counter("ops")
			g := r.Gauge("level")
			h := r.Histogram("lat", []float64{10, 100, 1000})
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 2000))
			}
		}()
	}
	wgWriters := writers * perWriter
	writerWG.Wait()
	close(stop)
	wg.Wait()
	snap := r.Snapshot()
	if snap.Counters["ops"] != uint64(wgWriters) {
		t.Fatalf("ops = %d, want %d", snap.Counters["ops"], wgWriters)
	}
	if snap.Gauges["level"] != int64(wgWriters) {
		t.Fatalf("level = %d, want %d", snap.Gauges["level"], wgWriters)
	}
	if hs := snap.Histograms["lat"]; hs.Count != uint64(wgWriters) {
		t.Fatalf("lat count = %d, want %d", hs.Count, wgWriters)
	}
}

// TestSnapshotMonotone pins that counters never decrease across snapshots
// taken while writers run.
func TestSnapshotMonotone(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mono")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100_000; i++ {
			c.Inc()
		}
	}()
	var last uint64
	for i := 0; i < 1000; i++ {
		now := r.Snapshot().Counters["mono"]
		if now < last {
			t.Fatalf("counter went backwards: %d -> %d", last, now)
		}
		last = now
	}
	<-done
}

// TestUpdatesAllocationFree pins the hot-path contract: metric updates
// (and nil no-ops) never touch the heap.
func TestUpdatesAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1, 10, 100, 1000})
	var nilC *Counter
	var nilH *Histogram
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(3)
		h.Observe(42)
		nilC.Inc()
		nilH.Observe(42)
	}); allocs != 0 {
		t.Fatalf("metric updates allocate: %v allocs/op", allocs)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Gauge("b").Set(-2)
	r.Histogram("c", []float64{1, 2}).Observe(1.5)
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a"] != 3 || back.Gauges["b"] != -2 {
		t.Fatalf("round trip mangled snapshot: %+v", back)
	}
	hs := back.Histograms["c"]
	if hs.Count != 1 || len(hs.Counts) != 3 || hs.Counts[1] != 1 {
		t.Fatalf("round trip mangled histogram: %+v", hs)
	}
}
