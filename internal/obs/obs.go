// Package obs is a small, dependency-free metrics layer for watching
// long-running simulations live: lock-free atomic counters, gauges and
// fixed-bucket histograms behind a named registry with a consistent
// Snapshot().
//
// Two properties shape the design:
//
//   - Hot-path neutrality. Every metric update is a single atomic
//     operation (histograms add a bounds search), never an allocation, so
//     instrumentation can sit on the Monte-Carlo trial path and the
//     controller read path without moving the benchmarks. Instrumented
//     code resolves its metrics ONCE (a *Counter field, not a registry
//     lookup per event).
//
//   - Nil as off-switch. Every method is safe on a nil receiver: a nil
//     *Registry hands out nil metrics, and updating a nil metric is a
//     no-op. Instrumented code therefore carries no "is observability
//     enabled?" branches of its own — it updates unconditionally, and an
//     un-instrumented run pays one predictable nil check per event.
//
// Snapshots are taken concurrently with writers. Per-metric reads are
// atomic and monotone (a counter never appears to decrease across
// snapshots) and a histogram's bucket counts are internally consistent
// (Count is derived from the buckets), but a snapshot is not a global
// barrier: two metrics updated by the same event may be captured one
// event apart.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter discards updates.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current count; zero on a nil receiver.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (a level, not a rate). The zero
// value is ready to use; a nil *Gauge discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta. No-op on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Load returns the current value; zero on a nil receiver.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative-style histogram: bucket i counts
// observations v <= Bounds[i], with one implicit overflow bucket above the
// last bound. Buckets and the running sum are updated with atomic
// operations only; Observe never allocates. A nil *Histogram discards
// observations.
type Histogram struct {
	bounds  []float64 // sorted, immutable after construction
	buckets []atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{
		bounds:  bs,
		buckets: make([]atomic.Uint64, len(bs)+1),
	}
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose bound is >= v; len(bounds) is the overflow bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations; zero on a nil receiver.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values; zero on a nil receiver.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// HistogramSnapshot is one histogram's state at snapshot time. Counts has
// len(Bounds)+1 entries: Counts[i] holds observations <= Bounds[i], and the
// final entry is the overflow above the last bound. Count is always the sum
// of Counts, so the invariant holds even for snapshots taken mid-update.
type HistogramSnapshot struct {
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
}

// Mean returns the average observed value, or 0 with no observations.
func (s *HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Snapshot is one registry's state at a point in time, ready for JSON.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Registry is a named set of metrics. The zero value is NOT usable — use
// NewRegistry — but a nil *Registry is: it hands out nil metrics, turning
// every downstream update into a no-op, which is how instrumented code
// runs unobserved without branching.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (discard-everything) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (discard-everything) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (later calls reuse the existing buckets and
// ignore bounds). A nil registry returns a nil (discard-everything)
// histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot captures every registered metric. Safe to call concurrently
// with writers; see the package comment for the consistency contract. A
// nil registry yields an empty (but non-nil-mapped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Load()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Bounds: h.bounds, // immutable, shared
			Counts: make([]uint64, len(h.buckets)),
		}
		for i := range h.buckets {
			hs.Counts[i] = h.buckets[i].Load()
			hs.Count += hs.Counts[i]
		}
		hs.Sum = h.Sum()
		snap.Histograms[name] = hs
	}
	return snap
}
