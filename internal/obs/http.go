package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// NewMux returns the debug HTTP mux the -debug-addr CLI flags serve: the
// registry's JSON snapshot at /metrics (and the expvar-convention alias
// /debug/vars), plus the standard pprof handlers under /debug/pprof/, so a
// live campaign can be profiled and watched over one port.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	metrics := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot()) //nolint:errcheck // best-effort over HTTP
	}
	mux.HandleFunc("/metrics", metrics)
	mux.HandleFunc("/debug/vars", metrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(`<html><body><h1>xedsim debug</h1><ul>` + //nolint:errcheck
			`<li><a href="/metrics">/metrics</a></li>` +
			`<li><a href="/debug/pprof/">/debug/pprof/</a></li>` +
			`</ul></body></html>`))
	})
	return mux
}
