package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// NewMux returns the debug HTTP mux the -debug-addr CLI flags serve: the
// registry's JSON snapshot at /metrics (and the expvar-convention alias
// /debug/vars), the standard pprof handlers under /debug/pprof/, and
// liveness/readiness probes at /healthz and /readyz, so a live campaign —
// or a coordinator/worker service — can be probed, profiled and watched
// over one port.
//
// /healthz always answers 200 (the process is up and serving). /readyz
// answers 200 only while every supplied ready check returns nil; a failing
// check yields 503 with the error text, which is how a draining
// coordinator or a full job queue tells its load balancer to back off.
// With no checks, /readyz always answers 200.
func NewMux(r *Registry, ready ...func() error) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n")) //nolint:errcheck // best-effort over HTTP
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, check := range ready {
			if err := check(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				w.Write([]byte("not ready: " + err.Error() + "\n")) //nolint:errcheck
				return
			}
		}
		w.Write([]byte("ok\n")) //nolint:errcheck
	})
	metrics := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot()) //nolint:errcheck // best-effort over HTTP
	}
	mux.HandleFunc("/metrics", metrics)
	mux.HandleFunc("/debug/vars", metrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(`<html><body><h1>xedsim debug</h1><ul>` + //nolint:errcheck
			`<li><a href="/metrics">/metrics</a></li>` +
			`<li><a href="/debug/pprof/">/debug/pprof/</a></li>` +
			`</ul></body></html>`))
	})
	return mux
}
