package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
)

// NewMux returns the debug HTTP mux the -debug-addr CLI flags serve: the
// registry's JSON snapshot at /metrics (and the expvar-convention alias
// /debug/vars), the standard pprof handlers under /debug/pprof/, and
// liveness/readiness probes at /healthz and /readyz, so a live campaign —
// or a coordinator/worker service — can be probed, profiled and watched
// over one port.
//
// /healthz always answers 200 (the process is up and serving). /readyz
// answers 200 only while every supplied ready check returns nil; a failing
// check yields 503 with the error text, which is how a draining
// coordinator or a full job queue tells its load balancer to back off.
// With no checks, /readyz always answers 200.
func NewMux(r *Registry, ready ...func() error) *http.ServeMux {
	return NewMuxViews(r, nil, ready...)
}

// NewMuxViews is NewMux plus caller-supplied views: extra handlers mounted
// at their given paths (e.g. "/edac" serving a fleet's EDAC-sysfs-shaped
// counter dump) and linked from the index page, so domain-specific textual
// exports ride the same debug port as /metrics without the obs package
// knowing their shape. A view path must start with "/" and must not
// collide with the built-in endpoints; colliding views panic, since they
// would otherwise shadow the probes load balancers depend on.
func NewMuxViews(r *Registry, views map[string]http.Handler, ready ...func() error) *http.ServeMux {
	mux := http.NewServeMux()
	reserved := map[string]bool{
		"/": true, "/healthz": true, "/readyz": true,
		"/metrics": true, "/debug/vars": true, "/debug/pprof/": true,
	}
	viewPaths := make([]string, 0, len(views))
	for path, h := range views {
		if len(path) == 0 || path[0] != '/' || reserved[path] || h == nil {
			panic("obs: invalid or reserved view path " + path)
		}
		mux.Handle(path, h)
		viewPaths = append(viewPaths, path)
	}
	sort.Strings(viewPaths)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n")) //nolint:errcheck // best-effort over HTTP
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, check := range ready {
			if err := check(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				w.Write([]byte("not ready: " + err.Error() + "\n")) //nolint:errcheck
				return
			}
		}
		w.Write([]byte("ok\n")) //nolint:errcheck
	})
	metrics := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot()) //nolint:errcheck // best-effort over HTTP
	}
	mux.HandleFunc("/metrics", metrics)
	mux.HandleFunc("/debug/vars", metrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		var links strings.Builder
		links.WriteString(`<li><a href="/metrics">/metrics</a></li>`)
		for _, p := range viewPaths {
			links.WriteString(`<li><a href="` + p + `">` + p + `</a></li>`)
		}
		links.WriteString(`<li><a href="/debug/pprof/">/debug/pprof/</a></li>`)
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(`<html><body><h1>xedsim debug</h1><ul>` + //nolint:errcheck
			links.String() + `</ul></body></html>`))
	})
	return mux
}
