package faultsim

import "math"

// WilsonInterval returns the 95% Wilson score interval for a binomial
// proportion with k successes in n trials. Unlike the normal (Wald)
// interval it stays inside [0, 1] and behaves sensibly at the extremes —
// exactly the regime of a young Monte-Carlo campaign, where a scheme has a
// handful of failures out of millions of trials and a live progress line
// still wants honest error bars. n = 0 returns the vacuous (0, 1).
func WilsonInterval(k, n uint64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.9599639845400545 // Phi^-1(0.975)
	nf := float64(n)
	p := float64(k) / nf
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
