package faultsim

import (
	"math"
	"testing"
)

func TestWilsonInterval(t *testing.T) {
	// Zero trials: vacuous full interval.
	if lo, hi := WilsonInterval(0, 0); lo != 0 || hi != 1 {
		t.Fatalf("n=0: (%v, %v)", lo, hi)
	}
	// Textbook value: 10/100 → approximately (0.0552, 0.1744).
	lo, hi := WilsonInterval(10, 100)
	if math.Abs(lo-0.0552) > 5e-4 || math.Abs(hi-0.1744) > 5e-4 {
		t.Fatalf("10/100: (%v, %v), want ≈(0.0552, 0.1744)", lo, hi)
	}
	// Extremes stay inside [0, 1] and keep honest width: zero successes
	// still admits nonzero probability, certainty is never claimed.
	lo, hi = WilsonInterval(0, 1_000_000)
	if lo > 1e-12 || hi <= 0 || hi > 1e-5 {
		t.Fatalf("0/1e6: (%v, %v)", lo, hi)
	}
	lo, hi = WilsonInterval(1_000_000, 1_000_000)
	if hi < 1-1e-12 || hi > 1 || lo < 1-1e-5 || lo >= hi {
		t.Fatalf("1e6/1e6: (%v, %v)", lo, hi)
	}
	// The interval brackets the point estimate and narrows with n.
	lo1, hi1 := WilsonInterval(50, 1000)
	lo2, hi2 := WilsonInterval(5000, 100_000)
	if lo1 > 0.05 || hi1 < 0.05 || lo2 > 0.05 || hi2 < 0.05 {
		t.Fatal("interval does not bracket p = 0.05")
	}
	if hi2-lo2 >= hi1-lo1 {
		t.Fatalf("interval did not narrow: n=1000 width %v, n=100000 width %v", hi1-lo1, hi2-lo2)
	}
}
