package faultsim

import (
	"context"
	"math"
	"math/bits"
	"reflect"
	"testing"

	"xedsim/internal/dram"
	"xedsim/internal/obs"
	"xedsim/internal/simrand"
)

// refBoundedColumn reimplements IntnSampler.Fill's canonical order with
// plain scalar code and locally derived mask/Lemire constants: one bulk
// word column, then per-index acceptance with redraws in ascending order.
func refBoundedColumn(rng *simrand.Source, count, n int) []int32 {
	words := make([]uint64, count)
	for i := range words {
		words[i] = rng.Uint64()
	}
	dst := make([]int32, count)
	un := uint64(n)
	if un&(un-1) == 0 {
		mask := un - 1
		for i, v := range words {
			dst[i] = int32(v & mask)
		}
		return dst
	}
	threshold := -un % un
	for i, v := range words {
		for {
			hi, lo := bits.Mul64(v, un)
			if lo >= threshold {
				dst[i] = int32(hi)
				break
			}
			v = rng.Uint64()
		}
	}
	return dst
}

// referenceBatchTrials is the differential-fuzz reference for the batch
// generator: it reproduces the canonical batch draw order (documented on
// batchGenerator.plan) with straightforward scalar loops and simrand
// primitives that are themselves unit-tested, then packs records through the
// shared emitPlaced. Any reordering or off-by-one in the optimised SoA
// plan/pack path shows up as a record-level mismatch.
func referenceBatchTrials(cfg *Config, n int, seed uint64) [][]FaultRecord {
	rng := simrand.New(seed)
	g := newGenerator(cfg)
	out := make([][]FaultRecord, n)
	if g.totalMean <= 0 {
		return out
	}
	aging := cfg.Aging
	mean := g.totalMean
	if aging.enabled() {
		mean *= aging.Peak()
	}
	ps := simrand.NewPoissonSampler(mean)
	tp := simrand.NewTruncPoisson(mean)

	// 1. Arrival runs: geometric zero-run, then zero-truncated count —
	// stopping without a count draw once the run covers the rest of the
	// chunk.
	type arrival struct{ pos, count int }
	var plan []arrival
	remaining := n
	pos := -1
	for remaining > 0 {
		skip := ps.SkipZeros(rng)
		if skip >= remaining {
			break
		}
		pos += skip + 1
		plan = append(plan, arrival{pos, tp.Sample(rng)})
		remaining -= skip + 1
	}

	// 2. Columns. Under aging: candidate-onset column, thinning column,
	// per-run compaction. Then the class-uniform column, the onset column
	// (flat only), and the three geometry columns.
	var onsets []float64
	var positions, counts []int
	if aging.enabled() {
		cand := 0
		for _, p := range plan {
			cand += p.count
		}
		xs := make([]float64, cand)
		for i := range xs {
			xs[i] = rng.Float64()
		}
		thins := make([]float64, cand)
		for i := range thins {
			thins[i] = rng.Float64()
		}
		peak := aging.Peak()
		ci := 0
		for _, p := range plan {
			kept := 0
			for j := 0; j < p.count; j++ {
				if thins[ci] < aging.Multiplier(xs[ci])/peak {
					onsets = append(onsets, xs[ci])
					kept++
				}
				ci++
			}
			if kept > 0 {
				positions = append(positions, p.pos)
				counts = append(counts, kept)
			}
		}
	} else {
		for _, p := range plan {
			positions = append(positions, p.pos)
			counts = append(counts, p.count)
		}
	}
	records := 0
	for _, c := range counts {
		records += c
	}
	classes := make([]int, records)
	for i := range classes {
		classes[i] = g.classSamp.Lookup(rng.Float64())
	}
	if !aging.enabled() {
		onsets = make([]float64, records)
		for i := range onsets {
			onsets[i] = rng.Float64()
		}
	}
	chCol := refBoundedColumn(rng, records, cfg.Channels)
	rkCol := refBoundedColumn(rng, records, cfg.RanksPerChannel)
	chipCol := refBoundedColumn(rng, records, cfg.ChipsPerRank)

	// 3. Pack in trial order. Conditional per-record draws (ranges, silent
	// words, escalation, multi-rank expansion) live in emitPlaced, which is
	// shared by the scalar generator and covered by its own differentials.
	ri := 0
	for ti, p := range positions {
		var buf []FaultRecord
		for j := 0; j < counts[ti]; j++ {
			cls := g.classes[classes[ri]]
			buf = g.emitPlaced(rng, buf, cls, onsets[ri]*cfg.LifetimeHours,
				int(chCol[ri]), int(rkCol[ri]), int(chipCol[ri]))
			ri++
		}
		out[p] = buf
	}
	return out
}

func shapedConfig(t testing.TB, shape, inflateFactor uint8, aging bool) (Config, bool) {
	cfg := DefaultConfig()
	if shape&1 != 0 {
		cfg.ChipsPerRank = 18
	}
	if shape&2 != 0 {
		cfg.OnDie = false
	}
	if shape&4 != 0 {
		cfg.ScalingRate = 1e-4
	}
	if shape&8 != 0 {
		cfg.RequireAddressOverlap = true
	}
	if shape&16 != 0 {
		cfg.SilentWordFraction = 0.5
	}
	cfg.Channels = 1 + int(shape>>5&3)
	if inflateFactor > 0 {
		fits := make(FITTable, len(cfg.FITs))
		copy(fits, cfg.FITs)
		for i := range fits {
			fits[i].Rate *= FIT(inflateFactor)
		}
		cfg.FITs = fits
	}
	if aging {
		cfg.Aging = BathtubAging()
	}
	if err := cfg.Validate(); err != nil {
		return cfg, false
	}
	return cfg, true
}

func diffBatchVsReference(t *testing.T, cfg Config, trials int, seed uint64) {
	t.Helper()
	tr, err := CaptureTraceGen(cfg, trials, seed, GenBatch)
	if err != nil {
		t.Fatalf("CaptureTraceGen: %v", err)
	}
	want := referenceBatchTrials(&cfg, trials, seed)
	for i := range want {
		if !reflect.DeepEqual(tr.Trials[i], want[i]) {
			t.Fatalf("seed %d trial %d: batch generator\n%+v\nreference\n%+v",
				seed, i, tr.Trials[i], want[i])
		}
	}
}

func TestCaptureTraceGenMatchesReference(t *testing.T) {
	base := DefaultConfig()
	inflated := base
	inflated.FITs = make(FITTable, len(base.FITs))
	copy(inflated.FITs, base.FITs)
	for i := range inflated.FITs {
		inflated.FITs[i].Rate *= 100
	}
	agingCfg := inflated
	agingCfg.Aging = BathtubAging()
	x4 := inflated
	x4.ChipsPerRank = 18
	x4.Channels = 3
	noDie := inflated
	noDie.OnDie = false
	scaling := inflated
	scaling.ScalingRate = 1e-4
	scaling.SilentWordFraction = 0.5
	overlap := inflated
	overlap.RequireAddressOverlap = true
	quiet := base
	quiet.FITs = FITTable{{Gran: dram.GranBit, Transient: true, Rate: 0}}
	chipOnly := base
	chipOnly.FITs = FITTable{{Gran: dram.GranChip, Transient: false, Rate: 500}}
	chipOnly.RanksPerChannel = 3

	for name, cfg := range map[string]Config{
		"default": base, "inflated": inflated, "aging": agingCfg, "x4": x4,
		"no-ondie": noDie, "scaling": scaling, "overlap": overlap,
		"zero-rate": quiet, "multi-rank": chipOnly,
	} {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				diffBatchVsReference(t, cfg, 2000, seed*7919)
			}
		})
	}
}

func TestCaptureTraceGenScalarDelegates(t *testing.T) {
	cfg := DefaultConfig()
	want, err := CaptureTrace(cfg, 500, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, gen := range []Generator{"", GenScalar} {
		got, err := CaptureTraceGen(cfg, 500, 11, gen)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Trials, want.Trials) {
			t.Fatalf("gen=%q: CaptureTraceGen diverged from CaptureTrace", gen)
		}
	}
	if _, err := CaptureTraceGen(cfg, 500, 11, "warp"); err == nil {
		t.Fatal("unknown generator accepted")
	}
	if _, err := CaptureTraceGen(cfg, 0, 11, GenBatch); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestParseGenerator(t *testing.T) {
	for in, want := range map[string]Generator{
		"": GenScalar, "scalar": GenScalar, "batch": GenBatch,
	} {
		got, err := ParseGenerator(in)
		if err != nil || got != want {
			t.Fatalf("ParseGenerator(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseGenerator("vectorized"); err == nil {
		t.Fatal("unknown generator name accepted")
	}
}

// FuzzBatchGenVsScalar is the batch generator's differential fuzzer, the
// generation-side sibling of FuzzLaneVsIndexedEvaluator: arbitrary
// (seed, config-shape, FIT inflation, trial-count, aging) inputs drive the
// SoA plan/pack path and its output must match, record for record, the
// scalar-primitive reference that spells out the canonical batch draw
// order. The batch stream is deliberately not bit-identical to the scalar
// generator's (draw order differs); exact distribution is proven separately
// by the law-level tests and the conformance differential.
func FuzzBatchGenVsScalar(f *testing.F) {
	f.Add(uint64(42), uint8(0), uint8(0), uint8(1), false)
	f.Add(uint64(99), uint8(0xff), uint8(200), uint8(64), false)
	f.Add(uint64(7), uint8(0b10101), uint8(120), uint8(200), true)
	f.Add(uint64(3), uint8(0b00110), uint8(150), uint8(17), true)
	f.Add(uint64(1234), uint8(0b01000), uint8(80), uint8(255), false)
	f.Fuzz(func(t *testing.T, seed uint64, shape, inflateFactor, nTrials uint8, aging bool) {
		if nTrials == 0 {
			t.Skip()
		}
		cfg, ok := shapedConfig(t, shape, inflateFactor, aging)
		if !ok {
			t.Skip()
		}
		diffBatchVsReference(t, cfg, int(nTrials), seed)
	})
}

// TestBatchCampaignEngineAndWorkerInvariance pins the batch determinism
// contract: for fixed (cfg, Trials, Seed, ChunkSize, Gen=batch) the report
// is bit-identical across judging engines (the lane fast path, the lane
// full path via reference-capable schemes is covered elsewhere, the indexed
// scalar path, the O(n²) reference) and across worker counts.
func TestBatchCampaignEngineAndWorkerInvariance(t *testing.T) {
	cfg := DefaultConfig()
	schemes := AllSchemes()
	var want *Report
	for _, tc := range []struct {
		engine  Engine
		workers int
	}{
		{EngineIndexed, 1}, {EngineIndexed, 4}, {EngineLanes, 1},
		{EngineLanes, 16}, {EngineReference, 4},
	} {
		opts := campaignTestOpts()
		opts.Gen = GenBatch
		opts.Engine = tc.engine
		opts.Workers = tc.workers
		rep := mustCampaign(t, context.Background(), cfg, schemes, opts)
		if rep.Trials != uint64(opts.Trials) {
			t.Fatalf("engine=%s workers=%d: tallied %d of %d trials",
				tc.engine, tc.workers, rep.Trials, opts.Trials)
		}
		if want == nil {
			want = rep
			continue
		}
		if !reflect.DeepEqual(rep.Results, want.Results) {
			t.Fatalf("engine=%s workers=%d diverged:\n%+v\nvs\n%+v",
				tc.engine, tc.workers, rep.Results, want.Results)
		}
	}
}

// TestBatchVsScalarCampaignLaw: the two generation modes draw different
// streams, so their tallies differ — but only within Monte-Carlo noise.
// A per-scheme 6-sigma gate over an inflated-FIT campaign catches any
// systematic distributional skew in the batch plan.
func TestBatchVsScalarCampaignLaw(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FITs = make(FITTable, len(DefaultConfig().FITs))
	copy(cfg.FITs, DefaultConfig().FITs)
	for i := range cfg.FITs {
		cfg.FITs[i].Rate *= 100
	}
	schemes := AllSchemes()
	opts := CampaignOptions{Trials: 100_000, Seed: 424242, ChunkSize: 4096,
		Engine: EngineLanes, Workers: 4}
	scalar := mustCampaign(t, context.Background(), cfg, schemes, opts)
	opts.Gen = GenBatch
	batch := mustCampaign(t, context.Background(), cfg, schemes, opts)
	for i := range schemes {
		a, b := scalar.Results[i], batch.Results[i]
		for _, v := range []struct {
			name     string
			sa, sb   uint64
		}{
			{"failures", a.Failures, b.Failures},
			{"dues", a.DUEs, b.DUEs},
			{"sdcs", a.SDCs, b.SDCs},
		} {
			fa, fb := float64(v.sa), float64(v.sb)
			if tol := 6*math.Sqrt(fa+fb+10) + 1; math.Abs(fa-fb) > tol {
				t.Errorf("%s %s: scalar %d vs batch %d (tol %.1f)",
					a.SchemeName, v.name, v.sa, v.sb, tol)
			}
		}
	}
}

func TestCampaignHashCoversGenerator(t *testing.T) {
	cfg := DefaultConfig()
	schemes := AllSchemes()
	opts := campaignTestOpts()
	unset, err := CampaignHash(cfg, schemes, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Gen = GenScalar
	scalar, err := CampaignHash(cfg, schemes, opts)
	if err != nil {
		t.Fatal(err)
	}
	if scalar != unset {
		t.Fatal("explicit scalar generator changed the campaign hash; old checkpoints would be orphaned")
	}
	opts.Gen = GenBatch
	batch, err := CampaignHash(cfg, schemes, opts)
	if err != nil {
		t.Fatal(err)
	}
	if batch == unset {
		t.Fatal("batch generator not covered by the campaign hash; a scalar checkpoint could resume a batch run")
	}
}

// TestBatchCampaignCheckpointResume: a batch campaign interrupted mid-run
// resumes to the bit-identical report of an uninterrupted one — the plan is
// a pure function of the chunk substream, so re-planning a chunk after
// resume regenerates exactly the trials the lost worker would have judged.
func TestBatchCampaignCheckpointResume(t *testing.T) {
	cfg := DefaultConfig()
	schemes := AllSchemes()
	opts := campaignTestOpts()
	opts.Gen = GenBatch
	opts.Engine = EngineLanes
	full := mustCampaign(t, context.Background(), cfg, schemes, opts)

	path := t.TempDir() + "/batch.ckpt"
	ctx, cancel := context.WithCancel(context.Background())
	iopts := opts
	iopts.Workers = 4
	iopts.CheckpointPath = path
	iopts.CheckpointInterval = 1 // nanosecond: snapshot at every merge
	iopts.OnChunk = func(done, total int) {
		if done >= total/3 {
			cancel()
		}
	}
	rep, err := RunCampaign(ctx, cfg, schemes, iopts)
	cancel()
	if err == nil && rep.Trials >= rep.Requested {
		t.Skip("cancel raced ahead of the workers; nothing to resume")
	}

	ropts := iopts
	ropts.OnChunk = nil
	ropts.Resume = true
	resumed := mustCampaign(t, context.Background(), cfg, schemes, ropts)
	if !reflect.DeepEqual(resumed.Results, full.Results) {
		t.Fatalf("resumed batch campaign diverged:\n%+v\nvs\n%+v", resumed.Results, full.Results)
	}
}

// TestBatchPlanZeroAllocs pins the steady-state allocation contract of the
// plan/pack loop with metrics attached: after warm-up on larger chunks
// (so every reused column has seen its high-water mark), planning and
// emitting a chunk allocates nothing.
func TestBatchPlanZeroAllocs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FITs = make(FITTable, len(DefaultConfig().FITs))
	copy(cfg.FITs, DefaultConfig().FITs)
	for i := range cfg.FITs {
		cfg.FITs[i].Rate *= 50
	}
	bg := newBatchGenerator(newGenerator(&cfg))
	bg.setMetrics(obs.NewRegistry())
	rng := simrand.New(7)
	var buf []FaultRecord
	emitChunk := func(n int) {
		bg.plan(rng, n)
		for i := 0; i < bg.emitted(); i++ {
			buf = bg.emitTrial(rng, i, buf[:0])
		}
	}
	for i := 0; i < 50; i++ {
		emitChunk(4096) // 2x the measured chunk: columns reach their high-water mark
	}
	if allocs := testing.AllocsPerRun(100, func() { emitChunk(2048) }); allocs != 0 {
		t.Fatalf("plan+emit allocated %v times per chunk, want 0", allocs)
	}
}

func TestBatchGenMetricsShape(t *testing.T) {
	cfg := DefaultConfig()
	reg := obs.NewRegistry()
	opts := campaignTestOpts()
	opts.Gen = GenBatch
	opts.Engine = EngineLanes
	opts.Metrics = reg
	rep := mustCampaign(t, context.Background(), cfg, AllSchemes(), opts)
	snap := reg.Snapshot()
	wantChunks := uint64((opts.Trials + opts.ChunkSize - 1) / opts.ChunkSize)
	if got := snap.Counters["faultsim.gen.batch_refills"]; got != wantChunks {
		t.Fatalf("batch_refills = %d, want %d (one plan per chunk)", got, wantChunks)
	}
	h := snap.Histograms["faultsim.gen.records_per_trial"]
	if h.Count == 0 {
		t.Fatal("records_per_trial histogram empty")
	}
	if s := snap.Histograms["faultsim.gen.skip_run"]; s.Count != h.Count {
		t.Fatalf("skip_run count %d != records_per_trial count %d (one run per emitted trial)", s.Count, h.Count)
	}
	if rep.Trials != uint64(opts.Trials) {
		t.Fatalf("tallied %d of %d trials", rep.Trials, opts.Trials)
	}
}

// TestEmitAtMultiRankExpansion is the boundary table test for the
// multi-rank (GranChip) expansion: for every rank count the event yields
// exactly RanksPerChannel records that agree on everything but Rank, carry
// ranks 0..R-1 in order, and share one EventID.
func TestEmitAtMultiRankExpansion(t *testing.T) {
	for _, ranks := range []int{1, 2, 3, 4} {
		for _, transient := range []bool{false, true} {
			cfg := DefaultConfig()
			cfg.RanksPerChannel = ranks
			g := newGenerator(&cfg) // withRanges=true: Range must replicate too
			cls := ClassRate{Gran: dram.GranChip, Transient: transient, Rate: 1}
			rng := simrand.New(uint64(ranks)*2 + 1)
			buf := g.emitAt(rng, nil, cls, 1234.5)
			if len(buf) != ranks {
				t.Fatalf("ranks=%d transient=%v: expansion yielded %d records", ranks, transient, len(buf))
			}
			for i := range buf {
				if buf[i].Rank != i {
					t.Fatalf("ranks=%d: record %d has Rank %d", ranks, i, buf[i].Rank)
				}
				norm := buf[i]
				norm.Rank = buf[0].Rank
				if norm != buf[0] {
					t.Fatalf("ranks=%d: record %d differs beyond Rank:\n%+v\nvs\n%+v", ranks, i, buf[i], buf[0])
				}
			}
			if buf[0].EventID == 0 {
				t.Fatalf("ranks=%d: multi-rank record missing EventID", ranks)
			}
		}
	}
}

// TestBatchEventIDChunkReset: EventIDs only group records within a trial,
// and the campaign rewinds the counter at every chunk boundary so chunks
// stay pure functions of their substream. The batch pack loop must preserve
// both properties: IDs restart from 1 after resetEvents, distinct events in
// one chunk get distinct IDs, and each event's records stay contiguous with
// rank 0..R-1 grouping.
func TestBatchEventIDChunkReset(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RanksPerChannel = 3
	cfg.FITs = FITTable{{Gran: dram.GranChip, Transient: false, Rate: 2000}}
	g := newGenerator(&cfg)
	bg := newBatchGenerator(g)
	rng := simrand.New(0)
	var buf []FaultRecord
	for chunk := uint64(0); chunk < 4; chunk++ {
		rng.SeedStream(42, chunk)
		g.resetEvents()
		bg.plan(rng, 512)
		if bg.emitted() == 0 {
			t.Fatalf("chunk %d: no multi-rank events at rate 2000", chunk)
		}
		next := uint64(1)
		for i := 0; i < bg.emitted(); i++ {
			buf = bg.emitTrial(rng, i, buf[:0])
			if len(buf)%cfg.RanksPerChannel != 0 {
				t.Fatalf("chunk %d trial %d: %d records not a multiple of %d ranks", chunk, i, len(buf), cfg.RanksPerChannel)
			}
			for r := 0; r < len(buf); r += cfg.RanksPerChannel {
				for k := 0; k < cfg.RanksPerChannel; k++ {
					rec := buf[r+k]
					if rec.EventID != next {
						t.Fatalf("chunk %d trial %d: EventID %d, want %d (counter must restart per chunk)", chunk, i, rec.EventID, next)
					}
					if rec.Rank != k {
						t.Fatalf("chunk %d trial %d event %d: rank %d at offset %d", chunk, i, next, rec.Rank, k)
					}
				}
				next++
			}
		}
	}
}
