package faultsim

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"xedsim/internal/dram"
	"xedsim/internal/obs"
	"xedsim/internal/simrand"
)

// denseConfig inflates the Table I rates so multi-record trials — the
// lanes the mask pass must route to the scalar probe — are common enough
// to exercise at small trial counts.
func denseConfig(factor FIT) Config {
	cfg := DefaultConfig()
	fits := make(FITTable, len(cfg.FITs))
	copy(fits, cfg.FITs)
	for i := range fits {
		fits[i].Rate *= factor
	}
	cfg.FITs = fits
	return cfg
}

func TestParseEngine(t *testing.T) {
	for s, want := range map[string]Engine{
		"": EngineIndexed, "indexed": EngineIndexed,
		"lanes": EngineLanes, "reference": EngineReference,
	} {
		got, err := ParseEngine(s)
		if err != nil || got != want {
			t.Fatalf("ParseEngine(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseEngine("warp"); err == nil {
		t.Fatal("ParseEngine accepted an unknown engine")
	}
	if _, err := RunCampaign(context.Background(), DefaultConfig(), AllSchemes(),
		CampaignOptions{Trials: 10, Engine: "warp"}); err == nil {
		t.Fatal("RunCampaign accepted an unknown engine")
	}
}

// TestLaneEngineBoundaries pins the lane-packing arithmetic at the word
// boundaries: trial counts around one lane word, chunks smaller than a
// word (so every batch is partial), and chunks that split words unevenly.
// Every engine must produce bit-identical Results.
func TestLaneEngineBoundaries(t *testing.T) {
	cfg := denseConfig(150)
	schemes := AllSchemes()
	for _, trials := range []int{1, 63, 64, 65, 130} {
		for _, chunk := range []int{1, 7, 64, 4096} {
			base := CampaignOptions{Trials: trials, Seed: 7, ChunkSize: chunk, Workers: 2}
			var want *Report
			for _, engine := range []Engine{EngineIndexed, EngineLanes, EngineReference} {
				opts := base
				opts.Engine = engine
				rep := mustCampaign(t, context.Background(), cfg, schemes, opts)
				if engine == EngineIndexed {
					want = rep
					continue
				}
				if !reflect.DeepEqual(rep.Results, want.Results) {
					t.Fatalf("trials=%d chunk=%d engine=%s diverged from indexed:\n%+v\nvs\n%+v",
						trials, chunk, engine, rep.Results, want.Results)
				}
			}
		}
	}
}

// TestLaneEngineEquivalenceSweep runs a larger campaign across the config
// corners the lane masks special-case: silent word faults (overweight
// lanes), scaling escalation, x4 organisations, the address-overlap
// criterion, and the scaling-fatal early-out.
func TestLaneEngineEquivalenceSweep(t *testing.T) {
	mutations := map[string]func(*Config){
		"tableI":       func(c *Config) {},
		"silent-heavy": func(c *Config) { c.SilentWordFraction = 0.5 },
		"x4":           func(c *Config) { c.ChipsPerRank = 18 },
		"scaling":      func(c *Config) { c.ScalingRate = 1e-4 },
		"overlap":      func(c *Config) { c.RequireAddressOverlap = true },
		"noOnDie":      func(c *Config) { c.OnDie = false },
		"fatal":        func(c *Config) { c.OnDie = false; c.ScalingRate = 1e-4 },
		"aging":        func(c *Config) { c.Aging = BathtubAging() },
	}
	for name, mutate := range mutations {
		cfg := denseConfig(80)
		mutate(&cfg)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		opts := CampaignOptions{Trials: 30_000, Seed: 11, ChunkSize: 512, Workers: 4}
		indexed := mustCampaign(t, context.Background(), cfg, AllSchemes(), opts)
		opts.Engine = EngineLanes
		lanes := mustCampaign(t, context.Background(), cfg, AllSchemes(), opts)
		if !reflect.DeepEqual(indexed.Results, lanes.Results) {
			t.Fatalf("%s: lane engine diverged:\n%+v\nvs\n%+v", name, lanes.Results, indexed.Results)
		}
		if indexed.Trials != lanes.Trials {
			t.Fatalf("%s: trial counts differ: %d vs %d", name, indexed.Trials, lanes.Trials)
		}
	}
}

// chipParityScheme builds a domainScheme with an off-menu domain mapping
// (chips split by parity) and no domainTag: the lane engine must detect
// the custom mapping and stay exact through the conservative
// whole-trial-as-one-domain path.
func chipParityScheme(capacity int) Scheme {
	return &domainScheme{
		name:     "chip-parity",
		domainOf: func(cfg *Config, r *FaultRecord) int { return r.Chip % 2 },
		capacity: capacity,
		weight:   visibleWeight,
		kind:     xedKind,
	}
}

func TestLaneEngineCustomDomainAndHeavyWeights(t *testing.T) {
	cfg := denseConfig(200)
	heavy := func(w int) weightFunc {
		return func(cfg *Config, r *FaultRecord) int {
			if visibleWeight(cfg, r) == 0 {
				return 0
			}
			return w
		}
	}
	schemes := []Scheme{
		NewXED(),
		chipParityScheme(1),
		// Weights straddling the scalar probe's int8 envelope: 130 forces
		// its reference fallback inside a lane probe.
		NewRankErasureScheme("Heavy120", 200, heavy(120)),
		NewRankErasureScheme("Heavy130", 200, heavy(130)),
	}
	opts := CampaignOptions{Trials: 20_000, Seed: 3, ChunkSize: 512, Workers: 2}
	indexed := mustCampaign(t, context.Background(), cfg, schemes, opts)
	opts.Engine = EngineLanes
	lanes := mustCampaign(t, context.Background(), cfg, schemes, opts)
	if !reflect.DeepEqual(indexed.Results, lanes.Results) {
		t.Fatalf("lane engine diverged on custom/heavy schemes:\n%+v\nvs\n%+v",
			lanes.Results, indexed.Results)
	}
}

// TestLaneEnginePanicIsolation: a panicking opaque scheme voids exactly
// the same trials under the lane engine as under the indexed one, and the
// surviving tallies stay bit-identical.
func TestLaneEnginePanicIsolation(t *testing.T) {
	cfg := DefaultConfig()
	schemes := []Scheme{NewXED(), &panicScheme{minFaults: 2}}
	opts := campaignTestOpts()
	opts.ErrorBudget = 1 << 20
	indexed, err := RunCampaign(context.Background(), cfg, schemes, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Engine = EngineLanes
	lanes, err := RunCampaign(context.Background(), cfg, schemes, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(indexed.TrialErrors) == 0 {
		t.Fatal("stub never panicked; weaken minFaults")
	}
	if !reflect.DeepEqual(indexed.Results, lanes.Results) {
		t.Fatalf("results diverged under panics:\n%+v\nvs\n%+v", lanes.Results, indexed.Results)
	}
	if len(indexed.TrialErrors) != len(lanes.TrialErrors) {
		t.Fatalf("%d trial errors under lanes vs %d under indexed",
			len(lanes.TrialErrors), len(indexed.TrialErrors))
	}
	for i := range indexed.TrialErrors {
		a, b := &lanes.TrialErrors[i], &indexed.TrialErrors[i]
		if a.Trial != b.Trial || a.Chunk != b.Chunk || a.RNGState != b.RNGState ||
			a.PanicValue != b.PanicValue || !reflect.DeepEqual(a.Faults, b.Faults) {
			t.Fatalf("trial error %d differs:\n%+v\nvs\n%+v", i, a, b)
		}
	}
	// The lane engine honours the error budget through the same merge path.
	opts.ErrorBudget = -1
	if _, err := RunCampaign(context.Background(), cfg, schemes, opts); !errors.Is(err, ErrErrorBudgetExceeded) {
		t.Fatalf("err = %v, want ErrErrorBudgetExceeded", err)
	}
}

// TestLaneEngineCrossEngineResume: the engine is excluded from the
// checkpoint config hash, so a campaign interrupted under the indexed
// engine resumes under the lane engine — and still equals an
// uninterrupted run bit for bit.
func TestLaneEngineCrossEngineResume(t *testing.T) {
	cfg := DefaultConfig()
	schemes := AllSchemes()
	full := mustCampaign(t, context.Background(), cfg, schemes, campaignTestOpts())

	path := filepath.Join(t.TempDir(), "campaign.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	opts := campaignTestOpts()
	opts.Workers = 2
	opts.CheckpointPath = path
	opts.CheckpointInterval = time.Nanosecond
	opts.OnChunk = func(done, total int) {
		if done >= total/2 {
			cancel()
		}
	}
	rep, err := RunCampaign(ctx, cfg, schemes, opts)
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v", err)
	}
	if rep.Trials >= rep.Requested {
		t.Skip("cancel raced ahead of the workers; nothing to resume")
	}

	resumed := opts
	resumed.OnChunk = nil
	resumed.Resume = true
	resumed.Engine = EngineLanes
	rep2 := mustCampaign(t, context.Background(), cfg, schemes, resumed)
	if rep2.Trials != full.Trials || !reflect.DeepEqual(rep2.Results, full.Results) {
		t.Fatalf("cross-engine resume diverged from uninterrupted run:\n%+v\nvs\n%+v",
			rep2.Results, full.Results)
	}
}

// TestLaneEvaluatorDirect drives the LaneEvaluator through its public
// packing API on crafted streams: a compound rank failure, an overweight
// silent fault, and an empty lane, all in one batch.
func TestLaneEvaluatorDirect(t *testing.T) {
	cfg := DefaultConfig()
	schemes := AllSchemes()
	ev := NewEvaluator(&cfg, schemes)
	lv := NewLaneEvaluator(ev)

	mk := func(ch, rank, chip int, start, end float64, silent, transient bool) FaultRecord {
		return FaultRecord{Channel: ch, Rank: rank, Chip: chip, Start: start, End: end,
			Gran: 1 /* GranWord */, Silent: silent, Transient: transient}
	}
	trials := [][]FaultRecord{
		nil, // empty lane
		{mk(0, 0, 1, 100, 61320, false, false)},                                         // lone visible fault
		{mk(0, 0, 1, 100, 61320, false, false), mk(0, 0, 3, 200, 61320, false, false)},  // two chips, one rank
		{mk(1, 1, 2, 50, 61320, true, true)},                                            // silent transient word: XED DUE
		{mk(2, 0, 0, 10, 61320, false, false), mk(3, 0, 0, 10, 61320, false, false)},    // distinct channels
		{mk(0, 0, 5, 500, 600, false, true), mk(0, 1, 5, 550, 61320, false, false)},     // cross-rank, same channel
	}
	var b LaneBatch
	var st simrand.State
	for i, faults := range trials {
		b.Add(i, st, faults)
	}
	lv.EvaluateBatch(&b)
	if b.Voided() != 0 {
		t.Fatalf("unexpected voided lanes %#x", b.Voided())
	}
	var want, got []TrialOutcome
	for L, faults := range trials {
		want = ev.EvaluateInto(faults, want)
		got = lv.AppendLaneOutcomes(L, got)
		for s := range schemes {
			if math.Float64bits(got[s].FailTime) != math.Float64bits(want[s].FailTime) || got[s].Kind != want[s].Kind {
				t.Fatalf("lane %d scheme %s: lanes (%v,%v) != indexed (%v,%v)",
					L, schemes[s].Name(), got[s].FailTime, got[s].Kind, want[s].FailTime, want[s].Kind)
			}
		}
	}
	// Out-of-envelope records route the whole lane to the scalar path.
	b.Reset()
	foreign := []FaultRecord{mk(99, 0, 0, 5, 61320, false, false)}
	b.Add(0, st, foreign)
	lv.EvaluateBatch(&b)
	want = ev.EvaluateInto(foreign, want)
	got = lv.AppendLaneOutcomes(0, got)
	for s := range schemes {
		if math.Float64bits(got[s].FailTime) != math.Float64bits(want[s].FailTime) || got[s].Kind != want[s].Kind {
			t.Fatalf("foreign record, scheme %s: lanes (%v,%v) != indexed (%v,%v)",
				schemes[s].Name(), got[s].FailTime, got[s].Kind, want[s].FailTime, want[s].Kind)
		}
	}
}

// TestLaneEvaluateBatchAllocFree holds the lane engine's hot path to the
// same zero-allocation bar as EvaluateInto: once the per-scheme masks and
// the scalar probe's scratch are warm, judging a full 64-lane batch must
// not touch the heap.
func TestLaneEvaluateBatchAllocFree(t *testing.T) {
	cfg := denseConfig(100)
	gen := newGenerator(&cfg)
	ev := NewEvaluator(&cfg, AllSchemes())
	lv := NewLaneEvaluator(ev)
	rng := simrand.New(9)
	var b LaneBatch
	var st simrand.State
	for L := 0; L < LaneWidth; L++ {
		b.Add(L, st, gen.Trial(rng, nil))
	}
	lv.EvaluateBatch(&b) // warm the scratch
	allocs := testing.AllocsPerRun(200, func() {
		lv.EvaluateBatch(&b)
	})
	if allocs != 0 {
		t.Fatalf("EvaluateBatch allocates %v times per batch, want 0", allocs)
	}
}

// TestLaneEngineMetrics: the lane engine keeps the campaign counters the
// indexed engine publishes (trials_evaluated covers every judged lane) and
// adds batch/probe telemetry.
func TestLaneEngineMetrics(t *testing.T) {
	cfg := denseConfig(100)
	reg := obs.NewRegistry()
	opts := CampaignOptions{Trials: 20_000, Seed: 5, ChunkSize: 512, Metrics: reg, Engine: EngineLanes}
	rep := mustCampaign(t, context.Background(), cfg, AllSchemes(), opts)

	snap := reg.Snapshot().Counters
	if snap["campaign.trials_done"] != rep.Trials {
		t.Fatalf("trials_done %d != report %d", snap["campaign.trials_done"], rep.Trials)
	}
	if snap["campaign.lane_batches"] == 0 {
		t.Fatal("lane_batches never ticked")
	}
	if snap["campaign.trials_evaluated"] == 0 {
		t.Fatal("trials_evaluated never ticked under the lane engine")
	}
	// Scalar probes exist at this density (multi-record rank collisions).
	if snap["campaign.lane_probes"] == 0 {
		t.Fatal("lane_probes never ticked at 100x density")
	}
}

// TestLaneEventHashMatches pins the laneRec digestion against the scalar
// path: the pre-mixed key in a laneRec must reproduce eventHash bit for
// bit, because direct-pass failure kinds (SECDED SDC-vs-DUE splits, the
// Chipkill hash thresholds) are decided by this value.
func TestLaneEventHashMatches(t *testing.T) {
	rng := simrand.New(99)
	for i := 0; i < 10_000; i++ {
		r := FaultRecord{
			Channel:   int(rng.Uint64n(8)),
			Rank:      int(rng.Uint64n(4)),
			Chip:      int(rng.Uint64n(64)),
			Gran:      dram.Granularity(rng.Uint64n(uint64(dram.NumGranularities))),
			Start:     rng.Float64() * 7 * 365 * 24,
			Transient: rng.Uint64n(2) == 0,
			Silent:    rng.Uint64n(2) == 0,
		}
		lr := digestRecord(&r)
		if got, want := laneEventHash(&lr), eventHash(&r); got != want {
			t.Fatalf("record %+v: laneEventHash %v != eventHash %v", r, got, want)
		}
		if lr.silent != isSilentRecord(&r) || lr.start != r.Start ||
			lr.ch != int32(r.Channel) || lr.rk != int32(r.Rank) {
			t.Fatalf("record %+v: digest %+v drops a field", r, lr)
		}
	}
}

// TestDigestRecordMatchesSigOf pins digestRecord's hand-fused signature
// against sigOf: the two must agree on every record, including the
// out-of-envelope granularities and chip positions that map to -1.
func TestDigestRecordMatchesSigOf(t *testing.T) {
	rng := simrand.New(7)
	for i := 0; i < 50_000; i++ {
		r := FaultRecord{
			Channel:            int(rng.Uint64n(8)),
			Rank:               int(rng.Uint64n(4)),
			Chip:               int(rng.Uint64n(1<<21)) - 4, // straddles both sigOf caps
			Gran:               dram.Granularity(rng.Uint64n(uint64(dram.NumGranularities) + 2)),
			Transient:          rng.Uint64n(2) == 0,
			Silent:             rng.Uint64n(2) == 0,
			EscalatedByScaling: rng.Uint64n(2) == 0,
		}
		if got, want := digestRecord(&r).sig, sigOf(&r); got != want {
			t.Fatalf("record %+v: digestRecord sig %d != sigOf %d", r, got, want)
		}
	}
}
