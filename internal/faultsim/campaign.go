package faultsim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xedsim/internal/checkpoint"
	"xedsim/internal/obs"
	"xedsim/internal/simrand"
)

// This file is the resilient Monte-Carlo campaign engine. Run delegates to
// it; the CLIs reach it directly through RunCampaign for cancellation,
// checkpoint/resume and panic isolation.
//
// The campaign is divided into fixed-size chunks of consecutive trials, and
// chunk c draws from simrand substream (seed, c) — see Source.SeedStream.
// Chunks make three guarantees compose:
//
//   - Worker-count invariance: a chunk's trial stream is a pure function of
//     (config, seed, chunk index), and per-scheme tallies are sums of
//     per-chunk integers, so any scheduling of chunks over any number of
//     workers produces bit-identical Results.
//   - Checkpoint/resume: a snapshot is the set of completed chunks plus the
//     accumulated tallies. Resuming re-runs exactly the missing chunks, so
//     an interrupted+resumed campaign equals an uninterrupted one.
//   - Panic isolation: trial evaluation (scheme code) never touches the
//     trial RNG, so a panicking trial is caught, voided and recorded as a
//     TrialError without desynchronising the chunk's stream; the RNG state
//     captured at the head of the trial replays it in isolation.
//
// Chunk streams rather than per-trial streams are a measured tradeoff:
// reseeding xoshiro per trial costs more than an average trial does
// (~29ns vs ~14ns — most trials draw zero faults and are skipped
// wholesale by the geometric fast path), which would blow the <5%
// regression budget on the Table I campaign benchmark.

// Campaign engine defaults.
const (
	// DefaultChunkSize is the trials-per-chunk granularity of scheduling,
	// checkpointing and cancellation draining. A chunk is ~100µs of work.
	DefaultChunkSize = 4096
	// DefaultCheckpointInterval spaces periodic snapshots.
	DefaultCheckpointInterval = 30 * time.Second
	// DefaultErrorBudget is how many panicking trials a campaign tolerates
	// before giving up (CampaignOptions.ErrorBudget zero value).
	DefaultErrorBudget = 100
)

// checkpointKind and checkpointVersion frame campaign snapshots on disk.
const (
	checkpointKind    = "faultsim-campaign"
	checkpointVersion = 1
)

// ErrErrorBudgetExceeded reports a campaign aborted because more trials
// panicked than ErrorBudget tolerates.
var ErrErrorBudgetExceeded = errors.New("faultsim: trial-error budget exceeded")

// Engine selects the trial-judging implementation a campaign runs on.
// Every engine produces bit-identical Reports for the same (cfg, Trials,
// Seed, ChunkSize): engines differ only in how trials are judged, never in
// how they are generated (the RNG draw sequence is engine-invariant), so
// the choice is excluded from the checkpoint config hash and a campaign
// may even be checkpointed under one engine and resumed under another.
type Engine string

const (
	// EngineIndexed is the pre-indexed scalar Evaluator (the default).
	EngineIndexed Engine = "indexed"
	// EngineLanes is the bit-sliced LaneEvaluator: 64 trials judged per
	// machine word, with scalar probes only for lanes the lane masks
	// cannot prove alive. See lanes.go.
	EngineLanes Engine = "lanes"
	// EngineReference judges every trial with the O(n²) reference probe —
	// slow, kept for differential gating and debugging.
	EngineReference Engine = "reference"
)

// ParseEngine maps a CLI/flag string to an Engine. The empty string
// selects EngineIndexed.
func ParseEngine(s string) (Engine, error) {
	switch Engine(s) {
	case "", EngineIndexed:
		return EngineIndexed, nil
	case EngineLanes:
		return EngineLanes, nil
	case EngineReference:
		return EngineReference, nil
	}
	return "", fmt.Errorf("faultsim: unknown engine %q (want indexed, lanes or reference)", s)
}

// Generator selects the trial-generation implementation a campaign runs on.
// Unlike Engine, the choice IS part of the campaign's identity: the batch
// generator draws the same distributions but consumes uniforms in a
// different (column-major) order, so its trial streams — while exactly
// distributed like the scalar ones, see batchgen.go — are not bit-identical
// to them. The generator is therefore included in the checkpoint config
// hash, and a campaign checkpointed under one generator cannot be resumed
// under the other. For a fixed (cfg, Trials, Seed, ChunkSize, Gen), results
// remain bit-identical across worker counts, engines, and resume patterns.
type Generator string

const (
	// GenScalar draws each trial's records one scalar variate at a time
	// (the default; bit-compatible with every release since PR 2).
	GenScalar Generator = "scalar"
	// GenBatch plans a whole chunk of trials at once in structure-of-arrays
	// form: one arrival-run pass, then class/onset/geometry columns filled
	// array-at-a-time. See batchgen.go.
	GenBatch Generator = "batch"
)

// ParseGenerator maps a CLI/flag string to a Generator. The empty string
// selects GenScalar.
func ParseGenerator(s string) (Generator, error) {
	switch Generator(s) {
	case "", GenScalar:
		return GenScalar, nil
	case GenBatch:
		return GenBatch, nil
	}
	return "", fmt.Errorf("faultsim: unknown generator %q (want scalar or batch)", s)
}

// CampaignOptions parameterises RunCampaign.
type CampaignOptions struct {
	// Trials is the number of systems to simulate. Required.
	Trials int
	// Seed is the campaign seed; all trial randomness derives from it.
	Seed uint64
	// Workers is the goroutine count; <= 0 selects GOMAXPROCS.
	Workers int
	// ChunkSize is the trials-per-chunk scheduling granularity; 0 selects
	// DefaultChunkSize. Results are deterministic for a fixed (Config,
	// Trials, Seed, ChunkSize) regardless of Workers.
	ChunkSize int
	// CheckpointPath enables periodic atomic snapshots when non-empty.
	CheckpointPath string
	// CheckpointInterval spaces periodic snapshots; 0 selects
	// DefaultCheckpointInterval.
	CheckpointInterval time.Duration
	// Resume loads CheckpointPath before starting and re-runs only the
	// chunks it does not cover. A missing file starts fresh; a snapshot
	// from any different configuration is refused.
	Resume bool
	// ErrorBudget is the maximum number of panicking trials tolerated
	// before the campaign aborts with ErrErrorBudgetExceeded. The zero
	// value selects DefaultErrorBudget; any negative value tolerates none.
	ErrorBudget int
	// OnChunk, when non-nil, observes progress after each chunk merge
	// (and once at startup when resuming): completed and total chunk
	// counts. It is called from worker goroutines, serialised.
	OnChunk func(doneChunks, totalChunks int)
	// Engine selects the trial-judging implementation; the zero value is
	// EngineIndexed. Reports are bit-identical across engines.
	Engine Engine
	// Gen selects the trial-generation implementation; the zero value is
	// GenScalar. Unlike Engine, Gen is part of the campaign's identity
	// (GenBatch consumes the substreams in a different order), so it is
	// covered by the checkpoint config hash.
	Gen Generator
	// Metrics, when non-nil, publishes live campaign counters under
	// "campaign.*" names: trial/chunk progress, per-scheme failure
	// tallies, trial errors and checkpoint save latency. Tallies advance
	// at chunk granularity (under the merge lock, off the trial hot
	// path); only campaign.trials_evaluated ticks per evaluated trial,
	// with a single nil-safe atomic add.
	Metrics *obs.Registry
}

// TrialError records one panicking trial: where it was, the serialized RNG
// state that regenerates it, the fault stream it drew, and what the panic
// said. The campaign voids the trial (no scheme tallies it) and continues.
type TrialError struct {
	// Trial is the global trial index; Chunk the chunk it belongs to.
	Trial int `json:"trial"`
	Chunk int `json:"chunk"`
	// RNGState is the simrand state at the head of the generate call that
	// produced this trial — the trial's replay seed (see Replay). Under
	// GenBatch a trial's draws are interleaved with the rest of its chunk,
	// so this is the chunk-head substream state instead and Replay cannot
	// regenerate the stream; Faults carries the authoritative records.
	RNGState simrand.State `json:"rng_state"`
	// Faults is the trial's generated fault stream.
	Faults []FaultRecord `json:"faults"`
	// PanicValue and Stack describe the panic.
	PanicValue string `json:"panic"`
	Stack      string `json:"stack,omitempty"`
}

// Error implements error.
func (e *TrialError) Error() string {
	return fmt.Sprintf("faultsim: trial %d (chunk %d) panicked: %s", e.Trial, e.Chunk, e.PanicValue)
}

// Replay regenerates the errored trial in isolation: it restores the
// recorded RNG state, draws the trial's fault stream with the same
// scheme-filtered generator the campaign used, and re-evaluates it with
// the panic contained. cfg and schemes must match the original campaign's
// (generation is filtered by what the schemes can react to). It returns
// the regenerated faults, the per-scheme outcomes (nil if the panic
// recurred) and the recovered panic value (nil if it did not). Replay
// regenerates with the scalar generator; for a GenBatch campaign's errors
// use the recorded Faults directly (see RNGState).
func (e *TrialError) Replay(cfg Config, schemes []Scheme) (faults []FaultRecord, outs []TrialOutcome, panicked any, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, nil, err
	}
	if len(schemes) == 0 {
		return nil, nil, nil, fmt.Errorf("faultsim: no schemes to evaluate")
	}
	rng, err := simrand.Restore(e.RNGState)
	if err != nil {
		return nil, nil, nil, err
	}
	ev := NewEvaluator(&cfg, schemes)
	gen := newRunGenerator(&cfg, ev)
	if ev.EmptyTrialsSurvive() {
		_, faults = gen.nextNonEmpty(rng, nil)
	} else {
		faults = gen.Trial(rng, nil)
	}
	func() {
		defer func() { panicked = recover() }()
		outs = append([]TrialOutcome(nil), ev.EvaluateInto(faults, nil)...)
	}()
	if panicked != nil {
		outs = nil
	}
	return faults, outs, panicked, nil
}

// SchemeTally is one scheme's integer tallies over some set of trials: the
// unit of chunk merging, of checkpoint payloads, and of the wire envelopes
// distributed workers return (see ChunkResult). Tallies compose by field-
// wise addition, which is what makes any partition of a campaign's chunks
// across processes merge back to bit-identical Results.
type SchemeTally struct {
	Failures uint64   `json:"failures"`
	DUEs     uint64   `json:"dues"`
	SDCs     uint64   `json:"sdcs"`
	ByYear   []uint64 `json:"by_year"`
}

// add folds t2 into t (field-wise integer addition).
func (t *SchemeTally) add(t2 *SchemeTally) {
	t.Failures += t2.Failures
	t.DUEs += t2.DUEs
	t.SDCs += t2.SDCs
	for y := range t.ByYear {
		t.ByYear[y] += t2.ByYear[y]
	}
}

// campaignSnapshot is the checkpoint payload: completed-chunk bitmap plus
// accumulated tallies. The shape parameters double as a human-readable
// record; compatibility is enforced by the envelope's config hash.
type campaignSnapshot struct {
	Trials     int           `json:"trials"`
	Seed       uint64        `json:"seed"`
	ChunkSize  int           `json:"chunk_size"`
	Years      int           `json:"years"`
	Schemes    []string      `json:"schemes"`
	DoneChunks []uint64      `json:"done_chunks"` // bitmap, chunk c at word c/64 bit c%64
	DoneTrials uint64        `json:"done_trials"` // tallied trials (excludes errored)
	Complete   bool          `json:"complete"`
	Results    []SchemeTally `json:"results"`
	Errors     []TrialError  `json:"errors,omitempty"`
}

// campaignHashInput is what the checkpoint config hash covers: everything
// that shapes the trial streams and the meaning of the accumulators. Gen is
// omitted when scalar so every pre-batch checkpoint hash stays valid.
type campaignHashInput struct {
	Config    Config   `json:"config"`
	Schemes   []string `json:"schemes"`
	Trials    int      `json:"trials"`
	Seed      uint64   `json:"seed"`
	ChunkSize int      `json:"chunk_size"`
	Gen       string   `json:"gen,omitempty"`
}

// engine is the shared state of one RunCampaign invocation.
type engine struct {
	cfg     Config
	schemes []Scheme
	opts    CampaignOptions
	years   int
	nChunks int
	hash    string

	nextChunk atomic.Int64 // work queue: chunk indices in [0, nChunks)

	mu         sync.Mutex
	doneBits   []uint64
	doneChunks int
	doneTrials uint64
	accum      []SchemeTally
	trialErrs  []TrialError
	failed     error // first fatal engine error (budget, checkpoint I/O)
	lastSave   time.Time

	onChunkMu sync.Mutex         // serialises the OnChunk callback
	cancel    context.CancelFunc // cancels workers on fatal engine error

	met campaignMetrics
}

// campaignMetrics holds pre-resolved obs handles; every field is nil (and
// every update a no-op) when CampaignOptions.Metrics is unset.
type campaignMetrics struct {
	trialsRequested *obs.Gauge
	trialsDone      *obs.Counter
	trialErrors     *obs.Counter
	chunksDone      *obs.Counter
	chunksTotal     *obs.Gauge
	errorBudget     *obs.Gauge
	ckptSaves       *obs.Counter
	ckptSaveMS      *obs.Histogram

	// Per-scheme tallies, parallel to the engine's scheme slice.
	failures []*obs.Counter
	dues     []*obs.Counter
	sdcs     []*obs.Counter
}

func newCampaignMetrics(r *obs.Registry, schemes []Scheme) campaignMetrics {
	m := campaignMetrics{
		trialsRequested: r.Gauge("campaign.trials_requested"),
		trialsDone:      r.Counter("campaign.trials_done"),
		trialErrors:     r.Counter("campaign.trial_errors"),
		chunksDone:      r.Counter("campaign.chunks_done"),
		chunksTotal:     r.Gauge("campaign.chunks_total"),
		errorBudget:     r.Gauge("campaign.error_budget"),
		ckptSaves:       r.Counter("campaign.checkpoint.saves"),
		ckptSaveMS:      r.Histogram("campaign.checkpoint.save_ms", []float64{1, 2, 5, 10, 25, 50, 100, 250, 1000}),
	}
	for _, s := range schemes {
		prefix := "campaign.scheme." + s.Name()
		m.failures = append(m.failures, r.Counter(prefix+".failures"))
		m.dues = append(m.dues, r.Counter(prefix+".dues"))
		m.sdcs = append(m.sdcs, r.Counter(prefix+".sdcs"))
	}
	return m
}

// newEngine validates (cfg, schemes, opts), normalizes the options
// (default chunk size, checkpoint interval, error budget, engine) and
// builds the campaign accumulator state shared by RunCampaign, ChunkRunner
// and Merger. needHash forces the config-hash computation even when no
// CheckpointPath is set (distributed merging always needs it).
func newEngine(cfg Config, schemes []Scheme, opts CampaignOptions, needHash bool) (*engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.Trials <= 0 {
		return nil, fmt.Errorf("faultsim: non-positive trial count %d", opts.Trials)
	}
	if len(schemes) == 0 {
		return nil, fmt.Errorf("faultsim: no schemes to evaluate")
	}
	if opts.ChunkSize <= 0 {
		opts.ChunkSize = DefaultChunkSize
	}
	if opts.CheckpointInterval <= 0 {
		opts.CheckpointInterval = DefaultCheckpointInterval
	}
	switch {
	case opts.ErrorBudget == 0:
		opts.ErrorBudget = DefaultErrorBudget
	case opts.ErrorBudget < 0:
		opts.ErrorBudget = 0
	}
	var err error
	if opts.Engine, err = ParseEngine(string(opts.Engine)); err != nil {
		return nil, err
	}
	if opts.Gen, err = ParseGenerator(string(opts.Gen)); err != nil {
		return nil, err
	}

	e := &engine{
		cfg:     cfg,
		schemes: schemes,
		opts:    opts,
		years:   int(math.Ceil(cfg.LifetimeHours / HoursPerYear)),
		nChunks: (opts.Trials + opts.ChunkSize - 1) / opts.ChunkSize,
	}
	if needHash {
		names := make([]string, len(schemes))
		for i, s := range schemes {
			names[i] = s.Name()
		}
		gen := string(opts.Gen)
		if opts.Gen == GenScalar {
			gen = "" // omitempty: pre-batch checkpoint hashes stay valid
		}
		e.hash, err = checkpoint.Hash(campaignHashInput{
			Config: cfg, Schemes: names, Trials: opts.Trials, Seed: opts.Seed, ChunkSize: opts.ChunkSize,
			Gen: gen,
		})
		if err != nil {
			return nil, err
		}
	}
	e.doneBits = make([]uint64, (e.nChunks+63)/64)
	e.accum = make([]SchemeTally, len(schemes))
	for i := range e.accum {
		e.accum[i].ByYear = make([]uint64, e.years)
	}
	return e, nil
}

// RunCampaign executes a resilient Monte-Carlo campaign. It honours ctx
// cancellation by draining workers at chunk boundaries and returning the
// partial Report alongside ctx's error; with CheckpointPath set it also
// snapshots progress periodically and on cancellation, and Resume picks a
// campaign back up from such a snapshot. Completed runs return a Report
// covering exactly Trials trials (minus any panicking trials, which are
// voided and listed in Report.TrialErrors) and a nil error.
//
// Results are bit-identical for a fixed (cfg, Trials, Seed, ChunkSize)
// whatever the worker count and whether or not the run was interrupted and
// resumed.
func RunCampaign(ctx context.Context, cfg Config, schemes []Scheme, opts CampaignOptions) (*Report, error) {
	// The config hash only guards snapshot compatibility; skip the
	// JSON+SHA-256 work for plain in-memory campaigns (Run calls this per
	// benchmark iteration).
	e, err := newEngine(cfg, schemes, opts, opts.CheckpointPath != "")
	if err != nil {
		return nil, err
	}
	opts = e.opts
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.Resume && opts.CheckpointPath != "" {
		if err := e.loadSnapshot(); err != nil {
			return nil, err
		}
	}
	e.met = newCampaignMetrics(opts.Metrics, schemes)
	e.met.trialsRequested.Add(int64(opts.Trials))
	e.met.chunksTotal.Add(int64(e.nChunks))
	e.met.errorBudget.Set(int64(opts.ErrorBudget))
	if e.doneChunks > 0 {
		// Resumed progress is visible immediately, so live trials/s and
		// tallies start from the snapshot's frontier rather than zero.
		e.met.chunksDone.Add(uint64(e.doneChunks))
		e.met.trialsDone.Add(e.doneTrials)
		e.met.trialErrors.Add(uint64(len(e.trialErrs)))
		for s := range e.accum {
			e.met.failures[s].Add(e.accum[s].Failures)
			e.met.dues[s].Add(e.accum[s].DUEs)
			e.met.sdcs[s].Add(e.accum[s].SDCs)
		}
	}
	e.lastSave = time.Now()
	if opts.OnChunk != nil && e.doneChunks > 0 {
		opts.OnChunk(e.doneChunks, e.nChunks)
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	e.cancel = cancel
	if workers > e.nChunks {
		workers = e.nChunks
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.worker(wctx)
		}()
	}
	wg.Wait()

	e.mu.Lock()
	defer e.mu.Unlock()
	sort.Slice(e.trialErrs, func(i, j int) bool { return e.trialErrs[i].Trial < e.trialErrs[j].Trial })
	rep := e.reportLocked()
	runErr := e.failed
	if runErr == nil {
		runErr = ctx.Err()
	}
	if e.opts.CheckpointPath != "" {
		// Final snapshot: Complete on success, the partial frontier on
		// cancellation, so a later -resume continues (or short-circuits).
		if err := e.saveLocked(); err != nil && runErr == nil {
			runErr = err
		}
	}
	return rep, runErr
}

// worker pulls chunk indices until the queue drains or ctx cancels.
func (e *engine) worker(ctx context.Context) {
	w := newCampaignWorker(&e.cfg, e.schemes, e.opts.Seed, e.years, e.opts.Engine, e.opts.Gen)
	// Per-trial evaluation counter: a single nil-safe atomic add on the
	// non-empty-trial path (nil registry → nil counter → no-op).
	w.ev.SetTrialCounter(e.opts.Metrics.Counter("campaign.trials_evaluated"))
	if w.lv != nil {
		w.lv.SetCounters(e.opts.Metrics.Counter("campaign.lane_batches"),
			e.opts.Metrics.Counter("campaign.lane_probes"))
	}
	if w.bg != nil {
		w.bg.setMetrics(e.opts.Metrics)
	}
	for {
		if ctx.Err() != nil {
			return
		}
		c := int(e.nextChunk.Add(1)) - 1
		if c >= e.nChunks {
			return
		}
		if e.chunkDone(c) {
			continue
		}
		lo, hi := e.chunkBounds(c)
		if !w.runChunk(ctx, c, lo, hi) {
			return // cancelled mid-chunk; the chunk is not merged
		}
		if !e.merge(c, w) {
			return
		}
	}
}

func (e *engine) chunkBounds(c int) (lo, hi int) {
	lo = c * e.opts.ChunkSize
	hi = lo + e.opts.ChunkSize
	if hi > e.opts.Trials {
		hi = e.opts.Trials
	}
	return lo, hi
}

// chunkDone reads the resume bitmap. Bits are only set under mu, but
// workers may read them racily: a stale read merely re-checks under mu in
// merge — and chunks are claimed uniquely via nextChunk anyway, so a chunk
// marked done here was completed by a *previous* (resumed) run.
func (e *engine) chunkDone(c int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.doneBits[c/64]&(1<<(c%64)) != 0
}

// merge folds one completed chunk into the campaign accumulator, advances
// the checkpoint clock, and enforces the error budget. It returns false
// when the worker should stop (fatal engine error).
func (e *engine) merge(c int, w *campaignWorker) bool {
	e.mu.Lock()
	for s := range e.accum {
		e.accum[s].Failures += w.total[s]
		e.accum[s].DUEs += w.dues[s]
		e.accum[s].SDCs += w.sdcs[s]
		// The worker tallies first-failure year buckets (one increment per
		// failure, off the hot path's cumulative inner loop); the prefix sum
		// here restores the accumulator's cumulative-by-year semantics.
		var run uint64
		for y := 0; y < e.years; y++ {
			run += w.failures[s][y]
			e.accum[s].ByYear[y] += run
		}
	}
	lo, hi := e.chunkBounds(c)
	e.doneBits[c/64] |= 1 << (c % 64)
	e.doneChunks++
	e.doneTrials += uint64(hi-lo) - uint64(len(w.errs))
	e.trialErrs = append(e.trialErrs, w.errs...)
	overBudget := len(e.trialErrs) > e.opts.ErrorBudget && e.failed == nil
	if overBudget {
		e.failed = fmt.Errorf("%w: %d trials panicked (budget %d); first: %v",
			ErrErrorBudgetExceeded, len(e.trialErrs), e.opts.ErrorBudget, &e.trialErrs[0])
	}
	done, total := e.doneChunks, e.nChunks
	if e.opts.CheckpointPath != "" && time.Since(e.lastSave) >= e.opts.CheckpointInterval {
		if err := e.saveLocked(); err != nil && e.failed == nil {
			e.failed = err
		}
	}
	failed := e.failed
	e.mu.Unlock()

	// Live tallies advance per merged chunk — atomic adds only, outside
	// the accumulator lock and far off the per-trial hot path.
	e.met.chunksDone.Inc()
	e.met.trialsDone.Add(uint64(hi-lo) - uint64(len(w.errs)))
	e.met.trialErrors.Add(uint64(len(w.errs)))
	for s := range e.met.failures {
		e.met.failures[s].Add(w.total[s])
		e.met.dues[s].Add(w.dues[s])
		e.met.sdcs[s].Add(w.sdcs[s])
	}

	if e.opts.OnChunk != nil {
		e.onChunkSerialised(done, total)
	}
	if failed != nil {
		e.cancel()
		return false
	}
	return true
}

// onChunkSerialised keeps the progress callback single-threaded without
// holding the accumulator lock across user code.
func (e *engine) onChunkSerialised(done, total int) {
	e.onChunkMu.Lock()
	defer e.onChunkMu.Unlock()
	e.opts.OnChunk(done, total)
}

// snapshotLocked assembles the checkpoint payload. Caller holds mu. The
// payload is canonical: trial errors are sorted by trial index, so two
// engines that merged the same chunks — in any order, on any number of
// workers or machines — produce byte-identical snapshots.
func (e *engine) snapshotLocked() campaignSnapshot {
	names := make([]string, len(e.schemes))
	for i, s := range e.schemes {
		names[i] = s.Name()
	}
	snap := campaignSnapshot{
		Trials:     e.opts.Trials,
		Seed:       e.opts.Seed,
		ChunkSize:  e.opts.ChunkSize,
		Years:      e.years,
		Schemes:    names,
		DoneChunks: append([]uint64(nil), e.doneBits...),
		DoneTrials: e.doneTrials,
		Complete:   e.doneChunks == e.nChunks,
		Results:    e.accum,
		Errors:     e.trialErrs,
	}
	sort.Slice(snap.Errors, func(i, j int) bool { return snap.Errors[i].Trial < snap.Errors[j].Trial })
	return snap
}

// saveLocked snapshots the accumulator to CheckpointPath. Caller holds mu.
func (e *engine) saveLocked() error {
	snap := e.snapshotLocked()
	start := time.Now()
	if err := checkpoint.Save(e.opts.CheckpointPath, checkpointKind, checkpointVersion, e.hash, &snap); err != nil {
		return err
	}
	e.met.ckptSaves.Inc()
	e.met.ckptSaveMS.Observe(float64(time.Since(start).Microseconds()) / 1e3)
	e.lastSave = time.Now()
	return nil
}

// loadSnapshot seeds the accumulator from CheckpointPath. A missing file
// starts the campaign fresh; any mismatched snapshot is refused.
func (e *engine) loadSnapshot() error {
	var snap campaignSnapshot
	err := checkpoint.Load(e.opts.CheckpointPath, checkpointKind, checkpointVersion, e.hash, &snap)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	return e.restoreSnapshot(&snap, e.opts.CheckpointPath)
}

// restoreSnapshot seeds the accumulator from a loaded snapshot, validating
// the payload shape against the engine's own config. from names the source
// in errors.
func (e *engine) restoreSnapshot(snap *campaignSnapshot, from string) error {
	if len(snap.DoneChunks) != len(e.doneBits) || len(snap.Results) != len(e.accum) || snap.Years != e.years {
		// The config hash covers everything that shapes these; reaching
		// here means the snapshot lies about its own hash input.
		return fmt.Errorf("%w: %s payload shape does not match its config",
			checkpoint.ErrConfigMismatch, from)
	}
	copy(e.doneBits, snap.DoneChunks)
	e.doneChunks = 0
	for _, word := range e.doneBits {
		for ; word != 0; word &= word - 1 {
			e.doneChunks++
		}
	}
	e.doneTrials = snap.DoneTrials
	for s := range e.accum {
		if len(snap.Results[s].ByYear) != e.years {
			return fmt.Errorf("%w: %s payload shape does not match its config",
				checkpoint.ErrConfigMismatch, from)
		}
		e.accum[s] = snap.Results[s]
	}
	e.trialErrs = snap.Errors
	return nil
}

// reportLocked assembles the Report from the accumulator. Caller holds mu.
func (e *engine) reportLocked() *Report {
	rep := &Report{
		Config:      e.cfg,
		Trials:      e.doneTrials,
		Requested:   uint64(e.opts.Trials),
		Years:       e.years,
		TrialErrors: append([]TrialError(nil), e.trialErrs...),
	}
	for s, scheme := range e.schemes {
		rep.Results = append(rep.Results, Result{
			SchemeName:     scheme.Name(),
			Trials:         e.doneTrials,
			Failures:       e.accum[s].Failures,
			DUEs:           e.accum[s].DUEs,
			SDCs:           e.accum[s].SDCs,
			FailuresByYear: append([]uint64(nil), e.accum[s].ByYear...),
		})
	}
	return rep
}

// campaignWorker holds one goroutine's reusable trial state plus the
// current chunk's tallies. Nothing here allocates per trial.
type campaignWorker struct {
	cfg     *Config
	seed    uint64
	years   int
	engine  Engine
	genMode Generator
	ev      *Evaluator
	lv      *LaneEvaluator // non-nil iff engine == EngineLanes
	batch   LaneBatch
	gen     *generator
	bg      *batchGenerator // non-nil iff genMode == GenBatch
	rng     *simrand.Source
	fast    bool
	buf     []FaultRecord
	outs    []TrialOutcome

	chunk    int
	failures [][]uint64 // [scheme][year] first-failure buckets, this chunk; merge folds them cumulatively
	total    []uint64
	dues     []uint64
	sdcs     []uint64
	errs     []TrialError

	// Panic-recovery bookkeeping, written just before each evaluation so a
	// single span-level recover (rather than a per-trial defer) can attribute
	// the panic to the right trial. See runSpan. bi is the batch-plan resume
	// cursor (emitted-trial index), used only by runBatchSpan.
	t      int
	bi     int
	st     simrand.State
	inEval bool
}

func newCampaignWorker(cfg *Config, schemes []Scheme, seed uint64, years int, engine Engine, genMode Generator) *campaignWorker {
	w := &campaignWorker{
		cfg:     cfg,
		seed:    seed,
		years:   years,
		engine:  engine,
		genMode: genMode,
		rng:     simrand.New(0),
	}
	// Every engine judges through (or falls back to) the same Evaluator,
	// and generation is always filtered by its classLive so the trial
	// streams are engine-invariant.
	w.ev = NewEvaluator(cfg, schemes)
	if engine == EngineLanes {
		w.lv = NewLaneEvaluator(w.ev)
	}
	w.gen = newRunGenerator(cfg, w.ev)
	if genMode == GenBatch {
		w.bg = newBatchGenerator(w.gen)
	}
	w.fast = w.ev.EmptyTrialsSurvive()
	w.failures = make([][]uint64, len(schemes))
	for s := range w.failures {
		w.failures[s] = make([]uint64, years)
	}
	w.total = make([]uint64, len(schemes))
	w.dues = make([]uint64, len(schemes))
	w.sdcs = make([]uint64, len(schemes))
	return w
}

// runChunk evaluates trials [lo, hi) of chunk c into the worker's tallies.
// It returns false if ctx cancelled mid-chunk (tallies must be discarded).
func (w *campaignWorker) runChunk(ctx context.Context, c, lo, hi int) bool {
	w.chunk = c
	// TrialError holds heap references (Faults slice, panic strings);
	// truncating without clearing would keep every past chunk's worst-case
	// error payloads reachable through the backing array.
	clear(w.errs)
	w.errs = w.errs[:0]
	for s := range w.total {
		w.total[s], w.dues[s], w.sdcs[s] = 0, 0, 0
		clear(w.failures[s])
	}
	// Substream (seed, c): the chunk's randomness is independent of which
	// worker runs it and of every other chunk.
	w.rng.SeedStream(w.seed, uint64(c))
	w.gen.resetEvents()

	if w.genMode == GenBatch {
		return w.runBatchChunk(ctx, lo, hi)
	}
	if w.engine == EngineLanes {
		return w.runLaneChunk(ctx, lo, hi)
	}
	for t := lo; ; {
		switch w.runSpan(ctx, t, lo, hi) {
		case spanDone:
			return true
		case spanCancelled:
			return false
		case spanPanicked:
			// Trial w.t was voided and recorded; the RNG sits just past its
			// generation draws (evaluation never draws), so the remainder of
			// the chunk replays identically to a panic-free run.
			t = w.t + 1
		}
	}
}

const (
	spanDone = iota
	spanCancelled
	spanPanicked
)

// cancelCheckMask paces the intra-chunk ctx poll. Cancellation is normally
// drained at chunk boundaries; the intra-chunk check only matters for
// outsized custom ChunkSizes.
const cancelCheckMask = 1<<16 - 1

// runLaneChunk is runChunk's trial loop for the lane engine: trials are
// generated with the same draws and in the same order as the scalar spans,
// but their records are packed straight into the worker's LaneBatch (no
// per-trial copy) and judged 64 at a time at batch flushes. A lane batch
// is a sub-unit of a chunk — the final partial batch flushes at the chunk
// boundary — so chunk tallies, and therefore Reports, are bit-identical to
// the indexed engine's. Panics inside scheme code are contained per lane
// by the LaneEvaluator; a panic escaping to this frame is a generation
// failure and propagates (recovery there could not keep the RNG stream
// deterministic).
func (w *campaignWorker) runLaneChunk(ctx context.Context, lo, hi int) bool {
	rng, gen, b := w.rng, w.gen, &w.batch
	b.Reset()
	if w.fast {
		for t := lo; t < hi; {
			if (t-lo)&cancelCheckMask == 0 && ctx.Err() != nil {
				return false
			}
			st := rng.State()
			mark := len(b.recs)
			skipped, recs := gen.nextNonEmptyAppend(rng, b.recs)
			b.recs = recs
			if skipped >= hi-t {
				// The rest of the chunk drew empty trials; the non-empty
				// trial just generated belongs past the chunk boundary.
				b.recs = b.recs[:mark]
				break
			}
			t += skipped
			if len(b.recs) > mark { // aging thinning can still empty a trial
				b.commit(t, st)
				if b.Lanes() == LaneWidth {
					w.flushBatch()
				}
			}
			t++
		}
	} else {
		for t := lo; t < hi; t++ {
			if (t-lo)&cancelCheckMask == 0 && ctx.Err() != nil {
				return false
			}
			st := rng.State()
			b.recs = gen.trialAppend(rng, b.recs)
			b.commit(t, st)
			if b.Lanes() == LaneWidth {
				w.flushBatch()
			}
		}
	}
	w.flushBatch()
	return true
}

// flushBatch judges the pending lane batch and folds its failure masks
// into the chunk accumulators — the lane engine's analogue of tally(),
// popping mask bits instead of scanning per-trial outcomes. Voided
// (panicked) lanes are excluded from every scheme's tallies and recorded
// as TrialErrors, exactly like a voided scalar trial.
func (w *campaignWorker) flushBatch() {
	b := &w.batch
	if b.Lanes() == 0 {
		return
	}
	lv := w.lv
	lv.EvaluateBatch(b)
	valid := b.activeMask() &^ b.voided
	for s := range w.total {
		fm := lv.fail[s] & valid
		w.total[s] += uint64(bits.OnesCount64(fm))
		w.dues[s] += uint64(bits.OnesCount64(lv.due[s] & valid))
		w.sdcs[s] += uint64(bits.OnesCount64(lv.sdc[s] & valid))
		for m := fm; m != 0; m &= m - 1 {
			L := bits.TrailingZeros64(m)
			yr := int(lv.outs[s*LaneWidth+L].FailTime * invHoursPerYear)
			if yr >= w.years {
				yr = w.years - 1
			}
			w.failures[s][yr]++
		}
	}
	for m := b.voided; m != 0; m &= m - 1 {
		L := bits.TrailingZeros64(m)
		w.errs = append(w.errs, TrialError{
			Trial:      b.trial[L],
			Chunk:      w.chunk,
			RNGState:   b.state[L],
			Faults:     append([]FaultRecord(nil), b.LaneFaults(L)...),
			PanicValue: b.panicVal[L],
			Stack:      b.stack[L],
		})
	}
	b.Reset()
}

// runSpan evaluates trials [t0, hi) of the current chunk, stopping early on
// cancellation or on the first panicking trial. Panic recovery is hoisted to
// span scope — a single defer per span instead of one per trial — because the
// per-trial defer alone costs more than an average trial. A panic voids the
// trial: it is recorded as a TrialError (with the pre-trial RNG state as its
// replay seed) and excluded from every scheme's tally, and runChunk resumes
// the span after it. Panics outside evaluation (generation is RNG-stateful,
// so recovery there could not keep the stream deterministic) are re-raised.
func (w *campaignWorker) runSpan(ctx context.Context, t0, lo, hi int) (status int) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if !w.inEval {
			panic(r)
		}
		w.inEval = false
		w.errs = append(w.errs, TrialError{
			Trial:      w.t,
			Chunk:      w.chunk,
			RNGState:   w.st,
			Faults:     append([]FaultRecord(nil), w.buf...),
			PanicValue: fmt.Sprint(r),
			Stack:      string(debug.Stack()),
		})
		status = spanPanicked
	}()

	// Hot-loop state lives in locals; the struct fields are written only at
	// the pre-evaluation stash point (for the recover above) and on exit.
	rng, gen, ev := w.rng, w.gen, w.ev
	buf, outs := w.buf, w.outs
	defer func() { w.buf, w.outs = buf, outs }()
	// The reference engine re-judges every trial with the O(n²) probe; a
	// single predicted branch per trial keeps the indexed hot path shared.
	ref := w.engine == EngineReference

	if w.fast {
		// Fast path (see Run): empty trials survive every scheme, so the
		// generator skips their geometric runs wholesale.
		for t := t0; t < hi; {
			if (t-lo)&cancelCheckMask == 0 && ctx.Err() != nil {
				return spanCancelled
			}
			st := rng.State()
			skipped, rec := gen.nextNonEmpty(rng, buf)
			buf = rec
			if skipped >= hi-t {
				return spanDone // rest of the chunk drew empty trials
			}
			t += skipped
			if len(buf) > 0 { // aging thinning can still empty a trial
				w.t, w.st, w.buf, w.inEval = t, st, buf, true
				if ref {
					outs = ev.referenceInto(buf, outs)
				} else {
					outs = ev.EvaluateInto(buf, outs)
				}
				w.inEval = false
				w.outs = outs
				w.tally()
			}
			t++
		}
		return spanDone
	}
	for t := t0; t < hi; t++ {
		if (t-lo)&cancelCheckMask == 0 && ctx.Err() != nil {
			return spanCancelled
		}
		st := rng.State()
		buf = gen.Trial(rng, buf)
		w.t, w.st, w.buf, w.inEval = t, st, buf, true
		if ref {
			outs = ev.referenceInto(buf, outs)
		} else {
			outs = ev.EvaluateInto(buf, outs)
		}
		w.inEval = false
		w.outs = outs
		w.tally()
	}
	return spanDone
}

// tally folds the current trial's outcomes into the chunk accumulators.
func (w *campaignWorker) tally() {
	for s := range w.outs {
		ft := w.outs[s].FailTime
		if math.IsInf(ft, 1) {
			continue
		}
		w.total[s]++
		switch w.outs[s].Kind {
		case FailDUE:
			w.dues[s]++
		case FailSDC:
			w.sdcs[s]++
		}
		yr := int(ft * invHoursPerYear)
		if yr >= w.years {
			yr = w.years - 1
		}
		w.failures[s][yr]++
	}
}
