package faultsim

import (
	"strings"
	"testing"
)

func TestParseOnDieCode(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"", "(72,64) CRC8-ATM"},
		{"crc8", "(72,64) CRC8-ATM"},
		{"hamming", "(72,64) Hamming"},
		{"hsiao", "(72,64) Hsiao"},
	}
	for _, c := range cases {
		code, err := ParseOnDieCode(c.spec)
		if err != nil {
			t.Fatalf("%q: %v", c.spec, err)
		}
		if code.Name() != c.want {
			t.Errorf("%q -> %s, want %s", c.spec, code.Name(), c.want)
		}
	}
	a, err := ParseOnDieCode("random:42")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ParseOnDieCode("random:42")
	if a.Name() != b.Name() {
		t.Error("random:<seed> is not deterministic")
	}
	for _, bad := range []string{
		"crc16", "random:", "random:x", "random:-1",
		"random:18446744073709551616", // one past MaxUint64
		"random:1.5",
		" crc8", "crc8 ", "CRC8", "Hamming", // specs are exact, no trimming or case folding
		"random: 42",
	} {
		if _, err := ParseOnDieCode(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
	// The maximum representable seed is still a valid spec.
	if _, err := ParseOnDieCode("random:18446744073709551615"); err != nil {
		t.Errorf("random:MaxUint64 rejected: %v", err)
	}
}

// TestSilentWordFractionDeterministic: the measurement is seeded, so
// checkpointed campaigns that re-measure on resume hash identically.
func TestSilentWordFractionDeterministic(t *testing.T) {
	code, _ := ParseOnDieCode("crc8")
	a := SilentWordFractionFor(code, 5000, 7)
	b := SilentWordFractionFor(code, 5000, 7)
	if a != b {
		t.Fatalf("same seed measured %v then %v", a, b)
	}
	if a < 0 || a > 1 {
		t.Fatalf("fraction %v out of [0, 1]", a)
	}
}

func TestSilentWordFractionMatchesPaper(t *testing.T) {
	// The measured CRC8-ATM escape rate must reproduce the 0.8% the
	// default config hard-codes, tying the abstraction to the real code.
	code, _ := ParseOnDieCode("crc8")
	got := SilentWordFractionFor(code, 20000, 1)
	def := DefaultConfig().SilentWordFraction
	if got < def*0.5 || got > def*1.5 {
		t.Fatalf("measured silent fraction %v, config assumes %v", got, def)
	}
	cfg := DefaultConfig()
	cfg.SilentWordFraction = got
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSilentWordFractionRandomCodesValid(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		code, err := ParseOnDieCode("random:" + strings.Repeat("1", int(seed)+1))
		if err != nil {
			t.Fatal(err)
		}
		f := SilentWordFractionFor(code, 5000, seed)
		if f < 0 || f > 1 {
			t.Fatalf("%s: fraction %v out of range", code.Name(), f)
		}
	}
}
