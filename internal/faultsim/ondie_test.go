package faultsim

import (
	"strings"
	"testing"
)

func TestParseOnDieCode(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"", "(72,64) CRC8-ATM"},
		{"crc8", "(72,64) CRC8-ATM"},
		{"hamming", "(72,64) Hamming"},
		{"hsiao", "(72,64) Hsiao"},
	}
	for _, c := range cases {
		code, err := ParseOnDieCode(c.spec)
		if err != nil {
			t.Fatalf("%q: %v", c.spec, err)
		}
		if code.Name() != c.want {
			t.Errorf("%q -> %s, want %s", c.spec, code.Name(), c.want)
		}
	}
	a, err := ParseOnDieCode("random:42")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ParseOnDieCode("random:42")
	if a.Name() != b.Name() {
		t.Error("random:<seed> is not deterministic")
	}
	for _, bad := range []string{"crc16", "random:", "random:x", "random:-1"} {
		if _, err := ParseOnDieCode(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestSilentWordFractionMatchesPaper(t *testing.T) {
	// The measured CRC8-ATM escape rate must reproduce the 0.8% the
	// default config hard-codes, tying the abstraction to the real code.
	code, _ := ParseOnDieCode("crc8")
	got := SilentWordFractionFor(code, 20000, 1)
	def := DefaultConfig().SilentWordFraction
	if got < def*0.5 || got > def*1.5 {
		t.Fatalf("measured silent fraction %v, config assumes %v", got, def)
	}
	cfg := DefaultConfig()
	cfg.SilentWordFraction = got
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSilentWordFractionRandomCodesValid(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		code, err := ParseOnDieCode("random:" + strings.Repeat("1", int(seed)+1))
		if err != nil {
			t.Fatal(err)
		}
		f := SilentWordFractionFor(code, 5000, seed)
		if f < 0 || f > 1 {
			t.Fatalf("%s: fraction %v out of range", code.Name(), f)
		}
	}
}
