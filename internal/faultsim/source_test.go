package faultsim

import (
	"math"
	"reflect"
	"testing"

	"xedsim/internal/dram"
	"xedsim/internal/simrand"
)

func singleDIMMConfig() Config {
	cfg := DefaultConfig()
	cfg.Channels = 1
	return cfg
}

func TestNewTrialSourceValidates(t *testing.T) {
	bad := singleDIMMConfig()
	bad.ScrubIntervalHours = 0
	if _, err := NewTrialSource(&bad); err == nil {
		t.Fatal("NewTrialSource accepted an invalid config")
	}
	cfg := singleDIMMConfig()
	if _, err := NewTrialSource(&cfg); err != nil {
		t.Fatalf("NewTrialSource rejected a valid config: %v", err)
	}
}

// TestTrialSourceMeanIsUnfiltered: the source must carry the FULL FIT
// table's arrival mean — including the single-bit classes campaign schemes
// filter out, because fleet telemetry counts their scrub CEs.
func TestTrialSourceMeanIsUnfiltered(t *testing.T) {
	cfg := singleDIMMConfig()
	src, err := NewTrialSource(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	chips := float64(cfg.TotalChips())
	for _, cls := range cfg.FITs {
		per := float64(cls.Rate) * 1e-9 * cfg.LifetimeHours
		if cls.Gran == dram.GranChip {
			want += per * float64(cfg.Channels)
		} else {
			want += per * chips
		}
	}
	if got := src.Mean(); math.Abs(got-want) > 1e-12*want {
		t.Fatalf("Mean() = %v, want %v", got, want)
	}
}

// TestTrialSourceEmpiricalMean: long-run arrival counts track Mean().
func TestTrialSourceEmpiricalMean(t *testing.T) {
	cfg := singleDIMMConfig()
	src, err := NewTrialSource(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(0)
	rng.SeedStream(99, 0)
	const trials = 200_000
	var events int
	var buf []FaultRecord
	for i := 0; i < trials; i++ {
		buf = src.Trial(rng, buf[:0])
		for j := range buf {
			// Count events, not records: multi-rank expansion copies share
			// their event's identity and must not inflate the estimate.
			if buf[j].EventID == 0 || buf[j].Rank == 0 {
				events++
			}
		}
	}
	got := float64(events) / trials
	want := src.Mean()
	// 5-sigma band for a Poisson sum over `trials` draws.
	sigma := 5 * math.Sqrt(want/trials)
	if math.Abs(got-want) > sigma {
		t.Fatalf("empirical mean %v outside %v ± %v", got, want, sigma)
	}
}

// TestNextNonEmptyDecomposition: skip-sampling must visit exactly the
// trials the one-by-one draw visits, with identical records.
func TestNextNonEmptyDecomposition(t *testing.T) {
	cfg := singleDIMMConfig()
	src, err := NewTrialSource(&cfg)
	if err != nil {
		t.Fatal(err)
	}

	type visit struct {
		trial int
		recs  []FaultRecord
	}
	const trials = 50_000

	rng := simrand.New(0)
	rng.SeedStream(7, 3)
	src.ResetEvents()
	var slow []visit
	var buf []FaultRecord
	for i := 0; i < trials; i++ {
		buf = src.Trial(rng, buf[:0])
		if len(buf) > 0 {
			slow = append(slow, visit{i, append([]FaultRecord(nil), buf...)})
		}
	}

	rng.SeedStream(7, 3)
	src.ResetEvents()
	var fast []visit
	at := 0
	for at < trials {
		skipped, recs := src.NextNonEmpty(rng, buf)
		buf = recs
		at += skipped
		if at >= trials {
			break // the non-empty trial falls past the window; discard
		}
		if len(recs) > 0 {
			fast = append(fast, visit{at, append([]FaultRecord(nil), recs...)})
		}
		at++
	}

	if !reflect.DeepEqual(slow, fast) {
		t.Fatalf("skip-sampled visits diverge from one-by-one draws:\nslow: %d visits\nfast: %d visits", len(slow), len(fast))
	}
	if len(slow) == 0 {
		t.Fatal("no non-empty trials in the window; test has no power")
	}
}

// TestTrialSourceStreamsAreReproducible: same (seed, stream) → identical
// records; different stream → different draws. ResetEvents makes the record
// stream a pure function of the substream, which is what the fleet's
// History replay depends on.
func TestTrialSourceStreamsAreReproducible(t *testing.T) {
	cfg := singleDIMMConfig()
	src, err := NewTrialSource(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	draw := func(seed, stream uint64) []FaultRecord {
		rng := simrand.New(0)
		rng.SeedStream(seed, stream)
		src.ResetEvents()
		var out []FaultRecord
		var buf []FaultRecord
		for i := 0; i < 10_000; i++ {
			buf = src.Trial(rng, buf[:0])
			out = append(out, buf...)
		}
		return out
	}
	a, b := draw(1, 0), draw(1, 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same substream produced different records")
	}
	if c := draw(1, 1); reflect.DeepEqual(a, c) {
		t.Fatal("different substreams produced identical records")
	}
}

// TestTrialSourceRecordsHaveRanges: the source always draws symbolic
// address ranges (retirement policies need the damaged row), even though
// campaign generators only do so on demand.
func TestTrialSourceRecordsHaveRanges(t *testing.T) {
	cfg := singleDIMMConfig()
	src, err := NewTrialSource(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(0)
	rng.SeedStream(13, 0)
	var buf []FaultRecord
	seen := 0
	for i := 0; i < 200_000 && seen < 50; i++ {
		buf = src.Trial(rng, buf[:0])
		for j := range buf {
			r := &buf[j]
			seen++
			if r.Range.Gran != r.Gran {
				t.Fatalf("record %d: range granularity %v != record granularity %v", j, r.Range.Gran, r.Gran)
			}
			if r.End < r.Start {
				t.Fatalf("record %d: End %v < Start %v", j, r.End, r.Start)
			}
		}
	}
	if seen == 0 {
		t.Fatal("no fault records drawn; test has no power")
	}
}
