package faultsim

import (
	"math"

	"xedsim/internal/dram"
	"xedsim/internal/obs"
)

// TrialOutcome is one scheme's verdict on one trial: the earliest failure
// instant (+Inf for survival) and its DUE/SDC classification.
type TrialOutcome struct {
	FailTime float64
	Kind     FailKind
}

// faultEntry is one fault record pre-digested for one scheme: the
// scheme-dependent quantities (domain, weight, silent flag) are computed
// once instead of O(n) times inside the reference probe's inner loop.
type faultEntry struct {
	start, end float64
	rec        *FaultRecord
	idx        int32 // original record index: the probe's tie-break order
	chip       int32 // global chip id: (channel*RPC + rank)*CPR + chip
	domain     int32
	weight     int8
	silent     bool
	overweight bool // weight > capacity: fails alone, never anchors
}

func entryLess(a, b *faultEntry) bool {
	if a.domain != b.domain {
		return a.domain < b.domain
	}
	if a.start != b.start {
		return a.start < b.start
	}
	return a.idx < b.idx
}

// prepRec is one fault record's scheme-INVARIANT digest: the quantities
// every scheme's pass 1 used to recompute per scheme (global chip id,
// silent flag, interval copy) are now computed once per trial and shared.
// chip is -1 when the record lies outside the configured fleet (hand-built
// or foreign streams); a scheme that weights such a record falls back to
// the reference probe, exactly as before.
type prepRec struct {
	start, end float64
	rec        *FaultRecord
	idx        int32
	chip       int32
	silent     bool
}

// Evaluator judges fault streams against a fixed set of schemes with all
// scratch state reused across trials. It replaces the per-record
// map[chipKey]int + O(n²) rescan of domainScheme.FailTimeKind with a
// per-trial index: entries are bucketed by domain (sorted once per trial),
// and the concurrency probe walks each domain run with epoch-stamped
// fleet-sized per-chip arrays. Results are bit-identical to the reference
// probe — TestEvaluatorMatchesReferenceProbe holds it to that.
//
// An Evaluator is not safe for concurrent use; Run gives each worker its
// own.
type Evaluator struct {
	cfg   *Config
	evals []schemeEval
	// scalingFatal mirrors the reference probe's early-out: without
	// On-Die ECC, birthtime scaling faults defeat every scheme at t=0.
	scalingFatal bool

	prep    []prepRec    // per-trial scheme-invariant digest, reused
	entries []faultEntry // per-trial per-scheme index, reused

	// Per-chip probe scratch, indexed by global chip id and validated by
	// epoch stamps so it never needs clearing between probes.
	epoch      uint32
	chipEpoch  []uint32
	chipWeight []int32
	chipMinIdx []int32 // min original idx seen on the chip; -1 = anchor chip
	chipSilent []bool

	emptyOut     []TrialOutcome
	emptySurvive bool

	// trials ticks once per EvaluateInto call when instrumentation is
	// attached; a nil counter makes the add a no-op (see SetTrialCounter).
	trials *obs.Counter
}

type schemeEval struct {
	scheme Scheme
	ds     *domainScheme // nil → generic Scheme fallback
}

// NewEvaluator prepares reusable evaluation state for cfg and schemes. The
// schemes' outcomes from EvaluateInto appear in the same order as the
// schemes argument.
func NewEvaluator(cfg *Config, schemes []Scheme) *Evaluator {
	e := &Evaluator{cfg: cfg, scalingFatal: !cfg.OnDie && cfg.ScalingRate > 0}
	for _, s := range schemes {
		ds, _ := s.(*domainScheme)
		e.evals = append(e.evals, schemeEval{scheme: s, ds: ds})
	}
	n := cfg.TotalChips()
	e.chipEpoch = make([]uint32, n)
	e.chipWeight = make([]int32, n)
	e.chipMinIdx = make([]int32, n)
	e.chipSilent = make([]bool, n)
	e.emptyOut = e.EvaluateInto(nil, nil)
	e.emptySurvive = true
	for _, o := range e.emptyOut {
		if !math.IsInf(o.FailTime, 1) {
			e.emptySurvive = false
			break
		}
	}
	return e
}

// EmptyTrialsSurvive reports whether a trial with no fault records survives
// under every scheme. When true, the campaign loop may account zero-fault
// trials wholesale (see generator.nextNonEmpty) instead of evaluating each.
func (e *Evaluator) EmptyTrialsSurvive() bool { return e.emptySurvive }

// SetTrialCounter attaches a live counter ticked once per EvaluateInto
// call. nil detaches (the default): the per-trial cost is then a single
// nil check, keeping the uninstrumented hot path untouched.
func (e *Evaluator) SetTrialCounter(c *obs.Counter) { e.trials = c }

// classLive reports whether a fault of the given class can ever carry
// nonzero weight under at least one evaluated scheme. When it cannot, the
// class is inert: weight-0 records are skipped by both the reference probe
// and the pre-index before any range or silent-count logic, so dropping
// the class from generation leaves every TrialOutcome distribution
// unchanged while shrinking the Poisson mean (bit faults under On-Die ECC
// are over half of Table I). The check sweeps the record fields the weight
// functions may consult — chip position and the silent/escalated flags —
// at their extreme values; non-domainScheme schemes are opaque, so any
// such scheme keeps every class live.
func (e *Evaluator) classLive(cls ClassRate) bool {
	anyOpaque := false
	for i := range e.evals {
		if e.evals[i].ds == nil {
			anyOpaque = true
		}
	}
	if anyOpaque || len(e.evals) == 0 {
		return true
	}
	// Only flag values the generator can actually produce matter: Silent
	// is sampled for word faults under On-Die ECC, EscalatedByScaling for
	// bit faults when birthtime scaling is modelled.
	silentVals := []bool{false}
	if cls.Gran == dram.GranWord && e.cfg.OnDie && e.cfg.SilentWordFraction > 0 {
		silentVals = append(silentVals, true)
	}
	escVals := []bool{false}
	if cls.Gran == dram.GranBit && e.cfg.OnDie && e.cfg.ScalingRate > 0 {
		escVals = append(escVals, true)
	}
	var r FaultRecord
	r.Gran = cls.Gran
	r.Transient = cls.Transient
	for i := range e.evals {
		ds := e.evals[i].ds
		for _, chip := range [2]int{0, e.cfg.ChipsPerRank - 1} {
			r.Chip = chip
			for _, silent := range silentVals {
				r.Silent = silent
				for _, esc := range escVals {
					r.EscalatedByScaling = esc
					if ds.weight(e.cfg, &r) > 0 {
						return true
					}
				}
			}
		}
	}
	return false
}

// EvaluateInto judges one trial's fault stream under every scheme,
// appending one TrialOutcome per scheme to out[:0]. The returned slice is
// valid until the next call with the same backing array. It performs no
// heap allocations once out has capacity for all schemes.
func (e *Evaluator) EvaluateInto(faults []FaultRecord, out []TrialOutcome) []TrialOutcome {
	e.trials.Inc()
	out = out[:0]
	prepared := false
	for i := range e.evals {
		ev := &e.evals[i]
		if ev.ds == nil {
			out = append(out, e.genericOutcome(ev.scheme, faults))
			continue
		}
		if !prepared {
			// Scheme-invariant digestion happens once per trial; each
			// scheme's evalDomain pass then only adds its own weight and
			// domain on top (and scalingFatal needs no digest at all).
			if !e.scalingFatal {
				e.prepare(faults)
			}
			prepared = true
		}
		out = append(out, e.evalDomainPrepared(ev.ds, faults))
	}
	return out
}

// referenceInto judges the trial with every scheme's reference probe
// (O(n²) FailTimeKind) instead of the pre-index — the EngineReference
// campaign path, kept for differential gating and debugging.
func (e *Evaluator) referenceInto(faults []FaultRecord, out []TrialOutcome) []TrialOutcome {
	e.trials.Inc()
	out = out[:0]
	for i := range e.evals {
		out = append(out, e.genericOutcome(e.evals[i].scheme, faults))
	}
	return out
}

// prepare digests the trial's records into e.prep (see prepRec).
func (e *Evaluator) prepare(faults []FaultRecord) {
	prep := e.prep[:0]
	nchips := int32(len(e.chipEpoch))
	rpc, cpr := e.cfg.RanksPerChannel, e.cfg.ChipsPerRank
	for i := range faults {
		r := &faults[i]
		chip := int32((r.Channel*rpc+r.Rank)*cpr + r.Chip)
		if chip < 0 || chip >= nchips {
			chip = -1
		}
		prep = append(prep, prepRec{
			start: r.Start, end: r.End, rec: r,
			idx: int32(i), chip: chip, silent: isSilentRecord(r),
		})
	}
	e.prep = prep
}

func (e *Evaluator) genericOutcome(s Scheme, faults []FaultRecord) TrialOutcome {
	if ks, ok := s.(KindedScheme); ok {
		t, k := ks.FailTimeKind(e.cfg, faults)
		return TrialOutcome{FailTime: t, Kind: k}
	}
	return TrialOutcome{FailTime: s.FailTime(e.cfg, faults), Kind: FailNone}
}

// evalDomain evaluates one domainScheme over the trial, digesting the
// records first — the entry point for one-off probes (the lane engine's
// scalar fallback). EvaluateInto prepares once and calls
// evalDomainPrepared per scheme instead.
func (e *Evaluator) evalDomain(s *domainScheme, faults []FaultRecord) TrialOutcome {
	if !e.scalingFatal {
		e.prepare(faults)
	}
	return e.evalDomainPrepared(s, faults)
}

// evalDomainPrepared evaluates one domainScheme over the prepared trial
// (e.prep must describe faults). Semantics match domainScheme.FailTimeKind
// exactly: the winning event — an overweight record or a failing anchor
// probe — is the one with lexicographically minimal (time, original record
// index), reproducing the reference's record-order iteration with its
// strict `t < fail` replacement rule.
func (e *Evaluator) evalDomainPrepared(s *domainScheme, faults []FaultRecord) TrialOutcome {
	if e.scalingFatal {
		return TrialOutcome{FailTime: 0, Kind: FailSDC}
	}
	cfg := e.cfg
	bestTime := math.Inf(1)
	bestIdx := int32(math.MaxInt32)
	bestKind := FailNone

	// Pass 1: weigh each prepared record for this scheme. Overweight
	// records (weight > capacity) fail the scheme on their own at onset;
	// they are folded into the running best here and still join the index
	// because they contribute weight to other anchors' probes.
	entries := e.entries[:0]
	for i := range e.prep {
		p := &e.prep[i]
		w := s.weight(cfg, p.rec)
		if w == 0 {
			continue
		}
		if p.chip < 0 || w > math.MaxInt8 {
			// Outside the pre-index's envelope: a record beyond the
			// configured fleet (hand-built or foreign trace) cannot index
			// the fixed-size chip arrays, and a weight above 127 would
			// silently wrap in faultEntry's int8 and corrupt probe
			// totals. Either way, fall back to the map-based reference
			// probe, which carries full-width ints.
			e.entries = entries[:0]
			t, k := s.FailTimeKind(cfg, faults)
			return TrialOutcome{FailTime: t, Kind: k}
		}
		if w > s.capacity {
			if p.start < bestTime || (p.start == bestTime && p.idx < bestIdx) {
				silent := 0
				if p.silent {
					silent = 1
				}
				bestTime, bestIdx = p.start, p.idx
				bestKind = s.kind(silent, 1, eventHash(p.rec))
			}
		}
		entries = append(entries, faultEntry{})
		en := &entries[len(entries)-1]
		en.start, en.end = p.start, p.end
		en.rec = p.rec
		en.idx = p.idx
		en.chip = p.chip
		en.domain = int32(s.domainOf(cfg, p.rec))
		en.weight = int8(w)
		en.silent = p.silent
		en.overweight = w > s.capacity
	}
	e.entries = entries
	if len(entries) <= 1 {
		// A single within-budget record cannot fail the scheme, and an
		// overweight one is already folded into best: no probe needed.
		return TrialOutcome{FailTime: bestTime, Kind: bestKind}
	}

	// Pass 2: bucket by domain. Trials carry a handful of visible
	// records, so an in-place insertion sort beats sort.Slice and its
	// closure allocation.
	for i := 1; i < len(entries); i++ {
		en := entries[i]
		j := i - 1
		for j >= 0 && entryLess(&en, &entries[j]) {
			entries[j+1] = entries[j]
			j--
		}
		entries[j+1] = en
	}

	// Pass 3: probe each domain run.
	for lo := 0; lo < len(entries); {
		hi := lo + 1
		for hi < len(entries) && entries[hi].domain == entries[lo].domain {
			hi++
		}
		e.probeRun(s, entries[lo:hi], &bestTime, &bestIdx, &bestKind)
		lo = hi
	}
	return TrialOutcome{FailTime: bestTime, Kind: bestKind}
}

// probeRun anchors a concurrency probe at each non-overweight entry of one
// domain's (start, idx)-sorted run: sum the per-chip MAX weights of entries
// active at the anchor instant, counting one silent flag per chip from that
// chip's minimal-original-index active record (the anchor chip keeps the
// anchor's own flag — sentinel minIdx -1). Any compound failure's onset
// coincides with some record's start, so probing starts is exhaustive.
func (e *Evaluator) probeRun(s *domainScheme, run []faultEntry, bestTime *float64, bestIdx *int32, bestKind *FailKind) {
	cfg := e.cfg
	for a := range run {
		an := &run[a]
		if an.overweight {
			continue
		}
		t := an.start
		// Anchors arrive in (start, idx) order: the first that cannot
		// beat the best event rules out every later one in this run.
		if t > *bestTime || (t == *bestTime && an.idx > *bestIdx) {
			break
		}
		e.epoch++
		epoch := e.epoch
		e.chipEpoch[an.chip] = epoch
		e.chipWeight[an.chip] = int32(an.weight)
		e.chipMinIdx[an.chip] = -1
		total := int32(an.weight)
		distinct := 1
		silent := 0
		if an.silent {
			silent = 1
		}
		for k := range run {
			o := &run[k]
			if o.start > t {
				break // sorted by start: nothing later is active yet
			}
			if k == a || o.end <= t {
				continue
			}
			if cfg.RequireAddressOverlap && !an.rec.Range.Intersects(&o.rec.Range) {
				continue
			}
			c := o.chip
			ow := int32(o.weight)
			if e.chipEpoch[c] != epoch {
				e.chipEpoch[c] = epoch
				e.chipWeight[c] = ow
				e.chipMinIdx[c] = o.idx
				e.chipSilent[c] = o.silent
				total += ow
				distinct++
				if o.silent {
					silent++
				}
				continue
			}
			if ow > e.chipWeight[c] {
				total += ow - e.chipWeight[c]
				e.chipWeight[c] = ow
			}
			if mi := e.chipMinIdx[c]; mi >= 0 && o.idx < mi {
				// An earlier-indexed record takes over the chip's
				// silent flag (the reference counts the first record
				// it encounters per chip, i.e. the lowest index).
				if o.silent != e.chipSilent[c] {
					if o.silent {
						silent++
					} else {
						silent--
					}
				}
				e.chipSilent[c] = o.silent
				e.chipMinIdx[c] = o.idx
			}
		}
		if int(total) > s.capacity {
			*bestTime = t
			*bestIdx = an.idx
			*bestKind = s.kind(silent, distinct, eventHash(an.rec))
			break // later anchors in this run are lexicographically larger
		}
	}
}
