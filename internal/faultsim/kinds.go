package faultsim

import (
	"math"
	"reflect"

	"xedsim/internal/dram"
)

// FailKind distinguishes the two ways a system "fails" in the paper's
// classification (§VIII): a Detected Uncorrectable Error halts or rolls
// back the machine; Silent Data Corruption — an undetected or
// mis-corrected error — poisons results. Both count as failed systems for
// the probability curves, but Table IV separates them.
type FailKind int

const (
	// FailNone: the system survived.
	FailNone FailKind = iota
	// FailDUE: detected, uncorrectable.
	FailDUE
	// FailSDC: silent or mis-corrected.
	FailSDC
)

// String implements fmt.Stringer.
func (k FailKind) String() string {
	switch k {
	case FailNone:
		return "none"
	case FailDUE:
		return "DUE"
	case FailSDC:
		return "SDC"
	default:
		return "FailKind(?)"
	}
}

// KindedScheme extends Scheme with failure classification.
type KindedScheme interface {
	Scheme
	// FailTimeKind returns the earliest failure and its kind
	// (FailNone with +Inf when the system survives).
	FailTimeKind(cfg *Config, faults []FaultRecord) (float64, FailKind)
}

// Mis-correction probabilities of the bounded-distance decoders when an
// error beyond their budget arrives, estimated from the codes' syndrome
// geometry and confirmed by the internal/ecc measurements:
//
//   - DIMM-level (72,64) SECDED against a chip's worth of multi-bit
//     damage: the syndrome aliases one of the 72 single-bit columns for
//     roughly 72/256 of odd-weight patterns — about a quarter of failures
//     silently mis-correct, the rest raise a DUE.
//   - RS(18,16) against a double-symbol error: single-error syndromes
//     occupy 18x255 of the 2^16 syndrome space (~7%).
//   - RS(36,32) against a triple-symbol error: correctable syndromes
//     occupy ~1% of the 2^32 space.
const (
	secdedMiscorrectProb   = 0.25
	chipkillMiscorrectProb = 0.07
	dblCKMiscorrectProb    = 0.01
)

// kindFunc decides the failure kind given the records involved. silent
// counts the silent (no catch-word) members of the failing set; total the
// distinct chips; h is a deterministic per-event hash in [0,1) for
// sampling mis-correction without consuming shared RNG state.
type kindFunc func(silent, total int, h float64) FailKind

func nonECCKind(int, int, float64) FailKind { return FailSDC }

func secdedKind(_, _ int, h float64) FailKind {
	if h < secdedMiscorrectProb {
		return FailSDC
	}
	return FailDUE
}

// xedKind: every XED failure is detected — either two catch-words with one
// parity (serial mode reports uncorrectable) or a parity mismatch whose
// diagnosis fails. The only silent path is Inter-Line mis-identification
// at ~1e-12 (Table IV), far below Monte-Carlo resolution.
func xedKind(int, int, float64) FailKind { return FailDUE }

func chipkillKind(_, _ int, h float64) FailKind {
	if h < chipkillMiscorrectProb {
		return FailSDC
	}
	return FailDUE
}

func dblChipkillKind(_, _ int, h float64) FailKind {
	if h < dblCKMiscorrectProb {
		return FailSDC
	}
	return FailDUE
}

// xedChipkillKind: with both erasures consumed by catch-words, a silent
// third error leaves no residual redundancy — the erasure decode
// "verifies" with wrong data (SDC). All-flagged overloads are detected.
func xedChipkillKind(silent, total int, h float64) FailKind {
	if silent > 0 && total > silent {
		return FailSDC
	}
	if h < dblCKMiscorrectProb {
		return FailSDC
	}
	return FailDUE
}

// hashFreeKind reports whether k is one of the stock constant kind
// functions — those that ignore every argument, hash included — and the
// constant it returns. Identity is decided by code pointer, never by
// probing: a thresholded kind could answer identically at any finite set
// of probe hashes and still not be constant. Unknown kind functions
// simply keep the exact slow path.
func hashFreeKind(k kindFunc) (FailKind, bool) {
	switch reflect.ValueOf(k).Pointer() {
	case reflect.ValueOf(nonECCKind).Pointer():
		return FailSDC, true
	case reflect.ValueOf(xedKind).Pointer():
		return FailDUE, true
	}
	return FailNone, false
}

// eventHash derives a deterministic uniform [0,1) from a fault record so
// mis-correction sampling is reproducible and independent of evaluation
// order.
func eventHash(r *FaultRecord) float64 {
	x := uint64(r.Channel)<<40 ^ uint64(r.Rank)<<32 ^ uint64(r.Chip)<<24 ^
		math.Float64bits(r.Start) ^ uint64(r.Gran)<<16
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return float64(x>>11) / (1 << 53)
}

// isSilentRecord reports whether the record contributes no catch-word.
func isSilentRecord(r *FaultRecord) bool {
	return r.Silent && r.Gran == dram.GranWord
}
