// Package faultsim is a FaultSim-style Monte-Carlo memory-reliability
// simulator (§III of the XED paper; Nair et al., ACM TACO 2015 for the
// original tool). Each trial instantiates one server's DRAM fleet, draws
// runtime faults as Poisson arrivals at the field-measured FIT rates of
// Sridharan & Liberty (Table I), assigns each fault a granularity-shaped
// address range and an active time interval (permanent faults persist,
// transient faults last until the next scrub), and asks each protection
// scheme whether — and when — the combination becomes uncorrectable or
// silently corrupting. The fraction of failed systems over the 7-year
// evaluation period is the paper's figure of merit.
//
// All schemes are evaluated against the same fault stream per trial, which
// both halves the work and makes failure-probability *ratios* (the numbers
// the paper quotes: 172x, 43x, 4x, 8.5x) far less noisy than independent
// runs would be.
package faultsim

import "xedsim/internal/dram"

// FIT is a failure rate in failures per billion device-hours.
type FIT float64

// ClassRate is the fault rate of one (granularity, persistence) class.
type ClassRate struct {
	Gran      dram.Granularity
	Transient bool
	Rate      FIT
}

// FITTable is a per-chip fault-rate table.
type FITTable []ClassRate

// TableI returns the DRAM failure rates measured in the field by Sridharan
// et al. [7], as reproduced in Table I of the XED paper. Rates are per
// chip. "Multi-rank" faults damage the same chip position in every rank of
// a DIMM and are booked here at their per-chip observed rate; the
// generator divides by ranks-per-DIMM so each chip's observed rate matches
// the table.
func TableI() FITTable {
	return FITTable{
		{dram.GranBit, true, 14.2},
		{dram.GranBit, false, 18.6},
		{dram.GranWord, true, 1.4},
		{dram.GranWord, false, 0.3},
		{dram.GranColumn, true, 1.4},
		{dram.GranColumn, false, 5.6},
		{dram.GranRow, true, 0.2},
		{dram.GranRow, false, 8.2},
		{dram.GranBank, true, 0.8},
		{dram.GranBank, false, 10},
		{dram.GranMultiBank, true, 0.3},
		{dram.GranMultiBank, false, 1.4},
		{dram.GranChip, true, 0.9}, // "multi-rank" in Table I; see above
		{dram.GranChip, false, 2.8},
	}
}

// TotalFIT sums the table.
func (t FITTable) TotalFIT() FIT {
	var s FIT
	for _, c := range t {
		s += c.Rate
	}
	return s
}

// VisibleFIT sums the rates of faults that remain visible *outside* a chip
// equipped with On-Die ECC, i.e. everything at word granularity and above
// (single-bit faults are corrected on-die and never trouble the system).
func (t FITTable) VisibleFIT() FIT {
	var s FIT
	for _, c := range t {
		if c.Gran != dram.GranBit {
			s += c.Rate
		}
	}
	return s
}
