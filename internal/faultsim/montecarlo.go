package faultsim

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"xedsim/internal/simrand"
)

// Result accumulates one scheme's outcome over all trials.
type Result struct {
	SchemeName string
	Trials     uint64
	Failures   uint64
	// DUEs and SDCs split Failures by kind (§VIII, Table IV): detected
	// uncorrectable errors versus silent/mis-corrected data corruption.
	DUEs, SDCs uint64
	// FailuresByYear[y] counts systems whose first failure occurred by
	// the end of year y+1 (cumulative).
	FailuresByYear []uint64
}

// Probability returns the probability of system failure over the full
// lifetime — the paper's figure of merit.
func (r *Result) Probability() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Failures) / float64(r.Trials)
}

// ProbabilityByYear returns P(failed by end of year y+1).
func (r *Result) ProbabilityByYear(y int) float64 {
	if r.Trials == 0 || y < 0 || y >= len(r.FailuresByYear) {
		return 0
	}
	return float64(r.FailuresByYear[y]) / float64(r.Trials)
}

// DUEProbability returns the detected-uncorrectable share of failures.
func (r *Result) DUEProbability() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.DUEs) / float64(r.Trials)
}

// SDCProbability returns the silent-corruption share of failures.
func (r *Result) SDCProbability() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.SDCs) / float64(r.Trials)
}

// StdErr returns the binomial standard error of Probability.
func (r *Result) StdErr() float64 {
	if r.Trials == 0 {
		return 0
	}
	p := r.Probability()
	return math.Sqrt(p * (1 - p) / float64(r.Trials))
}

// Report is the outcome of one Monte-Carlo campaign.
type Report struct {
	Config  Config
	Trials  uint64
	Years   int
	Results []Result
}

// ResultFor returns the named scheme's result, or nil.
func (rep *Report) ResultFor(name string) *Result {
	for i := range rep.Results {
		if rep.Results[i].SchemeName == name {
			return &rep.Results[i]
		}
	}
	return nil
}

// Improvement returns how many times more reliable scheme a is than b
// (ratio of failure probabilities b/a), the form the paper quotes
// ("XED provides 172x higher reliability than ECC-DIMM").
func (rep *Report) Improvement(a, b string) float64 {
	ra, rb := rep.ResultFor(a), rep.ResultFor(b)
	if ra == nil || rb == nil || ra.Failures == 0 {
		return math.Inf(1)
	}
	return rb.Probability() / ra.Probability()
}

// Run executes the Monte-Carlo campaign: `trials` systems, each exposed to
// one fault stream judged by every scheme. workers <= 0 selects GOMAXPROCS.
// The run is deterministic for a given (cfg, trials, seed, workers).
func Run(cfg Config, schemes []Scheme, trials int, seed uint64, workers int) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if trials <= 0 {
		return nil, fmt.Errorf("faultsim: non-positive trial count %d", trials)
	}
	if len(schemes) == 0 {
		return nil, fmt.Errorf("faultsim: no schemes to evaluate")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	years := int(math.Ceil(cfg.LifetimeHours / HoursPerYear))

	type shard struct {
		failures   [][]uint64 // [scheme][year] cumulative
		total      []uint64
		dues, sdcs []uint64
	}
	shards := make([]shard, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := &shards[w]
			sh.failures = make([][]uint64, len(schemes))
			sh.total = make([]uint64, len(schemes))
			sh.dues = make([]uint64, len(schemes))
			sh.sdcs = make([]uint64, len(schemes))
			for s := range schemes {
				sh.failures[s] = make([]uint64, years)
			}
			rng := simrand.New(seed ^ (uint64(w)+1)*0x9e3779b97f4a7c15)
			ev := NewEvaluator(&cfg, schemes)
			gen := newRunGenerator(&cfg, ev)
			var buf []FaultRecord
			var outs []TrialOutcome
			tally := func(outs []TrialOutcome) {
				for s := range outs {
					ft := outs[s].FailTime
					if math.IsInf(ft, 1) {
						continue
					}
					sh.total[s]++
					switch outs[s].Kind {
					case FailDUE:
						sh.dues[s]++
					case FailSDC:
						sh.sdcs[s]++
					}
					yr := int(ft / HoursPerYear)
					if yr >= years {
						yr = years - 1
					}
					for y := yr; y < years; y++ {
						sh.failures[s][y]++
					}
				}
			}
			lo, hi := w*trials/workers, (w+1)*trials/workers
			if ev.EmptyTrialsSurvive() {
				// Fast path: ~3/4 of trials draw zero faults under the
				// Table I rates and cannot fail any scheme, so account
				// their geometric runs wholesale and only generate +
				// evaluate the non-empty trials. Exactness: trial
				// counts are i.i.d., so the run of zeros and the next
				// nonzero count factor independently, and the
				// discarded out-of-shard trial is memoryless.
				for t := lo; t < hi; {
					skipped, rec := gen.nextNonEmpty(rng, buf)
					buf = rec
					if skipped >= hi-t {
						break // rest of the shard drew empty trials
					}
					t += skipped
					if len(buf) > 0 { // aging thinning can still empty a trial
						outs = ev.EvaluateInto(buf, outs)
						tally(outs)
					}
					t++
				}
			} else {
				for t := lo; t < hi; t++ {
					buf = gen.Trial(rng, buf)
					outs = ev.EvaluateInto(buf, outs)
					tally(outs)
				}
			}
		}(w)
	}
	wg.Wait()

	rep := &Report{Config: cfg, Trials: uint64(trials), Years: years}
	for s, scheme := range schemes {
		res := Result{SchemeName: scheme.Name(), Trials: uint64(trials), FailuresByYear: make([]uint64, years)}
		for w := range shards {
			res.Failures += shards[w].total[s]
			res.DUEs += shards[w].dues[s]
			res.SDCs += shards[w].sdcs[s]
			for y := 0; y < years; y++ {
				res.FailuresByYear[y] += shards[w].failures[s][y]
			}
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}

// AllSchemes returns the six organisations the paper evaluates, in the
// order they appear across Figures 1, 7 and 9.
func AllSchemes() []Scheme {
	return []Scheme{
		NewNonECC(),
		NewSECDED(),
		NewXED(),
		NewChipkill(),
		NewDoubleChipkill(),
		NewXEDChipkill(),
	}
}

// ImprovementCI returns the reliability-improvement ratio of scheme a over
// scheme b together with an approximate 95% confidence interval, using the
// delta method on the log-ratio of two binomial proportions (the trials
// share fault streams, so this is conservative: shared randomness only
// tightens the true interval).
func (rep *Report) ImprovementCI(a, b string) (ratio, lo, hi float64) {
	ra, rb := rep.ResultFor(a), rep.ResultFor(b)
	if ra == nil || rb == nil || ra.Failures == 0 || rb.Failures == 0 {
		return math.Inf(1), 0, math.Inf(1)
	}
	ratio = rb.Probability() / ra.Probability()
	// Var(log p̂) ≈ (1-p)/(np) for a binomial proportion, each scheme with
	// its own trial count.
	na, nb := float64(ra.Trials), float64(rb.Trials)
	va := (1 - ra.Probability()) / (na * ra.Probability())
	vb := (1 - rb.Probability()) / (nb * rb.Probability())
	se := math.Sqrt(va + vb)
	lo = ratio * math.Exp(-1.96*se)
	hi = ratio * math.Exp(1.96*se)
	return ratio, lo, hi
}
