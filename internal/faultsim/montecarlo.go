package faultsim

import (
	"context"
	"fmt"
	"math"
)

// Result accumulates one scheme's outcome over all trials.
type Result struct {
	SchemeName string
	Trials     uint64
	Failures   uint64
	// DUEs and SDCs split Failures by kind (§VIII, Table IV): detected
	// uncorrectable errors versus silent/mis-corrected data corruption.
	DUEs, SDCs uint64
	// FailuresByYear[y] counts systems whose first failure occurred by
	// the end of year y+1 (cumulative).
	FailuresByYear []uint64
}

// Probability returns the probability of system failure over the full
// lifetime — the paper's figure of merit.
func (r *Result) Probability() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Failures) / float64(r.Trials)
}

// ProbabilityByYear returns P(failed by end of year y+1).
func (r *Result) ProbabilityByYear(y int) float64 {
	if r.Trials == 0 || y < 0 || y >= len(r.FailuresByYear) {
		return 0
	}
	return float64(r.FailuresByYear[y]) / float64(r.Trials)
}

// DUEProbability returns the detected-uncorrectable share of failures.
func (r *Result) DUEProbability() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.DUEs) / float64(r.Trials)
}

// SDCProbability returns the silent-corruption share of failures.
func (r *Result) SDCProbability() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.SDCs) / float64(r.Trials)
}

// StdErr returns the binomial standard error of Probability.
func (r *Result) StdErr() float64 {
	if r.Trials == 0 {
		return 0
	}
	p := r.Probability()
	return math.Sqrt(p * (1 - p) / float64(r.Trials))
}

// Report is the outcome of one Monte-Carlo campaign.
type Report struct {
	Config Config
	// Trials counts the trials actually tallied; Requested is the campaign
	// size asked for. They differ when the campaign was cancelled partway
	// (see RunCampaign) or when trials were voided by panics.
	Trials    uint64
	Requested uint64
	Years     int
	Results   []Result
	// TrialErrors lists the trials voided by panicking scheme code, each
	// carrying what is needed to replay it in isolation.
	TrialErrors []TrialError
}

// ResultFor returns the named scheme's result, or nil.
func (rep *Report) ResultFor(name string) *Result {
	for i := range rep.Results {
		if rep.Results[i].SchemeName == name {
			return &rep.Results[i]
		}
	}
	return nil
}

// Improvement returns how many times more reliable scheme a is than b
// (ratio of failure probabilities b/a), the form the paper quotes
// ("XED provides 172x higher reliability than ECC-DIMM").
func (rep *Report) Improvement(a, b string) float64 {
	ra, rb := rep.ResultFor(a), rep.ResultFor(b)
	if ra == nil || rb == nil || ra.Failures == 0 {
		return math.Inf(1)
	}
	return rb.Probability() / ra.Probability()
}

// Run executes the Monte-Carlo campaign: `trials` systems, each exposed to
// one fault stream judged by every scheme. workers <= 0 selects GOMAXPROCS.
// The run is deterministic for a given (cfg, trials, seed) — any worker
// count produces bit-identical results. Run is the simple front door; the
// resilient engine behind it (cancellation, checkpoint/resume, panic
// isolation) is reached through RunCampaign.
func Run(cfg Config, schemes []Scheme, trials int, seed uint64, workers int) (*Report, error) {
	return RunCampaign(context.Background(), cfg, schemes, CampaignOptions{
		Trials:  trials,
		Seed:    seed,
		Workers: workers,
	})
}

// AllSchemes returns the six organisations the paper evaluates, in the
// order they appear across Figures 1, 7 and 9.
func AllSchemes() []Scheme {
	return []Scheme{
		NewNonECC(),
		NewSECDED(),
		NewXED(),
		NewChipkill(),
		NewDoubleChipkill(),
		NewXEDChipkill(),
	}
}

// SchemeNames returns the names of the paper's six organisations, in
// AllSchemes order — the vocabulary SchemesByName accepts.
func SchemeNames() []string {
	all := AllSchemes()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name()
	}
	return names
}

// SchemesByName resolves scheme names (as reported by Scheme.Name) to fresh
// scheme instances, preserving order. Unknown names are an error listing
// the valid vocabulary — the CLI's defence against typos silently running a
// zero-scheme campaign.
func SchemesByName(names ...string) ([]Scheme, error) {
	ctors := map[string]func() Scheme{
		"NonECC":            func() Scheme { return NewNonECC() },
		"ECC-DIMM (SECDED)": func() Scheme { return NewSECDED() },
		"XED":               func() Scheme { return NewXED() },
		"Chipkill":          func() Scheme { return NewChipkill() },
		"Double-Chipkill":   func() Scheme { return NewDoubleChipkill() },
		"XED+Chipkill":      func() Scheme { return NewXEDChipkill() },
	}
	out := make([]Scheme, 0, len(names))
	for _, name := range names {
		ctor, ok := ctors[name]
		if !ok {
			return nil, fmt.Errorf("faultsim: unknown scheme %q (valid: %v)", name, SchemeNames())
		}
		out = append(out, ctor())
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("faultsim: no schemes named")
	}
	return out, nil
}

// ImprovementCI returns the reliability-improvement ratio of scheme a over
// scheme b together with an approximate 95% confidence interval, using the
// delta method on the log-ratio of two binomial proportions (the trials
// share fault streams, so this is conservative: shared randomness only
// tightens the true interval).
func (rep *Report) ImprovementCI(a, b string) (ratio, lo, hi float64) {
	ra, rb := rep.ResultFor(a), rep.ResultFor(b)
	if ra == nil || rb == nil || ra.Failures == 0 || rb.Failures == 0 {
		return math.Inf(1), 0, math.Inf(1)
	}
	ratio = rb.Probability() / ra.Probability()
	// Var(log p̂) ≈ (1-p)/(np) for a binomial proportion, each scheme with
	// its own trial count.
	na, nb := float64(ra.Trials), float64(rb.Trials)
	va := (1 - ra.Probability()) / (na * ra.Probability())
	vb := (1 - rb.Probability()) / (nb * rb.Probability())
	se := math.Sqrt(va + vb)
	lo = ratio * math.Exp(-1.96*se)
	hi = ratio * math.Exp(1.96*se)
	return ratio, lo, hi
}
