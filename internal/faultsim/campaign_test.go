package faultsim

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"xedsim/internal/checkpoint"
	"xedsim/internal/obs"
)

// campaignTestOpts is the shared shape: small enough to run in
// milliseconds, chunked finely enough that scheduling and interruption
// actually exercise the chunk machinery (≈40 chunks).
func campaignTestOpts() CampaignOptions {
	return CampaignOptions{Trials: 20_000, Seed: 99, ChunkSize: 512}
}

func mustCampaign(t *testing.T, ctx context.Context, cfg Config, schemes []Scheme, opts CampaignOptions) *Report {
	t.Helper()
	rep, err := RunCampaign(ctx, cfg, schemes, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRunCampaignWorkerCountInvariant(t *testing.T) {
	cfg := DefaultConfig()
	var reference *Report
	for _, workers := range []int{1, 4, 16} {
		opts := campaignTestOpts()
		opts.Workers = workers
		rep := mustCampaign(t, context.Background(), cfg, AllSchemes(), opts)
		if reference == nil {
			reference = rep
			continue
		}
		if !reflect.DeepEqual(rep.Results, reference.Results) {
			t.Fatalf("workers=%d diverged from workers=1:\n%+v\nvs\n%+v",
				workers, rep.Results, reference.Results)
		}
	}
	if reference.Trials != uint64(campaignTestOpts().Trials) {
		t.Fatalf("tallied %d of %d trials", reference.Trials, campaignTestOpts().Trials)
	}
}

// TestRunCampaignMetrics: a metrics registry attached to a campaign ends
// the run agreeing exactly with the Report — trials, chunks, per-scheme
// tallies, checkpoint saves — and the evaluated-trial counter covers every
// non-empty trial.
func TestRunCampaignMetrics(t *testing.T) {
	cfg := DefaultConfig()
	reg := obs.NewRegistry()
	opts := campaignTestOpts()
	opts.Workers = 4
	opts.CheckpointPath = filepath.Join(t.TempDir(), "snap.json")
	opts.Metrics = reg
	rep := mustCampaign(t, context.Background(), cfg, AllSchemes(), opts)

	snap := reg.Snapshot()
	if got := snap.Counters["campaign.trials_done"]; got != rep.Trials {
		t.Fatalf("trials_done = %d, Report.Trials = %d", got, rep.Trials)
	}
	wantChunks := (opts.Trials + opts.ChunkSize - 1) / opts.ChunkSize
	if got := snap.Counters["campaign.chunks_done"]; got != uint64(wantChunks) {
		t.Fatalf("chunks_done = %d, want %d", got, wantChunks)
	}
	if got := snap.Gauges["campaign.chunks_total"]; got != int64(wantChunks) {
		t.Fatalf("chunks_total = %d, want %d", got, wantChunks)
	}
	if got := snap.Gauges["campaign.trials_requested"]; got != int64(opts.Trials) {
		t.Fatalf("trials_requested = %d, want %d", got, opts.Trials)
	}
	for _, res := range rep.Results {
		prefix := "campaign.scheme." + res.SchemeName
		if got := snap.Counters[prefix+".failures"]; got != res.Failures {
			t.Fatalf("%s.failures = %d, Report says %d", prefix, got, res.Failures)
		}
		if got := snap.Counters[prefix+".dues"]; got != res.DUEs {
			t.Fatalf("%s.dues = %d, Report says %d", prefix, got, res.DUEs)
		}
		if got := snap.Counters[prefix+".sdcs"]; got != res.SDCs {
			t.Fatalf("%s.sdcs = %d, Report says %d", prefix, got, res.SDCs)
		}
	}
	// The final snapshot is always written, so at least one timed save.
	saves := snap.Counters["campaign.checkpoint.saves"]
	if saves == 0 {
		t.Fatal("no checkpoint saves recorded")
	}
	if h := snap.Histograms["campaign.checkpoint.save_ms"]; h.Count != saves {
		t.Fatalf("save_ms histogram count %d != saves %d", h.Count, saves)
	}
	if got := snap.Counters["campaign.trials_evaluated"]; got == 0 || got > rep.Trials {
		t.Fatalf("trials_evaluated = %d, want in (0, %d]", got, rep.Trials)
	}
}

func TestRunCampaignChunkSizeChangesAreDeclared(t *testing.T) {
	// The determinism contract fixes (cfg, Trials, Seed, ChunkSize) —
	// ChunkSize is part of the stream layout, so changing it may change
	// the sampled faults. This test pins the *guaranteed* half: same
	// ChunkSize twice is bit-identical.
	cfg := DefaultConfig()
	a := mustCampaign(t, context.Background(), cfg, AllSchemes(), campaignTestOpts())
	b := mustCampaign(t, context.Background(), cfg, AllSchemes(), campaignTestOpts())
	if !reflect.DeepEqual(a.Results, b.Results) {
		t.Fatal("identical campaigns diverged")
	}
}

func TestRunCampaignCheckpointResumeBitIdentical(t *testing.T) {
	cfg := DefaultConfig()
	schemes := AllSchemes()
	full := mustCampaign(t, context.Background(), cfg, schemes, campaignTestOpts())

	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("interrupt randomization seed: %d", seed)

	for round := 0; round < 3; round++ {
		path := filepath.Join(t.TempDir(), "campaign.ckpt")
		nChunks := (campaignTestOpts().Trials + campaignTestOpts().ChunkSize - 1) / campaignTestOpts().ChunkSize
		stopAfter := 1 + rng.Intn(nChunks-2) // interrupt at a random trial count

		ctx, cancel := context.WithCancel(context.Background())
		opts := campaignTestOpts()
		opts.Workers = 4
		opts.CheckpointPath = path
		opts.CheckpointInterval = time.Nanosecond // snapshot at every merge
		opts.OnChunk = func(done, total int) {
			if done >= stopAfter {
				cancel()
			}
		}
		rep, err := RunCampaign(ctx, cfg, schemes, opts)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("round %d: interrupted run returned %v", round, err)
		}
		if rep.Trials >= rep.Requested {
			// The cancel raced ahead of the workers and the run finished
			// anyway; it is still a valid resume input, but the round
			// proves nothing, so re-roll.
			round--
			continue
		}

		resumed := opts
		resumed.OnChunk = nil
		resumed.Resume = true
		rep2 := mustCampaign(t, context.Background(), cfg, schemes, resumed)
		if rep2.Trials != full.Trials {
			t.Fatalf("round %d: resumed run tallied %d trials, want %d", round, rep2.Trials, full.Trials)
		}
		if !reflect.DeepEqual(rep2.Results, full.Results) {
			t.Fatalf("round %d (stop after %d/%d chunks): resumed results diverge from uninterrupted:\n%+v\nvs\n%+v",
				round, stopAfter, nChunks, rep2.Results, full.Results)
		}
	}
}

func TestRunCampaignResumeShortCircuitsCompletedRun(t *testing.T) {
	cfg := DefaultConfig()
	path := filepath.Join(t.TempDir(), "done.ckpt")
	opts := campaignTestOpts()
	opts.CheckpointPath = path
	first := mustCampaign(t, context.Background(), cfg, AllSchemes(), opts)

	opts.Resume = true
	again := mustCampaign(t, context.Background(), cfg, AllSchemes(), opts)
	if !reflect.DeepEqual(first.Results, again.Results) {
		t.Fatal("resuming a complete snapshot changed the results")
	}
}

func TestRunCampaignRefusesMismatchedCheckpoint(t *testing.T) {
	cfg := DefaultConfig()
	path := filepath.Join(t.TempDir(), "campaign.ckpt")
	opts := campaignTestOpts()
	opts.CheckpointPath = path
	mustCampaign(t, context.Background(), cfg, AllSchemes(), opts)

	for name, mutate := range map[string]func(*Config, *CampaignOptions){
		"seed":    func(c *Config, o *CampaignOptions) { o.Seed++ },
		"trials":  func(c *Config, o *CampaignOptions) { o.Trials *= 2 },
		"chunk":   func(c *Config, o *CampaignOptions) { o.ChunkSize *= 2 },
		"config":  func(c *Config, o *CampaignOptions) { c.ScrubIntervalHours = 1 },
		"schemes": nil, // handled below: different scheme set
	} {
		mcfg, mopts := cfg, opts
		mopts.Resume = true
		schemes := AllSchemes()
		if mutate != nil {
			mutate(&mcfg, &mopts)
		} else {
			schemes = schemes[:3]
		}
		if _, err := RunCampaign(context.Background(), mcfg, schemes, mopts); !errors.Is(err, checkpoint.ErrConfigMismatch) {
			t.Fatalf("%s mutation: resume returned %v, want ErrConfigMismatch", name, err)
		}
	}
}

func TestRunCampaignCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := RunCampaign(ctx, DefaultConfig(), AllSchemes(), campaignTestOpts())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if rep == nil || rep.Trials != 0 {
		t.Fatalf("expected empty partial report, got %+v", rep)
	}
}

// panicScheme is an opaque (non-domainScheme) stub that survives empty
// trials but panics whenever a trial drew at least minFaults records —
// deterministic in the fault stream, so every worker count trips over
// exactly the same trials.
type panicScheme struct{ minFaults int }

func (p *panicScheme) Name() string { return "panic-stub" }

func (p *panicScheme) FailTime(cfg *Config, faults []FaultRecord) float64 {
	if len(faults) >= p.minFaults {
		panic("panic-stub: injected trial failure")
	}
	return math.Inf(1)
}

func TestRunCampaignPanicIsolationAndReplay(t *testing.T) {
	cfg := DefaultConfig()
	schemes := []Scheme{NewXED(), &panicScheme{minFaults: 2}}
	var reference *Report
	for _, workers := range []int{1, 4, 16} {
		opts := campaignTestOpts()
		opts.Workers = workers
		opts.ErrorBudget = 1 << 20 // isolate, never abort
		rep, err := RunCampaign(context.Background(), cfg, schemes, opts)
		if err != nil {
			t.Fatalf("workers=%d: campaign aborted: %v", workers, err)
		}
		if len(rep.TrialErrors) == 0 {
			t.Fatalf("workers=%d: stub never panicked; weaken minFaults", workers)
		}
		if rep.Trials != rep.Requested-uint64(len(rep.TrialErrors)) {
			t.Fatalf("workers=%d: %d tallied + %d voided != %d requested",
				workers, rep.Trials, len(rep.TrialErrors), rep.Requested)
		}
		if reference == nil {
			reference = rep
			continue
		}
		if !reflect.DeepEqual(rep.Results, reference.Results) {
			t.Fatalf("workers=%d: results diverged under panics", workers)
		}
		if len(rep.TrialErrors) != len(reference.TrialErrors) {
			t.Fatalf("workers=%d: %d trial errors vs %d", workers, len(rep.TrialErrors), len(reference.TrialErrors))
		}
		for i := range rep.TrialErrors {
			a, b := &rep.TrialErrors[i], &reference.TrialErrors[i]
			if a.Trial != b.Trial || a.Chunk != b.Chunk || a.RNGState != b.RNGState ||
				!reflect.DeepEqual(a.Faults, b.Faults) {
				t.Fatalf("workers=%d: trial error %d differs: %+v vs %+v", workers, i, a, b)
			}
		}
	}

	// Every recorded error replays in isolation: same faults, same panic.
	for i, te := range reference.TrialErrors {
		if i >= 5 {
			break
		}
		faults, outs, panicked, err := te.Replay(cfg, schemes)
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		if panicked == nil {
			t.Fatalf("replay %d: panic did not reproduce", i)
		}
		if outs != nil {
			t.Fatalf("replay %d: got outcomes despite panic", i)
		}
		if !reflect.DeepEqual(faults, te.Faults) {
			t.Fatalf("replay %d regenerated different faults:\n%+v\nvs recorded\n%+v", i, faults, te.Faults)
		}
	}

	// And the error itself is descriptive.
	if msg := reference.TrialErrors[0].Error(); msg == "" {
		t.Fatal("empty TrialError message")
	}
}

func TestRunCampaignErrorBudget(t *testing.T) {
	cfg := DefaultConfig()
	schemes := []Scheme{NewXED(), &panicScheme{minFaults: 1}} // panics often
	opts := campaignTestOpts()
	opts.ErrorBudget = -1 // tolerate none
	rep, err := RunCampaign(context.Background(), cfg, schemes, opts)
	if !errors.Is(err, ErrErrorBudgetExceeded) {
		t.Fatalf("err = %v, want ErrErrorBudgetExceeded", err)
	}
	if rep == nil || len(rep.TrialErrors) == 0 {
		t.Fatal("aborted campaign should still report its trial errors")
	}
}

func TestRunCampaignValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := RunCampaign(context.Background(), cfg, AllSchemes(), CampaignOptions{Trials: 0}); err == nil {
		t.Fatal("zero trials accepted")
	}
	if _, err := RunCampaign(context.Background(), cfg, nil, CampaignOptions{Trials: 10}); err == nil {
		t.Fatal("empty scheme set accepted")
	}
	bad := cfg
	bad.Channels = 0
	if _, err := RunCampaign(context.Background(), bad, AllSchemes(), CampaignOptions{Trials: 10}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSchemesByName(t *testing.T) {
	names := SchemeNames()
	if len(names) != 6 {
		t.Fatalf("expected 6 scheme names, got %v", names)
	}
	schemes, err := SchemesByName(names...)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range schemes {
		if s.Name() != names[i] {
			t.Fatalf("scheme %d resolved to %q, want %q", i, s.Name(), names[i])
		}
	}
	if _, err := SchemesByName("XED", "NoSuchScheme"); err == nil {
		t.Fatal("unknown scheme name accepted")
	}
	if _, err := SchemesByName(); err == nil {
		t.Fatal("empty name list accepted")
	}
}

func TestConfigValidateRejectsBadRatesAndAging(t *testing.T) {
	base := DefaultConfig()

	cfg := base
	cfg.FITs = append(FITTable{}, base.FITs...)
	cfg.FITs[0].Rate = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative FIT rate accepted")
	}

	cfg = base
	cfg.FITs = append(FITTable{}, base.FITs...)
	cfg.FITs[0].Rate = FIT(math.NaN())
	if err := cfg.Validate(); err == nil {
		t.Fatal("NaN FIT rate accepted")
	}

	cfg = base
	cfg.ScalingRate = math.NaN()
	if err := cfg.Validate(); err == nil {
		t.Fatal("NaN scaling rate accepted")
	}

	cfg = base
	cfg.Aging = AgingProfile{InfantFactor: -2, WearoutFactor: 1}
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative aging factor accepted")
	}

	cfg = base
	cfg.Aging = AgingProfile{InfantFactor: 1, WearoutFactor: 1, WearoutOnset: 1.5}
	if err := cfg.Validate(); err == nil {
		t.Fatal("out-of-range wearout onset accepted")
	}
}
