package faultsim

import (
	"bytes"
	"testing"

	"xedsim/internal/dram"
	"xedsim/internal/ecc"
)

func TestTraceRoundTripJSON(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FITs = FITTable{{dram.GranRow, false, 200000}, {dram.GranBit, true, 500000}}
	tr, err := CaptureTrace(cfg, 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Trials) != len(tr.Trials) || back.Seed != tr.Seed {
		t.Fatal("trace shape lost in round trip")
	}
	for i := range tr.Trials {
		if len(back.Trials[i]) != len(tr.Trials[i]) {
			t.Fatalf("trial %d record count lost", i)
		}
		for j := range tr.Trials[i] {
			a, b := tr.Trials[i][j], back.Trials[i][j]
			if a.Chip != b.Chip || a.Gran != b.Gran || a.Start != b.Start || a.Range != b.Range {
				t.Fatalf("trial %d record %d mutated: %+v vs %+v", i, j, a, b)
			}
		}
	}
}

func TestTraceJudgeMatchesRun(t *testing.T) {
	cfg := DefaultConfig()
	const trials = 30000
	const seed = 77
	tr, err := CaptureTrace(cfg, trials, seed)
	if err != nil {
		t.Fatal(err)
	}
	judged, err := tr.Judge([]Scheme{NewXED(), NewSECDED()})
	if err != nil {
		t.Fatal(err)
	}
	// A single-worker Run with the worker-0 derived seed consumes the
	// same stream the capture did... worker seeds are transformed, so
	// instead compare against judging the same trace twice and against
	// plausibility bounds from Run.
	judged2, err := tr.Judge([]Scheme{NewXED(), NewSECDED()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range judged.Results {
		if judged.Results[i].Failures != judged2.Results[i].Failures {
			t.Fatal("judging is not deterministic")
		}
	}
	ran, err := Run(cfg, []Scheme{NewXED(), NewSECDED()}, trials, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range judged.Results {
		a := judged.Results[i].Probability()
		b := ran.Results[i].Probability()
		// Different RNG stream partitioning: expect statistical, not
		// exact, agreement.
		if b > 0.001 && (a < b*0.7 || a > b*1.4) {
			t.Fatalf("%s: judged %v vs run %v", judged.Results[i].SchemeName, a, b)
		}
		if judged.Results[i].DUEs+judged.Results[i].SDCs != judged.Results[i].Failures {
			t.Fatal("kinds do not partition failures")
		}
	}
}

func TestTraceApplyToChip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FITs = FITTable{{dram.GranBank, false, 3000000}}
	tr, err := CaptureTrace(cfg, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Trials[0]) == 0 {
		t.Skip("no faults drawn at this seed")
	}
	rec := tr.Trials[0][0]
	chip := dram.NewChip(cfg.Geom, ecc.NewCRC8ATM())
	n := ApplyToChip(tr.Trials[0], rec.Channel, rec.Rank, rec.Chip, chip)
	if n == 0 {
		t.Fatal("no faults applied")
	}
	if len(chip.Faults()) != n {
		t.Fatalf("chip holds %d faults, applied %d", len(chip.Faults()), n)
	}
	// The replayed bank fault must corrupt reads in its bank.
	bad := 0
	for col := 0; col < 16; col++ {
		a := dram.WordAddr{Bank: rec.Range.Bank, Row: 0, Col: col}
		if r := chip.Read(a); r.Status != ecc.StatusOK {
			bad++
		}
	}
	if bad < 12 {
		t.Fatalf("replayed fault corrupted only %d/16 words", bad)
	}
}

func TestTraceValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := CaptureTrace(cfg, 0, 1); err == nil {
		t.Error("expected error for zero trials")
	}
	bad := cfg
	bad.Channels = 0
	if _, err := CaptureTrace(bad, 1, 1); err == nil {
		t.Error("expected error for bad config")
	}
	if _, err := ReadTrace(bytes.NewReader([]byte("{not json"))); err == nil {
		t.Error("expected decode error")
	}
	tr, _ := CaptureTrace(cfg, 1, 1)
	if _, err := tr.Judge(nil); err == nil {
		t.Error("expected error for no schemes")
	}
}
