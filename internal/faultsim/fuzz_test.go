package faultsim

import (
	"math"
	"testing"

	"xedsim/internal/simrand"
)

// FuzzEvaluatorVsReference is the fuzzing face of the conformance
// differential harness: arbitrary (seed, config-shape) inputs generate a
// fault stream plus adversarial mutations, and the pre-indexed Evaluator
// must stay bit-identical to the O(n²) reference probe for every scheme.
// The fuzzer explores config corners (x4/x8, On-Die ECC off, scaling
// faults, address-overlap criterion, FIT inflation) that a fixed test
// table samples only pointwise.
func FuzzEvaluatorVsReference(f *testing.F) {
	f.Add(uint64(42), uint8(0), uint8(0), false)
	f.Add(uint64(1), uint8(0xff), uint8(200), true)
	f.Add(uint64(7), uint8(0b10101), uint8(50), false)
	f.Fuzz(func(t *testing.T, seed uint64, shape, inflateFactor uint8, mutate bool) {
		cfg := DefaultConfig()
		if shape&1 != 0 {
			cfg.ChipsPerRank = 18 // x4 organisation
		}
		if shape&2 != 0 {
			cfg.OnDie = false
		}
		if shape&4 != 0 {
			cfg.ScalingRate = 1e-4
		}
		if shape&8 != 0 {
			cfg.RequireAddressOverlap = true
		}
		if shape&16 != 0 {
			cfg.SilentWordFraction = 0.5
		}
		cfg.Channels = 1 + int(shape>>5&3)
		if inflateFactor > 0 {
			fits := make(FITTable, len(cfg.FITs))
			copy(fits, cfg.FITs)
			for i := range fits {
				fits[i].Rate *= FIT(inflateFactor)
			}
			cfg.FITs = fits
		}
		if err := cfg.Validate(); err != nil {
			t.Skip()
		}
		schemes := AllSchemes()
		gen := newGenerator(&cfg)
		ev := NewEvaluator(&cfg, schemes)
		rng := simrand.New(seed)
		buf := gen.Trial(rng, nil)
		if mutate && len(buf) >= 2 {
			// Start-time ties and same-chip pileups stress the pre-index's
			// tie-break and per-chip bookkeeping.
			mut := simrand.New(seed ^ 0x9e3779b97f4a7c15)
			for m := 0; m < 4; m++ {
				i, j := mut.Intn(len(buf)), mut.Intn(len(buf))
				buf[i].Start = buf[j].Start
				if buf[i].End <= buf[i].Start {
					buf[i].End = buf[i].Start + 1
				}
			}
			i, j := mut.Intn(len(buf)), mut.Intn(len(buf))
			buf[i].Channel, buf[i].Rank, buf[i].Chip = buf[j].Channel, buf[j].Rank, buf[j].Chip
		}
		outs := ev.EvaluateInto(buf, nil)
		for s, scheme := range schemes {
			wantT, wantK := scheme.(KindedScheme).FailTimeKind(&cfg, buf)
			if math.Float64bits(outs[s].FailTime) != math.Float64bits(wantT) || outs[s].Kind != wantK {
				t.Fatalf("scheme %s: evaluator (%v, %v) != reference (%v, %v) on %d faults (shape %#x, inflate %d)",
					scheme.Name(), outs[s].FailTime, outs[s].Kind, wantT, wantK, len(buf), shape, inflateFactor)
			}
		}
	})
}
