package faultsim

import (
	"math"
	"testing"

	"xedsim/internal/simrand"
)

// FuzzEvaluatorVsReference is the fuzzing face of the conformance
// differential harness: arbitrary (seed, config-shape) inputs generate a
// fault stream plus adversarial mutations, and the pre-indexed Evaluator
// must stay bit-identical to the O(n²) reference probe for every scheme.
// The fuzzer explores config corners (x4/x8, On-Die ECC off, scaling
// faults, address-overlap criterion, FIT inflation) that a fixed test
// table samples only pointwise.
func FuzzEvaluatorVsReference(f *testing.F) {
	f.Add(uint64(42), uint8(0), uint8(0), false)
	f.Add(uint64(1), uint8(0xff), uint8(200), true)
	f.Add(uint64(7), uint8(0b10101), uint8(50), false)
	f.Fuzz(func(t *testing.T, seed uint64, shape, inflateFactor uint8, mutate bool) {
		cfg := DefaultConfig()
		if shape&1 != 0 {
			cfg.ChipsPerRank = 18 // x4 organisation
		}
		if shape&2 != 0 {
			cfg.OnDie = false
		}
		if shape&4 != 0 {
			cfg.ScalingRate = 1e-4
		}
		if shape&8 != 0 {
			cfg.RequireAddressOverlap = true
		}
		if shape&16 != 0 {
			cfg.SilentWordFraction = 0.5
		}
		cfg.Channels = 1 + int(shape>>5&3)
		if inflateFactor > 0 {
			fits := make(FITTable, len(cfg.FITs))
			copy(fits, cfg.FITs)
			for i := range fits {
				fits[i].Rate *= FIT(inflateFactor)
			}
			cfg.FITs = fits
		}
		if err := cfg.Validate(); err != nil {
			t.Skip()
		}
		schemes := AllSchemes()
		gen := newGenerator(&cfg)
		ev := NewEvaluator(&cfg, schemes)
		rng := simrand.New(seed)
		buf := gen.Trial(rng, nil)
		if mutate && len(buf) >= 2 {
			// Start-time ties and same-chip pileups stress the pre-index's
			// tie-break and per-chip bookkeeping.
			mut := simrand.New(seed ^ 0x9e3779b97f4a7c15)
			for m := 0; m < 4; m++ {
				i, j := mut.Intn(len(buf)), mut.Intn(len(buf))
				buf[i].Start = buf[j].Start
				if buf[i].End <= buf[i].Start {
					buf[i].End = buf[i].Start + 1
				}
			}
			i, j := mut.Intn(len(buf)), mut.Intn(len(buf))
			buf[i].Channel, buf[i].Rank, buf[i].Chip = buf[j].Channel, buf[j].Rank, buf[j].Chip
		}
		outs := ev.EvaluateInto(buf, nil)
		for s, scheme := range schemes {
			wantT, wantK := scheme.(KindedScheme).FailTimeKind(&cfg, buf)
			if math.Float64bits(outs[s].FailTime) != math.Float64bits(wantT) || outs[s].Kind != wantK {
				t.Fatalf("scheme %s: evaluator (%v, %v) != reference (%v, %v) on %d faults (shape %#x, inflate %d)",
					scheme.Name(), outs[s].FailTime, outs[s].Kind, wantT, wantK, len(buf), shape, inflateFactor)
			}
		}
	})
}

// FuzzLaneVsIndexedEvaluator is the bit-sliced engine's differential
// fuzzer: it generates nTrials fault streams under a fuzzer-chosen config
// shape, packs them into LaneBatch words (including deliberately partial
// final batches), and demands that the LaneEvaluator's unpacked outcomes
// match the indexed Evaluator bit for bit on every (trial, scheme) pair.
// The scheme set covers the stock organisations plus the corners the mask
// pass special-cases: weights straddling the scalar probe's int8 envelope
// and an off-menu domain mapping the lane engine must route through its
// conservative whole-trial path.
func FuzzLaneVsIndexedEvaluator(f *testing.F) {
	f.Add(uint64(42), uint8(0), uint8(0), uint8(1))
	f.Add(uint64(99), uint8(0xff), uint8(200), uint8(65))
	f.Add(uint64(7), uint8(0b10101), uint8(120), uint8(64))
	f.Add(uint64(3), uint8(0b00110), uint8(150), uint8(63))
	f.Add(uint64(1234), uint8(0b01000), uint8(80), uint8(130))
	f.Fuzz(func(t *testing.T, seed uint64, shape, inflateFactor, nTrials uint8) {
		if nTrials == 0 {
			t.Skip()
		}
		cfg := DefaultConfig()
		if shape&1 != 0 {
			cfg.ChipsPerRank = 18
		}
		if shape&2 != 0 {
			cfg.OnDie = false
		}
		if shape&4 != 0 {
			cfg.ScalingRate = 1e-4
		}
		if shape&8 != 0 {
			cfg.RequireAddressOverlap = true
		}
		if shape&16 != 0 {
			cfg.SilentWordFraction = 0.5
		}
		cfg.Channels = 1 + int(shape>>5&3)
		if inflateFactor > 0 {
			fits := make(FITTable, len(cfg.FITs))
			copy(fits, cfg.FITs)
			for i := range fits {
				fits[i].Rate *= FIT(inflateFactor)
			}
			cfg.FITs = fits
		}
		if err := cfg.Validate(); err != nil {
			t.Skip()
		}
		heavy := func(w int) weightFunc {
			return func(cfg *Config, r *FaultRecord) int {
				if visibleWeight(cfg, r) == 0 {
					return 0
				}
				return w
			}
		}
		schemes := append(AllSchemes(),
			NewRankErasureScheme("Heavy120", 200, heavy(120)),
			NewRankErasureScheme("Heavy130", 200, heavy(130)),
			chipParityScheme(1),
		)
		gen := newGenerator(&cfg)
		ev := NewEvaluator(&cfg, schemes)
		lv := NewLaneEvaluator(ev)
		rng := simrand.New(seed)

		trials := make([][]FaultRecord, nTrials)
		for i := range trials {
			trials[i] = gen.Trial(rng, nil)
		}
		var want, got []TrialOutcome
		var b LaneBatch
		var st simrand.State
		for base := 0; base < len(trials); base += LaneWidth {
			b.Reset()
			end := base + LaneWidth
			if end > len(trials) {
				end = len(trials)
			}
			for i := base; i < end; i++ {
				b.Add(i-base, st, trials[i])
			}
			lv.EvaluateBatch(&b)
			if v := b.Voided(); v != 0 {
				t.Fatalf("batch at %d voided lanes %#x with panic-free schemes", base, v)
			}
			for i := base; i < end; i++ {
				want = ev.EvaluateInto(trials[i], want[:0])
				got = lv.AppendLaneOutcomes(i-base, got[:0])
				for s := range schemes {
					if math.Float64bits(got[s].FailTime) != math.Float64bits(want[s].FailTime) || got[s].Kind != want[s].Kind {
						t.Fatalf("trial %d scheme %s: lanes (%v, %v) != indexed (%v, %v) on %d faults (shape %#x, inflate %d)",
							i, schemes[s].Name(), got[s].FailTime, got[s].Kind,
							want[s].FailTime, want[s].Kind, len(trials[i]), shape, inflateFactor)
					}
				}
			}
		}
	})
}
