package faultsim

import (
	"math"

	"xedsim/internal/dram"
	"xedsim/internal/simrand"
)

// FaultRecord is one runtime fault instance in one chip of the fleet.
type FaultRecord struct {
	// Channel, Rank, Chip locate the afflicted device.
	Channel, Rank, Chip int
	// Start and End bound the interval (in hours) during which the
	// fault corrupts reads: permanent faults run to the lifetime's end,
	// transient faults until the next patrol scrub.
	Start, End float64
	// Gran and Transient classify the fault. GranChip records a
	// multi-rank event's footprint in this chip.
	Gran      dram.Granularity
	Transient bool
	// Silent is true when the on-die code misses the fault's damage in
	// the accessed word (sampled at SilentWordFraction for word faults).
	Silent bool
	// EscalatedByScaling marks a single-bit runtime fault that landed
	// in a word already holding a birthtime weak cell: the 2-bit
	// combination exceeds on-die *correction* (it is still detected),
	// so the fault becomes visible outside the chip (§VII, footnote 2).
	EscalatedByScaling bool
	// Range is the symbolic address range, used when the precise
	// address-overlap criterion is enabled. The Monte-Carlo fast path
	// leaves it zero unless Config.RequireAddressOverlap is set; Trial
	// (the trace/replay entry point) always populates it.
	Range dram.Fault
	// EventID groups the per-chip records of one multi-rank event.
	EventID uint64
}

// Overlaps reports whether the two faults' active intervals intersect.
func (f *FaultRecord) Overlaps(o *FaultRecord) bool {
	return f.Start < o.End && o.Start < f.End
}

// OverlapStart returns the instant both faults are first active together.
func (f *FaultRecord) OverlapStart(o *FaultRecord) float64 {
	return math.Max(f.Start, o.Start)
}

// generator draws the fault stream for one trial. All per-config constants
// (class means, exp(-mean), Lemire thresholds, the scaling-escalation
// probability) are computed once here rather than per record; the trial
// loop runs millions of times per campaign.
type generator struct {
	cfg *Config
	// classes holds the fault classes this generator draws from —
	// cfg.FITs, minus any classes a scheme-aware caller proved inert —
	// and classMeans[i] is the expected number of class-i faults across
	// the whole fleet and lifetime.
	classes    []ClassRate
	classMeans []float64
	totalMean  float64
	nextEvent  uint64

	// withRanges controls whether emitted records carry their symbolic
	// address Range. The Monte-Carlo schemes only read Range under the
	// precise address-overlap criterion, so Run skips the (RNG-heavy)
	// range draws otherwise. Trial always sets it.
	withRanges bool

	// Precomputed samplers and constants.
	trialCount   simrand.PoissonSampler // mean = totalMean
	trialCountPk simrand.PoissonSampler // mean = totalMean * aging peak
	classSamp    simrand.WeightedSampler
	chSamp       simrand.IntnSampler
	rankSamp     simrand.IntnSampler
	chipSamp     simrand.IntnSampler
	bankSamp     simrand.IntnSampler
	rowSamp      simrand.IntnSampler
	colSamp      simrand.IntnSampler
	bitSamp      simrand.IntnSampler
	escalateProb float64 // P(struck word already holds a weak cell)
}

func newGenerator(cfg *Config) *generator {
	return newFilteredGenerator(cfg, nil)
}

// resetEvents rewinds the EventID counter. The campaign engine calls it at
// every chunk boundary so a chunk's records are a pure function of the
// chunk's substream: EventIDs only ever distinguish records *within* one
// trial (eventHash ignores them), so restarting the counter is
// outcome-neutral.
func (g *generator) resetEvents() {
	g.nextEvent = 0
}

// newFilteredGenerator builds a generator over the classes that pass
// `live` (nil keeps everything). Dropping classes rescales the Poisson
// trial-count mean accordingly, so the surviving classes keep their exact
// per-class arrival statistics.
func newFilteredGenerator(cfg *Config, live func(ClassRate) bool) *generator {
	g := &generator{cfg: cfg, withRanges: true}
	chips := float64(cfg.TotalChips())
	for _, cls := range cfg.FITs {
		if live != nil && !live(cls) {
			continue
		}
		perChip := float64(cls.Rate) * 1e-9 * cfg.LifetimeHours
		mean := perChip * chips
		if cls.Gran == dram.GranChip {
			// Multi-rank faults live in circuitry shared by the
			// ranks of one DIMM (register/buffer, shared I/O), so
			// the natural event unit is the DIMM: one event per
			// DIMM at the Table I rate, expanded into one chip
			// record per rank.
			mean = float64(cls.Rate) * 1e-9 * cfg.LifetimeHours * float64(cfg.Channels)
		}
		g.classes = append(g.classes, cls)
		g.classMeans = append(g.classMeans, mean)
		g.totalMean += mean
	}
	g.trialCount = simrand.NewPoissonSampler(g.totalMean)
	if cfg.Aging.enabled() {
		g.trialCountPk = simrand.NewPoissonSampler(g.totalMean * cfg.Aging.Peak())
	}
	if g.totalMean > 0 {
		g.classSamp = simrand.NewWeightedSampler(g.classMeans)
	}
	g.chSamp = simrand.NewIntnSampler(cfg.Channels)
	g.rankSamp = simrand.NewIntnSampler(cfg.RanksPerChannel)
	g.chipSamp = simrand.NewIntnSampler(cfg.ChipsPerRank)
	g.bankSamp = simrand.NewIntnSampler(cfg.Geom.Banks)
	g.rowSamp = simrand.NewIntnSampler(cfg.Geom.RowsPerBank)
	g.colSamp = simrand.NewIntnSampler(cfg.Geom.ColsPerRow)
	g.bitSamp = simrand.NewIntnSampler(72)
	if cfg.OnDie && cfg.ScalingRate > 0 {
		// Probability the struck word already holds a weak cell among
		// its other 71 bits.
		g.escalateProb = 1 - math.Pow(1-cfg.ScalingRate, 71)
	}
	return g
}

// newRunGenerator builds the Monte-Carlo campaign generator: identical
// outcome statistics under ev's schemes, but classes no scheme can react
// to are not generated at all, and address ranges are only drawn when a
// scheme will actually read them.
func newRunGenerator(cfg *Config, ev *Evaluator) *generator {
	var live func(ClassRate) bool
	if ev != nil {
		live = ev.classLive
	}
	g := newFilteredGenerator(cfg, live)
	g.withRanges = cfg.RequireAddressOverlap
	return g
}

// Trial appends this trial's fault records to buf and returns it. The
// returned slice is valid until the next call with the same buf. Under an
// aging profile, candidates are drawn at the envelope rate and thinned to
// the instantaneous multiplier, which samples the non-homogeneous Poisson
// process exactly.
func (g *generator) Trial(rng *simrand.Source, buf []FaultRecord) []FaultRecord {
	return g.trialAppend(rng, buf[:0])
}

// trialAppend is Trial without the truncation: the lane-batch engine packs
// many trials' records back to back in one backing array. The RNG draw
// sequence is identical to Trial's.
func (g *generator) trialAppend(rng *simrand.Source, buf []FaultRecord) []FaultRecord {
	aging := g.cfg.Aging
	if !aging.enabled() {
		n := g.trialCount.Sample(rng)
		for i := 0; i < n; i++ {
			cls := g.sampleClass(rng)
			buf = g.emit(rng, buf, g.classes[cls])
		}
		return buf
	}
	peak := aging.Peak()
	n := g.trialCountPk.Sample(rng)
	for i := 0; i < n; i++ {
		// Candidate onset; thin against the bathtub.
		x := rng.Float64()
		if !rng.Bernoulli(aging.Multiplier(x) / peak) {
			continue
		}
		cls := g.sampleClass(rng)
		buf = g.emitAt(rng, buf, g.classes[cls], x*g.cfg.LifetimeHours)
	}
	return buf
}

// nextNonEmpty is the Monte-Carlo fast path: it reports how many trials in
// a row drew zero faults (`skipped`) and then generates the next trial that
// drew a nonzero count. An empty trial cannot fail any scheme (callers
// check Evaluator.EmptyTrialsSurvive first), so the campaign loop accounts
// the skipped trials wholesale instead of spending a Poisson draw and a
// scheme sweep on each. The decomposition is exact: i.i.d. trial counts
// make the zero-run geometric and the next count zero-truncated Poisson.
// Under an aging profile the *candidate* count is decomposed the same way;
// thinning can still return an empty buf, which callers treat as one more
// surviving trial.
func (g *generator) nextNonEmpty(rng *simrand.Source, buf []FaultRecord) (skipped int, out []FaultRecord) {
	return g.nextNonEmptyAppend(rng, buf[:0])
}

// nextNonEmptyAppend is nextNonEmpty appending to buf instead of
// truncating it (see trialAppend). Callers detect an empty draw by
// comparing len(out) against the pre-call length.
func (g *generator) nextNonEmptyAppend(rng *simrand.Source, buf []FaultRecord) (skipped int, out []FaultRecord) {
	aging := g.cfg.Aging
	if g.totalMean <= 0 {
		return int(^uint(0) >> 1), buf // no faults ever: skip everything
	}
	if !aging.enabled() {
		var n int
		skipped, n = g.trialCount.NextPositive(rng)
		for i := 0; i < n; i++ {
			cls := g.sampleClass(rng)
			buf = g.emit(rng, buf, g.classes[cls])
		}
		return skipped, buf
	}
	peak := aging.Peak()
	var n int
	skipped, n = g.trialCountPk.NextPositive(rng)
	for i := 0; i < n; i++ {
		x := rng.Float64()
		if !rng.Bernoulli(aging.Multiplier(x) / peak) {
			continue
		}
		cls := g.sampleClass(rng)
		buf = g.emitAt(rng, buf, g.classes[cls], x*g.cfg.LifetimeHours)
	}
	return skipped, buf
}

func (g *generator) sampleClass(rng *simrand.Source) int {
	return g.classSamp.Sample(rng)
}

func (g *generator) emit(rng *simrand.Source, buf []FaultRecord, cls ClassRate) []FaultRecord {
	return g.emitAt(rng, buf, cls, rng.Float64()*g.cfg.LifetimeHours)
}

// emitAt emits one fault with a fixed onset time: it draws the record's
// geometry and hands off to emitPlaced. The batch generator (batchgen.go)
// reaches emitPlaced directly with geometry read from its chunk columns.
func (g *generator) emitAt(rng *simrand.Source, buf []FaultRecord, cls ClassRate, start float64) []FaultRecord {
	ch := g.chSamp.Sample(rng)
	rank := g.rankSamp.Sample(rng)
	chip := g.chipSamp.Sample(rng)
	return g.emitPlaced(rng, buf, cls, start, ch, rank, chip)
}

// emitPlaced emits one fault whose onset and geometry are already drawn.
// Records are constructed in place in buf's grown tail; the FaultRecord
// struct is large enough (~30% of generation time went to copying it) that
// building a local and appending shows up in profiles. The remaining
// conditional draws (address range, silent-word, scaling escalation) stay
// scalar in both generation modes, in this order.
func (g *generator) emitPlaced(rng *simrand.Source, buf []FaultRecord, cls ClassRate, start float64, ch, rank, chip int) []FaultRecord {
	cfg := g.cfg
	end := cfg.LifetimeHours
	if cls.Transient {
		// The next patrol scrub clears a transient upset.
		scrub := math.Ceil(start/cfg.ScrubIntervalHours) * cfg.ScrubIntervalHours
		end = math.Min(scrub, cfg.LifetimeHours)
		if end <= start {
			end = math.Min(start+cfg.ScrubIntervalHours, cfg.LifetimeHours)
		}
	}
	buf = append(buf, FaultRecord{})
	r := &buf[len(buf)-1]
	r.Channel = ch
	r.Rank = rank
	r.Chip = chip
	r.Start, r.End = start, end
	r.Gran, r.Transient = cls.Gran, cls.Transient
	if g.withRanges {
		r.Range = g.randomRange(rng, cls)
	}
	if cls.Gran == dram.GranWord && cfg.OnDie {
		r.Silent = rng.Bernoulli(cfg.SilentWordFraction)
	}
	if cls.Gran == dram.GranBit && g.escalateProb > 0 {
		r.EscalatedByScaling = rng.Bernoulli(g.escalateProb)
	}
	if cls.Gran == dram.GranChip {
		// Multi-rank event: same chip position in every rank of the
		// DIMM.
		g.nextEvent++
		r.EventID = g.nextEvent
		r.Rank = 0
		for rk := 1; rk < cfg.RanksPerChannel; rk++ {
			buf = append(buf, buf[len(buf)-rk])
			buf[len(buf)-1].Rank = rk
		}
		return buf
	}
	return buf
}

// randomRange draws the symbolic address range for the fault.
func (g *generator) randomRange(rng *simrand.Source, cls ClassRate) dram.Fault {
	geom := g.cfg.Geom
	seed := rng.Uint64()
	switch cls.Gran {
	case dram.GranBit:
		a := dram.WordAddr{Bank: g.bankSamp.Sample(rng), Row: g.rowSamp.Sample(rng), Col: g.colSamp.Sample(rng)}
		return dram.NewBitFault(a, g.bitSamp.Sample(rng), cls.Transient)
	case dram.GranWord:
		a := dram.WordAddr{Bank: g.bankSamp.Sample(rng), Row: g.rowSamp.Sample(rng), Col: g.colSamp.Sample(rng)}
		mask := rng.Uint64()
		if mask == 0 {
			mask = 3
		}
		return dram.NewWordFault(a, mask, uint8(rng.Uint64()), cls.Transient)
	case dram.GranColumn:
		return dram.NewColumnFault(g.bankSamp.Sample(rng), g.colSamp.Sample(rng), cls.Transient, seed)
	case dram.GranRow:
		return dram.NewRowFault(g.bankSamp.Sample(rng), g.rowSamp.Sample(rng), cls.Transient, seed)
	case dram.GranBank:
		return dram.NewBankFault(g.bankSamp.Sample(rng), cls.Transient, seed)
	case dram.GranMultiBank:
		// Two to all banks of the chip.
		n := 2 + rng.Intn(geom.Banks-1)
		var mask uint64
		for i := 0; i < n; i++ {
			mask |= 1 << uint(g.bankSamp.Sample(rng))
		}
		return dram.NewMultiBankFault(mask, cls.Transient, seed)
	default: // GranChip / multi-rank
		return dram.NewChipFault(cls.Transient, seed)
	}
}
