package faultsim

import (
	"math"

	"xedsim/internal/dram"
	"xedsim/internal/simrand"
)

// FaultRecord is one runtime fault instance in one chip of the fleet.
type FaultRecord struct {
	// Channel, Rank, Chip locate the afflicted device.
	Channel, Rank, Chip int
	// Start and End bound the interval (in hours) during which the
	// fault corrupts reads: permanent faults run to the lifetime's end,
	// transient faults until the next patrol scrub.
	Start, End float64
	// Gran and Transient classify the fault. GranChip records a
	// multi-rank event's footprint in this chip.
	Gran      dram.Granularity
	Transient bool
	// Silent is true when the on-die code misses the fault's damage in
	// the accessed word (sampled at SilentWordFraction for word faults).
	Silent bool
	// EscalatedByScaling marks a single-bit runtime fault that landed
	// in a word already holding a birthtime weak cell: the 2-bit
	// combination exceeds on-die *correction* (it is still detected),
	// so the fault becomes visible outside the chip (§VII, footnote 2).
	EscalatedByScaling bool
	// Range is the symbolic address range, used when the precise
	// address-overlap criterion is enabled.
	Range dram.Fault
	// EventID groups the per-chip records of one multi-rank event.
	EventID uint64
}

// Overlaps reports whether the two faults' active intervals intersect.
func (f *FaultRecord) Overlaps(o *FaultRecord) bool {
	return f.Start < o.End && o.Start < f.End
}

// OverlapStart returns the instant both faults are first active together.
func (f *FaultRecord) OverlapStart(o *FaultRecord) float64 {
	return math.Max(f.Start, o.Start)
}

// generator draws the fault stream for one trial.
type generator struct {
	cfg *Config
	// classMeans[i] is the expected number of class-i faults across the
	// whole fleet and lifetime; cumWeights supports O(log n) sampling.
	classMeans []float64
	totalMean  float64
	nextEvent  uint64
}

func newGenerator(cfg *Config) *generator {
	g := &generator{cfg: cfg}
	chips := float64(cfg.TotalChips())
	for _, cls := range cfg.FITs {
		perChip := float64(cls.Rate) * 1e-9 * cfg.LifetimeHours
		mean := perChip * chips
		if cls.Gran == dram.GranChip {
			// Multi-rank faults live in circuitry shared by the
			// ranks of one DIMM (register/buffer, shared I/O), so
			// the natural event unit is the DIMM: one event per
			// DIMM at the Table I rate, expanded into one chip
			// record per rank.
			mean = float64(cls.Rate) * 1e-9 * cfg.LifetimeHours * float64(cfg.Channels)
		}
		g.classMeans = append(g.classMeans, mean)
		g.totalMean += mean
	}
	return g
}

// Trial appends this trial's fault records to buf and returns it. The
// returned slice is valid until the next call with the same buf. Under an
// aging profile, candidates are drawn at the envelope rate and thinned to
// the instantaneous multiplier, which samples the non-homogeneous Poisson
// process exactly.
func (g *generator) Trial(rng *simrand.Source, buf []FaultRecord) []FaultRecord {
	buf = buf[:0]
	aging := g.cfg.Aging
	if !aging.enabled() {
		n := rng.Poisson(g.totalMean)
		for i := 0; i < n; i++ {
			cls := g.sampleClass(rng)
			buf = g.emit(rng, buf, g.cfg.FITs[cls])
		}
		return buf
	}
	peak := aging.Peak()
	n := rng.Poisson(g.totalMean * peak)
	for i := 0; i < n; i++ {
		// Candidate onset; thin against the bathtub.
		x := rng.Float64()
		if !rng.Bernoulli(aging.Multiplier(x) / peak) {
			continue
		}
		cls := g.sampleClass(rng)
		buf = g.emitAt(rng, buf, g.cfg.FITs[cls], x*g.cfg.LifetimeHours)
	}
	return buf
}

func (g *generator) sampleClass(rng *simrand.Source) int {
	u := rng.Float64() * g.totalMean
	for i, m := range g.classMeans {
		u -= m
		if u < 0 {
			return i
		}
	}
	return len(g.classMeans) - 1
}

func (g *generator) emit(rng *simrand.Source, buf []FaultRecord, cls ClassRate) []FaultRecord {
	return g.emitAt(rng, buf, cls, rng.Float64()*g.cfg.LifetimeHours)
}

// emitAt emits one fault with a fixed onset time.
func (g *generator) emitAt(rng *simrand.Source, buf []FaultRecord, cls ClassRate, start float64) []FaultRecord {
	cfg := g.cfg
	end := cfg.LifetimeHours
	if cls.Transient {
		// The next patrol scrub clears a transient upset.
		scrub := math.Ceil(start/cfg.ScrubIntervalHours) * cfg.ScrubIntervalHours
		end = math.Min(scrub, cfg.LifetimeHours)
		if end <= start {
			end = math.Min(start+cfg.ScrubIntervalHours, cfg.LifetimeHours)
		}
	}
	ch := rng.Intn(cfg.Channels)
	rank := rng.Intn(cfg.RanksPerChannel)
	chip := rng.Intn(cfg.ChipsPerRank)

	base := FaultRecord{
		Channel: ch, Rank: rank, Chip: chip,
		Start: start, End: end,
		Gran: cls.Gran, Transient: cls.Transient,
		Range: g.randomRange(rng, cls),
	}
	if cls.Gran == dram.GranWord && cfg.OnDie {
		base.Silent = rng.Bernoulli(cfg.SilentWordFraction)
	}
	if cls.Gran == dram.GranBit && cfg.OnDie && cfg.ScalingRate > 0 {
		// Probability the struck word already holds a weak cell among
		// its other 71 bits.
		p := 1 - math.Pow(1-cfg.ScalingRate, 71)
		base.EscalatedByScaling = rng.Bernoulli(p)
	}
	if cls.Gran == dram.GranChip {
		// Multi-rank event: same chip position in every rank of the
		// DIMM.
		g.nextEvent++
		base.EventID = g.nextEvent
		for r := 0; r < cfg.RanksPerChannel; r++ {
			rec := base
			rec.Rank = r
			buf = append(buf, rec)
		}
		return buf
	}
	return append(buf, base)
}

// randomRange draws the symbolic address range for the fault.
func (g *generator) randomRange(rng *simrand.Source, cls ClassRate) dram.Fault {
	geom := g.cfg.Geom
	seed := rng.Uint64()
	switch cls.Gran {
	case dram.GranBit:
		a := dram.WordAddr{Bank: rng.Intn(geom.Banks), Row: rng.Intn(geom.RowsPerBank), Col: rng.Intn(geom.ColsPerRow)}
		return dram.NewBitFault(a, rng.Intn(72), cls.Transient)
	case dram.GranWord:
		a := dram.WordAddr{Bank: rng.Intn(geom.Banks), Row: rng.Intn(geom.RowsPerBank), Col: rng.Intn(geom.ColsPerRow)}
		mask := rng.Uint64()
		if mask == 0 {
			mask = 3
		}
		return dram.NewWordFault(a, mask, uint8(rng.Uint64()), cls.Transient)
	case dram.GranColumn:
		return dram.NewColumnFault(rng.Intn(geom.Banks), rng.Intn(geom.ColsPerRow), cls.Transient, seed)
	case dram.GranRow:
		return dram.NewRowFault(rng.Intn(geom.Banks), rng.Intn(geom.RowsPerBank), cls.Transient, seed)
	case dram.GranBank:
		return dram.NewBankFault(rng.Intn(geom.Banks), cls.Transient, seed)
	case dram.GranMultiBank:
		// Two to all banks of the chip.
		n := 2 + rng.Intn(geom.Banks-1)
		var mask uint64
		for i := 0; i < n; i++ {
			mask |= 1 << uint(rng.Intn(geom.Banks))
		}
		return dram.NewMultiBankFault(mask, cls.Transient, seed)
	default: // GranChip / multi-rank
		return dram.NewChipFault(cls.Transient, seed)
	}
}
