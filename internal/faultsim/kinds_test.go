package faultsim

import (
	"math"
	"testing"

	"xedsim/internal/dram"
)

func TestKindStrings(t *testing.T) {
	for _, k := range []FailKind{FailNone, FailDUE, FailSDC} {
		if k.String() == "" || k.String() == "FailKind(?)" {
			t.Fatalf("bad string for %d", int(k))
		}
	}
}

func TestNonECCFailuresAreSDC(t *testing.T) {
	cfg := DefaultConfig()
	r := mkRec(0, 0, 0, dram.GranBank, false, 100, cfg.LifetimeHours)
	ft, kind := NewNonECC().(KindedScheme).FailTimeKind(&cfg, []FaultRecord{r})
	if math.IsInf(ft, 1) || kind != FailSDC {
		t.Fatalf("ft=%v kind=%v, want SDC at 100", ft, kind)
	}
}

func TestXEDFailuresAreDUE(t *testing.T) {
	cfg := DefaultConfig()
	// Pair failure.
	a := mkRec(0, 0, 1, dram.GranBank, false, 100, cfg.LifetimeHours)
	b := mkRec(0, 0, 5, dram.GranBank, false, 200, cfg.LifetimeHours)
	_, kind := NewXED().(KindedScheme).FailTimeKind(&cfg, []FaultRecord{a, b})
	if kind != FailDUE {
		t.Fatalf("XED pair kind = %v, want DUE", kind)
	}
	// Silent transient word: still detected via parity mismatch.
	s := mkRec(0, 0, 2, dram.GranWord, true, 50, 60)
	s.Silent = true
	_, kind = NewXED().(KindedScheme).FailTimeKind(&cfg, []FaultRecord{s})
	if kind != FailDUE {
		t.Fatalf("XED silent-word kind = %v, want DUE", kind)
	}
}

func TestXEDChipkillSilentPlusFlaggedIsSDC(t *testing.T) {
	cfg := DefaultConfig()
	silent := mkRec(0, 0, 2, dram.GranWord, false, 100, cfg.LifetimeHours)
	silent.Silent = true
	flagged := mkRec(0, 1, 4, dram.GranBank, false, 200, cfg.LifetimeHours)
	_, kind := NewXEDChipkill().(KindedScheme).FailTimeKind(&cfg, []FaultRecord{silent, flagged})
	if kind != FailSDC {
		t.Fatalf("kind = %v, want SDC (erasures consume all redundancy)", kind)
	}
	// Three flagged chips: overload is detected.
	c := mkRec(0, 0, 7, dram.GranBank, false, 300, cfg.LifetimeHours)
	d := mkRec(0, 1, 8, dram.GranRow, false, 300, cfg.LifetimeHours)
	e := mkRec(0, 0, 3, dram.GranColumn, false, 350, cfg.LifetimeHours)
	_, kind = NewXEDChipkill().(KindedScheme).FailTimeKind(&cfg, []FaultRecord{c, d, e})
	if kind == FailNone {
		t.Fatal("three flagged chips should fail")
	}
}

func TestSECDEDKindSplit(t *testing.T) {
	// Over many failures the SECDED DUE/SDC split should approximate
	// the mis-correction constant.
	cfg := DefaultConfig()
	rep, err := Run(cfg, []Scheme{NewSECDED()}, 150_000, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Results[0]
	if res.DUEs+res.SDCs != res.Failures {
		t.Fatalf("kinds (%d+%d) do not partition failures (%d)", res.DUEs, res.SDCs, res.Failures)
	}
	frac := float64(res.SDCs) / float64(res.Failures)
	if frac < secdedMiscorrectProb*0.8 || frac > secdedMiscorrectProb*1.2 {
		t.Fatalf("SECDED SDC fraction %v, want ≈%v", frac, secdedMiscorrectProb)
	}
}

func TestXEDDUEMatchesTableIV(t *testing.T) {
	// Monte-Carlo cross-check of Table IV: XED's DUE rate from silent
	// transient word faults. Per rank over 7 years the paper computes
	// 6.1e-6; our fleet has 8 ranks, so the per-system rate is ~4.9e-5
	// of which silent-transient-words are the only single-fault DUEs.
	// Pair-failures are also DUEs, so bound from below using a run with
	// word faults only.
	cfg := DefaultConfig()
	cfg.FITs = FITTable{{dram.GranWord, true, 1.4}}
	const trials = 12_000_000
	rep, err := Run(cfg, []Scheme{NewXED()}, trials, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Results[0]
	if res.SDCs != 0 {
		t.Fatalf("XED reported %d SDCs", res.SDCs)
	}
	got := res.DUEProbability()
	want := 1.4e-9 * cfg.LifetimeHours * float64(cfg.TotalChips()) * cfg.SilentWordFraction
	if got < want*0.5 || got > want*1.6 {
		t.Fatalf("XED DUE probability %v, want ≈%v (Table IV scaled to the fleet)", got, want)
	}
}

func TestEventHashDeterministicAndUniformish(t *testing.T) {
	r := mkRec(1, 0, 3, dram.GranRow, false, 1234.5, 99999)
	if eventHash(&r) != eventHash(&r) {
		t.Fatal("hash not deterministic")
	}
	// Different records hash differently and stay in [0,1).
	sum := 0.0
	n := 0
	for chip := 0; chip < 9; chip++ {
		for ch := 0; ch < 4; ch++ {
			for i := 0; i < 50; i++ {
				rec := mkRec(ch, i%2, chip, dram.GranBank, false, float64(i)*37.7, 99999)
				h := eventHash(&rec)
				if h < 0 || h >= 1 {
					t.Fatalf("hash out of range: %v", h)
				}
				sum += h
				n++
			}
		}
	}
	if mean := sum / float64(n); mean < 0.4 || mean > 0.6 {
		t.Fatalf("hash mean %v, want ≈0.5", mean)
	}
}
