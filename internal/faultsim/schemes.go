package faultsim

import (
	"math"

	"xedsim/internal/dram"
)

// Scheme judges one trial's fault stream for one protection organisation.
type Scheme interface {
	// Name identifies the scheme in tables.
	Name() string
	// FailTime returns the earliest hour at which the scheme's system
	// fails (uncorrectable, mis-corrected or silent error), or +Inf if
	// it survives the whole lifetime.
	FailTime(cfg *Config, faults []FaultRecord) float64
}

// chipWeight is the correction budget one faulty chip consumes in an
// erasure-style scheme:
//
//	0 — invisible outside the chip (single-bit fault absorbed on-die) or
//	    correctable without consuming chip-level budget;
//	1 — a located chip error (catch-word, or RS-locatable);
//	2 — an *unlocated* chip error: erasure decoding spends two check
//	    symbols (2t+e ≤ R) on a chip whose damage produced no catch-word.
type weightFunc func(cfg *Config, r *FaultRecord) int

// domainTag names the stock domain mappings so engines that cannot
// compare function values (the lane engine's mask pass) can recognise
// them. The zero value marks an off-menu mapping, which the lane engine
// handles conservatively (whole trial as one pseudo-domain).
type domainTag uint8

const (
	domainCustom domainTag = iota
	domainRank
	domainChannel
	domainChannelPair
)

// domainScheme is the shared evaluation engine: a protection domain is a
// set of chips, and the system fails the first instant the total weight of
// concurrently faulty distinct chips in any domain exceeds the capacity.
type domainScheme struct {
	name     string
	domainOf func(cfg *Config, r *FaultRecord) int
	dom      domainTag // must agree with domainOf; see domainTag
	capacity int
	weight   weightFunc
	kind     kindFunc
}

// Name implements Scheme.
func (s *domainScheme) Name() string { return s.name }

// FailTime implements Scheme.
func (s *domainScheme) FailTime(cfg *Config, faults []FaultRecord) float64 {
	t, _ := s.FailTimeKind(cfg, faults)
	return t
}

// chipKey identifies one chip of the fleet in the reference probe's
// visited-set map. (Hoisted to package scope; a type declaration inside the
// probe loop obscured that it is loop-invariant.)
type chipKey struct{ ch, rank, chip int }

// FailTimeKind implements KindedScheme: the earliest failure instant plus
// its DUE/SDC classification.
//
// This is the REFERENCE implementation: a direct O(n²) transcription of the
// probe semantics, kept for clarity and as the oracle for
// TestEvaluatorMatchesReferenceProbe. The Monte-Carlo campaign (Run,
// Trace.Judge) evaluates trials through the pre-indexed Evaluator instead,
// which returns bit-identical results without the per-record map
// allocation.
func (s *domainScheme) FailTimeKind(cfg *Config, faults []FaultRecord) (float64, FailKind) {
	// Without On-Die ECC, birthtime scaling faults saturate every
	// scheme immediately: at 10^-4 per bit, codewords with multi-bit
	// weak-cell damage are certain somewhere in a 4-channel fleet
	// (§II-B: this is why vendors add On-Die ECC at all).
	if !cfg.OnDie && cfg.ScalingRate > 0 {
		return 0, FailSDC
	}
	fail := math.Inf(1)
	kind := FailNone
	for i := range faults {
		r := &faults[i]
		w := s.weight(cfg, r)
		if w == 0 {
			continue
		}
		if w > s.capacity {
			// This fault alone defeats the scheme.
			if r.Start < fail {
				fail = r.Start
				silent := 0
				if isSilentRecord(r) {
					silent = 1
				}
				kind = s.kind(silent, 1, eventHash(r))
			}
			continue
		}
		// Anchor a concurrency probe at r.Start: sum the weights of
		// distinct faulty chips active at that instant within r's
		// domain. Any compound failure's onset coincides with some
		// record's start, so probing starts is exhaustive.
		t := r.Start
		if t >= fail {
			continue
		}
		dom := s.domainOf(cfg, r)
		total := w
		silent := 0
		if isSilentRecord(r) {
			silent = 1
		}
		seen := map[chipKey]int{{r.Channel, r.Rank, r.Chip}: w}
		for j := range faults {
			o := &faults[j]
			if i == j || o.Start > t || o.End <= t {
				continue
			}
			if s.domainOf(cfg, o) != dom {
				continue
			}
			ow := s.weight(cfg, o)
			if ow == 0 {
				continue
			}
			if cfg.RequireAddressOverlap && !r.Range.Intersects(&o.Range) {
				continue
			}
			key := chipKey{o.Channel, o.Rank, o.Chip}
			if prev, ok := seen[key]; ok {
				if ow > prev {
					total += ow - prev
					seen[key] = ow
				}
				continue
			}
			seen[key] = ow
			total += ow
			if isSilentRecord(o) {
				silent++
			}
		}
		if total > s.capacity {
			fail = t
			kind = s.kind(silent, len(seen), eventHash(r))
		}
	}
	return fail, kind
}

// --- domain mappings ---

// rankDomain: each rank protects itself (Non-ECC, SECDED, XED).
func rankDomain(cfg *Config, r *FaultRecord) int {
	return r.Channel*cfg.RanksPerChannel + r.Rank
}

// dimmGangDomain gangs both ranks of one channel's dual-rank DIMM — the
// paper's x8 Chipkill organisation ("accessing two memory ranks (x8
// devices) simultaneously", §I). The 18-chip gang is one DIMM, so a
// multi-rank fault puts two concurrently faulty chips into a single gang —
// fatal for single-symbol correction, survivable for the two-erasure
// schemes. This asymmetry is one of the mechanisms behind XED's 4x edge
// over Chipkill in Figure 7.
func dimmGangDomain(cfg *Config, r *FaultRecord) int {
	return r.Channel
}

// dimmPairGangDomain gangs the two DIMMs of channels {2i, 2i+1} — the
// 36-chip Double-Chipkill organisation (four ranks across two channels).
func dimmPairGangDomain(cfg *Config, r *FaultRecord) int {
	return r.Channel / 2
}

// --- weight functions ---

// visibleWeight is the baseline: single-bit faults are absorbed on-die
// (weight 0) unless a birthtime scaling fault shares the word and the
// 2-bit combination escapes on-die correction — then the damage is visible
// but always *detected* (weight 1). Everything word-sized and bigger is a
// chip-level error (weight 1).
func visibleWeight(cfg *Config, r *FaultRecord) int {
	if r.Gran == dram.GranBit {
		if !cfg.OnDie {
			return 1
		}
		if r.EscalatedByScaling {
			return 1
		}
		return 0
	}
	return 1
}

// secdedWeight: DIMM-level SECDED corrects one bit per beat, so bit faults
// stay weight 0 even without On-Die ECC; anything larger defeats it.
func secdedWeight(cfg *Config, r *FaultRecord) int {
	if r.Gran == dram.GranBit {
		if cfg.OnDie && r.EscalatedByScaling {
			return 1
		}
		if !cfg.OnDie {
			return 0 // corrected by the DIMM-level code itself
		}
		return 0
	}
	return 1
}

// xedWeight: catch-words locate every on-die-detected fault (weight 1).
// A *silent* word fault is only recoverable through diagnosis: Intra-Line
// diagnosis convicts permanent damage, and Inter-Line convicts anything
// spanning multiple lines, so the sole unlocatable case is a silent
// TRANSIENT word fault — the §VIII DUE — which exceeds any budget.
func xedWeight(cfg *Config, r *FaultRecord) int {
	w := visibleWeight(cfg, r)
	if w == 0 {
		return 0
	}
	if r.Silent && r.Transient && r.Gran == dram.GranWord {
		return 2 // unlocated and undiagnosable: 2 > capacity 1
	}
	return 1
}

// xedChipkillWeight: erasure decoding with R=2 check symbols. A silent
// word fault produces no catch-word, so locating it spends both symbols
// (2t ≤ R); it weighs 2.
func xedChipkillWeight(cfg *Config, r *FaultRecord) int {
	w := visibleWeight(cfg, r)
	if w == 0 {
		return 0
	}
	if r.Silent && r.Gran == dram.GranWord {
		return 2
	}
	return 1
}

// --- the six evaluated organisations ---

// nonECCWeight: the ordinary DIMM has no ninth chip, so faults that the
// shared generator lands on the last chip position simply do not exist in
// this organisation.
func nonECCWeight(cfg *Config, r *FaultRecord) int {
	if r.Chip >= cfg.ChipsPerRank-1 {
		return 0
	}
	return visibleWeight(cfg, r)
}

// NewNonECC is the 8-chip DIMM of Figure 1: no DIMM-level redundancy at
// all; any visible fault is silent data corruption.
func NewNonECC() Scheme {
	return &domainScheme{name: "NonECC", domainOf: rankDomain, dom: domainRank, capacity: 0, weight: nonECCWeight, kind: nonECCKind}
}

// NewSECDED is the conventional 9-chip ECC-DIMM (§II-D1).
func NewSECDED() Scheme {
	return &domainScheme{name: "ECC-DIMM (SECDED)", domainOf: rankDomain, dom: domainRank, capacity: 0, weight: secdedWeight, kind: secdedKind}
}

// NewXED is the paper's proposal on a 9-chip ECC-DIMM: one erasure per
// rank via catch-words + RAID-3 parity (§V), diagnosis for silent
// permanent faults (§VI), serial-mode for scaling faults (§VII).
func NewXED() Scheme {
	return &domainScheme{name: "XED", domainOf: rankDomain, dom: domainRank, capacity: 1, weight: xedWeight, kind: xedKind}
}

// NewChipkill is commercial SSC-DSD Chipkill over 18 lockstepped chips:
// corrects one chip, detects two (detection without correction is still a
// failed system).
func NewChipkill() Scheme {
	return &domainScheme{name: "Chipkill", domainOf: dimmGangDomain, dom: domainChannel, capacity: 1, weight: visibleWeight, kind: chipkillKind}
}

// NewDoubleChipkill corrects any two chips among 36 (§IX).
func NewDoubleChipkill() Scheme {
	return &domainScheme{name: "Double-Chipkill", domainOf: dimmPairGangDomain, dom: domainChannelPair, capacity: 2, weight: visibleWeight, kind: dblChipkillKind}
}

// NewXEDChipkill is XED over Single-Chipkill hardware: catch-words turn
// the two check symbols into two erasure corrections (§IX-A).
func NewXEDChipkill() Scheme {
	return &domainScheme{name: "XED+Chipkill", domainOf: dimmGangDomain, dom: domainChannel, capacity: 2, weight: xedChipkillWeight, kind: xedChipkillKind}
}

// VisibleWeight is the baseline per-record chip weight shared by the
// Chipkill-family organisations: 0 for faults absorbed on-die, 1 for
// anything visible outside the chip. Exported so synthetic schemes (see
// NewRankErasureScheme) can derive off-menu weight profiles from the same
// visibility rules the stock schemes use.
func VisibleWeight(cfg *Config, r *FaultRecord) int { return visibleWeight(cfg, r) }

// NewRankErasureScheme constructs a synthetic rank-domain erasure scheme:
// the system fails the first instant the summed weights of concurrently
// faulty distinct chips in any rank exceed capacity, and every failure is
// a DUE. The paper's organisations are fixed instances of this same
// engine; the constructor exists for conformance and differential
// harnesses that need off-menu weight profiles — e.g. weights straddling
// the Evaluator's int8 fast-path envelope, or a deliberately sabotaged XED
// whose refutation a statistical acceptance test must demonstrate.
func NewRankErasureScheme(name string, capacity int, weight func(cfg *Config, r *FaultRecord) int) Scheme {
	return &domainScheme{name: name, domainOf: rankDomain, dom: domainRank, capacity: capacity, weight: weight, kind: xedKind}
}
