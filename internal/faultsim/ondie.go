package faultsim

import (
	"fmt"
	"strconv"
	"strings"

	"xedsim/internal/ecc"
	"xedsim/internal/simrand"
)

// This file bridges the abstract fault model to concrete on-die codes.
// The Monte-Carlo campaign abstracts On-Die ECC into one number —
// Config.SilentWordFraction, the chance a multi-bit word error escapes the
// code undetected (0.008 for the paper's CRC8-ATM per Table II). With the
// generic ecc.LinearCode64 engine any code can sit on-die, including a
// mismatched or BEER-recovered one, so campaigns need that number measured
// from the code's real syndrome behaviour rather than hard-coded.

// ParseOnDieCode resolves an on-die code spec to a working codec:
//
//	crc8            the paper's recommended CRC8-ATM (§V-E)
//	hamming         the conventional baseline
//	hsiao           the odd-weight-column commercial code
//	random:<seed>   a RandomSECDED draw in canonical form
//
// An empty spec selects crc8, matching DefaultConfig's assumption.
func ParseOnDieCode(spec string) (ecc.Code64, error) {
	switch spec {
	case "", "crc8":
		return ecc.NewCRC8ATM(), nil
	case "hamming":
		return ecc.NewHamming(), nil
	case "hsiao":
		return ecc.NewHsiao(), nil
	}
	if rest, ok := strings.CutPrefix(spec, "random:"); ok {
		seed, err := strconv.ParseUint(rest, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("faultsim: on-die code %q: seed %q is not a uint64", spec, rest)
		}
		return ecc.RandomSECDED(simrand.New(seed)), nil
	}
	return nil, fmt.Errorf("faultsim: unknown on-die code %q (want crc8, hamming, hsiao or random:<seed>)", spec)
}

// SilentWordFractionFor measures the Config.SilentWordFraction a campaign
// should use for the given on-die code: the worst even-weight miss rate of
// its real syndrome tables (the quantity the paper's 0.8% figure reports
// for CRC8-ATM). samples bounds the Monte-Carlo sampling of the pattern
// weights too large to enumerate; seed makes the measurement reproducible.
func SilentWordFractionFor(code ecc.Code64, samples int, seed uint64) float64 {
	return ecc.UndetectedMultiBitFraction(ecc.MeasureDetection(code, samples, seed))
}
