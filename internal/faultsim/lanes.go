package faultsim

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"runtime/debug"

	"xedsim/internal/dram"
	"xedsim/internal/obs"
	"xedsim/internal/simrand"
)

// Bit-sliced trial evaluation: judge up to 64 Monte-Carlo trials per
// machine word.
//
// The observation behind the lane engine is that almost every non-empty
// trial is trivial to judge: it carries one or two visible fault records,
// and a single record whose weight fits the scheme's capacity can never
// fail a domain scheme on its own. The expensive part of the indexed
// Evaluator — per-scheme digestion, domain bucketing, concurrency probes —
// exists for the rare trial where two weighted records share a protection
// domain. The lane engine separates the populations with mask algebra:
//
//   - 64 trials are packed into the lanes of a LaneBatch, lane L ↔ bit L.
//     Sealing a lane (commit) digests each record into a compact laneRec
//     — weight-table signature, start time, channel/rank, silent flag
//     and the pre-mixed event-hash key, all config-free — so the judging
//     passes stream one dense array and touch the full FaultRecords only
//     in the rare scalar probe.
//   - Weights are pre-tabulated per signature and folded against each
//     scheme's capacity into a code (0 skip, 1 weighted, 2 overweight),
//     eight schemes interleaved per uint64 table word: ONE load yields
//     every scheme's code, and a zero word dismisses the record for all
//     of them in a single branch.
//   - A single-record lane never pairs, so its verdict per scheme is
//     alive unless the record is overweight — in which case it fails
//     deterministically at the record's start. The mask pass collapses
//     the overweight byte-mask into a per-lane slot mask with a
//     multiply-movemask and moves on without touching the record; the
//     probe pass transposes those per-lane masks back into per-scheme
//     lane masks. This is the NonECC/SECDED hot case: capacity 0 makes
//     every visible record overweight.
//   - Multi-record lanes additionally maintain, per scheme, a `seen`
//     lane mask per protection domain: two weighted records meeting in
//     one domain raise the lane in `pair` (word-wide AND/OR), and the
//     earliest-starting overweight record is tracked per lane.
//   - Only pair lanes — plus lanes holding records outside the digest
//     envelope — are handed to the exact scalar probe (the indexed
//     Evaluator's evalDomainPrepared — bit-identity by construction,
//     including its int8/chip-range reference fallback), prepared once
//     per lane for all schemes that need it. Overweight non-pair lanes
//     resolve inline from the tracked record; every other lane provably
//     survives: +Inf, FailNone.
//   - Tallying pops failure masks with bits.OnesCount64 and touches
//     per-year buckets only for set bits.
//
// The weight tables rely on the purity contract documented on
// buildWeightCodes. Schemes whose domain mapping is not one of the stock
// tags conservatively treat the whole trial as one domain (any two
// weighted records force the scalar probe), which is still exact: a
// single within-capacity record cannot fail any domainScheme regardless
// of how domains partition the fleet. Non-domainScheme (opaque) schemes
// are judged per lane via the same generic path the indexed engine uses.

// LaneWidth is the number of trials packed into one lane word.
const LaneWidth = 64

// laneRec is a record's commit-time digest: every field the mask and
// direct passes need, in 32 sequential bytes, all independent of the
// evaluator's Config. key folds the non-time terms of eventHash so a
// failing lane's hash is a finisher away (see laneEventHash).
type laneRec struct {
	start  float64
	key    uint64
	sig    int32
	ch, rk int32
	silent bool
}

// digestRecord builds a laneRec. It runs at packing time — in the
// campaign right after the generator writes the record, while its fields
// are cache-hot.
func digestRecord(r *FaultRecord) laneRec {
	return digestRecordSig(r, recSig(r))
}

// digestRecordSig is digestRecord with the signature already in hand: the
// batch pack loop computes it first for the survivor check and must not
// pay for it twice. Unlike digestRecord, this body fits the inliner.
func digestRecordSig(r *FaultRecord, sig int32) laneRec {
	return laneRec{
		start:  r.Start,
		key:    uint64(r.Channel)<<40 ^ uint64(r.Rank)<<32 ^ uint64(r.Chip)<<24 ^ uint64(r.Gran)<<16,
		sig:    sig,
		ch:     int32(r.Channel),
		rk:     int32(r.Rank),
		silent: r.Silent && r.Gran == dram.GranWord,
	}
}

// recSig is sigOf with laneSig fused by hand so the whole signature
// computation stays within the inliner's budget; the batch pack loop
// calls it on every single-record trial before deciding whether a full
// digest is even needed. TestDigestRecordMatchesSigOf pins the
// equivalence against sigOf.
func recSig(r *FaultRecord) int32 {
	if uint(r.Gran) >= uint(dram.NumGranularities) || uint(r.Chip) >= 1<<20 {
		return -1
	}
	s := int32(r.Gran) * 8
	if r.Transient {
		s |= 1
	}
	if r.Silent {
		s |= 2
	}
	if r.EscalatedByScaling {
		s |= 4
	}
	return int32(r.Chip)*int32(laneNSig) + s
}

// laneEventHash completes eventHash from a laneRec digest: the key holds
// every non-time term of the pre-mix, bit-identically to eventHash's own
// expression (TestLaneEventHashMatches pins this).
func laneEventHash(lr *laneRec) float64 {
	x := lr.key ^ math.Float64bits(lr.start)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return float64(x>>11) / (1 << 53)
}

// LaneBatch packs up to LaneWidth trials' fault records, back to back, for
// one LaneEvaluator.EvaluateBatch call. Lane L's records live at
// recs[offs[L]:offs[L+1]] with their digests at the same indices of lrs;
// trial[L] and state[L] carry the campaign bookkeeping (global trial
// index, pre-generation RNG state) that a voided (panicking) lane needs
// to become a TrialError.
type LaneBatch struct {
	lanes int
	offs  [LaneWidth + 1]int32
	recs  []FaultRecord
	lrs   []laneRec
	trial [LaneWidth]int
	state [LaneWidth]simrand.State

	// Panic bookkeeping, populated by EvaluateBatch: voided bit L set
	// means lane L's evaluation panicked and its outcomes are void.
	voided   uint64
	panicVal [LaneWidth]string
	stack    [LaneWidth]string
}

// Reset empties the batch for reuse, keeping the buffers' capacity.
func (b *LaneBatch) Reset() {
	b.lanes = 0
	b.offs[0] = 0
	b.recs = b.recs[:0]
	b.lrs = b.lrs[:0]
	b.voided = 0
}

// Lanes returns the number of packed trials.
func (b *LaneBatch) Lanes() int { return b.lanes }

// Add packs one trial into the next free lane, copying its fault records.
// It panics when the batch is full; check Lanes() < LaneWidth first.
func (b *LaneBatch) Add(trial int, state simrand.State, faults []FaultRecord) {
	if b.lanes >= LaneWidth {
		panic("faultsim: LaneBatch overflow")
	}
	b.recs = append(b.recs, faults...)
	b.commit(trial, state)
}

// commit seals the records appended since the previous lane into a new
// lane, digesting each into its laneRec. The campaign engine generates
// directly into b.recs and commits; external callers go through Add.
func (b *LaneBatch) commit(trial int, state simrand.State) {
	b.digestFrom(int(b.offs[b.lanes]))
	b.commitDigested(trial, state)
}

// digestFrom extends lrs with digests for recs[n0:], leaving lrs and recs
// the same length. The batch generator calls it right after emitting a
// trial, while the records are still cache-hot.
func (b *LaneBatch) digestFrom(n0 int) {
	hi := len(b.recs)
	if cap(b.lrs) < hi {
		b.lrs = append(b.lrs[:len(b.lrs)], make([]laneRec, hi-len(b.lrs))...)
	}
	lrs := b.lrs[:hi]
	recs := b.recs[:hi]
	for ri := n0; ri < hi; ri++ {
		lrs[ri] = digestRecord(&recs[ri])
	}
	b.lrs = lrs
}

// commitDigested seals a lane whose records are already digested
// (len(lrs) == len(recs)); commit is digestFrom + commitDigested.
func (b *LaneBatch) commitDigested(trial int, state simrand.State) {
	b.trial[b.lanes] = trial
	b.state[b.lanes] = state
	b.lanes++
	b.offs[b.lanes] = int32(len(b.recs))
}

// LaneFaults returns lane L's packed records (aliasing the batch buffer).
func (b *LaneBatch) LaneFaults(L int) []FaultRecord {
	return b.recs[b.offs[L]:b.offs[L+1]]
}

// Voided returns the lane mask of trials whose evaluation panicked in the
// last EvaluateBatch; their outcomes are meaningless.
func (b *LaneBatch) Voided() uint64 { return b.voided }

// activeMask covers the packed lanes.
func (b *LaneBatch) activeMask() uint64 {
	if b.lanes == LaneWidth {
		return ^uint64(0)
	}
	return 1<<uint(b.lanes) - 1
}

// laneSig indexes the weight tables: 3 boolean record flags per
// granularity. laneNSig entries per chip position.
const laneNSig = int(dram.NumGranularities) * 8

func laneSig(r *FaultRecord) int {
	return int(r.Gran)*8 | b2i(r.Transient) | b2i(r.Silent)<<1 | b2i(r.EscalatedByScaling)<<2
}

// b2i compiles to a flag-free byte load: a bool is 0 or 1 in memory.
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// sigOf digests a record into its weight-table row, or -1 when the
// record cannot index any table (granularity out of range, chip position
// negative or absurd). The signature is config-free: whether the chip
// row actually exists in a given evaluator's table is decided there by a
// bounds check. The chip cap only guards int32 overflow — real
// configurations have single-digit chips per rank.
func sigOf(r *FaultRecord) int32 {
	if uint(r.Gran) >= uint(dram.NumGranularities) || uint(r.Chip) >= 1<<20 {
		return -1
	}
	return int32(r.Chip)*int32(laneNSig) + int32(laneSig(r))
}

// laneVecGroup is the number of domain schemes whose weight codes share
// one interleaved table word; schemes beyond it go into further groups.
const laneVecGroup = 8

// Weight-code byte values are 0, 1 or 2, so within a code word bit 1 of
// a byte marks "overweight" and bit 0 OR bit 1 marks "weighted".
const (
	laneOver = 0x0202020202020202
	laneWt   = 0x0101010101010101
	// laneGather collects the low bit of every byte into the top byte:
	// each byte holds at most one set bit, so the sums cannot carry.
	laneGather = 0x0102040810204080
)

// laneScheme is one scheme's bit-sliced state.
type laneScheme struct {
	ds     *domainScheme // nil → opaque scheme, judged per lane
	scheme Scheme
	domIdx int // index into the per-record doms array

	seen    []uint64         // per-domain: lanes holding >= 1 weighted record
	pair    uint64           // lanes where two weighted records met in one domain
	over    uint64           // multi-record lanes holding an overweight record
	overS   uint64           // single-record lanes whose record is overweight
	need    uint64           // lanes routed to the scalar probe this batch
	overRec [LaneWidth]int32 // per multi lane: its earliest overweight record

	// hashFree marks schemes whose kind function ignores the event hash
	// (NonECC, XED); their direct-pass outcomes use constKind without
	// computing laneEventHash or making the indirect kind call.
	hashFree  bool
	constKind FailKind

	// noPair marks hashFree schemes whose weight table holds no partial
	// (code 1) entries: every weighted record is already overweight, so
	// two weighted records meeting in a domain cannot tell the scheme
	// anything a single one would not — the lane's verdict is its earliest
	// overweight record either way, and the constant kind ignores
	// concurrency. Such schemes skip the pair-triggered scalar probe
	// entirely; at stock rates this removes most probes (NonECC and XED
	// weight every visible record with zero capacity).
	noPair bool
}

// LaneEvaluator judges LaneBatches against the schemes of its Evaluator.
// It shares the Evaluator's config, scheme set and scalar probe scratch,
// so outcomes are bit-identical to Evaluator.EvaluateInto lane by lane —
// FuzzLaneVsIndexedEvaluator and the conformance differential hold it to
// that. Not safe for concurrent use; the campaign gives each worker its
// own.
type LaneEvaluator struct {
	ev *Evaluator
	ls []laneScheme

	// dsIdx lists the indices into ls that are domain schemes, in table
	// slot order: group g, byte k ↔ dsIdx[g*laneVecGroup+k]. slots holds
	// the same mapping as direct pointers for the mask-pass inner loop.
	dsIdx []int
	slots [][laneVecGroup]*laneScheme
	// codes[g][sig] interleaves the weight codes of group g's schemes,
	// byte k belonging to slots[g][k]. See buildWeightCodes. ovBytes[g][sig]
	// is the same table pre-collapsed for single-record lanes: bit k set
	// means the signature is overweight for slots[g][k] (the movemask
	// multiply hoisted out of the mask pass).
	codes   [][]uint64
	ovBytes [][]uint8
	// ovAny[sig] ORs ovBytes across groups: zero means the signature is
	// overweight for no scheme at all, so a single-record lane with it
	// provably survives everything (see singleSurvives). allDomain is true
	// when every scheme is a domain scheme (no per-lane opaque judging).
	ovAny     []uint8
	allDomain bool

	// overSlots[g][L] is the mask-pass scratch for single-record lanes:
	// bit k set means lane L's record is overweight for slots[g][k]. The
	// probe pass transposes it into per-scheme overS lane masks. The
	// record itself is overRecL[L] (one per lane: it is the lane's only
	// record, shared by every scheme and group).
	overSlots [][LaneWidth]uint8
	overRecL  [LaneWidth]int32

	// Per-scheme results of the last EvaluateBatch. fail[s] bit L set
	// means lane L failed scheme s, with the outcome in outs[s*64+L];
	// clear bits mean {+Inf, FailNone} (outs not written). For opaque
	// schemes outs is written for every live lane.
	fail []uint64
	outs []TrialOutcome
	// due/sdc split fail by outcome kind (a failing lane with some other
	// kind sets neither), so the campaign tallies DUEs and SDCs as
	// popcounts instead of walking outs per failing lane.
	due []uint64
	sdc []uint64

	// scalar is the lane mask forced wholesale onto the scalar path:
	// lanes holding a record outside the digest envelope (signature or
	// channel/rank beyond the configured fleet — hand-built or foreign
	// streams only; the generator cannot produce them).
	scalar uint64

	// Instrumentation (nil-safe): batches judged, lanes probed scalar.
	batches *obs.Counter
	probes  *obs.Counter
}

// NewLaneEvaluator builds the bit-sliced engine over ev's config and
// schemes. The per-scheme weight tables are materialised here by probing
// each weight function across every (chip, signature) combination — see
// buildWeightCodes for the purity contract this relies on.
func NewLaneEvaluator(ev *Evaluator) *LaneEvaluator {
	lv := &LaneEvaluator{ev: ev}
	cfg := ev.cfg
	for i := range ev.evals {
		se := &ev.evals[i]
		ls := laneScheme{ds: se.ds, scheme: se.scheme}
		if se.ds != nil {
			var domains int
			switch se.ds.dom {
			case domainRank:
				ls.domIdx, domains = 0, cfg.Channels*cfg.RanksPerChannel
			case domainChannel:
				ls.domIdx, domains = 1, cfg.Channels
			case domainChannelPair:
				ls.domIdx, domains = 2, (cfg.Channels+1)/2
			default:
				// Unknown mapping: fold the whole trial into one
				// pseudo-domain. Conservative (more scalar probes),
				// never wrong (see package comment).
				ls.domIdx, domains = 3, 1
			}
			ls.seen = make([]uint64, domains)
			ls.constKind, ls.hashFree = hashFreeKind(se.ds.kind)
			lv.dsIdx = append(lv.dsIdx, i)
		}
		lv.ls = append(lv.ls, ls)
	}
	// Interleave the weight codes group by group.
	ncodes := cfg.ChipsPerRank * laneNSig
	for g := 0; g*laneVecGroup < len(lv.dsIdx); g++ {
		tab := make([]uint64, ncodes)
		var sl [laneVecGroup]*laneScheme
		for k := 0; k < laneVecGroup && g*laneVecGroup+k < len(lv.dsIdx); k++ {
			sl[k] = &lv.ls[lv.dsIdx[g*laneVecGroup+k]]
			per := buildWeightCodes(cfg, sl[k].ds)
			for w, c := range per {
				tab[w] |= uint64(c) << (8 * k)
			}
		}
		ovb := make([]uint8, ncodes)
		for s, vec := range tab {
			ovb[s] = uint8((vec & laneOver >> 1 * laneGather) >> 56)
		}
		for k := 0; k < laneVecGroup && sl[k] != nil; k++ {
			if !sl[k].hashFree {
				continue
			}
			partial := false
			for _, vec := range tab {
				if vec>>(8*uint(k))&0xff == 1 {
					partial = true
					break
				}
			}
			sl[k].noPair = !partial
		}
		lv.codes = append(lv.codes, tab)
		lv.ovBytes = append(lv.ovBytes, ovb)
		lv.slots = append(lv.slots, sl)
		lv.overSlots = append(lv.overSlots, [LaneWidth]uint8{})
	}
	lv.allDomain = len(lv.dsIdx) == len(lv.ls)
	if len(lv.ovBytes) > 0 {
		lv.ovAny = make([]uint8, ncodes)
		for _, ovb := range lv.ovBytes {
			for s, v := range ovb {
				lv.ovAny[s] |= v
			}
		}
	}
	lv.fail = make([]uint64, len(lv.ls))
	lv.outs = make([]TrialOutcome, len(lv.ls)*LaneWidth)
	lv.due = make([]uint64, len(lv.ls))
	lv.sdc = make([]uint64, len(lv.ls))
	return lv
}

// singleSurvives reports whether a trial consisting of exactly one
// record with signature sig (as computed by recSig) provably survives
// every scheme, letting the batch pack loop drop the lane before it is
// digested, judged or tallied. The proof is the mask pass's own
// single-record argument run in reverse: a lone record can never pair,
// so a domain scheme fails the lane only if the record is overweight,
// and for in-envelope signatures (sig >= 0) ovAny==0 says it is
// overweight for none of them (channel/rank bounds are irrelevant to
// single-record verdicts — no domain bucketing happens). Opaque schemes
// judge every lane individually and birthtime-scaling fatality fails
// whole batches, so either disables the skip.
func (lv *LaneEvaluator) singleSurvives(sig int32) bool {
	if !lv.allDomain || lv.ev.scalingFatal {
		return false
	}
	return uint64(sig) < uint64(len(lv.ovAny)) && lv.ovAny[sig] == 0
}

// buildWeightCodes tabulates ds.weight over every (chip position, fault
// signature) pair, already folded against the scheme's capacity.
//
// Purity contract: a domainScheme weight function must depend only on
// r.Chip, r.Gran, r.Transient, r.Silent and r.EscalatedByScaling (plus
// the Config). Every stock weight function does, and Evaluator.classLive
// already bakes the same assumption into generation-time class filtering;
// NewRankErasureScheme documents it for synthetic schemes. Fields outside
// the signature (times, addresses, channel/rank) must not influence the
// weight — the scalar probe would still be exact for such a scheme, but
// the mask pass could misclassify a lane as trivially alive.
func buildWeightCodes(cfg *Config, ds *domainScheme) []uint8 {
	codes := make([]uint8, cfg.ChipsPerRank*laneNSig)
	var r FaultRecord
	for chip := 0; chip < cfg.ChipsPerRank; chip++ {
		r.Chip = chip
		for g := dram.Granularity(0); g < dram.NumGranularities; g++ {
			r.Gran = g
			for flags := 0; flags < 8; flags++ {
				r.Transient = flags&1 != 0
				r.Silent = flags&2 != 0
				r.EscalatedByScaling = flags&4 != 0
				w := ds.weight(cfg, &r)
				idx := chip*laneNSig + int(g)*8 + flags
				switch {
				case w == 0:
					codes[idx] = 0
				case w > ds.capacity:
					codes[idx] = 2
				default:
					codes[idx] = 1
				}
			}
		}
	}
	return codes
}

// SetCounters attaches instrumentation: batches ticks per EvaluateBatch,
// probes per lane routed to the scalar path. nil detaches (the default).
func (lv *LaneEvaluator) SetCounters(batches, probes *obs.Counter) {
	lv.batches, lv.probes = batches, probes
}

// EvaluateBatch judges every packed lane under every scheme, leaving the
// results in the evaluator's fail masks / outcome slots (see the field
// docs) and the batch's voided mask. Lanes are independent: outcomes are
// bit-identical to calling Evaluator.EvaluateInto on each lane's records
// in isolation. A panic inside scheme code voids that lane only.
func (lv *LaneEvaluator) EvaluateBatch(b *LaneBatch) {
	ev := lv.ev
	ev.trials.Add(uint64(b.lanes))
	lv.batches.Inc()
	active := b.activeMask()

	if ev.scalingFatal {
		// Mirrors evalDomain's early-out: without On-Die ECC, birthtime
		// scaling faults defeat every domain scheme at t=0.
		for si := range lv.ls {
			ls := &lv.ls[si]
			if ls.ds == nil {
				lv.probeGeneric(b, si)
				continue
			}
			lv.fail[si] = active
			lv.due[si], lv.sdc[si] = 0, active
			for L := 0; L < b.lanes; L++ {
				lv.outs[si*LaneWidth+L] = TrialOutcome{FailTime: 0, Kind: FailSDC}
			}
		}
		return
	}

	lv.maskPass(b)

	// Transpose the single-record overweight scratch into per-scheme
	// lane masks, and gather the scalar-probe set.
	var needAll uint64
	for g := range lv.overSlots {
		ovs := lv.overSlots[g][:]
		sl := &lv.slots[g]
		var words [LaneWidth / 8]uint64
		var colMask uint64
		for w := range words {
			words[w] = binary.LittleEndian.Uint64(ovs[w*8:])
			colMask |= words[w]
		}
		for k := 0; k < laneVecGroup && sl[k] != nil; k++ {
			// Slot columns no single-record lane marked (most schemes on a
			// typical batch) skip the movemask entirely.
			if colMask>>uint(k)&laneWt == 0 {
				sl[k].overS = 0
				continue
			}
			var m uint64
			for w := 0; w < LaneWidth/8; w++ {
				if word := words[w]; word != 0 {
					m |= ((word >> uint(k) & laneWt) * laneGather) >> 56 << (8 * w)
				}
			}
			sl[k].overS = m
		}
	}
	for _, si := range lv.dsIdx {
		ls := &lv.ls[si]
		lv.fail[si] = 0
		lv.due[si], lv.sdc[si] = 0, 0
		ls.need = lv.scalar & active
		if !ls.noPair {
			// noPair schemes resolve paired lanes in the direct pass:
			// their earliest overweight record is the exact verdict.
			ls.need |= ls.pair & active
		}
		needAll |= ls.need
		lv.probes.Add(uint64(bits.OnesCount64(ls.need)))
	}

	// Probe pass: exact scalar evaluation for the lanes the masks could
	// not clear, prepared once per lane for every scheme that needs it.
	for m := needAll &^ b.voided; m != 0; m &= m - 1 {
		lv.probeLane(b, bits.TrailingZeros64(m))
	}

	// Direct pass: a lane in `over`/`overS` but not in `need` has no two
	// weighted records sharing a domain, so concurrency probes cannot
	// exceed capacity and its failure is exactly its earliest overweight
	// record — the reference probe's single-record branch, inline.
	for _, si := range lv.dsIdx {
		ls := &lv.ls[si]
		outs := lv.outs[si*LaneWidth : (si+1)*LaneWidth]
		fm := lv.fail[si]
		multi := ls.over
		direct := (ls.overS | ls.over) & active &^ ls.need &^ b.voided
		fm |= direct
		if ls.hashFree {
			// Constant-kind schemes (NonECC, XED) never consult the event
			// hash, so the outcome is just the record's start time.
			ck := ls.constKind
			for m := direct; m != 0; m &= m - 1 {
				L := bits.TrailingZeros64(m)
				ri := lv.overRecL[L]
				if multi&(1<<uint(L)) != 0 {
					ri = ls.overRec[L]
				}
				outs[L] = TrialOutcome{FailTime: b.lrs[ri].start, Kind: ck}
			}
			switch ck {
			case FailDUE:
				lv.due[si] |= direct
			case FailSDC:
				lv.sdc[si] |= direct
			}
			lv.fail[si] = fm
			continue
		}
		kind := ls.ds.kind
		for m := direct; m != 0; m &= m - 1 {
			L := bits.TrailingZeros64(m)
			ri := lv.overRecL[L]
			if multi&(1<<uint(L)) != 0 {
				ri = ls.overRec[L]
			}
			lr := &b.lrs[ri]
			// laneEventHash is two multiplies and a subtract — cheaper to
			// recompute per scheme than to memoise (only SECDED hashes at
			// volume; the chipkill variants' direct masks are tiny).
			k := kind(b2i(lr.silent), 1, laneEventHash(lr))
			switch k {
			case FailDUE:
				lv.due[si] |= 1 << uint(L)
			case FailSDC:
				lv.sdc[si] |= 1 << uint(L)
			}
			outs[L] = TrialOutcome{FailTime: lr.start, Kind: k}
		}
		lv.fail[si] = fm
	}

	// Opaque schemes last: they judge every lane individually.
	for si := range lv.ls {
		if lv.ls[si].ds == nil {
			lv.probeGeneric(b, si)
		}
	}
}

// maskPass sweeps the batch's signatures once, classifying every lane for
// every domain scheme. Single-record lanes never pair, so their verdict
// needs only the signature: the overweight slot mask lands in overSlots
// via a multiply-movemask without touching the record. Multi-record
// lanes additionally run the per-domain seen/pair bookkeeping and track
// their earliest overweight record. Lanes with a record the tables
// cannot describe (signature or channel/rank out of the envelope) go to
// the scalar probe wholesale — except single-record lanes, whose verdict
// provably cannot depend on channel or rank (no domain bucketing ever
// happens), so only the signature bound matters for them.
func (lv *LaneEvaluator) maskPass(b *LaneBatch) {
	cfg := lv.ev.cfg
	rpc, nch := cfg.RanksPerChannel, cfg.Channels
	for _, si := range lv.dsIdx {
		ls := &lv.ls[si]
		clear(ls.seen)
		ls.pair, ls.over = 0, 0
	}
	for g := range lv.overSlots {
		clear(lv.overSlots[g][:])
	}
	lrs := b.lrs
	urpc, unch := uint32(rpc), uint32(nch)
	var scalar uint64
	var doms [4]int32

	if len(lv.codes) == 1 {
		// One table word covers every domain scheme — the common case
		// (AllSchemes is 6) — so the group loop vanishes from the
		// per-record path.
		tab := lv.codes[0]
		ovb := lv.ovBytes[0]
		sl := &lv.slots[0]
		ovs := &lv.overSlots[0]
		for L := 0; L < b.lanes; L++ {
			lo, hi := int(b.offs[L]), int(b.offs[L+1])
			if hi-lo == 1 {
				s := lrs[lo].sig
				if uint64(s) >= uint64(len(ovb)) {
					scalar |= uint64(1) << uint(L)
					continue
				}
				// Branchless: most lanes flip between overweight and
				// not, so storing an occasionally-zero mask beats a
				// coin-toss branch. overRecL is only read under a set
				// overS bit, so the unconditional write is safe.
				ovs[L] = ovb[s]
				lv.overRecL[L] = int32(lo)
				continue
			}
			bit := uint64(1) << uint(L)
			for ri := lo; ri < hi; ri++ {
				lr := &lrs[ri]
				if uint64(lr.sig) >= uint64(len(tab)) ||
					uint32(lr.ch) >= unch || uint32(lr.rk) >= urpc {
					scalar |= bit
					break // remaining records of this lane are moot
				}
				vec := tab[lr.sig]
				if vec == 0 {
					continue // invisible to every scheme
				}
				doms = [4]int32{lr.ch*int32(rpc) + lr.rk, lr.ch, lr.ch / 2, 0}
				for wt := (vec | vec>>1) & laneWt; wt != 0; wt &= wt - 1 {
					k := bits.TrailingZeros64(wt) >> 3
					ls := sl[k]
					dom := doms[ls.domIdx]
					m := ls.seen[dom]
					ls.pair |= m & bit
					ls.seen[dom] = m | bit
					if vec>>(uint(k)*8)&0xff == 2 {
						// Keep the earliest-starting overweight record;
						// strict < matches the reference probe's
						// first-record-wins tie-break.
						if ls.over&bit == 0 || lr.start < lrs[ls.overRec[L]].start {
							ls.overRec[L] = int32(ri)
						}
						ls.over |= bit
					}
				}
			}
		}
		lv.scalar = scalar
		return
	}

	ncodes := uint64(len(lv.codes[0]))
	for L := 0; L < b.lanes; L++ {
		lo, hi := int(b.offs[L]), int(b.offs[L+1])
		bit := uint64(1) << uint(L)
		single := hi-lo == 1
		for ri := lo; ri < hi; ri++ {
			lr := &lrs[ri]
			if single {
				if uint64(lr.sig) >= ncodes {
					scalar |= bit
					break
				}
				for g := range lv.ovBytes {
					lv.overSlots[g][L] = lv.ovBytes[g][lr.sig]
				}
				lv.overRecL[L] = int32(lo)
				continue
			}
			if uint64(lr.sig) >= ncodes ||
				uint32(lr.ch) >= unch || uint32(lr.rk) >= urpc {
				scalar |= bit
				break
			}
			doms = [4]int32{lr.ch*int32(rpc) + lr.rk, lr.ch, lr.ch / 2, 0}
			for g := range lv.codes {
				vec := lv.codes[g][lr.sig]
				if vec == 0 {
					continue
				}
				sl := &lv.slots[g]
				for wt := (vec | vec>>1) & laneWt; wt != 0; wt &= wt - 1 {
					k := bits.TrailingZeros64(wt) >> 3
					ls := sl[k]
					dom := doms[ls.domIdx]
					m := ls.seen[dom]
					ls.pair |= m & bit
					ls.seen[dom] = m | bit
					if vec>>(uint(k)*8)&0xff == 2 {
						if ls.over&bit == 0 || lr.start < lrs[ls.overRec[L]].start {
							ls.overRec[L] = int32(ri)
						}
						ls.over |= bit
					}
				}
			}
		}
	}
	lv.scalar = scalar
}

// probeLane judges lane L under every domain scheme whose need mask holds
// it, sharing one digest (Evaluator.prepare) across the schemes and
// containing any panic to the lane.
func (lv *LaneEvaluator) probeLane(b *LaneBatch, L int) {
	defer func() {
		if r := recover(); r != nil {
			b.voided |= 1 << uint(L)
			b.panicVal[L] = fmt.Sprint(r)
			b.stack[L] = string(debug.Stack())
		}
	}()
	faults := b.LaneFaults(L)
	lv.ev.prepare(faults)
	bit := uint64(1) << uint(L)
	for _, si := range lv.dsIdx {
		ls := &lv.ls[si]
		if ls.need&bit == 0 {
			continue
		}
		out := lv.ev.evalDomainPrepared(ls.ds, faults)
		if !math.IsInf(out.FailTime, 1) {
			lv.fail[si] |= bit
			switch out.Kind {
			case FailDUE:
				lv.due[si] |= bit
			case FailSDC:
				lv.sdc[si] |= bit
			}
			lv.outs[si*LaneWidth+L] = out
		}
	}
}

// probeGeneric judges every live lane under an opaque (non-domainScheme)
// scheme. Unlike domain schemes, outcomes are stored for alive lanes too:
// an opaque KindedScheme may legally return a finite-kind survival that
// AppendLaneOutcomes must reproduce.
func (lv *LaneEvaluator) probeGeneric(b *LaneBatch, si int) {
	lv.fail[si] = 0
	lv.due[si], lv.sdc[si] = 0, 0
	lv.probes.Add(uint64(b.lanes))
	for L := 0; L < b.lanes; L++ {
		if b.voided&(1<<uint(L)) != 0 {
			continue
		}
		lv.probeGenericLane(b, si, L)
	}
}

func (lv *LaneEvaluator) probeGenericLane(b *LaneBatch, si, L int) {
	defer func() {
		if r := recover(); r != nil {
			b.voided |= 1 << uint(L)
			b.panicVal[L] = fmt.Sprint(r)
			b.stack[L] = string(debug.Stack())
		}
	}()
	out := lv.ev.genericOutcome(lv.ls[si].scheme, b.LaneFaults(L))
	lv.outs[si*LaneWidth+L] = out
	if !math.IsInf(out.FailTime, 1) {
		lv.fail[si] |= 1 << uint(L)
		switch out.Kind {
		case FailDUE:
			lv.due[si] |= 1 << uint(L)
		case FailSDC:
			lv.sdc[si] |= 1 << uint(L)
		}
	}
}

// FailMask returns the last batch's failure lane mask for scheme s.
func (lv *LaneEvaluator) FailMask(s int) uint64 { return lv.fail[s] }

// AppendLaneOutcomes unpacks lane L's outcomes — one per scheme, in the
// Evaluator's scheme order — appending to out[:0]. It must not be called
// for a voided lane (check the batch's Voided mask).
func (lv *LaneEvaluator) AppendLaneOutcomes(L int, out []TrialOutcome) []TrialOutcome {
	out = out[:0]
	bit := uint64(1) << uint(L)
	for si := range lv.ls {
		switch {
		case lv.fail[si]&bit != 0 || lv.ls[si].ds == nil:
			out = append(out, lv.outs[si*LaneWidth+L])
		default:
			out = append(out, TrialOutcome{FailTime: math.Inf(1), Kind: FailNone})
		}
	}
	return out
}
