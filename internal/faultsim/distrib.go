package faultsim

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"xedsim/internal/checkpoint"
)

// This file is the campaign engine's distribution seam: the chunk-level
// primitives a coordinator/worker deployment is built from. RunCampaign
// stays the single-process front door; a distributed run decomposes into
//
//	ChunkRunner — a worker-side executor that evaluates any contiguous
//	              span of chunks and returns its integer tallies, and
//	Merger      — a coordinator-side accumulator that folds ChunkResults
//	              (in any arrival order, rejecting duplicates) into the
//	              same state RunCampaign builds in-process.
//
// Both are thin views over the same engine internals, which is what makes
// the headline invariant cheap to state and test: for a fixed (Config,
// schemes, Trials, Seed, ChunkSize), a Merger that has merged every chunk
// exactly once holds byte-identical checkpoint snapshots — and therefore
// bit-identical Reports — to a local RunCampaign, no matter how chunks
// were partitioned, scheduled, retried or duplicated in between. Chunk
// streams are pure functions of (seed, chunk index) and tallies compose by
// integer addition, so the only failure mode left to defend against is
// double-merging, which Merger.Merge rejects by chunk bitmap.

// ErrDuplicateChunks reports a merge of a span whose chunks were all
// already merged — the expected outcome of retries and duplicated
// deliveries, surfaced as a distinct sentinel so callers can acknowledge
// idempotently rather than fail.
var ErrDuplicateChunks = errors.New("faultsim: chunk span already merged")

// ChunkResult is one worker's tallies over the contiguous chunk span
// [Lo, Hi): the wire unit of a distributed campaign. It is self-describing
// enough for the Merger to validate shape and trial accounting before
// trusting it.
type ChunkResult struct {
	// Lo and Hi bound the chunk span [Lo, Hi).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Trials counts the tallied trials in the span: the span's trial range
	// minus the voided (panicked) ones listed in Errors.
	Trials uint64 `json:"trials"`
	// Tallies holds one SchemeTally per campaign scheme, in scheme order.
	Tallies []SchemeTally `json:"tallies"`
	// Errors lists the span's voided trials.
	Errors []TrialError `json:"errors,omitempty"`
}

// CampaignHash returns the config hash guarding checkpoint compatibility
// for a campaign shaped by (cfg, schemes, Trials, Seed, ChunkSize, Gen) —
// the same hash RunCampaign stamps into snapshots. Distributed deployments
// use it as the job identity: two submissions hashing equal are the same
// campaign and produce bit-identical results, so a completed result can be
// served from cache. The evaluation Engine is deliberately excluded
// (engines are bit-identical by construction); the Generator is included
// (the batch generator consumes the substreams in a different order, so
// its results — exactly distributed but not bit-identical — are a distinct
// campaign identity).
func CampaignHash(cfg Config, schemes []Scheme, opts CampaignOptions) (string, error) {
	e, err := newEngine(cfg, schemes, opts, true)
	if err != nil {
		return "", err
	}
	return e.hash, nil
}

// ChunkRunner evaluates chunk spans of one campaign on behalf of a remote
// coordinator. It is single-goroutine (one runner per worker loop) and
// reuses all per-trial state across spans, exactly like a RunCampaign
// worker goroutine. Trial panics are voided and reported in the
// ChunkResult; generation panics propagate (they cannot be contained
// without desynchronising the RNG stream).
type ChunkRunner struct {
	e *engine
	w *campaignWorker
}

// NewChunkRunner builds a runner for the campaign shaped by (cfg, schemes,
// opts). Only Trials, Seed, ChunkSize, Engine, Gen and ErrorBudget of opts
// are meaningful here; scheduling fields (Workers, CheckpointPath, OnChunk,
// Metrics) belong to the caller's loop.
func NewChunkRunner(cfg Config, schemes []Scheme, opts CampaignOptions) (*ChunkRunner, error) {
	e, err := newEngine(cfg, schemes, opts, true)
	if err != nil {
		return nil, err
	}
	return &ChunkRunner{
		e: e,
		w: newCampaignWorker(&e.cfg, e.schemes, e.opts.Seed, e.years, e.opts.Engine, e.opts.Gen),
	}, nil
}

// Hash returns the campaign's config hash (the job identity).
func (r *ChunkRunner) Hash() string { return r.e.hash }

// NumChunks returns the campaign's total chunk count.
func (r *ChunkRunner) NumChunks() int { return r.e.nChunks }

// RunSpan evaluates chunks [lo, hi) and returns their tallies. It honours
// ctx at sub-chunk granularity: a cancellation mid-span returns ctx's
// error and no result (partial spans must never be merged). Spans are
// independent — any partition of [0, NumChunks) into spans, run in any
// order on any number of runners, yields tallies that merge to the same
// campaign state.
func (r *ChunkRunner) RunSpan(ctx context.Context, lo, hi int) (*ChunkResult, error) {
	if lo < 0 || hi <= lo || hi > r.e.nChunks {
		return nil, fmt.Errorf("faultsim: chunk span [%d, %d) out of range [0, %d)", lo, hi, r.e.nChunks)
	}
	res := &ChunkResult{Lo: lo, Hi: hi, Tallies: make([]SchemeTally, len(r.e.schemes))}
	for s := range res.Tallies {
		res.Tallies[s].ByYear = make([]uint64, r.e.years)
	}
	for c := lo; c < hi; c++ {
		tlo, thi := r.e.chunkBounds(c)
		if !r.w.runChunk(ctx, c, tlo, thi) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("faultsim: chunk %d aborted", c)
		}
		for s := range res.Tallies {
			res.Tallies[s].Failures += r.w.total[s]
			res.Tallies[s].DUEs += r.w.dues[s]
			res.Tallies[s].SDCs += r.w.sdcs[s]
			// Worker chunk tallies are first-failure buckets (see
			// campaignWorker.failures); the wire format stays cumulative.
			var run uint64
			for y := range res.Tallies[s].ByYear {
				run += r.w.failures[s][y]
				res.Tallies[s].ByYear[y] += run
			}
		}
		res.Trials += uint64(thi-tlo) - uint64(len(r.w.errs))
		res.Errors = append(res.Errors, r.w.errs...)
	}
	return res, nil
}

// Merger folds ChunkResults into campaign state equivalent to a local
// RunCampaign over the same chunks. It is safe for concurrent use; every
// method takes the merger's lock. Duplicate spans are rejected (not
// double-counted), which is what makes merging idempotent under retries,
// duplicated deliveries and lease re-dispatch.
type Merger struct {
	mu sync.Mutex
	e  *engine
}

// NewMerger builds a merger for the campaign shaped by (cfg, schemes,
// opts). Trials, Seed, ChunkSize and ErrorBudget are meaningful; the
// error budget is enforced across all merged spans, aggregating voided
// trials from every worker.
func NewMerger(cfg Config, schemes []Scheme, opts CampaignOptions) (*Merger, error) {
	e, err := newEngine(cfg, schemes, opts, true)
	if err != nil {
		return nil, err
	}
	return &Merger{e: e}, nil
}

// Hash returns the campaign's config hash (the job identity).
func (m *Merger) Hash() string { return m.e.hash }

// NumChunks returns the campaign's total chunk count.
func (m *Merger) NumChunks() int { return m.e.nChunks }

// ChunkSize returns the normalized trials-per-chunk granularity.
func (m *Merger) ChunkSize() int { return m.e.opts.ChunkSize }

// DoneChunks returns how many chunks have been merged.
func (m *Merger) DoneChunks() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.e.doneChunks
}

// DoneTrials returns how many trials have been tallied (voided trials
// excluded).
func (m *Merger) DoneTrials() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.e.doneTrials
}

// TrialErrorCount returns the voided-trial total across all merged spans.
func (m *Merger) TrialErrorCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.e.trialErrs)
}

// Complete reports whether every chunk has been merged.
func (m *Merger) Complete() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.e.doneChunks == m.e.nChunks
}

// SpanMerged reports whether every chunk of [lo, hi) has been merged.
func (m *Merger) SpanMerged(lo, hi int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.mergedInSpanLocked(lo, hi) == hi-lo
}

func (m *Merger) mergedInSpanLocked(lo, hi int) int {
	n := 0
	for c := lo; c < hi; c++ {
		if m.e.doneBits[c/64]&(1<<(c%64)) != 0 {
			n++
		}
	}
	return n
}

// spanTrials returns the trial count of chunk span [lo, hi).
func (m *Merger) spanTrials(lo, hi int) uint64 {
	flo, _ := m.e.chunkBounds(lo)
	_, fhi := m.e.chunkBounds(hi - 1)
	return uint64(fhi - flo)
}

// Merge folds one span result into the campaign. It validates the result's
// shape and trial accounting against the campaign config, rejects
// duplicates with ErrDuplicateChunks (callers treat that as a successful
// no-op acknowledgement), and enforces the aggregated trial-error budget —
// a budget breach returns ErrErrorBudgetExceeded after folding, mirroring
// RunCampaign's merge semantics.
func (m *Merger) Merge(res *ChunkResult) error {
	if res == nil {
		return fmt.Errorf("faultsim: nil chunk result")
	}
	if res.Lo < 0 || res.Hi <= res.Lo || res.Hi > m.e.nChunks {
		return fmt.Errorf("faultsim: chunk span [%d, %d) out of range [0, %d)", res.Lo, res.Hi, m.e.nChunks)
	}
	if len(res.Tallies) != len(m.e.accum) {
		return fmt.Errorf("faultsim: result has %d scheme tallies, campaign has %d schemes", len(res.Tallies), len(m.e.accum))
	}
	for s := range res.Tallies {
		if len(res.Tallies[s].ByYear) != m.e.years {
			return fmt.Errorf("faultsim: scheme %d tally has %d year buckets, campaign has %d", s, len(res.Tallies[s].ByYear), m.e.years)
		}
	}
	if want := m.spanTrials(res.Lo, res.Hi) - uint64(len(res.Errors)); res.Trials != want {
		return fmt.Errorf("faultsim: span [%d, %d) reports %d trials, config implies %d", res.Lo, res.Hi, res.Trials, want)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	switch merged := m.mergedInSpanLocked(res.Lo, res.Hi); {
	case merged == res.Hi-res.Lo:
		return ErrDuplicateChunks
	case merged != 0:
		// Spans are fixed at job creation; a partial overlap means the
		// sender and the merger disagree about the unit layout.
		return fmt.Errorf("faultsim: span [%d, %d) partially merged (%d of %d chunks)", res.Lo, res.Hi, merged, res.Hi-res.Lo)
	}
	for s := range m.e.accum {
		m.e.accum[s].add(&res.Tallies[s])
	}
	for c := res.Lo; c < res.Hi; c++ {
		m.e.doneBits[c/64] |= 1 << (c % 64)
	}
	m.e.doneChunks += res.Hi - res.Lo
	m.e.doneTrials += res.Trials
	m.e.trialErrs = append(m.e.trialErrs, res.Errors...)
	if len(m.e.trialErrs) > m.e.opts.ErrorBudget {
		return fmt.Errorf("%w: %d trials panicked (budget %d); first: %v",
			ErrErrorBudgetExceeded, len(m.e.trialErrs), m.e.opts.ErrorBudget, &m.e.trialErrs[0])
	}
	return nil
}

// Report assembles the campaign Report from the merged state — for a
// Complete merger, bit-identical to the local RunCampaign Report.
func (m *Merger) Report() *Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	sortTrialErrs(m.e.trialErrs)
	return m.e.reportLocked()
}

// SnapshotBytes returns the merged state as canonical checkpoint envelope
// bytes — exactly what RunCampaign's Save writes for the same state, which
// is how distributed results are proven bit-identical: compare these bytes
// against a local run's checkpoint file.
func (m *Merger) SnapshotBytes() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := m.e.snapshotLocked()
	return checkpoint.Marshal(checkpointKind, checkpointVersion, m.e.hash, &snap)
}

// Save writes the merged state to path in the campaign checkpoint format
// (atomic + durable, config-hash-guarded). A saved merger can be restored
// by Load — or resumed by a local RunCampaign with the same config, which
// is the escape hatch when a coordinator is retired mid-job.
func (m *Merger) Save(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := m.e.snapshotLocked()
	return checkpoint.Save(path, checkpointKind, checkpointVersion, m.e.hash, &snap)
}

// Load restores merged state from a checkpoint written by Save (or by a
// local RunCampaign of the same campaign). A missing file leaves the
// merger empty and returns nil; a snapshot from any other configuration is
// refused with the checkpoint sentinel errors.
func (m *Merger) Load(path string) error {
	var snap campaignSnapshot
	err := checkpoint.Load(path, checkpointKind, checkpointVersion, m.e.hash, &snap)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.e.restoreSnapshot(&snap, path)
}

// sortTrialErrs orders trial errors canonically (by trial index).
func sortTrialErrs(errs []TrialError) {
	sort.Slice(errs, func(i, j int) bool { return errs[i].Trial < errs[j].Trial })
}
