package faultsim

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// distTestOpts is a small campaign that still spans many chunks.
func distTestOpts() CampaignOptions {
	return CampaignOptions{Trials: 40_000, Seed: 99, ChunkSize: 512}
}

// runSpans partitions the chunk range into spans of `unit` chunks,
// evaluates them with ChunkRunners and merges them in a shuffled order.
func runSpans(t *testing.T, cfg Config, mkSchemes func() []Scheme, opts CampaignOptions, unit int, shuffle *rand.Rand) *Merger {
	t.Helper()
	m, err := NewMerger(cfg, mkSchemes(), opts)
	if err != nil {
		t.Fatal(err)
	}
	// Two runners standing in for two worker processes.
	runners := make([]*ChunkRunner, 2)
	for i := range runners {
		if runners[i], err = NewChunkRunner(cfg, mkSchemes(), opts); err != nil {
			t.Fatal(err)
		}
	}
	var spans [][2]int
	for lo := 0; lo < m.NumChunks(); lo += unit {
		hi := lo + unit
		if hi > m.NumChunks() {
			hi = m.NumChunks()
		}
		spans = append(spans, [2]int{lo, hi})
	}
	shuffle.Shuffle(len(spans), func(i, j int) { spans[i], spans[j] = spans[j], spans[i] })
	for i, sp := range spans {
		res, err := runners[i%len(runners)].RunSpan(context.Background(), sp[0], sp[1])
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Merge(res); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

// TestMergerMatchesRunCampaign is the distribution seam's core invariant:
// spans evaluated by independent runners and merged out of order produce a
// Report deep-equal to RunCampaign's, and snapshot bytes identical to the
// checkpoint RunCampaign saves.
func TestMergerMatchesRunCampaign(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LifetimeHours = 2 * HoursPerYear
	mkSchemes := func() []Scheme { return []Scheme{NewSECDED(), NewXED()} }
	opts := distTestOpts()

	ckpt := filepath.Join(t.TempDir(), "local.ckpt")
	localOpts := opts
	localOpts.CheckpointPath = ckpt
	localRep, err := RunCampaign(context.Background(), cfg, mkSchemes(), localOpts)
	if err != nil {
		t.Fatal(err)
	}
	localBytes, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}

	for _, unit := range []int{1, 7, 16, 1000} {
		m := runSpans(t, cfg, mkSchemes, opts, unit, rand.New(rand.NewSource(int64(unit))))
		if !m.Complete() {
			t.Fatalf("unit %d: merger incomplete: %d/%d chunks", unit, m.DoneChunks(), m.NumChunks())
		}
		if !reflect.DeepEqual(m.Report(), localRep) {
			t.Fatalf("unit %d: merged Report differs from RunCampaign", unit)
		}
		b, err := m.SnapshotBytes()
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != string(localBytes) {
			t.Fatalf("unit %d: merged snapshot bytes differ from local checkpoint", unit)
		}
	}
}

// TestMergerLaneEngineBitIdentical crosses the engine axis: spans run on
// the lanes engine merge to the same bytes as an indexed local run.
func TestMergerLaneEngineBitIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LifetimeHours = 2 * HoursPerYear
	mkSchemes := func() []Scheme { return []Scheme{NewXED()} }
	opts := distTestOpts()

	localRep, err := RunCampaign(context.Background(), cfg, mkSchemes(), opts)
	if err != nil {
		t.Fatal(err)
	}
	laneOpts := opts
	laneOpts.Engine = EngineLanes
	m := runSpans(t, cfg, mkSchemes, laneOpts, 13, rand.New(rand.NewSource(5)))
	if !reflect.DeepEqual(m.Report(), localRep) {
		t.Fatal("lane-engine merged Report differs from indexed RunCampaign")
	}
}

// TestMergeRejectsDuplicates pins at-most-once merging: a span delivered
// twice is acknowledged as ErrDuplicateChunks and not double-counted, and
// a partially overlapping span is an error.
func TestMergeRejectsDuplicates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LifetimeHours = 1 * HoursPerYear
	schemes := []Scheme{NewXED()}
	opts := CampaignOptions{Trials: 4096, Seed: 1, ChunkSize: 512}

	m, err := NewMerger(cfg, schemes, opts)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewChunkRunner(cfg, schemes, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunSpan(context.Background(), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Merge(res); err != nil {
		t.Fatal(err)
	}
	trials, chunks := m.DoneTrials(), m.DoneChunks()
	if err := m.Merge(res); !errors.Is(err, ErrDuplicateChunks) {
		t.Fatalf("duplicate merge err = %v, want ErrDuplicateChunks", err)
	}
	if m.DoneTrials() != trials || m.DoneChunks() != chunks {
		t.Fatal("duplicate merge changed accumulators")
	}

	overlap, err := r.RunSpan(context.Background(), 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Merge(overlap); err == nil || errors.Is(err, ErrDuplicateChunks) {
		t.Fatalf("partial overlap err = %v, want hard error", err)
	}
}

// TestMergeValidatesEnvelopes pins the shape/accounting checks protecting
// the coordinator from corrupted or mismatched worker envelopes.
func TestMergeValidatesEnvelopes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LifetimeHours = 1 * HoursPerYear
	schemes := []Scheme{NewXED()}
	opts := CampaignOptions{Trials: 4096, Seed: 1, ChunkSize: 512}
	m, err := NewMerger(cfg, schemes, opts)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := NewChunkRunner(cfg, schemes, opts)
	good, err := r.RunSpan(context.Background(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		mut  func(r ChunkResult) ChunkResult
	}{
		{"out of range", func(r ChunkResult) ChunkResult { r.Hi = 99; return r }},
		{"inverted span", func(r ChunkResult) ChunkResult { r.Lo, r.Hi = 2, 2; return r }},
		{"wrong scheme count", func(r ChunkResult) ChunkResult { r.Tallies = nil; return r }},
		{"wrong year buckets", func(r ChunkResult) ChunkResult {
			r.Tallies = []SchemeTally{{ByYear: make([]uint64, 99)}}
			return r
		}},
		{"trial miscount", func(r ChunkResult) ChunkResult { r.Trials++; return r }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := tc.mut(*good)
			if err := m.Merge(&bad); err == nil {
				t.Fatal("corrupted envelope accepted")
			}
		})
	}
	if m.DoneChunks() != 0 {
		t.Fatal("rejected envelopes advanced the accumulator")
	}
}

// TestMergerErrorBudgetAggregates pins cross-worker error-budget
// enforcement: voided trials from different spans accumulate, and the
// budget trips on the merge that crosses it.
func TestMergerErrorBudgetAggregates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LifetimeHours = 1 * HoursPerYear
	schemes := []Scheme{NewXED()}
	opts := CampaignOptions{Trials: 4096, Seed: 1, ChunkSize: 512, ErrorBudget: 3}
	m, err := NewMerger(cfg, schemes, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Fabricate spans with two voided trials each (as if scheme code
	// panicked on remote workers).
	mkRes := func(lo int) *ChunkResult {
		res := &ChunkResult{
			Lo: lo, Hi: lo + 1,
			Trials:  512 - 2,
			Tallies: []SchemeTally{{ByYear: make([]uint64, 1)}},
		}
		for i := 0; i < 2; i++ {
			res.Errors = append(res.Errors, TrialError{
				Trial: lo*512 + i, Chunk: lo, RNGState: [4]uint64{1, 2, 3, 4}, PanicValue: "boom",
			})
		}
		return res
	}
	if err := m.Merge(mkRes(0)); err != nil {
		t.Fatalf("first span (2 errors, budget 3): %v", err)
	}
	err = m.Merge(mkRes(1))
	if !errors.Is(err, ErrErrorBudgetExceeded) {
		t.Fatalf("second span err = %v, want ErrErrorBudgetExceeded", err)
	}
	if m.TrialErrorCount() != 4 {
		t.Fatalf("TrialErrorCount = %d, want 4", m.TrialErrorCount())
	}
}

// TestMergerSaveLoadRoundTrip pins coordinator crash recovery: a merger
// restored from its own checkpoint continues exactly where it stopped and
// finishes with the same bytes as an uninterrupted one.
func TestMergerSaveLoadRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LifetimeHours = 2 * HoursPerYear
	mkSchemes := func() []Scheme { return []Scheme{NewXED(), NewChipkill()} }
	opts := distTestOpts()
	path := filepath.Join(t.TempDir(), "job.ckpt")

	r, err := NewChunkRunner(cfg, mkSchemes(), opts)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := NewMerger(cfg, mkSchemes(), opts)
	if err != nil {
		t.Fatal(err)
	}
	// Merge the first half, save, and abandon m1 (the "crashed"
	// coordinator).
	half := m1.NumChunks() / 2
	res, err := r.RunSpan(context.Background(), 0, half)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Merge(res); err != nil {
		t.Fatal(err)
	}
	if err := m1.Save(path); err != nil {
		t.Fatal(err)
	}

	m2, err := NewMerger(cfg, mkSchemes(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Load(path); err != nil {
		t.Fatal(err)
	}
	if m2.DoneChunks() != half {
		t.Fatalf("restored DoneChunks = %d, want %d", m2.DoneChunks(), half)
	}
	if !m2.SpanMerged(0, half) || m2.SpanMerged(half, m2.NumChunks()) {
		t.Fatal("restored bitmap wrong")
	}
	rest, err := r.RunSpan(context.Background(), half, m2.NumChunks())
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Merge(rest); err != nil {
		t.Fatal(err)
	}

	localRep, err := RunCampaign(context.Background(), cfg, mkSchemes(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m2.Report(), localRep) {
		t.Fatal("restored+completed merger differs from local run")
	}

	// Loading a missing file is a fresh start, not an error.
	m3, _ := NewMerger(cfg, mkSchemes(), opts)
	if err := m3.Load(filepath.Join(t.TempDir(), "absent.ckpt")); err != nil {
		t.Fatal(err)
	}
	if m3.DoneChunks() != 0 {
		t.Fatal("missing checkpoint produced progress")
	}
}

// TestCampaignHashIdentity pins the job-identity semantics: the hash is
// stable across engines (bit-identical results ⇒ same cache key) and
// discriminates on everything that shapes the trial streams.
func TestCampaignHashIdentity(t *testing.T) {
	cfg := DefaultConfig()
	schemes := []Scheme{NewXED()}
	base := CampaignOptions{Trials: 1000, Seed: 1}
	h0, err := CampaignHash(cfg, schemes, base)
	if err != nil {
		t.Fatal(err)
	}
	lanes := base
	lanes.Engine = EngineLanes
	if h, _ := CampaignHash(cfg, schemes, lanes); h != h0 {
		t.Fatal("engine choice changed the campaign hash")
	}
	// Explicit default chunk size hashes like the implicit one.
	explicit := base
	explicit.ChunkSize = DefaultChunkSize
	if h, _ := CampaignHash(cfg, schemes, explicit); h != h0 {
		t.Fatal("explicit default chunk size changed the campaign hash")
	}
	for name, mut := range map[string]func(*CampaignOptions){
		"seed":   func(o *CampaignOptions) { o.Seed++ },
		"trials": func(o *CampaignOptions) { o.Trials++ },
		"chunk":  func(o *CampaignOptions) { o.ChunkSize = 100 },
	} {
		o := base
		mut(&o)
		if h, _ := CampaignHash(cfg, schemes, o); h == h0 {
			t.Fatalf("%s change did not change the campaign hash", name)
		}
	}
}
