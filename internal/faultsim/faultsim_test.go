package faultsim

import (
	"math"
	"testing"

	"xedsim/internal/dram"
	"xedsim/internal/simrand"
)

func TestTableIRates(t *testing.T) {
	tbl := TableI()
	if len(tbl) != 14 {
		t.Fatalf("Table I has %d classes, want 14", len(tbl))
	}
	if got := float64(tbl.TotalFIT()); math.Abs(got-66.1) > 1e-9 {
		t.Fatalf("total FIT = %v, want 66.1", got)
	}
	// Visible = total minus the two single-bit classes (14.2 + 18.6).
	if got := float64(tbl.VisibleFIT()); math.Abs(got-33.3) > 1e-9 {
		t.Fatalf("visible FIT = %v, want 33.3", got)
	}
}

func TestGeneratorMeanFaultCount(t *testing.T) {
	cfg := DefaultConfig()
	gen := newGenerator(&cfg)
	rng := simrand.New(1)
	const trials = 30000
	var total int
	var buf []FaultRecord
	for i := 0; i < trials; i++ {
		buf = gen.Trial(rng, buf)
		total += len(buf)
	}
	got := float64(total) / trials
	// Expected records: non-multi-rank classes arrive per chip; the two
	// multi-rank classes arrive once per DIMM and expand into one record
	// per rank.
	want := 0.0
	for _, cls := range cfg.FITs {
		rate := float64(cls.Rate) * 1e-9 * cfg.LifetimeHours
		if cls.Gran == dram.GranChip {
			want += rate * float64(cfg.Channels) * float64(cfg.RanksPerChannel)
		} else {
			want += rate * float64(cfg.TotalChips())
		}
	}
	if got < want*0.95 || got > want*1.05 {
		t.Fatalf("mean faults/trial = %v, want ≈%v", got, want)
	}
}

func TestGeneratorMultiRankExpansion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FITs = FITTable{{dram.GranChip, false, 1000000}} // force multi-rank only
	gen := newGenerator(&cfg)
	rng := simrand.New(2)
	buf := gen.Trial(rng, nil)
	if len(buf) == 0 {
		t.Fatal("expected events at huge FIT")
	}
	if len(buf)%cfg.RanksPerChannel != 0 {
		t.Fatalf("multi-rank records (%d) not a multiple of ranks", len(buf))
	}
	// Every event must appear once per rank, same channel/chip/times.
	byEvent := map[uint64][]FaultRecord{}
	for _, r := range buf {
		byEvent[r.EventID] = append(byEvent[r.EventID], r)
	}
	for id, recs := range byEvent {
		if len(recs) != cfg.RanksPerChannel {
			t.Fatalf("event %d has %d records", id, len(recs))
		}
		if recs[0].Channel != recs[1].Channel || recs[0].Chip != recs[1].Chip || recs[0].Rank == recs[1].Rank {
			t.Fatalf("event %d footprint wrong: %+v", id, recs)
		}
	}
}

func TestTransientFaultEndsAtScrub(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FITs = FITTable{{dram.GranRow, true, 500000}}
	gen := newGenerator(&cfg)
	rng := simrand.New(3)
	var buf []FaultRecord
	for i := 0; i < 50; i++ {
		buf = gen.Trial(rng, buf)
		for _, r := range buf {
			if !r.Transient {
				t.Fatal("expected transient records")
			}
			if r.End-r.Start > cfg.ScrubIntervalHours+1e-9 {
				t.Fatalf("transient fault lives %v h, scrub is %v", r.End-r.Start, cfg.ScrubIntervalHours)
			}
			if r.End > cfg.LifetimeHours {
				t.Fatal("fault outlives the system")
			}
		}
	}
}

func TestPermanentFaultPersists(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FITs = FITTable{{dram.GranBank, false, 500000}}
	gen := newGenerator(&cfg)
	rng := simrand.New(4)
	buf := gen.Trial(rng, nil)
	for _, r := range buf {
		if r.End != cfg.LifetimeHours {
			t.Fatalf("permanent fault ends at %v, want lifetime", r.End)
		}
	}
}

// mkRec builds a record for direct scheme testing.
func mkRec(ch, rank, chip int, gran dram.Granularity, transient bool, start, end float64) FaultRecord {
	return FaultRecord{Channel: ch, Rank: rank, Chip: chip, Gran: gran,
		Transient: transient, Start: start, End: end,
		Range: dram.NewChipFault(transient, 1)}
}

func TestSchemeSingleFaultRules(t *testing.T) {
	cfg := DefaultConfig()
	bank := mkRec(0, 0, 0, dram.GranBank, false, 100, cfg.LifetimeHours)
	bit := mkRec(0, 0, 0, dram.GranBit, false, 100, cfg.LifetimeHours)

	cases := []struct {
		scheme   Scheme
		fault    FaultRecord
		wantFail bool
	}{
		{NewNonECC(), bank, true},
		{NewNonECC(), bit, false}, // absorbed on-die
		{NewSECDED(), bank, true}, // multi-bit defeats SECDED
		{NewSECDED(), bit, false},
		{NewXED(), bank, false}, // one erasure: corrected
		{NewXED(), bit, false},
		{NewChipkill(), bank, false},
		{NewDoubleChipkill(), bank, false},
		{NewXEDChipkill(), bank, false},
	}
	for _, c := range cases {
		ft := c.scheme.FailTime(&cfg, []FaultRecord{c.fault})
		if got := !math.IsInf(ft, 1); got != c.wantFail {
			t.Errorf("%s with single %v fault: failed=%v, want %v",
				c.scheme.Name(), c.fault.Gran, got, c.wantFail)
		}
	}
}

func TestSchemePairRules(t *testing.T) {
	cfg := DefaultConfig()
	// Two permanent bank faults in different chips of the same rank.
	a := mkRec(0, 0, 1, dram.GranBank, false, 100, cfg.LifetimeHours)
	b := mkRec(0, 0, 5, dram.GranBank, false, 200, cfg.LifetimeHours)
	pair := []FaultRecord{a, b}

	if ft := NewXED().FailTime(&cfg, pair); ft != 200 {
		t.Errorf("XED pair in one rank: failTime %v, want 200 (overlap onset)", ft)
	}
	// Chipkill's 18-chip gang is the whole dual-rank DIMM: the pair
	// also fails there (two chips of the 18).
	if ft := NewChipkill().FailTime(&cfg, pair); ft != 200 {
		t.Errorf("Chipkill pair: failTime %v, want 200", ft)
	}
	// Two-erasure schemes survive the pair.
	if ft := NewXEDChipkill().FailTime(&cfg, pair); !math.IsInf(ft, 1) {
		t.Errorf("XED+Chipkill pair should be corrected, failed at %v", ft)
	}
	if ft := NewDoubleChipkill().FailTime(&cfg, pair); !math.IsInf(ft, 1) {
		t.Errorf("Double-Chipkill pair should be corrected, failed at %v", ft)
	}
}

func TestSchemePairDifferentRanksXEDSurvives(t *testing.T) {
	cfg := DefaultConfig()
	a := mkRec(0, 0, 1, dram.GranBank, false, 100, cfg.LifetimeHours)
	b := mkRec(0, 1, 5, dram.GranBank, false, 200, cfg.LifetimeHours)
	pair := []FaultRecord{a, b}
	// Different ranks: XED's 9-chip domains each see one fault — this is
	// the group-size advantage behind Figure 7's 4x.
	if ft := NewXED().FailTime(&cfg, pair); !math.IsInf(ft, 1) {
		t.Errorf("XED cross-rank pair should be corrected, failed at %v", ft)
	}
	// Chipkill gangs both ranks of the DIMM: the same pair is fatal.
	if ft := NewChipkill().FailTime(&cfg, pair); ft != 200 {
		t.Errorf("Chipkill DIMM-gang pair: failTime %v, want 200", ft)
	}
	// Different channels are different Chipkill gangs.
	c := mkRec(1, 0, 3, dram.GranBank, false, 300, cfg.LifetimeHours)
	crossChannel := []FaultRecord{a, c}
	if ft := NewChipkill().FailTime(&cfg, crossChannel); !math.IsInf(ft, 1) {
		t.Errorf("Chipkill cross-channel pair should be corrected, failed at %v", ft)
	}
	// ...but one Double-Chipkill gang spans channel pairs.
	if ft := NewDoubleChipkill().FailTime(&cfg, crossChannel); !math.IsInf(ft, 1) {
		t.Errorf("Double-Chipkill corrects two chips, failed at %v", ft)
	}
}

func TestSchemeTransientNoOverlapSurvives(t *testing.T) {
	cfg := DefaultConfig()
	// Two transient faults in different chips, non-overlapping windows.
	a := mkRec(0, 0, 1, dram.GranRow, true, 100, 150)
	b := mkRec(0, 0, 5, dram.GranRow, true, 500, 550)
	if ft := NewXED().FailTime(&cfg, []FaultRecord{a, b}); !math.IsInf(ft, 1) {
		t.Errorf("non-overlapping transients should be corrected, failed at %v", ft)
	}
	// Overlapping windows fail.
	c := mkRec(0, 0, 5, dram.GranRow, true, 120, 170)
	if ft := NewXED().FailTime(&cfg, []FaultRecord{a, c}); ft != 120 {
		t.Errorf("overlapping transients: failTime %v, want 120", ft)
	}
}

func TestXEDSilentTransientWordIsDUE(t *testing.T) {
	cfg := DefaultConfig()
	r := mkRec(0, 0, 2, dram.GranWord, true, 100, 150)
	r.Silent = true
	if ft := NewXED().FailTime(&cfg, []FaultRecord{r}); ft != 100 {
		t.Errorf("silent transient word fault: failTime %v, want 100 (DUE)", ft)
	}
	// Permanent silent word faults are convicted by Intra-Line diagnosis.
	p := mkRec(0, 0, 2, dram.GranWord, false, 100, cfg.LifetimeHours)
	p.Silent = true
	if ft := NewXED().FailTime(&cfg, []FaultRecord{p}); !math.IsInf(ft, 1) {
		t.Errorf("permanent silent word fault should be diagnosed, failed at %v", ft)
	}
}

func TestXEDChipkillSilentWordConsumesBudget(t *testing.T) {
	cfg := DefaultConfig()
	silent := mkRec(0, 0, 2, dram.GranWord, false, 100, cfg.LifetimeHours)
	silent.Silent = true
	other := mkRec(0, 1, 4, dram.GranBank, false, 200, cfg.LifetimeHours)
	// Alone: locatable by the RS code (2t <= R).
	if ft := NewXEDChipkill().FailTime(&cfg, []FaultRecord{silent}); !math.IsInf(ft, 1) {
		t.Errorf("lone silent word should be RS-corrected, failed at %v", ft)
	}
	// Silent (weight 2) + flagged (weight 1) = 3 > 2: fail.
	if ft := NewXEDChipkill().FailTime(&cfg, []FaultRecord{silent, other}); ft != 200 {
		t.Errorf("silent+flagged pair: failTime %v, want 200", ft)
	}
}

func TestMultiRankFaultDomainInteraction(t *testing.T) {
	cfg := DefaultConfig()
	// A multi-rank event: chip 3 of both ranks of channel 0's DIMM.
	a := mkRec(0, 0, 3, dram.GranChip, false, 100, cfg.LifetimeHours)
	b := mkRec(0, 1, 3, dram.GranChip, false, 100, cfg.LifetimeHours)
	a.EventID, b.EventID = 7, 7
	pair := []FaultRecord{a, b}
	// XED: one chip per rank → corrected. This immunity to multi-rank
	// faults is a second mechanism behind XED's edge over Chipkill.
	if ft := NewXED().FailTime(&cfg, pair); !math.IsInf(ft, 1) {
		t.Errorf("XED multi-rank should be corrected, failed at %v", ft)
	}
	// Chipkill's DIMM-wide gang sees two concurrent chips → fatal.
	if ft := NewChipkill().FailTime(&cfg, pair); ft != 100 {
		t.Errorf("Chipkill multi-rank: failTime %v, want 100", ft)
	}
	// The two-erasure schemes absorb it.
	if ft := NewXEDChipkill().FailTime(&cfg, pair); !math.IsInf(ft, 1) {
		t.Errorf("XED+Chipkill multi-rank should be corrected, failed at %v", ft)
	}
	if ft := NewDoubleChipkill().FailTime(&cfg, pair); !math.IsInf(ft, 1) {
		t.Errorf("Double-Chipkill multi-rank should be corrected, failed at %v", ft)
	}
}

func TestAddressOverlapCriterion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RequireAddressOverlap = true
	// Row fault in bank 2 and bank fault in bank 5: disjoint ranges.
	a := mkRec(0, 0, 1, dram.GranRow, false, 100, cfg.LifetimeHours)
	a.Range = dram.NewRowFault(2, 10, false, 1)
	b := mkRec(0, 0, 5, dram.GranBank, false, 200, cfg.LifetimeHours)
	b.Range = dram.NewBankFault(5, false, 2)
	if ft := NewXED().FailTime(&cfg, []FaultRecord{a, b}); !math.IsInf(ft, 1) {
		t.Errorf("disjoint ranges should be corrected under precise criterion, failed at %v", ft)
	}
	// Same bank: ranges intersect → fail.
	b.Range = dram.NewBankFault(2, false, 2)
	if ft := NewXED().FailTime(&cfg, []FaultRecord{a, b}); ft != 200 {
		t.Errorf("intersecting ranges: failTime %v, want 200", ft)
	}
}

func TestScalingWithoutOnDieIsFatal(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OnDie = false
	cfg.ScalingRate = 1e-4
	for _, s := range AllSchemes() {
		if ft := s.FailTime(&cfg, nil); ft != 0 {
			t.Errorf("%s: failTime %v, want 0 (scaling without on-die)", s.Name(), ft)
		}
	}
}

func TestRunSmallCampaign(t *testing.T) {
	cfg := DefaultConfig()
	rep, err := Run(cfg, AllSchemes(), 20000, 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 {
		r := rep.ResultFor(name)
		if r == nil {
			t.Fatalf("missing result %q", name)
		}
		return r.Probability()
	}
	nonECC := get("NonECC")
	secded := get("ECC-DIMM (SECDED)")
	xed := get("XED")
	ck := get("Chipkill")

	// Figure 1 shape: SECDED buys almost nothing over NonECC (within
	// 25% of each other), both roughly the visible-FIT exposure.
	if nonECC < 0.08 || nonECC > 0.22 {
		t.Errorf("NonECC probability %v outside expected band", nonECC)
	}
	if ratio := secded / nonECC; ratio < 0.8 || ratio > 1.35 {
		t.Errorf("SECDED/NonECC ratio %v, want ≈1 (9 vs 8 chips)", ratio)
	}
	// Figure 7 shape: XED and Chipkill orders of magnitude better.
	if xed >= secded/20 {
		t.Errorf("XED (%v) should be >>20x better than SECDED (%v)", xed, secded)
	}
	if ck >= secded/5 {
		t.Errorf("Chipkill (%v) should be much better than SECDED (%v)", ck, secded)
	}
	// Cumulative curves must be monotone and end at the total.
	for _, res := range rep.Results {
		prev := uint64(0)
		for _, v := range res.FailuresByYear {
			if v < prev {
				t.Fatalf("%s: non-monotone cumulative curve", res.SchemeName)
			}
			prev = v
		}
		if prev != res.Failures {
			t.Fatalf("%s: curve end %d != failures %d", res.SchemeName, prev, res.Failures)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a, err := Run(cfg, []Scheme{NewXED(), NewSECDED()}, 5000, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, []Scheme{NewXED(), NewSECDED()}, 5000, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Results {
		if a.Results[i].Failures != b.Results[i].Failures {
			t.Fatalf("run not deterministic for %s", a.Results[i].SchemeName)
		}
	}
}

func TestRunValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := Run(cfg, AllSchemes(), 0, 1, 1); err == nil {
		t.Error("expected error for zero trials")
	}
	if _, err := Run(cfg, nil, 10, 1, 1); err == nil {
		t.Error("expected error for no schemes")
	}
	bad := cfg
	bad.Channels = 0
	if _, err := Run(bad, AllSchemes(), 10, 1, 1); err == nil {
		t.Error("expected error for bad config")
	}
}

func BenchmarkTrialGeneration(b *testing.B) {
	cfg := DefaultConfig()
	gen := newGenerator(&cfg)
	rng := simrand.New(9)
	var buf []FaultRecord
	for i := 0; i < b.N; i++ {
		buf = gen.Trial(rng, buf)
	}
}

func BenchmarkFullTrialAllSchemes(b *testing.B) {
	cfg := DefaultConfig()
	gen := newGenerator(&cfg)
	schemes := AllSchemes()
	rng := simrand.New(10)
	var buf []FaultRecord
	for i := 0; i < b.N; i++ {
		buf = gen.Trial(rng, buf)
		for _, s := range schemes {
			s.FailTime(&cfg, buf)
		}
	}
}

func TestRecordOverlapHelpers(t *testing.T) {
	a := mkRec(0, 0, 0, dram.GranRow, true, 100, 200)
	b := mkRec(0, 0, 1, dram.GranRow, true, 150, 250)
	c := mkRec(0, 0, 2, dram.GranRow, true, 300, 400)
	if !a.Overlaps(&b) || b.Overlaps(&c) || a.Overlaps(&c) {
		t.Fatal("interval overlap logic wrong")
	}
	if got := a.OverlapStart(&b); got != 150 {
		t.Fatalf("overlap start = %v", got)
	}
}

func TestReportAccessors(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Ranks() != 8 {
		t.Fatalf("ranks = %d", cfg.Ranks())
	}
	rep, err := Run(cfg, []Scheme{NewSECDED(), NewXED()}, 30_000, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	secded := rep.ResultFor("ECC-DIMM (SECDED)")
	if secded.StdErr() <= 0 {
		t.Fatal("zero standard error with failures present")
	}
	if secded.ProbabilityByYear(-1) != 0 || secded.ProbabilityByYear(99) != 0 {
		t.Fatal("out-of-range year should read 0")
	}
	if secded.ProbabilityByYear(6) != secded.Probability() {
		t.Fatal("final-year cumulative != total")
	}
	if p := secded.DUEProbability() + secded.SDCProbability(); p != secded.Probability() {
		t.Fatalf("kind split %v != total %v", p, secded.Probability())
	}
	if rep.ResultFor("nope") != nil {
		t.Fatal("unknown scheme should be nil")
	}
	if imp := rep.Improvement("XED", "ECC-DIMM (SECDED)"); imp <= 1 {
		t.Fatalf("improvement = %v", imp)
	}
	if !math.IsInf(rep.Improvement("nope", "XED"), 1) {
		t.Fatal("missing scheme should give +Inf improvement")
	}
}

func TestConfigValidateRejects(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.ScrubIntervalHours = 0 },
		func(c *Config) { c.FITs = nil },
		func(c *Config) { c.SilentWordFraction = 2 },
		func(c *Config) { c.Geom.Banks = 0 },
		func(c *Config) { c.LifetimeHours = -1 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestDoubleChipkillKindSplit(t *testing.T) {
	cfg := DefaultConfig()
	rep, err := Run(cfg, []Scheme{NewDoubleChipkill()}, 3_000_000, 17, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Results[0]
	if res.Failures == 0 {
		t.Skip("no DCK failures at this trial count")
	}
	if res.DUEs+res.SDCs != res.Failures {
		t.Fatal("kind partition broken")
	}
	// Triple-error mis-correction is ~1%: DUEs must dominate.
	if res.SDCs > res.DUEs/10 {
		t.Fatalf("DCK SDCs (%d) implausibly high vs DUEs (%d)", res.SDCs, res.DUEs)
	}
}

func TestImprovementCI(t *testing.T) {
	cfg := DefaultConfig()
	rep, err := Run(cfg, []Scheme{NewSECDED(), NewXED()}, 400_000, 19, 0)
	if err != nil {
		t.Fatal(err)
	}
	ratio, lo, hi := rep.ImprovementCI("XED", "ECC-DIMM (SECDED)")
	if !(lo < ratio && ratio < hi) {
		t.Fatalf("CI (%v, %v) does not bracket ratio %v", lo, hi, ratio)
	}
	if lo < 50 || hi > 500 {
		t.Fatalf("CI (%v, %v) implausibly wide for this trial count", lo, hi)
	}
	if _, lo2, hi2 := rep.ImprovementCI("XED", "nope"); lo2 != 0 || !math.IsInf(hi2, 1) {
		t.Fatal("missing scheme should give degenerate CI")
	}
}
