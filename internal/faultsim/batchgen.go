package faultsim

import (
	"context"
	"fmt"
	"runtime/debug"

	"xedsim/internal/obs"
	"xedsim/internal/simrand"
)

// Batched trial generation (-gen=batch).
//
// The scalar generator interleaves every trial's draws: one Poisson count,
// then per record a class draw, an onset draw and three bounded geometry
// draws, each paying full per-call sampler overhead. After the lane engine
// (PR 6) collapsed judging to ~200µs per 200k Table I trials, that scalar
// draw sequence was ~25x the judging cost. The batch generator restructures
// a whole chunk into structure-of-arrays form:
//
//  1. One arrival pass plans the chunk: TruncPoisson.NextPositiveRuns
//     emits (zero-run, count) pairs, so the ~75% of trials that draw no
//     faults cost no uniforms at all (the geometric skip covers them).
//  2. Record columns are sampled array-at-a-time — class uniforms and
//     onsets via Source.FillFloat64 with the xoshiro state in registers,
//     channel/rank/chip via IntnSampler.Fill over one bulk word column —
//     instead of record-at-a-time.
//  3. A pack loop walks the plan in trial order and materialises records
//     through generator.emitPlaced, which also keeps the rare conditional
//     draws (address ranges, silent words, scaling escalation, multi-rank
//     expansion) on the scalar route, in the scalar order.
//
// Determinism contract: for a fixed (cfg, seed, chunk index) the plan is a
// pure function of the chunk substream, so -gen=batch results remain
// bit-identical across worker counts, engines, checkpoint/resume patterns
// and the service/local split — the campaign invariants are untouched. What
// changes is the *order* uniforms are consumed in, so batch streams are not
// bit-identical to scalar streams; they are exactly distributed instead:
//
//   - The arrival decomposition (geometric zero-run + zero-truncated count)
//     is the same exact identity the scalar fast path uses; stopping at the
//     chunk boundary without drawing a count is exact because
//     P(zero-run >= remaining) = q^remaining is precisely the probability
//     that every remaining trial is empty.
//   - Poisson splitting makes the records of a chunk i.i.d. across
//     (class, onset, geometry), so sampling those fields column-major
//     instead of row-major leaves the joint law unchanged.
//   - Each column primitive is distribution-exact against its scalar
//     counterpart (see internal/simrand/batch.go); the only intentional
//     law-preserving deviations are that the aging path always draws its
//     thinning uniform (the scalar Bernoulli skips the draw when the
//     acceptance probability is exactly 1) and that a rank is drawn for
//     multi-rank (GranChip) records whose expansion then overwrites it.
//
// The gate mirrors the lane engine's: FuzzBatchGenVsScalar differential
// fuzz, the 1000-config conformance differential and `xedverify -gen=batch`
// (including through a live coordinator) must all pass. Because the streams
// differ, Generator is part of the campaign identity hash — see
// campaignHashInput.

// batchGenerator wraps a scalar generator with per-chunk plan storage. It
// is single-goroutine, like the campaignWorker that owns it, and reuses all
// plan columns across chunks (0 allocs/op in steady state). Plan memory is
// O(records per chunk): ~40B per expected record.
type batchGenerator struct {
	g       *generator
	trunc   simrand.TruncPoisson // arrival runs at totalMean (flat profile)
	truncPk simrand.TruncPoisson // candidate runs at totalMean * aging peak

	// Chunk plan. trialPos[i] is the chunk-relative index of the i-th
	// emitted trial (>= 1 record after aging thinning); its records occupy
	// the column range [recEnd[i-1], recEnd[i]).
	runs     []simrand.PosRun
	trialPos []int32
	recEnd   []int32
	class    []int32   // index into g.classes
	u01      []float64 // onset as a lifetime fraction in [0, 1)
	ch       []int32
	rk       []int32
	chip     []int32

	// Scratch columns.
	words []uint64  // bulk words for IntnSampler.Fill
	f64   []float64 // class uniforms; aging thinning uniforms
	x     []float64 // aging candidate onsets

	met batchGenMetrics
}

// batchGenMetrics publishes generation-shape statistics under
// "faultsim.gen.*". Handles resolve once per campaign; observations happen
// at chunk granularity from the already-built plan arrays (pure atomic
// ops, 0 allocs), and the whole block is skipped when no registry is
// attached.
type batchGenMetrics struct {
	attached     bool
	refills      *obs.Counter   // chunk plans built
	recsPerTrial *obs.Histogram // records per emitted trial
	skipRun      *obs.Histogram // empty-trial run length preceding each emitted trial
}

func newBatchGenerator(g *generator) *batchGenerator {
	bg := &batchGenerator{g: g}
	if g.totalMean > 0 {
		bg.trunc = simrand.NewTruncPoisson(g.totalMean)
		if g.cfg.Aging.enabled() {
			bg.truncPk = simrand.NewTruncPoisson(g.totalMean * g.cfg.Aging.Peak())
		}
	}
	return bg
}

func (bg *batchGenerator) setMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	bg.met = batchGenMetrics{
		attached:     true,
		refills:      r.Counter("faultsim.gen.batch_refills"),
		recsPerTrial: r.Histogram("faultsim.gen.records_per_trial", []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}),
		skipRun:      r.Histogram("faultsim.gen.skip_run", []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048}),
	}
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// plan builds the chunk plan for n trials from rng, which must sit at the
// head of the chunk's substream. The draw order is the batch mode's
// canonical sequence (the differential fuzz reference reproduces it with
// scalar primitives): arrival runs; [aging: candidate-onset column, then
// thinning column]; class-uniform column; [flat: onset column]; channel,
// rank, chip word columns with rejection redraws in ascending index order.
// Conditional per-record draws happen later, inside emitTrial.
func (bg *batchGenerator) plan(rng *simrand.Source, n int) {
	g := bg.g
	bg.runs = bg.runs[:0]
	bg.trialPos = bg.trialPos[:0]
	bg.recEnd = bg.recEnd[:0]
	if g.totalMean <= 0 {
		return
	}
	aging := g.cfg.Aging
	total := int32(0)
	if !aging.enabled() {
		bg.runs = bg.trunc.NextPositiveRuns(rng, n, bg.runs)
		pos := int32(-1)
		for _, r := range bg.runs {
			pos += r.Skip + 1
			total += r.Count
			bg.trialPos = append(bg.trialPos, pos)
			bg.recEnd = append(bg.recEnd, total)
		}
		bg.fillColumns(rng, int(total), true)
		bg.observe()
		return
	}
	// Aging: candidates arrive at the envelope (peak) rate and are thinned
	// to the instantaneous multiplier — the same exact non-homogeneous
	// sampling the scalar path uses, with the candidate onsets and
	// acceptance uniforms drawn as columns. Thinning can empty a trial, so
	// emitted trials are the runs with >= 1 accepted candidate.
	bg.runs = bg.truncPk.NextPositiveRuns(rng, n, bg.runs)
	cand := 0
	for _, r := range bg.runs {
		cand += int(r.Count)
	}
	bg.x = growF64(bg.x, cand)
	bg.f64 = growF64(bg.f64, cand)
	rng.FillFloat64(bg.x)
	rng.FillFloat64(bg.f64)
	bg.u01 = growF64(bg.u01, cand)[:0]
	peak := aging.Peak()
	ci := 0
	pos := int32(-1)
	for _, r := range bg.runs {
		pos += r.Skip + 1
		kept := int32(0)
		for j := int32(0); j < r.Count; j++ {
			if x := bg.x[ci]; bg.f64[ci] < aging.Multiplier(x)/peak {
				bg.u01 = append(bg.u01, x)
				kept++
			}
			ci++
		}
		if kept > 0 {
			total += kept
			bg.trialPos = append(bg.trialPos, pos)
			bg.recEnd = append(bg.recEnd, total)
		}
	}
	bg.fillColumns(rng, int(total), false)
	bg.observe()
}

// fillColumns samples the per-record columns for R records. The onset
// column is only drawn on the flat path; under aging the accepted candidate
// onsets are already in u01.
func (bg *batchGenerator) fillColumns(rng *simrand.Source, R int, withOnsets bool) {
	g := bg.g
	bg.f64 = growF64(bg.f64, R)
	rng.FillFloat64(bg.f64)
	bg.class = growI32(bg.class, R)
	for i, u := range bg.f64 {
		bg.class[i] = int32(g.classSamp.Lookup(u))
	}
	if withOnsets {
		bg.u01 = growF64(bg.u01, R)
		rng.FillFloat64(bg.u01)
	}
	bg.words = growU64(bg.words, R)
	bg.ch = growI32(bg.ch, R)
	bg.rk = growI32(bg.rk, R)
	bg.chip = growI32(bg.chip, R)
	g.chSamp.Fill(rng, bg.ch, bg.words)
	// Multi-rank (GranChip) records consume a rank draw here like every
	// other record; emitPlaced's expansion overwrites it. Unconditional
	// columns keep the plan branch-free and the law is unchanged (the
	// draw is independent of everything it feeds).
	g.rankSamp.Fill(rng, bg.rk, bg.words)
	g.chipSamp.Fill(rng, bg.chip, bg.words)
}

// observe publishes the chunk plan's shape metrics.
func (bg *batchGenerator) observe() {
	if !bg.met.attached {
		return
	}
	bg.met.refills.Inc()
	for _, r := range bg.runs {
		bg.met.skipRun.Observe(float64(r.Skip))
	}
	prev := int32(0)
	for _, end := range bg.recEnd {
		bg.met.recsPerTrial.Observe(float64(end - prev))
		prev = end
	}
}

// emitted returns the number of planned non-empty trials in the chunk.
func (bg *batchGenerator) emitted() int { return len(bg.trialPos) }

// emitTrial packs emitted trial i's records onto buf, drawing any
// conditional per-record randomness (ranges, silent words, escalation) from
// rng in the scalar order. Trials must be emitted in plan order exactly
// once per chunk: the conditional draws and the EventID counter advance
// with each call.
func (bg *batchGenerator) emitTrial(rng *simrand.Source, i int, buf []FaultRecord) []FaultRecord {
	g := bg.g
	lo := int32(0)
	if i > 0 {
		lo = bg.recEnd[i-1]
	}
	lifetime := g.cfg.LifetimeHours
	for r := lo; r < bg.recEnd[i]; r++ {
		cls := g.classes[bg.class[r]]
		buf = g.emitPlaced(rng, buf, cls, bg.u01[r]*lifetime,
			int(bg.ch[r]), int(bg.rk[r]), int(bg.chip[r]))
	}
	return buf
}

// runBatchChunk is runChunk's GenBatch body: plan the whole chunk, then
// judge it with the selected engine. The chunk-head RNG state anchors any
// TrialError (batch draws are interleaved across the chunk, so there is no
// meaningful per-trial state — see TrialError.RNGState).
func (w *campaignWorker) runBatchChunk(ctx context.Context, lo, hi int) bool {
	if ctx.Err() != nil {
		return false
	}
	st := w.rng.State()
	w.bg.plan(w.rng, hi-lo)
	if w.engine == EngineLanes {
		return w.runBatchLaneChunk(ctx, st, lo, hi)
	}
	return w.runBatchScalarChunk(ctx, st, lo, hi)
}

// runBatchLaneChunk packs planned trials straight into the worker's
// LaneBatch. Fast mode commits only the emitted trials (skipped empties
// survive every scheme and tally nothing); otherwise every trial of the
// chunk gets a lane. Scheme panics are contained per lane by the
// LaneEvaluator, exactly as on the scalar-generation lane path.
func (w *campaignWorker) runBatchLaneChunk(ctx context.Context, st simrand.State, lo, hi int) bool {
	rng, bg, b := w.rng, w.bg, &w.batch
	b.Reset()
	if w.fast {
		lv := w.lv
		// emitTrial and commitDigested are open-coded: the fast path
		// visits every emitted trial in order, so recEnd[i-1] is just
		// where the previous iteration stopped, and keeping the recs/lrs
		// slice headers and the lane count in locals spares a load+store
		// per record. The locals sync back to the batch at every flush
		// boundary (flushBatch resets the batch) and on early return.
		g := bg.g
		lifetime := g.cfg.LifetimeHours
		rLo := int32(0)
		recs, lrs, lanes := b.recs, b.lrs, b.lanes
		for i := 0; i < bg.emitted(); i++ {
			if i&255 == 0 && ctx.Err() != nil {
				b.recs, b.lrs, b.lanes = recs, lrs, lanes
				return false
			}
			n0 := len(recs)
			for r := rLo; r < bg.recEnd[i]; r++ {
				recs = g.emitPlaced(rng, recs, g.classes[bg.class[r]],
					bg.u01[r]*lifetime, int(bg.ch[r]), int(bg.rk[r]), int(bg.chip[r]))
			}
			rLo = bg.recEnd[i]
			// Pre-judged survivors: most emitted trials hold one record,
			// and when its signature is overweight for no scheme the lane
			// would sail through EvaluateBatch without setting a fail bit.
			// Dropping it here skips the mask pass and the flush for over
			// half the stream at stock rates; outcomes are untouched
			// because a surviving lane tallies nothing. The record is
			// digested into a local first — cache-hot, and survivors never
			// touch lrs at all.
			if len(recs) == n0+1 {
				r := &recs[n0]
				sig := recSig(r)
				if lv.singleSurvives(sig) {
					recs = recs[:n0]
					continue
				}
				lrs = append(lrs, digestRecordSig(r, sig))
			} else {
				for ri := n0; ri < len(recs); ri++ {
					lrs = append(lrs, digestRecord(&recs[ri]))
				}
			}
			b.trial[lanes] = lo + int(bg.trialPos[i])
			b.state[lanes] = st
			lanes++
			b.offs[lanes] = int32(len(recs))
			if lanes == LaneWidth {
				b.recs, b.lrs, b.lanes = recs, lrs, lanes
				w.flushBatch()
				recs, lrs, lanes = b.recs, b.lrs, b.lanes
			}
		}
		b.recs, b.lrs, b.lanes = recs, lrs, lanes
	} else {
		ti := 0
		for t := lo; t < hi; t++ {
			if (t-lo)&cancelCheckMask == 0 && ctx.Err() != nil {
				return false
			}
			if ti < bg.emitted() && lo+int(bg.trialPos[ti]) == t {
				b.recs = bg.emitTrial(rng, ti, b.recs)
				ti++
			}
			b.commit(t, st)
			if b.Lanes() == LaneWidth {
				w.flushBatch()
			}
		}
	}
	w.flushBatch()
	return true
}

// runBatchScalarChunk judges a planned chunk on the scalar engines
// (indexed/reference) with the same span-scoped panic recovery as runSpan:
// a panicking trial is voided and the span resumes after it. Evaluation
// never draws from rng, so the remaining emitTrial calls see exactly the
// draws they would have in a panic-free run.
func (w *campaignWorker) runBatchScalarChunk(ctx context.Context, st simrand.State, lo, hi int) bool {
	t0, bi0 := lo, 0
	for {
		switch w.runBatchSpan(ctx, st, t0, bi0, lo, hi) {
		case spanDone:
			return true
		case spanCancelled:
			return false
		case spanPanicked:
			if w.fast {
				bi0 = w.bi + 1
			} else {
				t0, bi0 = w.t+1, w.bi
			}
		}
	}
}

// runBatchSpan evaluates planned trials from (t0, bi0) on. Fast mode walks
// only the emitted trials (bi0 is the emitted-trial index; t0 is unused);
// otherwise it walks every trial index with bi0 as the emitted cursor. The
// stash fields (w.t, w.bi, w.st) are written before each evaluation so the
// span-level recover can attribute a panic and resume.
func (w *campaignWorker) runBatchSpan(ctx context.Context, st simrand.State, t0, bi0, lo, hi int) (status int) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if !w.inEval {
			panic(r)
		}
		w.inEval = false
		w.errs = append(w.errs, TrialError{
			Trial:      w.t,
			Chunk:      w.chunk,
			RNGState:   w.st,
			Faults:     append([]FaultRecord(nil), w.buf...),
			PanicValue: fmt.Sprint(r),
			Stack:      string(debug.Stack()),
		})
		status = spanPanicked
	}()

	rng, bg, ev := w.rng, w.bg, w.ev
	buf, outs := w.buf, w.outs
	defer func() { w.buf, w.outs = buf, outs }()
	ref := w.engine == EngineReference

	if w.fast {
		for i := bi0; i < bg.emitted(); i++ {
			if i&255 == 0 && ctx.Err() != nil {
				return spanCancelled
			}
			buf = bg.emitTrial(rng, i, buf[:0])
			w.t, w.bi, w.st, w.buf, w.inEval = lo+int(bg.trialPos[i]), i, st, buf, true
			if ref {
				outs = ev.referenceInto(buf, outs)
			} else {
				outs = ev.EvaluateInto(buf, outs)
			}
			w.inEval = false
			w.outs = outs
			w.tally()
		}
		return spanDone
	}
	ti := bi0
	for t := t0; t < hi; t++ {
		if (t-lo)&cancelCheckMask == 0 && ctx.Err() != nil {
			return spanCancelled
		}
		buf = buf[:0]
		if ti < bg.emitted() && lo+int(bg.trialPos[ti]) == t {
			buf = bg.emitTrial(rng, ti, buf)
			ti++
		}
		w.t, w.bi, w.st, w.buf, w.inEval = t, ti, st, buf, true
		if ref {
			outs = ev.referenceInto(buf, outs)
		} else {
			outs = ev.EvaluateInto(buf, outs)
		}
		w.inEval = false
		w.outs = outs
		w.tally()
	}
	return spanDone
}

// CaptureTraceGen is CaptureTrace under a selectable generation mode: for
// GenBatch it plans the requested trials as one batch chunk and
// materialises every trial (empty ones stay nil, as in CaptureTrace).
// GenScalar delegates to CaptureTrace. The conformance differential claim
// uses this to drive random configs through the batch plan/pack path.
func CaptureTraceGen(cfg Config, trials int, seed uint64, gen Generator) (*Trace, error) {
	gen, err := ParseGenerator(string(gen))
	if err != nil {
		return nil, err
	}
	if gen == GenScalar {
		return CaptureTrace(cfg, trials, seed)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if trials <= 0 {
		return nil, fmt.Errorf("faultsim: non-positive trial count %d", trials)
	}
	rng := simrand.New(seed)
	bg := newBatchGenerator(newGenerator(&cfg))
	tr := &Trace{Config: cfg, Seed: seed, Trials: make([][]FaultRecord, trials)}
	bg.plan(rng, trials)
	for i := 0; i < bg.emitted(); i++ {
		tr.Trials[bg.trialPos[i]] = bg.emitTrial(rng, i, nil)
	}
	return tr, nil
}
