package faultsim

import (
	"fmt"
	"math"
)

// Lifetime-dependent fault rates. The field data behind Table I is a
// time-average, but real DRAM populations show a bathtub: elevated infant
// mortality that burns in over the first months, a flat useful-life floor,
// and wear-out growth toward end of life. The paper's conclusion motivates
// exactly this regime ("as DRAM technology ventures into sub-20nm...");
// this extension lets the simulator ask how XED's margins hold up when the
// flat-rate assumption is dropped.
//
// The generator samples arrival times by thinning: candidates are drawn at
// the envelope rate (peak multiplier) and accepted with probability
// m(t)/mPeak, which is exact for any bounded rate profile.

// AgingProfile is a bathtub-shaped FIT multiplier over the lifetime.
type AgingProfile struct {
	// InfantFactor scales the fault rate at t=0; it decays linearly to
	// 1 over BurnInFraction of the lifetime. 1 disables the infant leg.
	InfantFactor   float64
	BurnInFraction float64
	// WearoutFactor is the rate multiplier reached at end of life; the
	// wear-out leg grows linearly from WearoutOnset (fraction of
	// lifetime) onward. 1 disables it.
	WearoutFactor float64
	WearoutOnset  float64
}

// FlatAging is the paper's constant-rate assumption.
func FlatAging() AgingProfile { return AgingProfile{InfantFactor: 1, WearoutFactor: 1} }

// BathtubAging is a representative profile: 5x infant mortality burning in
// over the first 5% of life, and 3x wear-out growth over the final 30%.
func BathtubAging() AgingProfile {
	return AgingProfile{InfantFactor: 5, BurnInFraction: 0.05, WearoutFactor: 3, WearoutOnset: 0.7}
}

// validate rejects profiles the thinning sampler cannot handle: NaN or
// negative factors, and burn-in/onset fractions outside [0,1]. The zero
// value (flat) is valid.
func (a AgingProfile) validate() error {
	for _, v := range [...]float64{a.InfantFactor, a.BurnInFraction, a.WearoutFactor, a.WearoutOnset} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("faultsim: invalid aging profile %+v", a)
		}
	}
	if a.BurnInFraction > 1 || a.WearoutOnset > 1 {
		return fmt.Errorf("faultsim: aging profile fractions must lie in [0,1]: %+v", a)
	}
	return nil
}

// enabled reports whether the profile deviates from flat.
func (a AgingProfile) enabled() bool {
	return (a.InfantFactor > 1 && a.BurnInFraction > 0) || a.WearoutFactor > 1
}

// Multiplier evaluates m(t) at lifetime fraction x in [0,1].
func (a AgingProfile) Multiplier(x float64) float64 {
	m := 1.0
	if a.InfantFactor > 1 && a.BurnInFraction > 0 && x < a.BurnInFraction {
		m += (a.InfantFactor - 1) * (1 - x/a.BurnInFraction)
	}
	if a.WearoutFactor > 1 && x > a.WearoutOnset && a.WearoutOnset < 1 {
		m += (a.WearoutFactor - 1) * (x - a.WearoutOnset) / (1 - a.WearoutOnset)
	}
	return m
}

// Peak returns the envelope max of Multiplier on [0,1].
func (a AgingProfile) Peak() float64 {
	peak := 1.0
	if v := a.Multiplier(0); v > peak {
		peak = v
	}
	if v := a.Multiplier(1); v > peak {
		peak = v
	}
	return peak
}

// MeanMultiplier integrates m(t) over the lifetime (trapezoid on the
// piecewise-linear profile) — the factor by which total fault counts grow.
func (a AgingProfile) MeanMultiplier() float64 {
	mean := 1.0
	if a.InfantFactor > 1 && a.BurnInFraction > 0 {
		mean += (a.InfantFactor - 1) / 2 * a.BurnInFraction
	}
	if a.WearoutFactor > 1 && a.WearoutOnset < 1 {
		mean += (a.WearoutFactor - 1) / 2 * (1 - a.WearoutOnset)
	}
	return mean
}
