package faultsim

import (
	"math"
	"testing"

	"xedsim/internal/simrand"
)

func TestAgingMultiplierShape(t *testing.T) {
	a := BathtubAging()
	if m := a.Multiplier(0); math.Abs(m-5) > 1e-9 {
		t.Fatalf("m(0) = %v, want 5 (infant)", m)
	}
	if m := a.Multiplier(0.5); math.Abs(m-1) > 1e-9 {
		t.Fatalf("m(0.5) = %v, want 1 (useful life)", m)
	}
	if m := a.Multiplier(1); math.Abs(m-3) > 1e-9 {
		t.Fatalf("m(1) = %v, want 3 (wear-out)", m)
	}
	if p := a.Peak(); p != 5 {
		t.Fatalf("peak = %v", p)
	}
	flat := FlatAging()
	for _, x := range []float64{0, 0.3, 1} {
		if flat.Multiplier(x) != 1 {
			t.Fatalf("flat multiplier at %v != 1", x)
		}
	}
	if flat.enabled() {
		t.Fatal("flat profile should be disabled")
	}
}

func TestAgingMeanMultiplier(t *testing.T) {
	a := BathtubAging()
	// Infant leg adds (5-1)/2*0.05 = 0.1; wear-out adds (3-1)/2*0.3 = 0.3.
	want := 1.4
	if got := a.MeanMultiplier(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("mean multiplier = %v, want %v", got, want)
	}
}

func TestAgingFaultCountsScale(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Aging = BathtubAging()
	gen := newGenerator(&cfg)
	rng := simrand.New(21)
	const trials = 30000
	total := 0
	early, late := 0, 0
	var buf []FaultRecord
	for i := 0; i < trials; i++ {
		buf = gen.Trial(rng, buf)
		total += len(buf)
		for j := range buf {
			x := buf[j].Start / cfg.LifetimeHours
			if x < 0.05 {
				early++
			}
			if x > 0.95 {
				late++
			}
		}
	}
	// Expected total scales by the mean multiplier.
	flatMean := 0.0
	for _, cls := range cfg.FITs {
		r := float64(cls.Rate) * 1e-9 * cfg.LifetimeHours
		if cls.Gran == 6 { // dram.GranChip
			flatMean += r * float64(cfg.Channels) * float64(cfg.RanksPerChannel)
		} else {
			flatMean += r * float64(cfg.TotalChips())
		}
	}
	want := flatMean * cfg.Aging.MeanMultiplier() * trials
	if f := float64(total); f < want*0.93 || f > want*1.07 {
		t.Fatalf("aged fault count %v, want ≈%v", f, want)
	}
	// Burn-in density: the first 5%% of life carries ~3x the average of
	// that window under flat rates ((5+1)/2 multiplier average).
	if early <= late {
		t.Fatalf("early faults (%d) should outnumber late window faults (%d) with 5x infant mortality", early, late)
	}
}

func TestAgingReliabilityOrderPreserved(t *testing.T) {
	// XED's advantage must survive the bathtub: infant mortality raises
	// everyone's failure probability, but the ordering is structural.
	cfg := DefaultConfig()
	cfg.Aging = BathtubAging()
	rep, err := Run(cfg, []Scheme{NewSECDED(), NewXED(), NewChipkill()}, 300_000, 13, 0)
	if err != nil {
		t.Fatal(err)
	}
	secded := rep.ResultFor("ECC-DIMM (SECDED)").Probability()
	xed := rep.ResultFor("XED").Probability()
	ck := rep.ResultFor("Chipkill").Probability()
	if !(xed < ck && ck < secded) {
		t.Fatalf("ordering broken under aging: xed=%v ck=%v secded=%v", xed, ck, secded)
	}
	// And everything got worse than the flat-rate run.
	flat, err := Run(DefaultConfig(), []Scheme{NewSECDED(), NewXED()}, 300_000, 13, 0)
	if err != nil {
		t.Fatal(err)
	}
	if secded <= flat.ResultFor("ECC-DIMM (SECDED)").Probability() {
		t.Fatal("bathtub should raise SECDED failure probability")
	}
}
