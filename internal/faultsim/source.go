package faultsim

import "xedsim/internal/simrand"

// TrialSource draws whole-lifetime fault-record streams for one simulated
// system outside the campaign engine. It is the seam the fleet simulator
// (internal/fleet) ages its DIMMs through: each DIMM's runtime faults are
// one unfiltered trial of the single-DIMM Config, drawn at the Table I FIT
// rates, so the fleet's per-DIMM fault statistics are — by construction —
// the same ones the Monte-Carlo campaigns evaluate.
//
// Unlike the campaign's internal generator, a TrialSource never filters
// fault classes by scheme liveness (telemetry needs the on-die-corrected
// single-bit stream the schemes ignore) and always draws symbolic address
// ranges (retirement policies need the damaged row).
type TrialSource struct {
	g *generator
}

// NewTrialSource validates cfg and builds a source over its full FIT
// table. The source is not safe for concurrent use; campaigns give each
// worker its own.
func NewTrialSource(cfg *Config) (*TrialSource, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := newFilteredGenerator(cfg, nil)
	g.withRanges = true
	return &TrialSource{g: g}, nil
}

// Mean returns the expected fault-arrival count per trial (Poisson mean
// over the whole fleet and lifetime of cfg). Multi-rank events count once.
func (s *TrialSource) Mean() float64 { return s.g.totalMean }

// Trial appends one system's lifetime fault records to buf and returns it.
// The draw sequence is a pure function of rng's state.
func (s *TrialSource) Trial(rng *simrand.Source, buf []FaultRecord) []FaultRecord {
	return s.g.Trial(rng, buf)
}

// NextNonEmpty reports how many consecutive trials drew zero faults and
// then generates the next non-empty trial, appending its records to buf.
// Callers account the skipped trials wholesale (a zero-fault system has no
// telemetry and cannot fail); the decomposition is exact — see
// generator.nextNonEmpty.
func (s *TrialSource) NextNonEmpty(rng *simrand.Source, buf []FaultRecord) (skipped int, out []FaultRecord) {
	return s.g.nextNonEmptyAppend(rng, buf[:0])
}

// ResetEvents rewinds the multi-rank EventID counter. Chunked callers
// reset at every chunk boundary so a chunk's records are a pure function
// of the chunk's substream, exactly like the campaign engine.
func (s *TrialSource) ResetEvents() { s.g.resetEvents() }
