package faultsim

import (
	"encoding/json"
	"fmt"
	"io"

	"xedsim/internal/dram"
	"xedsim/internal/simrand"
)

// Fault-trace serialisation: a recorded campaign slice that can be
// re-judged by any scheme later, diffed across code versions, or handed to
// the functional model for replay. FaultSim grew the same facility for
// exactly these reasons — debugging a reliability model is hopeless
// without reproducible fault streams.

// Trace is a set of trials' fault records plus the generating config.
type Trace struct {
	Config Config          `json:"config"`
	Seed   uint64          `json:"seed"`
	Trials [][]FaultRecord `json:"trials"`
}

// CaptureTrace generates and records `trials` fault streams.
func CaptureTrace(cfg Config, trials int, seed uint64) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if trials <= 0 {
		return nil, fmt.Errorf("faultsim: non-positive trial count %d", trials)
	}
	rng := simrand.New(seed)
	gen := newGenerator(&cfg)
	tr := &Trace{Config: cfg, Seed: seed, Trials: make([][]FaultRecord, trials)}
	for t := 0; t < trials; t++ {
		buf := gen.Trial(rng, nil)
		tr.Trials[t] = append([]FaultRecord(nil), buf...)
	}
	return tr, nil
}

// WriteJSON serialises the trace.
func (tr *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

// ReadTrace deserialises a trace written by WriteJSON.
func ReadTrace(r io.Reader) (*Trace, error) {
	var tr Trace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return nil, fmt.Errorf("faultsim: decoding trace: %w", err)
	}
	if err := tr.Config.Validate(); err != nil {
		return nil, err
	}
	return &tr, nil
}

// Judge evaluates every recorded trial under the given schemes, producing
// the same Report shape as Run.
func (tr *Trace) Judge(schemes []Scheme) (*Report, error) {
	if len(schemes) == 0 {
		return nil, fmt.Errorf("faultsim: no schemes to evaluate")
	}
	years := int(tr.Config.LifetimeHours/HoursPerYear + 0.999999)
	rep := &Report{Config: tr.Config, Trials: uint64(len(tr.Trials)), Years: years}
	for _, scheme := range schemes {
		rep.Results = append(rep.Results, Result{
			SchemeName:     scheme.Name(),
			Trials:         uint64(len(tr.Trials)),
			FailuresByYear: make([]uint64, years),
		})
	}
	// Trial-major with the pre-indexed Evaluator: one scheme sweep per
	// recorded trial, all scratch reused.
	ev := NewEvaluator(&tr.Config, schemes)
	var outs []TrialOutcome
	for _, faults := range tr.Trials {
		outs = ev.EvaluateInto(faults, outs)
		for s := range outs {
			ft := outs[s].FailTime
			if ft > tr.Config.LifetimeHours {
				continue
			}
			res := &rep.Results[s]
			res.Failures++
			switch outs[s].Kind {
			case FailDUE:
				res.DUEs++
			case FailSDC:
				res.SDCs++
			}
			yr := int(ft / HoursPerYear)
			if yr >= years {
				yr = years - 1
			}
			for y := yr; y < years; y++ {
				res.FailuresByYear[y]++
			}
		}
	}
	return rep, nil
}

// ApplyToChip replays one trial's faults for a specific chip position into
// the functional DRAM model — the bridge between the statistical and
// functional halves of the repo.
func ApplyToChip(faults []FaultRecord, channel, rank, chip int, target *dram.Chip) int {
	applied := 0
	for i := range faults {
		r := &faults[i]
		if r.Channel != channel || r.Rank != rank || r.Chip != chip {
			continue
		}
		target.InjectFault(r.Range)
		applied++
	}
	return applied
}
