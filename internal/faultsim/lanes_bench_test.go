package faultsim

import (
	"context"
	"math"
	"math/bits"
	"testing"

	"xedsim/internal/simrand"
)

// benchStream captures the trial stream a Table I campaign actually
// judges: the generator's skip-sampling discards empty trials before the
// evaluator sees them, so the judging benchmarks replay the same
// campaign-filtered distribution (about one record per trial at stock
// rates) through every engine.
func benchStream(cfg *Config, n int) [][]FaultRecord {
	gen := newGenerator(cfg)
	rng := simrand.New(42)
	trials := make([][]FaultRecord, 0, n)
	for len(trials) < n {
		buf := gen.Trial(rng, nil)
		if len(buf) > 0 {
			trials = append(trials, buf)
		}
	}
	return trials
}

// BenchmarkTableICampaign measures the Monte-Carlo hot loop on the
// paper's Table I operating point, both as isolated judging throughput
// over an identical captured stream (judge/engine=*) and as the full
// generate-and-judge campaign (end2end/engine=*). The judge split is the
// honest basis for the lane engine's speedup claim: trial generation is
// engine-invariant and amortises to a constant floor, so end-to-end gains
// saturate near the generation fraction while the judging step itself
// scales with the bit-slicing.
func BenchmarkTableICampaign(b *testing.B) {
	const streamLen = 8192
	cfg := DefaultConfig()
	schemes := AllSchemes()
	trials := benchStream(&cfg, streamLen)

	b.Run("judge/engine=indexed", func(b *testing.B) {
		ev := NewEvaluator(&cfg, schemes)
		var outs []TrialOutcome
		var sink float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, faults := range trials {
				outs = ev.EvaluateInto(faults, outs)
				for s := range outs {
					if !math.IsInf(outs[s].FailTime, 1) {
						sink += outs[s].FailTime
					}
				}
			}
		}
		b.ReportMetric(float64(streamLen*b.N)/b.Elapsed().Seconds(), "trials/s")
		_ = sink
	})

	b.Run("judge/engine=reference", func(b *testing.B) {
		ev := NewEvaluator(&cfg, schemes)
		var outs []TrialOutcome
		var sink float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, faults := range trials {
				outs = ev.referenceInto(faults, outs)
				for s := range outs {
					if !math.IsInf(outs[s].FailTime, 1) {
						sink += outs[s].FailTime
					}
				}
			}
		}
		b.ReportMetric(float64(streamLen*b.N)/b.Elapsed().Seconds(), "trials/s")
		_ = sink
	})

	b.Run("judge/engine=lanes", func(b *testing.B) {
		ev := NewEvaluator(&cfg, schemes)
		lv := NewLaneEvaluator(ev)
		// Pre-pack once: in the campaign the generator appends records
		// straight into the batch (no per-trial copy), so packing is not
		// part of the judging step being measured.
		var st simrand.State
		batches := make([]*LaneBatch, 0, streamLen/LaneWidth)
		for base := 0; base < len(trials); base += LaneWidth {
			bt := new(LaneBatch)
			for i := base; i < base+LaneWidth && i < len(trials); i++ {
				bt.Add(i-base, st, trials[i])
			}
			batches = append(batches, bt)
		}
		var sink float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, bt := range batches {
				lv.EvaluateBatch(bt)
				// Consume outcomes the way flushBatch does: failing
				// lanes only, via the per-scheme fail masks.
				for s := range schemes {
					for m := lv.FailMask(s); m != 0; m &= m - 1 {
						L := bits.TrailingZeros64(m)
						sink += lv.outs[s*LaneWidth+L].FailTime
					}
				}
			}
		}
		b.ReportMetric(float64(streamLen*b.N)/b.Elapsed().Seconds(), "trials/s")
		_ = sink
	})

	// Generation-only split: the campaign loop minus judging, chunked and
	// substream-seeded exactly as the campaign chunks it, under both
	// generation modes. gen + judge ≈ end2end is the sanity identity;
	// gen/gen=batch against gen/gen=scalar is the batch generator's
	// headline speedup.
	const genTrials = 1 << 16
	genEval := NewEvaluator(&cfg, schemes)

	b.Run("gen/gen=scalar", func(b *testing.B) {
		g := newRunGenerator(&cfg, genEval)
		rng := simrand.New(0)
		var buf []FaultRecord
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for lo := 0; lo < genTrials; lo += DefaultChunkSize {
				rng.SeedStream(1, uint64(lo/DefaultChunkSize))
				g.resetEvents()
				t := lo
				for t < lo+DefaultChunkSize {
					skipped, out := g.nextNonEmpty(rng, buf)
					buf = out
					if skipped >= lo+DefaultChunkSize-t {
						break
					}
					t += skipped + 1
				}
			}
		}
		b.ReportMetric(float64(genTrials*b.N)/b.Elapsed().Seconds(), "trials/s")
	})

	b.Run("gen/gen=batch", func(b *testing.B) {
		bg := newBatchGenerator(newRunGenerator(&cfg, genEval))
		rng := simrand.New(0)
		var buf []FaultRecord
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for lo := 0; lo < genTrials; lo += DefaultChunkSize {
				rng.SeedStream(1, uint64(lo/DefaultChunkSize))
				bg.g.resetEvents()
				bg.plan(rng, DefaultChunkSize)
				buf = buf[:0]
				for t := 0; t < bg.emitted(); t++ {
					buf = bg.emitTrial(rng, t, buf)
				}
			}
		}
		b.ReportMetric(float64(genTrials*b.N)/b.Elapsed().Seconds(), "trials/s")
	})

	for _, engine := range []Engine{EngineIndexed, EngineLanes} {
		for _, gen := range []Generator{GenScalar, GenBatch} {
			name := "end2end/engine=" + string(engine)
			if gen != GenScalar {
				name += "/gen=" + string(gen)
			}
			b.Run(name, func(b *testing.B) {
				const campaignTrials = 200_000
				for i := 0; i < b.N; i++ {
					_, err := RunCampaign(context.Background(), cfg, schemes, CampaignOptions{
						Trials: campaignTrials, Seed: 1, Engine: engine, Gen: gen,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(campaignTrials*b.N)/b.Elapsed().Seconds(), "trials/s")
			})
		}
	}
}
