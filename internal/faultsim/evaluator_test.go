package faultsim

import (
	"math"
	"reflect"
	"testing"

	"xedsim/internal/dram"
	"xedsim/internal/obs"
	"xedsim/internal/simrand"
)

// equivalenceConfigs returns the config corners the optimized evaluator
// must match the reference probe on.
func equivalenceConfigs() []Config {
	base := DefaultConfig()
	overlap := DefaultConfig()
	overlap.RequireAddressOverlap = true
	scaling := DefaultConfig()
	scaling.ScalingRate = 1e-4
	noOnDie := DefaultConfig()
	noOnDie.OnDie = false
	noOnDieScaling := DefaultConfig()
	noOnDieScaling.OnDie = false
	noOnDieScaling.ScalingRate = 1e-4
	silent := DefaultConfig()
	silent.SilentWordFraction = 0.5
	return []Config{base, overlap, scaling, noOnDie, noOnDieScaling, silent}
}

// inflate multiplies every FIT rate so trials carry dense fault streams —
// the regime where the pre-index's sorting, tie-breaking and per-chip
// max/silent bookkeeping actually get exercised.
func inflate(cfg Config, factor float64) Config {
	fits := make(FITTable, len(cfg.FITs))
	copy(fits, cfg.FITs)
	for i := range fits {
		fits[i].Rate *= FIT(factor)
	}
	cfg.FITs = fits
	return cfg
}

// TestEvaluatorMatchesReferenceProbe holds the pre-indexed Evaluator to
// bit-identical (FailTime, FailKind) agreement with the O(n²) reference
// probe across randomized fault streams for all six schemes, including
// adversarial mutations (duplicated start times, same-chip pileups) that
// stress the tie-break and silent-count rules.
func TestEvaluatorMatchesReferenceProbe(t *testing.T) {
	schemes := AllSchemes()
	for ci, cfg := range equivalenceConfigs() {
		cfg := inflate(cfg, 100) // ~29 faults per trial
		gen := newGenerator(&cfg)
		ev := NewEvaluator(&cfg, schemes)
		rng := simrand.New(uint64(1000 + ci))
		mut := simrand.New(uint64(2000 + ci))
		var buf []FaultRecord
		var outs []TrialOutcome
		for trial := 0; trial < 250; trial++ {
			buf = gen.Trial(rng, buf)
			// Adversarial mutations: force start-time ties across
			// records and pile extra records onto already-hit chips.
			if len(buf) >= 2 && trial%3 == 0 {
				for m := 0; m < 4; m++ {
					i := mut.Intn(len(buf))
					j := mut.Intn(len(buf))
					buf[i].Start = buf[j].Start
					if buf[i].End <= buf[i].Start {
						buf[i].End = buf[i].Start + 1
					}
				}
				i := mut.Intn(len(buf))
				j := mut.Intn(len(buf))
				buf[i].Channel, buf[i].Rank, buf[i].Chip = buf[j].Channel, buf[j].Rank, buf[j].Chip
			}
			outs = ev.EvaluateInto(buf, outs)
			for s, scheme := range schemes {
				wantT, wantK := scheme.(KindedScheme).FailTimeKind(&cfg, buf)
				gotT, gotK := outs[s].FailTime, outs[s].Kind
				if math.Float64bits(gotT) != math.Float64bits(wantT) || gotK != wantK {
					t.Fatalf("config %d trial %d scheme %s: evaluator (%v, %v) != reference (%v, %v) on %d faults",
						ci, trial, scheme.Name(), gotT, gotK, wantT, wantK, len(buf))
				}
			}
		}
	}
}

// TestEvaluatorEmptyTrialsSurvive pins the gate the skip-sampling fast
// path depends on.
func TestEvaluatorEmptyTrialsSurvive(t *testing.T) {
	cfg := DefaultConfig()
	if !NewEvaluator(&cfg, AllSchemes()).EmptyTrialsSurvive() {
		t.Fatal("default config: empty trials must survive")
	}
	fatal := DefaultConfig()
	fatal.OnDie = false
	fatal.ScalingRate = 1e-4
	if NewEvaluator(&fatal, AllSchemes()).EmptyTrialsSurvive() {
		t.Fatal("scaling without on-die ECC: empty trials must not survive")
	}
}

// TestEvaluatorOutOfFleetRecordFallsBack: records outside the configured
// fleet (hand-built traces) must take the reference path, not index out of
// the chip arrays.
func TestEvaluatorOutOfFleetRecordFallsBack(t *testing.T) {
	cfg := DefaultConfig()
	schemes := AllSchemes()
	ev := NewEvaluator(&cfg, schemes)
	faults := []FaultRecord{
		mkRec(0, 0, 0, dram.GranWord, false, 10, cfg.LifetimeHours),
		mkRec(99, 0, 0, dram.GranWord, false, 20, cfg.LifetimeHours), // channel 99 of 4
	}
	outs := ev.EvaluateInto(faults, nil)
	for s, scheme := range schemes {
		wantT, wantK := scheme.(KindedScheme).FailTimeKind(&cfg, faults)
		if math.Float64bits(outs[s].FailTime) != math.Float64bits(wantT) || outs[s].Kind != wantK {
			t.Fatalf("scheme %s: fallback mismatch", scheme.Name())
		}
	}
}

// TestEvaluatorHighWeightSchemeFallsBack: faultEntry narrows weights into
// an int8, so a scheme weighing records above 127 must be routed through
// the map-based reference probe (the same escape hatch as out-of-fleet
// records) instead of silently wrapping and corrupting probe totals.
func TestEvaluatorHighWeightSchemeFallsBack(t *testing.T) {
	cfg := DefaultConfig()
	// Synthetic organisation: every chip-level fault weighs 200 (> 127;
	// int8 would wrap it to -56) against a budget of 300, so two
	// concurrent faulty chips in a rank overflow the budget — but only if
	// the weights survive unclipped.
	heavy := &domainScheme{
		name:     "HeavyErasure",
		domainOf: rankDomain,
		capacity: 300,
		weight: func(cfg *Config, r *FaultRecord) int {
			if visibleWeight(cfg, r) == 0 {
				return 0
			}
			return 200
		},
		kind: xedKind,
	}
	schemes := []Scheme{heavy, NewXED()}
	ev := NewEvaluator(&cfg, schemes)

	overlapping := []FaultRecord{
		mkRec(1, 0, 2, dram.GranChip, false, 50, cfg.LifetimeHours),
		mkRec(1, 0, 5, dram.GranChip, false, 60, cfg.LifetimeHours),
	}
	lone := []FaultRecord{
		mkRec(1, 0, 2, dram.GranChip, false, 50, cfg.LifetimeHours),
	}
	for name, faults := range map[string][]FaultRecord{"overlapping": overlapping, "lone": lone} {
		outs := ev.EvaluateInto(faults, nil)
		for s, scheme := range schemes {
			wantT, wantK := scheme.(KindedScheme).FailTimeKind(&cfg, faults)
			if math.Float64bits(outs[s].FailTime) != math.Float64bits(wantT) || outs[s].Kind != wantK {
				t.Fatalf("%s/%s: got (%v, %v), reference says (%v, %v)",
					name, scheme.Name(), outs[s].FailTime, outs[s].Kind, wantT, wantK)
			}
		}
	}
	// The scenario must actually exercise the overflow: two concurrent
	// 200-weight chips defeat the 300 budget, one does not.
	if got := ev.EvaluateInto(overlapping, nil)[0].FailTime; got != 60 {
		t.Fatalf("overlapping heavy faults: fail time %v, want 60", got)
	}
	if got := ev.EvaluateInto(lone, nil)[0].FailTime; !math.IsInf(got, 1) {
		t.Fatalf("lone heavy fault: fail time %v, want +Inf", got)
	}
}

// TestRunReportFullyDeterministic asserts Run returns identical Reports —
// every field, not just failure totals — for repeated calls with the same
// (cfg, trials, seed, workers).
func TestRunReportFullyDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	for _, workers := range []int{1, 3} {
		a, err := Run(cfg, AllSchemes(), 4000, 123, workers)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(cfg, AllSchemes(), 4000, 123, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("workers=%d: repeated Run produced different Reports", workers)
		}
	}
}

// TestEvaluateIntoAllocFree locks in the zero-allocation hot path once the
// scratch buffers are warm.
func TestEvaluateIntoAllocFree(t *testing.T) {
	cfg := inflate(DefaultConfig(), 100)
	schemes := AllSchemes()
	gen := newGenerator(&cfg)
	ev := NewEvaluator(&cfg, schemes)
	rng := simrand.New(9)
	buf := gen.Trial(rng, nil)
	for len(buf) < 8 {
		buf = gen.Trial(rng, buf)
	}
	outs := ev.EvaluateInto(buf, nil) // warm the scratch
	allocs := testing.AllocsPerRun(200, func() {
		outs = ev.EvaluateInto(buf, outs)
	})
	if allocs != 0 {
		t.Fatalf("EvaluateInto allocates %v times per trial, want 0", allocs)
	}
}

// TestEvaluateIntoInstrumentedAllocFree holds the same zero-allocation bar
// with a live trial counter attached — the obs layer's hot-path contract.
func TestEvaluateIntoInstrumentedAllocFree(t *testing.T) {
	cfg := inflate(DefaultConfig(), 100)
	reg := obs.NewRegistry()
	gen := newGenerator(&cfg)
	ev := NewEvaluator(&cfg, AllSchemes())
	ev.SetTrialCounter(reg.Counter("campaign.trials_evaluated"))
	rng := simrand.New(9)
	buf := gen.Trial(rng, nil)
	for len(buf) < 8 {
		buf = gen.Trial(rng, buf)
	}
	outs := ev.EvaluateInto(buf, nil)
	allocs := testing.AllocsPerRun(200, func() {
		outs = ev.EvaluateInto(buf, outs)
	})
	if allocs != 0 {
		t.Fatalf("instrumented EvaluateInto allocates %v times per trial, want 0", allocs)
	}
	if got := reg.Snapshot().Counters["campaign.trials_evaluated"]; got < 200 {
		t.Fatalf("trial counter = %d, want >= 200", got)
	}
}
