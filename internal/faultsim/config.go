package faultsim

import (
	"fmt"
	"math"

	"xedsim/internal/dram"
)

// HoursPerYear uses the Julian year, matching FaultSim's convention.
const HoursPerYear = 8766.0

// invHoursPerYear turns the per-failure year bucketing into a multiply.
// Every tally site must use the same expression: multiply and divide can
// round a boundary-straddling FailTime into different years, and the
// cross-engine/cross-generator bit-identity guarantees compare bucketed
// tallies.
const invHoursPerYear = 1 / HoursPerYear

// Config describes the simulated memory system and fault environment. The
// defaults reproduce §III of the paper: 4 channels of dual-ranked 4GB
// DIMMs built from 2Gb x8 chips (9 per rank including the ECC chip),
// evaluated over 7 years.
type Config struct {
	// Channels, RanksPerChannel and ChipsPerRank fix the fleet layout.
	// Multi-rank faults span the ranks of one channel's DIMM.
	Channels        int
	RanksPerChannel int
	ChipsPerRank    int

	// Geom shapes fault address ranges.
	Geom dram.Geometry

	// LifetimeHours is the evaluation period (7 years by default).
	LifetimeHours float64

	// ScrubIntervalHours bounds how long a transient fault stays live:
	// a patrol scrub rewrites corrected data, clearing the upset.
	ScrubIntervalHours float64

	// FITs is the per-chip fault-rate table.
	FITs FITTable

	// OnDie enables per-chip On-Die ECC: single-bit faults are absorbed
	// inside the chip, and word-or-larger faults are *detected* on-die
	// with probability 1-SilentWordFraction.
	OnDie bool

	// SilentWordFraction is the chance a multi-bit word error escapes
	// the on-die code (0.8% for CRC8-ATM / Hamming per Table II).
	SilentWordFraction float64

	// ScalingRate is the birthtime weak-bit rate (10^-4 in §VII). With
	// On-Die ECC these faults are always corrected and only matter for
	// catch-word traffic; without it they are immediately fatal.
	ScalingRate float64

	// Aging shapes the fault rate over the lifetime (bathtub curve).
	// The zero value and FlatAging() reproduce the paper's constant
	// Table I rates.
	Aging AgingProfile

	// RequireAddressOverlap, when true, only counts two faults as a
	// compound failure if their address ranges intersect (the precise
	// FaultSim criterion). The paper's headline numbers use the
	// conservative domain-level criterion (false): two concurrently
	// faulty chips in one protection domain defeat a single-erasure
	// scheme regardless of address. The ablation bench sweeps this.
	RequireAddressOverlap bool
}

// DefaultConfig reproduces the paper's evaluation system.
func DefaultConfig() Config {
	return Config{
		Channels:           4,
		RanksPerChannel:    2,
		ChipsPerRank:       9,
		Geom:               dram.DefaultGeometry(),
		LifetimeHours:      7 * HoursPerYear,
		ScrubIntervalHours: 24 * 7, // weekly patrol scrub
		FITs:               TableI(),
		OnDie:              true,
		SilentWordFraction: 0.008,
		ScalingRate:        0,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Channels <= 0 || c.RanksPerChannel <= 0 || c.ChipsPerRank <= 0 {
		return fmt.Errorf("faultsim: non-positive fleet dimension in %+v", c)
	}
	if c.LifetimeHours <= 0 || c.ScrubIntervalHours <= 0 {
		return fmt.Errorf("faultsim: non-positive time parameter")
	}
	if len(c.FITs) == 0 {
		return fmt.Errorf("faultsim: empty FIT table")
	}
	for _, cls := range c.FITs {
		if math.IsNaN(float64(cls.Rate)) || math.IsInf(float64(cls.Rate), 0) || cls.Rate < 0 {
			return fmt.Errorf("faultsim: invalid FIT rate %v for granularity %v", cls.Rate, cls.Gran)
		}
	}
	if c.SilentWordFraction < 0 || c.SilentWordFraction > 1 {
		return fmt.Errorf("faultsim: silent fraction %v out of range", c.SilentWordFraction)
	}
	if math.IsNaN(c.ScalingRate) || c.ScalingRate < 0 || c.ScalingRate > 1 {
		return fmt.Errorf("faultsim: scaling rate %v out of range", c.ScalingRate)
	}
	if err := c.Aging.validate(); err != nil {
		return err
	}
	return c.Geom.Validate()
}

// TotalChips returns the fleet size.
func (c *Config) TotalChips() int { return c.Channels * c.RanksPerChannel * c.ChipsPerRank }

// Ranks returns the number of ranks in the fleet.
func (c *Config) Ranks() int { return c.Channels * c.RanksPerChannel }
