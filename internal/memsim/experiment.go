package memsim

import (
	"context"
	"math"
	"runtime"
	"sync"
)

// Comparison holds the normalised execution-time and memory-power matrix
// of Figures 11 and 12: every workload under every scheme, normalised to
// the first scheme (the ECC-DIMM SECDED baseline, per §XI).
type Comparison struct {
	Workloads []Workload
	Schemes   []SchemeConfig
	// Raw results indexed [workload][scheme].
	Results [][]Result
}

// RunComparison simulates every (workload, scheme) pair. instrPerCore
// scales fidelity versus runtime; workers <= 0 uses GOMAXPROCS. ctx
// cancellation abandons unstarted pairs and interrupts in-flight
// simulations at the next cycle-batch boundary; the partial Comparison is
// returned alongside ctx's error (unfinished cells hold the zero Result).
func RunComparison(ctx context.Context, workloads []Workload, schemes []SchemeConfig, instrPerCore int64, seed uint64, workers int) (*Comparison, error) {
	cmp := &Comparison{Workloads: workloads, Schemes: schemes}
	cmp.Results = make([][]Result, len(workloads))
	for i := range cmp.Results {
		cmp.Results[i] = make([]Result, len(schemes))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type job struct{ w, s int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if ctx.Err() != nil {
					continue // drain the channel without simulating
				}
				cfg := DefaultConfig(workloads[j.w], schemes[j.s])
				cfg.InstrPerCore = instrPerCore
				cfg.Seed = seed + uint64(j.w)*977
				cmp.Results[j.w][j.s] = New(cfg).RunContext(ctx)
			}
		}()
	}
	for w := range workloads {
		for s := range schemes {
			jobs <- job{w, s}
		}
	}
	close(jobs)
	wg.Wait()
	return cmp, ctx.Err()
}

// NormalizedTime returns execution time of (workload w, scheme s) relative
// to scheme 0.
func (c *Comparison) NormalizedTime(w, s int) float64 {
	return float64(c.Results[w][s].Cycles) / float64(c.Results[w][0].Cycles)
}

// NormalizedPower returns memory power relative to scheme 0.
func (c *Comparison) NormalizedPower(w, s int) float64 {
	return c.Results[w][s].Power.Total() / c.Results[w][0].Power.Total()
}

// GmeanTime is the geometric-mean normalised execution time of scheme s —
// the "Gmean" bar of Figure 11.
func (c *Comparison) GmeanTime(s int) float64 {
	return c.gmean(s, c.NormalizedTime, nil)
}

// GmeanPower is Figure 12's Gmean bar.
func (c *Comparison) GmeanPower(s int) float64 {
	return c.gmean(s, c.NormalizedPower, nil)
}

// SuiteGmeanTime restricts the geometric mean to one suite (Figure 14's
// per-suite bars).
func (c *Comparison) SuiteGmeanTime(s int, suite string) float64 {
	filter := func(w Workload) bool { return w.Suite == suite }
	return c.gmean(s, c.NormalizedTime, filter)
}

func (c *Comparison) gmean(s int, metric func(w, s int) float64, filter func(Workload) bool) float64 {
	sum, n := 0.0, 0
	for w := range c.Workloads {
		if filter != nil && !filter(c.Workloads[w]) {
			continue
		}
		sum += math.Log(metric(w, s))
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(sum / float64(n))
}
