package memsim

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"xedsim/internal/dram"
)

// USIMM trace-file support. The Memory Scheduling Championship distributed
// its workloads in USIMM's text format, one memory operation per line:
//
//	<non-memory-instruction gap> R <hex line address>
//	<non-memory-instruction gap> W <hex line address>
//
// (USIMM also carries an instruction pointer on reads; a trailing field is
// accepted and ignored.) Users holding real MSC/Pinpoints traces can feed
// them to the simulator directly; the writer emits the same format so
// synthetic workloads can be exported, inspected and replayed bit-for-bit.

// TraceOpRecord is one parsed trace line.
type TraceOpRecord struct {
	Gap     int
	IsWrite bool
	// LineAddr is the 64-byte-aligned physical address >> 6.
	LineAddr uint64
}

// ParseTraceLine parses one USIMM-format line.
func ParseTraceLine(line string) (TraceOpRecord, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return TraceOpRecord{}, fmt.Errorf("memsim: trace line %q: want >= 3 fields", line)
	}
	gap, err := strconv.Atoi(fields[0])
	if err != nil || gap < 0 {
		return TraceOpRecord{}, fmt.Errorf("memsim: trace line %q: bad gap", line)
	}
	var isWrite bool
	switch fields[1] {
	case "R", "r":
		isWrite = false
	case "W", "w":
		isWrite = true
	default:
		return TraceOpRecord{}, fmt.Errorf("memsim: trace line %q: op %q", line, fields[1])
	}
	addr, err := strconv.ParseUint(strings.TrimPrefix(fields[2], "0x"), 16, 64)
	if err != nil {
		return TraceOpRecord{}, fmt.Errorf("memsim: trace line %q: bad address", line)
	}
	return TraceOpRecord{Gap: gap, IsWrite: isWrite, LineAddr: addr}, nil
}

// ReadTraceFile parses a whole USIMM trace. Blank lines and '#' comments
// are skipped.
func ReadTraceFile(r io.Reader) ([]TraceOpRecord, error) {
	var ops []TraceOpRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		op, err := ParseTraceLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}

// WriteTraceFile emits ops in USIMM format.
func WriteTraceFile(w io.Writer, ops []TraceOpRecord) error {
	bw := bufio.NewWriter(w)
	for _, op := range ops {
		kind := "R"
		if op.IsWrite {
			kind = "W"
		}
		if _, err := fmt.Fprintf(bw, "%d %s 0x%x\n", op.Gap, kind, op.LineAddr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ExportTrace samples n operations from the named synthetic workload so a
// generated stream can be inspected or replayed elsewhere.
func ExportTrace(w Workload, geom systemGeom, seed uint64, n int) []TraceOpRecord {
	tg := newTraceGen(w, geom, seed)
	mapper := dram.MustNewMapper(geom.channels, geom.ranks,
		dram.Geometry{Banks: geom.banks, RowsPerBank: geom.rows, ColsPerRow: geom.cols})
	ops := make([]TraceOpRecord, 0, n)
	for i := 0; i < n; i++ {
		gap, op := tg.next()
		phys := mapper.Compose(dram.Location{
			Channel: op.channel,
			Rank:    op.rank,
			Addr:    dram.WordAddr{Bank: op.bank, Row: op.row, Col: op.col},
		})
		ops = append(ops, TraceOpRecord{Gap: gap, IsWrite: op.isWrite, LineAddr: phys >> 6})
	}
	return ops
}

// DefaultTraceGeom matches the Table V system's address space.
func DefaultTraceGeom() systemGeom {
	return systemGeom{channels: 4, ranks: 2, banks: 8, rows: 32768, cols: 128}
}

// fileTrace adapts a recorded operation stream to the core model's trace
// interface, looping when exhausted (rate mode runs fixed instruction
// counts, not fixed trace lengths). Physical locations fold into the
// active scheme's effective channel/rank space.
type fileTrace struct {
	ops         []TraceOpRecord
	pos         int
	mapper      *dram.AddressMapper
	channelGang int // scheme.ChannelsPerAccess
	rankGang    int // scheme.RanksPerAccess
}

func (f *fileTrace) next() (int, *traceOp) {
	rec := f.ops[f.pos]
	f.pos = (f.pos + 1) % len(f.ops)
	loc := f.mapper.Decompose((rec.LineAddr << 6) % f.mapper.Bytes())
	return rec.Gap, &traceOp{
		isWrite: rec.IsWrite,
		channel: loc.Channel / f.channelGang,
		rank:    loc.Rank / f.rankGang,
		bank:    loc.Addr.Bank,
		row:     loc.Addr.Row,
		col:     loc.Addr.Col,
	}
}
