// Package memsim is a cycle-level main-memory system simulator in the
// mould of USIMM (Chatterjee et al., UUCS-12-002), the tool the XED paper
// uses for its performance and power evaluation (§X). It models DDR3
// channels, ranks and banks with JEDEC timing constraints, an FR-FCFS
// memory controller with write-drain watermarks, a ROB-limited multicore
// front end, and a Micron TN-41-01-style DRAM power model.
//
// Protection schemes change *how many resources one access occupies*: XED
// and SECDED activate one rank; x8 Chipkill and XED-on-Chipkill gang both
// ranks of the channel (100% overfetch); Double-Chipkill gangs two
// channels as well. The alternatives of §XI-C (extra burst, extra
// transaction) and LOT-ECC's extra writes are modelled the same way. These
// occupancy differences — not absolute latencies — produce the paper's
// Figure 11-14 results, so the relative orderings are robust to the
// synthetic workloads standing in for the authors' SPEC/PARSEC traces.
package memsim

// Timing holds DDR3 timing constraints in memory-bus cycles. Defaults are
// DDR3-1600 (800 MHz bus, Table V) with 2Gb-part latencies.
type Timing struct {
	TCK float64 // cycle time in ns

	CL    int // CAS latency (read command to first data)
	CWL   int // CAS write latency
	TRCD  int // activate to read/write
	TRP   int // precharge to activate
	TRAS  int // activate to precharge
	TRC   int // activate to activate, same bank
	TRRD  int // activate to activate, different banks of a rank
	TFAW  int // four-activate window per rank
	TCCD  int // CAS to CAS
	TWTR  int // write data end to read command, same rank
	TWR   int // write recovery (data end to precharge)
	TRTP  int // read to precharge
	TRTRS int // rank-to-rank data-bus switch penalty
	TRFC  int // refresh cycle time
	TREFI int // refresh interval
	TXP   int // power-down exit to first valid command

	TBurst int // data-bus cycles per 64B cache-line transfer (BL8 = 4)
}

// DDR31600 returns the DDR3-1600K timing set used by the paper's Table V
// system (800 MHz bus; 2Gb x8 devices).
func DDR31600() Timing {
	return Timing{
		TCK:    1.25,
		CL:     11,
		CWL:    8,
		TRCD:   11,
		TRP:    11,
		TRAS:   28,
		TRC:    39,
		TRRD:   5,
		TFAW:   24,
		TCCD:   4,
		TWTR:   6,
		TWR:    12,
		TRTP:   6,
		TRTRS:  2,
		TRFC:   128,  // 160ns for a 2Gb part
		TREFI:  6240, // 7.8us
		TXP:    4,
		TBurst: 4, // 8 beats, double data rate
	}
}

// DDR42400 is a DDR4-2400R timing set (1200 MHz bus) for what-if studies
// beyond the paper's DDR3 baseline — §XI-C notes DDR4's ALERT_n pin and
// the shrinking-burst trend that makes extra-burst signalling ever more
// expensive.
func DDR42400() Timing {
	return Timing{
		TCK:    0.833,
		CL:     17,
		CWL:    12,
		TRCD:   17,
		TRP:    17,
		TRAS:   39,
		TRC:    56,
		TRRD:   6,
		TFAW:   26,
		TCCD:   4,
		TWTR:   9,
		TWR:    18,
		TRTP:   9,
		TRTRS:  2,
		TRFC:   312,  // 260ns for a 4Gb part
		TREFI:  9363, // 7.8us
		TXP:    8,
		TBurst: 4,
	}
}
