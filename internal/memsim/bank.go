package memsim

// bankState tracks one bank's open row and earliest-next-command times.
// The simulator uses an issue-at-once discipline: when the scheduler picks
// a request it computes the whole ACT/CAS/data schedule against these
// horizons and advances them, which models JEDEC constraints faithfully
// while keeping the hot loop cheap.
type bankState struct {
	openRow int // -1 when precharged
	// nextAct is the earliest cycle an ACT may issue (tRC/tRP bound).
	nextAct int64
	// nextCAS is the earliest cycle a column command may issue.
	nextCAS int64
	// nextPre is the earliest cycle a precharge may issue (tRAS/tWR/tRTP).
	nextPre int64
	// reserved blocks further precharges until the row opened for a
	// waiting request has served its CAS, preventing prepare-phase
	// thrash between conflicting requests.
	reserved bool
}

// rankState aggregates a rank's banks plus rank-wide constraints.
type rankState struct {
	banks []bankState
	// actTimes rings the last four ACTs for the tFAW window.
	actTimes [4]int64
	actIdx   int
	// lastAct drives the tRRD ACT-to-ACT spacing within the rank.
	lastAct int64
	// lastWriteEnd drives the tWTR write-to-read turnaround.
	lastWriteEnd int64
	// refreshUntil blocks the rank during tRFC.
	refreshUntil int64
	// Power accounting.
	activates    int64
	readCycles   int64
	writeCycles  int64
	activeCycles int64 // approximate row-open time (tRAS per ACT)
	refreshes    int64
	// CKE power-down tracking: lastActive is the end of the rank's most
	// recent command activity; pdCycles accumulates time spent in
	// precharge power-down (idle gaps beyond the entry threshold).
	lastActive int64
	pdCycles   int64
}

// channelState holds a channel's ranks, queues and shared data bus.
type channelState struct {
	ranks  []rankState
	readQ  queue
	writeQ queue
	// busFreeAt is when the shared data bus next idles.
	busFreeAt int64
	// lastBusRank/-Write support tRTRS and turnaround penalties.
	lastBusRank  int
	lastBusWrite bool
	// draining flips under the write watermark policy.
	draining bool
	// inflight counts issued-but-incomplete requests (fast idle check).
	inflight int
	// nextRefresh schedules the staggered per-rank refresh.
	nextRefresh int64
	refreshRank int
}

func newChannel(ranks, banks int) *channelState {
	ch := &channelState{ranks: make([]rankState, ranks)}
	for r := range ch.ranks {
		rank := &ch.ranks[r]
		rank.banks = make([]bankState, banks)
		for b := range rank.banks {
			rank.banks[b].openRow = -1
		}
		// The tFAW window must not constrain the first four activates.
		for i := range rank.actTimes {
			rank.actTimes[i] = -(1 << 40)
		}
		rank.lastAct = -(1 << 40)
	}
	return ch
}

// fawReady returns the earliest cycle a new ACT may issue under tFAW.
func (r *rankState) fawReady(tFAW int) int64 {
	oldest := r.actTimes[r.actIdx]
	return oldest + int64(tFAW)
}

func (r *rankState) recordAct(t int64, tRAS int) {
	r.actTimes[r.actIdx] = t
	r.actIdx = (r.actIdx + 1) % 4
	r.lastAct = t
	r.activates++
	r.activeCycles += int64(tRAS)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
