package memsim

import (
	"fmt"
	"testing"
)

// TestProbeTimeline is a development aid: run with -run ProbeTimeline -v.
func TestProbeTimeline(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("probe only under -v")
	}
	w := Workload{Name: "probe", Suite: "X", ReadMPKI: 25, WritePKI: 0.0001, RowBufferLocality: 0.93}
	cfg := DefaultConfig(w, ChipkillScheme())
	cfg.Cores = 1
	cfg.InstrPerCore = 4000
	s := New(cfg)
	s.debug = func(kind string, r *request, a, b int64) {
		if s.now < 3000 {
			fmt.Printf("t=%5d %-7s ch=%d bank=%d row=%6d col=%3d a=%d b=%d\n",
				s.now, kind, r.channel, r.bank, r.row, r.col, a, b)
		}
	}
	res := s.Run()
	fmt.Printf("cycles=%d lat=%.1f reads=%d\n", res.Cycles, res.AvgReadLatency(), res.Reads)
}
