package memsim

// reqKind distinguishes demand reads, demand writes, and the companion
// traffic some schemes add.
type reqKind int

const (
	reqRead reqKind = iota
	reqWrite
)

// request is one memory transaction from the controller's point of view.
type request struct {
	kind reqKind
	// channel is the first channel of the (possibly ganged) access;
	// rank the first rank. bank/row/col name the open-page target.
	channel, rank, bank, row, col int
	// core owning the demand read (-1 for writes and companions).
	core int
	// robSlot links a read back to the issuing core's ROB entry.
	robSlot *robEntry
	// arrive is the enqueue cycle (FCFS tiebreak and latency stats).
	arrive int64
	// companion marks scheme-generated extra traffic.
	companion bool
}

// queue is a simple FIFO with removal, small enough that linear scans are
// faster than anything clever.
type queue struct {
	items []*request
}

func (q *queue) push(r *request)   { q.items = append(q.items, r) }
func (q *queue) len() int          { return len(q.items) }
func (q *queue) at(i int) *request { return q.items[i] }

func (q *queue) removeAt(i int) *request {
	r := q.items[i]
	copy(q.items[i:], q.items[i+1:])
	q.items = q.items[:len(q.items)-1]
	return r
}
