package memsim

// Workload characterises one benchmark's memory behaviour. The paper runs
// Pinpoints slices of SPEC CPU2006, PARSEC, BioBench and five commercial
// workloads in rate mode (§X); we stand in synthetic traces whose read
// MPKI, write PKI and row-buffer locality are set from the published
// characterisations of those suites (USIMM/MSC-2012 workload data and the
// SPEC2006 memory-behaviour literature). The figures only use *relative*
// execution time between schemes, which these three knobs govern.
type Workload struct {
	Name  string
	Suite string
	// ReadMPKI is LLC read misses per 1000 instructions.
	ReadMPKI float64
	// WritePKI is dirty writebacks per 1000 instructions.
	WritePKI float64
	// RowBufferLocality is the probability an access hits the stream's
	// open row.
	RowBufferLocality float64
	// MLP caps each core's outstanding demand reads: streaming codes
	// overlap many misses, pointer-chasers (mcf, omnetpp) almost none.
	MLP int
}

// PaperWorkloads returns the Figure 11 benchmark list: every workload the
// paper plots, in plot order, with >1 MPKI per the selection rule of §X.
// MPKI/WPKI values are the per-core rates of the published 8-copy rate-mode
// characterisations, calibrated so the baseline system's Figure 11 gmeans
// land on the paper's (see EXPERIMENTS.md for the calibration run).
func PaperWorkloads() []Workload {
	return []Workload{
		// SPEC CPU2006.
		{"GemsFDTD", "SPEC2006", 7.1, 2.9, 0.70, 6},
		{"sphinx", "SPEC2006", 8.4, 0.8, 0.72, 5},
		{"gcc", "SPEC2006", 2.1, 0.8, 0.55, 3},
		{"bwaves", "SPEC2006", 12.6, 1.5, 0.80, 8},
		{"libquantum", "SPEC2006", 17.5, 4.2, 0.93, 10},
		{"milc", "SPEC2006", 11.5, 3.6, 0.60, 6},
		{"soplex", "SPEC2006", 14.7, 3.0, 0.65, 6},
		{"lbm", "SPEC2006", 14.0, 7.3, 0.82, 8},
		{"mcf", "SPEC2006", 23.1, 5.9, 0.35, 3},
		{"omnetpp", "SPEC2006", 7.0, 2.7, 0.30, 2},
		{"wrf", "SPEC2006", 4.2, 1.5, 0.70, 5},
		{"cactusADM", "SPEC2006", 3.5, 1.7, 0.60, 4},
		{"zeusmp", "SPEC2006", 3.4, 1.4, 0.65, 4},
		{"bzip2", "SPEC2006", 2.4, 0.9, 0.50, 3},
		{"dealII", "SPEC2006", 1.5, 0.4, 0.60, 3},
		{"leslie3d", "SPEC2006", 5.2, 1.8, 0.75, 6},
		{"xalancbmk", "SPEC2006", 1.7, 0.5, 0.40, 2},
		// PARSEC.
		{"black", "PARSEC", 1.3, 0.3, 0.55, 3},
		{"face", "PARSEC", 3.8, 1.3, 0.65, 4},
		{"ferret", "PARSEC", 3.1, 1.0, 0.60, 4},
		{"fluid", "PARSEC", 2.2, 0.8, 0.62, 4},
		{"freq", "PARSEC", 1.8, 0.6, 0.58, 3},
		{"stream", "PARSEC", 10.5, 3.8, 0.85, 8},
		{"swapt", "PARSEC", 1.5, 0.5, 0.55, 3},
		// BioBench.
		{"tigr", "BIOBENCH", 8.8, 1.0, 0.45, 5},
		{"mummer", "BIOBENCH", 11.2, 1.3, 0.42, 6},
		// Commercial (MSC-2012 server traces).
		{"comm1", "COMMERCIAL", 4.5, 2.0, 0.50, 4},
		{"comm2", "COMMERCIAL", 5.9, 2.5, 0.48, 4},
		{"comm3", "COMMERCIAL", 2.9, 1.3, 0.52, 4},
		{"comm4", "COMMERCIAL", 2.0, 0.8, 0.55, 3},
		{"comm5", "COMMERCIAL", 4.1, 1.8, 0.50, 4},
	}
}

// WorkloadByName returns the named paper workload, or false.
func WorkloadByName(name string) (Workload, bool) {
	for _, w := range PaperWorkloads() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// SuiteNames lists the suites in Figure 11's order.
func SuiteNames() []string { return []string{"SPEC2006", "PARSEC", "BIOBENCH", "COMMERCIAL"} }
