package memsim

// SchemeConfig describes how one reliability scheme maps a cache-line
// access onto DRAM resources — the lever behind every Figure 11-14 result.
type SchemeConfig struct {
	Name string

	// RanksPerAccess is how many ranks of each involved channel one
	// access activates in lockstep. 1 for SECDED/XED; 2 for x8 Chipkill
	// and XED-on-Chipkill ("activating two ranks", §I).
	RanksPerAccess int

	// ChannelsPerAccess gangs adjacent channels: 2 for Double-Chipkill
	// ("36 DRAM-chips by activating four ranks", §XI-A).
	ChannelsPerAccess int

	// BurstCyclesPerRank is the data-bus occupancy contributed by each
	// ganged rank. BL8 = 4; the §XI-C "extra burst" alternative uses 5
	// (burst length 10). Ganged ranks share the channel bus, so an
	// access's total bus time is RanksPerAccess x this.
	BurstCyclesPerRank int

	// ExtraReadPerRead issues a companion row-hit read for every demand
	// read — the §XI-C "additional transaction" alternative that
	// fetches the On-Die ECC separately.
	ExtraReadPerRead bool

	// ExtraWritePerWrite issues a companion write per demand write with
	// the given probability — LOT-ECC's tier-2 checksum update (§XII-A;
	// 0.5 models its write-coalescing variant).
	ExtraWritePerWrite float64

	// ExtraReadPerWrite issues a companion read per demand write — the
	// read-modify-write a checksum scheme like Multi-ECC [49] needs
	// before it can update its checksum (§XII-A).
	ExtraReadPerWrite bool

	// SerialModeEvery, when positive, makes every Nth demand read
	// trigger a serial-mode episode (§VII-B): the controller quiesces
	// the DIMM, toggles XED-Enable over MRS and re-reads — modelled as
	// two additional row-hit reads. The paper's rate is once per ~200K
	// accesses at a 1e-4 scaling rate; the ablation bench sweeps this.
	SerialModeEvery int

	// OnDieECCCurrentFactor scales DRAM background/activate/refresh
	// currents; On-Die ECC needs 12.5% more cells per die (§X).
	OnDieECCCurrentFactor float64

	// CorrectionCycles is added to every read's completion latency for
	// the controller-side decode (1 for syndrome checks, 4 for SECDED
	// correction, 60 for erasure codes per §X — in core cycles; the
	// simulator converts).
	CorrectionCycles int
}

// The eight configurations of §XI. Correction latencies follow §X: 1 core
// cycle for detection, 4 for SECDED-style correction at the controller,
// 60 (conservative) for erasure decodes — charged on every read for the
// schemes that decode on every read (Chipkill variants), and on no reads
// for XED/SECDED whose common case is a clean pass-through.

// SECDEDScheme is the baseline every figure normalises to: one rank per
// access, BL8, no extras.
func SECDEDScheme() SchemeConfig {
	return SchemeConfig{
		Name: "SECDED", RanksPerAccess: 1, ChannelsPerAccess: 1,
		BurstCyclesPerRank: 4, OnDieECCCurrentFactor: 1.125,
	}
}

// XEDScheme performs identically to SECDED on the common path: a single
// rank of 9 chips, no bandwidth overhead. Serial-mode episodes are so rare
// (once per ~200K accesses, §VII-B) that their cost is unmeasurable; the
// simulator still exposes them through SerialModeEvery for ablation.
func XEDScheme() SchemeConfig {
	return SchemeConfig{
		Name: "XED (9 chips)", RanksPerAccess: 1, ChannelsPerAccess: 1,
		BurstCyclesPerRank: 4, OnDieECCCurrentFactor: 1.125,
	}
}

// ChipkillScheme gangs one rank on each of two lockstepped channels: 18
// chips per access, two activates, and both channel buses carry a full
// line (100% overfetch). Independent channel count halves.
func ChipkillScheme() SchemeConfig {
	return SchemeConfig{
		Name: "Chipkill (18 chips)", RanksPerAccess: 1, ChannelsPerAccess: 2,
		BurstCyclesPerRank: 4, OnDieECCCurrentFactor: 1.125, CorrectionCycles: 4,
	}
}

// XEDChipkillScheme — XED on Single-Chipkill hardware — has exactly
// Chipkill's resource footprint (18 chips over two ranks) but erasure
// decoding at the controller.
func XEDChipkillScheme() SchemeConfig {
	return SchemeConfig{
		Name: "XED + Single Chipkill (18 chips)", RanksPerAccess: 1, ChannelsPerAccess: 2,
		BurstCyclesPerRank: 4, OnDieECCCurrentFactor: 1.125, CorrectionCycles: 4,
	}
}

// DoubleChipkillScheme gangs both ranks of two lockstepped channels: 36
// chips, four activates, both buses busy for two back-to-back lines —
// quarter bandwidth ("activates two channels and consumes significantly
// more power", Fig. 12).
func DoubleChipkillScheme() SchemeConfig {
	return SchemeConfig{
		Name: "Double-Chipkill (36 chips)", RanksPerAccess: 2, ChannelsPerAccess: 2,
		BurstCyclesPerRank: 2, OnDieECCCurrentFactor: 1.125, CorrectionCycles: 1,
	}
}

// ExtraBurstChipkill is §XI-C's alternative: expose On-Die ECC by growing
// the burst from 8 to 10 beats on a single rank (Chipkill-level) — a 25%
// data-bus tax on every access.
func ExtraBurstChipkill() SchemeConfig {
	return SchemeConfig{
		Name: "Chipkill via extra burst", RanksPerAccess: 1, ChannelsPerAccess: 1,
		BurstCyclesPerRank: 5, OnDieECCCurrentFactor: 1.125, CorrectionCycles: 4,
	}
}

// ExtraBurstDoubleChipkill is the Double-Chipkill-level extra-burst variant
// (two ranks, burst 10 each).
func ExtraBurstDoubleChipkill() SchemeConfig {
	return SchemeConfig{
		Name: "Double-Chipkill via extra burst", RanksPerAccess: 2, ChannelsPerAccess: 1,
		BurstCyclesPerRank: 5, OnDieECCCurrentFactor: 1.125, CorrectionCycles: 1,
	}
}

// ExtraTransactionChipkill fetches the On-Die ECC with a second (row-hit)
// read per demand read.
func ExtraTransactionChipkill() SchemeConfig {
	return SchemeConfig{
		Name: "Chipkill via extra transaction", RanksPerAccess: 1, ChannelsPerAccess: 1,
		BurstCyclesPerRank: 4, ExtraReadPerRead: true,
		OnDieECCCurrentFactor: 1.125, CorrectionCycles: 4,
	}
}

// ExtraTransactionDoubleChipkill is the Double-Chipkill-level variant.
func ExtraTransactionDoubleChipkill() SchemeConfig {
	return SchemeConfig{
		Name: "Double-Chipkill via extra transaction", RanksPerAccess: 2, ChannelsPerAccess: 1,
		BurstCyclesPerRank: 4, ExtraReadPerRead: true,
		OnDieECCCurrentFactor: 1.125, CorrectionCycles: 1,
	}
}

// MultiECCScheme models Multi-ECC [49] (§XII-A): Chipkill-strength from x8
// chips using checksums for detection and parity for correction, at the
// cost of a read-modify-write on every demand write to keep the checksum
// current.
func MultiECCScheme() SchemeConfig {
	return SchemeConfig{
		Name: "Multi-ECC (checksum RMW)", RanksPerAccess: 1, ChannelsPerAccess: 1,
		BurstCyclesPerRank: 4, ExtraWritePerWrite: 1.0, ExtraReadPerWrite: true,
		OnDieECCCurrentFactor: 1.125, CorrectionCycles: 4,
	}
}

// XEDSchemeWithSerialMode is XED with serial-mode episodes forced every n
// reads, for quantifying §XI-A's "overheads ... happen only on receiving
// multiple Catch-Words ... once every 200K accesses".
func XEDSchemeWithSerialMode(n int) SchemeConfig {
	s := XEDScheme()
	s.Name = "XED (serial mode 1/" + itoa(n) + ")"
	s.SerialModeEvery = n
	return s
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// LOTECCScheme models LOT-ECC with write coalescing (§XII-A, Figure 14):
// single-rank accesses like XED, but every write triggers a tier-2
// checksum update write about half the time after coalescing.
func LOTECCScheme() SchemeConfig {
	return SchemeConfig{
		Name: "LOT-ECC (write-coalescing)", RanksPerAccess: 1, ChannelsPerAccess: 1,
		BurstCyclesPerRank: 4, ExtraWritePerWrite: 0.5,
		OnDieECCCurrentFactor: 1.125, CorrectionCycles: 4,
	}
}
