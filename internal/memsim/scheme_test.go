package memsim

import (
	"context"
	"testing"
)

func TestSerialModeOverheadNegligibleAtPaperRate(t *testing.T) {
	// §XI-A: serial-mode episodes once per 200K accesses cost nothing
	// measurable. At the paper's rate the run sees at most a handful of
	// episodes; execution time must be within 0.2% of plain XED.
	w := mustWorkload(t, "libquantum")
	plain := New(quickCfg(w, XEDScheme())).Run()
	rare := New(quickCfg(w, XEDSchemeWithSerialMode(200_000))).Run()
	ratio := float64(rare.Cycles) / float64(plain.Cycles)
	if ratio > 1.002 {
		t.Fatalf("serial mode at paper rate costs %.4fx, want <= 1.002", ratio)
	}
	// Exaggerated to 1-in-100 it must become visible — proving the
	// mechanism is actually wired in.
	frequent := New(quickCfg(w, XEDSchemeWithSerialMode(100))).Run()
	if frequent.CompanionReads == 0 {
		t.Fatal("serial-mode companions not generated")
	}
	if float64(frequent.Cycles)/float64(plain.Cycles) < 1.005 {
		t.Fatalf("1-in-100 serial mode invisible (%d vs %d cycles)", frequent.Cycles, plain.Cycles)
	}
}

func TestMultiECCSlowerThanXEDOnWriteHeavyWorkload(t *testing.T) {
	// §XII-A: Multi-ECC's checksum read-modify-write makes it strictly
	// worse than both XED and LOT-ECC on write-heavy workloads.
	w := mustWorkload(t, "lbm")
	xed := New(quickCfg(w, XEDScheme())).Run()
	lot := New(quickCfg(w, LOTECCScheme())).Run()
	multi := New(quickCfg(w, MultiECCScheme())).Run()
	if multi.Cycles <= xed.Cycles {
		t.Fatalf("Multi-ECC (%d) should be slower than XED (%d)", multi.Cycles, xed.Cycles)
	}
	if multi.Cycles <= lot.Cycles {
		t.Fatalf("Multi-ECC (%d) should be slower than LOT-ECC (%d)", multi.Cycles, lot.Cycles)
	}
	if multi.CompanionReads == 0 || multi.CompanionWrites == 0 {
		t.Fatalf("Multi-ECC RMW traffic missing: %+v", multi)
	}
}

func TestSchemeNamesDistinct(t *testing.T) {
	schemes := []SchemeConfig{
		SECDEDScheme(), XEDScheme(), ChipkillScheme(), XEDChipkillScheme(),
		DoubleChipkillScheme(), ExtraBurstChipkill(), ExtraBurstDoubleChipkill(),
		ExtraTransactionChipkill(), ExtraTransactionDoubleChipkill(),
		LOTECCScheme(), MultiECCScheme(), XEDSchemeWithSerialMode(1000),
	}
	seen := map[string]bool{}
	for _, s := range schemes {
		if s.Name == "" || seen[s.Name] {
			t.Fatalf("duplicate or empty scheme name %q", s.Name)
		}
		seen[s.Name] = true
		if s.RanksPerAccess < 1 || s.ChannelsPerAccess < 1 || s.BurstCyclesPerRank < 1 {
			t.Fatalf("%s has degenerate resource shape: %+v", s.Name, s)
		}
	}
}

func TestItoa(t *testing.T) {
	for _, c := range []struct {
		n    int
		want string
	}{{0, "0"}, {7, "7"}, {200000, "200000"}} {
		if got := itoa(c.n); got != c.want {
			t.Fatalf("itoa(%d) = %q", c.n, got)
		}
	}
}

func TestClosePagePolicyCostsRowHits(t *testing.T) {
	// Closed-page trades row-hit latency for conflict latency: on a
	// high-locality workload it must raise the activation count and not
	// run faster.
	w := mustWorkload(t, "libquantum") // 93% row locality
	open := New(quickCfg(w, XEDScheme())).Run()
	cfg := quickCfg(w, XEDScheme())
	cfg.ClosePage = true
	closed := New(cfg).Run()
	if closed.Activates <= open.Activates {
		t.Fatalf("closed-page activates (%d) should exceed open-page (%d)",
			closed.Activates, open.Activates)
	}
	if closed.Cycles < open.Cycles {
		t.Fatalf("closed-page (%d cycles) should not beat open-page (%d) on a streaming workload",
			closed.Cycles, open.Cycles)
	}
	if open.RowHitRate() < 0.5 {
		t.Fatalf("open-page row-hit rate %v implausibly low for libquantum", open.RowHitRate())
	}
}

func TestUtilizationMetrics(t *testing.T) {
	w := mustWorkload(t, "stream")
	res := New(quickCfg(w, XEDScheme())).Run()
	if u := res.BusUtilization(); u <= 0 || u > 1 {
		t.Fatalf("bus utilization %v out of range", u)
	}
	if res.Activates == 0 || res.BusCycles == 0 {
		t.Fatalf("metrics missing: %+v", res)
	}
	if h := res.RowHitRate(); h < 0 || h >= 1 {
		t.Fatalf("row-hit rate %v out of range", h)
	}
}

func TestDDR4TimingRuns(t *testing.T) {
	w := mustWorkload(t, "milc")
	cfg := quickCfg(w, XEDScheme())
	cfg.Timing = DDR42400()
	res := New(cfg).Run()
	if res.Cycles <= 0 || res.Power.Total() <= 0 {
		t.Fatalf("DDR4 run degenerate: %+v", res)
	}
	// Faster bus, same work: fewer bus cycles than wall cycles, sane
	// utilization.
	if u := res.BusUtilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization %v", u)
	}
}

func TestFRFCFSBeatsStrictFCFS(t *testing.T) {
	// The reordering scheduler must outperform strict FCFS on a
	// mixed-locality workload — the justification for FR-FCFS.
	w := mustWorkload(t, "milc")
	fr := New(quickCfg(w, XEDScheme())).Run()
	cfg := quickCfg(w, XEDScheme())
	cfg.StrictFCFS = true
	fcfs := New(cfg).Run()
	if fcfs.Cycles <= fr.Cycles {
		t.Fatalf("strict FCFS (%d) should be slower than FR-FCFS (%d)", fcfs.Cycles, fr.Cycles)
	}
}

func TestPowerDownLowersBackgroundPower(t *testing.T) {
	// A light workload leaves ranks idle; CKE power-down must cut the
	// background component and may cost a little time (tXP wakes).
	w := mustWorkload(t, "dealII")
	base := New(quickCfg(w, XEDScheme())).Run()
	cfg := quickCfg(w, XEDScheme())
	cfg.PowerDown = true
	pd := New(cfg).Run()
	if pd.Power.Background >= base.Power.Background {
		t.Fatalf("power-down background %v should be below %v",
			pd.Power.Background, base.Power.Background)
	}
	ratio := float64(pd.Cycles) / float64(base.Cycles)
	if ratio > 1.10 {
		t.Fatalf("power-down cost %vx execution time", ratio)
	}
	if pd.Power.Total() >= base.Power.Total() {
		t.Fatalf("power-down total %v should beat %v", pd.Power.Total(), base.Power.Total())
	}
}

func TestRefreshCostsTime(t *testing.T) {
	// The no-refresh ablation: ~2-5% of cycles go to tRFC blackouts on
	// a memory-bound workload.
	w := mustWorkload(t, "stream")
	base := New(quickCfg(w, XEDScheme())).Run()
	cfg := quickCfg(w, XEDScheme())
	cfg.DisableRefresh = true
	noRef := New(cfg).Run()
	if noRef.Cycles >= base.Cycles {
		t.Fatalf("disabling refresh (%d) should speed up the run (%d)", noRef.Cycles, base.Cycles)
	}
	if noRef.Power.Refresh != 0 {
		t.Fatalf("refresh power %v with refresh disabled", noRef.Power.Refresh)
	}
	saved := 1 - float64(noRef.Cycles)/float64(base.Cycles)
	if saved > 0.15 {
		t.Fatalf("refresh overhead %v implausibly large", saved)
	}
}

// TestFig11CalibrationGuard pins the headline Figure 11 calibration so
// future scheduler or workload edits that break it fail loudly. Bands are
// generous; the CLI run in EXPERIMENTS.md carries the precise numbers.
func TestFig11CalibrationGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scheme sweep")
	}
	names := []string{"libquantum", "mcf", "gcc", "stream", "comm2", "milc", "omnetpp", "bwaves"}
	var ws []Workload
	for _, n := range names {
		w, _ := WorkloadByName(n)
		ws = append(ws, w)
	}
	schemes := []SchemeConfig{SECDEDScheme(), XEDScheme(), ChipkillScheme(), DoubleChipkillScheme()}
	cmp, err := RunComparison(context.Background(), ws, schemes, 100_000, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g := cmp.GmeanTime(1); g != 1 {
		t.Fatalf("XED gmean %v, want exactly 1", g)
	}
	if g := cmp.GmeanTime(2); g < 1.10 || g > 1.55 {
		t.Fatalf("Chipkill gmean %v drifted from the ~1.2-1.3 calibration (paper 1.21)", g)
	}
	if g := cmp.GmeanTime(3); g < 1.7 || g > 3.6 {
		t.Fatalf("Double-Chipkill gmean %v outside band (paper 1.82)", g)
	}
	// libquantum's Chipkill slowdown anchors the bandwidth model.
	if v := cmp.NormalizedTime(0, 2); v < 1.3 || v > 1.9 {
		t.Fatalf("libquantum Chipkill %v outside band (paper 1.635)", v)
	}
}
