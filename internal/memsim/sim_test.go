package memsim

import (
	"context"
	"testing"

	"xedsim/internal/obs"
)

func quickCfg(w Workload, s SchemeConfig) Config {
	cfg := DefaultConfig(w, s)
	cfg.InstrPerCore = 40_000
	return cfg
}

func mustWorkload(t testing.TB, name string) Workload {
	t.Helper()
	w, ok := WorkloadByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	return w
}

func TestSimulatorCompletesAndCountsWork(t *testing.T) {
	w := mustWorkload(t, "libquantum")
	res := New(quickCfg(w, SECDEDScheme())).Run()
	if res.Cycles <= 0 {
		t.Fatal("no cycles simulated")
	}
	if res.Instructions != 40_000*8 {
		t.Fatalf("instructions = %d", res.Instructions)
	}
	// libquantum at 25 read-MPKI: expect roughly 25 reads per 1000
	// instructions across the run.
	wantReads := float64(res.Instructions) * w.ReadMPKI / 1000
	if f := float64(res.Reads); f < wantReads*0.7 || f > wantReads*1.3 {
		t.Fatalf("reads = %d, want ≈%v", res.Reads, wantReads)
	}
	if res.Writes == 0 {
		t.Fatal("no writes simulated")
	}
	if res.AvgReadLatency() < float64(DDR31600().CL+DDR31600().TBurst) {
		t.Fatalf("average read latency %v below the physical floor", res.AvgReadLatency())
	}
	if res.Power.Total() <= 0 {
		t.Fatal("no power accounted")
	}
}

func TestSimulatorDeterminism(t *testing.T) {
	w := mustWorkload(t, "mcf")
	a := New(quickCfg(w, ChipkillScheme())).Run()
	b := New(quickCfg(w, ChipkillScheme())).Run()
	if a.Cycles != b.Cycles || a.Reads != b.Reads || a.Power.Total() != b.Power.Total() {
		t.Fatalf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

func TestXEDMatchesSECDEDPerformance(t *testing.T) {
	// §XI-A: "XED activates only a single rank and consumes no
	// performance overheads" — its common-case resource footprint is
	// identical to SECDED's.
	w := mustWorkload(t, "milc")
	secded := New(quickCfg(w, SECDEDScheme())).Run()
	xed := New(quickCfg(w, XEDScheme())).Run()
	if secded.Cycles != xed.Cycles {
		t.Fatalf("XED (%d cycles) differs from SECDED (%d)", xed.Cycles, secded.Cycles)
	}
}

func TestChipkillSlowerThanXED(t *testing.T) {
	// Rank ganging + overfetch must cost time on a bandwidth-hungry
	// workload (Figure 11's mechanism).
	w := mustWorkload(t, "libquantum")
	xed := New(quickCfg(w, XEDScheme())).Run()
	ck := New(quickCfg(w, ChipkillScheme())).Run()
	if ck.Cycles <= xed.Cycles {
		t.Fatalf("Chipkill (%d) should be slower than XED (%d)", ck.Cycles, xed.Cycles)
	}
	slowdown := float64(ck.Cycles) / float64(xed.Cycles)
	if slowdown < 1.1 || slowdown > 2.5 {
		t.Fatalf("Chipkill slowdown %v outside plausible band", slowdown)
	}
}

func TestDoubleChipkillSlowerThanChipkill(t *testing.T) {
	w := mustWorkload(t, "libquantum")
	ck := New(quickCfg(w, ChipkillScheme())).Run()
	dck := New(quickCfg(w, DoubleChipkillScheme())).Run()
	if dck.Cycles <= ck.Cycles {
		t.Fatalf("Double-Chipkill (%d) should be slower than Chipkill (%d)", dck.Cycles, ck.Cycles)
	}
}

func TestSchemeOrderingOnBandwidthBoundWorkload(t *testing.T) {
	// Figure 13's ordering: XED < extra-burst < extra-transaction
	// (bandwidth taxes of 0%, 25%, ~100% on reads respectively);
	// plain Chipkill sits near the extra-transaction cost.
	w := mustWorkload(t, "bwaves")
	xed := New(quickCfg(w, XEDScheme())).Run().Cycles
	eb := New(quickCfg(w, ExtraBurstChipkill())).Run().Cycles
	et := New(quickCfg(w, ExtraTransactionChipkill())).Run().Cycles
	if !(xed < eb && eb < et) {
		t.Fatalf("ordering violated: XED=%d extraburst=%d extratxn=%d", xed, eb, et)
	}
}

func TestLOTECCSlowerThanXED(t *testing.T) {
	// Figure 14: LOT-ECC's checksum-update writes cost a few percent.
	w := mustWorkload(t, "lbm") // write-heavy
	xed := New(quickCfg(w, XEDScheme())).Run()
	lot := New(quickCfg(w, LOTECCScheme())).Run()
	if lot.Cycles <= xed.Cycles {
		t.Fatalf("LOT-ECC (%d) should be slower than XED (%d)", lot.Cycles, xed.Cycles)
	}
	if lot.CompanionWrites == 0 {
		t.Fatal("LOT-ECC generated no checksum writes")
	}
	slowdown := float64(lot.Cycles) / float64(xed.Cycles)
	if slowdown > 1.35 {
		t.Fatalf("LOT-ECC slowdown %v implausibly large", slowdown)
	}
}

func TestExtraTransactionGeneratesCompanions(t *testing.T) {
	w := mustWorkload(t, "gcc")
	res := New(quickCfg(w, ExtraTransactionChipkill())).Run()
	if res.CompanionReads != res.Reads {
		t.Fatalf("companion reads %d != demand reads %d", res.CompanionReads, res.Reads)
	}
}

func TestPowerOrdering(t *testing.T) {
	// Figure 12's robust claim: XED consumes exactly the baseline's
	// power — its common-case resource footprint is the SECDED DIMM's.
	// The ganged schemes pay for extra activates and overfetch
	// transfers; our model keeps both Chipkill variants within a
	// moderate band above baseline (the paper reports Chipkill slightly
	// *below* baseline because its USIMM configuration did not charge
	// the overfetched transfer; EXPERIMENTS.md discusses this).
	w := mustWorkload(t, "libquantum")
	base := New(quickCfg(w, SECDEDScheme())).Run()
	xed := New(quickCfg(w, XEDScheme())).Run()
	ck := New(quickCfg(w, ChipkillScheme())).Run()
	dck := New(quickCfg(w, DoubleChipkillScheme())).Run()
	if xed.Power.Total() != base.Power.Total() {
		t.Fatalf("XED power %v != SECDED power %v", xed.Power.Total(), base.Power.Total())
	}
	for name, r := range map[string]float64{
		"Chipkill":        ck.Power.Total() / base.Power.Total(),
		"Double-Chipkill": dck.Power.Total() / base.Power.Total(),
	} {
		if r < 0.85 || r > 1.7 {
			t.Fatalf("%s power ratio %v outside plausible band", name, r)
		}
	}
	for _, res := range []Result{base, ck, dck} {
		if res.Power.Background <= 0 || res.Power.Activate <= 0 ||
			res.Power.ReadWrite <= 0 || res.Power.Refresh <= 0 {
			t.Fatalf("power component missing: %+v", res.Power)
		}
	}
}

func TestGangValidation(t *testing.T) {
	w := mustWorkload(t, "gcc")
	cfg := quickCfg(w, DoubleChipkillScheme())
	cfg.Channels = 3 // not divisible by the 2-channel gang
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(cfg)
}

func TestQueueOps(t *testing.T) {
	var q queue
	a := &request{row: 1}
	b := &request{row: 2}
	c := &request{row: 3}
	q.push(a)
	q.push(b)
	q.push(c)
	if q.len() != 3 || q.at(1) != b {
		t.Fatal("queue push/at broken")
	}
	if got := q.removeAt(1); got != b {
		t.Fatal("removeAt returned wrong item")
	}
	if q.len() != 2 || q.at(0) != a || q.at(1) != c {
		t.Fatal("removeAt left queue inconsistent")
	}
}

func TestTraceGenRates(t *testing.T) {
	w := Workload{Name: "synthetic", ReadMPKI: 20, WritePKI: 10, RowBufferLocality: 0.8}
	geom := systemGeom{channels: 4, ranks: 2, banks: 8, rows: 1024, cols: 128}
	tg := newTraceGen(w, geom, 5)
	var instr, reads, writes, hits, total int
	lastRow := -1
	lastBank := -1
	for i := 0; i < 50_000; i++ {
		gap, op := tg.next()
		instr += gap + 1
		if op.isWrite {
			writes++
		} else {
			reads++
		}
		if op.row == lastRow && op.bank == lastBank {
			hits++
		}
		lastRow, lastBank = op.row, op.bank
		total++
	}
	gotMPKI := float64(reads) / float64(instr) * 1000
	if gotMPKI < 15 || gotMPKI > 25 {
		t.Fatalf("read MPKI = %v, want ≈20", gotMPKI)
	}
	gotWPKI := float64(writes) / float64(instr) * 1000
	if gotWPKI < 7 || gotWPKI > 13 {
		t.Fatalf("write PKI = %v, want ≈10", gotWPKI)
	}
	if frac := float64(hits) / float64(total); frac < 0.7 || frac > 0.9 {
		t.Fatalf("row locality = %v, want ≈0.8", frac)
	}
}

func TestPaperWorkloadsWellFormed(t *testing.T) {
	ws := PaperWorkloads()
	if len(ws) < 26 {
		t.Fatalf("only %d workloads", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if seen[w.Name] {
			t.Fatalf("duplicate workload %s", w.Name)
		}
		seen[w.Name] = true
		if w.ReadMPKI <= 0 || w.RowBufferLocality <= 0 || w.RowBufferLocality >= 1 {
			t.Fatalf("workload %s has bad parameters", w.Name)
		}
	}
	for _, suite := range SuiteNames() {
		found := false
		for _, w := range ws {
			if w.Suite == suite {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("suite %s empty", suite)
		}
	}
}

func TestRunComparisonNormalisation(t *testing.T) {
	ws := []Workload{mustWorkload(t, "libquantum"), mustWorkload(t, "gcc")}
	schemes := []SchemeConfig{SECDEDScheme(), XEDScheme(), ChipkillScheme()}
	cmp, err := RunComparison(context.Background(), ws, schemes, 25_000, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for w := range ws {
		if got := cmp.NormalizedTime(w, 0); got != 1 {
			t.Fatalf("baseline normalised time = %v", got)
		}
		if got := cmp.NormalizedTime(w, 1); got != 1 {
			t.Fatalf("XED normalised time = %v, want 1", got)
		}
		if got := cmp.NormalizedTime(w, 2); got <= 1 {
			t.Fatalf("Chipkill normalised time = %v, want > 1", got)
		}
	}
	if g := cmp.GmeanTime(2); g <= 1 || g > 2.5 {
		t.Fatalf("Chipkill gmean slowdown %v", g)
	}
	if g := cmp.SuiteGmeanTime(2, "SPEC2006"); g <= 1 {
		t.Fatalf("suite gmean %v", g)
	}
}

func BenchmarkSimulatorSECDED(b *testing.B) {
	w, _ := WorkloadByName("libquantum")
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(w, SECDEDScheme())
		cfg.InstrPerCore = 20_000
		New(cfg).Run()
	}
}

// TestSimulatorMetrics: a metrics registry attached to a simulation ends
// the run agreeing with the Result counters, and the latency histogram
// holds one observation per completed demand read with the right mean.
func TestSimulatorMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := quickCfg(mustWorkload(t, "libquantum"), SECDEDScheme())
	cfg.Metrics = reg
	res := New(cfg).Run()

	snap := reg.Snapshot()
	if got := snap.Counters["memsim.reads"]; got != uint64(res.Reads) {
		t.Fatalf("memsim.reads = %d, Result.Reads = %d", got, res.Reads)
	}
	if got := snap.Counters["memsim.writes"]; got != uint64(res.Writes) {
		t.Fatalf("memsim.writes = %d, Result.Writes = %d", got, res.Writes)
	}
	h := snap.Histograms["memsim.read_latency_cycles"]
	if h.Count == 0 || h.Count > uint64(res.Reads) {
		t.Fatalf("latency observations = %d, want in (0, %d]", h.Count, res.Reads)
	}
	if h.Sum > float64(res.SumReadLatency) || h.Sum <= 0 {
		t.Fatalf("latency sum = %v, Result.SumReadLatency = %d", h.Sum, res.SumReadLatency)
	}
	if snap.Counters["memsim.bank_conflicts"] == 0 {
		t.Fatal("no bank conflicts recorded over a full run")
	}
}
