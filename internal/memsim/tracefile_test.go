package memsim

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseTraceLine(t *testing.T) {
	cases := []struct {
		in   string
		want TraceOpRecord
		ok   bool
	}{
		{"12 R 0x1a2b", TraceOpRecord{12, false, 0x1a2b}, true},
		{"0 W ff00", TraceOpRecord{0, true, 0xff00}, true},
		{"3 r 0x10 0xdeadbeef", TraceOpRecord{3, false, 0x10}, true}, // trailing PC ignored
		{"R 0x10", TraceOpRecord{}, false},
		{"-1 R 0x10", TraceOpRecord{}, false},
		{"5 X 0x10", TraceOpRecord{}, false},
		{"5 R zz", TraceOpRecord{}, false},
	}
	for _, c := range cases {
		got, err := ParseTraceLine(c.in)
		if c.ok != (err == nil) {
			t.Fatalf("%q: err=%v, want ok=%v", c.in, err, c.ok)
		}
		if c.ok && got != c.want {
			t.Fatalf("%q: got %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	w := mustWorkload(t, "milc")
	ops := ExportTrace(w, DefaultTraceGeom(), 9, 5000)
	var buf bytes.Buffer
	if err := WriteTraceFile(&buf, ops); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ops) {
		t.Fatalf("round trip lost ops: %d vs %d", len(back), len(ops))
	}
	for i := range ops {
		if back[i] != ops[i] {
			t.Fatalf("op %d mutated: %+v vs %+v", i, back[i], ops[i])
		}
	}
}

func TestReadTraceFileSkipsCommentsAndBlanks(t *testing.T) {
	in := "# USIMM trace\n\n10 R 0x40\n   \n2 W 0x80\n"
	ops, err := ReadTraceFile(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 || !ops[1].IsWrite {
		t.Fatalf("parsed %+v", ops)
	}
}

func TestReadTraceFileReportsLine(t *testing.T) {
	_, err := ReadTraceFile(strings.NewReader("1 R 0x40\nbogus line\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-2 report", err)
	}
}

func TestSimulateFromTraceFile(t *testing.T) {
	// Export a synthetic stream, replay it through the simulator, and
	// confirm the replayed run sees comparable demand and the scheme
	// ordering still holds.
	w := mustWorkload(t, "libquantum")
	ops := ExportTrace(w, DefaultTraceGeom(), 4, 20_000)

	run := func(s SchemeConfig) Result {
		cfg := quickCfg(w, s)
		cfg.TraceOps = ops
		return New(cfg).Run()
	}
	xed := run(XEDScheme())
	ck := run(ChipkillScheme())
	if xed.Reads == 0 || xed.Writes == 0 {
		t.Fatalf("trace replay produced no traffic: %+v", xed)
	}
	// Roughly the workload's MPKI should survive the replay.
	mpki := float64(xed.Reads) / float64(xed.Instructions) * 1000
	if mpki < w.ReadMPKI*0.6 || mpki > w.ReadMPKI*1.4 {
		t.Fatalf("replayed MPKI %v, want ≈%v", mpki, w.ReadMPKI)
	}
	if ck.Cycles <= xed.Cycles {
		t.Fatalf("Chipkill (%d) should stay slower than XED (%d) under trace replay",
			ck.Cycles, xed.Cycles)
	}
	// Determinism: same trace, same result.
	again := run(XEDScheme())
	if again.Cycles != xed.Cycles {
		t.Fatal("trace replay not deterministic")
	}
}
