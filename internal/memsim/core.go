package memsim

import "xedsim/internal/simrand"

// The processor front end follows USIMM's model (§X, Table V): each core
// has a 160-entry ROB, fetches and retires 4 instructions per core cycle,
// and runs at 4x the memory bus clock — so up to 16 instructions enter and
// leave the window per memory cycle. Non-memory instructions complete
// instantly; a read occupies its ROB slot until data returns, stalling
// retirement when it reaches the head; writes retire into the controller's
// write queue.

// robEntry is one window entry; non-memory instructions are batched.
type robEntry struct {
	count int  // instructions represented
	ready bool // reads flip this on data return
	owner *core
}

// traceSource feeds a core its instruction stream: the synthetic
// generator, or a recorded USIMM trace file.
type traceSource interface {
	next() (int, *traceOp)
}

// core is one trace-driven processor.
type core struct {
	id    int
	mlp   int
	trace traceSource

	rob      []*robEntry
	robInstr int // instructions currently in the window

	retired int64
	target  int64
	done    bool

	// outstanding counts in-flight demand reads, capped at the
	// workload's MLP.
	outstanding int

	// pendingGap holds non-memory instructions still to fetch before
	// the next memory operation.
	pendingGap int
	// pendingOp is the memory op waiting to enter the window.
	pendingOp *traceOp
}

const (
	robSize          = 160
	instrPerMemCycle = 8 // sustainable half of the 4-wide x 4-cycle peak
)

// traceOp is the next memory operation of a trace.
type traceOp struct {
	isWrite                       bool
	channel, rank, bank, row, col int
}

// fetch moves up to instrPerMemCycle instructions into the window,
// emitting memory requests via the simulator. It stops when the window or
// the write queue is full.
func (c *core) fetch(sim *Simulator) {
	budget := instrPerMemCycle
	for budget > 0 && !c.done {
		if c.pendingGap == 0 && c.pendingOp == nil {
			gap, op := c.trace.next()
			c.pendingGap, c.pendingOp = gap, op
		}
		if c.pendingGap > 0 {
			n := c.pendingGap
			if n > budget {
				n = budget
			}
			if c.robInstr+n > robSize {
				n = robSize - c.robInstr
			}
			if n == 0 {
				return
			}
			c.appendBatch(n)
			c.pendingGap -= n
			budget -= n
			continue
		}
		// A memory operation needs one window slot.
		if c.robInstr+1 > robSize {
			return
		}
		op := c.pendingOp
		if op.isWrite {
			if !sim.enqueueWrite(op) {
				return // write queue full: stall fetch
			}
			c.appendReady()
		} else {
			if c.outstanding >= c.mlp {
				return // MLP limit: dependent miss cannot issue yet
			}
			entry := &robEntry{count: 1, owner: c}
			c.rob = append(c.rob, entry)
			c.robInstr++
			c.outstanding++
			sim.enqueueRead(c, entry, op)
		}
		c.pendingOp = nil
		budget--
	}
}

// appendBatch adds n immediately-ready instructions, merging with the
// window tail when possible.
func (c *core) appendBatch(n int) {
	if len(c.rob) > 0 {
		last := c.rob[len(c.rob)-1]
		if last.ready {
			last.count += n
			c.robInstr += n
			return
		}
	}
	c.rob = append(c.rob, &robEntry{count: n, ready: true})
	c.robInstr += n
}

func (c *core) appendReady() { c.appendBatch(1) }

// retire drains up to instrPerMemCycle completed instructions in order.
func (c *core) retire() {
	budget := instrPerMemCycle
	for budget > 0 && len(c.rob) > 0 {
		head := c.rob[0]
		if !head.ready {
			return
		}
		n := head.count
		if n > budget {
			head.count -= budget
			c.robInstr -= budget
			c.retired += int64(budget)
			budget = 0
			break
		}
		c.rob = c.rob[1:]
		c.robInstr -= n
		c.retired += int64(n)
		budget -= n
	}
	if c.retired >= c.target {
		c.done = true
	}
}

// traceGen synthesises a memory-access trace with a target read MPKI,
// write PKI and row-buffer locality — the three knobs that determine how
// a workload responds to losing rank parallelism and bus bandwidth.
type traceGen struct {
	rng  *simrand.Source
	w    Workload
	geom systemGeom

	// current open-page stream.
	channel, rank, bank, row, col int

	avgGap    float64 // non-memory instructions per memory op
	writeFrac float64
}

// systemGeom is the address-space shape visible to traces.
type systemGeom struct {
	channels, ranks, banks, rows, cols int
}

func newTraceGen(w Workload, geom systemGeom, seed uint64) *traceGen {
	memPKI := w.ReadMPKI + w.WritePKI
	t := &traceGen{
		rng:       simrand.New(seed),
		w:         w,
		geom:      geom,
		avgGap:    1000 / memPKI,
		writeFrac: w.WritePKI / memPKI,
	}
	t.jump()
	return t
}

// jump opens a fresh random page.
func (t *traceGen) jump() {
	t.channel = t.rng.Intn(t.geom.channels)
	t.rank = t.rng.Intn(t.geom.ranks)
	t.bank = t.rng.Intn(t.geom.banks)
	t.row = t.rng.Intn(t.geom.rows)
	t.col = t.rng.Intn(t.geom.cols)
}

// next yields the instruction gap before the next memory op and the op.
func (t *traceGen) next() (int, *traceOp) {
	// Geometric gap around the mean keeps bursts realistic.
	gap := int(t.rng.ExpFloat64() * t.avgGap)
	if !t.rng.Bernoulli(t.w.RowBufferLocality) {
		t.jump()
	} else {
		t.col = (t.col + 1) % t.geom.cols
	}
	op := &traceOp{
		isWrite: t.rng.Bernoulli(t.writeFrac),
		channel: t.channel, rank: t.rank, bank: t.bank, row: t.row, col: t.col,
	}
	return gap, op
}
