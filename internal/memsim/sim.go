package memsim

import (
	"context"
	"fmt"

	"xedsim/internal/dram"
	"xedsim/internal/obs"
	"xedsim/internal/simrand"
)

// Config assembles one simulation: the Table V system, a workload run in
// rate mode on every core, and a reliability scheme's resource mapping.
type Config struct {
	Timing Timing

	Channels        int
	RanksPerChannel int
	BanksPerRank    int
	RowsPerBank     int
	ColsPerRow      int

	Cores        int
	InstrPerCore int64

	WriteQueueCap int
	DrainHi       int
	DrainLo       int

	// ClosePage selects the closed-page row policy: every column access
	// auto-precharges its row. Open-page (default) is the Table V
	// baseline; the ablation bench contrasts the two.
	ClosePage bool

	// StrictFCFS disables first-ready reordering: the scheduler serves
	// the oldest request only, the classic FCFS baseline FR-FCFS is
	// measured against.
	StrictFCFS bool

	// DisableRefresh turns off auto-refresh — the no-refresh ablation
	// quantifying how much of the baseline's time and power refresh
	// costs (and what eliminating it would buy).
	DisableRefresh bool

	// PowerDown enables CKE precharge power-down: a rank idle for more
	// than PowerDownAfter cycles drops to IDD2P standby and pays tXP to
	// wake. Off by default so the headline Figure 12 numbers stay
	// reproducible; the ablation bench flips it.
	PowerDown      bool
	PowerDownAfter int64

	Scheme   SchemeConfig
	Workload Workload
	Seed     uint64

	// TraceOps, when non-nil, replaces the synthetic generator: every
	// core replays this recorded USIMM-format stream (rate mode), with
	// per-core offsets so the copies do not run in lockstep.
	TraceOps []TraceOpRecord

	// Metrics, when non-nil, publishes live counters under "memsim.*"
	// names: demand traffic, a read-latency histogram (bus cycles) and
	// bank conflicts (activations that had to close another row first).
	Metrics *obs.Registry
}

// DefaultConfig is the paper's baseline system (Table V) at a trace length
// suitable for regression runs; the experiment CLIs raise InstrPerCore.
func DefaultConfig(w Workload, s SchemeConfig) Config {
	return Config{
		Timing:          DDR31600(),
		Channels:        4,
		RanksPerChannel: 2,
		BanksPerRank:    8,
		RowsPerBank:     32768,
		ColsPerRow:      128,
		Cores:           8,
		InstrPerCore:    300_000,
		WriteQueueCap:   64,
		DrainHi:         40,
		DrainLo:         20,
		Scheme:          s,
		Workload:        w,
		Seed:            1,
	}
}

// Result reports one simulation's outcome.
type Result struct {
	Workload string
	Scheme   string

	Cycles       int64
	Instructions int64

	Reads, Writes   int64
	CompanionReads  int64
	CompanionWrites int64
	SumReadLatency  int64

	// Activates counts row activations across the fleet; BusCycles the
	// data-bus cycles consumed (all channels).
	Activates int64
	BusCycles int64

	Power PowerBreakdown
}

// RowHitRate estimates the fraction of accesses served without a fresh
// activation.
func (r *Result) RowHitRate() float64 {
	accesses := r.Reads + r.Writes + r.CompanionReads + r.CompanionWrites
	if accesses == 0 {
		return 0
	}
	h := 1 - float64(r.Activates)/float64(accesses)
	if h < 0 {
		return 0
	}
	return h
}

// BusUtilization is the fraction of data-bus cycles carrying data,
// averaged over all channels.
func (r *Result) BusUtilization() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.BusCycles) / float64(r.Cycles) / 4 // 4 channels in Table V
}

// IPC is retired instructions per memory-bus cycle across all cores.
func (r *Result) IPC() float64 { return float64(r.Instructions) / float64(r.Cycles) }

// AvgReadLatency is the mean demand-read latency in bus cycles.
func (r *Result) AvgReadLatency() float64 {
	if r.Reads == 0 {
		return 0
	}
	return float64(r.SumReadLatency) / float64(r.Reads)
}

// Simulator is the per-run state machine.
type Simulator struct {
	cfg      Config
	channels []*channelState
	cores    []*core
	now      int64
	rng      *simrand.Source

	// completions maps cycle -> ROB entries whose data arrives then.
	completions map[int64][]*robEntry
	latencies   map[int64][]int64 // parallel: arrive cycles for latency stats

	res Result

	// Pre-resolved obs handles; nil (no-op) without Config.Metrics.
	mReads, mWrites, mBankConflicts *obs.Counter
	mReadLatency                    *obs.Histogram

	debug debugHook
}

// New builds a simulator. It panics on nonsensical configuration, which
// only arises from programmer error.
func New(cfg Config) *Simulator {
	if cfg.Channels%cfg.Scheme.ChannelsPerAccess != 0 {
		panic(fmt.Sprintf("memsim: %d channels not divisible by gang %d", cfg.Channels, cfg.Scheme.ChannelsPerAccess))
	}
	if cfg.RanksPerChannel%cfg.Scheme.RanksPerAccess != 0 {
		panic(fmt.Sprintf("memsim: %d ranks not divisible by gang %d", cfg.RanksPerChannel, cfg.Scheme.RanksPerAccess))
	}
	s := &Simulator{
		cfg:         cfg,
		rng:         simrand.New(cfg.Seed ^ 0xfeed),
		completions: make(map[int64][]*robEntry),
		latencies:   make(map[int64][]int64),
	}
	for c := 0; c < cfg.Channels; c++ {
		ch := newChannel(cfg.RanksPerChannel, cfg.BanksPerRank)
		ch.nextRefresh = int64(cfg.Timing.TREFI / cfg.RanksPerChannel)
		s.channels = append(s.channels, ch)
	}
	geom := systemGeom{
		channels: cfg.Channels / cfg.Scheme.ChannelsPerAccess,
		ranks:    cfg.RanksPerChannel / cfg.Scheme.RanksPerAccess,
		banks:    cfg.BanksPerRank,
		rows:     cfg.RowsPerBank,
		cols:     cfg.ColsPerRow,
	}
	for i := 0; i < cfg.Cores; i++ {
		mlp := cfg.Workload.MLP
		if mlp <= 0 {
			mlp = 8
		}
		var src traceSource
		if cfg.TraceOps != nil {
			src = &fileTrace{
				ops:         cfg.TraceOps,
				pos:         (i * len(cfg.TraceOps)) / cfg.Cores,
				mapper:      dram.MustNewMapper(cfg.Channels, cfg.RanksPerChannel, dram.Geometry{Banks: cfg.BanksPerRank, RowsPerBank: cfg.RowsPerBank, ColsPerRow: cfg.ColsPerRow}),
				channelGang: cfg.Scheme.ChannelsPerAccess,
				rankGang:    cfg.Scheme.RanksPerAccess,
			}
		} else {
			src = newTraceGen(cfg.Workload, geom, cfg.Seed*1000003+uint64(i))
		}
		s.cores = append(s.cores, &core{
			id:     i,
			mlp:    mlp,
			trace:  src,
			target: cfg.InstrPerCore,
		})
	}
	s.res.Workload = cfg.Workload.Name
	s.res.Scheme = cfg.Scheme.Name
	s.mReads = cfg.Metrics.Counter("memsim.reads")
	s.mWrites = cfg.Metrics.Counter("memsim.writes")
	s.mBankConflicts = cfg.Metrics.Counter("memsim.bank_conflicts")
	s.mReadLatency = cfg.Metrics.Histogram("memsim.read_latency_cycles",
		[]float64{20, 40, 60, 80, 120, 160, 240, 320, 640})
	return s
}

// gangBase maps a trace's effective channel to the first physical channel
// of its gang.
func (s *Simulator) gangBase(effChannel int) int {
	return effChannel * s.cfg.Scheme.ChannelsPerAccess
}

// enqueueRead registers a demand read (plus any scheme companion) and is
// called from core.fetch.
func (s *Simulator) enqueueRead(c *core, entry *robEntry, op *traceOp) {
	base := s.gangBase(op.channel)
	ch := s.channels[base]
	r := &request{
		kind: reqRead, channel: base, rank: op.rank, bank: op.bank,
		row: op.row, col: op.col, core: c.id, robSlot: entry, arrive: s.now,
	}
	ch.readQ.push(r)
	s.res.Reads++
	s.mReads.Inc()
	if n := s.cfg.Scheme.SerialModeEvery; n > 0 && s.res.Reads%int64(n) == 0 {
		// Serial-mode episode: quiesce, MRS-toggle, re-read, verify —
		// two additional row-hit transfers on the same line.
		for k := 0; k < 2; k++ {
			comp := *r
			comp.robSlot = nil
			comp.core = -1
			comp.companion = true
			ch.readQ.push(&comp)
			s.res.CompanionReads++
		}
	}
	if s.cfg.Scheme.ExtraReadPerRead {
		comp := *r
		comp.robSlot = nil
		comp.core = -1
		comp.companion = true
		comp.col = (op.col + 1) % s.cfg.ColsPerRow // ECC fetched from the same row
		ch.readQ.push(&comp)
		s.res.CompanionReads++
	}
}

// enqueueWrite buffers a write; false means the queue is full and fetch
// must stall (back-pressure, as in USIMM).
func (s *Simulator) enqueueWrite(op *traceOp) bool {
	base := s.gangBase(op.channel)
	ch := s.channels[base]
	if ch.writeQ.len() >= s.cfg.WriteQueueCap {
		return false
	}
	w := &request{
		kind: reqWrite, channel: base, rank: op.rank, bank: op.bank,
		row: op.row, col: op.col, core: -1, arrive: s.now,
	}
	ch.writeQ.push(w)
	s.res.Writes++
	s.mWrites.Inc()
	if s.cfg.Scheme.ExtraReadPerWrite {
		// Read-modify-write: fetch the checksum line before updating.
		rd := *w
		rd.kind = reqRead
		rd.companion = true
		rd.col = (op.col + 11) % s.cfg.ColsPerRow
		ch.readQ.push(&rd)
		s.res.CompanionReads++
	}
	if p := s.cfg.Scheme.ExtraWritePerWrite; p > 0 && s.rng.Bernoulli(p) {
		comp := *w
		comp.companion = true
		// LOT-ECC's tier-1 ECC shares the data row, so the coalesced
		// update is a row hit at a different column: pure extra write
		// bandwidth, which is what its §XII-A slowdown consists of.
		comp.col = (op.col + 7) % s.cfg.ColsPerRow
		ch.writeQ.push(&comp)
		s.res.CompanionWrites++
	}
	return true
}

// Run executes the simulation to completion and returns the result.
func (s *Simulator) Run() Result {
	return s.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: every few thousand
// cycles it polls ctx and, when cancelled, returns the partial Result as
// of the current cycle (Cycles and the power/traffic counters cover the
// simulated prefix).
func (s *Simulator) RunContext(ctx context.Context) Result {
	maxCycles := s.cfg.InstrPerCore * 400 // generous watchdog
	for {
		s.now++
		if s.now > maxCycles {
			panic("memsim: watchdog expired; scheduler livelock?")
		}
		if s.now&(1<<12-1) == 0 && ctx.Err() != nil {
			break
		}
		// 1. Data arrivals unblock ROB entries.
		if entries, ok := s.completions[s.now]; ok {
			arrivals := s.latencies[s.now]
			for i, e := range entries {
				e.ready = true
				if e.owner != nil {
					e.owner.outstanding--
				}
				s.res.SumReadLatency += s.now - arrivals[i]
				s.mReadLatency.Observe(float64(s.now - arrivals[i]))
			}
			delete(s.completions, s.now)
			delete(s.latencies, s.now)
		}
		// 2. Controller work per channel.
		for ci, ch := range s.channels {
			if ci%s.cfg.Scheme.ChannelsPerAccess != 0 {
				continue // ganged followers are driven by the base
			}
			s.maybeRefresh(ci)
			s.maybeIssue(ci, ch)
		}
		// 3. Cores retire then fetch.
		allDone := true
		for _, c := range s.cores {
			if c.done {
				continue
			}
			c.retire()
			if !c.done {
				c.fetch(s)
				allDone = false
			}
		}
		if allDone {
			break
		}
	}
	s.res.Cycles = s.now
	s.res.Instructions = s.cfg.InstrPerCore * int64(s.cfg.Cores)
	for _, ch := range s.channels {
		for r := range ch.ranks {
			s.res.Activates += ch.ranks[r].activates
			s.res.BusCycles += ch.ranks[r].readCycles + ch.ranks[r].writeCycles
		}
	}
	s.res.Power = s.computePower()
	return s.res
}

// maybeRefresh launches the staggered per-rank auto-refresh.
func (s *Simulator) maybeRefresh(base int) {
	if s.cfg.DisableRefresh {
		return
	}
	ch := s.channels[base]
	if s.now < ch.nextRefresh {
		return
	}
	t := &s.cfg.Timing
	for g := 0; g < s.cfg.Scheme.ChannelsPerAccess; g++ {
		phys := s.channels[base+g]
		rank := &phys.ranks[ch.refreshRank]
		until := s.now + int64(t.TRFC)
		rank.refreshUntil = until
		rank.refreshes++
		for b := range rank.banks {
			bank := &rank.banks[b]
			bank.openRow = -1
			bank.reserved = false
			bank.nextAct = max64(bank.nextAct, until)
		}
	}
	ch.refreshRank = (ch.refreshRank + 1) % s.cfg.RanksPerChannel
	ch.nextRefresh += int64(t.TREFI / s.cfg.RanksPerChannel)
}

// maybeIssue runs the two-phase FR-FCFS scheduler for one channel gang: a
// column command (CAS + data transfer) for the oldest request whose row is
// open and ready, and independently one row command (PRE+ACT) preparing
// the oldest row-conflict request. Decoupling the phases keeps the data
// bus from being reserved for far-future conflicts — the head-of-line
// blocking a single-pointer model would suffer.
func (s *Simulator) maybeIssue(base int, ch *channelState) {
	// Write-drain watermark policy.
	if ch.draining {
		if ch.writeQ.len() <= s.cfg.DrainLo {
			ch.draining = false
		}
	} else if ch.writeQ.len() >= s.cfg.DrainHi || (ch.readQ.len() == 0 && ch.writeQ.len() > 0) {
		ch.draining = true
	}
	q, other := &ch.readQ, &ch.writeQ
	if ch.draining {
		q, other = &ch.writeQ, &ch.readQ
	}

	// Column phase: oldest request that could move data soon, bus
	// backlog permitting. The non-selected queue gets a chance when the
	// selected one has nothing ready — also the guarantee that a
	// prepared request always drains its bank reservation eventually.
	// A fixed backlog horizon (independent of the scheme's burst shape,
	// so schemes differ only through real resource usage).
	if ch.busFreeAt <= s.now+4*int64(s.cfg.Timing.TBurst) {
		if !s.tryColumn(base, q) {
			s.tryColumn(base, other)
		}
	}

	// Row phase: prepare the oldest request whose row is closed or
	// conflicting, unless its bank is reserved for an earlier victim.
	rowLimit := q.len()
	if s.cfg.StrictFCFS && rowLimit > 1 {
		rowLimit = 1
	}
	for i := 0; i < rowLimit; i++ {
		r := q.at(i)
		if s.prepare(base, r) {
			break
		}
	}
}

// tryColumn issues a CAS for the oldest data-ready request in q.
func (s *Simulator) tryColumn(base int, q *queue) bool {
	slack := s.now + int64(s.cfg.Timing.TCCD)
	for i := 0; i < q.len(); i++ {
		r := q.at(i)
		ready, open := s.casReadyFor(base, r)
		if open && ready <= slack {
			q.removeAt(i)
			if s.debug != nil {
				s.debug("CAS", r, ready, s.channels[base].busFreeAt)
			}
			s.issueColumn(base, r, ready)
			return true
		}
	}
	return false
}

// casReadyFor reports whether r's row is open across its whole gang and,
// if so, the earliest CAS cycle. No state is mutated.
func (s *Simulator) casReadyFor(base int, r *request) (int64, bool) {
	t := &s.cfg.Timing
	sc := &s.cfg.Scheme
	isWrite := r.kind == reqWrite
	physRank0 := (r.rank * sc.RanksPerAccess) % s.cfg.RanksPerChannel
	ready := s.now
	for g := 0; g < sc.ChannelsPerAccess; g++ {
		phys := s.channels[base+g]
		for k := 0; k < sc.RanksPerAccess; k++ {
			rank := &phys.ranks[physRank0+k]
			bank := &rank.banks[r.bank]
			if bank.openRow != r.row {
				return 0, false
			}
			v := max64(bank.nextCAS, rank.refreshUntil)
			if !isWrite {
				v = max64(v, rank.lastWriteEnd+int64(t.TWTR))
			}
			if s.cfg.PowerDown {
				after := s.cfg.PowerDownAfter
				if after <= 0 {
					after = 16
				}
				if s.now-rank.lastActive > after {
					v = max64(v, s.now+int64(t.TXP))
				}
			}
			ready = max64(ready, v)
		}
	}
	return ready, true
}

// issueColumn schedules the CAS and data transfer for a request whose row
// is open, and registers the read completion.
func (s *Simulator) issueColumn(base int, r *request, casReady int64) {
	t := &s.cfg.Timing
	sc := &s.cfg.Scheme
	isWrite := r.kind == reqWrite
	physRank0 := (r.rank * sc.RanksPerAccess) % s.cfg.RanksPerChannel

	burst := int64(sc.BurstCyclesPerRank)
	busDur := burst*int64(sc.RanksPerAccess) + int64(t.TRTRS)*int64(sc.RanksPerAccess-1)
	lat := int64(t.CL)
	if isWrite {
		lat = int64(t.CWL)
	}
	var dataEndMax int64
	for g := 0; g < sc.ChannelsPerAccess; g++ {
		phys := s.channels[base+g]
		busAt := phys.busFreeAt
		if phys.lastBusWrite != isWrite || phys.lastBusRank != physRank0 {
			busAt += int64(t.TRTRS)
		}
		dataStart := max64(casReady+lat, busAt)
		dataEnd := dataStart + busDur
		phys.busFreeAt = dataEnd
		phys.lastBusWrite = isWrite
		phys.lastBusRank = physRank0
		if dataEnd > dataEndMax {
			dataEndMax = dataEnd
		}
		casT := dataStart - lat
		for k := 0; k < sc.RanksPerAccess; k++ {
			rank := &phys.ranks[physRank0+k]
			bank := &rank.banks[r.bank]
			if rank.lastActive < dataEnd {
				rank.lastActive = dataEnd
			}
			bank.nextCAS = casT + int64(t.TCCD)
			bank.reserved = false // the opened row has served its CAS
			if isWrite {
				bank.nextPre = max64(bank.nextPre, dataEnd+int64(t.TWR))
				rank.lastWriteEnd = dataEnd
				rank.writeCycles += burst
			} else {
				bank.nextPre = max64(bank.nextPre, casT+int64(t.TRTP))
				rank.readCycles += burst
			}
			if s.cfg.ClosePage {
				// Auto-precharge: the row closes as soon as the
				// precharge constraint allows.
				bank.openRow = -1
				bank.nextAct = max64(bank.nextAct, bank.nextPre+int64(t.TRP))
			}
		}
	}

	if !isWrite && r.robSlot != nil {
		// Controller-side decode latency, converted from 3.2GHz core
		// cycles to 800MHz bus cycles (ceil).
		decode := int64((sc.CorrectionCycles + 3) / 4)
		done := dataEndMax + decode
		s.completions[done] = append(s.completions[done], r.robSlot)
		s.latencies[done] = append(s.latencies[done], r.arrive)
	}
}

// wakeRank applies power-down bookkeeping at the start of new activity on
// a rank and returns the wake penalty (tXP) if the rank had powered down.
func (s *Simulator) wakeRank(rank *rankState) int64 {
	if !s.cfg.PowerDown {
		return 0
	}
	after := s.cfg.PowerDownAfter
	if after <= 0 {
		after = 16
	}
	gap := s.now - rank.lastActive
	if gap > after {
		rank.pdCycles += gap - after
		return int64(s.cfg.Timing.TXP)
	}
	return 0
}

// prepare opens r's row across its gang (PRE if needed, then ACT), unless
// a bank involved is already open on the right row, still reserved for an
// earlier conflict victim, or not yet ready to activate. Reports whether
// row commands were issued.
func (s *Simulator) prepare(base int, r *request) bool {
	t := &s.cfg.Timing
	sc := &s.cfg.Scheme
	physRank0 := (r.rank * sc.RanksPerAccess) % s.cfg.RanksPerChannel

	// Feasibility pass: every ganged bank must be preparable now.
	for g := 0; g < sc.ChannelsPerAccess; g++ {
		phys := s.channels[base+g]
		for k := 0; k < sc.RanksPerAccess; k++ {
			rank := &phys.ranks[physRank0+k]
			bank := &rank.banks[r.bank]
			if bank.openRow == r.row {
				return false // already open: column phase will serve it
			}
			if bank.reserved {
				return false // an earlier victim owns this bank
			}
			if s.now < rank.refreshUntil {
				return false
			}
			actFloor := max64(bank.nextAct,
				max64(rank.fawReady(t.TFAW), rank.lastAct+int64(t.TRRD)))
			if bank.openRow != -1 {
				actFloor = max64(actFloor, max64(bank.nextPre, s.now)+int64(t.TRP))
			}
			if actFloor > s.now+int64(t.TRP)+int64(t.TRRD) {
				return false // bank busy; try a younger request
			}
		}
	}
	if s.debug != nil {
		s.debug("ACT", r, 0, 0)
	}
	// A conflict (not a cold miss): the request's bank holds a different
	// open row that must be precharged first. One count per request, read
	// off the gang's base bank before the commit pass mutates it.
	if s.channels[base].ranks[physRank0].banks[r.bank].openRow != -1 {
		s.mBankConflicts.Inc()
	}
	// Commit pass.
	for g := 0; g < sc.ChannelsPerAccess; g++ {
		phys := s.channels[base+g]
		for k := 0; k < sc.RanksPerAccess; k++ {
			rank := &phys.ranks[physRank0+k]
			bank := &rank.banks[r.bank]
			wake := s.wakeRank(rank)
			actAt := max64(s.now+wake, bank.nextAct)
			if bank.openRow != -1 {
				actAt = max64(actAt, max64(bank.nextPre, s.now)+int64(t.TRP))
			}
			actAt = max64(actAt, rank.fawReady(t.TFAW))
			actAt = max64(actAt, rank.lastAct+int64(t.TRRD))
			rank.recordAct(actAt, t.TRAS)
			if rank.lastActive < actAt+int64(t.TRCD) {
				rank.lastActive = actAt + int64(t.TRCD)
			}
			bank.openRow = r.row
			bank.reserved = true
			bank.nextAct = actAt + int64(t.TRC)
			bank.nextPre = actAt + int64(t.TRAS)
			bank.nextCAS = actAt + int64(t.TRCD)
		}
	}
	return true
}

// debugHook is a development trace point; see probe_test.go.
type debugHook func(kind string, r *request, a, b int64)
