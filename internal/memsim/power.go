package memsim

// Micron TN-41-01 "Calculating Memory System Power for DDR3" current-based
// power model (§X: "USIMM is configured with the power parameters from
// industrial 2Gb x8-DRAM chips"). Energy is accumulated per rank from the
// simulator's activity counters; On-Die ECC scales the background,
// activate and refresh currents by 12.5% for the extra cell array.

// IDDProfile is the datasheet current set in milliamps, plus VDD.
type IDDProfile struct {
	VDD   float64 // volts
	IDD0  float64 // one-bank activate-precharge
	IDD2N float64 // precharge standby
	IDD2P float64 // precharge power-down
	IDD3N float64 // active standby
	IDD4R float64 // burst read
	IDD4W float64 // burst write
	IDD5B float64 // burst refresh
}

// Micron2GbX8 matches a DDR3-1600 2Gb x8 part.
func Micron2GbX8() IDDProfile {
	return IDDProfile{
		VDD:   1.5,
		IDD0:  95,
		IDD2N: 42,
		IDD2P: 12,
		IDD3N: 45,
		IDD4R: 180,
		IDD4W: 185,
		IDD5B: 215,
	}
}

// ChipsPerRank on every evaluated organisation: nine (the ECC-DIMM rank).
const ChipsPerRank = 9

// PowerBreakdown reports average memory power in watts by component.
type PowerBreakdown struct {
	Background float64
	Activate   float64
	ReadWrite  float64
	Refresh    float64
}

// Total sums the components.
func (p PowerBreakdown) Total() float64 {
	return p.Background + p.Activate + p.ReadWrite + p.Refresh
}

// computePower converts per-rank activity counters into average watts over
// the simulated interval.
func (s *Simulator) computePower() PowerBreakdown {
	idd := Micron2GbX8()
	t := &s.cfg.Timing
	ondie := s.cfg.Scheme.OnDieECCCurrentFactor
	if ondie == 0 {
		ondie = 1
	}
	tckSec := t.TCK * 1e-9
	cycles := float64(s.now)
	interval := cycles * tckSec

	var p PowerBreakdown
	for _, ch := range s.channels {
		for r := range ch.ranks {
			rank := &ch.ranks[r]
			active := float64(rank.activeCycles)
			if active > cycles {
				active = cycles
			}
			// Close out the rank's trailing idle gap for power-down
			// accounting.
			pd := float64(rank.pdCycles)
			if s.cfg.PowerDown {
				after := float64(s.cfg.PowerDownAfter)
				if after <= 0 {
					after = 16
				}
				if tail := float64(s.now-rank.lastActive) - after; tail > 0 {
					pd += tail
				}
			}
			idle := cycles - active - pd
			if idle < 0 {
				idle = 0
			}

			// Background: active standby vs precharge standby vs
			// power-down, in mA·cycles.
			bgCharge := (idd.IDD3N*active + idd.IDD2N*idle + idd.IDD2P*pd) * ondie
			// Activate/precharge energy above the standby floor.
			actCharge := (idd.IDD0*float64(t.TRC) -
				(idd.IDD3N*float64(t.TRAS) + idd.IDD2N*float64(t.TRC-t.TRAS))) *
				float64(rank.activates) * ondie
			if actCharge < 0 {
				actCharge = 0
			}
			// Burst read/write above active standby.
			rwCharge := (idd.IDD4R-idd.IDD3N)*float64(rank.readCycles) +
				(idd.IDD4W-idd.IDD3N)*float64(rank.writeCycles)
			// Refresh above standby.
			refCharge := (idd.IDD5B - idd.IDD3N) * float64(t.TRFC) * float64(rank.refreshes) * ondie

			// mA·cycles -> watts: x VDD x tCK / interval, x chips, /1000.
			scale := idd.VDD * tckSec / interval * ChipsPerRank / 1000
			p.Background += bgCharge * scale
			p.Activate += actCharge * scale
			p.ReadWrite += rwCharge * scale
			p.Refresh += refCharge * scale
		}
	}
	return p
}
