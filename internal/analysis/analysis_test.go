package analysis

import (
	"math"
	"testing"

	"xedsim/internal/faultsim"
)

func TestCollisionPerWriteProbability(t *testing.T) {
	if got := X8Default().PerWriteProbability(); got != math.Exp2(-64) {
		t.Fatalf("x8 per-write p = %v", got)
	}
	if got := X4Default().PerWriteProbability(); got != math.Exp2(-32) {
		t.Fatalf("x4 per-write p = %v", got)
	}
}

func TestCollisionMeanTimes(t *testing.T) {
	// 64-bit catch-word at one write per 4ns: 2^64 * 4e-9 s ≈ 2339 y.
	x8 := X8Default().MeanTimeBetweenCollisionsYears()
	if x8 < 2000 || x8 > 2700 {
		t.Fatalf("x8 MTTC = %v years, want ≈2339", x8)
	}
	// 32-bit: 2^32 * 4e-9 s ≈ 17 seconds — hence §IX-A's observation
	// that x4 systems must regenerate catch-words frequently.
	x4 := X4Default().MeanTimeBetweenCollisionsYears() * SecondsPerYear
	if x4 < 15 || x4 > 20 {
		t.Fatalf("x4 MTTC = %v seconds, want ≈17.2", x4)
	}
	// The paper-calibrated model reproduces the quoted 3.2M years.
	p := PaperCalibratedX8().MeanTimeBetweenCollisionsYears()
	if p < 3.1e6 || p > 3.3e6 {
		t.Fatalf("paper-calibrated MTTC = %v years, want 3.2e6", p)
	}
}

func TestCollisionCurveMonotoneAndExponential(t *testing.T) {
	m := X8Default()
	years := []float64{1, 2, 4, 8, 16}
	curve := m.Curve(years)
	for i := 1; i < len(curve); i++ {
		if curve[i] <= curve[i-1] {
			t.Fatalf("curve not increasing at %v years", years[i])
		}
	}
	// In the small-p regime the curve is linear in time: P(2y) ≈ 2·P(1y).
	if r := curve[1] / curve[0]; r < 1.99 || r > 2.01 {
		t.Fatalf("P(2y)/P(1y) = %v, want ≈2", r)
	}
}

func TestCollisionModelMatchesSimulation(t *testing.T) {
	// Validate the geometric model at 16-bit width: 300k writes against
	// p = 2^-16 expect ~4.6 collisions.
	m := CollisionModel{CatchWordBits: 16, WriteIntervalSec: 1}
	writes := 300_000
	var hits int
	for seed := uint64(0); seed < 20; seed++ {
		hits += SimulateCollisions(16, writes, seed)
	}
	want := float64(20*writes) * m.PerWriteProbability()
	if got := float64(hits); got < want*0.7 || got > want*1.3 {
		t.Fatalf("simulated collisions %v, want ≈%v", got, want)
	}
}

func TestTableIIIScalesQuadratically(t *testing.T) {
	// P(multiple catch-words) ∝ rate² — each decade of scaling-fault
	// rate buys two decades of serial-mode rarity (Table III's pattern:
	// 2e-5, 2e-7, 2e-9 in the paper's per-beat convention).
	p4 := TableIIIRow(1e-4, 72).Probability()
	p5 := TableIIIRow(1e-5, 72).Probability()
	p6 := TableIIIRow(1e-6, 72).Probability()
	if r := p4 / p5; r < 90 || r > 110 {
		t.Fatalf("p(1e-4)/p(1e-5) = %v, want ≈100", r)
	}
	if r := p5 / p6; r < 90 || r > 110 {
		t.Fatalf("p(1e-5)/p(1e-6) = %v, want ≈100", r)
	}
	// Order of magnitude at 1e-4, full-word convention: ~1.8e-3; the
	// paper's per-beat convention gives ~2e-5.
	if p4 < 5e-4 || p4 > 5e-3 {
		t.Fatalf("p4 = %v outside expected band", p4)
	}
	beat := TableIIIRow(1e-4, 8).Probability()
	if beat < 5e-6 || beat > 5e-5 {
		t.Fatalf("per-beat p4 = %v, want ≈2e-5 (paper Table III)", beat)
	}
}

func TestSerialModeInterval(t *testing.T) {
	m := TableIIIRow(1e-4, 8)
	iv := m.SerialModeInterval()
	// Paper: "once every 200K accesses" at the high rate.
	if iv < 20_000 || iv > 500_000 {
		t.Fatalf("serial-mode interval = %v accesses, want ~1e5", iv)
	}
	if !math.IsInf(TableIIIRow(0, 72).SerialModeInterval(), 1) {
		t.Fatal("zero rate should mean never")
	}
}

func TestTableIVDUE(t *testing.T) {
	v := DefaultXEDVulnerability()
	// Paper: transient word fault probability 7.7e-4 per rank / 7 years.
	tw := v.TransientWordProbability()
	if tw < 7e-4 || tw > 8.5e-4 {
		t.Fatalf("transient word probability = %v, want ≈7.7e-4", tw)
	}
	// Paper: DUE 6.1e-6.
	due := v.DUEProbability()
	if due < 5.5e-6 || due > 7e-6 {
		t.Fatalf("DUE = %v, want ≈6.1e-6", due)
	}
}

func TestTableIVSDC(t *testing.T) {
	v := DefaultXEDVulnerability()
	mis := v.MisidentificationProbability()
	// Paper: ~1e-12 chance that 10% of a row's lines carry scaling
	// catch-words.
	if mis > 1e-10 || mis < 1e-16 {
		t.Fatalf("misidentification probability = %v, want ≈1e-12", mis)
	}
	sdc := v.SDCProbability()
	if sdc > 1e-11 || sdc <= 0 {
		t.Fatalf("SDC = %v, want ≲1.4e-13", sdc)
	}
	// SDC must be many orders below DUE, which itself is far below the
	// multi-chip data-loss rate (Table IV's ordering).
	if sdc >= v.DUEProbability() {
		t.Fatal("SDC should be far below DUE")
	}
}

func TestBinomialTail(t *testing.T) {
	// P(X >= 1) = 1-(1-p)^n exactly.
	n, p := 50, 0.01
	want := -math.Expm1(float64(n) * math.Log1p(-p))
	if got := binomialTail(n, p, 1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("tail(>=1) = %v, want %v", got, want)
	}
	if got := binomialTail(10, 0.5, 0); got != 1 {
		t.Fatalf("tail(>=0) = %v, want 1", got)
	}
	if got := binomialTail(10, 0.5, 11); got != 0 {
		t.Fatalf("tail(>11) = %v, want 0", got)
	}
	// Symmetric case: P(X>=6 | n=10,p=0.5) + P(X>=5) = 1 + P(X=5).
	a := binomialTail(10, 0.5, 6)
	b := binomialTail(10, 0.5, 5)
	pmf5 := math.Exp(logChoose(10, 5) + 5*math.Log(0.5) + 5*math.Log(0.5))
	if math.Abs(a+pmf5-b) > 1e-12 {
		t.Fatal("binomial tail inconsistent with pmf")
	}
}

func TestMultiChipLossMatchesMonteCarlo(t *testing.T) {
	// The closed form should land within ~35% of the simulator's XED
	// failure probability (it ignores the silent-word DUE term, which
	// is orders of magnitude smaller).
	cfg := faultsim.DefaultConfig()
	rep, err := faultsim.Run(cfg, []faultsim.Scheme{faultsim.NewXED()}, 400_000, 99, 0)
	if err != nil {
		t.Fatal(err)
	}
	mc := rep.Results[0].Probability()

	permFIT := 0.3 + 5.6 + 8.2 + 10 + 1.4 + 2.8*0 // visible permanent, chip-level classes handled below
	// Visible permanent classes: word 0.3, column 5.6, row 8.2, bank 10,
	// multibank 1.4, plus the per-DIMM multi-rank events appearing as
	// chip faults (2.8 FIT per DIMM spread across 18 chips ≈ 0.16).
	permFIT += 2.8 / 18 * 1
	transFIT := 1.4 + 1.4 + 0.2 + 0.8 + 0.3 + 0.9/18
	analytic := MultiChipLossProbability(permFIT, transFIT, 9, 8, cfg.LifetimeHours, cfg.ScrubIntervalHours)
	if ratio := analytic / mc; ratio < 0.6 || ratio > 1.6 {
		t.Fatalf("analytic %v vs monte-carlo %v (ratio %v)", analytic, mc, ratio)
	}
}

func BenchmarkCollisionCurve(b *testing.B) {
	m := X8Default()
	years := []float64{1, 2, 3, 4, 5, 6, 7}
	for i := 0; i < b.N; i++ {
		m.Curve(years)
	}
}

func TestChipkillClosedFormMatchesMonteCarlo(t *testing.T) {
	cfg := faultsim.DefaultConfig()
	rep, err := faultsim.Run(cfg, []faultsim.Scheme{faultsim.NewChipkill()}, 600_000, 31, 0)
	if err != nil {
		t.Fatal(err)
	}
	mc := rep.Results[0].Probability()
	permFIT := 0.3 + 5.6 + 8.2 + 10 + 1.4
	transFIT := 1.4 + 1.4 + 0.2 + 0.8 + 0.3
	pairs := PairLossProbability(permFIT, transFIT, 18, 4, cfg.LifetimeHours, cfg.ScrubIntervalHours)
	multiRank := MultiRankLossProbability(0.9+2.8, 4, cfg.LifetimeHours)
	analytic := pairs + multiRank
	if ratio := analytic / mc; ratio < 0.6 || ratio > 1.6 {
		t.Fatalf("analytic %v vs monte-carlo %v (ratio %v)", analytic, mc, ratio)
	}
}

func TestTripleLossOrdersOfMagnitude(t *testing.T) {
	cfg := faultsim.DefaultConfig()
	rep, err := faultsim.Run(cfg, []faultsim.Scheme{faultsim.NewDoubleChipkill()}, 4_000_000, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	mc := rep.Results[0].Probability()
	permFIT := 0.3 + 5.6 + 8.2 + 10 + 1.4 + (2.8 / 18)
	transFIT := 1.4 + 1.4 + 0.2 + 0.8 + 0.3 + (0.9 / 18)
	analytic := TripleLossProbability(permFIT, transFIT, 36, 2, cfg.LifetimeHours, cfg.ScrubIntervalHours)
	// The closed form keeps only the dominant terms; demand order-of-
	// magnitude agreement.
	if mc > 0 && (analytic < mc/4 || analytic > mc*4) {
		t.Fatalf("analytic %v vs monte-carlo %v", analytic, mc)
	}
}
