// Package analysis provides the closed-form models behind the paper's
// non-Monte-Carlo numbers: the catch-word collision interval (Figure 6 and
// §IX-A), the likelihood of receiving multiple catch-words per access
// (Table III), and the SDC/DUE rates of XED (Table IV). Each model is
// cross-checked against small-scale Monte Carlo in the tests.
package analysis

import (
	"math"

	"xedsim/internal/simrand"
)

// CollisionModel computes how often legitimately written data matches a
// chip's randomly chosen catch-word (§V-D2). Writes are conservatively
// assumed to carry a fresh uniformly random value each time, so each write
// collides with probability 2^-bits.
type CollisionModel struct {
	// CatchWordBits is the catch-word width: 64 for x8 devices, 32 for
	// the x4 devices of the Chipkill configuration (§IX-A).
	CatchWordBits int
	// WriteIntervalSec is the mean time between writes reaching one
	// chip. The paper's headline assumption is "a memory write every
	// 4ns" (4e-9).
	WriteIntervalSec float64
}

// SecondsPerYear uses the Julian year.
const SecondsPerYear = 365.25 * 24 * 3600

// PerWriteProbability is the chance one write collides: 2^-bits.
func (m CollisionModel) PerWriteProbability() float64 {
	return math.Exp2(-float64(m.CatchWordBits))
}

// MeanTimeBetweenCollisionsYears is the expected collision interval.
// With 64-bit catch-words and a write every 4ns this is ~2.3 thousand
// years per write stream; the paper quotes 3.2 million years for an x8
// chip (its per-chip write rate is correspondingly lower). EXPERIMENTS.md
// tabulates both conventions.
func (m CollisionModel) MeanTimeBetweenCollisionsYears() float64 {
	return m.WriteIntervalSec / m.PerWriteProbability() / SecondsPerYear
}

// ProbabilityByYears returns P(at least one collision within y years):
// 1 - (1-p)^n over n = y·writes-per-year — the curve of Figure 6.
// Computed in log space to stay stable for p = 2^-64.
func (m CollisionModel) ProbabilityByYears(y float64) float64 {
	writes := y * SecondsPerYear / m.WriteIntervalSec
	p := m.PerWriteProbability()
	// log(1-p) ≈ -p for tiny p; math.Log1p handles both regimes.
	return -math.Expm1(writes * math.Log1p(-p))
}

// Curve evaluates ProbabilityByYears at each supplied year mark.
func (m CollisionModel) Curve(years []float64) []float64 {
	out := make([]float64, len(years))
	for i, y := range years {
		out[i] = m.ProbabilityByYears(y)
	}
	return out
}

// X8Default is Figure 6's configuration: 64-bit catch-word, 4ns writes.
func X8Default() CollisionModel {
	return CollisionModel{CatchWordBits: 64, WriteIntervalSec: 4e-9}
}

// X4Default is §IX-A's configuration: 32-bit catch-word (x4 devices). The
// paper computes ~6.6 hours between collisions for this width.
func X4Default() CollisionModel {
	return CollisionModel{CatchWordBits: 32, WriteIntervalSec: 4e-9}
}

// PaperCalibratedX8 reproduces the paper's quoted 3.2-million-year figure:
// solving 2^64·Δ = 3.2e6 years gives a per-chip write interval of ~5.5µs,
// i.e. the 4ns system-level write stream fanned out across the fleet's
// ranks, banks and channels. We expose it so the Figure 6 bench can print
// both conventions side by side.
func PaperCalibratedX8() CollisionModel {
	const paperYears = 3.2e6
	return CollisionModel{
		CatchWordBits:    64,
		WriteIntervalSec: paperYears * SecondsPerYear * math.Exp2(-64),
	}
}

// SimulateCollisions validates the geometric model empirically at a small
// catch-word width: it draws `writes` random values against a random
// catch-word and returns the observed collision count. Used by tests to
// confirm the analytic curve before extrapolating to 64 bits.
func SimulateCollisions(bits int, writes int, seed uint64) int {
	rng := simrand.New(seed)
	mask := uint64(1)<<uint(bits) - 1
	cw := rng.Uint64() & mask
	hits := 0
	for i := 0; i < writes; i++ {
		if rng.Uint64()&mask == cw {
			hits++
		}
	}
	return hits
}
