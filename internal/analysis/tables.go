package analysis

import "math"

// --- Table III: likelihood of multiple catch-words per access ---

// MultiCatchWord models §VII-A: every chip whose accessed on-die word
// holds at least one birthtime scaling fault answers with a catch-word, so
// the chance of *multiple* catch-words in one access is a binomial tail
// over the chips of the rank.
type MultiCatchWord struct {
	// ScalingRatePerBit is the weak-cell rate (Table III sweeps 10^-4,
	// 10^-5, 10^-6).
	ScalingRatePerBit float64
	// Chips per access answering with data (9 on the XED ECC-DIMM).
	Chips int
	// BitsPerWord is the on-die codeword size whose damage triggers a
	// catch-word on this access: 72 cells (64 data + 8 check) for the
	// full-word convention. The paper's Table III values correspond to
	// a per-beat (8-bit) chunk; both are exposed for EXPERIMENTS.md.
	BitsPerWord int
}

// PerChipProbability is the chance one chip's accessed word is faulty.
func (m MultiCatchWord) PerChipProbability() float64 {
	return -math.Expm1(float64(m.BitsPerWord) * math.Log1p(-m.ScalingRatePerBit))
}

// Probability returns P(two or more catch-words in one access).
func (m MultiCatchWord) Probability() float64 {
	q := m.PerChipProbability()
	n := float64(m.Chips)
	// 1 - (1-q)^n - n·q·(1-q)^(n-1)
	none := math.Exp(n * math.Log1p(-q))
	one := n * q * math.Exp((n-1)*math.Log1p(-q))
	return 1 - none - one
}

// SerialModeInterval returns the expected number of accesses between
// serial-mode episodes (the reciprocal of Probability); the paper quotes
// "once every 200K accesses" at a 10^-4 rate.
func (m MultiCatchWord) SerialModeInterval() float64 {
	p := m.Probability()
	if p <= 0 {
		return math.Inf(1)
	}
	return 1 / p
}

// TableIIIRow evaluates one scaling rate with the paper's system (9 chips).
func TableIIIRow(rate float64, bitsPerWord int) MultiCatchWord {
	return MultiCatchWord{ScalingRatePerBit: rate, Chips: 9, BitsPerWord: bitsPerWord}
}

// --- Table IV: SDC and DUE rates of XED ---

// XEDVulnerability derives Table IV's closed forms from the FIT rates.
type XEDVulnerability struct {
	// TransientWordFIT is the per-chip transient word-fault rate
	// (1.4 FIT in Table I).
	TransientWordFIT float64
	// LargeGranFIT is the per-chip rate of row+column+bank faults
	// feeding Inter-Line diagnosis.
	LargeGranFIT float64
	// ChipsPerRank, LifetimeHours describe the protection domain the
	// paper normalises to (one 9-chip rank over 7 years).
	ChipsPerRank  int
	LifetimeHours float64
	// SilentFraction is the on-die miss rate for multi-bit word damage
	// (0.8%, Table II).
	SilentFraction float64
	// ScalingRatePerBit, ColsPerRow, Threshold parameterise the
	// Inter-Line misidentification SDC: an innocent chip is convicted
	// if >= Threshold of the row's ColsPerRow lines carry scaling
	// catch-words.
	ScalingRatePerBit float64
	ColsPerRow        int
	Threshold         int
}

// DefaultXEDVulnerability matches §VIII's assumptions.
func DefaultXEDVulnerability() XEDVulnerability {
	return XEDVulnerability{
		TransientWordFIT:  1.4,
		LargeGranFIT:      5.6 + 8.2 + 10 + 1.4, // perm column+row+bank+multibank
		ChipsPerRank:      9,
		LifetimeHours:     7 * 8766,
		SilentFraction:    0.008,
		ScalingRatePerBit: 1e-4,
		ColsPerRow:        128,
		Threshold:         13, // 10% of 128, rounded up
	}
}

// TransientWordProbability is the chance a rank sees a transient word
// fault over the lifetime — the paper's 7.7x10^-4.
func (v XEDVulnerability) TransientWordProbability() float64 {
	return v.TransientWordFIT * 1e-9 * v.LifetimeHours * float64(v.ChipsPerRank)
}

// DUEProbability is Table IV's word-failure row: a transient word fault
// whose damage the on-die code misses defeats both diagnoses — 6.1x10^-6.
func (v XEDVulnerability) DUEProbability() float64 {
	return v.TransientWordProbability() * v.SilentFraction
}

// MisidentificationProbability is the chance Inter-Line diagnosis convicts
// an innocent chip: >= Threshold of the row's lines carry scaling-fault
// catch-words for that chip (binomial tail; ~10^-12 at a 10^-4 rate).
func (v XEDVulnerability) MisidentificationProbability() float64 {
	q := -math.Expm1(72 * math.Log1p(-v.ScalingRatePerBit))
	return binomialTail(v.ColsPerRow, q, v.Threshold)
}

// SDCProbability is Table IV's row/column/bank row: diagnosis runs after a
// large-granularity fault whose accessed line was silent, and convicts the
// wrong chip — ~1.4x10^-13 over 7 years.
func (v XEDVulnerability) SDCProbability() float64 {
	diagnoses := v.LargeGranFIT * 1e-9 * v.LifetimeHours * float64(v.ChipsPerRank)
	// Any of the other chips may be wrongly convicted.
	wrongChips := float64(v.ChipsPerRank - 1)
	return diagnoses * v.MisidentificationProbability() * wrongChips
}

// binomialTail returns P(X >= k) for X ~ Binomial(n, p), computed in log
// space so tails like 1e-12 keep full precision.
func binomialTail(n int, p float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	if k > n || p <= 0 {
		return 0
	}
	logP := math.Log(p)
	logQ := math.Log1p(-p)
	sum := 0.0
	for i := k; i <= n; i++ {
		lg := logChoose(n, i) + float64(i)*logP + float64(n-i)*logQ
		sum += math.Exp(lg)
	}
	return sum
}

func logChoose(n, k int) float64 {
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}

// MultiChipLossProbability approximates Table IV's final row analytically:
// the probability that two chips of one rank hold concurrently active
// visible faults during the lifetime, summed over the fleet's ranks. It
// cross-checks the Monte-Carlo simulator's XED estimate.
//
// permFIT/transFIT are per-chip visible (word-or-larger) FIT rates;
// scrubHours bounds transient persistence.
func MultiChipLossProbability(permFIT, transFIT float64, chips, ranks int, lifetimeHours, scrubHours float64) float64 {
	lp := permFIT * 1e-9 * lifetimeHours  // per-chip permanent faults
	lt := transFIT * 1e-9 * lifetimeHours // per-chip transient faults
	pairs := float64(chips*(chips-1)) / 2
	// permanent x permanent: any two eventually overlap.
	pp := lp * lp
	// transient x permanent: the transient must start while the
	// permanent is live — on average half the lifetime — or the
	// permanent must arrive within the transient's scrub window.
	tp := 2 * lt * lp * (0.5 + scrubHours/lifetimeHours)
	// transient x transient: both must share a scrub window.
	tt := lt * lt * (2 * scrubHours / lifetimeHours)
	return pairs * (pp + tp + tt) * float64(ranks)
}

// PairLossProbability generalises MultiChipLossProbability to any gang
// size — the analytic cross-check for the Chipkill curve (two concurrent
// faulty chips among `chips`, summed over `gangs` protection gangs).
func PairLossProbability(permFIT, transFIT float64, chips, gangs int, lifetimeHours, scrubHours float64) float64 {
	return MultiChipLossProbability(permFIT, transFIT, chips, gangs, lifetimeHours, scrubHours)
}

// TripleLossProbability approximates the two-erasure schemes' failure
// mode: three concurrently active visible faults in distinct chips of one
// gang. Only the dominant permanent^3 and permanent^2 x transient terms
// are kept; the Monte-Carlo simulator carries the full model.
func TripleLossProbability(permFIT, transFIT float64, chips, gangs int, lifetimeHours, scrubHours float64) float64 {
	lp := permFIT * 1e-9 * lifetimeHours
	lt := transFIT * 1e-9 * lifetimeHours
	triples := float64(chips*(chips-1)*(chips-2)) / 6
	// permanent^3: the latest of three always sees the other two.
	ppp := lp * lp * lp
	// 2 permanents + 1 transient: the transient must arrive after both
	// (~1/3 of orderings) or a permanent lands in its scrub window.
	ppt := 3 * lp * lp * lt * (1.0/3 + 2*scrubHours/lifetimeHours)
	return triples * (ppp + ppt) * float64(gangs)
}

// MultiRankLossProbability is the Chipkill-specific extra term: a
// multi-rank event puts two concurrent faulty chips into the DIMM-wide
// gang, defeating single-symbol correction outright.
func MultiRankLossProbability(multiRankFIT float64, dimms int, lifetimeHours float64) float64 {
	return multiRankFIT * 1e-9 * lifetimeHours * float64(dimms)
}
