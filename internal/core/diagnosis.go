package core

import (
	"xedsim/internal/dram"
	"xedsim/internal/ecc"
)

// Fault diagnosis for the cases where On-Die ECC fails to detect a
// multi-bit chip error (§VI). The DIMM-level parity still exposes that
// *something* is wrong, but not *which* chip; these routines identify the
// chip so RAID-3 reconstruction can proceed instead of declaring an
// uncorrectable error.

// diagnoseAndCorrect drives the §VI flow: FCT lookup, then Inter-Line
// Fault Diagnosis, then Intra-Line Fault Diagnosis; on success the faulty
// chip's beat is rebuilt from parity, otherwise the read is a DUE.
// hintWords, when non-nil, carries the serial-mode (on-die corrected) bus
// words already collected for this line.
func (c *Controller) diagnoseAndCorrect(a dram.WordAddr, hintWords []uint64) ReadResult {
	// Fast path: a previous diagnosis already convicted a chip for this
	// row (or permanently, after FCT saturation).
	if chip := c.fct.Lookup(a.Bank, a.Row); chip >= 0 {
		return c.reconstructAgainstChip(a, chip, OutcomeCorrectedDiagnosis)
	}
	if chip := c.interLineDiagnosis(a); chip >= 0 {
		if c.fct.Insert(a.Bank, a.Row, chip) {
			c.stats.FCTChipMarks++
			c.m.fctChipMarks.Inc()
			c.events.append(EventChipMarked, dram.WordAddr{}, chip)
		}
		c.events.append(EventDiagnosis, a, chip)
		return c.reconstructAgainstChip(a, chip, OutcomeCorrectedDiagnosis)
	}
	if chip := c.intraLineDiagnosis(a); chip >= 0 {
		// Intra-line verdicts feed the FCT too: a column or bank
		// failure is convicted row by row, and once every entry names
		// the same chip it is permanently marked (§VI-A).
		if c.fct.Insert(a.Bank, a.Row, chip) {
			c.stats.FCTChipMarks++
			c.m.fctChipMarks.Inc()
			c.events.append(EventChipMarked, dram.WordAddr{}, chip)
		}
		c.events.append(EventDiagnosis, a, chip)
		return c.reconstructAgainstChip(a, chip, OutcomeCorrectedDiagnosis)
	}
	// Both diagnoses failed (the transient-word-fault case of §VIII):
	// detected but uncorrectable.
	c.stats.DUEs++
	c.m.dues.Inc()
	c.events.append(EventDUE, a, -1)
	res := ReadResult{Outcome: OutcomeDUE}
	if hintWords != nil {
		var words [DataChips + 1]uint64
		copy(words[:], hintWords)
		res.Data = toLine(words)
	} else {
		c.readBuf = c.rank.ReadLineInto(a, c.readBuf)
		var words [DataChips + 1]uint64
		for i := range words {
			words[i] = c.readBuf[i].Data
		}
		res.Data = toLine(words)
	}
	return res
}

// interLineDiagnosis streams the entire row buffer (all columns of the
// accessed row) and counts, per chip, how many lines that chip flagged
// with a catch-word. A chip whose count reaches the threshold (10% of the
// row, §VI-A) is convicted — a row/column/bank failure damages many
// spatially close lines, and the on-die code cannot miss all of them.
// Returns the faulty chip or -1.
func (c *Controller) interLineDiagnosis(a dram.WordAddr) int {
	c.stats.InterLineRuns++
	c.m.interLineRuns.Inc()
	geom := c.rank.Geometry()
	var counts [DataChips + 1]int
	for col := 0; col < geom.ColsPerRow; col++ {
		addr := dram.WordAddr{Bank: a.Bank, Row: a.Row, Col: col}
		c.readBuf = c.rank.ReadLineInto(addr, c.readBuf)
		for i, r := range c.readBuf {
			if r.Data == c.catchWords[i] {
				counts[i]++
			}
		}
	}
	threshold := int(c.interLineThreshold * float64(geom.ColsPerRow))
	if threshold < 1 {
		threshold = 1
	}
	best, bestCount, ties := -1, 0, 0
	for i, n := range counts {
		if n > bestCount {
			best, bestCount, ties = i, n, 1
		} else if n == bestCount && n > 0 {
			ties++
		}
	}
	if bestCount >= threshold && ties == 1 {
		return best
	}
	return -1
}

// intraLineDiagnosis tests for a permanent fault confined to the accessed
// line (§VI-B): it buffers the line, writes all-zeros and all-ones
// patterns, reads them back with XED bypassed, and convicts the chip whose
// cells do not hold the pattern. Transient word faults do not reproduce
// under rewrite and correctly escape conviction. The original (buffered)
// content is restored before returning. Returns the faulty chip or -1.
func (c *Controller) intraLineDiagnosis(a dram.WordAddr) int {
	c.stats.IntraLineRuns++
	c.m.intraLineRuns.Inc()
	// Buffer the suspect line as raw (on-die corrected where possible)
	// words.
	var buffer [DataChips + 1]uint64
	for i := 0; i <= DataChips; i++ {
		buffer[i], _ = c.rank.Chip(i).ReadRaw(a)
	}

	faulty := -1
	ambiguous := false
	for _, pattern := range []uint64{0, ^uint64(0)} {
		for i := 0; i <= DataChips; i++ {
			c.rank.Chip(i).Write(a, pattern)
		}
		for i := 0; i <= DataChips; i++ {
			got, st := c.rank.Chip(i).ReadRaw(a)
			if got == pattern && st != ecc.StatusDetected {
				continue
			}
			if faulty >= 0 && faulty != i {
				ambiguous = true
			}
			faulty = i
		}
	}

	// Restore the buffered content.
	for i := 0; i <= DataChips; i++ {
		c.rank.Chip(i).Write(a, buffer[i])
	}
	if ambiguous {
		return -1
	}
	return faulty
}

// reconstructAgainstChip rebuilds the line treating chip k as an erasure:
// every other chip is read with XED bypassed (their on-die engines repair
// any correctable scaling faults), then chip k's beat is recomputed from
// parity (§VI, §VII-C).
func (c *Controller) reconstructAgainstChip(a dram.WordAddr, k int, outcome Outcome) ReadResult {
	var words [DataChips + 1]uint64
	for i := 0; i <= DataChips; i++ {
		if i == k {
			continue
		}
		words[i], _ = c.rank.Chip(i).ReadRaw(a)
	}
	if k != parityChip {
		words[k] = ecc.Reconstruct(words[:DataChips], words[parityChip], k)
	} else {
		words[parityChip] = ecc.Parity(words[:DataChips])
	}
	c.stats.DiagCorrections++
	c.m.diagCorrections.Inc()
	return ReadResult{Data: toLine(words), Outcome: outcome, FaultyChips: c.faultyOne(k)}
}
