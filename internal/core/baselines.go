package core

import (
	"fmt"

	"xedsim/internal/dram"
	"xedsim/internal/ecc"
)

// Baseline controllers the paper compares against. They drive the same
// functional DRAM model but use conventional (concealed) On-Die ECC — the
// chips never reveal detection information — so any protection must come
// from the DIMM-level code alone. These exist so the examples and tests
// can demonstrate Figure 1's point directly: a chip failure defeats
// DIMM-level SECDED, survives Chipkill, and survives XED.

// ECCDIMMController is the conventional 9-chip ECC-DIMM (§II-D1): per
// 8-byte beat, the 64 data bits (one byte from each data chip) are
// protected by an 8-bit SECDED code stored in the ninth chip. With On-Die
// ECC present, this DIMM-level code only ever sees multi-bit damage — the
// exact redundancy the paper calls "superfluous".
type ECCDIMMController struct {
	rank  *dram.Rank
	code  ecc.Code64
	stats Stats

	readBuf []dram.ReadResult // read-path scratch
}

// NewECCDIMMController wraps a 9-chip rank. The chips keep XED disabled;
// the DIMM-level code is the classic (72,64) Hamming SECDED.
func NewECCDIMMController(rank *dram.Rank) *ECCDIMMController {
	if rank.Chips() != DataChips+1 {
		panic(fmt.Sprintf("core: ECC-DIMM needs 9 chips, got %d", rank.Chips()))
	}
	rank.SetXEDEnable(false)
	return &ECCDIMMController{rank: rank, code: ecc.NewHamming()}
}

// Rank exposes the underlying rank.
func (c *ECCDIMMController) Rank() *dram.Rank { return c.rank }

// Stats returns a copy of the counters.
func (c *ECCDIMMController) Stats() Stats { return c.stats }

// WriteLine stores a line with per-beat SECDED check bytes in chip 8.
func (c *ECCDIMMController) WriteLine(a dram.WordAddr, data Line) {
	c.stats.Writes++
	var beats [DataChips + 1]uint64
	copy(beats[:DataChips], data[:])
	for b := 0; b < 8; b++ {
		cw := c.code.Encode(c.gatherBeat(data, b))
		beats[DataChips] |= uint64(cw.Check) << uint(8*b)
	}
	c.rank.WriteLine(a, beats[:])
}

// gatherBeat assembles the 64 bits that travel together on bus beat b: one
// byte from each data chip.
func (c *ECCDIMMController) gatherBeat(data Line, b int) uint64 {
	var v uint64
	for i := 0; i < DataChips; i++ {
		v |= uint64(uint8(data[i]>>uint(8*b))) << uint(8*i)
	}
	return v
}

// scatterBeat is the inverse of gatherBeat.
func scatterBeat(v uint64, b int, out *Line) {
	for i := 0; i < DataChips; i++ {
		out[i] &^= 0xff << uint(8*b)
		out[i] |= uint64(uint8(v>>uint(8*i))) << uint(8*b)
	}
}

// ReadLine decodes each beat with DIMM-level SECDED. A whole-chip failure
// contributes eight bad bits per beat — far beyond SECDED — so it either
// surfaces as OutcomeDUE or, worse, mis-corrects silently; tests verify
// data against ground truth to expose the silent case.
func (c *ECCDIMMController) ReadLine(a dram.WordAddr) (Line, Outcome) {
	c.stats.Reads++
	c.readBuf = c.rank.ReadLineInto(a, c.readBuf)
	res := c.readBuf
	var line Line
	checks := res[DataChips].Data
	var rawLine Line
	for i := 0; i < DataChips; i++ {
		rawLine[i] = res[i].Data
	}
	outcome := OutcomeClean
	for b := 0; b < 8; b++ {
		cw := ecc.Codeword72{Data: c.gatherBeat(rawLine, b), Check: uint8(checks >> uint(8*b))}
		data, st := c.code.Decode(cw)
		switch st {
		case ecc.StatusCorrected:
			if outcome == OutcomeClean {
				outcome = OutcomeCorrectedErasure
			}
		case ecc.StatusDetected:
			outcome = OutcomeDUE
		}
		scatterBeat(data, b, &line)
	}
	switch outcome {
	case OutcomeClean:
		c.stats.CleanReads++
	case OutcomeCorrectedErasure:
		c.stats.ErasureCorrections++
	case OutcomeDUE:
		c.stats.DUEs++
	}
	return line, outcome
}

// ChipkillController is conventional Single-Chipkill over an 18-chip gang
// (§II-D2): RS(18,16) per byte lane, correcting one unlocated chip error
// and detecting two. On-Die ECC stays concealed.
type ChipkillController struct {
	rank  *dram.Rank
	rs    *ecc.RS
	dec   *ecc.RSDecoder
	stats Stats

	// Scratch: one lane buffer shared by encode (data prefix, checks
	// appended in place) and in-place decode, plus the rank read buffer.
	lane    [ChipkillChips]uint8
	readBuf []dram.ReadResult
}

// NewChipkillController wraps an 18-chip rank with XED disabled.
func NewChipkillController(rank *dram.Rank) *ChipkillController {
	if rank.Chips() != ChipkillChips {
		panic(fmt.Sprintf("core: Chipkill needs 18 chips, got %d", rank.Chips()))
	}
	rank.SetXEDEnable(false)
	rs := ecc.NewChipkill()
	return &ChipkillController{rank: rank, rs: rs, dec: rs.NewDecoder()}
}

// Rank exposes the underlying rank.
func (c *ChipkillController) Rank() *dram.Rank { return c.rank }

// Stats returns a copy of the counters.
func (c *ChipkillController) Stats() Stats { return c.stats }

// WriteBlock stores 16 data beats and 2 lane-wise RS check beats.
func (c *ChipkillController) WriteBlock(a dram.WordAddr, data Block) {
	c.stats.Writes++
	var beats [ChipkillChips]uint64
	copy(beats[:ChipkillDataChips], data[:])
	for b := 0; b < 8; b++ {
		for i := 0; i < ChipkillDataChips; i++ {
			c.lane[i] = uint8(data[i] >> uint(8*b))
		}
		cw := c.rs.EncodeInto(c.lane[:ChipkillDataChips], c.lane[:])
		beats[16] |= uint64(cw[16]) << uint(8*b)
		beats[17] |= uint64(cw[17]) << uint(8*b)
	}
	c.rank.WriteLine(a, beats[:])
}

// ReadBlock decodes lane-wise: one bad chip is corrected, two bad chips
// are (at best) detected.
func (c *ChipkillController) ReadBlock(a dram.WordAddr) (Block, Outcome) {
	c.stats.Reads++
	c.readBuf = c.rank.ReadLineInto(a, c.readBuf)
	var words [ChipkillChips]uint64
	for i := range words {
		words[i] = c.readBuf[i].Data
	}
	var out Block
	outcome := OutcomeClean
	for b := 0; b < 8; b++ {
		for i := 0; i < ChipkillChips; i++ {
			c.lane[i] = uint8(words[i] >> uint(8*b))
		}
		switch c.dec.Decode(c.lane[:]) {
		case ecc.StatusCorrected:
			if outcome == OutcomeClean {
				outcome = OutcomeCorrectedErasure
			}
		case ecc.StatusDetected:
			outcome = OutcomeDUE
		}
		for i := 0; i < ChipkillDataChips; i++ {
			out[i] |= uint64(c.lane[i]) << uint(8*b)
		}
	}
	switch outcome {
	case OutcomeClean:
		c.stats.CleanReads++
	case OutcomeCorrectedErasure:
		c.stats.ErasureCorrections++
	case OutcomeDUE:
		c.stats.DUEs++
	}
	return out, outcome
}

// DoubleChipkillChips is the 36-chip Double-Chipkill gang (§IX).
const DoubleChipkillChips = 36

// DoubleChipkillDataChips carry data; four chips carry check symbols.
const DoubleChipkillDataChips = 32

// WideBlock is the 36-chip access unit (32 data beats).
type WideBlock = [DoubleChipkillDataChips]uint64

// DoubleChipkillController is conventional Double-Chipkill: RS(36,32) per
// byte lane, correcting any two unlocated chip errors.
type DoubleChipkillController struct {
	rank  *dram.Rank
	rs    *ecc.RS
	dec   *ecc.RSDecoder
	stats Stats

	lane    [DoubleChipkillChips]uint8
	readBuf []dram.ReadResult
}

// NewDoubleChipkillController wraps a 36-chip gang with XED disabled.
func NewDoubleChipkillController(rank *dram.Rank) *DoubleChipkillController {
	if rank.Chips() != DoubleChipkillChips {
		panic(fmt.Sprintf("core: Double-Chipkill needs 36 chips, got %d", rank.Chips()))
	}
	rank.SetXEDEnable(false)
	rs := ecc.NewDoubleChipkill()
	return &DoubleChipkillController{rank: rank, rs: rs, dec: rs.NewDecoder()}
}

// Rank exposes the underlying rank.
func (c *DoubleChipkillController) Rank() *dram.Rank { return c.rank }

// Stats returns a copy of the counters.
func (c *DoubleChipkillController) Stats() Stats { return c.stats }

// WriteBlock stores 32 data beats and 4 lane-wise check beats.
func (c *DoubleChipkillController) WriteBlock(a dram.WordAddr, data WideBlock) {
	c.stats.Writes++
	var beats [DoubleChipkillChips]uint64
	copy(beats[:DoubleChipkillDataChips], data[:])
	for b := 0; b < 8; b++ {
		for i := 0; i < DoubleChipkillDataChips; i++ {
			c.lane[i] = uint8(data[i] >> uint(8*b))
		}
		cw := c.rs.EncodeInto(c.lane[:DoubleChipkillDataChips], c.lane[:])
		for j := 0; j < 4; j++ {
			beats[32+j] |= uint64(cw[32+j]) << uint(8*b)
		}
	}
	c.rank.WriteLine(a, beats[:])
}

// ReadBlock corrects up to two bad chips per lane.
func (c *DoubleChipkillController) ReadBlock(a dram.WordAddr) (WideBlock, Outcome) {
	c.stats.Reads++
	c.readBuf = c.rank.ReadLineInto(a, c.readBuf)
	var words [DoubleChipkillChips]uint64
	for i := range words {
		words[i] = c.readBuf[i].Data
	}
	var out WideBlock
	outcome := OutcomeClean
	for b := 0; b < 8; b++ {
		for i := 0; i < DoubleChipkillChips; i++ {
			c.lane[i] = uint8(words[i] >> uint(8*b))
		}
		switch c.dec.Decode(c.lane[:]) {
		case ecc.StatusCorrected:
			if outcome == OutcomeClean {
				outcome = OutcomeCorrectedErasure
			}
		case ecc.StatusDetected:
			outcome = OutcomeDUE
		}
		for i := 0; i < DoubleChipkillDataChips; i++ {
			out[i] |= uint64(c.lane[i]) << uint(8*b)
		}
	}
	switch outcome {
	case OutcomeClean:
		c.stats.CleanReads++
	case OutcomeCorrectedErasure:
		c.stats.ErasureCorrections++
	case OutcomeDUE:
		c.stats.DUEs++
	}
	return out, outcome
}
