package core

import "xedsim/internal/obs"

// Metric plumbing for the functional model. A Controller built with
// WithMetrics mirrors its Stats counters into an obs.Registry with atomic
// adds; without it every handle below is nil and each update is a nil-check
// no-op, so the read hot path carries no enablement branches and stays
// allocation-free either way (pinned by alloc_test.go). Handles are
// pre-resolved once at construction so instrumented paths never touch the
// registry's lock; controllers sharing a registry (a MemorySystem fleet)
// share the counters, which is exactly the fleet-total view TotalStats
// computes from Stats.
type controllerMetrics struct {
	reads              *obs.Counter
	writes             *obs.Counter
	cleanReads         *obs.Counter
	catchWordsSeen     *obs.Counter
	erasureCorrections *obs.Counter
	serialCorrections  *obs.Counter
	diagCorrections    *obs.Counter
	dues               *obs.Counter
	collisions         *obs.Counter
	catchWordUpdates   *obs.Counter
	interLineRuns      *obs.Counter
	intraLineRuns      *obs.Counter
	fctChipMarks       *obs.Counter
}

func newControllerMetrics(r *obs.Registry) controllerMetrics {
	return controllerMetrics{
		reads:              r.Counter("core.reads"),
		writes:             r.Counter("core.writes"),
		cleanReads:         r.Counter("core.reads_clean"),
		catchWordsSeen:     r.Counter("core.catchwords_seen"),
		erasureCorrections: r.Counter("core.corrections_erasure"),
		serialCorrections:  r.Counter("core.corrections_serial"),
		diagCorrections:    r.Counter("core.corrections_diagnosis"),
		dues:               r.Counter("core.dues"),
		collisions:         r.Counter("core.collisions"),
		catchWordUpdates:   r.Counter("core.catchword_updates"),
		interLineRuns:      r.Counter("core.diag_interline_runs"),
		intraLineRuns:      r.Counter("core.diag_intraline_runs"),
		fctChipMarks:       r.Counter("core.fct_chip_marks"),
	}
}

// scrubMetrics mirrors ScrubStats; scrubbers inherit the registry of the
// controller they patrol.
type scrubMetrics struct {
	lines       *obs.Counter
	corrections *obs.Counter
	dues        *obs.Counter
	passes      *obs.Counter
}

func newScrubMetrics(r *obs.Registry) scrubMetrics {
	return scrubMetrics{
		lines:       r.Counter("core.scrub.lines"),
		corrections: r.Counter("core.scrub.corrections"),
		dues:        r.Counter("core.scrub.dues"),
		passes:      r.Counter("core.scrub.passes"),
	}
}
