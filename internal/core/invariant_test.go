package core

import (
	"testing"

	"xedsim/internal/dram"
	"xedsim/internal/ecc"
	"xedsim/internal/simrand"
)

// The paper's central safety claim, stated as a property: with runtime
// faults confined to ONE chip (any granularity, any persistence, any
// count), plus scaling faults anywhere, an XED read returns either the
// correct data or an explicit DUE — UNLESS the on-die code itself was
// silently defeated (a multi-bit pattern aliasing to a valid codeword,
// ≤0.8% of word damage per Table II). Every silently-wrong read must
// trace back to such an on-die miss; absent one, XED never lies.
func TestXEDNeverSilentlyWrongSingleFaultyChip(t *testing.T) {
	rng := simrand.New(0xfa17)
	geom := dram.Geometry{Banks: 2, RowsPerBank: 16, ColsPerRow: 128}

	for trial := 0; trial < 120; trial++ {
		rank := dram.MustNewRank(9, geom, func() ecc.Code64 { return ecc.NewCRC8ATM() })
		ctrl := NewController(rank, rng.Uint64())

		// Scaling faults on every chip at an exaggerated rate.
		for i := 0; i < 9; i++ {
			rank.Chip(i).SetScaling(dram.ScalingProfile{Rate: 5e-4, Seed: rng.Uint64()})
		}

		// Write a working set.
		type entry struct {
			addr dram.WordAddr
			data Line
		}
		var set []entry
		used := map[dram.WordAddr]bool{}
		for len(set) < 24 {
			a := dram.WordAddr{Bank: rng.Intn(geom.Banks), Row: rng.Intn(geom.RowsPerBank), Col: rng.Intn(geom.ColsPerRow)}
			if used[a] {
				continue
			}
			used[a] = true
			l := lineOf(rng)
			ctrl.WriteLine(a, l)
			set = append(set, entry{a, l})
		}

		// Random faults, all in one chip.
		victim := rng.Intn(9)
		nFaults := 1 + rng.Intn(4)
		for f := 0; f < nFaults; f++ {
			transient := rng.Bernoulli(0.4)
			a := set[rng.Intn(len(set))].addr
			var fault dram.Fault
			switch rng.Intn(6) {
			case 0:
				fault = dram.NewBitFault(a, rng.Intn(72), transient)
			case 1:
				mask := rng.Uint64()
				if mask == 0 {
					mask = 0b11
				}
				fault = dram.NewWordFault(a, mask, uint8(rng.Uint64()), transient)
			case 2:
				fault = dram.NewColumnFault(a.Bank, a.Col, transient, rng.Uint64())
			case 3:
				fault = dram.NewRowFault(a.Bank, a.Row, transient, rng.Uint64())
			case 4:
				fault = dram.NewBankFault(a.Bank, transient, rng.Uint64())
			default:
				fault = dram.NewChipFault(transient, rng.Uint64())
			}
			rank.Chip(victim).InjectFault(fault)
		}

		for _, e := range set {
			res := ctrl.ReadLine(e.addr)
			if res.Outcome == OutcomeDUE {
				continue // honest refusal is allowed
			}
			if res.Data != e.data && !anySilentCorrupt(rank) {
				t.Fatalf("trial %d: silent corruption at %v without any on-die miss (victim chip %d, outcome %v)",
					trial, e.addr, victim, res.Outcome)
			}
		}
	}
}

// anySilentCorrupt reports whether any chip's on-die code was silently
// defeated at least once — the only licence for a wrong non-DUE read.
func anySilentCorrupt(rank *dram.Rank) bool {
	for i := 0; i < rank.Chips(); i++ {
		if rank.Chip(i).Stats().SilentCorrupt > 0 {
			return true
		}
	}
	return false
}

// The same property for XED-on-Chipkill with up to TWO faulty chips.
func TestXEDChipkillNeverSilentlyWrongTwoFaultyChips(t *testing.T) {
	rng := simrand.New(0xca5e)
	geom := dram.Geometry{Banks: 2, RowsPerBank: 8, ColsPerRow: 32}

	for trial := 0; trial < 80; trial++ {
		rank := dram.MustNewRank(18, geom, func() ecc.Code64 { return ecc.NewCRC8ATM() })
		ctrl := NewXEDChipkillController(rank, rng.Uint64())

		type entry struct {
			addr dram.WordAddr
			data Block
		}
		var set []entry
		used := map[dram.WordAddr]bool{}
		for len(set) < 12 {
			a := dram.WordAddr{Bank: rng.Intn(geom.Banks), Row: rng.Intn(geom.RowsPerBank), Col: rng.Intn(geom.ColsPerRow)}
			if used[a] {
				continue
			}
			used[a] = true
			b := blockOfRng(rng)
			ctrl.WriteBlock(a, b)
			set = append(set, entry{a, b})
		}

		v1 := rng.Intn(18)
		v2 := rng.Intn(18)
		for _, victim := range []int{v1, v2} {
			a := set[rng.Intn(len(set))].addr
			var fault dram.Fault
			switch rng.Intn(3) {
			case 0:
				fault = dram.NewRowFault(a.Bank, a.Row, rng.Bernoulli(0.3), rng.Uint64())
			case 1:
				fault = dram.NewBankFault(a.Bank, rng.Bernoulli(0.3), rng.Uint64())
			default:
				fault = dram.NewChipFault(rng.Bernoulli(0.3), rng.Uint64())
			}
			rank.Chip(victim).InjectFault(fault)
		}

		for _, e := range set {
			got, outcome := ctrl.ReadBlock(e.addr)
			if outcome == OutcomeDUE {
				continue
			}
			if got != e.data && !anySilentCorrupt(rank) {
				t.Fatalf("trial %d: silent corruption without any on-die miss (victims %d,%d, outcome %v)",
					trial, v1, v2, outcome)
			}
		}
	}
}

// Fault-model consistency: if two faults in the same chip both cover some
// concrete address, Intersects must be true (no false negatives).
func TestCoversImpliesIntersects(t *testing.T) {
	rng := simrand.New(0xc0de)
	geom := dram.Geometry{Banks: 4, RowsPerBank: 8, ColsPerRow: 8}
	mkFault := func() dram.Fault {
		a := dram.WordAddr{Bank: rng.Intn(4), Row: rng.Intn(8), Col: rng.Intn(8)}
		switch rng.Intn(6) {
		case 0:
			return dram.NewBitFault(a, rng.Intn(72), false)
		case 1:
			return dram.NewWordFault(a, 1, 0, false)
		case 2:
			return dram.NewColumnFault(a.Bank, a.Col, false, 1)
		case 3:
			return dram.NewRowFault(a.Bank, a.Row, false, 1)
		case 4:
			return dram.NewBankFault(a.Bank, false, 1)
		default:
			return dram.NewChipFault(false, 1)
		}
	}
	for trial := 0; trial < 3000; trial++ {
		f1, f2 := mkFault(), mkFault()
		shared := false
		for b := 0; b < geom.Banks && !shared; b++ {
			for r := 0; r < geom.RowsPerBank && !shared; r++ {
				for c := 0; c < geom.ColsPerRow && !shared; c++ {
					a := dram.WordAddr{Bank: b, Row: r, Col: c}
					if f1.Covers(a) && f2.Covers(a) {
						shared = true
					}
				}
			}
		}
		if got := f1.Intersects(&f2); got != shared {
			t.Fatalf("trial %d: Intersects=%v but exhaustive overlap=%v\nf1=%+v\nf2=%+v",
				trial, got, shared, f1, f2)
		}
	}
}
