package core

import "xedsim/internal/dram"

// Patrol scrubbing: the background process that walks memory, reads every
// line through the correction hierarchy, and writes the corrected data
// back. Scrubbing bounds how long a transient fault stays live — the
// overlap window of the reliability model (faultsim's ScrubIntervalHours)
// — and rewrites heal transient upsets in the functional model exactly as
// redundant-bit rewrites do in real DRAM.

// Scrubber walks a Controller's rank in address order.
type Scrubber struct {
	ctrl *Controller
	pos  dram.WordAddr

	// sincePass counts lines scrubbed since the last completed pass. A
	// pass completes when every line of the rank has been visited once
	// since the pass began — NOT when the walk wraps through address
	// zero, which for a scrubber that is mid-rank when a pass starts
	// happens after fewer lines than the rank holds.
	sincePass uint64

	stats ScrubStats
	m     scrubMetrics
}

// ScrubStats counts scrubber activity.
type ScrubStats struct {
	LinesScrubbed uint64
	Corrections   uint64
	DUEs          uint64
	// PassesDone counts completed full passes: Banks·Rows·Cols lines
	// visited since the pass began, wherever in the rank it began.
	PassesDone uint64
}

// NewScrubber starts a scrubber at address zero. It inherits the metrics
// registry (if any) of the controller it patrols.
func NewScrubber(ctrl *Controller) *Scrubber {
	return &Scrubber{ctrl: ctrl, m: newScrubMetrics(ctrl.obsReg)}
}

// Stats returns a copy of the counters.
func (s *Scrubber) Stats() ScrubStats { return s.stats }

// Step scrubs the next n lines (read-correct-writeback), wrapping at the
// end of the rank. It returns the number of uncorrectable lines hit.
func (s *Scrubber) Step(n int) int {
	geom := s.ctrl.Rank().Geometry()
	total := uint64(geom.Banks * geom.RowsPerBank * geom.ColsPerRow)
	dues := 0
	for i := 0; i < n; i++ {
		res := s.ctrl.ReadLine(s.pos)
		switch res.Outcome {
		case OutcomeDUE:
			s.stats.DUEs++
			s.m.dues.Inc()
			dues++
			// Data is unrecoverable; leave the line for the OS to
			// retire rather than laundering bad data.
		case OutcomeClean:
			// Nothing to heal; skip the write-back.
		default:
			s.stats.Corrections++
			s.m.corrections.Inc()
			s.ctrl.WriteLine(s.pos, res.Data)
		}
		s.stats.LinesScrubbed++
		s.m.lines.Inc()
		s.sincePass++
		if s.sincePass == total {
			s.stats.PassesDone++
			s.m.passes.Inc()
			s.sincePass = 0
		}
		s.advance(geom)
	}
	return dues
}

// FullPass scrubs one complete wrap from the scrubber's current position —
// every line of the rank exactly once — and returns the DUE count. The
// wrap is itself the pass: the boundary realigns to the current position,
// so any partial progress from earlier Step calls is discarded rather than
// letting the next address-zero wrap credit a pass that visited fewer than
// rank-size lines since the last one.
func (s *Scrubber) FullPass() int {
	s.sincePass = 0
	geom := s.ctrl.Rank().Geometry()
	lines := geom.Banks * geom.RowsPerBank * geom.ColsPerRow
	return s.Step(lines)
}

func (s *Scrubber) advance(geom dram.Geometry) {
	s.pos.Col++
	if s.pos.Col < geom.ColsPerRow {
		return
	}
	s.pos.Col = 0
	s.pos.Row++
	if s.pos.Row < geom.RowsPerBank {
		return
	}
	s.pos.Row = 0
	s.pos.Bank++
	if s.pos.Bank < geom.Banks {
		return
	}
	s.pos.Bank = 0
}
