package core

import "xedsim/internal/dram"

// Patrol scrubbing: the background process that walks memory, reads every
// line through the correction hierarchy, and writes the corrected data
// back. Scrubbing bounds how long a transient fault stays live — the
// overlap window of the reliability model (faultsim's ScrubIntervalHours)
// — and rewrites heal transient upsets in the functional model exactly as
// redundant-bit rewrites do in real DRAM.

// Scrubber walks a Controller's rank in address order.
type Scrubber struct {
	ctrl *Controller
	pos  dram.WordAddr

	stats ScrubStats
}

// ScrubStats counts scrubber activity.
type ScrubStats struct {
	LinesScrubbed uint64
	Corrections   uint64
	DUEs          uint64
	PassesDone    uint64
}

// NewScrubber starts a scrubber at address zero.
func NewScrubber(ctrl *Controller) *Scrubber {
	return &Scrubber{ctrl: ctrl}
}

// Stats returns a copy of the counters.
func (s *Scrubber) Stats() ScrubStats { return s.stats }

// Step scrubs the next n lines (read-correct-writeback), wrapping at the
// end of the rank. It returns the number of uncorrectable lines hit.
func (s *Scrubber) Step(n int) int {
	geom := s.ctrl.Rank().Geometry()
	dues := 0
	for i := 0; i < n; i++ {
		res := s.ctrl.ReadLine(s.pos)
		switch res.Outcome {
		case OutcomeDUE:
			s.stats.DUEs++
			dues++
			// Data is unrecoverable; leave the line for the OS to
			// retire rather than laundering bad data.
		case OutcomeClean:
			// Nothing to heal; skip the write-back.
		default:
			s.stats.Corrections++
			s.ctrl.WriteLine(s.pos, res.Data)
		}
		s.stats.LinesScrubbed++
		s.advance(geom)
	}
	return dues
}

// FullPass scrubs the entire rank once and returns the DUE count.
func (s *Scrubber) FullPass() int {
	geom := s.ctrl.Rank().Geometry()
	lines := geom.Banks * geom.RowsPerBank * geom.ColsPerRow
	return s.Step(lines)
}

func (s *Scrubber) advance(geom dram.Geometry) {
	s.pos.Col++
	if s.pos.Col < geom.ColsPerRow {
		return
	}
	s.pos.Col = 0
	s.pos.Row++
	if s.pos.Row < geom.RowsPerBank {
		return
	}
	s.pos.Row = 0
	s.pos.Bank++
	if s.pos.Bank < geom.Banks {
		return
	}
	s.pos.Bank = 0
	s.stats.PassesDone++
}
