package core

import (
	"fmt"

	"xedsim/internal/dram"
)

// RAS event log: the machine-readable record a health daemon or OS memory
// manager consumes — which chip erred where, what the controller did about
// it, and which lines are candidates for page retirement. Real servers
// surface exactly this through EDAC/MCA; the functional model keeps it as
// a bounded ring so long campaigns cannot grow without limit.

// EventKind classifies one logged RAS event.
type EventKind int

const (
	// EventErasureCorrection: a catch-word named a chip and parity
	// rebuilt its beat.
	EventErasureCorrection EventKind = iota
	// EventSerialMode: multiple catch-words triggered the §VII-B
	// quiesce/re-read dance.
	EventSerialMode
	// EventDiagnosis: §VI diagnosis ran and convicted a chip.
	EventDiagnosis
	// EventDUE: a detected uncorrectable error — the line should be
	// retired and the job checkpoint-restored.
	EventDUE
	// EventCollision: legitimate data matched a catch-word; the
	// catch-word was regenerated (§V-D).
	EventCollision
	// EventChipMarked: the FCT saturated and permanently marked a chip
	// (§VI-A) — a service call.
	EventChipMarked
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventErasureCorrection:
		return "erasure-correction"
	case EventSerialMode:
		return "serial-mode"
	case EventDiagnosis:
		return "diagnosis"
	case EventDUE:
		return "DUE"
	case EventCollision:
		return "collision"
	case EventChipMarked:
		return "chip-marked"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one RAS log entry.
type Event struct {
	// Seq is a monotonically increasing sequence number (survives ring
	// eviction, so gaps are detectable).
	Seq uint64
	// Kind classifies the event.
	Kind EventKind
	// Addr is the affected line (zero Addr for chip-scope events).
	Addr dram.WordAddr
	// Chip is the implicated chip, or -1.
	Chip int
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("#%d %s chip=%d %v", e.Seq, e.Kind, e.Chip, e.Addr)
}

// eventLog is a fixed-capacity ring.
type eventLog struct {
	buf  []Event
	next uint64 // total events ever appended
}

// defaultEventLogCapacity bounds controller memory for long campaigns.
const defaultEventLogCapacity = 1024

func newEventLog(capacity int) *eventLog {
	if capacity <= 0 {
		capacity = defaultEventLogCapacity
	}
	return &eventLog{buf: make([]Event, 0, capacity)}
}

func (l *eventLog) append(kind EventKind, addr dram.WordAddr, chip int) {
	e := Event{Seq: l.next, Kind: kind, Addr: addr, Chip: chip}
	l.next++
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
		return
	}
	copy(l.buf, l.buf[1:])
	l.buf[len(l.buf)-1] = e
}

// snapshot returns the retained events, oldest first.
func (l *eventLog) snapshot() []Event {
	out := make([]Event, len(l.buf))
	copy(out, l.buf)
	return out
}

// Events returns the controller's retained RAS log, oldest first. The ring
// keeps the most recent entries; Seq gaps indicate eviction.
func (c *Controller) Events() []Event { return c.events.snapshot() }

// TotalEvents reports how many events were ever logged (including evicted
// ones).
func (c *Controller) TotalEvents() uint64 { return c.events.next }
