package core

import (
	"testing"

	"xedsim/internal/dram"
	"xedsim/internal/ecc"
	"xedsim/internal/simrand"
)

func newXEDChipkill(t testing.TB) *XEDChipkillController {
	t.Helper()
	rank := dram.MustNewRank(ChipkillChips, testGeom(), func() ecc.Code64 { return ecc.NewCRC8ATM() })
	return NewXEDChipkillController(rank, 0xbeef)
}

func blockOfRng(rng *simrand.Source) Block {
	var b Block
	for i := range b {
		b[i] = rng.Uint64()
	}
	return b
}

func TestXEDChipkillCleanRoundTrip(t *testing.T) {
	c := newXEDChipkill(t)
	rng := simrand.New(30)
	for trial := 0; trial < 50; trial++ {
		a := dram.WordAddr{Bank: rng.Intn(4), Row: rng.Intn(32), Col: rng.Intn(128)}
		data := blockOfRng(rng)
		c.WriteBlock(a, data)
		got, outcome := c.ReadBlock(a)
		if outcome != OutcomeClean || got != data {
			t.Fatalf("trial %d: outcome %v", trial, outcome)
		}
	}
}

func TestXEDChipkillSurvivesTwoChipFailures(t *testing.T) {
	// §IX headline: Double-Chipkill-level correction on Single-Chipkill
	// hardware, for any pair of chips including the check chips.
	pairs := [][2]int{{0, 1}, {3, 9}, {15, 16}, {16, 17}, {5, 17}}
	for _, pair := range pairs {
		c := newXEDChipkill(t)
		rng := simrand.New(uint64(31 + pair[0]))
		a := dram.WordAddr{Bank: 1, Row: 5, Col: 9}
		data := blockOfRng(rng)
		c.WriteBlock(a, data)
		c.Rank().InjectChipFailure(pair[0], dram.NewChipFault(false, 7))
		c.Rank().InjectChipFailure(pair[1], dram.NewChipFault(false, 8))
		got, outcome := c.ReadBlock(a)
		if outcome != OutcomeCorrectedErasure {
			t.Fatalf("pair %v: outcome %v", pair, outcome)
		}
		if got != data {
			t.Fatalf("pair %v: data mismatch", pair)
		}
	}
}

func TestXEDChipkillThreeChipFailuresNotSurvivable(t *testing.T) {
	// Beyond the design point: three concurrent chip failures exceed
	// two check symbols no matter how they are located. The system must
	// fail — as a DUE, or as an SDC when a chip's on-die engine
	// mis-corrects its dense damage into a valid wrong codeword and the
	// two erasures consume all redundancy. It must never return correct
	// data (impossible) nor classify the block as clean.
	for seed := uint64(0); seed < 8; seed++ {
		c := newXEDChipkill(t)
		rng := simrand.New(33 + seed)
		a := dram.WordAddr{Bank: 0, Row: 2, Col: 4}
		data := blockOfRng(rng)
		c.WriteBlock(a, data)
		for _, chip := range []int{2, 7, 11} {
			c.Rank().InjectChipFailure(chip, dram.NewChipFault(false, uint64(chip)+seed*100))
		}
		got, outcome := c.ReadBlock(a)
		if outcome == OutcomeClean {
			t.Fatalf("seed %d: three chip failures read as clean", seed)
		}
		if got == data {
			t.Fatalf("seed %d: three chip failures 'corrected' to true data?!", seed)
		}
	}
}

func TestXEDChipkillScalingFaultsSerialMode(t *testing.T) {
	// Scaling faults in more chips than the erasure budget: serial mode
	// lets each chip's on-die engine repair its own single-bit fault.
	c := newXEDChipkill(t)
	rng := simrand.New(34)
	a := dram.WordAddr{Bank: 2, Row: 8, Col: 16}
	data := blockOfRng(rng)
	c.WriteBlock(a, data)
	for _, chip := range []int{1, 4, 9, 13} {
		c.Rank().Chip(chip).InjectFault(dram.NewBitFault(a, chip*3, false))
	}
	got, outcome := c.ReadBlock(a)
	if outcome != OutcomeCorrectedSerial {
		t.Fatalf("outcome %v, want serial", outcome)
	}
	if got != data {
		t.Fatal("serial-mode data mismatch")
	}
}

func TestXEDChipkillUnlocatedSilentChipError(t *testing.T) {
	// A silent-on-die word error with no catch-word: the RS code must
	// locate and correct it (classic Chipkill behaviour retained).
	c := newXEDChipkill(t)
	rng := simrand.New(35)
	a := dram.WordAddr{Bank: 3, Row: 1, Col: 2}
	data := blockOfRng(rng)
	c.WriteBlock(a, data)
	c.Rank().Chip(6).InjectFault(silentWordFault(a, false))
	got, outcome := c.ReadBlock(a)
	if outcome != OutcomeCorrectedDiagnosis {
		t.Fatalf("outcome %v, want corrected-diagnosis", outcome)
	}
	if got != data {
		t.Fatal("unlocated correction mismatch")
	}
}

func TestXEDChipkillCollision(t *testing.T) {
	c := newXEDChipkill(t)
	a := dram.WordAddr{Bank: 0, Row: 0, Col: 1}
	var data Block
	data[7] = c.catchWords[7]
	c.WriteBlock(a, data)
	got, outcome := c.ReadBlock(a)
	if outcome != OutcomeCorrectedErasure || got != data {
		t.Fatalf("collision read: outcome %v", outcome)
	}
	if c.Stats().Collisions != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
	// Regenerated catch-word: same line now reads clean.
	got, outcome = c.ReadBlock(a)
	if outcome != OutcomeClean || got != data {
		t.Fatalf("post-collision read: outcome %v", outcome)
	}
}

func TestXEDChipkillNeeds18Chips(t *testing.T) {
	rank := dram.MustNewRank(9, testGeom(), func() ecc.Code64 { return ecc.NewCRC8ATM() })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewXEDChipkillController(rank, 1)
}

func BenchmarkXEDChipkillReadClean(b *testing.B) {
	c := newXEDChipkill(b)
	a := dram.WordAddr{Bank: 0, Row: 0, Col: 0}
	c.WriteBlock(a, Block{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ReadBlock(a)
	}
}

func BenchmarkXEDChipkillTwoErasures(b *testing.B) {
	c := newXEDChipkill(b)
	a := dram.WordAddr{Bank: 0, Row: 0, Col: 0}
	c.WriteBlock(a, Block{})
	c.Rank().InjectChipFailure(3, dram.NewChipFault(false, 1))
	c.Rank().InjectChipFailure(9, dram.NewChipFault(false, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ReadBlock(a)
	}
}
