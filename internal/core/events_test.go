package core

import (
	"strings"
	"testing"

	"xedsim/internal/dram"
	"xedsim/internal/simrand"
)

func TestEventLogRecordsCorrectionFlow(t *testing.T) {
	c := newXED(t)
	rng := simrand.New(0xe1)
	a := dram.WordAddr{Bank: 0, Row: 1, Col: 2}
	data := lineOf(rng)
	c.WriteLine(a, data)
	c.Rank().InjectChipFailure(3, dram.NewChipFault(false, 4))
	c.ReadLine(a)
	c.ReadLine(a)

	evs := c.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	for i, e := range evs {
		if e.Kind != EventErasureCorrection || e.Chip != 3 || e.Addr != a {
			t.Fatalf("event %d = %+v", i, e)
		}
		if e.Seq != uint64(i) {
			t.Fatalf("seq %d = %d", i, e.Seq)
		}
		if !strings.Contains(e.String(), "erasure-correction") {
			t.Fatalf("event string %q", e.String())
		}
	}
	if c.TotalEvents() != 2 {
		t.Fatalf("total = %d", c.TotalEvents())
	}
}

func TestEventLogKindsAcrossPaths(t *testing.T) {
	c := newXED(t)
	rng := simrand.New(0xe2)

	// Collision.
	a1 := dram.WordAddr{Bank: 0, Row: 2, Col: 3}
	var data Line
	data[4] = c.CatchWord(4)
	c.WriteLine(a1, data)
	c.ReadLine(a1)

	// Serial mode.
	a2 := dram.WordAddr{Bank: 1, Row: 3, Col: 4}
	c.WriteLine(a2, lineOf(rng))
	c.Rank().Chip(1).InjectFault(dram.NewBitFault(a2, 5, false))
	c.Rank().Chip(6).InjectFault(dram.NewBitFault(a2, 9, false))
	c.ReadLine(a2)

	// DUE.
	a3 := dram.WordAddr{Bank: 2, Row: 4, Col: 5}
	c.WriteLine(a3, lineOf(rng))
	c.Rank().Chip(2).InjectFault(silentWordFault(a3, true))
	c.ReadLine(a3)

	kinds := map[EventKind]bool{}
	for _, e := range c.Events() {
		kinds[e.Kind] = true
	}
	for _, want := range []EventKind{EventErasureCorrection, EventCollision, EventSerialMode, EventDUE} {
		if !kinds[want] {
			t.Fatalf("missing %v in event log: %v", want, c.Events())
		}
	}
}

func TestEventLogRingEviction(t *testing.T) {
	l := newEventLog(4)
	for i := 0; i < 10; i++ {
		l.append(EventDUE, dram.WordAddr{Col: i}, -1)
	}
	evs := l.snapshot()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	if evs[0].Seq != 6 || evs[3].Seq != 9 {
		t.Fatalf("ring kept wrong window: %+v", evs)
	}
	if l.next != 10 {
		t.Fatalf("total = %d", l.next)
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := EventErasureCorrection; k <= EventChipMarked; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "EventKind") {
			t.Fatalf("kind %d has bad string %q", int(k), s)
		}
	}
}
