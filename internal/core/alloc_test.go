package core

import (
	"testing"

	"xedsim/internal/dram"
	"xedsim/internal/obs"
)

// Allocation regression tests for the controller hot paths: after the
// scratch-buffer work every steady-state read — clean or correcting — must
// run without touching the heap. testing.AllocsPerRun averages over many
// runs, so one-time warm-up (read buffers, event ring growth) is done
// before measuring.

func TestXEDReadPathAllocFree(t *testing.T) {
	c := newXED(t)
	a := dram.WordAddr{Bank: 1, Row: 3, Col: 7}
	c.WriteLine(a, Line{1, 2, 3, 4, 5, 6, 7, 8})

	clean := func() {
		if res := c.ReadLine(a); res.Outcome != OutcomeClean {
			t.Fatalf("clean read: %v", res.Outcome)
		}
	}
	clean()
	if allocs := testing.AllocsPerRun(200, clean); allocs != 0 {
		t.Errorf("clean read path: %v allocs/op, want 0", allocs)
	}

	// Whole-chip failure: every read takes the §V-C single-erasure path
	// (catch-word + RAID-3 reconstruction).
	c.Rank().InjectChipFailure(3, dram.NewChipFault(false, 42))
	erasure := func() {
		res := c.ReadLine(a)
		if res.Outcome != OutcomeCorrectedErasure {
			t.Fatalf("erasure read: %v", res.Outcome)
		}
		if len(res.FaultyChips) != 1 || res.FaultyChips[0] != 3 {
			t.Fatalf("erasure read named chips %v", res.FaultyChips)
		}
	}
	erasure()
	if allocs := testing.AllocsPerRun(200, erasure); allocs != 0 {
		t.Errorf("single-erasure read path: %v allocs/op, want 0", allocs)
	}
}

// TestXEDInstrumentedReadPathAllocFree pins the obs contract: attaching a
// metrics registry adds atomic updates to the read path but no heap
// allocations, clean and erasure-correcting reads alike.
func TestXEDInstrumentedReadPathAllocFree(t *testing.T) {
	reg := obs.NewRegistry()
	c := newXED(t, WithMetrics(reg))
	a := dram.WordAddr{Bank: 1, Row: 3, Col: 7}
	c.WriteLine(a, Line{1, 2, 3, 4, 5, 6, 7, 8})

	clean := func() {
		if res := c.ReadLine(a); res.Outcome != OutcomeClean {
			t.Fatalf("clean read: %v", res.Outcome)
		}
	}
	clean()
	if allocs := testing.AllocsPerRun(200, clean); allocs != 0 {
		t.Errorf("instrumented clean read path: %v allocs/op, want 0", allocs)
	}

	c.Rank().InjectChipFailure(3, dram.NewChipFault(false, 42))
	erasure := func() {
		if res := c.ReadLine(a); res.Outcome != OutcomeCorrectedErasure {
			t.Fatalf("erasure read: %v", res.Outcome)
		}
	}
	erasure()
	if allocs := testing.AllocsPerRun(200, erasure); allocs != 0 {
		t.Errorf("instrumented erasure read path: %v allocs/op, want 0", allocs)
	}

	snap := reg.Snapshot()
	if snap.Counters["core.reads"] == 0 || snap.Counters["core.corrections_erasure"] == 0 {
		t.Fatalf("instrumentation recorded nothing: %+v", snap.Counters)
	}
}

func TestXEDChipkillReadPathAllocFree(t *testing.T) {
	c := newXEDChipkill(t)
	a := dram.WordAddr{Bank: 0, Row: 2, Col: 5}
	var data Block
	for i := range data {
		data[i] = uint64(i) * 0x0101010101010101
	}
	c.WriteBlock(a, data)

	clean := func() {
		if _, outcome := c.ReadBlock(a); outcome != OutcomeClean {
			t.Fatalf("clean read: %v", outcome)
		}
	}
	clean()
	if allocs := testing.AllocsPerRun(200, clean); allocs != 0 {
		t.Errorf("clean read path: %v allocs/op, want 0", allocs)
	}

	c.Rank().InjectChipFailure(3, dram.NewChipFault(false, 7))
	c.Rank().InjectChipFailure(9, dram.NewChipFault(false, 8))
	erasures := func() {
		got, outcome := c.ReadBlock(a)
		if outcome != OutcomeCorrectedErasure {
			t.Fatalf("erasure read: %v", outcome)
		}
		if got != data {
			t.Fatal("erasure read returned wrong data")
		}
	}
	erasures()
	if allocs := testing.AllocsPerRun(200, erasures); allocs != 0 {
		t.Errorf("two-erasure read path: %v allocs/op, want 0", allocs)
	}
}

func TestBaselineReadPathsAllocFree(t *testing.T) {
	t.Run("ECCDIMM", func(t *testing.T) {
		c := newECCDIMM(t)
		a := dram.WordAddr{Bank: 0, Row: 1, Col: 2}
		c.WriteLine(a, Line{9, 8, 7, 6, 5, 4, 3, 2})
		op := func() {
			if _, outcome := c.ReadLine(a); outcome != OutcomeClean {
				t.Fatalf("read: %v", outcome)
			}
		}
		op()
		if allocs := testing.AllocsPerRun(200, op); allocs != 0 {
			t.Errorf("%v allocs/op, want 0", allocs)
		}
	})
	t.Run("Chipkill", func(t *testing.T) {
		c := newPlainChipkill(t)
		a := dram.WordAddr{Bank: 0, Row: 1, Col: 2}
		c.WriteBlock(a, Block{1, 2, 3})
		c.Rank().InjectChipFailure(5, dram.NewChipFault(false, 11))
		op := func() {
			if _, outcome := c.ReadBlock(a); outcome != OutcomeCorrectedErasure {
				t.Fatalf("read: %v", outcome)
			}
		}
		op()
		if allocs := testing.AllocsPerRun(200, op); allocs != 0 {
			t.Errorf("%v allocs/op, want 0", allocs)
		}
	})
	t.Run("DoubleChipkill", func(t *testing.T) {
		c := newDoubleChipkill(t)
		a := dram.WordAddr{Bank: 0, Row: 1, Col: 2}
		c.WriteBlock(a, WideBlock{1, 2, 3})
		c.Rank().InjectChipFailure(7, dram.NewChipFault(false, 12))
		c.Rank().InjectChipFailure(20, dram.NewChipFault(false, 13))
		op := func() {
			if _, outcome := c.ReadBlock(a); outcome != OutcomeCorrectedErasure {
				t.Fatalf("read: %v", outcome)
			}
		}
		op()
		if allocs := testing.AllocsPerRun(200, op); allocs != 0 {
			t.Errorf("%v allocs/op, want 0", allocs)
		}
	})
}

func TestWritePathsAllocFree(t *testing.T) {
	xed := newXED(t)
	ck := newPlainChipkill(t)
	a := dram.WordAddr{Bank: 2, Row: 4, Col: 6}
	cases := []struct {
		name string
		op   func()
	}{
		{"XED", func() { xed.WriteLine(a, Line{1, 2, 3}) }},
		{"Chipkill", func() { ck.WriteBlock(a, Block{4, 5, 6}) }},
	}
	for _, tc := range cases {
		tc.op()
		if allocs := testing.AllocsPerRun(200, tc.op); allocs != 0 {
			t.Errorf("%s write path: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}
