package core

import "testing"

func TestFCTLookupMissAndHit(t *testing.T) {
	f := NewFCT(4)
	if f.Lookup(0, 1) != -1 {
		t.Fatal("empty FCT should miss")
	}
	f.Insert(0, 1, 3)
	if f.Lookup(0, 1) != 3 {
		t.Fatal("expected hit")
	}
	if f.Lookup(0, 2) != -1 || f.Lookup(1, 1) != -1 {
		t.Fatal("different row/bank must miss")
	}
}

func TestFCTUpdateExistingRow(t *testing.T) {
	f := NewFCT(4)
	f.Insert(0, 1, 3)
	f.Insert(0, 1, 5)
	if f.Lookup(0, 1) != 5 {
		t.Fatal("entry not updated")
	}
	if f.Len() != 1 {
		t.Fatalf("len = %d, want 1", f.Len())
	}
}

func TestFCTSaturationMarksChip(t *testing.T) {
	f := NewFCT(4)
	for row := 0; row < 3; row++ {
		if f.Insert(0, row, 2) {
			t.Fatalf("marked too early at row %d", row)
		}
	}
	if !f.Insert(0, 3, 2) {
		t.Fatal("4th same-chip entry should mark the chip")
	}
	if f.MarkedChip() != 2 {
		t.Fatalf("marked chip = %d", f.MarkedChip())
	}
	// Every row now hits.
	if f.Lookup(7, 999) != 2 {
		t.Fatal("marked chip should match all rows")
	}
	// Further inserts are no-ops.
	if f.Insert(0, 50, 4) {
		t.Fatal("insert after marking should not re-mark")
	}
}

func TestFCTMixedChipsDoNotMark(t *testing.T) {
	f := NewFCT(4)
	for row := 0; row < 4; row++ {
		chip := row % 2
		if f.Insert(0, row, chip) {
			t.Fatal("mixed chips must not mark")
		}
	}
	if f.MarkedChip() != -1 {
		t.Fatal("no chip should be marked")
	}
}

func TestFCTFIFOReplacement(t *testing.T) {
	// Mixed chips so the unanimity rule does not fire; the oldest entry
	// is evicted FIFO.
	f := NewFCT(2)
	f.Insert(0, 0, 1)
	f.Insert(0, 1, 2)
	f.Insert(0, 2, 3) // evicts row 0
	if f.MarkedChip() != -1 {
		t.Fatal("mixed chips must not mark")
	}
	if f.Lookup(0, 0) != -1 {
		t.Fatal("row 0 should have been evicted")
	}
	if f.Lookup(0, 2) != 3 || f.Lookup(0, 1) != 2 {
		t.Fatal("rows 1 and 2 should be present")
	}
}

func TestFCTReset(t *testing.T) {
	f := NewFCT(2)
	f.Insert(0, 0, 1)
	f.Insert(0, 1, 1)
	f.Reset()
	if f.MarkedChip() != -1 || f.Len() != 0 || f.Lookup(0, 0) != -1 {
		t.Fatal("reset did not clear state")
	}
}

func TestFCTMinimumCapacity(t *testing.T) {
	f := NewFCT(0)
	if f.Insert(0, 0, 1) != true {
		t.Fatal("capacity-1 FCT marks on first insert")
	}
}
