package core

import (
	"fmt"

	"xedsim/internal/dram"
	"xedsim/internal/ecc"
	"xedsim/internal/obs"
	"xedsim/internal/simrand"
)

// DataChips is the number of data chips on the x8 ECC-DIMM; chip 8 is the
// parity chip.
const DataChips = 8

// parityChip is the index of the RAID-3 parity chip.
const parityChip = 8

// Line is one 64-byte cache line as eight 64-bit beats, beat i supplied by
// data chip i.
type Line = [8]uint64

// Controller is the XED memory controller for one rank of a 9-chip
// ECC-DIMM (§V). It owns the catch-word registry, performs RAID-3
// reconstruction, falls back to serial-mode reads for multi-catch-word
// lines, and runs fault diagnosis when the on-die code misses an error.
type Controller struct {
	rank       *dram.Rank
	catchWords [DataChips + 1]uint64
	rng        *simrand.Source
	fct        *FCT
	stats      Stats

	// interLineThreshold is the fraction of faulty lines in a row that
	// convicts a chip (§VI-A uses 10%).
	interLineThreshold float64

	// events is the bounded RAS log (see events.go).
	events *eventLog

	// obsReg and m mirror Stats into an obs registry when WithMetrics is
	// set; every handle is a nil no-op otherwise (see metrics.go).
	obsReg *obs.Registry
	m      controllerMetrics

	// Read-path scratch, reused across calls so steady-state reads do not
	// allocate. ReadResult.FaultyChips aliases these buffers.
	readBuf    []dram.ReadResult
	flaggedBuf [DataChips + 1]int
}

// Option customises a Controller.
type Option func(*Controller)

// WithFCTEntries sets the Faulty-row Chip Tracker capacity.
func WithFCTEntries(n int) Option {
	return func(c *Controller) { c.fct = NewFCT(n) }
}

// WithInterLineThreshold overrides the 10% conviction threshold; the
// ablation benches sweep this.
func WithInterLineThreshold(t float64) Option {
	return func(c *Controller) { c.interLineThreshold = t }
}

// WithMetrics mirrors the controller's activity counters into r under
// "core.*" names (and "core.scrub.*" for scrubbers attached to it). A nil
// registry leaves the controller uninstrumented.
func WithMetrics(r *obs.Registry) Option {
	return func(c *Controller) { c.obsReg = r }
}

// NewController takes ownership of a 9-chip rank: it programs a distinct
// random catch-word into every chip over the MRS interface and sets
// XED-Enable (§V-A boot flow). seed drives catch-word generation.
func NewController(rank *dram.Rank, seed uint64, opts ...Option) *Controller {
	if rank.Chips() != DataChips+1 {
		panic(fmt.Sprintf("core: XED needs a 9-chip ECC-DIMM, got %d chips", rank.Chips()))
	}
	c := &Controller{
		rank:               rank,
		rng:                simrand.New(seed),
		fct:                NewFCT(DefaultFCTEntries),
		interLineThreshold: 0.10,
		events:             newEventLog(0),
	}
	for _, o := range opts {
		o(c)
	}
	c.m = newControllerMetrics(c.obsReg)
	for i := 0; i <= DataChips; i++ {
		c.catchWords[i] = c.rng.Uint64()
		rank.Chip(i).SetCatchWord(c.catchWords[i])
	}
	rank.SetXEDEnable(true)
	return c
}

// Rank exposes the underlying rank (fault injection in tests/examples).
func (c *Controller) Rank() *dram.Rank { return c.rank }

// Stats returns a copy of the activity counters.
func (c *Controller) Stats() Stats { return c.stats }

// CatchWord returns the catch-word currently programmed for chip i.
func (c *Controller) CatchWord(i int) uint64 { return c.catchWords[i] }

// FCT exposes the tracker for inspection.
func (c *Controller) FCT() *FCT { return c.fct }

// WriteLine stores a cache line: the eight data beats go to chips 0..7 and
// their XOR parity to chip 8 (Equation 1).
func (c *Controller) WriteLine(a dram.WordAddr, data Line) {
	c.stats.Writes++
	c.m.writes.Inc()
	var beats [DataChips + 1]uint64
	copy(beats[:DataChips], data[:])
	beats[parityChip] = ecc.Parity(data[:])
	c.rank.WriteLine(a, beats[:])
}

// ReadLine performs one XED read with the full correction hierarchy of
// §V-§VII. The returned data is best-effort even for OutcomeDUE.
func (c *Controller) ReadLine(a dram.WordAddr) ReadResult {
	c.stats.Reads++
	c.m.reads.Inc()
	c.readBuf = c.rank.ReadLineInto(a, c.readBuf)
	raw := c.readBuf

	var words [DataChips + 1]uint64
	flagged := c.flaggedBuf[:0]
	for i := range words {
		words[i] = raw[i].Data
		if words[i] == c.catchWords[i] {
			flagged = append(flagged, i)
		}
	}
	c.stats.CatchWordsSeen += uint64(len(flagged))
	if len(flagged) > 0 {
		c.m.catchWordsSeen.Add(uint64(len(flagged)))
	}

	switch len(flagged) {
	case 0:
		if ecc.CheckParity(words[:DataChips], words[parityChip]) {
			c.stats.CleanReads++
			c.m.cleanReads.Inc()
			return ReadResult{Data: toLine(words), Outcome: OutcomeClean}
		}
		// Parity mismatch with no catch-word: the on-die code missed
		// a multi-bit error (the 0.8% case, §VI) — or the parity chip
		// itself corrupted silently. Diagnose.
		return c.diagnoseAndCorrect(a, nil)
	case 1:
		return c.correctSingleErasure(a, words, flagged[0])
	default:
		return c.serialModeCorrect(a, words, flagged)
	}
}

// correctSingleErasure is the §V-C fast path: one catch-word, rebuilt from
// parity; plus §V-D collision detection.
//
// Residual SDC channel: the erasure consumes the parity word, so if a
// *different* chip's damage escaped its on-die code on this very line
// (probability ≤0.8% per Table II), the reconstruction is silently wrong.
// This coincidence term is second-order in the fault rates and sits below
// the Table IV SDC row; the invariant tests pin that silent corruption
// can only ever originate from such an on-die miss.
func (c *Controller) correctSingleErasure(a dram.WordAddr, words [DataChips + 1]uint64, k int) ReadResult {
	res := ReadResult{Outcome: OutcomeCorrectedErasure, FaultyChips: c.faultyOne(k)}
	c.events.append(EventErasureCorrection, a, k)
	if k == parityChip {
		// The parity chip erred; the data beats are intact.
		res.Data = toLine(words)
	} else {
		rebuilt := ecc.Reconstruct(words[:DataChips], words[parityChip], k)
		if rebuilt == c.catchWords[k] {
			// §V-D1: the "erased" value reconstructs to the catch-word
			// itself — a data/catch-word collision, not a fault. The
			// data is correct; regenerate this chip's catch-word so
			// the expected time between collisions stays ~3.2M years.
			res.Collision = true
			c.stats.Collisions++
			c.m.collisions.Inc()
			c.events.append(EventCollision, a, k)
			c.regenerateCatchWord(k)
		}
		words[k] = rebuilt
		res.Data = toLine(words)
	}
	c.stats.ErasureCorrections++
	c.m.erasureCorrections.Inc()
	return res
}

// serialModeCorrect handles multiple catch-words (§VII-B) with the real
// MRS dance: the controller quiesces the channel, broadcasts XED-Enable=0,
// re-reads the line (each chip's on-die engine ships its best-effort
// corrected data), restores XED-Enable, and verifies against DIMM parity.
// Pure scaling faults are single-bit and always correct on-die, so parity
// then holds; a residual mismatch means a runtime failure is hiding among
// the catch-words, which §VII-C resolves through fault diagnosis. Note the
// controller never sees per-chip decode status — only bus data and parity.
func (c *Controller) serialModeCorrect(a dram.WordAddr, _ [DataChips + 1]uint64, flagged []int) ReadResult {
	c.rank.MRSBroadcast(dram.MRXEDEnable, 0)
	c.readBuf = c.rank.ReadLineInto(a, c.readBuf)
	raw := c.readBuf
	c.rank.MRSBroadcast(dram.MRXEDEnable, 1)

	var words [DataChips + 1]uint64
	for i := range words {
		words[i] = raw[i].Data
	}
	if ecc.CheckParity(words[:DataChips], words[parityChip]) {
		c.stats.SerialCorrections++
		c.m.serialCorrections.Inc()
		c.events.append(EventSerialMode, a, -1)
		return ReadResult{Data: toLine(words), Outcome: OutcomeCorrectedSerial, FaultyChips: flagged}
	}
	// A chip beyond on-die repair is hiding among the catch-words:
	// identify it with §VI diagnosis and rebuild from parity (§VII-C).
	return c.diagnoseAndCorrect(a, words[:])
}

// faultyOne returns a single-chip FaultyChips slice backed by controller
// scratch — valid until the next operation on this controller.
func (c *Controller) faultyOne(k int) []int {
	c.flaggedBuf[0] = k
	return c.flaggedBuf[:1]
}

// regenerateCatchWord assigns chip k a fresh random catch-word over MRS
// (§V-D3). No data or ECC rewrite is needed.
func (c *Controller) regenerateCatchWord(k int) {
	next := c.rng.Uint64()
	for next == c.catchWords[k] {
		next = c.rng.Uint64()
	}
	c.catchWords[k] = next
	c.rank.Chip(k).SetCatchWord(next)
	c.stats.CatchWordUpdates++
	c.m.catchWordUpdates.Inc()
}

func toLine(words [DataChips + 1]uint64) Line {
	var l Line
	copy(l[:], words[:DataChips])
	return l
}
