package core

import (
	"fmt"

	"xedsim/internal/dram"
	"xedsim/internal/ecc"
	"xedsim/internal/simrand"
)

// XED layered on Single-Chipkill hardware (§IX): 18 chips per access (16
// data + 2 Reed-Solomon check chips). Without XED this hardware corrects
// one unlocated chip failure; with XED the catch-words *locate* the faulty
// chips, turning the two check symbols into two erasure corrections —
// Double-Chipkill-level protection with half the chips of real
// Double-Chipkill.

// ChipkillChips is the access width of the single-Chipkill gang.
const ChipkillChips = 18

// ChipkillDataChips carry data; the last two chips carry check symbols.
const ChipkillDataChips = 16

// Block is the 18-chip access unit: 16 data beats of 64 bits (two cache
// lines — the overfetch the paper charges Chipkill for).
type Block = [ChipkillDataChips]uint64

// XEDChipkillController drives an 18-chip gang with per-chip On-Die ECC,
// catch-words enabled, and RS(18,16) across chips on every byte lane.
type XEDChipkillController struct {
	rank       *dram.Rank
	rs         *ecc.RS
	dec        *ecc.RSDecoder
	catchWords [ChipkillChips]uint64
	rng        *simrand.Source
	stats      Stats

	// Read/write-path scratch, reused across calls.
	lane        [ChipkillChips]uint8
	flaggedBuf  [ChipkillChips]int
	suspectsBuf [ChipkillChips]int
	readBuf     []dram.ReadResult
}

// NewXEDChipkillController programs catch-words and XED-Enable on all 18
// chips and prepares the RS(18,16) lane code.
func NewXEDChipkillController(rank *dram.Rank, seed uint64) *XEDChipkillController {
	if rank.Chips() != ChipkillChips {
		panic(fmt.Sprintf("core: XED-on-Chipkill needs 18 chips, got %d", rank.Chips()))
	}
	rs := ecc.NewXEDChipkill()
	c := &XEDChipkillController{rank: rank, rs: rs, dec: rs.NewDecoder(), rng: simrand.New(seed)}
	for i := 0; i < ChipkillChips; i++ {
		c.catchWords[i] = c.rng.Uint64()
		rank.Chip(i).SetCatchWord(c.catchWords[i])
	}
	rank.SetXEDEnable(true)
	return c
}

// Rank exposes the underlying rank.
func (c *XEDChipkillController) Rank() *dram.Rank { return c.rank }

// Stats returns a copy of the counters.
func (c *XEDChipkillController) Stats() Stats { return c.stats }

// WriteBlock stores 16 data beats plus two RS check beats. Check beats are
// computed lane-wise: for byte lane b, the 18 lane symbols form one
// RS(18,16) codeword.
func (c *XEDChipkillController) WriteBlock(a dram.WordAddr, data Block) {
	c.stats.Writes++
	var beats [ChipkillChips]uint64
	copy(beats[:ChipkillDataChips], data[:])
	for b := 0; b < 8; b++ {
		for i := 0; i < ChipkillDataChips; i++ {
			c.lane[i] = uint8(data[i] >> uint(8*b))
		}
		cw := c.rs.EncodeInto(c.lane[:ChipkillDataChips], c.lane[:])
		beats[16] |= uint64(cw[16]) << uint(8*b)
		beats[17] |= uint64(cw[17]) << uint(8*b)
	}
	c.rank.WriteLine(a, beats[:])
}

// ReadBlock reads and corrects one 18-chip access:
//
//  1. catch-words name up to two erased chips → lane-wise erasure decode;
//  2. more than two catch-words → serial-mode re-read (scaling faults are
//     corrected on-die) and re-evaluate;
//  3. no catch-word but bad syndromes → bounded-distance decode (one
//     unlocated chip error, the classic Chipkill case).
func (c *XEDChipkillController) ReadBlock(a dram.WordAddr) (Block, Outcome) {
	c.stats.Reads++
	c.readBuf = c.rank.ReadLineInto(a, c.readBuf)
	var words [ChipkillChips]uint64
	flagged := c.flaggedBuf[:0]
	for i := range words {
		words[i] = c.readBuf[i].Data
		if words[i] == c.catchWords[i] {
			flagged = append(flagged, i)
		}
	}
	c.stats.CatchWordsSeen += uint64(len(flagged))

	if len(flagged) > c.rs.R {
		// More catch-words than erasure budget: serial-mode re-read
		// lets each on-die engine repair its own (scaling) fault.
		suspects := c.suspectsBuf[:0]
		for _, i := range flagged {
			rawVal, st := c.rank.Chip(i).ReadRaw(a)
			words[i] = rawVal
			if st == ecc.StatusDetected {
				suspects = append(suspects, i)
			}
		}
		flagged = suspects
		if len(flagged) > c.rs.R {
			c.stats.DUEs++
			return blockOf(words), OutcomeDUE
		}
		if ok, out := c.decodeLanes(&words, flagged); ok {
			c.stats.SerialCorrections++
			return out, OutcomeCorrectedSerial
		}
		c.stats.DUEs++
		return blockOf(words), OutcomeDUE
	}

	if len(flagged) == 0 {
		if c.lanesAllValid(&words) {
			c.stats.CleanReads++
			return blockOf(words), OutcomeClean
		}
		// Unlocated errors (silent on-die miss): let the RS code both
		// locate and correct — the classic Chipkill budget of one
		// chip with R=2.
		if ok, out := c.decodeUnlocated(&words); ok {
			c.stats.DiagCorrections++
			return out, OutcomeCorrectedDiagnosis
		}
		c.stats.DUEs++
		return blockOf(words), OutcomeDUE
	}

	// 1 or 2 erasures: the §IX-A fast path.
	if ok, out := c.decodeLanes(&words, flagged); ok {
		c.stats.ErasureCorrections++
		c.detectCollisions(words, out, flagged)
		return out, OutcomeCorrectedErasure
	}
	// Erasure decode failed — an additional unlocated error beyond the
	// erasures. With one erasure and R=2 there is no slack; DUE.
	c.stats.DUEs++
	return blockOf(words), OutcomeDUE
}

// lanesAllValid reports whether every byte lane forms a valid RS codeword.
func (c *XEDChipkillController) lanesAllValid(words *[ChipkillChips]uint64) bool {
	for b := 0; b < 8; b++ {
		for i := 0; i < ChipkillChips; i++ {
			c.lane[i] = uint8(words[i] >> uint(8*b))
		}
		if !c.rs.IsValid(c.lane[:]) {
			return false
		}
	}
	return true
}

// decodeLanes runs the RS code over all 8 byte lanes with the given
// erasures. It reports ok=false if any lane is uncorrectable.
func (c *XEDChipkillController) decodeLanes(words *[ChipkillChips]uint64, erasures []int) (bool, Block) {
	var out Block
	for b := 0; b < 8; b++ {
		for i := 0; i < ChipkillChips; i++ {
			c.lane[i] = uint8(words[i] >> uint(8*b))
		}
		if c.dec.DecodeErasures(c.lane[:], erasures) == ecc.StatusDetected {
			return false, out
		}
		for i := 0; i < ChipkillDataChips; i++ {
			out[i] |= uint64(c.lane[i]) << uint(8*b)
		}
	}
	return true, out
}

// decodeUnlocated corrects one unlocated chip error across the lanes and
// requires every lane's verdict to name the same chip (a chip failure
// corrupts the same symbol position in every lane).
func (c *XEDChipkillController) decodeUnlocated(words *[ChipkillChips]uint64) (bool, Block) {
	var out Block
	for b := 0; b < 8; b++ {
		for i := 0; i < ChipkillChips; i++ {
			c.lane[i] = uint8(words[i] >> uint(8*b))
		}
		if c.dec.Decode(c.lane[:]) == ecc.StatusDetected {
			return false, out
		}
		for i := 0; i < ChipkillDataChips; i++ {
			out[i] |= uint64(c.lane[i]) << uint(8*b)
		}
	}
	return true, out
}

// detectCollisions spots §V-D collisions on the Chipkill configuration:
// if an erased chip's corrected data equals its catch-word, refresh it.
func (c *XEDChipkillController) detectCollisions(words [ChipkillChips]uint64, corrected Block, flagged []int) {
	for _, i := range flagged {
		if i >= ChipkillDataChips {
			continue
		}
		if corrected[i] == c.catchWords[i] {
			c.stats.Collisions++
			next := c.rng.Uint64()
			for next == c.catchWords[i] {
				next = c.rng.Uint64()
			}
			c.catchWords[i] = next
			c.rank.Chip(i).SetCatchWord(next)
			c.stats.CatchWordUpdates++
		}
	}
}

func blockOf(words [ChipkillChips]uint64) Block {
	var b Block
	copy(b[:], words[:ChipkillDataChips])
	return b
}
