package core

import (
	"testing"

	"xedsim/internal/dram"
	"xedsim/internal/ecc"
	"xedsim/internal/simrand"
)

func newAlertN(t testing.TB, extended bool) *AlertNController {
	t.Helper()
	rank := dram.MustNewRank(9, testGeom(), func() ecc.Code64 { return ecc.NewCRC8ATM() })
	return NewAlertNController(rank, extended)
}

func TestAlertNCleanRoundTrip(t *testing.T) {
	for _, extended := range []bool{false, true} {
		c := newAlertN(t, extended)
		rng := simrand.New(60)
		a := dram.WordAddr{Bank: 0, Row: 1, Col: 2}
		data := lineOf(rng)
		c.WriteLine(a, data)
		res := c.ReadLine(a)
		if res.Outcome != OutcomeClean || res.Data != data || res.AlertAsserted {
			t.Fatalf("extended=%v: %+v", extended, res)
		}
	}
}

func TestAlertNOnDieCorrectionAssertsPin(t *testing.T) {
	// A single-bit fault is corrected on-die; the data bus shows clean
	// data but the pin pulses — the controller learns an error happened
	// without any bandwidth cost, which is the pin's entire purpose.
	c := newAlertN(t, false)
	rng := simrand.New(61)
	a := dram.WordAddr{Bank: 1, Row: 2, Col: 3}
	data := lineOf(rng)
	c.WriteLine(a, data)
	c.Rank().Chip(2).InjectFault(dram.NewBitFault(a, 9, false))
	res := c.ReadLine(a)
	if res.Outcome != OutcomeClean || res.Data != data {
		t.Fatalf("corrected read wrong: %+v", res)
	}
	if !res.AlertAsserted {
		t.Fatal("ALERT_n should assert on on-die correction")
	}
}

func TestBasicAlertNChipFailureNeedsDiagnosis(t *testing.T) {
	// §XI-C: the shared pin cannot identify the chip, so a chip failure
	// costs a full diagnosis before parity can reconstruct — against
	// XED's immediate catch-word erasure.
	c := newAlertN(t, false)
	rng := simrand.New(62)
	a := dram.WordAddr{Bank: 0, Row: 7, Col: 11}
	data := lineOf(rng)
	c.WriteLine(a, data)
	c.Rank().InjectChipFailure(4, dram.NewChipFault(false, 5))
	res := c.ReadLine(a)
	if res.Data != data {
		t.Fatalf("basic ALERT_n failed to recover: %+v", res)
	}
	if res.Outcome != OutcomeCorrectedDiagnosis {
		t.Fatalf("outcome %v, want corrected-diagnosis", res.Outcome)
	}
	if c.Stats().InterLineRuns == 0 {
		t.Fatal("expected an inter-line diagnosis run")
	}
}

func TestExtendedAlertNChipFailureIsImmediateErasure(t *testing.T) {
	// The paper's proposed extension: the pin conveys the chip identity
	// — equivalent to XED without catch-words or collision risk.
	c := newAlertN(t, true)
	rng := simrand.New(63)
	a := dram.WordAddr{Bank: 2, Row: 9, Col: 4}
	data := lineOf(rng)
	c.WriteLine(a, data)
	c.Rank().InjectChipFailure(6, dram.NewChipFault(false, 8))
	res := c.ReadLine(a)
	if res.Data != data || res.Outcome != OutcomeCorrectedErasure {
		t.Fatalf("extended ALERT_n: %+v", res)
	}
	if len(res.FaultyChips) != 1 || res.FaultyChips[0] != 6 {
		t.Fatalf("blamed %v", res.FaultyChips)
	}
	if c.Stats().InterLineRuns != 0 {
		t.Fatal("extended variant should not need diagnosis")
	}
}

func TestExtendedAlertNTwoChipFailuresDUE(t *testing.T) {
	c := newAlertN(t, true)
	rng := simrand.New(64)
	a := dram.WordAddr{Bank: 0, Row: 3, Col: 5}
	c.WriteLine(a, lineOf(rng))
	c.Rank().InjectChipFailure(1, dram.NewChipFault(false, 2))
	c.Rank().InjectChipFailure(5, dram.NewChipFault(false, 3))
	res := c.ReadLine(a)
	if res.Outcome != OutcomeDUE {
		t.Fatalf("outcome %v, want DUE (two erasures exceed one parity)", res.Outcome)
	}
}

func TestExtendedAlertNParityChipFailure(t *testing.T) {
	c := newAlertN(t, true)
	rng := simrand.New(65)
	a := dram.WordAddr{Bank: 3, Row: 1, Col: 0}
	data := lineOf(rng)
	c.WriteLine(a, data)
	c.Rank().InjectChipFailure(8, dram.NewChipFault(false, 4))
	res := c.ReadLine(a)
	// Data chips are intact: the read may classify as clean (parity
	// unreadable but data verified by... parity is the failed part, so
	// the controller sees a mismatch and erases chip 8).
	if res.Data != data {
		t.Fatalf("parity-chip failure corrupted data: %+v", res)
	}
	if res.Outcome == OutcomeDUE {
		t.Fatalf("parity-chip failure should not be a DUE")
	}
}

func TestBasicAlertNSilentTransientIsDUE(t *testing.T) {
	c := newAlertN(t, false)
	rng := simrand.New(66)
	a := dram.WordAddr{Bank: 1, Row: 12, Col: 7}
	c.WriteLine(a, lineOf(rng))
	c.Rank().Chip(3).InjectFault(silentWordFault(a, true))
	res := c.ReadLine(a)
	if res.Outcome != OutcomeDUE {
		t.Fatalf("outcome %v, want DUE", res.Outcome)
	}
	if res.AlertAsserted {
		t.Fatal("a silent fault must not assert the pin")
	}
}

func TestAlertNNeedsNineChips(t *testing.T) {
	rank := dram.MustNewRank(8, testGeom(), func() ecc.Code64 { return ecc.NewCRC8ATM() })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAlertNController(rank, false)
}

func BenchmarkAlertNBasicChipFailure(b *testing.B) {
	c := newAlertN(b, false)
	a := dram.WordAddr{Bank: 0, Row: 0, Col: 0}
	c.WriteLine(a, Line{1, 2, 3, 4, 5, 6, 7, 8})
	c.Rank().InjectChipFailure(3, dram.NewChipFault(false, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ReadLine(a)
	}
}

func BenchmarkAlertNExtendedChipFailure(b *testing.B) {
	c := newAlertN(b, true)
	a := dram.WordAddr{Bank: 0, Row: 0, Col: 0}
	c.WriteLine(a, Line{1, 2, 3, 4, 5, 6, 7, 8})
	c.Rank().InjectChipFailure(3, dram.NewChipFault(false, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ReadLine(a)
	}
}
