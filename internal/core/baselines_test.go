package core

import (
	"testing"

	"xedsim/internal/dram"
	"xedsim/internal/ecc"
	"xedsim/internal/simrand"
)

func newECCDIMM(t testing.TB) *ECCDIMMController {
	t.Helper()
	rank := dram.MustNewRank(9, testGeom(), func() ecc.Code64 { return ecc.NewCRC8ATM() })
	return NewECCDIMMController(rank)
}

func TestECCDIMMCleanRoundTrip(t *testing.T) {
	c := newECCDIMM(t)
	rng := simrand.New(40)
	for trial := 0; trial < 50; trial++ {
		a := dram.WordAddr{Bank: rng.Intn(4), Row: rng.Intn(32), Col: rng.Intn(128)}
		data := lineOf(rng)
		c.WriteLine(a, data)
		got, outcome := c.ReadLine(a)
		if outcome != OutcomeClean || got != data {
			t.Fatalf("trial %d: outcome %v", trial, outcome)
		}
	}
}

func TestECCDIMMChipFailureDefeatsSECDED(t *testing.T) {
	// The Figure 1 argument: a whole-chip failure puts ~8 bad bits into
	// every 72-bit DIMM codeword — far beyond SECDED. The read must
	// never return correct data marked clean; it DUEs or silently
	// mis-corrects (both count as a failed system in the paper).
	c := newECCDIMM(t)
	rng := simrand.New(41)
	a := dram.WordAddr{Bank: 1, Row: 3, Col: 5}
	data := lineOf(rng)
	c.WriteLine(a, data)
	c.Rank().Chip(2).InjectFault(dram.NewChipFault(false, 9))
	got, outcome := c.ReadLine(a)
	if outcome == OutcomeClean && got == data {
		t.Fatal("chip failure invisibly survived SECDED?!")
	}
	if outcome != OutcomeDUE && got == data {
		t.Fatal("full chip failure should not be correctable by SECDED")
	}
}

func TestECCDIMMSingleBitFaultHandledOnDie(t *testing.T) {
	// With On-Die ECC, a single-bit runtime fault never even reaches the
	// DIMM-level code: the chip corrects it internally. This is why the
	// 9th chip adds "almost no reliability" (§I, Figure 1) — the only
	// faults left over are multi-bit, which defeat SECDED.
	c := newECCDIMM(t)
	rng := simrand.New(42)
	a := dram.WordAddr{Bank: 0, Row: 1, Col: 1}
	data := lineOf(rng)
	c.WriteLine(a, data)
	c.Rank().Chip(3).InjectFault(dram.NewBitFault(a, 20, false))
	got, outcome := c.ReadLine(a)
	if outcome != OutcomeClean || got != data {
		t.Fatalf("outcome %v; on-die ECC should have absorbed the bit fault", outcome)
	}
}

func TestECCDIMMDetectsSmallMultiBitDamage(t *testing.T) {
	// A 2-bit on-die-detected (but concealed) error lands in one beat's
	// byte: DIMM-level SECDED sees exactly 2 bad bits and *detects* them
	// — detection without correction, the ceiling of this design.
	c := newECCDIMM(t)
	rng := simrand.New(48)
	a := dram.WordAddr{Bank: 0, Row: 1, Col: 2}
	data := lineOf(rng)
	c.WriteLine(a, data)
	// Bits 0 and 1 are in byte 0 of chip 3's word → beat 0 carries both.
	c.Rank().Chip(3).InjectFault(dram.NewWordFault(a, 0b11, 0, false))
	_, outcome := c.ReadLine(a)
	if outcome != OutcomeDUE {
		t.Fatalf("outcome %v, want DUE (SECDED detects 2-bit, cannot correct)", outcome)
	}
}

func newPlainChipkill(t testing.TB) *ChipkillController {
	t.Helper()
	rank := dram.MustNewRank(ChipkillChips, testGeom(), func() ecc.Code64 { return ecc.NewCRC8ATM() })
	return NewChipkillController(rank)
}

func TestChipkillSurvivesOneChipFailure(t *testing.T) {
	c := newPlainChipkill(t)
	rng := simrand.New(43)
	a := dram.WordAddr{Bank: 0, Row: 4, Col: 8}
	data := blockOfRng(rng)
	c.WriteBlock(a, data)
	c.Rank().InjectChipFailure(5, dram.NewChipFault(false, 3))
	got, outcome := c.ReadBlock(a)
	if outcome != OutcomeCorrectedErasure || got != data {
		t.Fatalf("outcome %v, match=%v", outcome, got == data)
	}
}

func TestChipkillTwoChipFailuresNotCorrected(t *testing.T) {
	c := newPlainChipkill(t)
	rng := simrand.New(44)
	a := dram.WordAddr{Bank: 0, Row: 4, Col: 8}
	data := blockOfRng(rng)
	c.WriteBlock(a, data)
	c.Rank().InjectChipFailure(5, dram.NewChipFault(false, 3))
	c.Rank().InjectChipFailure(11, dram.NewChipFault(false, 4))
	got, outcome := c.ReadBlock(a)
	if outcome == OutcomeClean {
		t.Fatal("two chip failures read as clean")
	}
	if got == data && outcome != OutcomeDUE {
		t.Fatal("two chip failures should not be silently corrected by R=2 code")
	}
}

func newDoubleChipkill(t testing.TB) *DoubleChipkillController {
	t.Helper()
	rank := dram.MustNewRank(DoubleChipkillChips, testGeom(), func() ecc.Code64 { return ecc.NewCRC8ATM() })
	return NewDoubleChipkillController(rank)
}

func wideBlockOfRng(rng *simrand.Source) WideBlock {
	var b WideBlock
	for i := range b {
		b[i] = rng.Uint64()
	}
	return b
}

func TestDoubleChipkillSurvivesTwoChipFailures(t *testing.T) {
	c := newDoubleChipkill(t)
	rng := simrand.New(45)
	a := dram.WordAddr{Bank: 1, Row: 2, Col: 3}
	data := wideBlockOfRng(rng)
	c.WriteBlock(a, data)
	c.Rank().InjectChipFailure(7, dram.NewChipFault(false, 5))
	c.Rank().InjectChipFailure(30, dram.NewChipFault(false, 6))
	got, outcome := c.ReadBlock(a)
	if outcome != OutcomeCorrectedErasure || got != data {
		t.Fatalf("outcome %v, match=%v", outcome, got == data)
	}
}

func TestDoubleChipkillThreeChipFailuresNotCorrected(t *testing.T) {
	c := newDoubleChipkill(t)
	rng := simrand.New(46)
	a := dram.WordAddr{Bank: 1, Row: 2, Col: 3}
	data := wideBlockOfRng(rng)
	c.WriteBlock(a, data)
	for _, chip := range []int{3, 17, 33} {
		c.Rank().InjectChipFailure(chip, dram.NewChipFault(false, uint64(chip)))
	}
	got, outcome := c.ReadBlock(a)
	if outcome == OutcomeClean {
		t.Fatal("three chip failures read as clean")
	}
	if got == data && outcome != OutcomeDUE {
		t.Fatal("three chip failures should not silently correct")
	}
}

func TestBaselineConstructorsValidateChipCount(t *testing.T) {
	bad := dram.MustNewRank(10, testGeom(), func() ecc.Code64 { return ecc.NewCRC8ATM() })
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	assertPanics("eccdimm", func() { NewECCDIMMController(bad) })
	assertPanics("chipkill", func() { NewChipkillController(bad) })
	assertPanics("doublechipkill", func() { NewDoubleChipkillController(bad) })
}

func TestGatherScatterBeatInverse(t *testing.T) {
	c := newECCDIMM(t)
	rng := simrand.New(47)
	for trial := 0; trial < 200; trial++ {
		data := lineOf(rng)
		var rebuilt Line
		for b := 0; b < 8; b++ {
			scatterBeat(c.gatherBeat(data, b), b, &rebuilt)
		}
		if rebuilt != data {
			t.Fatal("gather/scatter not inverse")
		}
	}
}

func BenchmarkECCDIMMRead(b *testing.B) {
	c := newECCDIMM(b)
	a := dram.WordAddr{Bank: 0, Row: 0, Col: 0}
	c.WriteLine(a, Line{1, 2, 3, 4, 5, 6, 7, 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ReadLine(a)
	}
}

func BenchmarkChipkillRead(b *testing.B) {
	c := newPlainChipkill(b)
	a := dram.WordAddr{Bank: 0, Row: 0, Col: 0}
	c.WriteBlock(a, Block{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ReadBlock(a)
	}
}
