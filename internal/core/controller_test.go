package core

import (
	"testing"
	"testing/quick"

	"xedsim/internal/dram"
	"xedsim/internal/ecc"
	"xedsim/internal/simrand"
)

func testGeom() dram.Geometry { return dram.Geometry{Banks: 4, RowsPerBank: 32, ColsPerRow: 128} }

func newXED(t testing.TB, opts ...Option) *Controller {
	t.Helper()
	rank := dram.MustNewRank(9, testGeom(), func() ecc.Code64 { return ecc.NewCRC8ATM() })
	return NewController(rank, 0xdead, opts...)
}

func lineOf(rng *simrand.Source) Line {
	var l Line
	for i := range l {
		l[i] = rng.Uint64()
	}
	return l
}

// silentWordFault builds a word fault whose error pattern is itself a valid
// CRC8-ATM codeword, so the on-die engine cannot see it — the 0.8% case of
// §VI made deterministic for tests.
func silentWordFault(a dram.WordAddr, transient bool) dram.Fault {
	code := ecc.NewCRC8ATM()
	pattern := code.Encode(0xb00b1e5) // error polynomial = codeword of 0xb00b1e5
	return dram.NewWordFault(a, pattern.Data, pattern.Check, transient)
}

func TestXEDCleanRoundTrip(t *testing.T) {
	c := newXED(t)
	rng := simrand.New(1)
	f := func(bank, row, col uint8) bool {
		a := dram.WordAddr{Bank: int(bank) % 4, Row: int(row) % 32, Col: int(col) % 128}
		data := lineOf(rng)
		c.WriteLine(a, data)
		res := c.ReadLine(a)
		return res.Outcome == OutcomeClean && res.Data == data
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if c.Stats().CleanReads == 0 {
		t.Fatal("no clean reads recorded")
	}
}

func TestXEDSurvivesAnyDataChipFailure(t *testing.T) {
	// The headline result (§V-C): a whole-chip failure is corrected on
	// every access using catch-words + RAID-3 parity.
	for chip := 0; chip < 8; chip++ {
		c := newXED(t)
		rng := simrand.New(uint64(2 + chip))
		a := dram.WordAddr{Bank: 1, Row: 7, Col: 13}
		data := lineOf(rng)
		c.WriteLine(a, data)
		c.Rank().InjectChipFailure(chip, dram.NewChipFault(false, uint64(chip)*31+7))
		for pass := 0; pass < 3; pass++ {
			res := c.ReadLine(a)
			if res.Outcome != OutcomeCorrectedErasure {
				t.Fatalf("chip %d pass %d: outcome %v", chip, pass, res.Outcome)
			}
			if res.Data != data {
				t.Fatalf("chip %d: corrected data mismatch", chip)
			}
			if len(res.FaultyChips) != 1 || res.FaultyChips[0] != chip {
				t.Fatalf("chip %d: blamed %v", chip, res.FaultyChips)
			}
		}
	}
}

func TestXEDSurvivesParityChipFailure(t *testing.T) {
	c := newXED(t)
	rng := simrand.New(3)
	a := dram.WordAddr{Bank: 0, Row: 0, Col: 0}
	data := lineOf(rng)
	c.WriteLine(a, data)
	c.Rank().InjectChipFailure(8, dram.NewChipFault(false, 55))
	res := c.ReadLine(a)
	if res.Outcome != OutcomeCorrectedErasure || res.Data != data {
		t.Fatalf("parity-chip failure: %v, data ok=%v", res.Outcome, res.Data == data)
	}
}

func TestXEDRowFailureCorrectedAcrossRow(t *testing.T) {
	c := newXED(t)
	rng := simrand.New(4)
	var want [16]Line
	for col := 0; col < 16; col++ {
		want[col] = lineOf(rng)
		c.WriteLine(dram.WordAddr{Bank: 2, Row: 5, Col: col}, want[col])
	}
	c.Rank().Chip(3).InjectFault(dram.NewRowFault(2, 5, false, 77))
	for col := 0; col < 16; col++ {
		res := c.ReadLine(dram.WordAddr{Bank: 2, Row: 5, Col: col})
		if res.Data != want[col] {
			t.Fatalf("col %d: data mismatch (outcome %v)", col, res.Outcome)
		}
		if res.Outcome == OutcomeDUE {
			t.Fatalf("col %d: DUE", col)
		}
	}
}

func TestXEDCatchWordCollision(t *testing.T) {
	// §V-D: write the catch-word itself as data. The read must return
	// correct data, flag the collision, and regenerate the catch-word.
	c := newXED(t)
	a := dram.WordAddr{Bank: 0, Row: 1, Col: 2}
	var data Line
	data[5] = c.CatchWord(5) // legitimate data that equals chip 5's CW
	data[0] = 0x1111
	c.WriteLine(a, data)

	oldCW := c.CatchWord(5)
	res := c.ReadLine(a)
	if !res.Collision {
		t.Fatalf("collision not flagged (outcome %v)", res.Outcome)
	}
	if res.Data != data {
		t.Fatal("collision read returned wrong data")
	}
	if c.CatchWord(5) == oldCW {
		t.Fatal("catch-word not regenerated after collision")
	}
	if c.Stats().Collisions != 1 || c.Stats().CatchWordUpdates != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
	// After regeneration the same line reads clean.
	res = c.ReadLine(a)
	if res.Outcome != OutcomeClean || res.Data != data {
		t.Fatalf("post-regeneration read: %v", res.Outcome)
	}
}

func TestXEDScalingFaultsMultipleCatchWords(t *testing.T) {
	// §VII-B: single-bit scaling faults in several chips produce
	// multiple catch-words; serial mode recovers every beat because
	// on-die ECC is guaranteed to correct single-bit errors.
	c := newXED(t)
	rng := simrand.New(5)
	a := dram.WordAddr{Bank: 3, Row: 9, Col: 64}
	data := lineOf(rng)
	c.WriteLine(a, data)
	c.Rank().Chip(1).InjectFault(dram.NewBitFault(a, 17, false))
	c.Rank().Chip(4).InjectFault(dram.NewBitFault(a, 3, false))
	c.Rank().Chip(6).InjectFault(dram.NewBitFault(a, 70, false))
	res := c.ReadLine(a)
	if res.Outcome != OutcomeCorrectedSerial {
		t.Fatalf("outcome %v, want serial correction", res.Outcome)
	}
	if res.Data != data {
		t.Fatal("serial-mode data mismatch")
	}
	if c.Stats().SerialCorrections != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
}

func TestXEDSingleScalingFaultIsErasureCorrected(t *testing.T) {
	c := newXED(t)
	rng := simrand.New(6)
	a := dram.WordAddr{Bank: 0, Row: 2, Col: 3}
	data := lineOf(rng)
	c.WriteLine(a, data)
	c.Rank().Chip(2).InjectFault(dram.NewBitFault(a, 40, false))
	res := c.ReadLine(a)
	if res.Outcome != OutcomeCorrectedErasure || res.Data != data {
		t.Fatalf("outcome %v", res.Outcome)
	}
}

func TestXEDChipFailureWithScalingFaults(t *testing.T) {
	// §VII-C: a runtime chip failure concurrent with scaling faults in
	// other chips. Serial mode corrects the scaling chips on-die;
	// the hard-failed chip stays suspect and is rebuilt from parity.
	c := newXED(t)
	rng := simrand.New(7)
	a := dram.WordAddr{Bank: 1, Row: 3, Col: 9}
	data := lineOf(rng)
	c.WriteLine(a, data)
	// Multi-bit (detected, uncorrectable on-die) damage on chip 0.
	c.Rank().Chip(0).InjectFault(dram.NewWordFault(a, 0b1011, 0, false))
	// Single-bit scaling faults elsewhere.
	c.Rank().Chip(5).InjectFault(dram.NewBitFault(a, 12, false))
	c.Rank().Chip(7).InjectFault(dram.NewBitFault(a, 60, false))
	res := c.ReadLine(a)
	if res.Data != data {
		t.Fatalf("data mismatch (outcome %v)", res.Outcome)
	}
	if res.Outcome != OutcomeCorrectedDiagnosis {
		t.Fatalf("outcome %v, want corrected-diagnosis", res.Outcome)
	}
}

func TestXEDUndetectedErrorInterLineDiagnosis(t *testing.T) {
	// §VI-A: the on-die code misses the accessed line's damage, but the
	// same chip shows catch-words on many neighbouring lines (a row
	// failure signature), so Inter-Line diagnosis convicts it.
	c := newXED(t)
	rng := simrand.New(8)
	row, bank := 11, 2
	var want [128]Line
	for col := 0; col < 128; col++ {
		want[col] = lineOf(rng)
		c.WriteLine(dram.WordAddr{Bank: bank, Row: row, Col: col}, want[col])
	}
	victim := dram.WordAddr{Bank: bank, Row: row, Col: 50}
	// Silent damage on the accessed line of chip 3...
	c.Rank().Chip(3).InjectFault(silentWordFault(victim, false))
	// ...and detectable damage on 20 neighbouring lines of the row.
	for col := 0; col < 20; col++ {
		c.Rank().Chip(3).InjectFault(dram.NewWordFault(
			dram.WordAddr{Bank: bank, Row: row, Col: col}, 0b11, 0, false))
	}
	res := c.ReadLine(victim)
	if res.Outcome != OutcomeCorrectedDiagnosis {
		t.Fatalf("outcome %v, want corrected-diagnosis", res.Outcome)
	}
	if res.Data != want[50] {
		t.Fatal("diagnosed read returned wrong data")
	}
	if len(res.FaultyChips) != 1 || res.FaultyChips[0] != 3 {
		t.Fatalf("blamed %v, want chip 3", res.FaultyChips)
	}
	st := c.Stats()
	if st.InterLineRuns != 1 {
		t.Fatalf("inter-line runs = %d, want 1", st.InterLineRuns)
	}
	if c.FCT().Lookup(bank, row) != 3 {
		t.Fatal("FCT did not record the diagnosis")
	}
	// Second access to the same row: FCT hit, no second inter-line run.
	res = c.ReadLine(victim)
	if res.Data != want[50] || c.Stats().InterLineRuns != 1 {
		t.Fatalf("FCT fast path failed (runs=%d)", c.Stats().InterLineRuns)
	}
}

func TestXEDUndetectedErrorIntraLineDiagnosis(t *testing.T) {
	// §VI-B: silent *permanent* damage confined to one line. Inter-line
	// finds nothing; the write/read pattern test convicts the chip.
	c := newXED(t)
	rng := simrand.New(9)
	a := dram.WordAddr{Bank: 0, Row: 20, Col: 66}
	data := lineOf(rng)
	c.WriteLine(a, data)
	c.Rank().Chip(6).InjectFault(silentWordFault(a, false))
	res := c.ReadLine(a)
	if res.Outcome != OutcomeCorrectedDiagnosis {
		t.Fatalf("outcome %v, want corrected-diagnosis", res.Outcome)
	}
	if res.Data != data {
		t.Fatal("intra-line corrected read returned wrong data")
	}
	st := c.Stats()
	if st.IntraLineRuns != 1 || st.InterLineRuns != 1 {
		t.Fatalf("diagnosis runs = %+v", st)
	}
}

func TestXEDTransientSilentWordFaultIsDUE(t *testing.T) {
	// §VIII: a transient word fault the on-die code missed. Both
	// diagnoses fail (the fault does not reproduce under rewrite), so
	// XED reports a detected uncorrectable error rather than silently
	// returning bad data.
	c := newXED(t)
	rng := simrand.New(10)
	a := dram.WordAddr{Bank: 1, Row: 21, Col: 5}
	data := lineOf(rng)
	c.WriteLine(a, data)
	c.Rank().Chip(4).InjectFault(silentWordFault(a, true))
	res := c.ReadLine(a)
	if res.Outcome != OutcomeDUE {
		t.Fatalf("outcome %v, want DUE", res.Outcome)
	}
	if c.Stats().DUEs != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
}

func TestXEDColumnFailureSaturatesFCT(t *testing.T) {
	// §VI-A sizing argument: a column/bank failure produces diagnosis
	// verdicts for many rows, all naming the same chip; the FCT fills
	// and the chip is permanently marked.
	c := newXED(t, WithFCTEntries(4))
	rng := simrand.New(11)
	bank, col := 1, 30
	var want [32]Line
	for row := 0; row < 32; row++ {
		want[row] = lineOf(rng)
		c.WriteLine(dram.WordAddr{Bank: bank, Row: row, Col: col}, want[row])
	}
	// A column failure on chip 2 whose per-line damage is silent (worst
	// case for on-die detection): silent word faults down the column.
	code := ecc.NewCRC8ATM()
	for row := 0; row < 32; row++ {
		pattern := code.Encode(uint64(row)*77 + 1)
		c.Rank().Chip(2).InjectFault(dram.NewWordFault(
			dram.WordAddr{Bank: bank, Row: row, Col: col}, pattern.Data, pattern.Check, false))
	}
	for row := 0; row < 32; row++ {
		res := c.ReadLine(dram.WordAddr{Bank: bank, Row: row, Col: col})
		if res.Data != want[row] {
			t.Fatalf("row %d: wrong data (outcome %v)", row, res.Outcome)
		}
	}
	if c.FCT().MarkedChip() != 2 {
		t.Fatalf("FCT marked chip = %d, want 2", c.FCT().MarkedChip())
	}
	if c.Stats().FCTChipMarks != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
	// Once marked, new rows skip diagnosis entirely.
	runsBefore := c.Stats().IntraLineRuns
	extra := lineOf(rng)
	c.WriteLine(dram.WordAddr{Bank: bank, Row: 31, Col: 29}, extra)
	pattern := code.Encode(12345)
	c.Rank().Chip(2).InjectFault(dram.NewWordFault(
		dram.WordAddr{Bank: bank, Row: 31, Col: 29}, pattern.Data, pattern.Check, false))
	res := c.ReadLine(dram.WordAddr{Bank: bank, Row: 31, Col: 29})
	if res.Data != extra {
		t.Fatal("marked-chip reconstruction failed")
	}
	if c.Stats().IntraLineRuns != runsBefore {
		t.Fatal("diagnosis re-ran despite permanent chip mark")
	}
}

func TestXEDNeedsNineChips(t *testing.T) {
	rank := dram.MustNewRank(8, testGeom(), func() ecc.Code64 { return ecc.NewCRC8ATM() })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 8-chip rank")
		}
	}()
	NewController(rank, 1)
}

func TestXEDCatchWordsAreDistinctAndProgrammed(t *testing.T) {
	c := newXED(t)
	seen := map[uint64]bool{}
	for i := 0; i <= DataChips; i++ {
		cw := c.CatchWord(i)
		if seen[cw] {
			t.Fatalf("duplicate catch-word for chip %d", i)
		}
		seen[cw] = true
		if c.Rank().Chip(i).CatchWord() != cw {
			t.Fatalf("chip %d CWR not programmed", i)
		}
		if !c.Rank().Chip(i).XEDEnabled() {
			t.Fatalf("chip %d XED-Enable not set", i)
		}
	}
}

func BenchmarkXEDReadClean(b *testing.B) {
	c := newXED(b)
	a := dram.WordAddr{Bank: 0, Row: 0, Col: 0}
	c.WriteLine(a, Line{1, 2, 3, 4, 5, 6, 7, 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ReadLine(a)
	}
}

func BenchmarkXEDReadChipFailure(b *testing.B) {
	c := newXED(b)
	a := dram.WordAddr{Bank: 0, Row: 0, Col: 0}
	c.WriteLine(a, Line{1, 2, 3, 4, 5, 6, 7, 8})
	c.Rank().InjectChipFailure(3, dram.NewChipFault(false, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ReadLine(a)
	}
}

func TestInterLineThresholdAblation(t *testing.T) {
	// §VI-A's 10% threshold matters: a transient row failure whose
	// accessed line is silent can only be rescued by Inter-Line
	// diagnosis (Intra-Line needs permanence). With the default
	// threshold the ~25 flagged neighbours convict the chip; with an
	// over-strict 40% threshold diagnosis fails and the read becomes a
	// DUE.
	build := func(opts ...Option) (*Controller, dram.WordAddr, Line) {
		rank := dram.MustNewRank(9, testGeom(), func() ecc.Code64 { return ecc.NewCRC8ATM() })
		c := NewController(rank, 0xabc, opts...)
		rng := simrand.New(90)
		victim := dram.WordAddr{Bank: 1, Row: 6, Col: 77}
		var want Line
		for col := 0; col < 128; col++ {
			l := lineOf(rng)
			if col == victim.Col {
				want = l
			}
			c.WriteLine(dram.WordAddr{Bank: 1, Row: 6, Col: col}, l)
		}
		c.Rank().Chip(4).InjectFault(silentWordFault(victim, true))
		for col := 0; col < 25; col++ {
			c.Rank().Chip(4).InjectFault(dram.NewWordFault(
				dram.WordAddr{Bank: 1, Row: 6, Col: col}, 0b11, 0, true))
		}
		return c, victim, want
	}

	cDefault, victim, want := build()
	res := cDefault.ReadLine(victim)
	if res.Outcome != OutcomeCorrectedDiagnosis || res.Data != want {
		t.Fatalf("default threshold: %v (dataOK=%v)", res.Outcome, res.Data == want)
	}

	cStrict, victim, _ := build(WithInterLineThreshold(0.4))
	res = cStrict.ReadLine(victim)
	if res.Outcome != OutcomeDUE {
		t.Fatalf("strict threshold: %v, want DUE", res.Outcome)
	}
}

func TestXEDReadOfUnwrittenLineWithChipFailure(t *testing.T) {
	// Unwritten lines read as zero; a failed chip must not change that.
	c := newXED(t)
	c.Rank().InjectChipFailure(2, dram.NewChipFault(false, 12))
	res := c.ReadLine(dram.WordAddr{Bank: 3, Row: 30, Col: 99})
	if res.Data != (Line{}) {
		t.Fatalf("unwritten line reads %v", res.Data)
	}
	if res.Outcome == OutcomeDUE {
		t.Fatal("unwritten read should still be correctable")
	}
}

func TestXEDCollisionStorm(t *testing.T) {
	// §V-D under stress: repeatedly store data that equals the current
	// catch-word of some chip. Every episode must return correct data,
	// flag the collision, and rotate that chip's catch-word — 200 times
	// in a row, including parity-chip collisions.
	c := newXED(t)
	rng := simrand.New(0x50f7)
	for i := 0; i < 200; i++ {
		chip := rng.Intn(9)
		a := dram.WordAddr{Bank: rng.Intn(4), Row: rng.Intn(32), Col: rng.Intn(128)}
		var data Line
		for b := range data {
			data[b] = rng.Uint64()
		}
		if chip < 8 {
			data[chip] = c.CatchWord(chip)
		} else {
			// Parity collision: choose data whose XOR equals the
			// parity chip's catch-word.
			var x uint64
			for b := 0; b < 7; b++ {
				x ^= data[b]
			}
			data[7] = x ^ c.CatchWord(8)
		}
		before := c.CatchWord(chip)
		c.WriteLine(a, data)
		res := c.ReadLine(a)
		if res.Data != data {
			t.Fatalf("episode %d: wrong data (outcome %v)", i, res.Outcome)
		}
		if chip < 8 {
			if !res.Collision {
				t.Fatalf("episode %d: collision not flagged", i)
			}
			if c.CatchWord(chip) == before {
				t.Fatalf("episode %d: catch-word not rotated", i)
			}
		}
		// The very same line must read clean afterwards.
		res = c.ReadLine(a)
		if res.Data != data {
			t.Fatalf("episode %d: post-rotation reread wrong", i)
		}
	}
	st := c.Stats()
	if st.Collisions < 170 || st.CatchWordUpdates < 170 {
		t.Fatalf("collision accounting: %+v", st)
	}
	if st.DUEs != 0 {
		t.Fatalf("collision storm caused %d DUEs", st.DUEs)
	}
}
