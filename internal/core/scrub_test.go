package core

import (
	"testing"

	"xedsim/internal/dram"
	"xedsim/internal/simrand"
)

// TestScrubberPassAccountingFromMidRank pins the FullPass definition: one
// complete wrap from the current position. A FullPass issued mid-rank
// realigns the pass boundary to its own start, so the next PassesDone
// increment requires a further rank-size lines — the old wrap-at-address-
// zero accounting credited it after only (total - k).
func TestScrubberPassAccountingFromMidRank(t *testing.T) {
	ctrl := newXED(t)
	geom := ctrl.Rank().Geometry()
	total := geom.Banks * geom.RowsPerBank * geom.ColsPerRow
	const k = 7

	s := NewScrubber(ctrl)
	s.Step(k)
	if st := s.Stats(); st.PassesDone != 0 || st.LinesScrubbed != k {
		t.Fatalf("after Step(%d): %+v", k, st)
	}

	// FullPass from position k covers every line exactly once.
	s.FullPass()
	if st := s.Stats(); st.PassesDone != 1 || st.LinesScrubbed != uint64(k+total) {
		t.Fatalf("after mid-rank FullPass: %+v", st)
	}

	// The pass completed by FullPass ended at position k; the next pass
	// therefore needs a full rank-size worth of lines. Wrapping through
	// address zero after only total-k more lines must NOT count.
	s.Step(total - k)
	if st := s.Stats(); st.PassesDone != 1 {
		t.Fatalf("address-zero wrap credited a short pass: %+v", st)
	}
	s.Step(k)
	if st := s.Stats(); st.PassesDone != 2 || st.LinesScrubbed != uint64(2*total+k) {
		t.Fatalf("after full coverage since last pass: %+v", st)
	}
}

// TestScrubberStepPassWrap pins plain Step accounting for a zero-start
// scrubber: a pass completes exactly every rank-size lines.
func TestScrubberStepPassWrap(t *testing.T) {
	ctrl := newXED(t)
	geom := ctrl.Rank().Geometry()
	total := geom.Banks * geom.RowsPerBank * geom.ColsPerRow

	s := NewScrubber(ctrl)
	s.Step(total - 1)
	if st := s.Stats(); st.PassesDone != 0 {
		t.Fatalf("pass credited a line early: %+v", st)
	}
	s.Step(1)
	if st := s.Stats(); st.PassesDone != 1 {
		t.Fatalf("pass not credited at exactly %d lines: %+v", total, st)
	}
	s.Step(total)
	if st := s.Stats(); st.PassesDone != 2 || st.LinesScrubbed != uint64(2*total) {
		t.Fatalf("second wrap: %+v", st)
	}
}

// TestScrubberDUELineNotWrittenBack: an uncorrectable line is counted but
// must not be written back — a rewrite would heal the (transient) fault in
// the functional model and launder undetected-bad data into clean state.
func TestScrubberDUELineNotWrittenBack(t *testing.T) {
	ctrl := newXED(t)
	rng := simrand.New(91)
	a := dram.WordAddr{Bank: 2, Row: 3, Col: 4}
	ctrl.WriteLine(a, lineOf(rng))
	// Silent word fault: the error pattern is a valid CRC8 codeword, so
	// on-die detection misses it and the read is uncorrectable. Transient,
	// so any write-back would heal it.
	ctrl.Rank().Chip(1).InjectFault(silentWordFault(a, true))

	s := NewScrubber(ctrl)
	// Position the scrubber on the faulty line, then scrub it.
	for s.pos != a {
		s.advance(ctrl.Rank().Geometry())
	}
	if dues := s.Step(1); dues != 1 {
		t.Fatalf("scrub DUEs = %d, want 1", dues)
	}
	st := s.Stats()
	if st.DUEs != 1 || st.Corrections != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// No write-back happened: the transient fault is still live, so a
	// second read still reports DUE instead of laundered-clean data.
	if res := ctrl.ReadLine(a); res.Outcome != OutcomeDUE {
		t.Fatalf("post-scrub read outcome = %v; DUE line was written back", res.Outcome)
	}
}
