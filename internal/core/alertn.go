package core

import (
	"fmt"

	"xedsim/internal/dram"
	"xedsim/internal/ecc"
)

// The DDR4 ALERT_n alternative (§XI-C): DDR4 provisions an open-drain
// ALERT_n pin that chips assert on errors. Because one pin is shared by
// the whole DIMM, the signal says only that *some* chip erred — not which
// — so RAID-3 reconstruction has no erasure location and must fall back to
// diagnosis. The paper closes by noting that a future standard extending
// ALERT_n to convey the chip's identity would let XED drop catch-words
// entirely; both designs are implemented here so the comparison is
// concrete.

// AlertReadResult augments a line read with the shared-pin state.
type AlertReadResult struct {
	ReadResult
	// AlertAsserted mirrors the DIMM's (single, shared) ALERT_n pin.
	AlertAsserted bool
}

// AlertNController drives a 9-chip ECC-DIMM whose chips keep On-Die ECC
// concealed on the data bus (no DC-Mux) but pulse the shared ALERT_n pin
// on detection or correction. The ninth chip stores RAID-3 parity as in
// XED.
//
// Extended mode models the paper's proposed standard change: the pin also
// conveys *which* chip asserted, making the controller exactly as strong
// as catch-word XED with zero collision risk.
type AlertNController struct {
	rank     *dram.Rank
	extended bool
	fct      *FCT
	stats    Stats

	interLineThreshold float64
}

// NewAlertNController wraps a 9-chip rank. extended selects the
// location-bearing pin variant.
func NewAlertNController(rank *dram.Rank, extended bool) *AlertNController {
	if rank.Chips() != DataChips+1 {
		panic(fmt.Sprintf("core: ALERT_n controller needs a 9-chip rank, got %d", rank.Chips()))
	}
	// Chips run conventional on-die correction: the data bus always
	// carries (possibly corrected) data, never catch-words.
	rank.SetXEDEnable(false)
	return &AlertNController{
		rank:               rank,
		extended:           extended,
		fct:                NewFCT(DefaultFCTEntries),
		interLineThreshold: 0.10,
	}
}

// Rank exposes the underlying rank.
func (c *AlertNController) Rank() *dram.Rank { return c.rank }

// Stats returns a copy of the counters.
func (c *AlertNController) Stats() Stats { return c.stats }

// WriteLine stores data beats plus RAID-3 parity.
func (c *AlertNController) WriteLine(a dram.WordAddr, data Line) {
	c.stats.Writes++
	var beats [DataChips + 1]uint64
	copy(beats[:DataChips], data[:])
	beats[parityChip] = ecc.Parity(data[:])
	c.rank.WriteLine(a, beats[:])
}

// ReadLine reads one line. With the basic pin, an assertion plus a parity
// mismatch forces diagnosis (no location); with the extended pin the
// asserting chips are erased directly like catch-word XED.
func (c *AlertNController) ReadLine(a dram.WordAddr) AlertReadResult {
	c.stats.Reads++
	raw := c.rank.ReadLine(a)

	var words [DataChips + 1]uint64
	var asserting []int
	for i := range words {
		words[i] = raw[i].Data
		// A chip pulses ALERT_n whenever its engine detected or
		// corrected (Status != OK). The wire-OR is what the
		// controller of the basic variant observes.
		if raw[i].Status != ecc.StatusOK {
			asserting = append(asserting, i)
		}
	}
	alert := len(asserting) > 0
	parityOK := ecc.CheckParity(words[:DataChips], words[parityChip])

	if parityOK {
		// Either clean, or every erring chip corrected itself on-die.
		if alert {
			c.stats.CatchWordsSeen += uint64(len(asserting))
		}
		c.stats.CleanReads++
		return AlertReadResult{
			ReadResult:    ReadResult{Data: toLine(words), Outcome: OutcomeClean},
			AlertAsserted: alert,
		}
	}

	if c.extended {
		// Location available: erase the asserting chips. One data
		// chip rebuilds from parity; an asserting parity chip means
		// the data beats are fine.
		dataBad := -1
		multi := false
		for _, i := range asserting {
			if i == parityChip {
				continue
			}
			if dataBad >= 0 {
				multi = true
			}
			dataBad = i
		}
		switch {
		case multi:
			// Two uncorrectable data chips exceed one parity word.
			c.stats.DUEs++
			return AlertReadResult{
				ReadResult:    ReadResult{Data: toLine(words), Outcome: OutcomeDUE, FaultyChips: asserting},
				AlertAsserted: true,
			}
		case dataBad >= 0:
			words[dataBad] = ecc.Reconstruct(words[:DataChips], words[parityChip], dataBad)
			c.stats.ErasureCorrections++
			return AlertReadResult{
				ReadResult: ReadResult{
					Data:        toLine(words),
					Outcome:     OutcomeCorrectedErasure,
					FaultyChips: []int{dataBad},
				},
				AlertAsserted: true,
			}
		}
		// Parity mismatch without an assertion: silent on-die miss;
		// fall through to diagnosis like the basic variant.
	}

	// Basic pin (or extended with no assertion): something is wrong but
	// the location is unknown — exactly XED's §VI situation, resolved
	// the same way.
	res := c.diagnose(a)
	return AlertReadResult{ReadResult: res, AlertAsserted: alert}
}

// diagnose mirrors the XED controller's §VI flow against this rank.
func (c *AlertNController) diagnose(a dram.WordAddr) ReadResult {
	if chip := c.fct.Lookup(a.Bank, a.Row); chip >= 0 {
		return c.reconstruct(a, chip)
	}
	if chip := c.interLine(a); chip >= 0 {
		if c.fct.Insert(a.Bank, a.Row, chip) {
			c.stats.FCTChipMarks++
		}
		return c.reconstruct(a, chip)
	}
	if chip := c.intraLine(a); chip >= 0 {
		if c.fct.Insert(a.Bank, a.Row, chip) {
			c.stats.FCTChipMarks++
		}
		return c.reconstruct(a, chip)
	}
	c.stats.DUEs++
	raw := c.rank.ReadLine(a)
	var words [DataChips + 1]uint64
	for i := range words {
		words[i] = raw[i].Data
	}
	return ReadResult{Data: toLine(words), Outcome: OutcomeDUE}
}

// interLine counts per-chip on-die assertions across the row. Without
// catch-words the basic controller cannot see which chip asserts on a
// shared pin — but it CAN walk the row one chip at a time using per-chip
// reads (the diagnostic mode every controller has), so the §VI-A procedure
// carries over with the same 10% threshold.
func (c *AlertNController) interLine(a dram.WordAddr) int {
	c.stats.InterLineRuns++
	geom := c.rank.Geometry()
	counts := make([]int, DataChips+1)
	for col := 0; col < geom.ColsPerRow; col++ {
		addr := dram.WordAddr{Bank: a.Bank, Row: a.Row, Col: col}
		for i := 0; i <= DataChips; i++ {
			if _, st := c.rank.Chip(i).ReadRaw(addr); st != ecc.StatusOK {
				counts[i]++
			}
		}
	}
	threshold := int(c.interLineThreshold * float64(geom.ColsPerRow))
	if threshold < 1 {
		threshold = 1
	}
	best, bestCount, ties := -1, 0, 0
	for i, n := range counts {
		if n > bestCount {
			best, bestCount, ties = i, n, 1
		} else if n == bestCount && n > 0 {
			ties++
		}
	}
	if bestCount >= threshold && ties == 1 {
		return best
	}
	return -1
}

// intraLine runs the §VI-B pattern test.
func (c *AlertNController) intraLine(a dram.WordAddr) int {
	c.stats.IntraLineRuns++
	var buffer [DataChips + 1]uint64
	for i := 0; i <= DataChips; i++ {
		buffer[i], _ = c.rank.Chip(i).ReadRaw(a)
	}
	faulty := -1
	ambiguous := false
	for _, pattern := range []uint64{0, ^uint64(0)} {
		for i := 0; i <= DataChips; i++ {
			c.rank.Chip(i).Write(a, pattern)
		}
		for i := 0; i <= DataChips; i++ {
			got, st := c.rank.Chip(i).ReadRaw(a)
			if got == pattern && st != ecc.StatusDetected {
				continue
			}
			if faulty >= 0 && faulty != i {
				ambiguous = true
			}
			faulty = i
		}
	}
	for i := 0; i <= DataChips; i++ {
		c.rank.Chip(i).Write(a, buffer[i])
	}
	if ambiguous {
		return -1
	}
	return faulty
}

func (c *AlertNController) reconstruct(a dram.WordAddr, k int) ReadResult {
	var words [DataChips + 1]uint64
	for i := 0; i <= DataChips; i++ {
		if i == k {
			continue
		}
		words[i], _ = c.rank.Chip(i).ReadRaw(a)
	}
	if k != parityChip {
		words[k] = ecc.Reconstruct(words[:DataChips], words[parityChip], k)
	} else {
		words[parityChip] = ecc.Parity(words[:DataChips])
	}
	c.stats.DiagCorrections++
	return ReadResult{Data: toLine(words), Outcome: OutcomeCorrectedDiagnosis, FaultyChips: []int{k}}
}
