package core

import (
	"fmt"

	"xedsim/internal/dram"
	"xedsim/internal/ecc"
	"xedsim/internal/obs"
	"xedsim/internal/simrand"
)

// MemorySystem is the fleet-level functional model: the paper's 4-channel,
// dual-rank configuration with one XED controller per rank and a physical
// address map over the whole capacity. Where Controller exercises one
// rank, MemorySystem is what an operating system or workload generator
// would program against.
type MemorySystem struct {
	mapper *dram.AddressMapper
	ctrls  [][]*Controller // [channel][rank]
}

// MemorySystemConfig shapes the fleet.
type MemorySystemConfig struct {
	Channels        int
	RanksPerChannel int
	Geometry        dram.Geometry
	// Code builds each chip's on-die engine; nil selects CRC8-ATM.
	Code func() ecc.Code64
	// ScalingFaultRate seeds birthtime weak cells (0 disables).
	ScalingFaultRate float64
	Seed             uint64
	// Metrics, when non-nil, mirrors every controller's activity counters
	// into one shared registry (fleet totals under "core.*" names).
	Metrics *obs.Registry
}

// NewMemorySystem builds the fleet with per-rank XED controllers. It
// rejects invalid fleet shapes and geometries with an error.
func NewMemorySystem(cfg MemorySystemConfig) (*MemorySystem, error) {
	if cfg.Code == nil {
		cfg.Code = func() ecc.Code64 { return ecc.NewCRC8ATM() }
	}
	mapper, err := dram.NewMapper(cfg.Channels, cfg.RanksPerChannel, cfg.Geometry)
	if err != nil {
		return nil, err
	}
	rng := simrand.New(cfg.Seed ^ 0x5347)
	m := &MemorySystem{mapper: mapper}
	for ch := 0; ch < cfg.Channels; ch++ {
		var row []*Controller
		for rk := 0; rk < cfg.RanksPerChannel; rk++ {
			rank, err := dram.NewRank(DataChips+1, cfg.Geometry, cfg.Code)
			if err != nil {
				return nil, err
			}
			if cfg.ScalingFaultRate > 0 {
				for i := 0; i < rank.Chips(); i++ {
					rank.Chip(i).SetScaling(dram.ScalingProfile{
						Rate: cfg.ScalingFaultRate,
						Seed: rng.Uint64(),
					})
				}
			}
			row = append(row, NewController(rank, rng.Uint64(), WithMetrics(cfg.Metrics)))
		}
		m.ctrls = append(m.ctrls, row)
	}
	return m, nil
}

// Capacity returns the data capacity in bytes.
func (m *MemorySystem) Capacity() uint64 { return m.mapper.Bytes() }

// Mapper exposes the address map.
func (m *MemorySystem) Mapper() *dram.AddressMapper { return m.mapper }

// Controller returns the XED controller for (channel, rank).
func (m *MemorySystem) Controller(channel, rank int) *Controller {
	return m.ctrls[channel][rank]
}

// Write stores a cache line at a physical byte address (64B aligned; low
// bits ignored).
func (m *MemorySystem) Write(phys uint64, line Line) {
	loc := m.mapper.Decompose(phys)
	m.ctrls[loc.Channel][loc.Rank].WriteLine(loc.Addr, line)
}

// Read fetches a cache line by physical address through the full XED
// hierarchy of the owning rank.
func (m *MemorySystem) Read(phys uint64) ReadResult {
	loc := m.mapper.Decompose(phys)
	return m.ctrls[loc.Channel][loc.Rank].ReadLine(loc.Addr)
}

// InjectChipFailure injects a fault into one chip of one rank.
func (m *MemorySystem) InjectChipFailure(channel, rank, chip int, f dram.Fault) {
	m.ctrls[channel][rank].Rank().InjectChipFailure(chip, f)
}

// TotalStats sums controller counters across the fleet.
func (m *MemorySystem) TotalStats() Stats {
	var total Stats
	for _, row := range m.ctrls {
		for _, c := range row {
			s := c.Stats()
			total.Reads += s.Reads
			total.Writes += s.Writes
			total.CleanReads += s.CleanReads
			total.ErasureCorrections += s.ErasureCorrections
			total.SerialCorrections += s.SerialCorrections
			total.DiagCorrections += s.DiagCorrections
			total.DUEs += s.DUEs
			total.CatchWordsSeen += s.CatchWordsSeen
			total.Collisions += s.Collisions
			total.CatchWordUpdates += s.CatchWordUpdates
			total.InterLineRuns += s.InterLineRuns
			total.IntraLineRuns += s.IntraLineRuns
			total.FCTChipMarks += s.FCTChipMarks
		}
	}
	return total
}

// ScrubAll runs one full patrol pass over every rank and returns the
// total DUE count encountered.
func (m *MemorySystem) ScrubAll() int {
	dues := 0
	for _, row := range m.ctrls {
		for _, c := range row {
			dues += NewScrubber(c).FullPass()
		}
	}
	return dues
}

// String summarises the fleet.
func (m *MemorySystem) String() string {
	return fmt.Sprintf("MemorySystem(%d channels x %d ranks x 9 chips, %d MB)",
		len(m.ctrls), len(m.ctrls[0]), m.Capacity()>>20)
}
