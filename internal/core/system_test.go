package core

import (
	"testing"
	"testing/quick"

	"xedsim/internal/dram"
	"xedsim/internal/simrand"
)

func smallFleet(t testing.TB, scaling float64) *MemorySystem {
	t.Helper()
	m, err := NewMemorySystem(MemorySystemConfig{
		Channels:         4,
		RanksPerChannel:  2,
		Geometry:         dram.Geometry{Banks: 2, RowsPerBank: 8, ColsPerRow: 128},
		ScalingFaultRate: scaling,
		Seed:             17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMemorySystemCapacityAndString(t *testing.T) {
	m := smallFleet(t, 0)
	wantLines := uint64(4 * 2 * 2 * 8 * 128)
	if m.Capacity() != wantLines*64 {
		t.Fatalf("capacity %d, want %d", m.Capacity(), wantLines*64)
	}
	if s := m.String(); s == "" {
		t.Fatal("empty string")
	}
}

func TestMemorySystemRoundTripAcrossFleet(t *testing.T) {
	m := smallFleet(t, 0)
	rng := simrand.New(70)
	lines := map[uint64]Line{}
	for i := 0; i < 500; i++ {
		phys := (rng.Uint64() % (m.Capacity() / 64)) << 6
		l := lineOf(rng)
		lines[phys] = l
		m.Write(phys, l)
	}
	for phys, want := range lines {
		res := m.Read(phys)
		if res.Outcome != OutcomeClean || res.Data != want {
			t.Fatalf("addr %#x: %+v", phys, res)
		}
	}
	st := m.TotalStats()
	if st.Writes != 500 || st.Reads != uint64(len(lines)) {
		t.Fatalf("fleet stats: %+v", st)
	}
}

func TestMemorySystemChipFailureScopedToRank(t *testing.T) {
	m := smallFleet(t, 0)
	rng := simrand.New(71)
	// Fill a sample of lines everywhere.
	var addrs []uint64
	lines := map[uint64]Line{}
	for i := 0; i < 400; i++ {
		phys := (rng.Uint64() % (m.Capacity() / 64)) << 6
		l := lineOf(rng)
		addrs = append(addrs, phys)
		lines[phys] = l
		m.Write(phys, l)
	}
	m.InjectChipFailure(2, 1, 5, dram.NewChipFault(false, 3))
	for _, phys := range addrs {
		res := m.Read(phys)
		if res.Data != lines[phys] {
			t.Fatalf("addr %#x corrupted: %+v", phys, res)
		}
		loc := m.Mapper().Decompose(phys)
		wantErasure := loc.Channel == 2 && loc.Rank == 1
		if wantErasure && res.Outcome == OutcomeClean {
			t.Fatalf("addr %#x in failed rank read clean", phys)
		}
		if !wantErasure && res.Outcome != OutcomeClean {
			t.Fatalf("addr %#x outside failed rank: %v", phys, res.Outcome)
		}
	}
}

func TestAddressMapperInverse(t *testing.T) {
	m := dram.MustNewMapper(4, 2, dram.Geometry{Banks: 8, RowsPerBank: 64, ColsPerRow: 128})
	f := func(raw uint64) bool {
		phys := (raw % m.Lines()) << 6
		loc := m.Decompose(phys)
		return m.Compose(loc) == phys
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddressMapperChannelInterleave(t *testing.T) {
	// Consecutive cache lines land on consecutive channels — the
	// stream-friendly interleave of the Table V system.
	m := dram.MustNewMapper(4, 2, dram.Geometry{Banks: 8, RowsPerBank: 64, ColsPerRow: 128})
	for i := uint64(0); i < 16; i++ {
		loc := m.Decompose(i << 6)
		if loc.Channel != int(i%4) {
			t.Fatalf("line %d on channel %d, want %d", i, loc.Channel, i%4)
		}
	}
}

func TestAddressMapperCoversAllBanksAndRanks(t *testing.T) {
	m := dram.MustNewMapper(2, 2, dram.Geometry{Banks: 4, RowsPerBank: 8, ColsPerRow: 4})
	seen := map[[4]int]bool{}
	for line := uint64(0); line < m.Lines(); line++ {
		loc := m.Decompose(line << 6)
		key := [4]int{loc.Channel, loc.Rank, loc.Addr.Bank, loc.Addr.Row}
		seen[key] = true
		if !m.Geom.Contains(loc.Addr) {
			t.Fatalf("line %d decomposed outside geometry: %+v", line, loc)
		}
	}
	want := 2 * 2 * 4 * 8
	if len(seen) != want {
		t.Fatalf("address map reaches %d (ch,rank,bank,row) tuples, want %d", len(seen), want)
	}
}

func TestAddressMapperBounds(t *testing.T) {
	m := dram.MustNewMapper(2, 1, dram.Geometry{Banks: 2, RowsPerBank: 2, ColsPerRow: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic beyond capacity")
		}
	}()
	m.Decompose(m.Bytes())
}

func TestScrubberHealsTransientFaults(t *testing.T) {
	ctrl := newXED(t)
	rng := simrand.New(72)
	geom := ctrl.Rank().Geometry()

	a := dram.WordAddr{Bank: 1, Row: 4, Col: 9}
	data := lineOf(rng)
	ctrl.WriteLine(a, data)
	// A transient row fault: many lines of the row damaged until
	// rewritten.
	ctrl.Rank().Chip(2).InjectFault(dram.NewRowFault(1, 4, true, 5))

	s := NewScrubber(ctrl)
	s.FullPass()
	st := s.Stats()
	if st.Corrections == 0 {
		t.Fatal("scrub pass corrected nothing")
	}
	if st.LinesScrubbed != uint64(geom.Banks*geom.RowsPerBank*geom.ColsPerRow) {
		t.Fatalf("scrubbed %d lines", st.LinesScrubbed)
	}
	if st.PassesDone != 1 {
		t.Fatalf("passes = %d", st.PassesDone)
	}
	// After scrubbing, the transient damage is healed: clean read, and
	// the chip-level fault no longer corrupts (rewritten epoch).
	res := ctrl.ReadLine(a)
	if res.Outcome != OutcomeClean || res.Data != data {
		t.Fatalf("post-scrub read: %+v (data ok=%v)", res.Outcome, res.Data == data)
	}
}

func TestScrubberLeavesPermanentFaultsCorrectable(t *testing.T) {
	ctrl := newXED(t)
	rng := simrand.New(73)
	a := dram.WordAddr{Bank: 0, Row: 2, Col: 3}
	data := lineOf(rng)
	ctrl.WriteLine(a, data)
	ctrl.Rank().Chip(4).InjectFault(dram.NewChipFault(false, 6))
	NewScrubber(ctrl).Step(200)
	// Permanent damage persists, but reads stay correct via erasure.
	res := ctrl.ReadLine(a)
	if res.Data != data {
		t.Fatalf("post-scrub read wrong: %+v", res)
	}
}

func TestScrubberReportsDUEs(t *testing.T) {
	ctrl := newXED(t)
	rng := simrand.New(74)
	a := dram.WordAddr{Bank: 0, Row: 0, Col: 0}
	ctrl.WriteLine(a, lineOf(rng))
	ctrl.Rank().Chip(1).InjectFault(silentWordFault(a, true))
	s := NewScrubber(ctrl)
	if dues := s.Step(1); dues != 1 {
		t.Fatalf("scrub DUEs = %d, want 1", dues)
	}
	if s.Stats().DUEs != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestMemorySystemScrubAll(t *testing.T) {
	m := smallFleet(t, 0.002)
	rng := simrand.New(75)
	for i := 0; i < 100; i++ {
		phys := (rng.Uint64() % (m.Capacity() / 64)) << 6
		m.Write(phys, lineOf(rng))
	}
	if dues := m.ScrubAll(); dues != 0 {
		t.Fatalf("scaling faults alone caused %d scrub DUEs", dues)
	}
}
