// Package core implements XED itself: the memory-controller side of
// eXposed on-die Error Detection (Nair, Sridharan, Qureshi, ISCA 2016).
//
// A Controller drives a 9-chip ECC-DIMM whose chips have On-Die ECC and the
// XED extensions (XED-Enable register, Catch-Word Register, DC-Mux). The
// ninth chip stores RAID-3 parity of the eight data beats (§V-C). On a
// read, any chip whose on-die engine detected or corrected an error returns
// its catch-word instead of data; the controller recognises the catch-word,
// treats the chip as an erasure and reconstructs its beat from parity —
// Chipkill-level protection from one commodity DIMM.
//
// The package also implements the paper's §VI machinery for the 0.8% of
// multi-bit chip errors the on-die code misses (Inter-Line and Intra-Line
// Fault Diagnosis with the Faulty-row Chip Tracker), §VII's serial-mode
// correction of concurrent scaling faults, §V-D's catch-word collision
// handling, and §IX's XED-on-Chipkill controller that reaches
// Double-Chipkill-level protection on Single-Chipkill hardware.
package core

import "fmt"

// Outcome classifies one cache-line read as seen by the controller.
type Outcome int

const (
	// OutcomeClean: no catch-word, parity consistent.
	OutcomeClean Outcome = iota
	// OutcomeCorrectedErasure: one catch-word; the beat was rebuilt from
	// RAID-3 parity (§V-C2).
	OutcomeCorrectedErasure
	// OutcomeCorrectedSerial: multiple catch-words from scaling faults;
	// serial-mode re-read with XED disabled recovered all beats (§VII-B).
	OutcomeCorrectedSerial
	// OutcomeCorrectedDiagnosis: the on-die code missed a multi-bit
	// error (parity mismatch with no catch-word) or a chip failure hid
	// among scaling faults, and Inter-/Intra-Line diagnosis identified
	// the faulty chip so parity could rebuild it (§VI, §VII-C).
	OutcomeCorrectedDiagnosis
	// OutcomeDUE: a detected uncorrectable error — the parity mismatch
	// could not be attributed to a single chip (§VIII).
	OutcomeDUE
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeClean:
		return "clean"
	case OutcomeCorrectedErasure:
		return "corrected-erasure"
	case OutcomeCorrectedSerial:
		return "corrected-serial"
	case OutcomeCorrectedDiagnosis:
		return "corrected-diagnosis"
	case OutcomeDUE:
		return "detected-uncorrectable"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// ReadResult reports one line read.
type ReadResult struct {
	// Data is the eight 64-bit data beats of the cache line.
	Data [8]uint64
	// Outcome classifies how the line was obtained.
	Outcome Outcome
	// FaultyChips lists chips treated as erasures (catch-word senders or
	// diagnosis verdicts), if any. The slice aliases controller scratch to
	// keep the read path allocation-free: it is valid until the next
	// operation on the same controller, so copy it to retain it.
	FaultyChips []int
	// Collision is true when a legitimate data value matched a chip's
	// catch-word (§V-D); the controller corrected "unnecessarily" and
	// regenerated that chip's catch-word.
	Collision bool
}

// Stats aggregates controller activity for experiments and tests.
type Stats struct {
	Reads, Writes uint64

	CleanReads         uint64
	ErasureCorrections uint64
	SerialCorrections  uint64
	DiagCorrections    uint64
	DUEs               uint64

	CatchWordsSeen   uint64
	Collisions       uint64
	CatchWordUpdates uint64

	InterLineRuns uint64
	IntraLineRuns uint64
	FCTChipMarks  uint64
}
