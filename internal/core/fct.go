package core

// FCT is the Faulty-row Chip Tracker of §VI-A: a small hardware structure
// caching the result of Inter-Line Fault Diagnosis. Each entry is a
// (row address, faulty chip) tuple — 32+4 bits in hardware. The sizing
// insight from the paper: a system sees either one or two faulty rows (a
// row failure) or thousands (a column/bank failure), so a handful of
// entries suffices — once every entry points at the same chip, that chip
// is permanently marked faulty and all later accesses reconstruct it from
// parity without re-running diagnosis.
type FCT struct {
	capacity int
	entries  []fctEntry
	// markedChip is the permanently-faulty chip, or -1.
	markedChip int
}

type fctEntry struct {
	bank, row int
	chip      int
}

// DefaultFCTEntries is the paper's suggested size (4-8 entries; we use 8).
const DefaultFCTEntries = 8

// NewFCT builds a tracker with the given number of entries (min 1).
func NewFCT(capacity int) *FCT {
	if capacity < 1 {
		capacity = 1
	}
	return &FCT{capacity: capacity, markedChip: -1}
}

// Lookup returns the faulty chip recorded for the row, or -1. A permanently
// marked chip matches every row.
func (f *FCT) Lookup(bank, row int) int {
	if f.markedChip >= 0 {
		return f.markedChip
	}
	for _, e := range f.entries {
		if e.bank == bank && e.row == row {
			return e.chip
		}
	}
	return -1
}

// Insert records a diagnosis verdict. When the tracker fills and every
// entry names the same chip, that chip is permanently marked (the
// column/bank-failure case) and Insert reports marked=true.
func (f *FCT) Insert(bank, row, chip int) (marked bool) {
	if f.markedChip >= 0 {
		return false
	}
	for i, e := range f.entries {
		if e.bank == bank && e.row == row {
			f.entries[i].chip = chip
			return false
		}
	}
	if len(f.entries) < f.capacity {
		f.entries = append(f.entries, fctEntry{bank: bank, row: row, chip: chip})
	} else {
		// FIFO replacement on overflow.
		copy(f.entries, f.entries[1:])
		f.entries[f.capacity-1] = fctEntry{bank: bank, row: row, chip: chip}
	}
	if len(f.entries) == f.capacity {
		same := true
		for _, e := range f.entries {
			if e.chip != f.entries[0].chip {
				same = false
				break
			}
		}
		if same {
			f.markedChip = f.entries[0].chip
			return true
		}
	}
	return false
}

// MarkedChip returns the permanently marked chip, or -1.
func (f *FCT) MarkedChip() int { return f.markedChip }

// Len returns the number of live entries.
func (f *FCT) Len() int { return len(f.entries) }

// Reset clears the tracker (chip replacement / repair flows).
func (f *FCT) Reset() {
	f.entries = f.entries[:0]
	f.markedChip = -1
}
