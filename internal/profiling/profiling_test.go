package profiling

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestNoFlagsIsANoOp(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestProfilesAreWritten(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	// A little work so the CPU profile has something to sample.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i * i
	}
	_ = sink
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s is empty", path)
		}
	}
}

func TestStartFailsOnBadPath(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-cpuprofile", filepath.Join(t.TempDir(), "no", "such", "dir", "x")}); err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err == nil {
		t.Fatal("expected error for uncreatable profile path")
	}
}
