// Package profiling wires the standard -cpuprofile/-memprofile flags into
// the command-line tools so hot paths can be inspected with `go tool
// pprof` without recompiling. It is a thin veneer over runtime/pprof: the
// CPU profile covers Start..Stop, and the heap profile is a post-GC
// snapshot taken at Stop (in-use allocations, the number that matters for
// the simulator's steady-state footprint).
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profile destinations parsed from the command line.
type Flags struct {
	cpuProfile string
	memProfile string
	cpuFile    *os.File
}

// Register installs -cpuprofile and -memprofile on fs (use
// flag.CommandLine for a main package) and returns the handle to
// Start/Stop around the program's work.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.cpuProfile, "cpuprofile", "", "write a CPU profile to `file` (inspect with go tool pprof)")
	fs.StringVar(&f.memProfile, "memprofile", "", "write a post-GC heap profile to `file` at exit")
	return f
}

// Start begins CPU profiling when -cpuprofile was given. Call after
// flag parsing and before the workload.
func (f *Flags) Start() error {
	if f.cpuProfile == "" {
		return nil
	}
	file, err := os.Create(f.cpuProfile)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	if err := pprof.StartCPUProfile(file); err != nil {
		file.Close()
		return fmt.Errorf("profiling: %w", err)
	}
	f.cpuFile = file
	return nil
}

// Stop finishes the CPU profile and writes the heap profile, as
// requested. Safe to call when neither flag was given.
func (f *Flags) Stop() error {
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		err := f.cpuFile.Close()
		f.cpuFile = nil
		if err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
	}
	if f.memProfile == "" {
		return nil
	}
	file, err := os.Create(f.memProfile)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	defer file.Close()
	runtime.GC() // report live objects, not transient garbage
	if err := pprof.WriteHeapProfile(file); err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	return nil
}
