package conformance

import (
	"context"
	"fmt"

	"xedsim/internal/faultsim"
	"xedsim/internal/fleet"
)

// FleetRunner ages a fleet on behalf of a claim check. The default is
// fleet.Run; tests substitute sabotaged runners (doubled FIT rates, dropped
// chunks) to demonstrate the fleet claim actually refutes them.
type FleetRunner func(ctx context.Context, cfg fleet.Config, opts fleet.Options) (*fleet.Summary, error)

// fleetFigure1Claim ties the fleet simulator back to the Monte-Carlo
// campaigns it is built from: aging N single-DIMM systems in the field
// simulator and running N single-DIMM campaign trials must measure the same
// 7-year XED failure probability (Wilson-interval band), and the fleet must
// log zero SDCs — under XED every field failure is a *detected* failure,
// which is what makes its EDAC ue_count trustworthy. A fleet bug that
// doubles arrival rates, drops chunks or mis-judges records moves the
// failure fraction outside the band and refutes the claim.
func fleetFigure1Claim() Claim {
	const band = 2.0
	return Claim{
		Name: "fleet/xed-field-rate-matches-campaign",
		Ref:  "§I Fig. 1, §VIII Table IV",
		Doc:  "fleet-simulated per-DIMM 7-year XED failure rate matches the single-DIMM campaign within 2x, with zero SDCs",
		Check: func(ctx context.Context, o Options) Verdict {
			schemes, err := o.Schemes(schemeXED)
			if err != nil {
				return Verdict{Status: Errored, Err: err, Detail: err.Error()}
			}
			n := o.MaxTrials / 4
			if n < o.Batch {
				n = o.Batch
			}

			fcfg := fleet.DefaultConfig()
			fcfg.DIMMs = n
			sum, err := o.Fleet(ctx, fcfg, fleet.Options{
				Seed:    batchSeed(o.Seed, "fleet/field", 0),
				Workers: o.Workers,
			})
			if err != nil {
				return Verdict{Status: Errored, Err: err, Detail: err.Error()}
			}

			// The campaign side is the same DIMM the fleet ages: one channel
			// of the §III system, judged by the same evaluator.
			ccfg := faultsim.DefaultConfig()
			ccfg.Channels = 1
			rep, err := o.Runner(ctx, ccfg, schemes, faultsim.CampaignOptions{
				Trials:  n,
				Seed:    batchSeed(o.Seed, "fleet/campaign", 0),
				Workers: o.Workers,
				Engine:  o.Engine,
				Gen:     o.Gen,
			})
			if err != nil {
				return Verdict{Status: Errored, Err: err, Detail: err.Error()}
			}

			kF, nF := sum.Tally.Failed, sum.Tally.DIMMs
			kC, nC := rep.Results[0].Failures, rep.Trials
			loF, hiF := faultsim.WilsonInterval(kF, nF)
			loC, hiC := faultsim.WilsonInterval(kC, nC)
			trials := nF + nC
			detail := fmt.Sprintf("fleet P=%.3g (%d/%d DIMMs, %d SDC) vs campaign P=%.3g (%d/%d trials), band %gx",
				float64(kF)/float64(nF), kF, nF, sum.Tally.SDCs,
				float64(kC)/float64(nC), kC, nC, band)
			switch {
			case sum.Tally.SDCs != 0:
				return Verdict{Status: Refuted, Detail: detail + " (fleet logged SDCs under XED)", Trials: trials, Confidence: 1}
			case hiF <= band*loC && hiC <= band*loF:
				return Verdict{Status: Confirmed, Detail: detail, Trials: trials, Confidence: 0.95}
			case loF > band*hiC || loC > band*hiF:
				return Verdict{Status: Refuted, Detail: detail, Trials: trials, Confidence: 0.95}
			}
			return Verdict{Status: Inconclusive, Detail: detail, Trials: trials}
		},
	}
}
