package conformance

import (
	"math"
	"testing"

	"xedsim/internal/simrand"
)

// TestRatioSPRTDirections drives the test with synthetic failure streams
// on both sides of the claim boundary: a true 20x margin must accept a
// 10x claim, and equal failure rates must reject it.
func TestRatioSPRTDirections(t *testing.T) {
	cases := []struct {
		name   string
		qTrue  float64 // P(failure is an A-failure)
		want   Decision
		maxObs int
	}{
		// pB = 20*pA => q = 1/21; claim ratio 10 holds with margin.
		{"true margin accepts", 1.0 / 21, AcceptClaim, 1_000_000},
		// pA = pB => q = 1/2; claim ratio 10 is badly false.
		{"equal rates reject", 0.5, RejectClaim, 1_000_000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sprt := NewRatioSPRT(10, 2, 1e-9, 1e-9)
			rng := simrand.New(7)
			for i := 0; i < tc.maxObs && sprt.Decision() == Undecided; i++ {
				if rng.Float64() < tc.qTrue {
					sprt.Observe(1, 0)
				} else {
					sprt.Observe(0, 1)
				}
			}
			if got := sprt.Decision(); got != tc.want {
				kA, kB := sprt.Counts()
				t.Fatalf("decision %v after %d/%d observations, want %v (LLR %v)",
					got, kA, kB, tc.want, sprt.LLR())
			}
		})
	}
}

// TestRatioSPRTTerminationSticks: once a boundary is crossed, further
// observations must not move the decision or the counts — the recorded
// decision is the sequential one.
func TestRatioSPRTTerminationSticks(t *testing.T) {
	sprt := NewRatioSPRT(10, 2, 1e-3, 1e-3)
	for i := 0; i < 10_000 && sprt.Decision() == Undecided; i++ {
		sprt.Observe(0, 1)
	}
	if sprt.Decision() != AcceptClaim {
		t.Fatalf("all-B stream did not accept: %v", sprt.Decision())
	}
	llr := sprt.LLR()
	kA, kB := sprt.Counts()
	sprt.Observe(1_000_000, 0) // would reject if it counted
	if sprt.Decision() != AcceptClaim || sprt.LLR() != llr {
		t.Fatal("post-termination observation changed the test")
	}
	if a, b := sprt.Counts(); a != kA || b != kB {
		t.Fatal("post-termination observation changed the counts")
	}
}

// TestRatioSPRTBatchEquivalence: feeding counts in one batch or one by one
// reaches the same LLR while undecided (the statistic is a sum).
func TestRatioSPRTBatchEquivalence(t *testing.T) {
	one := NewRatioSPRT(5, 3, 1e-6, 1e-6)
	batch := NewRatioSPRT(5, 3, 1e-6, 1e-6)
	for i := 0; i < 3; i++ {
		one.Observe(1, 0)
	}
	for i := 0; i < 7; i++ {
		one.Observe(0, 1)
	}
	batch.Observe(3, 7)
	if one.Decision() != Undecided || batch.Decision() != Undecided {
		t.Fatalf("test terminated unexpectedly: %v / %v", one.Decision(), batch.Decision())
	}
	if math.Abs(one.LLR()-batch.LLR()) > 1e-9 {
		t.Fatalf("LLR diverged: %v vs %v", one.LLR(), batch.LLR())
	}
}

// TestNewRatioSPRTPanicsOnInvalid pins the static-claim-table contract:
// malformed parameters are programming errors.
func TestNewRatioSPRTPanicsOnInvalid(t *testing.T) {
	bad := [][4]float64{
		{0, 2, 1e-9, 1e-9},   // ratio <= 0
		{-1, 2, 1e-9, 1e-9},  // negative ratio
		{10, 1, 1e-9, 1e-9},  // separation <= 1
		{10, 2, 0, 1e-9},     // alpha <= 0
		{10, 2, 1, 1e-9},     // alpha >= 1
		{10, 2, 1e-9, 0},     // beta <= 0
		{10, 2, 1e-9, 1.001}, // beta >= 1
	}
	for _, p := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRatioSPRT(%v, %v, %v, %v) did not panic", p[0], p[1], p[2], p[3])
				}
			}()
			NewRatioSPRT(p[0], p[1], p[2], p[3])
		}()
	}
}

// TestWilsonSeparation checks the three regions of the fallback test.
func TestWilsonSeparation(t *testing.T) {
	// 10 vs 10_000 failures in 1M trials: clear 10x separation.
	confirmed, refuted := wilsonSeparation(10, 1_000_000, 10_000, 1_000_000, 10)
	if !confirmed || refuted {
		t.Fatalf("clear separation: confirmed=%v refuted=%v", confirmed, refuted)
	}
	// Equal counts: claiming 10x must be refuted.
	confirmed, refuted = wilsonSeparation(10_000, 1_000_000, 10_000, 1_000_000, 10)
	if confirmed || !refuted {
		t.Fatalf("equal counts: confirmed=%v refuted=%v", confirmed, refuted)
	}
	// Sparse counts straddling the boundary: neither.
	confirmed, refuted = wilsonSeparation(2, 10_000, 25, 10_000, 10)
	if confirmed || refuted {
		t.Fatalf("straddling: confirmed=%v refuted=%v", confirmed, refuted)
	}
}
