package conformance

import (
	"context"
	"fmt"

	"xedsim/internal/dram"
	"xedsim/internal/ecc"
	"xedsim/internal/infer"
	"xedsim/internal/simrand"
)

// Inference claims: the BEER/HARP-style related-work scenario (ROADMAP
// item 3). These are exhaustive — the probe sweep enumerates every check
// support and the profiler's fault plants are deterministic — so Confirmed
// verdicts carry confidence 1.

// inferGeom is a small chip; recovery probes one word, profiling a few.
func inferGeom() dram.Geometry {
	return dram.Geometry{Banks: 4, RowsPerBank: 32, ColsPerRow: 8}
}

// beerRecoveryClaim is the tentpole's acceptance gate: the BEER-style
// probe pass, looking only at bus-visible data from a black-box chip,
// recovers a randomly drawn SECDED code's parity-check matrix exactly —
// bit-for-bit H equality — and does the same for the three hand-rolled
// codes up to canonical form (the only form black-box inference can
// distinguish).
func beerRecoveryClaim() Claim {
	return Claim{
		Name: "infer/beer-recovers-random-code",
		Ref:  "BEER (arXiv:2009.07985)",
		Doc:  "check-bit probe sweeps recover randomly drawn and hand-rolled on-die H-matrices exactly",
		Check: func(ctx context.Context, o Options) Verdict {
			var probes uint64
			const draws = 6
			for i := 0; i < draws; i++ {
				if err := ctx.Err(); err != nil {
					return Verdict{Status: Errored, Err: err, Trials: probes}
				}
				code := ecc.RandomSECDED(simrand.New(batchSeed(o.Seed, "infer/beer", i)))
				chip := dram.NewChip(inferGeom(), code)
				got, ev, err := infer.RecoverHMatrix(chip, infer.BEEROptions{Rounds: 1, Seed: o.Seed + uint64(i)})
				if ev != nil {
					probes += uint64(ev.ProbeCount)
				}
				if err != nil {
					return Verdict{Status: Refuted, Confidence: 1, Trials: probes,
						Detail: fmt.Sprintf("draw %d (%s): %v", i, code.Name(), err)}
				}
				if got != code.Matrix() {
					return Verdict{Status: Refuted, Confidence: 1, Trials: probes,
						Detail: fmt.Sprintf("draw %d (%s): recovered H differs from the drawn H", i, code.Name())}
				}
			}
			// The hand-rolled codes recover up to canonical form: Hamming
			// spells its syndromes differently, the codeword set is what
			// a black box exposes.
			for _, code := range secdedCodecs() {
				m, ok := code.(interface{ Matrix() ecc.HMatrix72 })
				if !ok {
					return Verdict{Status: Errored, Trials: probes,
						Err: fmt.Errorf("%s exposes no Matrix()", code.Name())}
				}
				want, err := m.Matrix().Canonical()
				if err != nil {
					return Verdict{Status: Errored, Err: err, Trials: probes}
				}
				chip := dram.NewChip(inferGeom(), code)
				got, ev, err := infer.RecoverHMatrix(chip, infer.BEEROptions{Seed: o.Seed})
				if ev != nil {
					probes += uint64(ev.ProbeCount)
				}
				if err != nil {
					return Verdict{Status: Refuted, Confidence: 1, Trials: probes,
						Detail: fmt.Sprintf("%s: %v", code.Name(), err)}
				}
				if got != want {
					return Verdict{Status: Refuted, Confidence: 1, Trials: probes,
						Detail: fmt.Sprintf("%s: recovered H differs from canonical form", code.Name())}
				}
			}
			return Verdict{Status: Confirmed, Confidence: 1, Trials: probes,
				Detail: fmt.Sprintf("%d random draws + %d hand-rolled codes recovered bit-for-bit over %d probes",
					draws, len(secdedCodecs()), probes)}
		},
	}
}

// harpProfilingClaim checks the HARP-style post-correction profiler: over
// chips with planted permanent faults, profiling must flag exactly the
// words whose damage exceeds the on-die code's correction power as
// uncorrectable, and exactly the faulty words as at-risk — no false
// positives on clean words, no misses.
func harpProfilingClaim() Claim {
	return Claim{
		Name: "infer/harp-flags-uncorrectable",
		Ref:  "HARP (arXiv:2109.12697)",
		Doc:  "post-correction profiling flags exactly the on-die-uncorrectable words",
		Check: func(ctx context.Context, o Options) Verdict {
			var reads uint64
			for i, code := range secdedCodecs() {
				if err := ctx.Err(); err != nil {
					return Verdict{Status: Errored, Err: err, Trials: reads}
				}
				rng := simrand.New(batchSeed(o.Seed, "infer/harp", i))
				chip := dram.NewChip(inferGeom(), code)
				geom := chip.Geometry()
				// Plant one single-bit (correctable) and one double-bit
				// (uncorrectable) permanent fault at distinct addresses,
				// and keep one address clean.
				addr := func(n int) dram.WordAddr {
					return dram.WordAddr{Bank: n % geom.Banks, Row: rng.Intn(geom.RowsPerBank), Col: rng.Intn(geom.ColsPerRow)}
				}
				clean, atRisk, broken := addr(0), addr(1), addr(2)
				bitA := rng.Intn(64)
				bitB := (bitA + 1 + rng.Intn(63)) % 64
				chip.InjectFault(dram.NewBitFault(atRisk, rng.Intn(64), false))
				chip.InjectFault(dram.NewWordFault(broken, 1<<uint(bitA)|1<<uint(bitB), 0, false))
				p := infer.ProfileChip(chip, []dram.WordAddr{clean, atRisk, broken}, infer.HARPOptions{Rounds: 8, Seed: o.Seed + uint64(i)})
				for _, w := range p.Words {
					reads += uint64(w.Reads)
				}
				uncorr := p.PredictUncorrectable()
				risk := p.PredictAtRisk()
				detail := func(msg string) string {
					return fmt.Sprintf("%s: %s (uncorrectable %v, at-risk %v)", code.Name(), msg, uncorr, risk)
				}
				if len(uncorr) != 1 || uncorr[0] != broken {
					return Verdict{Status: Refuted, Confidence: 1, Trials: reads,
						Detail: detail("uncorrectable set is not exactly the double-bit word")}
				}
				if len(risk) != 2 || risk[0] != atRisk || risk[1] != broken {
					return Verdict{Status: Refuted, Confidence: 1, Trials: reads,
						Detail: detail("at-risk set is not exactly the two faulty words")}
				}
				if p.Words[0].AtRisk() {
					return Verdict{Status: Refuted, Confidence: 1, Trials: reads,
						Detail: detail("clean word flagged")}
				}
			}
			return Verdict{Status: Confirmed, Confidence: 1, Trials: reads,
				Detail: fmt.Sprintf("%d profiling reads over %d codecs classified every planted fault correctly",
					reads, len(secdedCodecs()))}
		},
	}
}
