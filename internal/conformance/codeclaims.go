package conformance

import (
	"context"
	"fmt"
	"math"

	"xedsim/internal/ecc"
	"xedsim/internal/faultsim"
	"xedsim/internal/simrand"
)

// Exhaustive claims: checks whose input spaces are small enough to sweep
// completely, so a Confirmed verdict carries confidence 1.

// sampleDataWords returns the data words the codeword sweeps run over:
// structured corner patterns plus seeded random fill. The SECDED and burst
// guarantees are linear (they hold for one word iff they hold for all),
// but sweeping several words keeps the claim honest against nonlinear
// implementation bugs (lookup-table corruption, masking slips).
func sampleDataWords(seed uint64, random int) []uint64 {
	words := []uint64{
		0,
		^uint64(0),
		0xAAAAAAAAAAAAAAAA,
		0x5555555555555555,
		0x0123456789ABCDEF,
	}
	rng := simrand.New(seed)
	for i := 0; i < random; i++ {
		words = append(words, rng.Uint64())
	}
	return words
}

// table1Claim pins the Table I FIT inputs the whole evaluation rests on:
// the fourteen (granularity, persistence) classes and their totals from
// Sridharan et al.'s field study. A reproduction that drifts here produces
// the right orderings for the wrong system.
func table1Claim() Claim {
	return Claim{
		Name: "table1/fit-inputs",
		Ref:  "§III Table I",
		Doc:  "FIT table: 14 fault classes, 66.1 total FIT/chip, 33.3 visible past On-Die ECC",
		Check: func(ctx context.Context, o Options) Verdict {
			table := faultsim.TableI()
			const eps = 1e-9
			if len(table) != 14 {
				return Verdict{Status: Refuted, Detail: fmt.Sprintf("%d fault classes, want 14", len(table))}
			}
			total := float64(table.TotalFIT())
			visible := float64(table.VisibleFIT())
			detail := fmt.Sprintf("total %.1f FIT, visible %.1f FIT over %d classes", total, visible, len(table))
			if math.Abs(total-66.1) > eps || math.Abs(visible-33.3) > eps {
				return Verdict{Status: Refuted, Detail: detail, Confidence: 1}
			}
			cfg := faultsim.DefaultConfig()
			if err := cfg.Validate(); err != nil {
				return Verdict{Status: Refuted, Detail: "default config invalid: " + err.Error(), Confidence: 1}
			}
			return Verdict{Status: Confirmed, Detail: detail, Trials: uint64(len(table)), Confidence: 1}
		},
	}
}

// secdedCodecs returns the three (72,64) SECDED implementations under test.
func secdedCodecs() []ecc.Code64 {
	return []ecc.Code64{ecc.NewHamming(), ecc.NewCRC8ATM(), ecc.NewHsiao()}
}

// secdedAgreementClaim sweeps every weight-1 and weight-2 error pattern
// (72 + 2556 per data word) through all three SECDED codecs and demands
// the §V-E guarantee from each: single-bit errors corrected back to the
// original data, double-bit errors always detected and never mis-corrected.
// Since the required verdict is unique, satisfying the guarantee and
// agreeing with each other are the same claim.
func secdedAgreementClaim() Claim {
	return Claim{
		Name: "secded/weight2-agreement",
		Ref:  "§V-E Table II",
		Doc:  "Hamming, CRC8-ATM and Hsiao all correct weight-1 and detect weight-2 patterns",
		Check: func(ctx context.Context, o Options) Verdict {
			var patterns uint64
			for _, data := range sampleDataWords(o.Seed, 3) {
				for _, code := range secdedCodecs() {
					clean := code.Encode(data)
					if !code.IsValid(clean) {
						return Verdict{Status: Refuted, Confidence: 1,
							Detail: fmt.Sprintf("%s: Encode(%#x) is not a valid codeword", code.Name(), data)}
					}
					for i := 0; i < 72; i++ {
						one := clean.FlipBit(i)
						got, st := code.Decode(one)
						patterns++
						if code.IsValid(one) || st != ecc.StatusCorrected || got != data {
							return Verdict{Status: Refuted, Confidence: 1,
								Detail: fmt.Sprintf("%s: weight-1 flip at bit %d on %#x: status %v, data %#x", code.Name(), i, data, st, got)}
						}
						for j := i + 1; j < 72; j++ {
							two := one.FlipBit(j)
							_, st := code.Decode(two)
							patterns++
							if code.IsValid(two) || st != ecc.StatusDetected {
								return Verdict{Status: Refuted, Confidence: 1,
									Detail: fmt.Sprintf("%s: weight-2 flips {%d,%d} on %#x: status %v, want detected", code.Name(), i, j, data, st)}
							}
						}
					}
				}
			}
			return Verdict{Status: Confirmed, Confidence: 1, Trials: patterns,
				Detail: fmt.Sprintf("%d (codec, data, pattern) decodes, all per guarantee", patterns)}
		},
	}
}

// crc8BurstClaim checks the property that makes CRC8-ATM the paper's
// recommended on-die code (§V-E): a degree-8 CRC detects *every* burst of
// length <= 8, where Hamming codes provably miss some. Both halves are
// asserted — the guarantee for CRC8 and the existence of a missed burst
// for Hamming — because the contrast is the claim.
func crc8BurstClaim() Claim {
	return Claim{
		Name: "crc8/burst-detection",
		Ref:  "§V-E",
		Doc:  "CRC8-ATM detects every burst of length <= 8; Hamming provably does not",
		Check: func(ctx context.Context, o Options) Verdict {
			crc := ecc.NewCRC8ATM()
			ham := ecc.NewHamming()
			// Bursts are contiguous in each code's *serial* (wire) order,
			// which is what the degree-8 guarantee speaks about — not in
			// Codeword72 bit-index order.
			crcOrder := crc.SerialOrder()
			hamOrder := ham.SerialOrder()
			var patterns uint64
			hammingMisses := 0
			// A length-L burst is a pattern whose first and last serial
			// bits are L-1 apart: fixed endpoints, free interior.
			burst := func(clean ecc.Codeword72, order *[72]int, start, length, mid int) ecc.Codeword72 {
				cw := clean.FlipBit(order[start])
				if length >= 2 {
					cw = cw.FlipBit(order[start+length-1])
					for b := 0; b < length-2; b++ {
						if mid&(1<<uint(b)) != 0 {
							cw = cw.FlipBit(order[start+1+b])
						}
					}
				}
				return cw
			}
			for _, data := range sampleDataWords(o.Seed+1, 2) {
				crcClean := crc.Encode(data)
				hamClean := ham.Encode(data)
				for length := 1; length <= 8; length++ {
					interior := 1
					if length >= 2 {
						interior = 1 << uint(length-2)
					}
					for start := 0; start+length <= 72; start++ {
						for mid := 0; mid < interior; mid++ {
							patterns++
							if crc.IsValid(burst(crcClean, &crcOrder, start, length, mid)) {
								return Verdict{Status: Refuted, Confidence: 1,
									Detail: fmt.Sprintf("CRC8 missed burst len %d at serial position %d (interior %#x) on data %#x", length, start, mid, data)}
							}
							if ham.IsValid(burst(hamClean, &hamOrder, start, length, mid)) {
								hammingMisses++
							}
						}
					}
				}
			}
			if hammingMisses == 0 {
				return Verdict{Status: Refuted, Confidence: 1, Trials: patterns,
					Detail: "Hamming detected every burst <= 8 — the §V-E contrast this claim encodes has vanished"}
			}
			return Verdict{Status: Confirmed, Confidence: 1, Trials: patterns,
				Detail: fmt.Sprintf("%d bursts: CRC8 detected all, Hamming missed %d", patterns, hammingMisses)}
		},
	}
}

// rsXORBridgeClaim ties the two erasure-repair implementations together:
// RS(8,1)'s single check symbol is the GF(256) sum — the XOR — of the data
// symbols, so byte-sliced RS erasure decoding must agree with the §V-C
// RAID-3 word rebuild (ecc.Parity / ecc.Reconstruct) on every single-chip
// erasure.
func rsXORBridgeClaim() Claim {
	return Claim{
		Name: "rs/xor-bridge",
		Ref:  "§V-C Eq. (1)-(3)",
		Doc:  "RS(8,1) erasure decode agrees with RAID-3 XOR reconstruction on single-chip erasures",
		Check: func(ctx context.Context, o Options) Verdict {
			rs := ecc.NewRS(ecc.ParityWords, 1)
			rng := simrand.New(o.Seed + 2)
			var checks uint64
			const rounds = 256
			for round := 0; round < rounds; round++ {
				words := make([]uint64, ecc.ParityWords)
				for i := range words {
					words[i] = rng.Uint64()
				}
				parity := ecc.Parity(words)
				// Byte lane by byte lane: the RS codeword is the 8 data
				// bytes of one lane plus its check byte.
				for lane := 0; lane < 8; lane++ {
					data := make([]uint8, ecc.ParityWords)
					for i, w := range words {
						data[i] = uint8(w >> uint(8*lane))
					}
					cw := rs.Encode(data)
					if want := uint8(parity >> uint(8*lane)); cw[ecc.ParityWords] != want {
						return Verdict{Status: Refuted, Confidence: 1,
							Detail: fmt.Sprintf("lane %d: RS check symbol %#x != XOR parity byte %#x", lane, cw[ecc.ParityWords], want)}
					}
				}
				// Erase each chip in turn and rebuild both ways.
				for erased := 0; erased < ecc.ParityWords; erased++ {
					rebuilt := ecc.Reconstruct(words, parity, erased)
					if rebuilt != words[erased] {
						return Verdict{Status: Refuted, Confidence: 1,
							Detail: fmt.Sprintf("RAID-3 rebuild of word %d returned %#x, want %#x", erased, rebuilt, words[erased])}
					}
					for lane := 0; lane < 8; lane++ {
						cw := make([]uint8, ecc.ParityWords+1)
						for i, w := range words {
							cw[i] = uint8(w >> uint(8*lane))
						}
						cw[ecc.ParityWords] = uint8(parity >> uint(8*lane))
						cw[erased] ^= uint8(rng.Uint64() | 1) // corrupt the erased symbol
						fixed, err := rs.CorrectErasuresOnly(cw, []int{erased})
						if err != nil {
							return Verdict{Status: Refuted, Confidence: 1,
								Detail: fmt.Sprintf("RS erasure decode failed for chip %d lane %d: %v", erased, lane, err)}
						}
						if want := uint8(rebuilt >> uint(8*lane)); fixed[erased] != want {
							return Verdict{Status: Refuted, Confidence: 1,
								Detail: fmt.Sprintf("chip %d lane %d: RS rebuilt %#x, RAID-3 rebuilt %#x", erased, lane, fixed[erased], want)}
						}
						checks++
					}
				}
			}
			return Verdict{Status: Confirmed, Confidence: 1, Trials: checks,
				Detail: fmt.Sprintf("%d single-chip erasures rebuilt identically by RS(8,1) and XOR parity", checks)}
		},
	}
}

// rsErasureRoundTripClaim exercises the §IX-A XED+Chipkill fast path: the
// RS(16,2) code behind the 18-chip organisation must recover every pair of
// erased symbols, for every pair of positions, from corrupted values.
func rsErasureRoundTripClaim() Claim {
	return Claim{
		Name: "rs/erasure-roundtrip",
		Ref:  "§IX-A",
		Doc:  "RS(16,2) recovers every (corrupted) one- and two-symbol erasure at every position",
		Check: func(ctx context.Context, o Options) Verdict {
			rs := ecc.NewChipkill() // RS(16,2)
			n := rs.K + rs.R
			rng := simrand.New(o.Seed + 3)
			var checks uint64
			const rounds = 64
			buf := make([]uint8, n)
			for round := 0; round < rounds; round++ {
				data := make([]uint8, rs.K)
				for i := range data {
					data[i] = uint8(rng.Uint64())
				}
				clean := rs.Encode(data)
				for i := 0; i < n; i++ {
					for j := i; j < n; j++ {
						copy(buf, clean)
						buf[i] ^= uint8(rng.Uint64() | 1)
						erasures := []int{i}
						if j != i {
							buf[j] ^= uint8(rng.Uint64() | 1)
							erasures = append(erasures, j)
						}
						fixed, err := rs.CorrectErasuresOnly(buf, erasures)
						checks++
						if err != nil {
							return Verdict{Status: Refuted, Confidence: 1,
								Detail: fmt.Sprintf("erasures %v: %v", erasures, err)}
						}
						for k := 0; k < n; k++ {
							if fixed[k] != clean[k] {
								return Verdict{Status: Refuted, Confidence: 1,
									Detail: fmt.Sprintf("erasures %v: symbol %d rebuilt as %#x, want %#x", erasures, k, fixed[k], clean[k])}
							}
						}
					}
				}
			}
			return Verdict{Status: Confirmed, Confidence: 1, Trials: checks,
				Detail: fmt.Sprintf("%d erasure patterns round-tripped", checks)}
		},
	}
}
