// Package conformance encodes the XED paper's qualitative results as
// machine-checkable claims with bounded verification cost. Three claim
// families cover the reproduction:
//
//   - Statistical ordering claims ("XED on a 9-chip DIMM fails at least
//     10x less often than SECDED", Figures 1/7/8/9/10) driven by a
//     sequential probability-ratio test over Monte-Carlo campaign batches,
//     so a clean tree confirms each claim after only as many trials as its
//     margin needs instead of a fixed worst-case count.
//   - Exhaustive code claims (the §V-E SECDED detection guarantees, the
//     §V-C RAID-3/Reed-Solomon erasure agreement, the Table I FIT inputs)
//     checked over their full — small — input spaces.
//   - Differential claims: randomized cross-checks of the pre-indexed
//     Monte-Carlo Evaluator against the reference probe, and of the three
//     SECDED codecs against each other, over generated configurations.
//
// cmd/xedverify runs the full table; the package tests additionally
// demonstrate that a deliberately sabotaged evaluator is refuted.
package conformance

import (
	"fmt"
	"math"

	"xedsim/internal/faultsim"
)

// Decision is the state of a sequential test.
type Decision int

const (
	// Undecided: neither boundary crossed; keep sampling.
	Undecided Decision = iota
	// AcceptClaim: the data crossed the upper boundary; H1 (the claim)
	// is accepted at the configured error rates.
	AcceptClaim
	// RejectClaim: the data crossed the lower boundary; H0 (the claim's
	// negation) is accepted.
	RejectClaim
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case Undecided:
		return "undecided"
	case AcceptClaim:
		return "accept"
	case RejectClaim:
		return "reject"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// RatioSPRT is Wald's sequential probability-ratio test specialised to
// scheme-ordering claims of the form "scheme A's failure probability pA is
// at least `ratio` times smaller than scheme B's pB".
//
// Conditional on a failure occurring under either scheme, it is an
// A-failure with probability q = pA/(pA+pB) (the marginal failure counts
// of a shared-stream campaign have exactly these expectations). The claim
// boundary pB = ratio*pA becomes q0 = 1/(1+ratio); the design alternative
// is q1 = 1/(1+ratio*separation), i.e. the claim holding with `separation`
// to spare. Observations are failure-attribution events: each A-failure
// moves the log-likelihood ratio by log(q1/q0) (towards rejection), each
// B-failure by log((1-q1)/(1-q0)) (towards acceptance). Crossing
// log((1-beta)/alpha) accepts the claim; crossing log(beta/(1-alpha))
// rejects it.
//
// Caveat: trials share fault streams, so A- and B-failure counts are
// positively correlated (a trial that defeats the stronger scheme usually
// defeats the weaker one too) and the nominal alpha/beta are approximate.
// The claim table compensates by demanding margins far inside the measured
// ratios and running at alpha = beta = 1e-9; the campaign-level Wilson
// intervals (see wilsonSeparation) provide an independent cross-check.
type RatioSPRT struct {
	ratio      float64
	q0, q1     float64
	upper      float64 // accept H1 (claim) at llr >= upper
	lower      float64 // accept H0 (refute) at llr <= lower
	stepA      float64 // llr increment per A-failure
	stepB      float64 // llr increment per B-failure
	llr        float64
	kA, kB     uint64
	terminated Decision
}

// NewRatioSPRT builds the sequential test for "pA*ratio <= pB".
// separation (> 1) places the design alternative at pB = ratio*separation*pA;
// larger values decide faster but demand a larger true margin. alpha bounds
// the probability of confirming a false claim, beta of refuting a true one.
// Invalid parameters panic: the claim table is static and a malformed test
// is a programming error, not a data condition.
func NewRatioSPRT(ratio, separation, alpha, beta float64) *RatioSPRT {
	if ratio <= 0 || separation <= 1 || alpha <= 0 || alpha >= 1 || beta <= 0 || beta >= 1 {
		panic(fmt.Sprintf("conformance: invalid SPRT parameters ratio=%v separation=%v alpha=%v beta=%v",
			ratio, separation, alpha, beta))
	}
	q0 := 1 / (1 + ratio)
	q1 := 1 / (1 + ratio*separation)
	return &RatioSPRT{
		ratio: ratio,
		q0:    q0,
		q1:    q1,
		upper: math.Log((1 - beta) / alpha),
		lower: math.Log(beta / (1 - alpha)),
		stepA: math.Log(q1 / q0),
		stepB: math.Log((1 - q1) / (1 - q0)),
	}
}

// Observe folds one campaign batch's failure counts into the test: kA
// failures of the claimed-better scheme, kB of the claimed-worse one.
// Once a boundary has been crossed further observations are ignored, so
// the recorded decision is the sequential one.
func (s *RatioSPRT) Observe(kA, kB uint64) {
	if s.terminated != Undecided {
		return
	}
	s.kA += kA
	s.kB += kB
	s.llr += float64(kA)*s.stepA + float64(kB)*s.stepB
	switch {
	case s.llr >= s.upper:
		s.terminated = AcceptClaim
	case s.llr <= s.lower:
		s.terminated = RejectClaim
	}
}

// Decision returns the test's current state.
func (s *RatioSPRT) Decision() Decision { return s.terminated }

// LLR returns the accumulated log-likelihood ratio (positive favours the
// claim).
func (s *RatioSPRT) LLR() float64 { return s.llr }

// Counts returns the failure events observed so far.
func (s *RatioSPRT) Counts() (kA, kB uint64) { return s.kA, s.kB }

// wilsonSeparation cross-checks an ordering claim with simultaneous 95%
// Wilson intervals: the claim is `confirmed` when even the pessimistic
// corner satisfies it (upper bound of pA, scaled by ratio, below the lower
// bound of pB) and `refuted` when even the optimistic corner violates it.
// Both false means the intervals still straddle the ratio boundary.
func wilsonSeparation(kA, nA, kB, nB uint64, ratio float64) (confirmed, refuted bool) {
	loA, hiA := faultsim.WilsonInterval(kA, nA)
	loB, hiB := faultsim.WilsonInterval(kB, nB)
	confirmed = hiA*ratio < loB
	refuted = loA*ratio > hiB
	return confirmed, refuted
}
