package conformance

import (
	"context"
	"fmt"
	"math"

	"xedsim/internal/faultsim"
	"xedsim/internal/simrand"
)

// Differential claims: the pre-indexed Monte-Carlo Evaluator is an
// optimisation of the reference probe, and optimisations rot. This harness
// regenerates the equivalence evidence over *randomized* configurations —
// corners a hand-written table would not think to cover — every time the
// conformance gate runs.

// heavyWeight builds a weight function that books `w` per visible chip
// fault. Weights of 120 and 130 straddle the Evaluator's int8 fast-path
// envelope: 120 exercises the packed path near its ceiling, 130 (> 127)
// must route through the map-based reference fallback. Divergence on
// either side is exactly the class of bug the fallback gate can hide.
func heavyWeight(w int) func(cfg *faultsim.Config, r *faultsim.FaultRecord) int {
	return func(cfg *faultsim.Config, r *faultsim.FaultRecord) int {
		if faultsim.VisibleWeight(cfg, r) == 0 {
			return 0
		}
		return w
	}
}

// differentialSchemes returns the scheme set each random config is judged
// under: the six paper organisations plus two synthetic heavy-erasure
// schemes straddling the int8 boundary.
func differentialSchemes() []faultsim.Scheme {
	schemes := faultsim.AllSchemes()
	schemes = append(schemes,
		faultsim.NewRankErasureScheme("Heavy120", 200, heavyWeight(120)),
		faultsim.NewRankErasureScheme("Heavy130", 200, heavyWeight(130)),
	)
	return schemes
}

// randomConfig draws one configuration: x4 or x8 chips (18 or 9 per rank),
// scaling faults on or off, On-Die ECC present or absent, varying silent
// fractions, both compound-failure criteria, and FIT rates inflated up to
// 300x so streams are dense enough to collide records in time and space.
func randomConfig(rng *simrand.Source) faultsim.Config {
	cfg := faultsim.DefaultConfig()
	if rng.Intn(2) == 0 {
		cfg.ChipsPerRank = 18 // x4 organisation
	}
	cfg.Channels = 1 + rng.Intn(4)
	cfg.RanksPerChannel = 1 + rng.Intn(2)
	if cfg.Channels%2 == 1 && rng.Intn(2) == 0 {
		cfg.Channels++ // keep some configs Double-Chipkill-pairable
	}
	cfg.OnDie = rng.Intn(4) != 0
	if rng.Intn(2) == 0 {
		cfg.ScalingRate = 1e-4
	}
	cfg.SilentWordFraction = []float64{0, 0.008, 0.5, 1}[rng.Intn(4)]
	cfg.RequireAddressOverlap = rng.Intn(2) == 0
	factor := faultsim.FIT(1 + rng.Intn(300))
	fits := make(faultsim.FITTable, len(cfg.FITs))
	copy(fits, cfg.FITs)
	for i := range fits {
		fits[i].Rate *= factor
	}
	cfg.FITs = fits
	return cfg
}

// evaluatorDifferentialClaim cross-checks Evaluator.EvaluateInto AND the
// bit-sliced LaneEvaluator against the reference FailTimeKind probe over
// o.Configs random configurations x o.TrialsPerConfig captured trials
// each, for all eight schemes. Each config's trials are additionally
// packed into lane batches (the final batch deliberately partial) so the
// word-parallel mask pass and its scalar-probe fallback face the same
// randomized corners as the indexed engine. Traces are captured through the
// selected generation mode (Options.Gen), so -gen=batch drives the SoA
// plan/pack path through the same thousand random corners. The claim is
// bit-identical
// three-way agreement — FailTime compared by float bits, kind by value —
// with zero tolerated divergences.
func evaluatorDifferentialClaim() Claim {
	return Claim{
		Name: "diff/evaluator-vs-reference",
		Ref:  "§III (FaultSim methodology)",
		Doc:  "pre-indexed Evaluator bit-identical to reference probe over random configs",
		Check: func(ctx context.Context, o Options) Verdict {
			rng := simrand.New(o.Seed + 4)
			schemes := differentialSchemes()
			var trials, comparisons uint64
			for c := 0; c < o.Configs; c++ {
				if err := ctx.Err(); err != nil {
					return Verdict{Status: Errored, Err: err, Trials: trials, Detail: "cancelled mid-sweep"}
				}
				cfg := randomConfig(rng)
				trace, err := faultsim.CaptureTraceGen(cfg, o.TrialsPerConfig, rng.Uint64(), o.Gen)
				if err != nil {
					return Verdict{Status: Errored, Err: err,
						Detail: fmt.Sprintf("config %d rejected: %v", c, err)}
				}
				ev := faultsim.NewEvaluator(&cfg, schemes)
				lv := faultsim.NewLaneEvaluator(ev)
				var batch faultsim.LaneBatch
				var outs, laneOuts []faultsim.TrialOutcome
				var st simrand.State
				for base := 0; base < len(trace.Trials); base += faultsim.LaneWidth {
					batch.Reset()
					end := base + faultsim.LaneWidth
					if end > len(trace.Trials) {
						end = len(trace.Trials)
					}
					for i := base; i < end; i++ {
						batch.Add(i-base, st, trace.Trials[i])
					}
					lv.EvaluateBatch(&batch)
					if v := batch.Voided(); v != 0 {
						return Verdict{Status: Errored, Trials: trials,
							Detail: fmt.Sprintf("config %d: lane batch at %d voided lanes %#x with panic-free schemes", c, base, v)}
					}
					for i := base; i < end; i++ {
						faults := trace.Trials[i]
						outs = ev.EvaluateInto(faults, outs[:0])
						laneOuts = lv.AppendLaneOutcomes(i-base, laneOuts[:0])
						trials++
						for s, scheme := range schemes {
							wantT, wantK := scheme.(faultsim.KindedScheme).FailTimeKind(&cfg, faults)
							comparisons++
							shaped := fmt.Sprintf("on %d faults (chips/rank=%d onDie=%v scaling=%v overlap=%v)",
								len(faults), cfg.ChipsPerRank, cfg.OnDie, cfg.ScalingRate, cfg.RequireAddressOverlap)
							if math.Float64bits(outs[s].FailTime) != math.Float64bits(wantT) || outs[s].Kind != wantK {
								return Verdict{Status: Refuted, Confidence: 1, Trials: trials,
									Detail: fmt.Sprintf("config %d trial %d scheme %s: evaluator (%v, %v) != reference (%v, %v) %s",
										c, i, scheme.Name(), outs[s].FailTime, outs[s].Kind, wantT, wantK, shaped)}
							}
							if math.Float64bits(laneOuts[s].FailTime) != math.Float64bits(wantT) || laneOuts[s].Kind != wantK {
								return Verdict{Status: Refuted, Confidence: 1, Trials: trials,
									Detail: fmt.Sprintf("config %d trial %d scheme %s: lane evaluator (%v, %v) != reference (%v, %v) %s",
										c, i, scheme.Name(), laneOuts[s].FailTime, laneOuts[s].Kind, wantT, wantK, shaped)}
							}
						}
					}
				}
			}
			return Verdict{Status: Confirmed, Confidence: 1, Trials: trials,
				Detail: fmt.Sprintf("%d configs x %d trials, %d (scheme, trial) comparisons, zero divergences",
					o.Configs, o.TrialsPerConfig, comparisons)}
		},
	}
}
