package conformance

import (
	"context"
	"testing"

	"xedsim/internal/fleet"
)

// doubledFITFleet is the injected fleet bug of the acceptance criteria: a
// runner that silently doubles every FIT rate before aging the fleet —
// the kind of regression a broken arrival sampler or a double-counted
// chunk would produce. The FIT slice is copied before mutation so the
// sabotage cannot leak into other tests through the shared Table I value.
func doubledFITFleet(ctx context.Context, cfg fleet.Config, opts fleet.Options) (*fleet.Summary, error) {
	fits := append(cfg.FITs[:0:0], cfg.FITs...)
	for i := range fits {
		fits[i].Rate *= 2
	}
	cfg.FITs = fits
	return fleet.Run(ctx, cfg, opts)
}

func fleetClaimOnly(t *testing.T) []Claim {
	t.Helper()
	claims, err := SelectClaims(PaperClaims(), []string{"fleet/xed-field-rate-matches-campaign"})
	if err != nil {
		t.Fatal(err)
	}
	return claims
}

// TestFleetClaimConfirmedOnCleanTree: the fleet/ claim alone, at test
// budgets, on the real fleet.Run.
func TestFleetClaimConfirmedOnCleanTree(t *testing.T) {
	verdicts := Run(context.Background(), fleetClaimOnly(t), testOptions(t), nil)
	v := verdicts[0]
	t.Logf("%-12s %s", v.Status, v.Detail)
	if v.Status != Confirmed {
		t.Fatalf("fleet claim on a clean tree: %v (%s)", v.Status, v.Detail)
	}
}

// TestFleetClaimRefutesDoubledFITs: with the fleet runner silently doubling
// the Table I rates, the fleet's failure fraction lands ~4x above the
// campaign's (two faults must coincide, so the rate is roughly quadratic in
// FIT) and the Wilson band check must refute within the claim's one fixed
// batch.
func TestFleetClaimRefutesDoubledFITs(t *testing.T) {
	o := testOptions(t)
	o.Fleet = doubledFITFleet
	verdicts := Run(context.Background(), fleetClaimOnly(t), o, nil)
	v := verdicts[0]
	t.Logf("%-12s %s", v.Status, v.Detail)
	if v.Status != Refuted {
		t.Fatalf("doubled-FIT fleet was not refuted: %v (%s)", v.Status, v.Detail)
	}
}

// TestFleetSeamDefaults: normalize must install fleet.Run so zero-valued
// CLI option structs reach the real simulator.
func TestFleetSeamDefaults(t *testing.T) {
	if (Options{}).normalize().Fleet == nil {
		t.Fatal("normalize left Options.Fleet nil")
	}
}
