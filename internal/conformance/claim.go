package conformance

import (
	"context"
	"fmt"
	"time"

	"xedsim/internal/faultsim"
	"xedsim/internal/fleet"
)

// Status classifies a claim's verdict.
type Status int

const (
	// Confirmed: the evidence supports the claim at the configured
	// confidence (or the claim was checked exhaustively).
	Confirmed Status = iota
	// Refuted: the evidence contradicts the claim — the simulator no
	// longer reproduces the paper's result.
	Refuted
	// Inconclusive: the trial budget ran out before either boundary was
	// crossed. Treated as a failure by cmd/xedverify: a conformance gate
	// that cannot decide must not pass silently.
	Inconclusive
	// Errored: the check itself could not run (configuration rejected,
	// campaign error).
	Errored
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Confirmed:
		return "CONFIRMED"
	case Refuted:
		return "REFUTED"
	case Inconclusive:
		return "INCONCLUSIVE"
	case Errored:
		return "ERROR"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Verdict is the outcome of checking one claim.
type Verdict struct {
	// Claim, Ref and Doc identify the claim (copied from the Claim).
	Claim, Ref, Doc string
	// Status is the decision.
	Status Status
	// Detail is the human-readable evidence: observed probabilities,
	// LLR, pattern counts, or the first divergence found.
	Detail string
	// Trials counts the Monte-Carlo trials or exhaustive patterns
	// examined.
	Trials uint64
	// Confidence is the probability the verdict is right given the
	// claim's statistical design: 1 for exhaustive checks, 1-alpha (or
	// 1-beta for refutations) for sequential ones.
	Confidence float64
	// Elapsed is the wall-clock cost of the check.
	Elapsed time.Duration
	// Err carries the failure when Status is Errored.
	Err error
}

// SchemeFactory resolves scheme names to instances. The default is
// faultsim.SchemesByName; tests substitute factories that return sabotaged
// schemes to demonstrate that the claim table actually refutes them.
type SchemeFactory func(names ...string) ([]faultsim.Scheme, error)

// CampaignRunner evaluates one Monte-Carlo campaign on behalf of a claim
// check. The default is faultsim.RunCampaign (local cores); xedverify
// -coordinator substitutes a dist-client runner, so the same conformance
// gate that certifies a local build certifies a deployed campaign service
// — the claims cannot tell the difference because the service's results
// are bit-identical.
type CampaignRunner func(ctx context.Context, cfg faultsim.Config, schemes []faultsim.Scheme, opts faultsim.CampaignOptions) (*faultsim.Report, error)

// Options parameterises a conformance run. The zero value is unusable;
// start from DefaultOptions.
type Options struct {
	// Seed roots all campaign and differential randomness; runs are
	// deterministic for a fixed (Options, claim table).
	Seed uint64
	// Workers is the campaign worker count; <= 0 selects GOMAXPROCS.
	Workers int
	// Batch is the Monte-Carlo trials per sequential-test step.
	Batch int
	// MaxTrials bounds one statistical claim's total trials; exhausting
	// it yields Inconclusive.
	MaxTrials int
	// Alpha bounds the probability of confirming a false claim; Beta of
	// refuting a true one.
	Alpha, Beta float64
	// Separation places each SPRT's design alternative at
	// ratio*Separation; see NewRatioSPRT.
	Separation float64
	// Configs and TrialsPerConfig size the evaluator differential claim.
	Configs         int
	TrialsPerConfig int
	// Schemes resolves scheme names; nil selects faultsim.SchemesByName.
	Schemes SchemeFactory
	// Runner evaluates campaigns; nil selects faultsim.RunCampaign.
	Runner CampaignRunner
	// Fleet ages field-simulator fleets; nil selects fleet.Run. The fleet/
	// claim uses it, and sabotage tests substitute broken runners to prove
	// the claim refutes them.
	Fleet FleetRunner
	// Engine selects the campaign evaluation engine every claim's
	// RunCampaign uses ("" = indexed). Verdicts must not depend on it —
	// running the gate under faultsim.EngineLanes is exactly how the
	// bit-sliced engine's conformance is demonstrated.
	Engine faultsim.Engine
	// Gen selects the trial-generation mode ("" = scalar). The batch mode
	// draws a different (exactly distributed) stream, so verdicts must
	// agree statistically, not bit for bit — running the gate under
	// faultsim.GenBatch is how the batch generator's conformance is
	// demonstrated. The evaluator differential claim also regenerates its
	// traces through the selected mode.
	Gen faultsim.Generator
}

// DefaultOptions returns the tuning the CI gate runs with: every claim in
// PaperClaims decides in a few seconds total at these settings.
func DefaultOptions() Options {
	return Options{
		Seed:            42,
		Batch:           250_000,
		MaxTrials:       24_000_000,
		Alpha:           1e-9,
		Beta:            1e-9,
		Separation:      2,
		Configs:         1000,
		TrialsPerConfig: 30,
	}
}

// normalize fills unset fields with defaults so hand-built Options (tests,
// CLI flag structs) compose with the claim checks.
func (o Options) normalize() Options {
	def := DefaultOptions()
	if o.Batch <= 0 {
		o.Batch = def.Batch
	}
	if o.MaxTrials <= 0 {
		o.MaxTrials = def.MaxTrials
	}
	if o.Alpha <= 0 || o.Alpha >= 1 {
		o.Alpha = def.Alpha
	}
	if o.Beta <= 0 || o.Beta >= 1 {
		o.Beta = def.Beta
	}
	if o.Separation <= 1 {
		o.Separation = def.Separation
	}
	if o.Configs <= 0 {
		o.Configs = def.Configs
	}
	if o.TrialsPerConfig <= 0 {
		o.TrialsPerConfig = def.TrialsPerConfig
	}
	if o.Schemes == nil {
		o.Schemes = faultsim.SchemesByName
	}
	if o.Runner == nil {
		o.Runner = faultsim.RunCampaign
	}
	if o.Fleet == nil {
		o.Fleet = fleet.Run
	}
	if eng, err := faultsim.ParseEngine(string(o.Engine)); err == nil {
		o.Engine = eng
	}
	if gen, err := faultsim.ParseGenerator(string(o.Gen)); err == nil {
		o.Gen = gen
	}
	return o
}

// Claim is one machine-checkable assertion about the reproduction.
type Claim struct {
	// Name is the stable slug claims are selected by, e.g.
	// "fig7/xed-over-secded-10x".
	Name string
	// Ref anchors the claim in the paper, e.g. "§VII Fig. 7".
	Ref string
	// Doc states the claim in one line.
	Doc string
	// Check decides the claim under the given options.
	Check func(ctx context.Context, o Options) Verdict
}

// Run checks the given claims in order, emitting each verdict as it lands
// (emit may be nil) and returning all of them. Options are normalized
// once so every claim sees the same effective configuration. A cancelled
// ctx marks the remaining claims Errored rather than skipping them
// silently.
func Run(ctx context.Context, claims []Claim, o Options, emit func(Verdict)) []Verdict {
	o = o.normalize()
	verdicts := make([]Verdict, 0, len(claims))
	for _, c := range claims {
		var v Verdict
		if err := ctx.Err(); err != nil {
			v = Verdict{Claim: c.Name, Ref: c.Ref, Doc: c.Doc, Status: Errored, Err: err, Detail: "cancelled before check"}
		} else {
			start := time.Now()
			v = c.Check(ctx, o)
			v.Elapsed = time.Since(start)
			v.Claim, v.Ref, v.Doc = c.Name, c.Ref, c.Doc
		}
		if emit != nil {
			emit(v)
		}
		verdicts = append(verdicts, v)
	}
	return verdicts
}

// AllConfirmed reports whether every verdict is Confirmed.
func AllConfirmed(vs []Verdict) bool {
	for _, v := range vs {
		if v.Status != Confirmed {
			return false
		}
	}
	return true
}

// batchSeed derives the campaign seed for one sequential batch. Batches
// use disjoint substreams of the option seed so their failure counts are
// independent samples; the odd multiplier is the splitmix64 increment.
func batchSeed(seed uint64, claim string, batch int) uint64 {
	h := seed
	for _, b := range []byte(claim) {
		h = (h ^ uint64(b)) * 0x100000001b3
	}
	return h + uint64(batch)*0x9e3779b97f4a7c15
}

// ratioClaim builds the standard statistical claim: scheme `better` fails
// at least `ratio` times less often than scheme `worse` under cfg. The
// check drives faultsim.RunCampaign batch by batch, feeding failure
// counts to a RatioSPRT until it decides or the trial budget runs out; a
// budget exhaustion falls back to the Wilson-interval separation test
// before declaring Inconclusive.
func ratioClaim(name, ref, doc string, cfg func() faultsim.Config, better, worse string, ratio float64) Claim {
	return Claim{
		Name: name,
		Ref:  ref,
		Doc:  doc,
		Check: func(ctx context.Context, o Options) Verdict {
			schemes, err := o.Schemes(better, worse)
			if err != nil {
				return Verdict{Status: Errored, Err: err, Detail: err.Error()}
			}
			sprt := NewRatioSPRT(ratio, o.Separation, o.Alpha, o.Beta)
			var trials, kA, kB uint64
			c := cfg()
			for batch := 0; int(trials) < o.MaxTrials && sprt.Decision() == Undecided; batch++ {
				rep, err := o.Runner(ctx, c, schemes, faultsim.CampaignOptions{
					Trials:  o.Batch,
					Seed:    batchSeed(o.Seed, name, batch),
					Workers: o.Workers,
					Engine:  o.Engine,
					Gen:     o.Gen,
				})
				if err != nil {
					return Verdict{Status: Errored, Err: err, Trials: trials, Detail: err.Error()}
				}
				dA := rep.Results[0].Failures
				dB := rep.Results[1].Failures
				kA += dA
				kB += dB
				trials += rep.Trials
				sprt.Observe(dA, dB)
			}
			detail := fmt.Sprintf("P(%s)=%.3g (%d fails) vs P(%s)=%.3g (%d fails), claimed ratio >= %g, LLR %.1f",
				better, float64(kA)/float64(trials), kA,
				worse, float64(kB)/float64(trials), kB, ratio, sprt.LLR())
			switch sprt.Decision() {
			case AcceptClaim:
				return Verdict{Status: Confirmed, Detail: detail, Trials: trials, Confidence: 1 - o.Alpha}
			case RejectClaim:
				return Verdict{Status: Refuted, Detail: detail, Trials: trials, Confidence: 1 - o.Beta}
			}
			// Budget exhausted: let the (correlation-free, per-campaign)
			// Wilson cross-check have the last word before giving up.
			confirmed, refuted := wilsonSeparation(kA, trials, kB, trials, ratio)
			switch {
			case confirmed:
				return Verdict{Status: Confirmed, Detail: detail + " (Wilson separation)", Trials: trials, Confidence: 0.95}
			case refuted:
				return Verdict{Status: Refuted, Detail: detail + " (Wilson separation)", Trials: trials, Confidence: 0.95}
			}
			return Verdict{Status: Inconclusive, Detail: detail, Trials: trials}
		},
	}
}

// bandClaim asserts two schemes' failure probabilities are within a factor
// `band` of each other — the Figure 1 "SECDED adds essentially nothing
// over Non-ECC" result. It runs a fixed trial budget and decides by
// Wilson-interval inclusion: confirmed when even the extreme corners of
// both intervals stay inside the band, refuted when the intervals prove a
// ratio outside it.
func bandClaim(name, ref, doc string, cfg func() faultsim.Config, a, b string, band float64) Claim {
	return Claim{
		Name: name,
		Ref:  ref,
		Doc:  doc,
		Check: func(ctx context.Context, o Options) Verdict {
			schemes, err := o.Schemes(a, b)
			if err != nil {
				return Verdict{Status: Errored, Err: err, Detail: err.Error()}
			}
			// One quarter of the statistical budget: equivalence needs a
			// fixed sample, and the band is wide relative to the
			// probabilities involved (both schemes fail ~10% of trials).
			trials := o.MaxTrials / 4
			if trials < o.Batch {
				trials = o.Batch
			}
			rep, err := o.Runner(ctx, cfg(), schemes, faultsim.CampaignOptions{
				Trials:  trials,
				Seed:    batchSeed(o.Seed, name, 0),
				Workers: o.Workers,
				Engine:  o.Engine,
				Gen:     o.Gen,
			})
			if err != nil {
				return Verdict{Status: Errored, Err: err, Detail: err.Error()}
			}
			kA, kB := rep.Results[0].Failures, rep.Results[1].Failures
			n := rep.Trials
			loA, hiA := faultsim.WilsonInterval(kA, n)
			loB, hiB := faultsim.WilsonInterval(kB, n)
			detail := fmt.Sprintf("P(%s)=%.3g, P(%s)=%.3g, band %gx", a, float64(kA)/float64(n), b, float64(kB)/float64(n), band)
			switch {
			case hiA <= band*loB && hiB <= band*loA:
				return Verdict{Status: Confirmed, Detail: detail, Trials: n, Confidence: 0.95}
			case loA > band*hiB || loB > band*hiA:
				return Verdict{Status: Refuted, Detail: detail, Trials: n, Confidence: 0.95}
			}
			return Verdict{Status: Inconclusive, Detail: detail, Trials: n}
		},
	}
}
