package conformance

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"xedsim/internal/dram"
	"xedsim/internal/faultsim"
)

// testOptions returns reduced budgets for -short (and the -race job):
// exhaustive and differential claims shrink their sweeps, statistical
// claims keep the same boundaries but cap the trial budget. Full budgets
// run in the plain CI test job and in cmd/xedverify itself.
func testOptions(t *testing.T) Options {
	o := DefaultOptions()
	if testing.Short() {
		o.Batch = 100_000
		o.MaxTrials = 4_000_000
		o.Configs = 120
		o.TrialsPerConfig = 10
	}
	return o
}

// TestPaperClaimsAllConfirmed is the acceptance gate on a clean tree:
// every claim in the table must come back CONFIRMED.
func TestPaperClaimsAllConfirmed(t *testing.T) {
	verdicts := Run(context.Background(), PaperClaims(), testOptions(t), nil)
	for _, v := range verdicts {
		t.Logf("%-12s %-34s %s", v.Status, v.Claim, v.Detail)
		if v.Status != Confirmed {
			t.Errorf("claim %s: %v (%s)", v.Claim, v.Status, v.Detail)
		}
	}
	if !AllConfirmed(verdicts) {
		t.Fatal("clean tree does not confirm the claim table")
	}
}

// invertedXEDWeight is the deliberately injected bug of the acceptance
// criteria: XED's erasure weights swapped, so every located visible fault
// spends 2 erasures (defeating the capacity-1 rank budget alone) while the
// genuinely unlocatable silent transient word fault spends only 1. This
// collapses XED to roughly SECDED's failure rate.
func invertedXEDWeight(cfg *faultsim.Config, r *faultsim.FaultRecord) int {
	w := faultsim.VisibleWeight(cfg, r)
	if w == 0 {
		return 0
	}
	return 3 - xedLikeWeight(cfg, r)
}

// xedLikeWeight mirrors the stock XED weighting (1 for located faults, 2
// for silent transient word faults) using only exported surface.
func xedLikeWeight(cfg *faultsim.Config, r *faultsim.FaultRecord) int {
	if r.Silent && r.Transient && r.Gran == dram.GranWord {
		return 2
	}
	return 1
}

// sabotagedFactory resolves scheme names like faultsim.SchemesByName but
// substitutes the inverted-weight XED for the real one.
func sabotagedFactory(names ...string) ([]faultsim.Scheme, error) {
	schemes, err := faultsim.SchemesByName(names...)
	if err != nil {
		return nil, err
	}
	for i, n := range names {
		if n == "XED" {
			schemes[i] = faultsim.NewRankErasureScheme("XED", 1, invertedXEDWeight)
		}
	}
	return schemes, nil
}

// TestInjectedBugIsRefuted demonstrates the other half of the acceptance
// criteria: with the inverted erasure weight injected, at least one claim
// is REFUTED — and the specific Figure 7 ordering claim catches it.
func TestInjectedBugIsRefuted(t *testing.T) {
	o := testOptions(t)
	o.Schemes = sabotagedFactory
	claims, err := SelectClaims(PaperClaims(), []string{
		"fig7/xed-over-secded-10x",
		"fig7/xed-over-chipkill",
	})
	if err != nil {
		t.Fatal(err)
	}
	verdicts := Run(context.Background(), claims, o, nil)
	refuted := 0
	for _, v := range verdicts {
		t.Logf("%-12s %-34s %s", v.Status, v.Claim, v.Detail)
		if v.Status == Refuted {
			refuted++
		}
	}
	if refuted == 0 {
		t.Fatal("inverted XED erasure weight was not refuted by any ordering claim")
	}
	if verdicts[0].Status != Refuted {
		t.Fatalf("fig7/xed-over-secded-10x did not catch the inverted weight: %v", verdicts[0].Status)
	}
}

// TestSabotagedFactoryStillBeatsNothing sanity-checks the sabotage itself:
// the inverted XED really is drastically worse than the real one, so the
// refutation above is evidence about the claim table, not noise.
func TestSabotagedFactoryStillBeatsNothing(t *testing.T) {
	cfg := faultsim.DefaultConfig()
	real, err := faultsim.SchemesByName("XED")
	if err != nil {
		t.Fatal(err)
	}
	sab, err := sabotagedFactory("XED")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := faultsim.Run(cfg, []faultsim.Scheme{real[0], sab[0]}, 100_000, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[1].Failures < 20*rep.Results[0].Failures {
		t.Fatalf("sabotaged XED (%d failures) is not clearly worse than real XED (%d failures)",
			rep.Results[1].Failures, rep.Results[0].Failures)
	}
}

// TestRunCancelledContext: a cancelled context must surface as Errored
// verdicts for every claim, not silently skip them.
func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	verdicts := Run(ctx, PaperClaims(), testOptions(t), nil)
	if len(verdicts) != len(PaperClaims()) {
		t.Fatalf("%d verdicts for %d claims", len(verdicts), len(PaperClaims()))
	}
	for _, v := range verdicts {
		if v.Status != Errored {
			t.Fatalf("claim %s: status %v under cancelled context", v.Claim, v.Status)
		}
	}
}

// TestRunEmitsEveryVerdict: the emit callback sees each verdict exactly
// once, in table order — cmd/xedverify's streaming output depends on it.
func TestRunEmitsEveryVerdict(t *testing.T) {
	claims := []Claim{
		{Name: "a", Check: func(context.Context, Options) Verdict { return Verdict{Status: Confirmed} }},
		{Name: "b", Check: func(context.Context, Options) Verdict { return Verdict{Status: Refuted} }},
	}
	var seen []string
	verdicts := Run(context.Background(), claims, Options{}, func(v Verdict) {
		seen = append(seen, fmt.Sprintf("%s:%v", v.Claim, v.Status))
	})
	if strings.Join(seen, ",") != "a:CONFIRMED,b:REFUTED" {
		t.Fatalf("emitted %v", seen)
	}
	if AllConfirmed(verdicts) {
		t.Fatal("AllConfirmed true despite refuted claim")
	}
}

// TestSelectClaims covers the -claims resolution rules.
func TestSelectClaims(t *testing.T) {
	table := PaperClaims()
	all, err := SelectClaims(table, nil)
	if err != nil || len(all) != len(table) {
		t.Fatalf("empty selection: %d claims, err %v", len(all), err)
	}
	if _, err := SelectClaims(table, []string{"no/such"}); err == nil {
		t.Fatal("unknown claim name accepted")
	}
	names := ClaimNames(table)
	if len(names) != len(table) || names[0] != table[0].Name {
		t.Fatalf("ClaimNames mismatch: %v", names)
	}
}

// TestOptionsNormalize: zero-valued options must pick up every default so
// partially filled CLI structs compose with claim checks.
func TestOptionsNormalize(t *testing.T) {
	n := Options{}.normalize()
	d := DefaultOptions()
	if n.Batch != d.Batch || n.MaxTrials != d.MaxTrials || n.Alpha != d.Alpha ||
		n.Beta != d.Beta || n.Separation != d.Separation || n.Configs != d.Configs ||
		n.TrialsPerConfig != d.TrialsPerConfig || n.Schemes == nil {
		t.Fatalf("normalize left gaps: %+v", n)
	}
	// Explicit values survive.
	o := Options{Batch: 7, MaxTrials: 9, Configs: 3}.normalize()
	if o.Batch != 7 || o.MaxTrials != 9 || o.Configs != 3 {
		t.Fatalf("normalize clobbered explicit values: %+v", o)
	}
}

// countingRunner fabricates campaign reports without simulating: the
// "better" scheme (result 0) never fails, the "worse" one fails 10% of
// trials, so a ratio SPRT accepts immediately. It exists to pin the
// Options.Runner seam — the hook xedverify -coordinator uses to route
// claims through a campaign service.
func countingRunner(calls *int) CampaignRunner {
	return func(_ context.Context, _ faultsim.Config, schemes []faultsim.Scheme, o faultsim.CampaignOptions) (*faultsim.Report, error) {
		*calls++
		rep := &faultsim.Report{Trials: uint64(o.Trials), Requested: uint64(o.Trials), Years: 7}
		for i, s := range schemes {
			r := faultsim.Result{SchemeName: s.Name(), Trials: uint64(o.Trials), FailuresByYear: make([]uint64, 7)}
			if i > 0 {
				r.Failures = uint64(o.Trials / 10)
				r.DUEs = r.Failures
			}
			rep.Results = append(rep.Results, r)
		}
		return rep, nil
	}
}

// TestOptionsRunnerSeam: a substituted CampaignRunner carries the whole
// statistical claim — no local simulation happens, and the verdict follows
// the fabricated evidence.
func TestOptionsRunnerSeam(t *testing.T) {
	calls := 0
	o := DefaultOptions()
	o.Runner = countingRunner(&calls)
	claims, err := SelectClaims(PaperClaims(), []string{"fig7/xed-over-secded-10x"})
	if err != nil {
		t.Fatal(err)
	}
	verdicts := Run(context.Background(), claims, o, nil)
	if calls == 0 {
		t.Fatal("custom Runner was never invoked")
	}
	if verdicts[0].Status != Confirmed {
		t.Fatalf("fabricated 0-vs-10%% evidence not confirmed: %v (%s)", verdicts[0].Status, verdicts[0].Detail)
	}
}
