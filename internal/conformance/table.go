package conformance

import (
	"context"
	"fmt"

	"xedsim/internal/faultsim"
)

// Scheme names as registered in faultsim.SchemesByName.
const (
	schemeNonECC = "NonECC"
	schemeSECDED = "ECC-DIMM (SECDED)"
	schemeXED    = "XED"
	schemeCK     = "Chipkill"
	schemeDCK    = "Double-Chipkill"
	schemeXEDCK  = "XED+Chipkill"
	scalingRate  = 1e-4 // §VII: birthtime weak-bit rate for Figures 8/10
)

// paperConfig returns the §III evaluation system.
func paperConfig() faultsim.Config { return faultsim.DefaultConfig() }

// scalingConfig is paperConfig with the §VII technology-scaling fault rate.
func scalingConfig() faultsim.Config {
	cfg := faultsim.DefaultConfig()
	cfg.ScalingRate = scalingRate
	return cfg
}

// zeroSDCClaim asserts a scheme produces no silent data corruption over a
// fixed campaign — the §VIII/Table IV property that XED converts every
// escape into a *detected* failure because catch-words and parity always
// expose the mismatch.
func zeroSDCClaim(name, ref, doc string, cfg func() faultsim.Config, scheme string) Claim {
	return Claim{
		Name: name,
		Ref:  ref,
		Doc:  doc,
		Check: func(ctx context.Context, o Options) Verdict {
			schemes, err := o.Schemes(scheme)
			if err != nil {
				return Verdict{Status: Errored, Err: err, Detail: err.Error()}
			}
			trials := o.MaxTrials / 4
			if trials < o.Batch {
				trials = o.Batch
			}
			rep, err := o.Runner(ctx, cfg(), schemes, faultsim.CampaignOptions{
				Trials:  trials,
				Seed:    batchSeed(o.Seed, name, 0),
				Workers: o.Workers,
				Engine:  o.Engine,
				Gen:     o.Gen,
			})
			if err != nil {
				return Verdict{Status: Errored, Err: err, Detail: err.Error()}
			}
			res := rep.Results[0]
			detail := fmt.Sprintf("%s: %d failures over %d trials, %d DUE, %d SDC",
				scheme, res.Failures, rep.Trials, res.DUEs, res.SDCs)
			if res.SDCs != 0 {
				return Verdict{Status: Refuted, Detail: detail, Trials: rep.Trials, Confidence: 1}
			}
			if res.Failures == 0 {
				// No failures at all would make "no SDCs" vacuous.
				return Verdict{Status: Inconclusive, Detail: detail + " (no failures observed)", Trials: rep.Trials}
			}
			return Verdict{Status: Confirmed, Detail: detail, Trials: rep.Trials, Confidence: 1}
		},
	}
}

// PaperClaims returns the full conformance table. Ratios are set well
// inside the measured margins (EXPERIMENTS.md: XED beats SECDED by ~140x,
// Chipkill by ~3x; Double-Chipkill beats Chipkill by ~26x; XED+Chipkill
// beats Double-Chipkill by ~3x) so the SPRT decides quickly on a clean
// tree while any regression that erodes an ordering by its claimed factor
// is refuted.
func PaperClaims() []Claim {
	return []Claim{
		// --- inputs ---
		table1Claim(),

		// --- code-level guarantees (exhaustive) ---
		secdedAgreementClaim(),
		crc8BurstClaim(),
		rsXORBridgeClaim(),
		rsErasureRoundTripClaim(),

		// --- differential (randomized, zero-tolerance) ---
		evaluatorDifferentialClaim(),

		// --- on-die code inference (related work, exhaustive) ---
		beerRecoveryClaim(),
		harpProfilingClaim(),

		// --- scheme orderings (statistical, SPRT) ---
		bandClaim("fig1/secded-within-nonecc-band", "§I Fig. 1",
			"SECDED's 7-year failure probability is within 1.5x of Non-ECC (On-Die ECC absorbs what SECDED would fix)",
			paperConfig, schemeSECDED, schemeNonECC, 1.5),
		ratioClaim("fig7/xed-over-secded-10x", "§VII Fig. 7",
			"XED on a 9-chip DIMM fails >= 10x less often than SECDED",
			paperConfig, schemeXED, schemeSECDED, 10),
		ratioClaim("fig7/chipkill-over-secded-10x", "§VII Fig. 7",
			"Chipkill fails >= 10x less often than SECDED",
			paperConfig, schemeCK, schemeSECDED, 10),
		ratioClaim("fig7/xed-over-chipkill", "§VII Fig. 7",
			"XED on commodity ECC-DIMMs fails less often than 18-chip Chipkill",
			paperConfig, schemeXED, schemeCK, 1.5),
		ratioClaim("fig8/xed-over-secded-scaling", "§VII Fig. 8",
			"with 1e-4 scaling faults, XED still fails >= 10x less often than SECDED",
			scalingConfig, schemeXED, schemeSECDED, 10),
		ratioClaim("fig9/dck-over-ck-5x", "§IX Fig. 9",
			"Double-Chipkill fails >= 5x less often than Chipkill",
			paperConfig, schemeDCK, schemeCK, 5),
		ratioClaim("fig9/xedck-over-dck", "§IX Fig. 9",
			"XED+Chipkill (18 chips) fails less often than Double-Chipkill (36 chips)",
			paperConfig, schemeXEDCK, schemeDCK, 1.5),
		ratioClaim("fig10/xedck-over-dck-scaling", "§IX Fig. 10",
			"with 1e-4 scaling faults, XED+Chipkill still beats Double-Chipkill",
			scalingConfig, schemeXEDCK, schemeDCK, 1.5),

		// --- failure-kind accounting ---
		zeroSDCClaim("table4/xed-no-sdc", "§VIII Table IV",
			"XED converts every escape into a detected failure: zero SDC trials",
			paperConfig, schemeXED),

		// --- fleet field simulator (statistical, Wilson band) ---
		fleetFigure1Claim(),
	}
}

// ClaimNames returns the table's claim names in order (for -list and flag
// validation).
func ClaimNames(claims []Claim) []string {
	names := make([]string, len(claims))
	for i, c := range claims {
		names[i] = c.Name
	}
	return names
}

// SelectClaims filters the table by exact claim names; unknown names are
// an error so a typo in -claims cannot silently pass CI by selecting
// nothing.
func SelectClaims(claims []Claim, names []string) ([]Claim, error) {
	if len(names) == 0 {
		return claims, nil
	}
	byName := make(map[string]Claim, len(claims))
	for _, c := range claims {
		byName[c.Name] = c
	}
	out := make([]Claim, 0, len(names))
	for _, n := range names {
		c, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("conformance: unknown claim %q", n)
		}
		out = append(out, c)
	}
	return out, nil
}
