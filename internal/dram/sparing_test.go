package dram

import (
	"testing"

	"xedsim/internal/ecc"
	"xedsim/internal/simrand"
)

func newRawChip(rate float64, seed uint64) *Chip {
	c := NewChip(Geometry{Banks: 2, RowsPerBank: 256, ColsPerRow: 64}, ecc.NewCRC8ATM())
	c.SetScaling(ScalingProfile{Rate: rate, Seed: seed, AllowMultiBit: true})
	return c
}

func TestMultiBitScalingWordsExistBeforeRepair(t *testing.T) {
	// At an exaggerated 0.4% per-bit rate, ~3.4% of words carry >= 2
	// weak cells (Binomial(72, 0.004) tail) — the population §II-C's
	// sparing flow must clean up.
	c := newRawChip(0.004, 5)
	bad := c.MultiBitScalingWords()
	total := 2 * 256 * 64
	frac := float64(len(bad)) / float64(total)
	if frac < 0.02 || frac > 0.05 {
		t.Fatalf("multi-bit word fraction %v, want ≈0.034", frac)
	}
	// And such a word defeats the on-die code: the read is either a
	// detected error or (rarely) silent corruption — never clean truth.
	a := bad[0]
	c.Write(a, 0x1234)
	r := c.Read(a)
	if r.Status == ecc.StatusOK && r.Data == 0x1234 {
		t.Fatal("multi-bit weak word read back clean?!")
	}
}

func TestRepairBirthtimeFaultsCleansChip(t *testing.T) {
	// A realistic-ish 4e-4 per-bit rate: a few dozen multi-bit words in
	// this array; sparing converges because fresh rows are almost
	// always clean.
	c := newRawChip(4e-4, 6)
	spared, clean := c.RepairBirthtimeFaults(8)
	if !clean {
		t.Fatalf("repair did not converge after sparing %d rows", spared)
	}
	if spared == 0 {
		t.Fatal("nothing spared at 1% rate")
	}
	if c.SparedRows() == 0 {
		t.Fatal("spare map empty")
	}
	if bad := c.MultiBitScalingWords(); len(bad) != 0 {
		t.Fatalf("%d multi-bit words remain", len(bad))
	}
	// Post-repair the chip honours the paper's assumption: every word
	// has <= 1 weak bit, so on-die ECC corrects everything.
	rng := simrand.New(7)
	for i := 0; i < 2000; i++ {
		a := WordAddr{Bank: rng.Intn(2), Row: rng.Intn(256), Col: rng.Intn(64)}
		v := rng.Uint64()
		c.Write(a, v)
		if r := c.Read(a); r.Data != v {
			t.Fatalf("post-repair read wrong at %v", a)
		}
	}
}

func TestSparingOnlyAffectsTargetRow(t *testing.T) {
	c := newRawChip(0.004, 9)
	// Find a row with a multi-bit word and a row without.
	bad := c.MultiBitScalingWords()
	if len(bad) == 0 {
		t.Skip("no multi-bit words at this seed")
	}
	target := bad[0]
	beforeOther := c.scalingBitCount(WordAddr{Bank: target.Bank ^ 1, Row: 5, Col: 5})
	c.SpareRow(target.Bank, target.Row)
	afterOther := c.scalingBitCount(WordAddr{Bank: target.Bank ^ 1, Row: 5, Col: 5})
	if beforeOther != afterOther {
		t.Fatal("sparing leaked into another bank's row")
	}
	// The spared row now evaluates fresh cells.
	if c.scalingIndex(target) == c.geom.index(target) {
		t.Fatal("spared row not remapped")
	}
}

func TestRepairIdempotentOnCleanChip(t *testing.T) {
	c := NewChip(testGeom(), ecc.NewCRC8ATM())
	c.SetScaling(ScalingProfile{Rate: 1e-4, Seed: 3}) // vendor-constrained model
	spared, clean := c.RepairBirthtimeFaults(2)
	if spared != 0 || !clean {
		t.Fatalf("constrained chip needed repair: spared=%d clean=%v", spared, clean)
	}
}

func TestMultiBitDensityMatchesBinomial(t *testing.T) {
	c := newRawChip(0.005, 11)
	words, multi := 0, 0
	for bank := 0; bank < 2; bank++ {
		for row := 0; row < 256; row++ {
			for col := 0; col < 64; col++ {
				words++
				if c.scalingBitCount(WordAddr{Bank: bank, Row: row, Col: col}) >= 2 {
					multi++
				}
			}
		}
	}
	// P(X>=2), X ~ Binomial(72, 0.005): ≈ 0.0509.
	got := float64(multi) / float64(words)
	if got < 0.035 || got > 0.07 {
		t.Fatalf("multi-bit density %v, want ≈0.051", got)
	}
}
