package dram

import "fmt"

// Physical-address mapping: how a flat byte address spreads across
// channels, ranks, banks, rows and columns. The paper's Table V system
// interleaves consecutive cache lines across channels first (maximum
// bus-level parallelism for streams), then columns, then banks XOR-hashed
// with row bits (reducing pathological row-conflict strides), then ranks,
// then rows — the common open-page server mapping USIMM ships with.

// AddressMapper decomposes 64-byte-aligned physical addresses.
type AddressMapper struct {
	Channels        int
	RanksPerChannel int
	Geom            Geometry
	// XORBankHash folds low row bits into the bank index, the standard
	// permutation-based page interleaving. On by default in NewMapper.
	XORBankHash bool
}

// Location is a fully decomposed line address.
type Location struct {
	Channel, Rank int
	Addr          WordAddr
}

// NewMapper builds the default mapping for the given fleet shape. It
// rejects non-positive channel/rank counts and invalid geometries.
func NewMapper(channels, ranksPerChannel int, geom Geometry) (*AddressMapper, error) {
	if channels <= 0 || ranksPerChannel <= 0 {
		return nil, fmt.Errorf("dram: mapper needs positive channel/rank counts, got %d/%d",
			channels, ranksPerChannel)
	}
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	return &AddressMapper{
		Channels:        channels,
		RanksPerChannel: ranksPerChannel,
		Geom:            geom,
		XORBankHash:     true,
	}, nil
}

// MustNewMapper is NewMapper for statically known shapes; it panics on the
// errors NewMapper would return.
func MustNewMapper(channels, ranksPerChannel int, geom Geometry) *AddressMapper {
	m, err := NewMapper(channels, ranksPerChannel, geom)
	if err != nil {
		panic(err)
	}
	return m
}

// Lines returns the number of cache lines the fleet stores.
func (m *AddressMapper) Lines() uint64 {
	return uint64(m.Channels) * uint64(m.RanksPerChannel) * uint64(m.Geom.Words())
}

// Bytes returns the fleet's data capacity in bytes (64B per line, data
// chips only).
func (m *AddressMapper) Bytes() uint64 { return m.Lines() * 64 }

// Decompose maps a physical byte address to its DRAM location. The address
// must be within the fleet's capacity; the low 6 bits (line offset) are
// ignored.
func (m *AddressMapper) Decompose(phys uint64) Location {
	line := phys >> 6
	if line >= m.Lines() {
		panic(fmt.Sprintf("dram: address %#x beyond capacity %#x", phys, m.Bytes()))
	}
	var loc Location
	// channel : col : bank : rank : row  (low to high)
	loc.Channel = int(line % uint64(m.Channels))
	line /= uint64(m.Channels)
	loc.Addr.Col = int(line % uint64(m.Geom.ColsPerRow))
	line /= uint64(m.Geom.ColsPerRow)
	loc.Addr.Bank = int(line % uint64(m.Geom.Banks))
	line /= uint64(m.Geom.Banks)
	loc.Rank = int(line % uint64(m.RanksPerChannel))
	line /= uint64(m.RanksPerChannel)
	loc.Addr.Row = int(line)
	if m.XORBankHash {
		loc.Addr.Bank ^= loc.Addr.Row % m.Geom.Banks
	}
	return loc
}

// Compose is the inverse of Decompose, returning the 64-byte-aligned
// physical address for a location.
func (m *AddressMapper) Compose(loc Location) uint64 {
	bank := loc.Addr.Bank
	if m.XORBankHash {
		bank ^= loc.Addr.Row % m.Geom.Banks
	}
	line := uint64(loc.Addr.Row)
	line = line*uint64(m.RanksPerChannel) + uint64(loc.Rank)
	line = line*uint64(m.Geom.Banks) + uint64(bank)
	line = line*uint64(m.Geom.ColsPerRow) + uint64(loc.Addr.Col)
	line = line*uint64(m.Channels) + uint64(loc.Channel)
	return line << 6
}
