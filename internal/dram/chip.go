package dram

import (
	"fmt"

	"xedsim/internal/ecc"
)

// Chip is a functional model of one DRAM device with On-Die ECC. Storage is
// sparse: unwritten words read as zero. Every stored word carries the 8
// check bits of the configured on-die code, and reads pass through the
// fault list, the ECC engine and the DC-Mux exactly as Figure 3 of the
// paper describes.
//
// Chip is not safe for concurrent use; the memory controller serialises
// accesses, as real command buses do.
type Chip struct {
	geom Geometry
	code ecc.Code64

	// Mode registers, written over the MRS interface (§V-A).
	xedEnable bool
	catchWord uint64

	store  map[uint64]storedWord
	faults []Fault

	// Lazy birthtime scaling faults (see scaling.go).
	scaling          ScalingProfile
	scalingThreshold uint64

	// Row sparing (see sparing.go).
	spares   map[spareKey]int
	spareSeq int

	// writeClock advances on every write; transient faults only corrupt
	// words whose last write predates the fault's injection epoch.
	writeClock uint64

	// Stats observable by tests and examples.
	stats ChipStats
}

type storedWord struct {
	cw    ecc.Codeword72
	epoch uint64
}

// ChipStats counts on-die ECC activity.
type ChipStats struct {
	Reads            uint64
	Writes           uint64
	OnDieCorrections uint64 // reads where the engine corrected a single-bit error
	OnDieDetections  uint64 // reads where the engine saw an invalid codeword
	CatchWordsSent   uint64 // reads answered with the catch-word (XED mode)
	SilentCorrupt    uint64 // reads where corruption produced a *valid* codeword
	MRSWrites        uint64 // mode-register-set commands received
}

// NewChip builds a chip with the given geometry and on-die code. The paper
// recommends CRC8-ATM (§V-E); pass ecc.NewCRC8ATM() for the recommended
// configuration or ecc.NewHamming() for the conventional baseline.
func NewChip(geom Geometry, code ecc.Code64) *Chip {
	if err := geom.Validate(); err != nil {
		panic(err)
	}
	return &Chip{geom: geom, code: code, store: make(map[uint64]storedWord)}
}

// Geometry returns the chip geometry.
func (c *Chip) Geometry() Geometry { return c.geom }

// Stats returns a copy of the activity counters.
func (c *Chip) Stats() ChipStats { return c.stats }

// SetXEDEnable sets the XED-Enable mode register over the MRS interface.
// With XED disabled the chip behaves as a conventional On-Die-ECC device:
// it corrects what it can and never reveals detection information (§V-A).
func (c *Chip) SetXEDEnable(on bool) {
	var v uint16
	if on {
		v = 1
	}
	c.MRSWrite(MRXEDEnable, v)
}

// XEDEnabled reports the XED-Enable register.
func (c *Chip) XEDEnabled() bool { return c.xedEnable }

// SetCatchWord programs the Catch-Word Register (CWR) as four 16-bit MRS
// writes, the way a real controller would deliver it.
func (c *Chip) SetCatchWord(cw uint64) {
	for i := 0; i < 4; i++ {
		c.MRSWrite(MRCatchWord0+ModeRegister(i), uint16(cw>>(uint(i)*16)))
	}
}

// CatchWord returns the CWR contents.
func (c *Chip) CatchWord() uint64 { return c.catchWord }

// InjectFault adds a fault to the chip. The fault's Epoch is stamped with
// the current write clock so earlier writes are corrupted but later
// rewrites clear transient damage.
func (c *Chip) InjectFault(f Fault) {
	f.Epoch = c.writeClock
	c.faults = append(c.faults, f)
}

// ClearFaults removes every fault (used by repair/test harnesses).
func (c *Chip) ClearFaults() { c.faults = nil }

// ClearTransientFaults removes transient faults only, modelling a scrub
// pass that rewrites corrected data.
func (c *Chip) ClearTransientFaults() {
	kept := c.faults[:0]
	for _, f := range c.faults {
		if !f.Transient {
			kept = append(kept, f)
		}
	}
	// Zero the dropped tail: the truncated values stay live in the backing
	// array otherwise, where they pin memory and can resurface through
	// slices aliased before the scrub.
	clear(c.faults[len(kept):])
	c.faults = kept
}

// Faults returns a copy of the active fault list.
func (c *Chip) Faults() []Fault {
	out := make([]Fault, len(c.faults))
	copy(out, c.faults)
	return out
}

// Write stores a 64-bit word; the on-die engine encodes the check bits.
func (c *Chip) Write(a WordAddr, data uint64) {
	if !c.geom.Contains(a) {
		panic(fmt.Sprintf("dram: write outside geometry: %v", a))
	}
	c.writeClock++
	c.stats.Writes++
	c.store[c.geom.index(a)] = storedWord{cw: c.code.Encode(data), epoch: c.writeClock}
}

// ReadResult describes what the chip drove onto the bus for one word.
type ReadResult struct {
	// Data is the 64-bit value transferred (possibly the catch-word).
	Data uint64
	// IsCatchWord is true when the DC-Mux selected the CWR. The memory
	// controller cannot see this flag on a real bus — it must compare
	// Data against its CWR copy — but tests use it as ground truth.
	IsCatchWord bool
	// Status is the on-die engine's private decode outcome (invisible
	// on the bus; exposed for instrumentation).
	Status ecc.DecodeStatus
}

// Read fetches a word through the fault model, the on-die ECC engine and
// the DC-Mux.
func (c *Chip) Read(a WordAddr) ReadResult {
	if !c.geom.Contains(a) {
		panic(fmt.Sprintf("dram: read outside geometry: %v", a))
	}
	c.stats.Reads++
	sw, ok := c.store[c.geom.index(a)]
	if !ok {
		sw = storedWord{cw: c.code.Encode(0)}
	}
	cw := sw.cw
	corrupted := false
	cw, scaled := c.applyScaling(a, cw)
	corrupted = corrupted || scaled
	for i := range c.faults {
		f := &c.faults[i]
		if !f.Covers(a) {
			continue
		}
		if f.Transient && sw.epoch > f.Epoch {
			continue // rewritten since the transient upset
		}
		cw = f.Corrupt(c.geom, a, cw)
		corrupted = true
	}
	if c.code.IsValid(cw) {
		if corrupted {
			// Corruption aliased onto a valid codeword: the engine
			// cannot know. If it decodes to different data this is
			// silent data corruption at the chip level.
			c.stats.SilentCorrupt++
		}
		return ReadResult{Data: cw.Data, Status: ecc.StatusOK}
	}
	// Invalid codeword: the engine detected an error.
	data, st := c.code.Decode(cw)
	if st == ecc.StatusCorrected {
		c.stats.OnDieCorrections++
	} else {
		c.stats.OnDieDetections++
	}
	if c.xedEnable {
		// DC-Mux selects the catch-word on detection OR correction
		// (§V-A: "if the On-Die ECC detects or corrects an error, the
		// DC-Mux selects the Catch-Word").
		c.stats.CatchWordsSent++
		return ReadResult{Data: c.catchWord, IsCatchWord: true, Status: st}
	}
	// Conventional mode: ship the corrected value if correctable, the
	// raw (wrong) data otherwise; the controller learns nothing.
	return ReadResult{Data: data, Status: st}
}

// ReadRaw returns the value the chip would transfer with XED temporarily
// disabled — the controller's serial-mode read for multi-catch-word
// correction (§VII-B) uses this via the MRS dance. The stats and fault
// behaviour match Read with xedEnable=false.
func (c *Chip) ReadRaw(a WordAddr) (uint64, ecc.DecodeStatus) {
	saved := c.xedEnable
	c.xedEnable = false
	r := c.Read(a)
	c.xedEnable = saved
	return r.Data, r.Status
}
