package dram

import (
	"testing"

	"xedsim/internal/ecc"
)

// ecc72 encodes a value with the test code so fault tests can build real
// codewords without importing the chip internals.
func ecc72(v uint64) ecc.Codeword72 { return ecc.NewCRC8ATM().Encode(v) }

func newTestRank(n int) *Rank {
	return MustNewRank(n, testGeom(), func() ecc.Code64 { return ecc.NewCRC8ATM() })
}

func TestRankLineRoundTrip(t *testing.T) {
	r := newTestRank(9)
	a := WordAddr{Bank: 1, Row: 2, Col: 3}
	beats := make([]uint64, 9)
	for i := range beats {
		beats[i] = uint64(i) * 0x1111111111111111
	}
	r.WriteLine(a, beats)
	got := r.ReadLine(a)
	for i, rr := range got {
		if rr.Data != beats[i] || rr.IsCatchWord {
			t.Fatalf("chip %d: %+v, want %#x", i, rr, beats[i])
		}
	}
}

func TestRankCatchWordConfiguration(t *testing.T) {
	r := newTestRank(9)
	words := make([]uint64, 9)
	for i := range words {
		words[i] = uint64(i+1) * 0x0101010101010101
	}
	r.SetCatchWords(words)
	r.SetXEDEnable(true)
	for i := 0; i < 9; i++ {
		if r.Chip(i).CatchWord() != words[i] {
			t.Fatalf("chip %d catch-word mismatch", i)
		}
		if !r.Chip(i).XEDEnabled() {
			t.Fatalf("chip %d XED not enabled", i)
		}
	}
}

func TestRankFailedChipSendsItsCatchWord(t *testing.T) {
	r := newTestRank(9)
	words := make([]uint64, 9)
	for i := range words {
		words[i] = 0xc0ffee00 + uint64(i)
	}
	r.SetCatchWords(words)
	r.SetXEDEnable(true)
	a := WordAddr{Bank: 0, Row: 10, Col: 4}
	r.WriteLine(a, make([]uint64, 9))
	r.InjectChipFailure(3, NewChipFault(false, 77))
	res := r.ReadLine(a)
	for i, rr := range res {
		if i == 3 {
			if !rr.IsCatchWord || rr.Data != words[3] {
				t.Fatalf("failed chip 3 returned %+v", rr)
			}
			continue
		}
		if rr.IsCatchWord || rr.Data != 0 {
			t.Fatalf("healthy chip %d returned %+v", i, rr)
		}
	}
}

func TestRankSizeMismatchPanics(t *testing.T) {
	r := newTestRank(9)
	assertPanics(t, "write beats", func() { r.WriteLine(WordAddr{}, make([]uint64, 8)) })
	assertPanics(t, "catch words", func() { r.SetCatchWords(make([]uint64, 8)) })
	assertPanics(t, "empty rank", func() { newTestRank(0) })
}
