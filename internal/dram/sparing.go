package dram

// Birthtime repair by row sparing (§II-C): "the manufacturers will need to
// ensure that no 64-bit word has more than 1 faulty bit (if a word had
// multi-bit scaling-faults then use row sparing or column sparing to fix
// those uncommon cases)". This file models that vendor flow: scaling
// profiles may be generated unconstrained (multi-bit words appear at
// ~rate² density), a manufacturing self-test finds the offending rows, and
// sparing remaps them onto fresh cell-array rows — which carry their own
// (fresh) weak cells, so the repair loop iterates like real test flows do.
//
// Sparing remaps the *cell array* (where scaling faults live). Runtime
// faults address logical rows and are unaffected: a row failure hits the
// logical row regardless of which physical row backs it.

// spareKey identifies a logical row.
type spareKey struct{ bank, row int }

// SpareRow remaps the logical row onto the chip's next spare physical row.
// Subsequent scaling-fault evaluation for the row uses the spare's cells.
func (c *Chip) SpareRow(bank, row int) {
	if c.spares == nil {
		c.spares = make(map[spareKey]int)
	}
	c.spareSeq++
	c.spares[spareKey{bank, row}] = c.spareSeq
}

// SparedRows reports how many rows have been remapped.
func (c *Chip) SparedRows() int { return len(c.spares) }

// scalingIndex maps an address to the cell-array index used for weak-cell
// evaluation, honouring row sparing.
func (c *Chip) scalingIndex(a WordAddr) uint64 {
	if c.spares != nil {
		if gen, ok := c.spares[spareKey{a.Bank, a.Row}]; ok {
			// Spare rows live beyond the nominal array: offset by
			// the array size times the spare generation so repeated
			// re-sparing of one row reaches fresh cells each time.
			return uint64(c.geom.Words())*uint64(gen) + c.geom.index(a)
		}
	}
	return c.geom.index(a)
}

// MultiBitScalingWords scans the whole chip for words violating the ≤1
// weak-bit guarantee — the manufacturing self-test.
func (c *Chip) MultiBitScalingWords() []WordAddr {
	var bad []WordAddr
	for bank := 0; bank < c.geom.Banks; bank++ {
		for row := 0; row < c.geom.RowsPerBank; row++ {
			for col := 0; col < c.geom.ColsPerRow; col++ {
				a := WordAddr{Bank: bank, Row: row, Col: col}
				if c.scalingBitCount(a) > 1 {
					bad = append(bad, a)
				}
			}
		}
	}
	return bad
}

// RepairBirthtimeFaults runs the vendor flow: scan, spare offending rows,
// and re-scan (spare rows bring fresh weak cells), up to maxPasses times.
// It returns the number of rows spared and whether the chip now meets the
// ≤1-bit-per-word guarantee the paper assumes.
func (c *Chip) RepairBirthtimeFaults(maxPasses int) (spared int, clean bool) {
	for pass := 0; pass < maxPasses; pass++ {
		bad := c.MultiBitScalingWords()
		if len(bad) == 0 {
			return spared, true
		}
		seen := map[spareKey]bool{}
		for _, a := range bad {
			k := spareKey{a.Bank, a.Row}
			if !seen[k] {
				seen[k] = true
				c.SpareRow(a.Bank, a.Row)
				spared++
			}
		}
	}
	return spared, len(c.MultiBitScalingWords()) == 0
}
