package dram

import "xedsim/internal/ecc"

// Scaling faults (§II-C, §VII): birthtime single-bit weak cells whose
// density grows as DRAM scales. The paper assumes a scaling-fault rate of
// 10^-4 per bit and that manufacturers guarantee at most one faulty bit per
// 64-bit on-die word (multi-bit words are repaired by row/column sparing at
// test time). On-Die ECC exists precisely to correct these.
//
// The functional model cannot enumerate 2^27 words per chip eagerly, so
// scaling faults are evaluated lazily and deterministically: a hash of
// (chip seed, word index) decides whether a word contains a weak bit and
// which of its 72 cells it is.

// ScalingProfile configures per-chip scaling faults.
type ScalingProfile struct {
	// Rate is the per-bit fault probability (the paper sweeps 10^-4,
	// 10^-5, 10^-6 in Table III).
	Rate float64
	// Seed decorrelates chips.
	Seed uint64
	// AllowMultiBit drops the vendor's ≤1-weak-bit-per-word guarantee:
	// words carry Binomial(72, Rate) weak cells, the raw as-manufactured
	// state before the §II-C sparing flow (RepairBirthtimeFaults).
	AllowMultiBit bool
}

// wordFaultThreshold converts the per-bit rate into a per-word "has a weak
// bit" threshold on a 64-bit hash: P(word faulty) = 1-(1-r)^72 ≈ 72r for
// the small rates of interest. We use the exact complement computed in
// float64.
func (p ScalingProfile) wordFaultThreshold() uint64 {
	if p.Rate <= 0 {
		return 0
	}
	q := 1.0
	for i := 0; i < 72; i++ {
		q *= 1 - p.Rate
	}
	prob := 1 - q
	if prob >= 1 {
		return ^uint64(0)
	}
	return uint64(prob * float64(1<<63) * 2)
}

// SetScaling enables lazy scaling-fault evaluation on the chip. A zero
// rate disables it.
func (c *Chip) SetScaling(p ScalingProfile) {
	c.scaling = p
	c.scalingThreshold = p.wordFaultThreshold()
}

// scalingBit returns (bit index, true) if the word at index idx contains a
// weak cell.
func (c *Chip) scalingBit(idx uint64) (int, bool) {
	if c.scalingThreshold == 0 {
		return 0, false
	}
	h := mix(c.scaling.Seed ^ idx ^ 0xabcdef12345)
	if h >= c.scalingThreshold {
		return 0, false
	}
	return int(mix(h) % 72), true
}

// scalingBits fills mask with the word's weak cells under the multi-bit
// model: each of the 72 cells is independently weak with probability Rate.
func (c *Chip) scalingBits(idx uint64) (dataMask uint64, checkMask uint8) {
	if c.scaling.Rate <= 0 {
		return 0, 0
	}
	// Per-cell Bernoulli via one hash per 8-cell group keeps this cheap:
	// each byte of the hash is an independent uniform in [0,256), weak
	// when below Rate*256... too coarse for 1e-4; use one 64-bit hash
	// per cell group of 4 with 16-bit thresholds.
	thr := uint64(c.scaling.Rate * 65536)
	if thr == 0 && c.scaling.Rate > 0 {
		// Preserve tiny rates: fall back to a full hash per cell.
		for bit := 0; bit < 72; bit++ {
			h := mix(c.scaling.Seed ^ idx*73 ^ uint64(bit)<<48 ^ 0x5ca1e)
			if float64(h)/(1<<63)/2 < c.scaling.Rate {
				if bit < 64 {
					dataMask |= 1 << uint(bit)
				} else {
					checkMask |= 1 << uint(bit-64)
				}
			}
		}
		return dataMask, checkMask
	}
	for group := 0; group < 18; group++ { // 18 groups of 4 cells
		h := mix(c.scaling.Seed ^ idx*73 ^ uint64(group)<<52 ^ 0x5ca1e)
		for k := 0; k < 4; k++ {
			if h>>(uint(k)*16)&0xffff < thr {
				bit := group*4 + k
				if bit < 64 {
					dataMask |= 1 << uint(bit)
				} else {
					checkMask |= 1 << uint(bit-64)
				}
			}
		}
	}
	return dataMask, checkMask
}

// scalingBitCount returns the number of weak cells in the word at a,
// honouring sparing and the active profile.
func (c *Chip) scalingBitCount(a WordAddr) int {
	idx := c.scalingIndex(a)
	if c.scaling.AllowMultiBit {
		d, ck := c.scalingBits(idx)
		n := 0
		for x := d; x != 0; x &= x - 1 {
			n++
		}
		for x := ck; x != 0; x &= x - 1 {
			n++
		}
		return n
	}
	if _, ok := c.scalingBit(idx); ok {
		return 1
	}
	return 0
}

// applyScaling corrupts a read codeword with the word's weak cells.
func (c *Chip) applyScaling(a WordAddr, cw ecc.Codeword72) (ecc.Codeword72, bool) {
	idx := c.scalingIndex(a)
	if c.scaling.AllowMultiBit {
		d, ck := c.scalingBits(idx)
		if d == 0 && ck == 0 {
			return cw, false
		}
		return cw.FlipMask(d, ck), true
	}
	if bit, ok := c.scalingBit(idx); ok {
		return cw.FlipBit(bit), true
	}
	return cw, false
}

// ScalingWordIsFaulty reports whether the word at address a carries a weak
// bit — exposed so tests and the analytic model can cross-check densities.
func (c *Chip) ScalingWordIsFaulty(a WordAddr) bool {
	return c.scalingBitCount(a) > 0
}
