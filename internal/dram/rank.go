package dram

import (
	"fmt"

	"xedsim/internal/ecc"
)

// Rank is one rank of a DIMM: a set of chips sharing the address bus, each
// contributing a 64-bit beat per cache-line access (x8 devices send 8 bits
// on each of 8 bursts, §II-A). On a 9-chip ECC-DIMM chips 0..7 carry data
// and chip 8 carries either DIMM-level SECDED (baseline) or XED's RAID-3
// parity, depending on the controller driving it.
type Rank struct {
	geom  Geometry
	chips []*Chip
}

// NewRank builds a rank of n identical chips. The paper's configurations:
// n=8 (Non-ECC DIMM), n=9 (ECC-DIMM / XED), n=18 (Chipkill pair),
// n=36 (Double-Chipkill gang). It rejects non-positive chip counts,
// invalid geometries and nil code factories.
func NewRank(n int, geom Geometry, code func() ecc.Code64) (*Rank, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dram: rank needs at least one chip, got %d", n)
	}
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if code == nil {
		return nil, fmt.Errorf("dram: rank needs an on-die code factory")
	}
	r := &Rank{geom: geom, chips: make([]*Chip, n)}
	for i := range r.chips {
		r.chips[i] = NewChip(geom, code())
	}
	return r, nil
}

// MustNewRank is NewRank for statically known shapes; it panics on the
// errors NewRank would return.
func MustNewRank(n int, geom Geometry, code func() ecc.Code64) *Rank {
	r, err := NewRank(n, geom, code)
	if err != nil {
		panic(err)
	}
	return r
}

// Chips returns the number of chips in the rank.
func (r *Rank) Chips() int { return len(r.chips) }

// Chip returns chip i for direct manipulation (fault injection, MRS).
func (r *Rank) Chip(i int) *Chip { return r.chips[i] }

// Geometry returns the per-chip geometry.
func (r *Rank) Geometry() Geometry { return r.geom }

// SetXEDEnable programs the XED-Enable register of every chip.
func (r *Rank) SetXEDEnable(on bool) {
	for _, c := range r.chips {
		c.SetXEDEnable(on)
	}
}

// SetCatchWords programs per-chip catch-words. The memory controller
// generates a unique random catch-word for each chip (§V-A) so that a chip
// can be identified even if data lanes were swapped.
func (r *Rank) SetCatchWords(words []uint64) {
	if len(words) != len(r.chips) {
		panic(fmt.Sprintf("dram: %d catch-words for %d chips", len(words), len(r.chips)))
	}
	for i, c := range r.chips {
		c.SetCatchWord(words[i])
	}
}

// WriteLine writes one cache line: beat i goes to chip i. len(beats) must
// equal the chip count.
func (r *Rank) WriteLine(a WordAddr, beats []uint64) {
	if len(beats) != len(r.chips) {
		panic(fmt.Sprintf("dram: %d beats for %d chips", len(beats), len(r.chips)))
	}
	for i, c := range r.chips {
		c.Write(a, beats[i])
	}
}

// ReadLine reads one cache line, returning each chip's bus word.
func (r *Rank) ReadLine(a WordAddr) []ReadResult {
	return r.ReadLineInto(a, nil)
}

// ReadLineInto is ReadLine writing into out's backing array when it has
// capacity for the rank's chip count (allocating otherwise). Controllers
// keep one such buffer per rank so steady-state reads never allocate.
func (r *Rank) ReadLineInto(a WordAddr, out []ReadResult) []ReadResult {
	if cap(out) < len(r.chips) {
		out = make([]ReadResult, len(r.chips))
	} else {
		out = out[:len(r.chips)]
	}
	for i, c := range r.chips {
		out[i] = c.Read(a)
	}
	return out
}

// InjectChipFailure marks chip idx as failed at the given granularity.
func (r *Rank) InjectChipFailure(idx int, f Fault) {
	r.chips[idx].InjectFault(f)
}
