package dram

import "testing"

func TestFaultCovers(t *testing.T) {
	cases := []struct {
		name  string
		fault Fault
		addr  WordAddr
		want  bool
	}{
		{"bit hit", NewBitFault(WordAddr{1, 2, 3}, 0, false), WordAddr{1, 2, 3}, true},
		{"bit miss col", NewBitFault(WordAddr{1, 2, 3}, 0, false), WordAddr{1, 2, 4}, false},
		{"row hit any col", NewRowFault(1, 2, false, 0), WordAddr{1, 2, 9}, true},
		{"row miss row", NewRowFault(1, 2, false, 0), WordAddr{1, 3, 9}, false},
		{"col hit any row", NewColumnFault(0, 5, false, 0), WordAddr{0, 63, 5}, true},
		{"col miss bank", NewColumnFault(0, 5, false, 0), WordAddr{1, 63, 5}, false},
		{"bank hit", NewBankFault(2, false, 0), WordAddr{2, 0, 0}, true},
		{"bank miss", NewBankFault(2, false, 0), WordAddr{3, 0, 0}, false},
		{"multibank hit", NewMultiBankFault(0b110, false, 0), WordAddr{2, 1, 1}, true},
		{"multibank miss", NewMultiBankFault(0b110, false, 0), WordAddr{0, 1, 1}, false},
		{"chip hits all", NewChipFault(false, 0), WordAddr{7, 77, 7}, true},
	}
	for _, c := range cases {
		if got := c.fault.Covers(c.addr); got != c.want {
			t.Errorf("%s: Covers = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestFaultIntersects(t *testing.T) {
	row := NewRowFault(1, 10, false, 0)
	colSame := NewColumnFault(1, 5, false, 0)
	colOther := NewColumnFault(2, 5, false, 0)
	bank1 := NewBankFault(1, false, 0)
	bit := NewBitFault(WordAddr{1, 10, 5}, 0, false)
	bitOff := NewBitFault(WordAddr{1, 11, 5}, 0, false)
	chip := NewChipFault(false, 0)

	cases := []struct {
		name string
		a, b Fault
		want bool
	}{
		{"row x same-bank column", row, colSame, true},
		{"row x other-bank column", row, colOther, false},
		{"row x bank", row, bank1, true},
		{"row x bit on row", row, bit, true},
		{"row x bit off row", row, bitOff, false},
		{"column x bit on column", colSame, bit, true},
		{"chip x anything", chip, bitOff, true},
		{"two bits same word", bit, bit, true},
		{"two bits different rows", bit, bitOff, false},
	}
	for _, c := range cases {
		if got := c.a.Intersects(&c.b); got != c.want {
			t.Errorf("%s: Intersects = %v, want %v", c.name, got, c.want)
		}
		// Symmetry.
		if got := c.b.Intersects(&c.a); got != c.want {
			t.Errorf("%s (reversed): Intersects = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestFaultCorruptDeterministic(t *testing.T) {
	g := testGeom()
	f := NewRowFault(0, 1, false, 42)
	a := WordAddr{0, 1, 3}
	cw := ecc72(0x1234)
	c1 := f.Corrupt(g, a, cw)
	c2 := f.Corrupt(g, a, cw)
	if c1 != c2 {
		t.Fatal("corruption not deterministic")
	}
	if c1 == cw {
		t.Fatal("corruption changed nothing")
	}
	other := f.Corrupt(g, WordAddr{0, 1, 4}, cw)
	if other.Data^cw.Data == c1.Data^cw.Data && other.Check^cw.Check == c1.Check^cw.Check {
		t.Fatal("different words got identical corruption pattern")
	}
}

func TestConstructorPanics(t *testing.T) {
	assertPanics(t, "empty word mask", func() { NewWordFault(WordAddr{}, 0, 0, false) })
	assertPanics(t, "empty bank mask", func() { NewMultiBankFault(0, false, 0) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestGranularityStrings(t *testing.T) {
	for g := GranBit; g < NumGranularities; g++ {
		if s := g.String(); s == "" || s[0] == 'G' {
			t.Errorf("granularity %d has bad string %q", int(g), s)
		}
	}
}
