package dram

import "fmt"

// Mode Register Set (MRS) interface (§V-A): "DRAM DIMMs use a separate
// interface to update internal parameters using Mode Set Registers.
// XED-Enable and CWR registers can also be configured using the MRS."
//
// The XED extensions occupy vendor-defined registers: one bit of MRXED
// enables the DC-Mux, and the 64-bit Catch-Word Register is written as
// four 16-bit slices (the MRS data field is 16 bits wide on DDR3/4). The
// total state added per chip is 65 bits, the paper's storage-overhead
// claim.

// ModeRegister identifies one MRS-addressable register.
type ModeRegister int

const (
	// MRXEDEnable holds the XED-Enable bit in bit 0.
	MRXEDEnable ModeRegister = iota
	// MRCatchWord0..3 hold the catch-word, least-significant slice
	// first.
	MRCatchWord0
	MRCatchWord1
	MRCatchWord2
	MRCatchWord3
	numModeRegisters
)

// String implements fmt.Stringer.
func (r ModeRegister) String() string {
	switch r {
	case MRXEDEnable:
		return "MR(XED-Enable)"
	case MRCatchWord0, MRCatchWord1, MRCatchWord2, MRCatchWord3:
		return fmt.Sprintf("MR(CW%d)", int(r-MRCatchWord0))
	default:
		return fmt.Sprintf("ModeRegister(%d)", int(r))
	}
}

// MRSWrite performs one mode-register-set command with a 16-bit operand,
// exactly as the command bus delivers it. SetXEDEnable and SetCatchWord
// are conveniences layered on this entry point.
func (c *Chip) MRSWrite(reg ModeRegister, value uint16) {
	c.stats.MRSWrites++
	switch reg {
	case MRXEDEnable:
		c.xedEnable = value&1 == 1
	case MRCatchWord0, MRCatchWord1, MRCatchWord2, MRCatchWord3:
		shift := uint(reg-MRCatchWord0) * 16
		c.catchWord = c.catchWord&^(0xffff<<shift) | uint64(value)<<shift
	default:
		panic(fmt.Sprintf("dram: MRS write to unknown register %d", int(reg)))
	}
}

// MRSBroadcast issues the same mode-register write to every chip of the
// rank — how a controller programs XED-Enable in one command (the §VII-B
// serial-mode dance toggles it around a re-read).
func (r *Rank) MRSBroadcast(reg ModeRegister, value uint16) {
	for _, c := range r.chips {
		c.MRSWrite(reg, value)
	}
}
