package dram

import (
	"fmt"

	"xedsim/internal/ecc"
)

// Granularity enumerates the DRAM failure modes of the paper's fault model
// (§II-C, Table I). Each granularity corresponds to a set of 64-bit words
// inside one chip (MultiRank faults span the same chip position in several
// ranks and are expanded by the caller into per-chip records).
type Granularity int

const (
	// GranBit is a single-bit fault in one word.
	GranBit Granularity = iota
	// GranWord is a multi-bit fault confined to one 64-bit word.
	GranWord
	// GranColumn covers one column (the same word of every row in a bank).
	GranColumn
	// GranRow covers every word of one row.
	GranRow
	// GranBank covers an entire bank.
	GranBank
	// GranMultiBank covers several banks of one chip.
	GranMultiBank
	// GranChip covers the whole chip. Multi-rank faults are modelled as
	// chip faults replicated at the same position of each affected rank.
	GranChip
	// NumGranularities counts the distinct granularities; valid values
	// are 0 <= g < NumGranularities. Exported so scheme engines can size
	// per-granularity lookup tables.
	NumGranularities
)

// String implements fmt.Stringer.
func (g Granularity) String() string {
	switch g {
	case GranBit:
		return "bit"
	case GranWord:
		return "word"
	case GranColumn:
		return "column"
	case GranRow:
		return "row"
	case GranBank:
		return "bank"
	case GranMultiBank:
		return "multi-bank"
	case GranChip:
		return "chip"
	default:
		return fmt.Sprintf("Granularity(%d)", int(g))
	}
}

// Fault is one fault inside one chip, expressed as an address range:
// specific coordinates match one value, wildcard (-1) coordinates match
// all. This is the FaultSim-style symbolic representation; the functional
// chip model also evaluates it directly when corrupting reads.
type Fault struct {
	Gran      Granularity
	Transient bool
	// Bank/Row/Col are the matched coordinates; -1 is a wildcard.
	Bank, Row, Col int
	// BankMask restricts a GranMultiBank fault to specific banks
	// (bit b set = bank b affected). Ignored for other granularities.
	BankMask uint64
	// BitMask is the corrupted-bit pattern for GranBit and GranWord
	// faults. Larger-granularity faults derive a per-word pattern from
	// Seed instead.
	BitMask uint64
	// CheckMask corrupts the on-die check bits alongside BitMask.
	CheckMask uint8
	// Seed makes the per-word corruption of large faults deterministic.
	Seed uint64
	// Epoch is the chip write-clock value at injection time; transient
	// faults do not corrupt words rewritten after injection.
	Epoch uint64
}

// Covers reports whether the fault affects the given word.
func (f *Fault) Covers(a WordAddr) bool {
	switch f.Gran {
	case GranChip:
		return true
	case GranMultiBank:
		return f.BankMask>>uint(a.Bank)&1 == 1
	}
	if f.Bank != -1 && f.Bank != a.Bank {
		return false
	}
	if f.Row != -1 && f.Row != a.Row {
		return false
	}
	if f.Col != -1 && f.Col != a.Col {
		return false
	}
	return true
}

// mix is a splitmix64-style hash used to derive deterministic per-word
// corruption patterns for large-granularity faults.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Corrupt applies the fault's corruption to a stored codeword. For bit and
// word faults the explicit masks are used; for larger faults the pattern is
// a deterministic hash of (Seed, address), so repeated reads of the same
// word see the same stuck bits — the behaviour Intra-Line Fault Diagnosis
// (§VI-B) relies on.
func (f *Fault) Corrupt(g Geometry, a WordAddr, cw ecc.Codeword72) ecc.Codeword72 {
	switch f.Gran {
	case GranBit, GranWord:
		return cw.FlipMask(f.BitMask, f.CheckMask)
	default:
		h := mix(f.Seed ^ g.index(a)*0x9e3779b97f4a7c15)
		// Corrupt a dense random pattern across data and check bits:
		// the signature of a broken row/column/bank is wide multi-bit
		// damage, which the on-die code detects with probability
		// determined by its real syndrome behaviour.
		dataMask := h
		checkMask := uint8(mix(h) & 0xff)
		if dataMask == 0 && checkMask == 0 {
			dataMask = 1
		}
		return cw.FlipMask(dataMask, checkMask)
	}
}

// Intersects reports whether two faults in the *same chip* share at least
// one word address, the FaultSim overlap test. Two faults in different
// chips never intersect at the chip level; the DIMM-level overlap of faults
// in different chips is computed by IntersectsAcrossChips.
func (f *Fault) Intersects(o *Fault) bool {
	matchDim := func(a, b int) bool { return a == -1 || b == -1 || a == b }
	bankOverlap := func() bool {
		fa, fo := f.bankSet(), o.bankSet()
		return fa&fo != 0
	}
	if !bankOverlap() {
		return false
	}
	return matchDim(f.Row, o.Row) && matchDim(f.Col, o.Col)
}

// bankSet returns the fault's affected banks as a bitmask over 64 banks.
func (f *Fault) bankSet() uint64 {
	switch f.Gran {
	case GranChip:
		return ^uint64(0)
	case GranMultiBank:
		return f.BankMask
	}
	if f.Bank == -1 {
		return ^uint64(0)
	}
	return 1 << uint(f.Bank)
}

// IntersectsAcrossChips reports whether two faults in *different* chips of
// the same rank damage at least one common cache line. Chips in a rank
// share the bank/row/column address, so the test is the same range overlap
// ignoring the chip dimension.
func IntersectsAcrossChips(a, b *Fault) bool { return a.Intersects(b) }

// NewBitFault builds a single-bit fault at the given address. bit selects
// which of the 72 codeword bits is damaged (0..63 data, 64..71 check).
func NewBitFault(a WordAddr, bit int, transient bool) Fault {
	f := Fault{Gran: GranBit, Transient: transient, Bank: a.Bank, Row: a.Row, Col: a.Col}
	if bit < 64 {
		f.BitMask = 1 << uint(bit)
	} else {
		f.CheckMask = 1 << uint(bit-64)
	}
	return f
}

// NewWordFault builds a multi-bit fault confined to one word. The mask pair
// must not be all zero.
func NewWordFault(a WordAddr, dataMask uint64, checkMask uint8, transient bool) Fault {
	if dataMask == 0 && checkMask == 0 {
		panic("dram: word fault with empty mask")
	}
	return Fault{Gran: GranWord, Transient: transient, Bank: a.Bank, Row: a.Row, Col: a.Col,
		BitMask: dataMask, CheckMask: checkMask}
}

// NewColumnFault builds a column fault: column col of every row in bank.
func NewColumnFault(bank, col int, transient bool, seed uint64) Fault {
	return Fault{Gran: GranColumn, Transient: transient, Bank: bank, Row: -1, Col: col, Seed: seed}
}

// NewRowFault builds a row fault covering all columns of one row.
func NewRowFault(bank, row int, transient bool, seed uint64) Fault {
	return Fault{Gran: GranRow, Transient: transient, Bank: bank, Row: row, Col: -1, Seed: seed}
}

// NewBankFault builds a whole-bank fault.
func NewBankFault(bank int, transient bool, seed uint64) Fault {
	return Fault{Gran: GranBank, Transient: transient, Bank: bank, Row: -1, Col: -1, Seed: seed}
}

// NewMultiBankFault builds a fault over the banks set in bankMask.
func NewMultiBankFault(bankMask uint64, transient bool, seed uint64) Fault {
	if bankMask == 0 {
		panic("dram: multi-bank fault with empty bank mask")
	}
	return Fault{Gran: GranMultiBank, Transient: transient, Bank: -1, Row: -1, Col: -1,
		BankMask: bankMask, Seed: seed}
}

// NewChipFault builds a whole-chip fault.
func NewChipFault(transient bool, seed uint64) Fault {
	return Fault{Gran: GranChip, Transient: transient, Bank: -1, Row: -1, Col: -1, Seed: seed}
}
