package dram

import (
	"testing"
	"testing/quick"
)

func TestMapperRoundTripInPackage(t *testing.T) {
	m := MustNewMapper(4, 2, Geometry{Banks: 8, RowsPerBank: 128, ColsPerRow: 64})
	if m.Bytes() != m.Lines()*64 {
		t.Fatal("bytes/lines inconsistent")
	}
	f := func(raw uint64) bool {
		phys := (raw % m.Lines()) << 6
		return m.Compose(m.Decompose(phys)) == phys
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMapperWithoutXORHash(t *testing.T) {
	m := MustNewMapper(2, 2, Geometry{Banks: 4, RowsPerBank: 16, ColsPerRow: 8})
	m.XORBankHash = false
	for line := uint64(0); line < m.Lines(); line += 7 {
		phys := line << 6
		if m.Compose(m.Decompose(phys)) != phys {
			t.Fatalf("round trip failed at %#x without XOR hash", phys)
		}
	}
}

func TestMapperConstructorValidation(t *testing.T) {
	if _, err := NewMapper(0, 2, DefaultGeometry()); err == nil {
		t.Fatal("zero channels accepted")
	}
	if _, err := NewMapper(2, 2, Geometry{}); err == nil {
		t.Fatal("zero geometry accepted")
	}
	assertPanics(t, "channels", func() { MustNewMapper(0, 2, DefaultGeometry()) })
}

func TestIntersectsAcrossChips(t *testing.T) {
	a := NewRowFault(1, 10, false, 1)
	b := NewBankFault(1, false, 2)
	c := NewBankFault(2, false, 3)
	if !IntersectsAcrossChips(&a, &b) {
		t.Fatal("row and same-bank fault share lines")
	}
	if IntersectsAcrossChips(&a, &c) {
		t.Fatal("different banks share nothing")
	}
}

func TestRankAccessors(t *testing.T) {
	r := newTestRank(9)
	if r.Chips() != 9 {
		t.Fatalf("chips = %d", r.Chips())
	}
	if r.Geometry() != testGeom() {
		t.Fatal("geometry accessor wrong")
	}
	if r.Chip(0).Geometry() != testGeom() {
		t.Fatal("chip geometry accessor wrong")
	}
}
