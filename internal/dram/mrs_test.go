package dram

import (
	"testing"
	"testing/quick"

	"xedsim/internal/ecc"
)

func TestMRSCatchWordSlices(t *testing.T) {
	c := newTestChip()
	f := func(cw uint64) bool {
		c.SetCatchWord(cw)
		return c.CatchWord() == cw
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMRSPartialCatchWordUpdate(t *testing.T) {
	c := newTestChip()
	c.SetCatchWord(0x1111222233334444)
	c.MRSWrite(MRCatchWord2, 0xabcd)
	if got := c.CatchWord(); got != 0x1111abcd33334444 {
		t.Fatalf("partial MRS update = %#x", got)
	}
}

func TestMRSEnableBit(t *testing.T) {
	c := newTestChip()
	c.MRSWrite(MRXEDEnable, 1)
	if !c.XEDEnabled() {
		t.Fatal("enable bit not set")
	}
	c.MRSWrite(MRXEDEnable, 0xfffe) // bit 0 clear
	if c.XEDEnabled() {
		t.Fatal("enable bit not cleared")
	}
}

func TestMRSWriteCountsAndBroadcast(t *testing.T) {
	r := newTestRank(9)
	r.MRSBroadcast(MRXEDEnable, 1)
	for i := 0; i < 9; i++ {
		if !r.Chip(i).XEDEnabled() {
			t.Fatalf("chip %d not enabled by broadcast", i)
		}
		if r.Chip(i).Stats().MRSWrites != 1 {
			t.Fatalf("chip %d MRS count %d", i, r.Chip(i).Stats().MRSWrites)
		}
	}
	// SetCatchWord is four MRS writes — the 65-bit state of §V-A is
	// programmed in five commands total.
	r.Chip(0).SetCatchWord(0xdead)
	if got := r.Chip(0).Stats().MRSWrites; got != 5 {
		t.Fatalf("MRS writes = %d, want 5", got)
	}
}

func TestMRSUnknownRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newTestChip().MRSWrite(numModeRegisters, 0)
}

func TestModeRegisterStrings(t *testing.T) {
	for r := MRXEDEnable; r < numModeRegisters; r++ {
		if s := r.String(); s == "" || s[0] != 'M' {
			t.Fatalf("register %d has bad string %q", int(r), s)
		}
	}
}

// Guard: the MRS path and the legacy setters must agree with the read
// path's view of the registers.
func TestMRSAgreesWithDCMux(t *testing.T) {
	c := NewChip(testGeom(), ecc.NewCRC8ATM())
	a := WordAddr{Bank: 0, Row: 0, Col: 0}
	c.Write(a, 1)
	c.InjectFault(NewBitFault(a, 3, false))
	c.MRSWrite(MRXEDEnable, 1)
	for i := 0; i < 4; i++ {
		c.MRSWrite(MRCatchWord0+ModeRegister(i), 0xbeef)
	}
	r := c.Read(a)
	want := uint64(0xbeefbeefbeefbeef)
	if !r.IsCatchWord || r.Data != want {
		t.Fatalf("read = %+v, want catch-word %#x", r, want)
	}
}
