// Package dram models DDR-style DRAM devices at the level the XED paper
// needs: chips divided into banks, rows and columns (§II-A), per-chip
// On-Die ECC engines protecting each 64-bit word with 8 check bits (§II-B),
// the XED-Enable and Catch-Word mode registers configured over the MRS
// interface, and the DC-Mux that substitutes a catch-word for data whenever
// the on-die code detects or corrects an error (§V-A).
//
// The package provides two complementary views:
//
//   - a functional chip model (Chip, Rank) with sparse storage and
//     deterministic fault corruption, used by the XED controller in
//     internal/core and by the examples; and
//   - a symbolic fault-range representation (Fault, Covers, Intersects)
//     used by the Monte-Carlo reliability simulator in internal/faultsim,
//     mirroring FaultSim's range-based fault records.
package dram

import "fmt"

// Geometry describes one DRAM chip's internal organisation. Defaults match
// the paper's 2Gb x8 parts in the Table V system: 8 banks, 32K rows per
// bank, 128 cache lines (columns) per row.
type Geometry struct {
	Banks       int
	RowsPerBank int
	ColsPerRow  int
}

// DefaultGeometry is the 2Gb x8 device of the paper's evaluation (§III):
// 8 banks x 32768 rows x 128 columns x 64 bits = 2 Gbit.
func DefaultGeometry() Geometry {
	return Geometry{Banks: 8, RowsPerBank: 32768, ColsPerRow: 128}
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	if g.Banks <= 0 || g.RowsPerBank <= 0 || g.ColsPerRow <= 0 {
		return fmt.Errorf("dram: invalid geometry %+v", g)
	}
	return nil
}

// Words returns the number of 64-bit words the chip stores.
func (g Geometry) Words() int64 {
	return int64(g.Banks) * int64(g.RowsPerBank) * int64(g.ColsPerRow)
}

// WordAddr names one 64-bit word inside a chip.
type WordAddr struct {
	Bank int
	Row  int
	Col  int
}

// index flattens the address for use as a sparse-store key.
func (g Geometry) index(a WordAddr) uint64 {
	return (uint64(a.Bank)*uint64(g.RowsPerBank)+uint64(a.Row))*uint64(g.ColsPerRow) + uint64(a.Col)
}

// Contains reports whether a is a legal address for the geometry.
func (g Geometry) Contains(a WordAddr) bool {
	return a.Bank >= 0 && a.Bank < g.Banks &&
		a.Row >= 0 && a.Row < g.RowsPerBank &&
		a.Col >= 0 && a.Col < g.ColsPerRow
}

// String implements fmt.Stringer.
func (a WordAddr) String() string {
	return fmt.Sprintf("bank %d row %d col %d", a.Bank, a.Row, a.Col)
}
