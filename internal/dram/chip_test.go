package dram

import (
	"testing"
	"testing/quick"

	"xedsim/internal/ecc"
	"xedsim/internal/simrand"
)

func testGeom() Geometry { return Geometry{Banks: 4, RowsPerBank: 64, ColsPerRow: 16} }

func newTestChip() *Chip { return NewChip(testGeom(), ecc.NewCRC8ATM()) }

func TestChipReadBackProperty(t *testing.T) {
	c := newTestChip()
	f := func(bank, row, col uint8, data uint64) bool {
		a := WordAddr{Bank: int(bank) % 4, Row: int(row) % 64, Col: int(col) % 16}
		c.Write(a, data)
		r := c.Read(a)
		return r.Data == data && !r.IsCatchWord && r.Status == ecc.StatusOK
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChipUnwrittenReadsZero(t *testing.T) {
	c := newTestChip()
	r := c.Read(WordAddr{Bank: 1, Row: 2, Col: 3})
	if r.Data != 0 || r.Status != ecc.StatusOK {
		t.Fatalf("unwritten read = %+v", r)
	}
}

func TestChipOnDieCorrectsSingleBit(t *testing.T) {
	// Conventional mode: a single-bit fault is corrected invisibly.
	c := newTestChip()
	a := WordAddr{Bank: 0, Row: 5, Col: 7}
	c.Write(a, 0xdeadbeef)
	c.InjectFault(NewBitFault(a, 13, false))
	r := c.Read(a)
	if r.Data != 0xdeadbeef || r.IsCatchWord {
		t.Fatalf("read = %+v, want corrected data", r)
	}
	if c.Stats().OnDieCorrections != 1 {
		t.Fatalf("corrections = %d, want 1", c.Stats().OnDieCorrections)
	}
}

func TestChipXEDSendsCatchWordOnCorrection(t *testing.T) {
	// §V-A: with XED enabled the DC-Mux substitutes the catch-word even
	// for *corrected* errors.
	c := newTestChip()
	c.SetXEDEnable(true)
	c.SetCatchWord(0x5ca1ab1e0ddba11)
	a := WordAddr{Bank: 2, Row: 9, Col: 1}
	c.Write(a, 42)
	c.InjectFault(NewBitFault(a, 70, false)) // check-bit fault
	r := c.Read(a)
	if !r.IsCatchWord || r.Data != 0x5ca1ab1e0ddba11 {
		t.Fatalf("read = %+v, want catch-word", r)
	}
	if c.Stats().CatchWordsSent != 1 {
		t.Fatalf("catch-words = %d, want 1", c.Stats().CatchWordsSent)
	}
}

func TestChipXEDSendsCatchWordOnDetection(t *testing.T) {
	c := newTestChip()
	c.SetXEDEnable(true)
	c.SetCatchWord(0xcafe)
	a := WordAddr{Bank: 0, Row: 0, Col: 0}
	c.Write(a, 7)
	c.InjectFault(NewWordFault(a, 0b11, 0, false)) // 2-bit: detect-only
	r := c.Read(a)
	if !r.IsCatchWord {
		t.Fatalf("read = %+v, want catch-word", r)
	}
	if r.Status != ecc.StatusDetected {
		t.Fatalf("status = %v, want detected", r.Status)
	}
}

func TestChipConventionalModeLeaksBadData(t *testing.T) {
	// The concealment problem XED fixes: with XED disabled, a
	// detected-uncorrectable on-die error still ships (wrong) data with
	// no indication.
	c := newTestChip()
	a := WordAddr{Bank: 0, Row: 1, Col: 2}
	c.Write(a, 0x1234)
	c.InjectFault(NewWordFault(a, 0b101000001, 0, false)) // 3-bit error
	r := c.Read(a)
	if r.IsCatchWord {
		t.Fatal("conventional chip must never send a catch-word")
	}
	if r.Status == ecc.StatusOK {
		t.Fatalf("3-bit corruption should not read as clean")
	}
}

func TestChipReadRawBypassesDCMux(t *testing.T) {
	// Serial-mode correction (§VII-B): the controller clears XED-Enable
	// and rereads so the on-die engine's corrected value reaches the bus.
	c := newTestChip()
	c.SetXEDEnable(true)
	c.SetCatchWord(0xbeef)
	a := WordAddr{Bank: 3, Row: 60, Col: 15}
	c.Write(a, 0x77)
	c.InjectFault(NewBitFault(a, 3, false))
	if r := c.Read(a); !r.IsCatchWord {
		t.Fatal("expected catch-word with XED enabled")
	}
	data, st := c.ReadRaw(a)
	if data != 0x77 || st != ecc.StatusCorrected {
		t.Fatalf("ReadRaw = %#x, %v; want corrected 0x77", data, st)
	}
	if !c.XEDEnabled() {
		t.Fatal("ReadRaw must restore XED-Enable")
	}
}

func TestChipTransientFaultClearedByRewrite(t *testing.T) {
	c := newTestChip()
	a := WordAddr{Bank: 1, Row: 1, Col: 1}
	c.Write(a, 10)
	c.InjectFault(NewBitFault(a, 0, true))
	if r := c.Read(a); r.Status != ecc.StatusCorrected {
		t.Fatalf("expected corrected read, got %v", r.Status)
	}
	c.Write(a, 11) // rewrite clears the upset
	if r := c.Read(a); r.Status != ecc.StatusOK || r.Data != 11 {
		t.Fatalf("after rewrite: %+v", r)
	}
}

func TestChipPermanentFaultSurvivesRewrite(t *testing.T) {
	c := newTestChip()
	a := WordAddr{Bank: 1, Row: 1, Col: 1}
	c.Write(a, 10)
	c.InjectFault(NewBitFault(a, 0, false))
	c.Write(a, 11)
	if r := c.Read(a); r.Status != ecc.StatusCorrected {
		t.Fatalf("permanent fault vanished after rewrite: %+v", r)
	}
}

func TestChipClearTransientFaults(t *testing.T) {
	c := newTestChip()
	a := WordAddr{Bank: 0, Row: 2, Col: 2}
	c.Write(a, 5)
	c.InjectFault(NewBitFault(a, 1, true))
	c.InjectFault(NewBitFault(a, 2, false))
	c.ClearTransientFaults()
	fs := c.Faults()
	if len(fs) != 1 || fs[0].Transient {
		t.Fatalf("faults after scrub: %+v", fs)
	}
}

func TestChipClearTransientFaultsZeroesTail(t *testing.T) {
	// The scrub filters in place; the dropped tail of the backing array
	// must be zeroed so cleared faults cannot pin memory or resurface
	// through slices aliased before the scrub.
	c := newTestChip()
	a := WordAddr{Bank: 0, Row: 2, Col: 2}
	c.InjectFault(NewBitFault(a, 1, false))
	c.InjectFault(NewBitFault(a, 2, true))
	c.InjectFault(NewBitFault(a, 3, true))
	backing := c.faults // aliases the backing array the scrub truncates
	c.ClearTransientFaults()
	if len(c.faults) != 1 {
		t.Fatalf("kept %d faults, want 1", len(c.faults))
	}
	for i, f := range backing[1:] {
		if f != (Fault{}) {
			t.Fatalf("dropped slot %d not zeroed: %+v", i+1, f)
		}
	}
}

func TestChipRowFaultCorruptsWholeRow(t *testing.T) {
	c := newTestChip()
	for col := 0; col < 16; col++ {
		c.Write(WordAddr{Bank: 2, Row: 30, Col: col}, uint64(col))
		c.Write(WordAddr{Bank: 2, Row: 31, Col: col}, uint64(col))
	}
	c.InjectFault(NewRowFault(2, 30, false, 99))
	bad := 0
	for col := 0; col < 16; col++ {
		if r := c.Read(WordAddr{Bank: 2, Row: 30, Col: col}); r.Status != ecc.StatusOK {
			bad++
		}
	}
	// Dense random corruption: the real code detects nearly every word.
	if bad < 14 {
		t.Fatalf("only %d/16 words of the failed row detected", bad)
	}
	for col := 0; col < 16; col++ {
		if r := c.Read(WordAddr{Bank: 2, Row: 31, Col: col}); r.Status != ecc.StatusOK || r.Data != uint64(col) {
			t.Fatalf("neighbour row corrupted at col %d: %+v", col, r)
		}
	}
}

func TestChipColumnFaultScope(t *testing.T) {
	c := newTestChip()
	c.InjectFault(NewColumnFault(1, 5, false, 7))
	hit, miss := 0, 0
	for row := 0; row < 64; row++ {
		if r := c.Read(WordAddr{Bank: 1, Row: row, Col: 5}); r.Status != ecc.StatusOK {
			hit++
		}
		if r := c.Read(WordAddr{Bank: 1, Row: row, Col: 6}); r.Status != ecc.StatusOK {
			miss++
		}
	}
	if hit < 60 {
		t.Fatalf("column fault detected in only %d/64 rows", hit)
	}
	if miss != 0 {
		t.Fatalf("column fault leaked into other columns %d times", miss)
	}
}

func TestChipBankAndChipFaultScope(t *testing.T) {
	c := newTestChip()
	c.InjectFault(NewBankFault(3, false, 8))
	if r := c.Read(WordAddr{Bank: 3, Row: 0, Col: 0}); r.Status == ecc.StatusOK {
		t.Fatal("bank fault missed bank 3")
	}
	if r := c.Read(WordAddr{Bank: 0, Row: 0, Col: 0}); r.Status != ecc.StatusOK {
		t.Fatal("bank fault leaked into bank 0")
	}
	c2 := newTestChip()
	c2.InjectFault(NewChipFault(false, 9))
	for bank := 0; bank < 4; bank++ {
		if r := c2.Read(WordAddr{Bank: bank, Row: 1, Col: 1}); r.Status == ecc.StatusOK {
			t.Fatalf("chip fault missed bank %d", bank)
		}
	}
}

func TestChipMultiBankFaultScope(t *testing.T) {
	c := newTestChip()
	c.InjectFault(NewMultiBankFault(0b0101, false, 3))
	for bank := 0; bank < 4; bank++ {
		r := c.Read(WordAddr{Bank: bank, Row: 0, Col: 0})
		want := bank == 0 || bank == 2
		if got := r.Status != ecc.StatusOK; got != want {
			t.Fatalf("bank %d corrupted=%v, want %v", bank, got, want)
		}
	}
}

func TestScalingFaultDensity(t *testing.T) {
	// At rate 1e-3 per bit, ~6.9% of words should carry a weak cell.
	c := NewChip(Geometry{Banks: 8, RowsPerBank: 256, ColsPerRow: 32}, ecc.NewCRC8ATM())
	c.SetScaling(ScalingProfile{Rate: 1e-3, Seed: 4})
	faulty, total := 0, 0
	for bank := 0; bank < 8; bank++ {
		for row := 0; row < 256; row++ {
			for col := 0; col < 32; col++ {
				total++
				if c.ScalingWordIsFaulty(WordAddr{Bank: bank, Row: row, Col: col}) {
					faulty++
				}
			}
		}
	}
	got := float64(faulty) / float64(total)
	want := 1 - pow(1-1e-3, 72)
	if got < want*0.8 || got > want*1.2 {
		t.Fatalf("scaling density = %v, want ≈%v", got, want)
	}
}

func pow(x float64, n int) float64 {
	r := 1.0
	for i := 0; i < n; i++ {
		r *= x
	}
	return r
}

func TestScalingFaultAlwaysCorrectedOnDie(t *testing.T) {
	// Scaling faults are single-bit by construction, so the on-die code
	// always corrects them (or XED turns them into catch-words).
	c := newTestChip()
	c.SetScaling(ScalingProfile{Rate: 0.05, Seed: 11}) // exaggerated rate
	rng := simrand.New(12)
	sawFaulty := false
	for i := 0; i < 4096; i++ {
		a := WordAddr{Bank: rng.Intn(4), Row: rng.Intn(64), Col: rng.Intn(16)}
		v := rng.Uint64()
		c.Write(a, v)
		r := c.Read(a)
		if r.Data != v {
			t.Fatalf("scaling fault not corrected at %v: got %#x want %#x", a, r.Data, v)
		}
		if r.Status == ecc.StatusCorrected {
			sawFaulty = true
		}
	}
	if !sawFaulty {
		t.Fatal("expected some scaling faults at 5% word rate")
	}
}

func TestChipStatsCount(t *testing.T) {
	c := newTestChip()
	a := WordAddr{Bank: 0, Row: 0, Col: 0}
	c.Write(a, 1)
	c.Read(a)
	c.Read(a)
	st := c.Stats()
	if st.Writes != 1 || st.Reads != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGeometryValidateAndBounds(t *testing.T) {
	if err := (Geometry{}).Validate(); err == nil {
		t.Fatal("zero geometry should be invalid")
	}
	g := DefaultGeometry()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Words() != 2*1024*1024*1024/64 {
		t.Fatalf("default geometry words = %d, want 2Gbit/64", g.Words())
	}
	if g.Contains(WordAddr{Bank: 8, Row: 0, Col: 0}) {
		t.Fatal("bank 8 out of range for 8-bank geometry")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range read")
		}
	}()
	NewChip(testGeom(), ecc.NewCRC8ATM()).Read(WordAddr{Bank: 99, Row: 0, Col: 0})
}

func BenchmarkChipReadClean(b *testing.B) {
	c := newTestChip()
	a := WordAddr{Bank: 0, Row: 0, Col: 0}
	c.Write(a, 0x1234)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(a)
	}
}

func BenchmarkChipReadFaulty(b *testing.B) {
	c := newTestChip()
	c.SetXEDEnable(true)
	c.SetCatchWord(0xbeef)
	a := WordAddr{Bank: 0, Row: 0, Col: 0}
	c.Write(a, 0x1234)
	c.InjectFault(NewBitFault(a, 5, false))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(a)
	}
}

func TestSilentEscapeRateMatchesCodeAlgebra(t *testing.T) {
	// Cross-check the functional model against the code's syndrome
	// geometry: a uniformly random (64+8)-bit corruption pattern lands
	// on a valid codeword with probability 2^-8 ≈ 0.39%. The chip's
	// SilentCorrupt counter must reproduce that rate.
	c := newTestChip()
	rng := simrand.New(0x51e7)
	const trials = 60_000
	for i := 0; i < trials; i++ {
		a := WordAddr{Bank: rng.Intn(4), Row: rng.Intn(64), Col: rng.Intn(16)}
		c.ClearFaults()
		mask := rng.Uint64()
		if mask == 0 {
			mask = 1
		}
		c.InjectFault(NewWordFault(a, mask, uint8(rng.Uint64()), false))
		c.Write(a, rng.Uint64())
		c.Read(a)
	}
	silent := float64(c.Stats().SilentCorrupt)
	want := trials / 256.0
	if silent < want*0.7 || silent > want*1.3 {
		t.Fatalf("silent escapes %v, want ≈%v (2^-8 of %d)", silent, want, trials)
	}
}
