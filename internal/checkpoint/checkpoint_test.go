package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	Label  string   `json:"label"`
	Counts []uint64 `json:"counts"`
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	hash, err := Hash(map[string]int{"trials": 100})
	if err != nil {
		t.Fatal(err)
	}
	in := payload{Label: "xed", Counts: []uint64{1, 2, 3}}
	if err := Save(path, "test-kind", 2, hash, &in); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Load(path, "test-kind", 2, hash, &out); err != nil {
		t.Fatal(err)
	}
	if out.Label != in.Label || len(out.Counts) != 3 || out.Counts[2] != 3 {
		t.Fatalf("round trip mangled payload: %+v", out)
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	for i := 0; i < 3; i++ {
		in := payload{Label: "v", Counts: []uint64{uint64(i)}}
		if err := Save(path, "k", 1, "h", &in); err != nil {
			t.Fatal(err)
		}
	}
	var out payload
	if err := Load(path, "k", 1, "h", &out); err != nil {
		t.Fatal(err)
	}
	if out.Counts[0] != 2 {
		t.Fatalf("latest save not visible: %+v", out)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("stale temp file %s", e.Name())
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	var out payload
	err := Load(filepath.Join(t.TempDir(), "absent.json"), "k", 1, "h", &out)
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want os.ErrNotExist", err)
	}
}

func TestLoadRejectsMismatches(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := Save(path, "kind-a", 3, "hash-a", &payload{}); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Load(path, "kind-b", 3, "hash-a", &out); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("kind: err = %v", err)
	}
	if err := Load(path, "kind-a", 4, "hash-a", &out); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("version: err = %v", err)
	}
	if err := Load(path, "kind-a", 3, "hash-b", &out); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("hash: err = %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	var out payload

	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Load(junk, "k", 1, "h", &out); !errors.Is(err, ErrNotCheckpoint) {
		t.Fatalf("junk: err = %v", err)
	}

	// Valid JSON, wrong magic.
	impostor := filepath.Join(dir, "impostor")
	if err := os.WriteFile(impostor, []byte(`{"magic":"something-else","kind":"k","version":1,"config_hash":"h","payload":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Load(impostor, "k", 1, "h", &out); !errors.Is(err, ErrNotCheckpoint) {
		t.Fatalf("impostor: err = %v", err)
	}
}

func TestHashIsStableAndDiscriminating(t *testing.T) {
	type cfg struct {
		A int
		B string
	}
	h1, err := Hash(cfg{1, "x"})
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := Hash(cfg{1, "x"})
	h3, _ := Hash(cfg{2, "x"})
	if h1 != h2 {
		t.Fatal("hash of equal values differs")
	}
	if h1 == h3 {
		t.Fatal("hash of different values collides")
	}
	if len(h1) != 64 {
		t.Fatalf("hash %q is not hex sha256", h1)
	}
}
