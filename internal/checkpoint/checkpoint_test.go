package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	Label  string   `json:"label"`
	Counts []uint64 `json:"counts"`
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	hash, err := Hash(map[string]int{"trials": 100})
	if err != nil {
		t.Fatal(err)
	}
	in := payload{Label: "xed", Counts: []uint64{1, 2, 3}}
	if err := Save(path, "test-kind", 2, hash, &in); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Load(path, "test-kind", 2, hash, &out); err != nil {
		t.Fatal(err)
	}
	if out.Label != in.Label || len(out.Counts) != 3 || out.Counts[2] != 3 {
		t.Fatalf("round trip mangled payload: %+v", out)
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	for i := 0; i < 3; i++ {
		in := payload{Label: "v", Counts: []uint64{uint64(i)}}
		if err := Save(path, "k", 1, "h", &in); err != nil {
			t.Fatal(err)
		}
	}
	var out payload
	if err := Load(path, "k", 1, "h", &out); err != nil {
		t.Fatal(err)
	}
	if out.Counts[0] != 2 {
		t.Fatalf("latest save not visible: %+v", out)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("stale temp file %s", e.Name())
		}
	}
}

// noTempFiles fails the test if dir holds any leftover *.tmp* file — the
// contract that every Save error path cleans up after itself.
func noTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("stale temp file %s", e.Name())
		}
	}
}

func TestSaveErrorPathsLeaveNoTempFile(t *testing.T) {
	t.Run("unencodable payload", func(t *testing.T) {
		dir := t.TempDir()
		err := Save(filepath.Join(dir, "snap.json"), "k", 1, "h", make(chan int))
		if err == nil {
			t.Fatal("Save of an unencodable payload succeeded")
		}
		noTempFiles(t, dir)
		if entries, _ := os.ReadDir(dir); len(entries) != 0 {
			t.Fatalf("failed Save created files: %v", entries)
		}
	})
	t.Run("missing directory", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "no", "such", "dir", "snap.json")
		if err := Save(path, "k", 1, "h", &payload{}); err == nil {
			t.Fatal("Save into a missing directory succeeded")
		}
	})
	t.Run("rename onto directory", func(t *testing.T) {
		dir := t.TempDir()
		path := filepath.Join(dir, "snap.json")
		if err := os.Mkdir(path, 0o755); err != nil {
			t.Fatal(err)
		}
		// Make the rename fail reliably: a non-empty directory cannot be
		// replaced by a file on any platform.
		if err := os.WriteFile(filepath.Join(path, "occupant"), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := Save(path, "k", 1, "h", &payload{}); err == nil {
			t.Fatal("Save onto a directory succeeded")
		}
		noTempFiles(t, dir)
	})
}

// TestSaveSyncsDirectory exercises the post-rename directory fsync path
// (the durability fix): a successful Save must open and sync the parent
// directory without error and still leave exactly the snapshot behind.
func TestSaveSyncsDirectory(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	if err := Save(path, "k", 1, "h", &payload{Label: "durable"}); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Load(path, "k", 1, "h", &out); err != nil {
		t.Fatal(err)
	}
	if out.Label != "durable" {
		t.Fatalf("payload = %+v", out)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "snap.json" {
		t.Fatalf("directory contents after Save: %v", entries)
	}
}

func TestLoadMissingFile(t *testing.T) {
	var out payload
	err := Load(filepath.Join(t.TempDir(), "absent.json"), "k", 1, "h", &out)
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want os.ErrNotExist", err)
	}
}

func TestLoadRejectsMismatches(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := Save(path, "kind-a", 3, "hash-a", &payload{}); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Load(path, "kind-b", 3, "hash-a", &out); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("kind: err = %v", err)
	}
	if err := Load(path, "kind-a", 4, "hash-a", &out); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("version: err = %v", err)
	}
	if err := Load(path, "kind-a", 3, "hash-b", &out); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("hash: err = %v", err)
	}
}

// TestSaveSweepsStaleTemps pins the crash-orphan sweep: temp files left by
// a save that died between CreateTemp and rename are removed by the next
// Save to the same path (and by an explicit CleanStale), while unrelated
// files survive.
func TestSaveSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	for _, stale := range []string{"snap.json.tmp123", "snap.json.tmp999x"} {
		if err := os.WriteFile(filepath.Join(dir, stale), []byte("orphan"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	bystander := filepath.Join(dir, "other.json.tmp5")
	if err := os.WriteFile(bystander, []byte("not ours"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, "k", 1, "h", &payload{Label: "fresh"}); err != nil {
		t.Fatal(err)
	}
	noTempFilesFor(t, dir, "snap.json")
	if _, err := os.Stat(bystander); err != nil {
		t.Fatalf("sweep removed another checkpoint's temp file: %v", err)
	}
	var out payload
	if err := Load(path, "k", 1, "h", &out); err != nil || out.Label != "fresh" {
		t.Fatalf("Load after sweep: %+v, %v", out, err)
	}
}

// noTempFilesFor fails if dir holds any leftover temp for the given base.
func noTempFilesFor(t *testing.T, dir, base string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), base+".tmp") {
			t.Fatalf("stale temp file %s", e.Name())
		}
	}
}

func TestCleanStaleExplicit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ledger.ckpt")
	if err := os.WriteFile(path+".tmp42", []byte("orphan"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CleanStale(path); err != nil {
		t.Fatal(err)
	}
	noTempFilesFor(t, dir, "ledger.ckpt")
	// Idempotent on a clean directory.
	if err := CleanStale(path); err != nil {
		t.Fatal(err)
	}
}

// TestLoadRejectsCorruption pins the corruption paths a crashing writer (or
// a torn copy) can produce: empty, truncated and trailing-garbage envelope
// files must surface ErrNotCheckpoint — never a panic, never a zero-value
// payload mistaken for real state.
func TestLoadRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	if err := Save(good, "k", 1, "h", &payload{Label: "x", Counts: []uint64{1}}); err != nil {
		t.Fatal(err)
	}
	env, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated half", env[:len(env)/2]},
		{"truncated one byte", env[:len(env)-1]},
		{"trailing garbage", append(append([]byte(nil), env...), "garbage"...)},
		{"binary junk", []byte{0x00, 0xff, 0x13, 0x37}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(dir, "corrupt")
			if err := os.WriteFile(p, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			var out payload
			if err := Load(p, "k", 1, "h", &out); !errors.Is(err, ErrNotCheckpoint) {
				t.Fatalf("err = %v, want ErrNotCheckpoint", err)
			}
		})
	}
}

// TestMarshalMatchesSave pins that Marshal produces exactly the bytes Save
// writes — the distributed coordinator serves Marshal output over HTTP and
// clients compare it byte-for-byte against locally saved snapshots.
func TestMarshalMatchesSave(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	in := payload{Label: "wire", Counts: []uint64{7, 8}}
	if err := Save(path, "kind", 3, "hash", &in); err != nil {
		t.Fatal(err)
	}
	disk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := Marshal("kind", 3, "hash", &in)
	if err != nil {
		t.Fatal(err)
	}
	if string(disk) != string(wire) {
		t.Fatalf("Marshal bytes differ from Save bytes:\n%s\nvs\n%s", wire, disk)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	var out payload

	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Load(junk, "k", 1, "h", &out); !errors.Is(err, ErrNotCheckpoint) {
		t.Fatalf("junk: err = %v", err)
	}

	// Valid JSON, wrong magic.
	impostor := filepath.Join(dir, "impostor")
	if err := os.WriteFile(impostor, []byte(`{"magic":"something-else","kind":"k","version":1,"config_hash":"h","payload":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Load(impostor, "k", 1, "h", &out); !errors.Is(err, ErrNotCheckpoint) {
		t.Fatalf("impostor: err = %v", err)
	}
}

func TestHashIsStableAndDiscriminating(t *testing.T) {
	type cfg struct {
		A int
		B string
	}
	h1, err := Hash(cfg{1, "x"})
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := Hash(cfg{1, "x"})
	h3, _ := Hash(cfg{2, "x"})
	if h1 != h2 {
		t.Fatal("hash of equal values differs")
	}
	if h1 == h3 {
		t.Fatal("hash of different values collides")
	}
	if len(h1) != 64 {
		t.Fatalf("hash %q is not hex sha256", h1)
	}
}
